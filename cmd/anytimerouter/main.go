// Command anytimerouter fronts a fleet of anytimed backends: the anytime
// serving contract, scaled horizontally. Each request's (app, input) key is
// consistent-hashed onto the ring of healthy backends, forwarded with the
// remaining deadline *budget* (the client's deadline minus time already
// spent at the router and the expected network round trip) in the
// X-Anytime-Budget header, and hedged — if the primary backend hasn't
// answered within the observed p99 latency, the next ring member is raced
// and whichever snapshot has the higher SNR when the budget fires is
// delivered, the loser cancelled. At the deadline the client gets the best
// snapshot available anywhere in the fleet, never an empty answer.
//
// Usage:
//
//	anytimerouter -backends http://h1:8080,http://h2:8080[,...]
//	              [-addr :8090] [-replicas 64]
//	              [-hedge-quantile 0.99] [-hedge-min 2ms] [-hedge-max 250ms]
//	              [-check-interval 1s] [-check-timeout 1s] [-max-fails 3]
//	              [-flight-recorder-size 256] [-trace-sample 16]
//
// App endpoints are the backends' own (GET /blur, /equalize, /cluster with
// the usual deadline/hold/accept knobs) — the router is transparent except
// for three added response headers: X-Anytime-Backend (who served it),
// X-Anytime-Hedged (whether the race was hedged), and X-Anytime-Trace (the
// router's end-to-end trace ID; the backend's own is relayed as
// X-Anytime-Backend-Trace). Add ?input=<digest> to pin distinct inputs to
// distinct ring positions.
//
// Operational endpoints:
//
//	GET /members               fleet state as JSON (name, url, state, rtt)
//	POST /members?url=U        join a backend (only its key share moves)
//	DELETE /members?name=N     drain then drop a backend
//	GET /healthz               503 when zero backends are healthy
//	GET /metrics               Prometheus exposition (anytime_router_*)
//	GET /debug/requests        router flight recorder: route/budget/
//	                           forward/hedge spans (?id=<X-Anytime-Trace>)
//
// Backends leave gracefully from their side too: POST /drain on a backend
// flips its /healthz to 503 "draining", the router's health checker takes
// it off the ring, and in-flight requests complete. docs/OPERATIONS.md
// ("Running a fleet") covers topology, hedge sizing, and drain procedure.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"strings"
	"time"

	"anytime/internal/cluster"
	"anytime/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	backends := flag.String("backends", "", "comma-separated anytimed base URLs (required)")
	replicas := flag.Int("replicas", cluster.DefaultReplicas, "virtual nodes per backend on the hash ring")
	hedgeQ := flag.Float64("hedge-quantile", cluster.DefaultHedgeQuantile, "latency quantile that sets the hedge delay")
	hedgeMin := flag.Duration("hedge-min", cluster.DefaultHedgeMin, "hedge delay floor")
	hedgeMax := flag.Duration("hedge-max", cluster.DefaultHedgeMax, "hedge delay cap (also the delay before any samples; negative disables hedging)")
	checkEvery := flag.Duration("check-interval", time.Second, "health probe interval")
	checkTimeout := flag.Duration("check-timeout", time.Second, "per-probe timeout")
	maxFails := flag.Int("max-fails", 3, "consecutive probe failures before a backend is marked down")
	flightSize := flag.Int("flight-recorder-size", 256, "completed request traces retained for /debug/requests")
	traceSample := flag.Int("trace-sample", 16, "retain 1 in N unremarkable OK request traces")
	flag.Parse()

	urls := splitBackends(*backends)
	if len(urls) == 0 {
		log.Fatal("anytimerouter: -backends is required (comma-separated base URLs)")
	}
	reg := telemetry.NewRegistry()
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Backends:      urls,
		Replicas:      *replicas,
		HedgeQuantile: *hedgeQ,
		HedgeMin:      *hedgeMin,
		HedgeMax:      *hedgeMax,
		CheckInterval: *checkEvery,
		CheckTimeout:  *checkTimeout,
		MaxFails:      *maxFails,
		Hooks:         telemetry.RouterHooks(reg),
		FlightSize:    *flightSize,
		TraceSample:   *traceSample,
	})
	if err != nil {
		log.Fatal(err)
	}
	rt.Start(context.Background())
	defer rt.Close()

	mux := http.NewServeMux()
	mux.Handle("GET /metrics", reg.Handler())
	mux.Handle("/", rt)
	log.Printf("anytimerouter listening on %s (%d backends, hedge p%.0f in [%v, %v])",
		*addr, len(urls), *hedgeQ*100, *hedgeMin, *hedgeMax)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

// splitBackends parses the -backends flag, tolerating blanks and spaces.
func splitBackends(s string) []string {
	var out []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			out = append(out, u)
		}
	}
	return out
}
