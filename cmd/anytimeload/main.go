// Command anytimeload grades the cluster tier: an open-loop load generator
// that offers a fixed arrival schedule (Poisson by default — arrivals never
// slow down because the server did) and records what the anytime contract
// actually delivered: latency percentiles and the delivered-SNR
// distribution. Under an anytime fleet, overload should show up as lower
// delivered SNR at steady latency — that is the whole point of the
// architecture — so the report keeps both axes side by side.
//
// Two modes:
//
//	anytimeload -target http://router:8090 [...]
//	    drive an existing router or backend.
//
//	anytimeload -selfcluster 3 [...]
//	    spin up an in-process fleet (3 anytimed backends + a router, no
//	    sockets beyond the loopback listeners) and drive that. This is the
//	    CI smoke mode and how BENCH_cluster.json is produced: no external
//	    topology required.
//
// The sweep runs the configured rate at each -multipliers step (default
// 1,10,100 — nominal, saturated, far past saturation) and writes one JSON
// report per step to -out:
//
//	anytimeload -selfcluster 3 -rate 40 -duration 10s -deadline 60ms \
//	            -multipliers 1,10,100 -out BENCH_cluster.json
//
// Every run is seeded: same flags, same arrival schedule.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"time"

	"anytime/internal/cluster"
	"anytime/internal/daemon"
)

func main() {
	target := flag.String("target", "", "base URL of the router or backend to drive")
	selfN := flag.Int("selfcluster", 0, "run an in-process fleet of N backends + router instead of -target")
	deadline := flag.Duration("deadline", 60*time.Millisecond, "per-request deadline knob (0 = precise requests)")
	rate := flag.Float64("rate", 40, "offered load at multiplier 1, requests/second")
	duration := flag.Duration("duration", 10*time.Second, "arrival window per run")
	curve := flag.String("curve", "poisson", "arrival curve: poisson | uniform | ramp")
	seed := flag.Int64("seed", 1, "arrival schedule seed")
	keys := flag.Int("keys", 16, "distinct ?input= routing keys")
	routes := flag.String("routes", "/blur,/equalize", "comma-separated app routes")
	multipliers := flag.String("multipliers", "1,10,100", "comma-separated rate multipliers to sweep")
	out := flag.String("out", "BENCH_cluster.json", "report output path (- for stdout)")
	size := flag.Int("size", 64, "selfcluster: backend image side length")
	workers := flag.Int("workers", 2, "selfcluster: backend workers per stage")
	flag.Parse()

	mults, err := parseMultipliers(*multipliers)
	if err != nil {
		log.Fatal(err)
	}
	base := *target
	if *selfN > 0 {
		var stop func()
		base, stop, err = selfCluster(*selfN, *size, *workers)
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
	}
	if base == "" {
		log.Fatal("anytimeload: need -target or -selfcluster")
	}

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 256}}
	type run struct {
		Multiplier float64             `json:"multiplier"`
		Report     *cluster.LoadReport `json:"report"`
	}
	doc := struct {
		Target   string        `json:"target"`
		Backends int           `json:"backends,omitempty"`
		BaseRate float64       `json:"base_rate_rps"`
		Deadline string        `json:"deadline"`
		Duration string        `json:"duration"`
		Curve    string        `json:"curve"`
		Seed     int64         `json:"seed"`
		Runs     []run         `json:"runs"`
		Routes   []string      `json:"routes"`
		Window   time.Duration `json:"-"`
	}{
		Target:   base,
		Backends: *selfN,
		BaseRate: *rate,
		Deadline: deadline.String(),
		Duration: duration.String(),
		Curve:    *curve,
		Seed:     *seed,
		Routes:   splitList(*routes),
	}
	for _, m := range mults {
		log.Printf("run: %.0fx (%.0f rps for %v)", m, *rate*m, *duration)
		rep, err := cluster.RunLoad(context.Background(), cluster.LoadConfig{
			Target:   base,
			Routes:   doc.Routes,
			Deadline: *deadline,
			Rate:     *rate * m,
			Duration: *duration,
			Curve:    *curve,
			Seed:     *seed,
			Keys:     *keys,
			Client:   client,
		})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("  sent=%d ok=%d non_ok=%d err=%d hedged=%d  p50=%.1fms p99=%.1fms  snr p50=%.1fdB p10=%.1fdB",
			rep.Sent, rep.OK, rep.NonOK, rep.Errors, rep.Hedged,
			rep.LatencyP50Ms, rep.LatencyP99Ms, rep.SNRP50DB, rep.SNRP10DB)
		doc.Runs = append(doc.Runs, run{Multiplier: m, Report: rep})
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}

// selfCluster boots n in-process backends and a router over them, returning
// the router's base URL and a teardown function.
func selfCluster(n, size, workers int) (string, func(), error) {
	var closers []func()
	stop := func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
	urls := make([]string, 0, n)
	for i := 0; i < n; i++ {
		srv, err := daemon.New(size, workers, daemon.Config{})
		if err != nil {
			stop()
			return "", nil, fmt.Errorf("backend %d: %w", i, err)
		}
		ts := httptest.NewServer(srv)
		closers = append(closers, ts.Close)
		urls = append(urls, ts.URL)
	}
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Backends:      urls,
		CheckInterval: 200 * time.Millisecond,
	})
	if err != nil {
		stop()
		return "", nil, err
	}
	rt.Start(context.Background())
	closers = append(closers, rt.Close)
	front := httptest.NewServer(rt)
	closers = append(closers, front.Close)
	log.Printf("selfcluster: %d backends behind %s", n, front.URL)
	return front.URL, stop, nil
}

func parseMultipliers(s string) ([]float64, error) {
	var out []float64
	for _, f := range splitList(s) {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("anytimeload: bad multiplier %q", f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("anytimeload: no multipliers")
	}
	return out, nil
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
