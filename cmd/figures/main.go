// Command figures regenerates the data behind every figure of the paper's
// evaluation section (Figures 10–20 of "The Anytime Automaton", ISCA 2016).
//
// Usage:
//
//	figures [-fig all|fig10|fig11|...|fig20] [-size N] [-workers N]
//	        [-seed N] [-reps N] [-outdir DIR]
//
// Profiles and sweeps are printed as CSV to stdout; Figure 10 prints an
// aligned table; Figures 16–18 print their halt-point summary and, when
// -outdir is given, write the halted output image next to the baseline
// image as PGM/PPM files.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"

	"anytime/internal/harness"
	"anytime/internal/pix"
)

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate (all, fig10..fig20)")
	size := flag.Int("size", 512, "image side length (matrix dimension for fig10)")
	workers := flag.Int("workers", 4, "workers per parallel stage")
	seed := flag.Uint64("seed", 1, "synthetic input seed")
	reps := flag.Int("reps", 3, "baseline timing repetitions")
	outdir := flag.String("outdir", "", "directory for figure 16-18 output images (optional)")
	plot := flag.Bool("plot", false, "render runtime-accuracy profiles as ASCII plots too")
	flag.Parse()

	opt := harness.Options{Size: *size, Workers: *workers, Seed: *seed, BaselineReps: *reps}
	if err := run(*fig, opt, *outdir, *plot); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(fig string, opt harness.Options, outdir string, plot bool) error {
	type gen struct {
		name string
		fn   func() error
	}
	profile := func(name string, fn func(harness.Options) (harness.Profile, error)) gen {
		return gen{name, func() error {
			p, err := fn(opt)
			if err != nil {
				return err
			}
			fmt.Printf("== %s ==\n", name)
			if err := p.WriteCSV(os.Stdout); err != nil {
				return err
			}
			if plot {
				return p.Plot(os.Stdout, 72, 14)
			}
			return nil
		}}
	}
	snapshot := func(name string, fn func(harness.Options) (harness.SnapshotResult, error)) gen {
		return gen{name, func() error {
			r, err := fn(opt)
			if err != nil {
				return err
			}
			fmt.Printf("== %s ==\n", name)
			if err := r.Write(os.Stdout); err != nil {
				return err
			}
			if outdir != "" {
				ext := ".pgm"
				if r.Image.C == 3 {
					ext = ".ppm"
				}
				path := filepath.Join(outdir, name+"_"+r.App+ext)
				if err := pix.WritePNMFile(path, r.Image); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", path)
			}
			return nil
		}}
	}
	sweep := func(name string, fn func(harness.Options) ([]harness.Sweep, error)) gen {
		return gen{name, func() error {
			sweeps, err := fn(opt)
			if err != nil {
				return err
			}
			fmt.Printf("== %s ==\n", name)
			return harness.WriteSweepsCSV(os.Stdout, sweeps)
		}}
	}
	gens := []gen{
		{"fig10", func() error {
			rows, err := harness.Fig10Organizations(opt)
			if err != nil {
				return err
			}
			fmt.Println("== fig10 ==")
			return harness.WriteFig10(os.Stdout, rows)
		}},
		profile("fig11", harness.Fig11Conv2D),
		profile("fig12", harness.Fig12Histeq),
		profile("fig13", harness.Fig13DWT53),
		profile("fig14", harness.Fig14Debayer),
		profile("fig15", harness.Fig15Kmeans),
		snapshot("fig16", harness.Fig16Conv2DSnapshot),
		snapshot("fig17", harness.Fig17DWT53Snapshot),
		snapshot("fig18", harness.Fig18KmeansSnapshot),
		sweep("fig19", harness.Fig19Precision),
		sweep("fig20", harness.Fig20Storage),
	}
	ran := false
	for _, g := range gens {
		if fig == "all" || fig == g.name {
			if err := g.fn(); err != nil {
				return fmt.Errorf("%s: %w", g.name, err)
			}
			ran = true
			// Return the previous figure's retained snapshots before the
			// next one starts timing, so figures don't perturb each other.
			runtime.GC()
			debug.FreeOSMemory()
		}
	}
	if !ran {
		return fmt.Errorf("unknown figure %q (want all or fig10..fig20)", fig)
	}
	return nil
}
