package main

import (
	"testing"

	"anytime/internal/harness"
)

var smokeOpt = harness.Options{Size: 48, Workers: 2, Seed: 3, BaselineReps: 1}

func TestRunSingleFigure(t *testing.T) {
	if err := run("fig13", smokeOpt, "", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithPlot(t *testing.T) {
	if err := run("fig11", smokeOpt, "", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunSnapshotWithOutdir(t *testing.T) {
	dir := t.TempDir()
	if err := run("fig17", harness.Options{Size: 64, Workers: 2, Seed: 3, BaselineReps: 1}, dir, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig10(t *testing.T) {
	if err := run("fig10", harness.Options{Size: 48, Seed: 1}, "", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run("fig99", smokeOpt, "", false); err == nil {
		t.Error("unknown figure accepted")
	}
}
