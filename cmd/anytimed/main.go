// Command anytimed serves anytime computations over HTTP — the paper's
// introduction scenario ("imagine typing a search engine query and instead
// of pressing the enter key, you hold it based on the desired amount of
// precision") as a service: the longer a client is willing to hold the
// request, the more precise the response.
//
// Usage:
//
//	anytimed [-addr :8080] [-size 256] [-workers 2] [-slots 8] [-queue 32]
//	         [-warm 1] [-overload shed] [-shed-min 0.25] [-pprof]
//	         [-flight-recorder-size 256] [-trace-sample 16]
//	         [-cache-size 64] [-cache-ttl 5m]
//
// Endpoints (all return binary PGM/PPM with X-Anytime-* headers):
//
//	GET /blur?deadline=50ms    blur, best published output within 50ms
//	                           (never empty-handed; may shed under load)
//	GET /blur?hold=50ms        …or hold for a raw duration (may 504)
//	GET /blur?accept=25        …or until the output reaches 25 dB
//	GET /equalize?deadline=10ms  histogram equalization, same knobs
//	GET /cluster?deadline=100ms  k-means clustering, same knobs
//
// Omitting every knob returns the bit-exact precise output.
//
// Deadline requests warm-start from the snapshot cache when a prior
// request already computed the same content (same route, input, and
// config): the automaton is seeded with the cached approximation and
// spends the whole deadline refining past it. Responses carry
// X-Anytime-Cache (hit, miss, or delta) and X-Anytime-Seed-Version.
// ?input=KEY overrides the content key (for streams of distinct frames);
// ?prior=KEY names a sibling key to delta-start from when the exact key
// misses. -cache-size 0 disables the cache. See docs/CACHING.md.
//
// Running behind cmd/anytimerouter, a deadline request may arrive with an
// X-Anytime-Budget header: the remaining deadline budget after the router's
// queue wait and the network hop. The budget caps the effective deadline
// (it is fed into the shed controller like any deadline), so a backend
// never runs longer than the budget it was handed.
//
// Operational endpoints:
//
//	GET /metrics               Prometheus text exposition: per-stage
//	                           checkpoint latency, per-buffer publish
//	                           counts and version watermarks, pool/queue/
//	                           delivery series, HTTP request counts/latency
//	GET /debug/vars            the same registry as expvar JSON
//	GET /debug/requests        flight recorder: recent request traces with
//	                           full span timelines (?id=<X-Anytime-Trace>
//	                           for one trace; .json for machines)
//	GET /healthz               liveness probe (503 while draining)
//	POST /drain                start draining: healthz goes 503 so routers
//	                           stop sending new work; in-flight completes
//	DELETE /drain              stop draining, rejoin the fleet
//	GET /debug/pprof/          runtime profiler (only with -pprof)
//
// Every app response carries an X-Anytime-Trace header naming its request
// trace. Errors, rejections, deadline misses, shed requests, and the
// slowest requests are always retained by the flight recorder; unremarkable
// successes are sampled one in -trace-sample.
//
// docs/OPERATIONS.md is the operator's handbook: every flag and knob, pool
// and queue sizing, the shed-versus-reject tradeoff, fleet topology, and
// the full metrics reference. The server itself lives in internal/daemon so
// the cluster harness can run real backends in-process.
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"anytime/internal/daemon"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	size := flag.Int("size", 256, "synthetic image side length")
	workers := flag.Int("workers", 2, "workers per stage")
	slots := flag.Int("slots", 8, "automata running concurrently (pool capacity per route)")
	queueLen := flag.Int("queue", 32, "requests waiting for a slot before rejection (-1 = none)")
	warm := flag.Int("warm", 1, "automata prebuilt per route pool at startup")
	overload := flag.String("overload", "shed", "overload policy once requests queue: shed (scale deadlines down) or reject (queue bound only)")
	shedMin := flag.Float64("shed-min", 0.25, "floor of the shed factor (fraction of the requested deadline)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	flightSize := flag.Int("flight-recorder-size", 256, "completed request traces retained for /debug/requests")
	traceSample := flag.Int("trace-sample", 16, "retain 1 in N unremarkable OK request traces (errors, rejections, deadline misses, sheds and the slowest are always retained)")
	cacheSize := flag.Int("cache-size", 64, "snapshot cache budget in MiB; deadline requests warm-start from cached approximations (0 disables)")
	cacheTTL := flag.Duration("cache-ttl", 5*time.Minute, "snapshot cache entry time-to-live")
	flag.Parse()

	cacheBytes := int64(*cacheSize) << 20
	if *cacheSize <= 0 {
		cacheBytes = -1 // disabled; Config treats 0 as "use the default"
	}

	srv, err := daemon.New(*size, *workers, daemon.Config{
		Pprof:       *pprofOn,
		Slots:       *slots,
		QueueLen:    *queueLen,
		Warm:        *warm,
		Overload:    *overload,
		ShedMin:     *shedMin,
		FlightSize:  *flightSize,
		TraceSample: *traceSample,
		CacheBytes:  cacheBytes,
		CacheTTL:    *cacheTTL,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("anytimed listening on %s (image %dx%d, %d slots, %s overload policy)",
		*addr, *size, *size, *slots, *overload)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
