// Command anytimed serves anytime computations over HTTP — the paper's
// introduction scenario ("imagine typing a search engine query and instead
// of pressing the enter key, you hold it based on the desired amount of
// precision") as a service: the longer a client is willing to hold the
// request, the more precise the response.
//
// Usage:
//
//	anytimed [-addr :8080] [-size 256] [-workers 2] [-pprof]
//
// Endpoints (all return binary PGM/PPM with X-Anytime-* headers):
//
//	GET /blur?hold=50ms        blur a synthetic image, hold for a duration
//	GET /blur?accept=25        …or until the output reaches 25 dB
//	GET /equalize?hold=10ms    histogram equalization, same knobs
//	GET /cluster?hold=100ms    k-means clustering, same knobs
//
// Omitting both hold and accept returns the precise output.
//
// Operational endpoints:
//
//	GET /metrics               Prometheus text exposition: per-stage
//	                           checkpoint latency, per-buffer publish
//	                           counts and version watermarks, HTTP request
//	                           counts/latency, in-flight gauges
//	GET /debug/vars            the same registry as expvar JSON
//	GET /healthz               liveness probe
//	GET /debug/pprof/          runtime profiler (only with -pprof)
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"time"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	size := flag.Int("size", 256, "synthetic image side length")
	workers := flag.Int("workers", 2, "workers per stage")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	flag.Parse()

	srv, err := newServer(*size, *workers, serverConfig{pprof: *pprofOn})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("anytimed listening on %s (image %dx%d)", *addr, *size, *size)
	log.Fatal(http.ListenAndServe(*addr, srv))
}

// parseKnobs extracts the hold/accept stopping knobs from a request.
func parseKnobs(r *http.Request) (hold time.Duration, accept float64, err error) {
	if h := r.URL.Query().Get("hold"); h != "" {
		hold, err = time.ParseDuration(h)
		if err != nil || hold <= 0 {
			return 0, 0, fmt.Errorf("bad hold duration %q", h)
		}
	}
	if a := r.URL.Query().Get("accept"); a != "" {
		accept, err = strconv.ParseFloat(a, 64)
		if err != nil || accept <= 0 {
			return 0, 0, fmt.Errorf("bad accept threshold %q", a)
		}
	}
	if hold > 0 && accept > 0 {
		return 0, 0, fmt.Errorf("hold and accept are mutually exclusive")
	}
	if hold > 10*time.Second {
		return 0, 0, fmt.Errorf("hold capped at 10s")
	}
	return hold, accept, nil
}
