// Command anytimed serves anytime computations over HTTP — the paper's
// introduction scenario ("imagine typing a search engine query and instead
// of pressing the enter key, you hold it based on the desired amount of
// precision") as a service: the longer a client is willing to hold the
// request, the more precise the response.
//
// Usage:
//
//	anytimed [-addr :8080] [-size 256] [-workers 2] [-slots 8] [-queue 32]
//	         [-warm 1] [-overload shed] [-shed-min 0.25] [-pprof]
//	         [-flight-recorder-size 256] [-trace-sample 16]
//
// Endpoints (all return binary PGM/PPM with X-Anytime-* headers):
//
//	GET /blur?deadline=50ms    blur, best published output within 50ms
//	                           (never empty-handed; may shed under load)
//	GET /blur?hold=50ms        …or hold for a raw duration (may 504)
//	GET /blur?accept=25        …or until the output reaches 25 dB
//	GET /equalize?deadline=10ms  histogram equalization, same knobs
//	GET /cluster?deadline=100ms  k-means clustering, same knobs
//
// Omitting every knob returns the bit-exact precise output.
//
// Operational endpoints:
//
//	GET /metrics               Prometheus text exposition: per-stage
//	                           checkpoint latency, per-buffer publish
//	                           counts and version watermarks, pool/queue/
//	                           delivery series, HTTP request counts/latency
//	GET /debug/vars            the same registry as expvar JSON
//	GET /debug/requests        flight recorder: recent request traces with
//	                           full span timelines (?id=<X-Anytime-Trace>
//	                           for one trace; .json for machines)
//	GET /healthz               liveness probe
//	GET /debug/pprof/          runtime profiler (only with -pprof)
//
// Every app response carries an X-Anytime-Trace header naming its request
// trace. Errors, rejections, deadline misses, shed requests, and the
// slowest requests are always retained by the flight recorder; unremarkable
// successes are sampled one in -trace-sample.
//
// docs/OPERATIONS.md is the operator's handbook: every flag and knob, pool
// and queue sizing, the shed-versus-reject tradeoff, and the full metrics
// reference.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"time"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	size := flag.Int("size", 256, "synthetic image side length")
	workers := flag.Int("workers", 2, "workers per stage")
	slots := flag.Int("slots", 8, "automata running concurrently (pool capacity per route)")
	queueLen := flag.Int("queue", 32, "requests waiting for a slot before rejection (-1 = none)")
	warm := flag.Int("warm", 1, "automata prebuilt per route pool at startup")
	overload := flag.String("overload", "shed", "overload policy once requests queue: shed (scale deadlines down) or reject (queue bound only)")
	shedMin := flag.Float64("shed-min", 0.25, "floor of the shed factor (fraction of the requested deadline)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	flightSize := flag.Int("flight-recorder-size", 256, "completed request traces retained for /debug/requests")
	traceSample := flag.Int("trace-sample", 16, "retain 1 in N unremarkable OK request traces (errors, rejections, deadline misses, sheds and the slowest are always retained)")
	flag.Parse()

	srv, err := newServer(*size, *workers, serverConfig{
		pprof:       *pprofOn,
		slots:       *slots,
		queueLen:    *queueLen,
		warm:        *warm,
		overload:    *overload,
		shedMin:     *shedMin,
		flightSize:  *flightSize,
		traceSample: *traceSample,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("anytimed listening on %s (image %dx%d, %d slots, %s overload policy)",
		*addr, *size, *size, *slots, *overload)
	log.Fatal(http.ListenAndServe(*addr, srv))
}

// knobs are one request's stopping controls. At most one is set.
type knobs struct {
	// hold stops the automaton after a raw duration and takes whatever is
	// published — possibly nothing (504).
	hold time.Duration
	// deadline is the serving contract: the best published snapshot when
	// the deadline fires, never empty-handed, shed under load.
	deadline time.Duration
	// accept stops at the first output reaching this SNR (dB).
	accept float64
}

// knobCap bounds the hold/deadline knobs so a stray client cannot park on
// an execution slot indefinitely.
const knobCap = 10 * time.Second

// parseKnobs extracts the hold/accept/deadline stopping knobs from a
// request.
func parseKnobs(r *http.Request) (knobs, error) {
	var k knobs
	var err error
	if h := r.URL.Query().Get("hold"); h != "" {
		k.hold, err = time.ParseDuration(h)
		if err != nil || k.hold <= 0 {
			return knobs{}, fmt.Errorf("bad hold duration %q", h)
		}
	}
	if d := r.URL.Query().Get("deadline"); d != "" {
		k.deadline, err = time.ParseDuration(d)
		if err != nil || k.deadline <= 0 {
			return knobs{}, fmt.Errorf("bad deadline %q", d)
		}
	}
	if a := r.URL.Query().Get("accept"); a != "" {
		k.accept, err = strconv.ParseFloat(a, 64)
		if err != nil || k.accept <= 0 {
			return knobs{}, fmt.Errorf("bad accept threshold %q", a)
		}
	}
	set := 0
	for _, on := range []bool{k.hold > 0, k.deadline > 0, k.accept > 0} {
		if on {
			set++
		}
	}
	if set > 1 {
		return knobs{}, fmt.Errorf("hold, deadline and accept are mutually exclusive")
	}
	if k.hold > knobCap || k.deadline > knobCap {
		return knobs{}, fmt.Errorf("hold and deadline capped at %v", knobCap)
	}
	return k, nil
}
