package main

import (
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"anytime/internal/telemetry"
)

// Server-level metric names; the pipeline-level families come from
// internal/telemetry's bindings.
const (
	metricHTTPRequests  = "anytimed_http_requests_total"
	metricHTTPDuration  = "anytimed_http_request_duration_seconds"
	metricHTTPInFlight  = "anytimed_http_in_flight"
	metricSlotsInUse    = "anytimed_automaton_slots_in_use"
	metricSlotsRejected = "anytimed_automaton_slots_rejected_total"
	// metricDeliveredSNR is the delivered-accuracy histogram: the SNR (in
	// millidecibels; the registry is integer-valued) of every approximate
	// delivery. Precise deliveries are counted by
	// anytime_serve_deliveries_total{outcome="precise"} instead — their SNR
	// is +Inf.
	metricDeliveredSNR = "anytimed_delivered_snr_millidb"
)

// handle registers h under pattern with the per-request metrics middleware:
// request count by route and status, a latency histogram by route, and an
// in-flight gauge. The route label is the mux pattern's path (bounded
// cardinality), never the raw request path.
func (s *server) handle(pattern string, h http.HandlerFunc) {
	route := pattern
	if i := strings.IndexByte(pattern, ' '); i >= 0 {
		route = pattern[i+1:]
	}
	duration := s.reg.DurationHistogram(metricHTTPDuration, telemetry.Labels{"path": route})
	inFlight := s.reg.Gauge(metricHTTPInFlight, nil)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		inFlight.Inc()
		defer inFlight.Dec()
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		duration.ObserveDuration(time.Since(start))
		s.reg.Counter(metricHTTPRequests, telemetry.Labels{
			"path": route,
			"code": strconv.Itoa(sw.status()),
		}).Inc()
	})
}

// statusWriter captures the response status for the request counter. It
// forwards Flush so the SSE stream handlers keep working through the
// middleware.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// registerOps mounts the operational endpoints: Prometheus exposition,
// expvar, a liveness probe, and (behind the -pprof flag) the runtime
// profiler. These bypass the request middleware so scrapes don't count as
// traffic.
func (s *server) registerOps(enablePprof bool) {
	s.mux.Handle("GET /metrics", s.reg.Handler())
	s.mux.Handle("GET /debug/vars", expvar.Handler())
	publishExpvarRegistry(s.reg)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	if enablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
}

// The expvar package rejects duplicate Publish names with a panic, but
// tests construct many servers per process; publish one process-wide
// expvar that reads whichever registry the newest server installed.
var (
	expvarOnce     sync.Once
	expvarRegistry atomic.Pointer[telemetry.Registry]
)

func publishExpvarRegistry(reg *telemetry.Registry) {
	expvarRegistry.Store(reg)
	expvarOnce.Do(func() {
		expvar.Publish("anytime", expvar.Func(func() any {
			if r := expvarRegistry.Load(); r != nil {
				return r.Expvar()
			}
			return nil
		}))
	})
}
