package main

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"time"

	"anytime/internal/apps/conv2d"
	"anytime/internal/apps/histeq"
	"anytime/internal/apps/kmeans"
	"anytime/internal/core"
	"anytime/internal/metrics"
	"anytime/internal/pix"
	"anytime/internal/telemetry"
)

// server holds the prepared inputs and precise references so request
// handling only pays for the automaton run itself.
type server struct {
	mux     *http.ServeMux
	workers int
	// sem bounds concurrently running automata; each request's automaton
	// acquires a slot for its lifetime, so a burst of held requests cannot
	// oversubscribe the machine.
	sem chan struct{}

	// reg is the process metrics registry; every request's pipeline
	// reports into it through hooks (shared across all automata) and
	// per-buffer observers. slotsInUse mirrors the sem semaphore so the
	// concurrency bound is visible at /metrics.
	reg        *telemetry.Registry
	hooks      *core.Hooks
	slotsInUse *telemetry.Gauge

	grayIn  *pix.Image
	rgbIn   *pix.Image
	blurRef *pix.Image
	eqRef   *pix.Image
	kmRef   *pix.Image
}

// serverConfig carries the operational knobs from main.
type serverConfig struct {
	pprof bool
}

func newServer(size, workers int, cfg serverConfig) (*server, error) {
	gray, err := pix.SyntheticGray(size, size, 1)
	if err != nil {
		return nil, err
	}
	rgb, err := pix.SyntheticRGB(size, size, 1)
	if err != nil {
		return nil, err
	}
	reg := telemetry.NewRegistry()
	s := &server{
		mux:        http.NewServeMux(),
		workers:    workers,
		sem:        make(chan struct{}, 8),
		reg:        reg,
		hooks:      telemetry.PipelineHooks(reg),
		slotsInUse: reg.Gauge(metricSlotsInUse, nil),
		grayIn:     gray,
		rgbIn:      rgb,
	}
	if s.blurRef, err = conv2d.Precise(gray, conv2d.Config{Workers: workers}); err != nil {
		return nil, err
	}
	if s.eqRef, err = histeq.Precise(gray, histeq.Config{Workers: workers}); err != nil {
		return nil, err
	}
	if s.kmRef, err = kmeans.Precise(rgb, kmeans.Config{Workers: workers}); err != nil {
		return nil, err
	}
	s.handle("GET /blur", s.handleApp(func() (*core.Automaton, *core.Buffer[*pix.Image], *pix.Image, error) {
		h, err := newConv2D(s)
		return h.a, h.out, s.blurRef, err
	}))
	s.handle("GET /equalize", s.handleApp(func() (*core.Automaton, *core.Buffer[*pix.Image], *pix.Image, error) {
		run, err := histeq.New(s.grayIn, histeq.Config{Workers: s.workers})
		if err != nil {
			return nil, nil, nil, err
		}
		return run.Automaton, run.Out, s.eqRef, nil
	}))
	s.handle("GET /cluster", s.handleApp(func() (*core.Automaton, *core.Buffer[*pix.Image], *pix.Image, error) {
		h, err := newKmeans(s)
		return h.a, h.out, s.kmRef, err
	}))
	s.registerStreams()
	s.registerOps(cfg.pprof)
	s.handle("GET /", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "anytimed — hold a request for more precision")
		fmt.Fprintln(w, "  GET /blur?hold=50ms      blur, stopped after 50ms")
		fmt.Fprintln(w, "  GET /blur?accept=25      blur, stopped at 25 dB")
		fmt.Fprintln(w, "  GET /equalize?hold=10ms  histogram equalization")
		fmt.Fprintln(w, "  GET /cluster?hold=100ms  k-means clustering")
		fmt.Fprintln(w, "  GET /blur/stream         live SSE: watch quality rise per version")
		fmt.Fprintln(w, "  GET /cluster/stream      live SSE for k-means")
		fmt.Fprintln(w, "  GET /metrics             Prometheus exposition (stages, buffers, HTTP)")
		fmt.Fprintln(w, "  GET /debug/vars          expvar JSON view of the same registry")
		fmt.Fprintln(w, "  GET /healthz             liveness probe")
		fmt.Fprintln(w, "no knob: precise output")
	})
	return s, nil
}

// instrument attaches the server's shared telemetry to one freshly built
// request pipeline: lifecycle/checkpoint hooks plus a publish observer on
// the output buffer. Buffer names recur across requests (every /blur run
// publishes to the same-named buffer), so the series accumulate per route's
// pipeline rather than per request.
func (s *server) instrument(a *core.Automaton, out *core.Buffer[*pix.Image]) {
	a.SetHooks(s.hooks)
	telemetry.ObserveBuffer(s.reg, out)
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// handleApp builds the common anytime-over-HTTP flow around an automaton
// constructor.
func (s *server) handleApp(build func() (*core.Automaton, *core.Buffer[*pix.Image], *pix.Image, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		hold, accept, err := parseKnobs(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if !s.acquire(r) {
			http.Error(w, "server at capacity", http.StatusServiceUnavailable)
			return
		}
		defer s.release()
		a, out, ref, err := build()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		s.instrument(a, out)
		start := time.Now()
		var snap core.Snapshot[*pix.Image]
		switch {
		case accept > 0:
			accepted := core.StopWhen(a, out, func(sn core.Snapshot[*pix.Image]) bool {
				db, err := metrics.SNR(ref.Pix, sn.Value.Pix)
				return err == nil && db >= accept
			})
			if err := a.Start(r.Context()); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			sn, ok := <-accepted
			if !ok {
				http.Error(w, "no output produced", http.StatusInternalServerError)
				return
			}
			snap = sn
		case hold > 0:
			cancel := core.StopAfter(a, hold)
			defer cancel()
			if err := a.Start(r.Context()); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			<-a.Done()
			sn, ok := out.Latest()
			if !ok {
				http.Error(w, "no output produced within the hold window", http.StatusGatewayTimeout)
				return
			}
			snap = sn
		default:
			if err := a.Start(r.Context()); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			if err := a.Wait(); err != nil && !errors.Is(err, core.ErrStopped) {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			sn, ok := out.Latest()
			if !ok {
				http.Error(w, "no output produced", http.StatusInternalServerError)
				return
			}
			snap = sn
		}
		a.Stop() // idempotent; releases the pipeline if a knob fired early

		db, err := metrics.SNR(ref.Pix, snap.Value.Pix)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		var buf bytes.Buffer
		if err := pix.EncodePNM(&buf, snap.Value); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		ct := "image/x-portable-graymap"
		if snap.Value.C == 3 {
			ct = "image/x-portable-pixmap"
		}
		w.Header().Set("Content-Type", ct)
		w.Header().Set("X-Anytime-Version", fmt.Sprint(snap.Version))
		w.Header().Set("X-Anytime-Final", fmt.Sprint(snap.Final))
		w.Header().Set("X-Anytime-SNR-dB", metrics.FormatDB(db))
		w.Header().Set("X-Anytime-Elapsed", time.Since(start).String())
		if _, err := w.Write(buf.Bytes()); err != nil {
			return
		}
	}
}

// newConv2D constructs a fresh blur automaton over the server's input.
func newConv2D(s *server) (appHandles, error) {
	run, err := conv2d.New(s.grayIn, conv2d.Config{Workers: s.workers})
	if err != nil {
		return appHandles{}, err
	}
	return appHandles{a: run.Automaton, out: run.Out}, nil
}

// newKmeans constructs a fresh clustering automaton over the server's input.
func newKmeans(s *server) (appHandles, error) {
	run, err := kmeans.New(s.rgbIn, kmeans.Config{Workers: s.workers})
	if err != nil {
		return appHandles{}, err
	}
	return appHandles{a: run.Automaton, out: run.Out}, nil
}

// acquire takes a concurrency slot, giving up when the client goes away.
// The slotsInUse gauge mirrors the semaphore's occupancy so the bound is
// observable at /metrics.
func (s *server) acquire(r *http.Request) bool {
	select {
	case s.sem <- struct{}{}:
		s.slotsInUse.Inc()
		return true
	case <-r.Context().Done():
		s.reg.Counter(metricSlotsRejected, nil).Inc()
		return false
	}
}

func (s *server) release() {
	s.slotsInUse.Dec()
	<-s.sem
}
