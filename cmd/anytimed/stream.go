package main

import (
	"fmt"
	"net/http"
	"time"

	"anytime/internal/core"
	"anytime/internal/metrics"
	"anytime/internal/pix"
)

// registerStreams adds the Server-Sent Events endpoints: the client watches
// the whole-application output quality rise live, one event per published
// version, and decides for itself when to stop listening — the
// hold-the-power-button interaction with the button on the client side.
func (s *server) registerStreams() {
	s.handle("GET /blur/stream", s.handleStream(func() (*core.Automaton, *core.Buffer[*pix.Image], *pix.Image, error) {
		h, err := newConv2D(s)
		return h.a, h.out, s.blurRef, err
	}))
	s.handle("GET /cluster/stream", s.handleStream(func() (*core.Automaton, *core.Buffer[*pix.Image], *pix.Image, error) {
		h, err := newKmeans(s)
		return h.a, h.out, s.kmRef, err
	}))
}

// handleStream emits one SSE event per published output version:
//
//	data: {"version":3,"final":false,"snr_db":"24.18","elapsed_ms":12}
//
// The stream ends at the final (precise) version; closing the request
// stops the automaton.
func (s *server) handleStream(build func() (*core.Automaton, *core.Buffer[*pix.Image], *pix.Image, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		flusher, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		if !s.acquire(r) {
			http.Error(w, "server at capacity", http.StatusServiceUnavailable)
			return
		}
		defer s.release()
		a, out, ref, err := build()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		s.instrument(a, out)
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")

		sub := out.Subscribe(r.Context())
		start := time.Now()
		if err := a.Start(r.Context()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		defer a.Stop()
		for snap := range sub {
			db, err := metrics.SNR(ref.Pix, snap.Value.Pix)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "data: {\"version\":%d,\"final\":%v,\"snr_db\":%q,\"elapsed_ms\":%d}\n\n",
				snap.Version, snap.Final, metrics.FormatDB(db), time.Since(start).Milliseconds())
			flusher.Flush()
		}
	}
}

// appHandles bundles a constructed automaton with its output buffer.
type appHandles struct {
	a   *core.Automaton
	out *core.Buffer[*pix.Image]
}
