// Command anytimevet runs the repo's automaton-discipline analyzers
// (internal/analysis): static proofs of the paper's §III invariants —
// single-writer buffers, immutable snapshots, unforkable atomic state,
// deterministic replay packages, nil-guarded telemetry hooks — plus the
// serving-tier contracts grown since (context threading, goroutine
// termination, budget monotonicity, hotpath alloc budgets).
//
// Two modes:
//
//	go run ./cmd/anytimevet ./...           # standalone multichecker
//	go vet -vettool=$(which anytimevet) ./... # unitchecker, driven by cmd/go
//
// Standalone mode loads, type-checks, and analyzes the named packages
// (tests included; -tests=false excludes them) and exits 1 if any
// diagnostic survives its //lint:ignore filter. Vet-tool mode speaks
// cmd/go's unitchecker protocol: -V=full, -flags, and per-package .cfg
// files with pre-built export data; interprocedural facts ride in the
// protocol's .vetx files.
//
// Each analyzer can be disabled with -<name>=false, or the run restricted
// by setting only some to true (go vet's multichecker convention).
// -format selects the output: text (one finding per line, the problem-
// matcher shape), json (an array document), or sarif (SARIF 2.1.0 for
// code-scanning upload). -audit lists every //lint:ignore suppression with
// its justification and fails on bare ones.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"strings"

	"anytime/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

func run(args []string, stderr *os.File) int {
	// cmd/go probes the tool's identity and flag set before any package.
	if len(args) == 1 {
		switch {
		case strings.HasPrefix(args[0], "-V"):
			fmt.Println("anytimevet version v2 (anytime automaton discipline suite)")
			return 0
		case args[0] == "-flags":
			printFlagDefs()
			return 0
		}
	}

	fs := flag.NewFlagSet("anytimevet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		tests   = fs.Bool("tests", true, "also analyze test files (standalone mode)")
		format  = fs.String("format", "text", "output format: text, json, or sarif")
		jsonOut = fs.Bool("json", false, "emit diagnostics as JSON (alias for -format=json)")
		audit   = fs.Bool("audit", false, "list every //lint:ignore suppression and fail on bare ones")
		_       = fs.Int("c", -1, "(ignored; accepted for cmd/go compatibility)")
		enables = make(map[string]*bool)
	)
	for _, a := range analysis.All() {
		enables[a.Name] = fs.Bool(a.Name, false, "enable only "+a.Name+" (default: all)")
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *jsonOut && *format == "text" {
		*format = "json"
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(stderr, "anytimevet: unknown -format %q (want text, json, or sarif)\n", *format)
		return 1
	}

	// Multichecker flag convention: explicitly-true flags select a subset;
	// explicitly-false flags subtract from the full suite.
	explicitTrue, explicitFalse := map[string]bool{}, map[string]bool{}
	fs.Visit(func(f *flag.Flag) {
		if _, ok := enables[f.Name]; !ok {
			return
		}
		if f.Value.String() == "true" {
			explicitTrue[f.Name] = true
		} else {
			explicitFalse[f.Name] = true
		}
	})
	var analyzers []*analysis.Analyzer
	for _, a := range analysis.All() {
		if len(explicitTrue) > 0 && !explicitTrue[a.Name] {
			continue
		}
		if explicitFalse[a.Name] {
			continue
		}
		analyzers = append(analyzers, a)
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return unitcheck(rest[0], analyzers, *format, stderr)
	}
	if len(rest) == 0 {
		rest = []string{"./..."}
	}
	if *audit {
		return auditSuppressions(rest, *tests, stderr)
	}
	return standalone(rest, analyzers, *tests, *format, stderr)
}

func standalone(patterns []string, analyzers []*analysis.Analyzer, tests bool, format string, stderr *os.File) int {
	fset := token.NewFileSet()
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "anytimevet:", err)
		return 1
	}
	pkgs, err := analysis.Load(fset, wd, patterns, tests)
	if err != nil {
		fmt.Fprintln(stderr, "anytimevet:", err)
		return 1
	}
	// One fact store threaded through the packages, which Load returns in
	// dependency order: facts exported while analyzing serve are visible
	// when daemon (which imports it) is analyzed.
	facts := analysis.NewFactStore()
	var all []analysis.Diagnostic
	// The same file can be analyzed under its base package and its test
	// variant when both are targets (the loader prevents the common case,
	// but patterns can name both); dedupe on position+analyzer+message.
	seen := make(map[string]bool)
	for _, pkg := range pkgs {
		diags, err := analysis.RunPackageFacts(fset, pkg, analyzers, facts)
		if err != nil {
			fmt.Fprintf(stderr, "anytimevet: %s: %v\n", pkg.ID, err)
			return 1
		}
		for _, d := range diags {
			key := fmt.Sprintf("%s|%s|%s", fset.Position(d.Pos), d.Analyzer, d.Message)
			if seen[key] {
				continue
			}
			seen[key] = true
			all = append(all, d)
			if format == "text" {
				printDiag(stderr, fset, d)
			}
		}
	}
	emitDocument(fset, analyzers, all, format, wd)
	if len(all) > 0 {
		return 1
	}
	return 0
}

// emitDocument writes the whole-run json/sarif document to stdout; text
// mode already streamed line by line.
func emitDocument(fset *token.FileSet, analyzers []*analysis.Analyzer, diags []analysis.Diagnostic, format, root string) {
	switch format {
	case "json":
		os.Stdout.Write(analysis.FormatJSON(fset, diags))
	case "sarif":
		os.Stdout.Write(analysis.FormatSARIF(fset, analyzers, diags, root))
	}
}

// auditSuppressions loads the tree and prints every lint:ignore directive
// with its justification: the reviewed inventory CI keeps. Bare ignores
// (no justification) fail the audit.
func auditSuppressions(patterns []string, tests bool, stderr *os.File) int {
	fset := token.NewFileSet()
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "anytimevet:", err)
		return 1
	}
	pkgs, err := analysis.Load(fset, wd, patterns, tests)
	if err != nil {
		fmt.Fprintln(stderr, "anytimevet:", err)
		return 1
	}
	bare := 0
	total := 0
	seen := make(map[string]bool)
	for _, pkg := range pkgs {
		for _, s := range analysis.CollectSuppressions(fset, pkg.Files) {
			if seen[s.Posn] {
				continue
			}
			seen[s.Posn] = true
			total++
			if s.Bare() {
				bare++
				fmt.Printf("%s: BARE //lint:ignore %s — justification required\n", s.Posn, s.Analyzer)
				continue
			}
			fmt.Printf("%s: //lint:ignore %s — %s\n", s.Posn, s.Analyzer, s.Justification)
		}
	}
	fmt.Printf("anytimevet audit: %d suppression(s), %d bare\n", total, bare)
	if bare > 0 {
		return 1
	}
	return 0
}

func printDiag(stderr *os.File, fset *token.FileSet, d analysis.Diagnostic) {
	fmt.Fprintf(stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
}

// printFlagDefs answers cmd/go's -flags probe: a JSON array describing the
// flags a `go vet -vettool` invocation may pass through.
func printFlagDefs() {
	type flagDef struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	defs := []flagDef{{Name: "tests", Bool: true, Usage: "analyze test files"}}
	for _, a := range analysis.All() {
		defs = append(defs, flagDef{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	fmt.Print("[")
	for i, d := range defs {
		if i > 0 {
			fmt.Print(",")
		}
		fmt.Printf("{\"Name\":%q,\"Bool\":%v,\"Usage\":%q}", d.Name, d.Bool, d.Usage)
	}
	fmt.Println("]")
}
