package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"

	"anytime/internal/analysis"
)

// vetConfig is the per-package configuration file cmd/go hands a
// -vettool: the package's sources plus pre-built export data for every
// dependency. The field set mirrors x/tools' unitchecker.Config (the
// protocol is defined by cmd/go, not by x/tools).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one package under cmd/go's vet protocol. Exit codes
// follow the vet convention: 0 clean, 1 tool failure, 2 diagnostics.
//
// Interprocedural facts ride the protocol's vetx channel: the fact store
// is seeded from every dependency's PackageVetx file, the analyzers run
// (exporting facts about this package's objects), and the accumulated
// store is serialized to VetxOutput for downstream packages. VetxOnly
// packages (dependencies cmd/go analyzes purely for their facts) run the
// same pipeline but report nothing.
func unitcheck(cfgFile string, analyzers []*analysis.Analyzer, format string, stderr *os.File) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(stderr, "anytimevet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "anytimevet: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// cmd/go requires the facts ("vetx") output to exist; write the empty
	// form first so every early exit below still satisfies the build cache,
	// then overwrite with the real store after analysis.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(stderr, "anytimevet:", err)
			return 1
		}
	}
	if cfg.Compiler != "" && cfg.Compiler != "gc" {
		fmt.Fprintf(stderr, "anytimevet: unsupported compiler %q\n", cfg.Compiler)
		return 1
	}

	fset := token.NewFileSet()
	files, err := analysis.ParseFiles(fset, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(stderr, "anytimevet:", err)
		return 1
	}
	pkg, err := analysis.CheckFiles(fset, cfg.ImportPath, cfg.GoVersion, files, cfg.PackageFile, cfg.ImportMap)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "anytimevet: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	facts := analysis.NewFactStore()
	for _, vetx := range cfg.PackageVetx {
		if data, err := os.ReadFile(vetx); err == nil {
			facts.Merge(data)
		}
	}
	diags, err := analysis.RunPackageFacts(fset, pkg, analyzers, facts)
	if err != nil {
		fmt.Fprintf(stderr, "anytimevet: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, facts.Encode(), 0o666); err != nil {
			fmt.Fprintln(stderr, "anytimevet:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		// The package was only needed for downstream facts; report nothing.
		return 0
	}
	if format == "text" {
		for _, d := range diags {
			printDiag(stderr, fset, d)
		}
	} else {
		emitDocument(fset, analyzers, diags, format, cfg.Dir)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
