package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"

	"anytime/internal/analysis"
)

// vetConfig is the per-package configuration file cmd/go hands a
// -vettool: the package's sources plus pre-built export data for every
// dependency. The field set mirrors x/tools' unitchecker.Config (the
// protocol is defined by cmd/go, not by x/tools).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one package under cmd/go's vet protocol. Exit codes
// follow the vet convention: 0 clean, 1 tool failure, 2 diagnostics.
func unitcheck(cfgFile string, analyzers []*analysis.Analyzer, jsonOut bool, stderr *os.File) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(stderr, "anytimevet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "anytimevet: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// cmd/go requires the facts ("vetx") output to exist even though this
	// suite exports none; write it first so every early exit below still
	// satisfies the build cache.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(stderr, "anytimevet:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		// The package is only needed for downstream facts; nothing to do.
		return 0
	}
	if cfg.Compiler != "" && cfg.Compiler != "gc" {
		fmt.Fprintf(stderr, "anytimevet: unsupported compiler %q\n", cfg.Compiler)
		return 1
	}

	fset := token.NewFileSet()
	files, err := analysis.ParseFiles(fset, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(stderr, "anytimevet:", err)
		return 1
	}
	pkg, err := analysis.CheckFiles(fset, cfg.ImportPath, cfg.GoVersion, files, cfg.PackageFile, cfg.ImportMap)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "anytimevet: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags, err := analysis.RunPackage(fset, pkg, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "anytimevet: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	for _, d := range diags {
		printDiag(stderr, fset, d, jsonOut)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
