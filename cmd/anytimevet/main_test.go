package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// devNull gives the runs under test a sink for their diagnostics so the
// test log stays readable.
func devNull(t *testing.T) *os.File {
	t.Helper()
	f, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestProbes covers the two queries cmd/go issues before handing over any
// package: the version string and the flag definitions.
func TestProbes(t *testing.T) {
	if got := run([]string{"-V=full"}, devNull(t)); got != 0 {
		t.Errorf("-V=full exited %d, want 0", got)
	}
	if got := run([]string{"-flags"}, devNull(t)); got != 0 {
		t.Errorf("-flags exited %d, want 0", got)
	}
}

// writeCfg materializes a unitchecker config for a single-file package with
// no imports (so no export data is needed) and returns the cfg path and the
// vetx path cmd/go would expect to appear.
func writeCfg(t *testing.T, src string, vetxOnly bool) (cfgPath, vetxPath string) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	vetxPath = filepath.Join(dir, "p.vetx")
	cfg := vetConfig{
		ID:         "p",
		Compiler:   "gc",
		Dir:        dir,
		ImportPath: "p",
		GoFiles:    []string{"p.go"},
		VetxOnly:   vetxOnly,
		VetxOutput: vetxPath,
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath = filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
		t.Fatal(err)
	}
	return cfgPath, vetxPath
}

const dirtySrc = `package p

type Hooks struct{ F func() }

func call(h *Hooks) {
	h.F()
}
`

const cleanSrc = `package p

type Hooks struct{ F func() }

func call(h *Hooks) {
	if h != nil && h.F != nil {
		h.F()
	}
}
`

// TestUnitcheckConvicts drives the full vettool path on a planted hooknil
// violation: exit code 2 (the vet diagnostics convention) and a vetx file
// written for the build cache.
func TestUnitcheckConvicts(t *testing.T) {
	cfgPath, vetxPath := writeCfg(t, dirtySrc, false)
	if got := run([]string{cfgPath}, devNull(t)); got != 2 {
		t.Errorf("dirty package exited %d, want 2", got)
	}
	if _, err := os.Stat(vetxPath); err != nil {
		t.Errorf("vetx output not written: %v", err)
	}
}

// TestUnitcheckClean passes a guarded package through the same path.
func TestUnitcheckClean(t *testing.T) {
	cfgPath, vetxPath := writeCfg(t, cleanSrc, false)
	if got := run([]string{cfgPath}, devNull(t)); got != 0 {
		t.Errorf("clean package exited %d, want 0", got)
	}
	if _, err := os.Stat(vetxPath); err != nil {
		t.Errorf("vetx output not written: %v", err)
	}
}

// TestUnitcheckVetxOnly: when cmd/go only needs facts for a dependency, the
// tool must write the vetx file and stay silent even about violations.
func TestUnitcheckVetxOnly(t *testing.T) {
	cfgPath, vetxPath := writeCfg(t, dirtySrc, true)
	if got := run([]string{cfgPath}, devNull(t)); got != 0 {
		t.Errorf("VetxOnly exited %d, want 0", got)
	}
	if _, err := os.Stat(vetxPath); err != nil {
		t.Errorf("vetx output not written: %v", err)
	}
}

// TestAnalyzerSelection: disabling hooknil must let the dirty package pass,
// and selecting only an unrelated analyzer must too.
func TestAnalyzerSelection(t *testing.T) {
	cfgPath, _ := writeCfg(t, dirtySrc, false)
	if got := run([]string{"-hooknil=false", cfgPath}, devNull(t)); got != 0 {
		t.Errorf("-hooknil=false exited %d, want 0", got)
	}
	cfgPath2, _ := writeCfg(t, dirtySrc, false)
	if got := run([]string{"-singlewriter", cfgPath2}, devNull(t)); got != 0 {
		t.Errorf("-singlewriter only exited %d, want 0", got)
	}
}
