// Command schedsim evaluates worker-allocation policies for anytime
// automaton pipelines on the paper's Figure 2 example (§IV-C2).
//
// Usage:
//
//	schedsim [-workers N] [-sweep]
//
// It prints, per policy: the allocation, the time to the first
// whole-application output, the mean gap between consecutive outputs, and
// the time to the precise output. With -sweep it repeats over a range of
// budgets, showing how the tradeoff evolves with available parallelism.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"anytime/internal/sched"
)

func main() {
	workers := flag.Int("workers", 16, "total worker budget")
	sweep := flag.Bool("sweep", false, "sweep budgets 4..32")
	pipeline := flag.String("pipeline", "figure2", "pipeline model: figure2 or histeq")
	flag.Parse()

	var p sched.Pipeline
	switch *pipeline {
	case "figure2":
		p = sched.Figure2Pipeline()
	case "histeq":
		p = sched.HisteqPipeline()
	default:
		fmt.Fprintf(os.Stderr, "schedsim: unknown pipeline %q\n", *pipeline)
		os.Exit(1)
	}
	budgets := []int{*workers}
	if *sweep {
		budgets = []int{4, 8, 16, 32}
	}
	for _, b := range budgets {
		fmt.Printf("%s pipeline, %d workers:\n", *pipeline, b)
		rows, err := sched.Compare(p, b, sched.DefaultPolicies())
		if err != nil {
			fmt.Fprintln(os.Stderr, "schedsim:", err)
			os.Exit(1)
		}
		fmt.Printf("  %-14s %-16s %12s %10s %10s\n", "policy", "allocation", "first-output", "mean-gap", "precise")
		for _, r := range rows {
			fmt.Printf("  %-14s %-16s %12.2f %10.2f %10.2f\n",
				r.Policy, allocString(r.Allocation), r.FirstOutput, r.MeanGap, r.Final)
		}
		dyn, err := sched.SimulateDynamic(p, b)
		if err != nil {
			fmt.Fprintln(os.Stderr, "schedsim:", err)
			os.Exit(1)
		}
		fmt.Printf("  %-14s %-16s %12.2f %10.2f %10.2f\n",
			"dynamic", "(reassigned)", dyn.FirstOutput, dyn.MeanGap, dyn.Final)
		fmt.Println()
	}
}

func allocString(a []int) string {
	parts := make([]string, len(a))
	for i, v := range a {
		parts[i] = fmt.Sprint(v)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
