// Command anytime runs one of the paper's benchmark applications as an
// anytime automaton — the "hold the enter key for more precision"
// experience of the paper's introduction, on the command line.
//
// Usage:
//
//	anytime -app conv2d|histeq|dwt53|debayer|kmeans
//	        [-size N] [-workers N] [-seed N]
//	        [-halt FRACTION] [-in image.pgm] [-out image.pgm]
//	        [-tiles] [-publish every|demand|adaptive]
//	        [-telemetry] [-curve curve.json] [-reqtrace] [-cache]
//
// The tool measures the precise baseline, starts the automaton, halts it at
// the requested fraction of the baseline runtime (1.0 or more lets it run
// to the precise output), reports the SNR of the halted output, and
// optionally writes it as a PGM/PPM file. With -in, a user-supplied binary
// PGM image replaces the synthetic input (conv2d, histeq, dwt53; debayer
// treats it as a Bayer mosaic).
//
// -tiles publishes the diffusive image stages' snapshots through the
// zero-copy tile ring (pix.SnapshotTiles) instead of fresh clones; -publish
// selects the round publish policy (core.PublishPolicy). -telemetry
// attaches the runtime metrics registry (the same instruments anytimed
// exposes at /metrics) and dumps a summary table on exit. -curve records
// the run's accuracy-versus-time samples, writes them as JSON, and prints
// the ASCII runtime–accuracy plot the harness draws for the paper's §V
// figures. -reqtrace records the run as a request trace — the same span
// model anytimed keeps in its flight recorder — and prints the span tree
// (run lifecycle, every publish, delivery) with the publish timeline.
// -cache runs the snapshot-cache demo (conv2d only): a cold run, a warm
// start seeded from its cached output, and a delta start for a perturbed
// next frame, all at the same wall-clock budget — see docs/CACHING.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"anytime/internal/apps/conv2d"
	"anytime/internal/apps/debayer"
	"anytime/internal/apps/dwt53"
	"anytime/internal/apps/histeq"
	"anytime/internal/apps/kmeans"
	"anytime/internal/core"
	"anytime/internal/harness"
	"anytime/internal/metrics"
	"anytime/internal/pix"
	"anytime/internal/reqtrace"
	"anytime/internal/telemetry"
	"anytime/internal/trace"
)

func main() {
	o, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "anytime:", err)
		os.Exit(1)
	}
}

// opts is the tool's parsed command line.
type opts struct {
	app       string
	size      int
	workers   int
	seed      uint64
	halt      float64
	accept    float64
	in        string
	out       string
	diff      string
	trace     bool
	telemetry bool
	reqtrace  bool
	curve     string
	tiles     bool
	publish   string
	cache     bool
}

func parseFlags(args []string) (opts, error) {
	var o opts
	fs := flag.NewFlagSet("anytime", flag.ContinueOnError)
	fs.StringVar(&o.app, "app", "conv2d", "application: conv2d, histeq, dwt53, debayer, kmeans")
	fs.IntVar(&o.size, "size", 512, "synthetic input side length")
	fs.IntVar(&o.workers, "workers", runtime.GOMAXPROCS(0), "workers per parallel stage")
	fs.Uint64Var(&o.seed, "seed", 1, "synthetic input seed")
	fs.Float64Var(&o.halt, "halt", 1.0, "halt after this fraction of the baseline runtime (>=1 runs to precise)")
	fs.Float64Var(&o.accept, "accept", 0, "stop automatically once output SNR reaches this many dB (0 disables)")
	fs.BoolVar(&o.trace, "trace", false, "print an ASCII publish timeline after the run")
	fs.BoolVar(&o.telemetry, "telemetry", false, "attach the metrics registry and dump a summary table on exit")
	fs.BoolVar(&o.reqtrace, "reqtrace", false, "record the run as a request trace and print its span tree afterwards")
	fs.StringVar(&o.curve, "curve", "", "record the accuracy-vs-time curve, write it as JSON here, and print its plot")
	fs.StringVar(&o.in, "in", "", "input PGM/PPM file (optional; synthetic input otherwise)")
	fs.StringVar(&o.out, "out", "", "write the halted output image here (optional)")
	fs.StringVar(&o.diff, "diff", "", "write an error heat image (|precise - output| x8) here (optional)")
	fs.BoolVar(&o.tiles, "tiles", false, "publish image snapshots through the zero-copy tile ring")
	fs.StringVar(&o.publish, "publish", "every", "round publish policy: every, demand, adaptive")
	fs.BoolVar(&o.cache, "cache", false, "run the snapshot-cache demo: cold, warm-started, and delta-started runs at one fixed budget (conv2d only)")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	return o, nil
}

// publishPolicy maps the -publish flag to core's policy.
func publishPolicy(name string) (core.PublishPolicy, error) {
	switch name {
	case "", "every":
		return core.PublishEveryRound, nil
	case "demand":
		return core.PublishOnDemand, nil
	case "adaptive":
		return core.PublishAdaptive, nil
	default:
		return 0, fmt.Errorf("unknown publish policy %q (want every, demand, or adaptive)", name)
	}
}

// appRun bundles what the driver needs from each application.
type appRun struct {
	baseline func() error    // one precise execution (timed)
	ref      *pix.Image      // precise output for SNR
	automa   *core.Automaton // constructed automaton
	out      *core.Buffer[*pix.Image]
}

func run(o opts) error {
	if o.cache {
		return runCacheDemo(o)
	}
	if o.accept > 0 && o.tiles {
		// The accept controller evaluates snapshots on its own goroutine
		// (core.StopWhen), concurrently with further publishes — a retaining
		// consumer by the tile ring's contract. Fall back to clone snapshots
		// rather than race on ring storage.
		o.tiles = false
		fmt.Println("note: -accept evaluates snapshots asynchronously; ignoring -tiles")
	}
	ar, err := build(o)
	if err != nil {
		return err
	}
	var tr *trace.Tracer
	if o.trace {
		tr = trace.New()
		trace.Attach(tr, ar.out)
	}
	var reg *telemetry.Registry
	var pipelineHooks *core.Hooks
	if o.telemetry {
		reg = telemetry.NewRegistry()
		pipelineHooks = telemetry.PipelineHooks(reg)
		telemetry.ObserveBuffer(reg, ar.out)
	}
	// The request tracer attaches like anytimed's serving path does: a Slot
	// carries the (eventual) trace, the publish observer and lifecycle hooks
	// report through it, and the hooks chain with telemetry's on the
	// automaton's single attachment point.
	var slot *reqtrace.Slot
	if o.reqtrace {
		slot = &reqtrace.Slot{}
		out := ar.out
		out.OnPublish(func(s core.Snapshot[*pix.Image]) {
			slot.Publish(out.Name(), uint64(s.Version), len(s.Value.Pix), s.Final)
		})
	}
	if h := core.ChainHooks(pipelineHooks, slot.CoreHooks()); h != nil {
		ar.automa.SetHooks(h)
	}
	var rec *telemetry.AccuracyRecorder
	if o.curve != "" {
		rec = telemetry.NewAccuracyRecorder(ar.ref)
		if o.tiles {
			// The recorder retains every published image until export —
			// far past the tile ring's reuse window — so it must copy.
			rec.CopyOnRecord()
		}
		telemetry.ObserveAccuracy(rec, ar.out)
	}
	baseline, err := harness.TimeBaseline(ar.baseline, 3)
	if err != nil {
		return err
	}
	fmt.Printf("baseline precise runtime: %v\n", baseline)
	if tr != nil {
		tr.Start()
	}
	if rec != nil {
		rec.Begin()
	}
	// The trace starts here, not at attach time, so its offsets measure the
	// anytime run alone — not the baseline timing runs above.
	var rtr *reqtrace.Trace
	if slot != nil {
		_, rtr = reqtrace.New(context.Background(), o.app)
		slot.Bind(rtr)
	}

	var snap core.Snapshot[*pix.Image]
	start := time.Now()
	if o.accept > 0 {
		// Automated accuracy control (paper §III-A): stop as soon as the
		// whole-application output reaches the acceptability bar.
		accepted := core.StopWhen(ar.automa, ar.out, func(s core.Snapshot[*pix.Image]) bool {
			db, err := metrics.SNR(ar.ref.Pix, s.Value.Pix)
			return err == nil && db >= o.accept
		})
		if err := ar.automa.Start(context.Background()); err != nil {
			return err
		}
		s, ok := <-accepted
		if !ok {
			return fmt.Errorf("automaton ended without any output")
		}
		snap = s
	} else if o.halt >= 1 {
		if err := ar.automa.Start(context.Background()); err != nil {
			return err
		}
		if err := ar.automa.Wait(); err != nil {
			return err
		}
		s, ok := ar.out.Latest()
		if !ok {
			return fmt.Errorf("automaton produced no output")
		}
		snap = s
	} else {
		s, err := harness.RunUntil(ar.automa, ar.out, time.Duration(o.halt*float64(baseline)))
		if err != nil {
			return err
		}
		snap = s
	}
	elapsed := time.Since(start)

	db, err := metrics.SNR(ar.ref.Pix, snap.Value.Pix)
	if err != nil {
		return err
	}
	fmt.Printf("halted after %v (%.2fx baseline): version %d, final=%v, SNR %s dB\n",
		elapsed, float64(elapsed)/float64(baseline), snap.Version, snap.Final, metrics.FormatDB(db))
	if o.out != "" {
		if err := pix.WritePNMFile(o.out, snap.Value); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", o.out)
	}
	if o.diff != "" {
		heat, err := pix.DiffImage(ar.ref, snap.Value, 8)
		if err != nil {
			return err
		}
		if err := pix.WritePNMFile(o.diff, heat); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", o.diff)
	}
	if tr != nil {
		if err := tr.Timeline(os.Stdout, 72); err != nil {
			return err
		}
	}
	if rtr != nil {
		snr := db
		if math.IsInf(snr, 0) || math.IsNaN(snr) {
			snr = 0 // precise output: no finite SNR to record
		}
		rtr.Deliver(uint64(snap.Version), snap.Final, !snap.Final, snr, elapsed)
		slot.Unbind()
		rtr.Finish(0)
		fmt.Println("request trace:")
		if err := rtr.WriteDetail(os.Stdout, 72); err != nil {
			return err
		}
	}
	if rec != nil {
		f, err := os.Create(o.curve)
		if err != nil {
			return err
		}
		if err := rec.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", o.curve)
		// The recorder feeds the same Profile type the harness plots the
		// paper's §V figures from — one code path for live and offline.
		profile, err := rec.Profile(o.app, baseline)
		if err != nil {
			return err
		}
		if err := profile.Plot(os.Stdout, 72, 12); err != nil {
			return err
		}
	}
	if reg != nil {
		// The automaton-finish hook fires on the supervisor goroutine just
		// after Done closes; give the lifecycle counters a moment to settle
		// so the summary reports the finished run.
		awaitIdle(reg, 500*time.Millisecond)
		fmt.Println("telemetry summary:")
		if err := reg.WriteSummary(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// awaitIdle polls until the registry's active-automata gauge drains to zero
// or the budget elapses.
func awaitIdle(reg *telemetry.Registry, budget time.Duration) {
	deadline := time.Now().Add(budget)
	for reg.Gauge(telemetry.MetricAutomataActive, nil).Value() != 0 {
		if time.Now().After(deadline) {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

func build(o opts) (*appRun, error) {
	policy, err := publishPolicy(o.publish)
	if err != nil {
		return nil, err
	}
	snapMode := pix.SnapshotClone
	if o.tiles {
		snapMode = pix.SnapshotTiles
	}
	grayInput := func() (*pix.Image, error) {
		if o.in != "" {
			im, err := pix.ReadPNMFile(o.in)
			if err != nil {
				return nil, err
			}
			if im.C != 1 {
				return nil, fmt.Errorf("%s needs a grayscale (PGM) input", o.app)
			}
			return im, nil
		}
		return pix.SyntheticGray(o.size, o.size, o.seed)
	}
	switch o.app {
	case "conv2d":
		in, err := grayInput()
		if err != nil {
			return nil, err
		}
		cfg := conv2d.Config{Workers: o.workers, Snapshot: snapMode, Publish: policy}
		ref, err := conv2d.Precise(in, cfg)
		if err != nil {
			return nil, err
		}
		r, err := conv2d.New(in, cfg)
		if err != nil {
			return nil, err
		}
		return &appRun{
			baseline: func() error { _, err := conv2d.Precise(in, cfg); return err },
			ref:      ref, automa: r.Automaton, out: r.Out,
		}, nil
	case "histeq":
		in, err := grayInput()
		if err != nil {
			return nil, err
		}
		cfg := histeq.Config{Workers: o.workers, Snapshot: snapMode, Publish: policy}
		ref, err := histeq.Precise(in, cfg)
		if err != nil {
			return nil, err
		}
		r, err := histeq.New(in, cfg)
		if err != nil {
			return nil, err
		}
		return &appRun{
			baseline: func() error { _, err := histeq.Precise(in, cfg); return err },
			ref:      ref, automa: r.Automaton, out: r.Out,
		}, nil
	case "dwt53":
		in, err := grayInput()
		if err != nil {
			return nil, err
		}
		// dwt53 is iterative (whole-image passes), not diffusive: the tile
		// ring and publish policies don't apply to it.
		cfg := dwt53.Config{Workers: o.workers}
		r, err := dwt53.New(in, cfg)
		if err != nil {
			return nil, err
		}
		return &appRun{
			baseline: func() error { _, err := dwt53.Precise(in, cfg); return err },
			ref:      in, automa: r.Automaton, out: r.Out,
		}, nil
	case "debayer":
		var in *pix.Image
		if o.in != "" {
			in, err = pix.ReadPNMFile(o.in)
			if err == nil && in.C != 1 {
				err = fmt.Errorf("debayer needs a grayscale Bayer mosaic (PGM) input")
			}
		} else {
			var rgb *pix.Image
			rgb, err = pix.SyntheticRGB(o.size, o.size, o.seed)
			if err == nil {
				in, err = pix.BayerGRBG(rgb)
			}
		}
		if err != nil {
			return nil, err
		}
		cfg := debayer.Config{Workers: o.workers, Snapshot: snapMode, Publish: policy}
		ref, err := debayer.Precise(in, cfg)
		if err != nil {
			return nil, err
		}
		r, err := debayer.New(in, cfg)
		if err != nil {
			return nil, err
		}
		return &appRun{
			baseline: func() error { _, err := debayer.Precise(in, cfg); return err },
			ref:      ref, automa: r.Automaton, out: r.Out,
		}, nil
	case "kmeans":
		var in *pix.Image
		if o.in != "" {
			in, err = pix.ReadPNMFile(o.in)
			if err == nil && in.C != 3 {
				err = fmt.Errorf("kmeans needs an RGB (PPM) input")
			}
		} else {
			in, err = pix.SyntheticRGB(o.size, o.size, o.seed)
		}
		if err != nil {
			return nil, err
		}
		cfg := kmeans.Config{Workers: o.workers, Snapshot: snapMode, Publish: policy}
		ref, err := kmeans.Precise(in, cfg)
		if err != nil {
			return nil, err
		}
		r, err := kmeans.New(in, cfg)
		if err != nil {
			return nil, err
		}
		return &appRun{
			baseline: func() error { _, err := kmeans.Precise(in, cfg); return err },
			ref:      ref, automa: r.Automaton, out: r.Out,
		}, nil
	default:
		return nil, fmt.Errorf("unknown app %q", o.app)
	}
}
