// Command anytime runs one of the paper's benchmark applications as an
// anytime automaton — the "hold the enter key for more precision"
// experience of the paper's introduction, on the command line.
//
// Usage:
//
//	anytime -app conv2d|histeq|dwt53|debayer|kmeans
//	        [-size N] [-workers N] [-seed N]
//	        [-halt FRACTION] [-in image.pgm] [-out image.pgm]
//	        [-telemetry] [-curve curve.json]
//
// The tool measures the precise baseline, starts the automaton, halts it at
// the requested fraction of the baseline runtime (1.0 or more lets it run
// to the precise output), reports the SNR of the halted output, and
// optionally writes it as a PGM/PPM file. With -in, a user-supplied binary
// PGM image replaces the synthetic input (conv2d, histeq, dwt53; debayer
// treats it as a Bayer mosaic).
//
// -telemetry attaches the runtime metrics registry (the same instruments
// anytimed exposes at /metrics) and dumps a summary table on exit. -curve
// records the run's accuracy-versus-time samples, writes them as JSON, and
// prints the ASCII runtime–accuracy plot the harness draws for the paper's
// §V figures.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"anytime/internal/apps/conv2d"
	"anytime/internal/apps/debayer"
	"anytime/internal/apps/dwt53"
	"anytime/internal/apps/histeq"
	"anytime/internal/apps/kmeans"
	"anytime/internal/core"
	"anytime/internal/harness"
	"anytime/internal/metrics"
	"anytime/internal/pix"
	"anytime/internal/telemetry"
	"anytime/internal/trace"
)

func main() {
	app := flag.String("app", "conv2d", "application: conv2d, histeq, dwt53, debayer, kmeans")
	size := flag.Int("size", 512, "synthetic input side length")
	workers := flag.Int("workers", 4, "workers per parallel stage")
	seed := flag.Uint64("seed", 1, "synthetic input seed")
	halt := flag.Float64("halt", 1.0, "halt after this fraction of the baseline runtime (>=1 runs to precise)")
	accept := flag.Float64("accept", 0, "stop automatically once output SNR reaches this many dB (0 disables)")
	showTrace := flag.Bool("trace", false, "print an ASCII publish timeline after the run")
	showTelemetry := flag.Bool("telemetry", false, "attach the metrics registry and dump a summary table on exit")
	curvePath := flag.String("curve", "", "record the accuracy-vs-time curve, write it as JSON here, and print its plot")
	inPath := flag.String("in", "", "input PGM/PPM file (optional; synthetic input otherwise)")
	outPath := flag.String("out", "", "write the halted output image here (optional)")
	diffPath := flag.String("diff", "", "write an error heat image (|precise - output| x8) here (optional)")
	flag.Parse()

	if err := run(*app, *size, *workers, *seed, *halt, *accept, *inPath, *outPath, *diffPath, *showTrace, *showTelemetry, *curvePath); err != nil {
		fmt.Fprintln(os.Stderr, "anytime:", err)
		os.Exit(1)
	}
}

// appRun bundles what the driver needs from each application.
type appRun struct {
	baseline func() error    // one precise execution (timed)
	ref      *pix.Image      // precise output for SNR
	automa   *core.Automaton // constructed automaton
	out      *core.Buffer[*pix.Image]
}

func run(app string, size, workers int, seed uint64, halt, accept float64, inPath, outPath, diffPath string, showTrace, showTelemetry bool, curvePath string) error {
	ar, err := build(app, size, workers, seed, inPath)
	if err != nil {
		return err
	}
	var tr *trace.Tracer
	if showTrace {
		tr = trace.New()
		trace.Attach(tr, ar.out)
	}
	var reg *telemetry.Registry
	if showTelemetry {
		reg = telemetry.NewRegistry()
		ar.automa.SetHooks(telemetry.PipelineHooks(reg))
		telemetry.ObserveBuffer(reg, ar.out)
	}
	var rec *telemetry.AccuracyRecorder
	if curvePath != "" {
		rec = telemetry.NewAccuracyRecorder(ar.ref)
		telemetry.ObserveAccuracy(rec, ar.out)
	}
	baseline, err := harness.TimeBaseline(ar.baseline, 3)
	if err != nil {
		return err
	}
	fmt.Printf("baseline precise runtime: %v\n", baseline)
	if tr != nil {
		tr.Start()
	}
	if rec != nil {
		rec.Begin()
	}

	var snap core.Snapshot[*pix.Image]
	start := time.Now()
	if accept > 0 {
		// Automated accuracy control (paper §III-A): stop as soon as the
		// whole-application output reaches the acceptability bar.
		accepted := core.StopWhen(ar.automa, ar.out, func(s core.Snapshot[*pix.Image]) bool {
			db, err := metrics.SNR(ar.ref.Pix, s.Value.Pix)
			return err == nil && db >= accept
		})
		if err := ar.automa.Start(context.Background()); err != nil {
			return err
		}
		s, ok := <-accepted
		if !ok {
			return fmt.Errorf("automaton ended without any output")
		}
		snap = s
	} else if halt >= 1 {
		if err := ar.automa.Start(context.Background()); err != nil {
			return err
		}
		if err := ar.automa.Wait(); err != nil {
			return err
		}
		s, ok := ar.out.Latest()
		if !ok {
			return fmt.Errorf("automaton produced no output")
		}
		snap = s
	} else {
		s, err := harness.RunUntil(ar.automa, ar.out, time.Duration(halt*float64(baseline)))
		if err != nil {
			return err
		}
		snap = s
	}
	elapsed := time.Since(start)

	db, err := metrics.SNR(ar.ref.Pix, snap.Value.Pix)
	if err != nil {
		return err
	}
	fmt.Printf("halted after %v (%.2fx baseline): version %d, final=%v, SNR %s dB\n",
		elapsed, float64(elapsed)/float64(baseline), snap.Version, snap.Final, metrics.FormatDB(db))
	if outPath != "" {
		if err := pix.WritePNMFile(outPath, snap.Value); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	if diffPath != "" {
		heat, err := pix.DiffImage(ar.ref, snap.Value, 8)
		if err != nil {
			return err
		}
		if err := pix.WritePNMFile(diffPath, heat); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", diffPath)
	}
	if tr != nil {
		if err := tr.Timeline(os.Stdout, 72); err != nil {
			return err
		}
	}
	if rec != nil {
		f, err := os.Create(curvePath)
		if err != nil {
			return err
		}
		if err := rec.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", curvePath)
		// The recorder feeds the same Profile type the harness plots the
		// paper's §V figures from — one code path for live and offline.
		profile, err := rec.Profile(app, baseline)
		if err != nil {
			return err
		}
		if err := profile.Plot(os.Stdout, 72, 12); err != nil {
			return err
		}
	}
	if reg != nil {
		// The automaton-finish hook fires on the supervisor goroutine just
		// after Done closes; give the lifecycle counters a moment to settle
		// so the summary reports the finished run.
		awaitIdle(reg, 500*time.Millisecond)
		fmt.Println("telemetry summary:")
		if err := reg.WriteSummary(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// awaitIdle polls until the registry's active-automata gauge drains to zero
// or the budget elapses.
func awaitIdle(reg *telemetry.Registry, budget time.Duration) {
	deadline := time.Now().Add(budget)
	for reg.Gauge(telemetry.MetricAutomataActive, nil).Value() != 0 {
		if time.Now().After(deadline) {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

func build(app string, size, workers int, seed uint64, inPath string) (*appRun, error) {
	grayInput := func() (*pix.Image, error) {
		if inPath != "" {
			im, err := pix.ReadPNMFile(inPath)
			if err != nil {
				return nil, err
			}
			if im.C != 1 {
				return nil, fmt.Errorf("%s needs a grayscale (PGM) input", app)
			}
			return im, nil
		}
		return pix.SyntheticGray(size, size, seed)
	}
	switch app {
	case "conv2d":
		in, err := grayInput()
		if err != nil {
			return nil, err
		}
		cfg := conv2d.Config{Workers: workers}
		ref, err := conv2d.Precise(in, cfg)
		if err != nil {
			return nil, err
		}
		r, err := conv2d.New(in, cfg)
		if err != nil {
			return nil, err
		}
		return &appRun{
			baseline: func() error { _, err := conv2d.Precise(in, cfg); return err },
			ref:      ref, automa: r.Automaton, out: r.Out,
		}, nil
	case "histeq":
		in, err := grayInput()
		if err != nil {
			return nil, err
		}
		cfg := histeq.Config{Workers: workers}
		ref, err := histeq.Precise(in, cfg)
		if err != nil {
			return nil, err
		}
		r, err := histeq.New(in, cfg)
		if err != nil {
			return nil, err
		}
		return &appRun{
			baseline: func() error { _, err := histeq.Precise(in, cfg); return err },
			ref:      ref, automa: r.Automaton, out: r.Out,
		}, nil
	case "dwt53":
		in, err := grayInput()
		if err != nil {
			return nil, err
		}
		cfg := dwt53.Config{Workers: workers}
		r, err := dwt53.New(in, cfg)
		if err != nil {
			return nil, err
		}
		return &appRun{
			baseline: func() error { _, err := dwt53.Precise(in, cfg); return err },
			ref:      in, automa: r.Automaton, out: r.Out,
		}, nil
	case "debayer":
		var in *pix.Image
		var err error
		if inPath != "" {
			in, err = pix.ReadPNMFile(inPath)
			if err == nil && in.C != 1 {
				err = fmt.Errorf("debayer needs a grayscale Bayer mosaic (PGM) input")
			}
		} else {
			var rgb *pix.Image
			rgb, err = pix.SyntheticRGB(size, size, seed)
			if err == nil {
				in, err = pix.BayerGRBG(rgb)
			}
		}
		if err != nil {
			return nil, err
		}
		cfg := debayer.Config{Workers: workers}
		ref, err := debayer.Precise(in, cfg)
		if err != nil {
			return nil, err
		}
		r, err := debayer.New(in, cfg)
		if err != nil {
			return nil, err
		}
		return &appRun{
			baseline: func() error { _, err := debayer.Precise(in, cfg); return err },
			ref:      ref, automa: r.Automaton, out: r.Out,
		}, nil
	case "kmeans":
		var in *pix.Image
		var err error
		if inPath != "" {
			in, err = pix.ReadPNMFile(inPath)
			if err == nil && in.C != 3 {
				err = fmt.Errorf("kmeans needs an RGB (PPM) input")
			}
		} else {
			in, err = pix.SyntheticRGB(size, size, seed)
		}
		if err != nil {
			return nil, err
		}
		cfg := kmeans.Config{Workers: workers}
		ref, err := kmeans.Precise(in, cfg)
		if err != nil {
			return nil, err
		}
		r, err := kmeans.New(in, cfg)
		if err != nil {
			return nil, err
		}
		return &appRun{
			baseline: func() error { _, err := kmeans.Precise(in, cfg); return err },
			ref:      ref, automa: r.Automaton, out: r.Out,
		}, nil
	default:
		return nil, fmt.Errorf("unknown app %q", app)
	}
}
