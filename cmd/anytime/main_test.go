package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"anytime/internal/pix"
)

func TestRunEveryAppPrecise(t *testing.T) {
	for _, app := range []string{"conv2d", "histeq", "dwt53", "debayer", "kmeans"} {
		if err := run(app, 32, 2, 1, 1.0, 0, "", "", "", false, false, ""); err != nil {
			t.Errorf("%s: %v", app, err)
		}
	}
}

func TestRunHalted(t *testing.T) {
	if err := run("conv2d", 96, 2, 1, 0.3, 0, "", "", "", false, false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithAcceptAndOutputs(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out.pgm")
	diff := filepath.Join(dir, "diff.pgm")
	curve := filepath.Join(dir, "curve.json")
	if err := run("conv2d", 64, 2, 1, 1.0, 10, "", out, diff, true, true, curve); err != nil {
		t.Fatal(err)
	}
	if _, err := pix.ReadPNMFile(out); err != nil {
		t.Errorf("output image unreadable: %v", err)
	}
	if _, err := pix.ReadPNMFile(diff); err != nil {
		t.Errorf("diff image unreadable: %v", err)
	}
	raw, err := os.ReadFile(curve)
	if err != nil {
		t.Fatalf("curve file unreadable: %v", err)
	}
	var samples []map[string]any
	if err := json.Unmarshal(raw, &samples); err != nil {
		t.Fatalf("curve file not a JSON array: %v", err)
	}
	if len(samples) == 0 {
		t.Error("curve file recorded no samples")
	}
}

func TestRunWithUserInput(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.pgm")
	img, err := pix.SyntheticGray(24, 24, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := pix.WritePNMFile(in, img); err != nil {
		t.Fatal(err)
	}
	if err := run("conv2d", 0, 2, 1, 1.0, 0, in, "", "", false, false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownApp(t *testing.T) {
	if err := run("nope", 16, 1, 1, 1.0, 0, "", "", "", false, false, ""); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestBuildRejectsWrongChannelInputs(t *testing.T) {
	dir := t.TempDir()
	rgbPath := filepath.Join(dir, "in.ppm")
	rgb, err := pix.SyntheticRGB(8, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := pix.WritePNMFile(rgbPath, rgb); err != nil {
		t.Fatal(err)
	}
	if _, err := build("conv2d", 0, 1, 1, rgbPath); err == nil {
		t.Error("conv2d accepted an RGB input")
	}
	if _, err := build("kmeans", 0, 1, 1, rgbPath); err != nil {
		t.Errorf("kmeans rejected an RGB input: %v", err)
	}
	grayPath := filepath.Join(dir, "in.pgm")
	gray, err := pix.SyntheticGray(8, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := pix.WritePNMFile(grayPath, gray); err != nil {
		t.Fatal(err)
	}
	if _, err := build("kmeans", 0, 1, 1, grayPath); err == nil {
		t.Error("kmeans accepted a grayscale input")
	}
}
