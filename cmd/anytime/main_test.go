package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"anytime/internal/pix"
)

// testOpts returns the tool's defaults with small-run overrides applied —
// the flag-parsing path the binary itself takes.
func testOpts(t *testing.T, mutate func(*opts)) opts {
	t.Helper()
	o, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	mutate(&o)
	return o
}

func TestDefaultWorkersTracksGOMAXPROCS(t *testing.T) {
	o, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := runtime.GOMAXPROCS(0); o.workers != want {
		t.Errorf("default -workers = %d, want GOMAXPROCS %d", o.workers, want)
	}
	if o.workers < 1 {
		t.Errorf("default -workers = %d, want at least 1", o.workers)
	}
	o, err = parseFlags([]string{"-workers", "3"})
	if err != nil {
		t.Fatal(err)
	}
	if o.workers != 3 {
		t.Errorf("-workers 3 parsed as %d", o.workers)
	}
}

func TestPublishPolicyFlag(t *testing.T) {
	for _, name := range []string{"", "every", "demand", "adaptive"} {
		if _, err := publishPolicy(name); err != nil {
			t.Errorf("policy %q rejected: %v", name, err)
		}
	}
	if _, err := publishPolicy("sometimes"); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestRunEveryAppPrecise(t *testing.T) {
	for _, app := range []string{"conv2d", "histeq", "dwt53", "debayer", "kmeans"} {
		o := testOpts(t, func(o *opts) { o.app = app; o.size = 32; o.workers = 2 })
		if err := run(o); err != nil {
			t.Errorf("%s: %v", app, err)
		}
	}
}

func TestRunEveryAppTiled(t *testing.T) {
	// The zero-copy publish path must leave the precise output bit-exact;
	// run() itself verifies SNR against the precise baseline (+Inf when
	// bit-exact would still pass, so assert via halt-to-completion which
	// ends on the final snapshot).
	for _, app := range []string{"conv2d", "histeq", "debayer", "kmeans"} {
		o := testOpts(t, func(o *opts) {
			o.app = app
			o.size = 32
			o.workers = 2
			o.tiles = true
		})
		if err := run(o); err != nil {
			t.Errorf("%s -tiles: %v", app, err)
		}
	}
}

func TestRunPublishPolicies(t *testing.T) {
	for _, policy := range []string{"demand", "adaptive"} {
		o := testOpts(t, func(o *opts) {
			o.app = "conv2d"
			o.size = 32
			o.workers = 2
			o.publish = policy
		})
		if err := run(o); err != nil {
			t.Errorf("policy %s: %v", policy, err)
		}
	}
	o := testOpts(t, func(o *opts) { o.publish = "sometimes"; o.size = 16 })
	if err := run(o); err == nil {
		t.Error("bogus -publish accepted")
	}
}

func TestRunHalted(t *testing.T) {
	o := testOpts(t, func(o *opts) { o.size = 96; o.workers = 2; o.halt = 0.3 })
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithAcceptAndOutputs(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out.pgm")
	diff := filepath.Join(dir, "diff.pgm")
	curve := filepath.Join(dir, "curve.json")
	o := testOpts(t, func(o *opts) {
		o.size = 64
		o.workers = 2
		o.accept = 10
		o.out = out
		o.diff = diff
		o.curve = curve
		o.trace = true
		o.telemetry = true
		// Exercised with -tiles to cover the accept-mode fallback to clone
		// snapshots.
		o.tiles = true
	})
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	if _, err := pix.ReadPNMFile(out); err != nil {
		t.Errorf("output image unreadable: %v", err)
	}
	if _, err := pix.ReadPNMFile(diff); err != nil {
		t.Errorf("diff image unreadable: %v", err)
	}
	raw, err := os.ReadFile(curve)
	if err != nil {
		t.Fatalf("curve file unreadable: %v", err)
	}
	var samples []map[string]any
	if err := json.Unmarshal(raw, &samples); err != nil {
		t.Fatalf("curve file not a JSON array: %v", err)
	}
	if len(samples) == 0 {
		t.Error("curve file recorded no samples")
	}
}

func TestRunWithUserInput(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.pgm")
	img, err := pix.SyntheticGray(24, 24, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := pix.WritePNMFile(in, img); err != nil {
		t.Fatal(err)
	}
	o := testOpts(t, func(o *opts) { o.size = 0; o.workers = 2; o.in = in })
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownApp(t *testing.T) {
	o := testOpts(t, func(o *opts) { o.app = "nope"; o.size = 16 })
	if err := run(o); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestBuildRejectsWrongChannelInputs(t *testing.T) {
	dir := t.TempDir()
	rgbPath := filepath.Join(dir, "in.ppm")
	rgb, err := pix.SyntheticRGB(8, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := pix.WritePNMFile(rgbPath, rgb); err != nil {
		t.Fatal(err)
	}
	buildOpts := func(app, in string) opts {
		return testOpts(t, func(o *opts) { o.app = app; o.size = 0; o.workers = 1; o.in = in })
	}
	if _, err := build(buildOpts("conv2d", rgbPath)); err == nil {
		t.Error("conv2d accepted an RGB input")
	}
	if _, err := build(buildOpts("kmeans", rgbPath)); err != nil {
		t.Errorf("kmeans rejected an RGB input: %v", err)
	}
	grayPath := filepath.Join(dir, "in.pgm")
	gray, err := pix.SyntheticGray(8, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := pix.WritePNMFile(grayPath, gray); err != nil {
		t.Fatal(err)
	}
	if _, err := build(buildOpts("kmeans", grayPath)); err == nil {
		t.Error("kmeans accepted a grayscale input")
	}
}
