package main

import (
	"fmt"
	"time"

	"anytime/internal/apps/conv2d"
	"anytime/internal/harness"
	"anytime/internal/metrics"
	"anytime/internal/pix"
	"anytime/internal/snapcache"
)

// runCacheDemo demonstrates the snapshot cache's three serving modes on
// one process: a cold run from version 1, a warm start seeded from the
// cold run's cached output (same content key), and a delta start for a
// perturbed next frame (sibling key + pix.TileDiff). All three runs get
// the same wall-clock budget, so the SNR column shows what warm starting
// buys at a fixed deadline — the number BENCH_snapcache.json pins.
//
// The demo is conv2d-only: it needs an app whose input it can perturb
// frame-to-frame to exercise the delta path.
func runCacheDemo(o opts) error {
	if o.app != "conv2d" {
		return fmt.Errorf("-cache demo supports -app conv2d only (got %q)", o.app)
	}
	if o.halt >= 1 {
		o.halt = 0.3 // a deadline short of precise, so warm starts have headroom to show
	}
	frameA, err := pix.SyntheticGray(o.size, o.size, o.seed)
	if err != nil {
		return err
	}
	cfg := conv2d.Config{Workers: o.workers}
	refA, err := conv2d.Precise(frameA, cfg)
	if err != nil {
		return err
	}
	baseline, err := harness.TimeBaseline(func() error { _, err := conv2d.Precise(frameA, cfg); return err }, 3)
	if err != nil {
		return err
	}
	budget := time.Duration(o.halt * float64(baseline))
	fmt.Printf("cache demo: conv2d %dx%d, budget %v (%.2fx baseline %v)\n", o.size, o.size, budget, o.halt, baseline)

	cache, err := snapcache.New(snapcache.Config[*pix.Image]{
		SizeOf: func(im *pix.Image) int { return len(im.Pix) * 4 },
	})
	if err != nil {
		return err
	}
	keyA := snapcache.Key{App: "conv2d", Digest: snapcache.DigestImage(frameA), Epoch: 1}

	// Cold: first request for this content. Miss, run from scratch, admit
	// the delivered snapshot on the way out — exactly serve/daemon's path.
	run, err := conv2d.New(frameA, cfg)
	if err != nil {
		return err
	}
	if _, ok := cache.Get(keyA); ok {
		return fmt.Errorf("fresh cache reported a hit")
	}
	cold, err := harness.RunUntil(run.Automaton, run.Out, budget)
	if err != nil {
		return err
	}
	coldDB, err := metrics.SNR(refA.Pix, cold.Value.Pix)
	if err != nil {
		return err
	}
	cache.Put(keyA, snapcache.Entry[*pix.Image]{Value: cold.Value, Version: cold.Version, SNRdB: coldDB})
	fmt.Printf("  cold  (miss):  version %2d, SNR %s dB\n", cold.Version, metrics.FormatDB(coldDB))

	// Warm: repeat request, same key. Seed the reset automaton from the
	// cached approximation and spend the whole budget refining past it.
	entry, ok := cache.Get(keyA)
	if !ok {
		return fmt.Errorf("admitted entry missing on repeat request")
	}
	if err := run.Automaton.Reset(); err != nil {
		return err
	}
	if err := run.Automaton.SeedFrom(entry.Value, entry.Version); err != nil {
		return err
	}
	warm, err := harness.RunUntil(run.Automaton, run.Out, budget)
	if err != nil {
		return err
	}
	warmDB, err := metrics.SNR(refA.Pix, warm.Value.Pix)
	if err != nil {
		return err
	}
	fmt.Printf("  warm  (hit):   version %2d, SNR %s dB (seeded at version %d, %s dB)\n",
		warm.Version, metrics.FormatDB(warmDB), entry.Version, metrics.FormatDB(entry.SNRdB))

	// Delta: the "next frame" of a stream — same scene, one region changed.
	// Its exact key misses, but the prior frame's entry seeds all unchanged
	// tiles; only the diffed (and dilated) region restarts from hold-fill.
	frameB := frameA.Clone()
	blk := o.size / 4
	for y := blk; y < 2*blk; y++ {
		for x := blk; x < 2*blk; x++ {
			frameB.SetGray(x, y, 255-frameB.Gray(x, y))
		}
	}
	refB, err := conv2d.Precise(frameB, cfg)
	if err != nil {
		return err
	}
	stale, err := pix.TileDiff(frameA, frameB)
	if err != nil {
		return err
	}
	stale.Dilate()
	runB, err := conv2d.New(frameB, cfg)
	if err != nil {
		return err
	}
	if err := runB.Automaton.SeedFrom(&pix.SeedFrame{Image: entry.Value, Stale: stale}, entry.Version); err != nil {
		return err
	}
	delta, err := harness.RunUntil(runB.Automaton, runB.Out, budget)
	if err != nil {
		return err
	}
	deltaDB, err := metrics.SNR(refB.Pix, delta.Value.Pix)
	if err != nil {
		return err
	}
	fmt.Printf("  delta (prior): version %2d, SNR %s dB (next frame, %d stale tiles reseeded)\n",
		delta.Version, metrics.FormatDB(deltaDB), stale.Count())
	return nil
}
