package main

import "testing"

func TestRunAllKinds(t *testing.T) {
	for _, kind := range []string{"tree1d", "tree2d", "random", "sequential"} {
		if err := run(kind, 8, 8, 1, 3); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
}

func TestRunUnknownKind(t *testing.T) {
	if err := run("spiral", 8, 8, 1, 0); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestRunEmptyOrder(t *testing.T) {
	if err := run("sequential", 8, 0, 1, 0); err != nil {
		t.Errorf("empty order: %v", err)
	}
}

func TestRunNonPowerOfTwo(t *testing.T) {
	if err := run("tree2d", 5, 7, 1, 0); err != nil {
		t.Errorf("non-power-of-two grid: %v", err)
	}
}
