// Command permviz visualizes the sampling permutations of §III-B2 as ASCII
// frames — the construction behind the paper's Figures 4 (1-D tree) and 5
// (2-D tree), plus the LFSR pseudo-random order of Figure 3.
//
// Usage:
//
//	permviz [-kind tree1d|tree2d|random|sequential] [-rows N] [-cols N]
//	        [-seed N] [-frames N]
//
// Each frame shows which elements have been visited ('#') after a
// power-of-two prefix of the order.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"anytime/internal/perm"
)

func main() {
	kind := flag.String("kind", "tree2d", "permutation: tree1d, tree2d, random, sequential")
	rows := flag.Int("rows", 8, "rows (tree2d) or ignored")
	cols := flag.Int("cols", 8, "columns (tree2d) or length (others)")
	seed := flag.Uint64("seed", 1, "seed for the pseudo-random order")
	frames := flag.Int("frames", 0, "number of doubling frames to show (0 = all)")
	flag.Parse()

	if err := run(*kind, *rows, *cols, *seed, *frames); err != nil {
		fmt.Fprintln(os.Stderr, "permviz:", err)
		os.Exit(1)
	}
}

func run(kind string, rows, cols int, seed uint64, frames int) error {
	var (
		ord  perm.Order
		err  error
		grid bool
	)
	switch kind {
	case "tree1d":
		ord, err = perm.Tree1D(cols)
	case "tree2d":
		ord, err = perm.Tree2D(rows, cols)
		grid = true
	case "random":
		ord, err = perm.PseudoRandom(cols, seed)
	case "sequential":
		ord, err = perm.Sequential(cols)
	default:
		return fmt.Errorf("unknown kind %q", kind)
	}
	if err != nil {
		return err
	}
	n := ord.Len()
	if n == 0 {
		fmt.Println("(empty order)")
		return nil
	}
	fmt.Printf("%s order over %d elements; visit order:\n", kind, n)
	if n <= 64 {
		idx := make([]string, n)
		for i := 0; i < n; i++ {
			idx[i] = fmt.Sprint(ord.At(i))
		}
		fmt.Println(" ", strings.Join(idx, " "))
	}
	shown := 0
	for prefix := 1; prefix <= n; prefix *= 2 {
		printFrame(ord, prefix, rows, cols, grid)
		shown++
		if frames > 0 && shown >= frames {
			return nil
		}
		if prefix == n {
			break
		}
		if prefix*2 > n {
			printFrame(ord, n, rows, cols, grid)
			break
		}
	}
	return nil
}

func printFrame(ord perm.Order, prefix, rows, cols int, grid bool) {
	visited := make(map[int]bool, prefix)
	for i := 0; i < prefix && i < ord.Len(); i++ {
		visited[ord.At(i)] = true
	}
	fmt.Printf("\nafter %d elements:\n", prefix)
	if !grid {
		var b strings.Builder
		for i := 0; i < ord.Len(); i++ {
			if visited[i] {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		fmt.Println(" ", b.String())
		return
	}
	for r := 0; r < rows; r++ {
		var b strings.Builder
		for c := 0; c < cols; c++ {
			if visited[r*cols+c] {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		fmt.Println(" ", b.String())
	}
}
