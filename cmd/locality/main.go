// Command locality runs the §IV-C3 data-locality study: demand miss rates
// of a full sampling sweep for each permutation (sequential, tree,
// LFSR pseudo-random) under no prefetching, a conventional next-line
// prefetcher, and the paper's deterministic permutation prefetcher.
//
// Usage:
//
//	locality [-words N] [-cache WORDS] [-ways N] [-line WORDS] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"anytime/internal/cachesim"
)

func main() {
	words := flag.Int("words", 1<<16, "data set size in words")
	cache := flag.Int("cache", 4096, "cache capacity in words")
	ways := flag.Int("ways", 8, "associativity")
	line := flag.Int("line", 16, "line size in words")
	seed := flag.Uint64("seed", 7, "pseudo-random permutation seed")
	flag.Parse()

	rows, err := cachesim.Study(cachesim.Config{
		SizeWords: *cache,
		Ways:      *ways,
		LineWords: *line,
	}, *words, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "locality:", err)
		os.Exit(1)
	}
	fmt.Printf("sweep of %d words through a %d-word %d-way cache (%d-word lines):\n\n",
		*words, *cache, *ways, *line)
	fmt.Print(cachesim.FormatStudy(rows))
}
