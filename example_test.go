package anytime_test

import (
	"context"
	"fmt"
	"log"

	"anytime"
)

// ExampleDiffusive builds the smallest complete automaton: a diffusive
// stage that sums 0..999 with exact-once updates and four published
// approximations.
func ExampleDiffusive() {
	var acc int64
	out := anytime.NewBuffer[int64]("sum", nil)
	a := anytime.New()
	if err := a.AddStage("sum", func(c *anytime.Context) error {
		return anytime.Diffusive(c, out, 1000,
			func(pos int) error { acc += int64(pos); return nil },
			func(processed int) (int64, error) {
				// Weight the partial sum up to the population.
				return anytime.ScaleCount(acc, processed, 1000), nil
			},
			anytime.RoundConfig{Granularity: 250})
	}); err != nil {
		log.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		log.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		log.Fatal(err)
	}
	snap, _ := out.Latest()
	fmt.Println(snap.Value, snap.Final)
	// Output: 499500 true
}

// ExampleTree2D shows the progressive-resolution visit order of the paper's
// Figure 5 on a 4x4 grid.
func ExampleTree2D() {
	ord, err := anytime.Tree2D(4, 4)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		idx := ord.At(i)
		fmt.Printf("(%d,%d) ", idx/4, idx%4)
	}
	fmt.Println()
	// Output: (0,0) (0,2) (2,0) (2,2)
}

// ExampleIterative runs a computation at two accuracy levels; the second
// pass is the precise function.
func ExampleIterative() {
	out := anytime.NewBuffer[string]("answer", nil)
	a := anytime.New()
	if err := a.AddStage("answer", func(c *anytime.Context) error {
		return anytime.Iterative(c, out, []func() (string, error){
			func() (string, error) { return "roughly 42", nil },
			func() (string, error) { return "exactly 42", nil },
		})
	}); err != nil {
		log.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		log.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		log.Fatal(err)
	}
	snap, _ := out.Latest()
	fmt.Println(snap.Value, snap.Version, snap.Final)
	// Output: exactly 42 2 true
}

// ExampleAsyncConsume wires a two-stage asynchronous pipeline: the child
// recomputes on whichever parent snapshot is current and finishes on the
// final one.
func ExampleAsyncConsume() {
	parent := anytime.NewBuffer[int]("f", nil)
	child := anytime.NewBuffer[int]("g", nil)
	a := anytime.New()
	if err := a.AddStage("f", func(c *anytime.Context) error {
		return anytime.Iterative(c, parent, []func() (int, error){
			func() (int, error) { return 40, nil },
			func() (int, error) { return 42, nil },
		})
	}); err != nil {
		log.Fatal(err)
	}
	if err := a.AddStage("g", func(c *anytime.Context) error {
		return anytime.AsyncConsume(c, parent, func(s anytime.Snapshot[int]) error {
			_, err := child.Publish(s.Value*2, s.Final)
			return err
		})
	}); err != nil {
		log.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		log.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		log.Fatal(err)
	}
	snap, _ := child.Latest()
	fmt.Println(snap.Value, snap.Final)
	// Output: 84 true
}

// ExampleStopWhen stops an automaton automatically once the output crosses
// an acceptability bar.
func ExampleStopWhen() {
	out := anytime.NewBuffer[int]("count", nil)
	a := anytime.New()
	if err := a.AddStage("count", func(c *anytime.Context) error {
		for i := 1; i <= 1000; i++ {
			if err := c.Checkpoint(); err != nil {
				return err
			}
			if _, err := out.Publish(i, i == 1000); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	accepted := anytime.StopWhen(a, out, func(s anytime.Snapshot[int]) bool {
		return s.Value >= 10
	})
	if err := a.Start(context.Background()); err != nil {
		log.Fatal(err)
	}
	snap := <-accepted
	fmt.Println(snap.Value >= 10)
	// Output: true
}
