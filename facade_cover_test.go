package anytime_test

// Coverage of the remaining facade surface, exercised exactly as a
// downstream user would.

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"testing"

	"anytime"
)

func TestFacadeOrders(t *testing.T) {
	rev, err := anytime.ReverseSequential(4)
	if err != nil {
		t.Fatal(err)
	}
	if rev.At(0) != 3 || rev.At(3) != 0 {
		t.Errorf("ReverseSequential order wrong")
	}
	nd, err := anytime.TreeND(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if nd.Len() != 8 || !nd.IsBijective() {
		t.Errorf("TreeND(2,2,2) wrong")
	}
	t1, err := anytime.Tree1D(8)
	if err != nil || t1.At(1) != 4 {
		t.Errorf("Tree1D: %v, %v", t1.Indices(), err)
	}
	seq, err := anytime.Sequential(3)
	if err != nil || seq.Len() != 3 {
		t.Errorf("Sequential: %v", err)
	}
	l, err := anytime.NewLFSR(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if l.Period() != 255 {
		t.Errorf("LFSR period %d", l.Period())
	}
	stripes, err := t1.Partition(2)
	if err != nil || len(stripes) != 2 {
		t.Errorf("Partition: %v", err)
	}
}

func TestFacadeMetrics(t *testing.T) {
	ref := []int32{10, 20}
	approx := []int32{10, 22}
	if _, err := anytime.SNR(ref, approx); err != nil {
		t.Fatal(err)
	}
	mse, err := anytime.MSE(ref, approx)
	if err != nil || mse != 2 {
		t.Errorf("MSE = %v, %v", mse, err)
	}
	psnr, err := anytime.PSNR(ref, ref, 255)
	if err != nil || !math.IsInf(psnr, 1) {
		t.Errorf("PSNR = %v, %v", psnr, err)
	}
	if anytime.FormatDB(anytime.InfDB) != "inf" {
		t.Error("FormatDB(InfDB) wrong")
	}
	if anytime.ScaleFloat(2, 1, 4) != 8 {
		t.Error("ScaleFloat wrong")
	}
}

func TestFacadeImages(t *testing.T) {
	g, err := anytime.NewGrayImage(4, 4)
	if err != nil || g.C != 1 {
		t.Fatalf("NewGrayImage: %v", err)
	}
	rgb, err := anytime.NewRGBImage(4, 4)
	if err != nil || rgb.C != 3 {
		t.Fatalf("NewRGBImage: %v", err)
	}
	sg, err := anytime.SyntheticGray(8, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := anytime.SyntheticRGB(8, 8, 1); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "img.pgm")
	if err := anytime.WritePNMFile(path, sg); err != nil {
		t.Fatal(err)
	}
	back, err := anytime.ReadPNMFile(path)
	if err != nil || !back.Equal(sg) {
		t.Errorf("PNM round trip: %v", err)
	}
}

// TestFacadeMapSampleWorkers exercises the worker-indexed map builder and
// DiffusiveWorkers through the facade.
func TestFacadeMapSampleWorkers(t *testing.T) {
	const n = 512
	ord, err := anytime.Tree1D(n)
	if err != nil {
		t.Fatal(err)
	}
	out := anytime.NewBuffer[int]("out", nil)
	seen := make([]int32, n)
	a := anytime.New()
	if err := a.AddStage("map", func(c *anytime.Context) error {
		return anytime.MapSampleWorkers(c, out, ord,
			func(worker, dst int) error {
				if worker < 0 || worker >= 4 {
					t.Errorf("worker index %d out of range", worker)
				}
				seen[dst]++
				return nil
			},
			func(processed int) (int, error) { return processed, nil },
			anytime.RoundConfig{Granularity: 64, Workers: 4})
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("element %d visited %d times", i, c)
		}
	}

	// DiffusiveWorkers directly.
	out2 := anytime.NewBuffer[int]("out2", nil)
	b := anytime.New()
	var total int
	if err := b.AddStage("dw", func(c *anytime.Context) error {
		return anytime.DiffusiveWorkers(c, out2, 100,
			func(worker, pos int) error { total++; return nil },
			func(processed int) (int, error) { return processed, nil },
			anytime.RoundConfig{Granularity: 100})
	}); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := b.Wait(); err != nil {
		t.Fatal(err)
	}
	if total != 100 {
		t.Errorf("DiffusiveWorkers ran %d updates", total)
	}
}

// TestFacadeErrFinalized checks the exported sentinel.
func TestFacadeErrFinalized(t *testing.T) {
	out := anytime.NewBuffer[int]("out", nil)
	if _, err := out.Publish(1, true); err != nil {
		t.Fatal(err)
	}
	if _, err := out.Publish(2, false); err == nil {
		t.Error("publish after final accepted")
	} else if !errors.Is(err, anytime.ErrFinalized) {
		t.Errorf("err = %v", err)
	}
}
