module anytime

go 1.24
