package anytime_test

// One benchmark per figure of the paper's evaluation section. Each bench
// regenerates its figure's data at laptop scale and reports the figure's
// headline quantities as custom metrics, so `go test -bench=.` reproduces
// the evaluation end to end:
//
//	Fig10  organization comparison   -> norm. time-to-precise per organization
//	Fig11  2dconv  runtime-accuracy  -> SNR at fractions of baseline, precise-at
//	Fig12  histeq  runtime-accuracy  -> same
//	Fig13  dwt53   runtime-accuracy  -> same
//	Fig14  debayer runtime-accuracy  -> same
//	Fig15  kmeans  runtime-accuracy  -> same
//	Fig16  2dconv halted at 21%      -> SNR at the halt point (paper: 15.8 dB)
//	Fig17  dwt53  halted at 78%      -> SNR at the halt point (paper: 16.8 dB)
//	Fig18  kmeans halted at 63%      -> SNR at the halt point (paper: 16.7 dB)
//	Fig19  pixel-precision sweep     -> final SNR at 6/4/2 bits (paper: 37.9/24.2/- dB)
//	Fig20  storage-fault sweep       -> final SNR at p=1e-7 and 1e-5
//
// Absolute times differ from the paper's POWER7+ testbed; the reported
// shapes (who wins, by roughly what factor, where curves cross) are the
// reproduction target. See EXPERIMENTS.md for a recorded comparison.

import (
	"math"
	"testing"

	"anytime/internal/harness"
)

// benchOpt keeps benchmark iterations affordable; cmd/figures runs the
// full-size (512) versions.
var benchOpt = harness.Options{Size: 192, Workers: 4, Seed: 1, BaselineReps: 1}

// reportProfile turns a runtime-accuracy profile into benchmark metrics.
func reportProfile(b *testing.B, p harness.Profile) {
	b.Helper()
	b.ReportMetric(p.PreciseAt(), "precise-at-x")
	for _, frac := range []float64{0.25, 0.50, 0.75, 1.00} {
		if snr, ok := p.BestUnder(frac); ok {
			b.ReportMetric(clipDB(snr), "snr@"+fracName(frac)+"x")
		}
	}
}

func fracName(f float64) string {
	switch f {
	case 0.25:
		return "0.25"
	case 0.50:
		return "0.50"
	case 0.75:
		return "0.75"
	default:
		return "1.00"
	}
}

// clipDB makes +Inf reportable as a metric.
func clipDB(db float64) float64 {
	if math.IsInf(db, 1) {
		return 999
	}
	if math.IsInf(db, -1) {
		return -999
	}
	return db
}

func BenchmarkFig10_Organizations(b *testing.B) {
	var rows []harness.Fig10Result
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.Fig10Organizations(harness.Options{Size: 128, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Org {
		case "f iterative (sequential)":
			b.ReportMetric(r.NormPrecise, "iter-seq-precise-x")
		case "f iterative, async pipeline":
			b.ReportMetric(r.NormPrecise, "iter-async-precise-x")
		case "f diffusive, async pipeline":
			b.ReportMetric(r.NormPrecise, "diff-async-precise-x")
		case "f diffusive, g distributive, sync pipeline":
			b.ReportMetric(r.NormPrecise, "diff-sync-precise-x")
		}
	}
}

func BenchmarkFig11_Conv2D(b *testing.B) {
	var p harness.Profile
	for i := 0; i < b.N; i++ {
		var err error
		p, err = harness.Fig11Conv2D(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportProfile(b, p)
}

func BenchmarkFig12_Histeq(b *testing.B) {
	var p harness.Profile
	for i := 0; i < b.N; i++ {
		var err error
		p, err = harness.Fig12Histeq(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportProfile(b, p)
}

func BenchmarkFig13_DWT53(b *testing.B) {
	var p harness.Profile
	for i := 0; i < b.N; i++ {
		var err error
		p, err = harness.Fig13DWT53(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportProfile(b, p)
}

func BenchmarkFig14_Debayer(b *testing.B) {
	var p harness.Profile
	for i := 0; i < b.N; i++ {
		var err error
		p, err = harness.Fig14Debayer(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportProfile(b, p)
}

func BenchmarkFig15_Kmeans(b *testing.B) {
	var p harness.Profile
	for i := 0; i < b.N; i++ {
		var err error
		p, err = harness.Fig15Kmeans(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportProfile(b, p)
}

func benchSnapshot(b *testing.B, fn func(harness.Options) (harness.SnapshotResult, error)) {
	b.Helper()
	var r harness.SnapshotResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = fn(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(clipDB(r.SNR), "halted-snr-db")
	b.ReportMetric(r.Target, "halt-at-x")
}

func BenchmarkFig16_Conv2DSnapshot(b *testing.B) {
	benchSnapshot(b, harness.Fig16Conv2DSnapshot)
}

func BenchmarkFig17_DWT53Snapshot(b *testing.B) {
	benchSnapshot(b, harness.Fig17DWT53Snapshot)
}

func BenchmarkFig18_KmeansSnapshot(b *testing.B) {
	benchSnapshot(b, harness.Fig18KmeansSnapshot)
}

func finalSNR(s harness.Sweep) float64 {
	return s.Points[len(s.Points)-1].SNR
}

func BenchmarkFig19_Precision(b *testing.B) {
	var sweeps []harness.Sweep
	for i := 0; i < b.N; i++ {
		var err error
		sweeps, err = harness.Fig19Precision(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range sweeps {
		switch s.Label {
		case "6 bits":
			b.ReportMetric(clipDB(finalSNR(s)), "snr-6bit-db")
		case "4 bits":
			b.ReportMetric(clipDB(finalSNR(s)), "snr-4bit-db")
		case "2 bits":
			b.ReportMetric(clipDB(finalSNR(s)), "snr-2bit-db")
		}
	}
}

func BenchmarkFig20_Storage(b *testing.B) {
	var sweeps []harness.Sweep
	for i := 0; i < b.N; i++ {
		var err error
		sweeps, err = harness.Fig20Storage(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(sweeps) == 3 {
		b.ReportMetric(clipDB(finalSNR(sweeps[1])), "snr-p1e-7-db")
		b.ReportMetric(clipDB(finalSNR(sweeps[2])), "snr-p1e-5-db")
	}
}
