package anytime

import "anytime/internal/metrics"

// InfDB is the SNR of a bit-exact output: +Inf decibels (the paper's
// "∞ dB is perfect accuracy").
var InfDB = metrics.InfDB

// SNR returns the signal-to-noise ratio in decibels of approx relative to
// ref, the paper's accuracy metric; +Inf for a bit-exact match.
func SNR(ref, approx []int32) (float64, error) { return metrics.SNR(ref, approx) }

// PSNR returns the peak signal-to-noise ratio in decibels for signals with
// the given maximum value.
func PSNR(ref, approx []int32, peak int32) (float64, error) {
	return metrics.PSNR(ref, approx, peak)
}

// MSE returns the mean squared error between ref and approx.
func MSE(ref, approx []int32) (float64, error) { return metrics.MSE(ref, approx) }

// FormatDB renders a decibel value, printing "inf" for perfect accuracy.
func FormatDB(db float64) string { return metrics.FormatDB(db) }
