package anytime

import (
	"anytime/internal/perm"
	"anytime/internal/sampling"
)

// Order is a bijective visit order of the index set [0, n): the sampling
// permutations of §III-B2. Every order visits each index exactly once,
// which is what guarantees that a diffusive stage eventually reaches the
// precise output.
type Order = perm.Order

// Stripe is one worker's share of an Order under the block-cyclic
// division (§IV-C1): contiguous cache-line-aligned runs of perm.RunLen
// positions, dealt to workers in round-robin run order.
type Stripe = perm.Stripe

// LFSR is a maximal-length linear-feedback shift register, the
// deterministic generator behind pseudo-random sampling.
type LFSR = perm.LFSR

// Sequential returns the identity order p(i) = i, suited to
// priority-ordered data.
func Sequential(n int) (Order, error) { return perm.Sequential(n) }

// ReverseSequential returns the descending order p(i) = n-1-i.
func ReverseSequential(n int) (Order, error) { return perm.ReverseSequential(n) }

// Tree1D returns the one-dimensional bit-reverse ("tree") order of paper
// Figure 4: sampled resolution doubles as each level completes.
func Tree1D(n int) (Order, error) { return perm.Tree1D(n) }

// Tree2D returns the two-dimensional tree order of paper Figure 5 over a
// rows x cols grid, yielding linear row-major indices.
func Tree2D(rows, cols int) (Order, error) { return perm.Tree2D(rows, cols) }

// TreeND returns the N-dimensional tree order over the given grid.
func TreeND(dims ...int) (Order, error) { return perm.TreeND(dims...) }

// PseudoRandom returns the LFSR-generated pseudo-random order recommended
// for unordered data sets (paper Figure 3).
func PseudoRandom(n int, seed uint64) (Order, error) { return perm.PseudoRandom(n, seed) }

// NewLFSR returns a maximal-length LFSR of the given width (2..32 bits).
func NewLFSR(bits uint, seed uint64) (*LFSR, error) { return perm.NewLFSR(bits, seed) }

// MapSample runs an output-sampled diffusive map stage: output element
// ord.At(i) is computed at step i, and snapshot publishes the current
// approximation (paper §III-B2, output sampling).
func MapSample[T any](c *Context, out *Buffer[T], ord Order, apply func(dst int) error, snapshot func(processed int) (T, error), cfg RoundConfig) error {
	return sampling.Map(c, out, ord, apply, snapshot, cfg)
}

// MapSampleWorkers is MapSample with the executing worker's index exposed.
func MapSampleWorkers[T any](c *Context, out *Buffer[T], ord Order, apply func(worker, dst int) error, snapshot func(processed int) (T, error), cfg RoundConfig) error {
	return sampling.MapWorkers(c, out, ord, apply, snapshot, cfg)
}

// Reduce describes an input-sampled commutative reduction with
// worker-private partial accumulators (paper §III-B2, input sampling).
type Reduce[A any] = sampling.Reduce[A]

// RunReduce executes the reduction as a diffusive anytime stage over the
// given visit order.
func RunReduce[A any](c *Context, r Reduce[A], out *Buffer[A], ord Order, cfg RoundConfig) error {
	return r.Run(c, out, ord, cfg)
}

// ScaleCount applies the paper's population weighting O'_i = O_i x n/i for
// non-idempotent integer reductions.
func ScaleCount(v int64, processed, total int) int64 {
	return sampling.ScaleCount(v, processed, total)
}

// ScaleFloat is ScaleCount for floating-point accumulators.
func ScaleFloat(v float64, processed, total int) float64 {
	return sampling.ScaleFloat(v, processed, total)
}
