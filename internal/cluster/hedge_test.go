package cluster

import (
	"context"
	"errors"
	"net/http"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock hands runRace scripted timer channels, so "the hedge delay
// elapsed" and "the budget fired" are test statements, not sleeps: every
// interleaving below is exact and the suite runs in microseconds.
type fakeClock struct {
	timers []chan time.Time // dispensed in call order: hedge first, then budget
	next   int
	asked  []time.Duration
}

func newFakeClock(n int) *fakeClock {
	c := &fakeClock{}
	for i := 0; i < n; i++ {
		c.timers = append(c.timers, make(chan time.Time, 1))
	}
	return c
}

func (c *fakeClock) timer(d time.Duration) (<-chan time.Time, func() bool) {
	if c.next >= len(c.timers) {
		panic("fakeClock: more timers requested than scripted")
	}
	ch := c.timers[c.next]
	c.next++
	c.asked = append(c.asked, d)
	return ch, func() bool { return true }
}

func (c *fakeClock) fire(i int) { c.timers[i] <- time.Time{} }

// scriptedUpstream blocks until the test releases it (or its context is
// cancelled), then returns its scripted response.
type scriptedUpstream struct {
	up        *upstream
	release   chan struct{}
	cancelled atomic.Bool
	started   chan struct{}
}

func newScripted(member, role string, resp *backendResponse) *scriptedUpstream {
	s := &scriptedUpstream{
		release: make(chan struct{}),
		started: make(chan struct{}, 1),
	}
	s.up = &upstream{
		member: member,
		role:   role,
		do: func(ctx context.Context) *backendResponse {
			select {
			case s.started <- struct{}{}:
			default:
			}
			select {
			case <-ctx.Done():
				s.cancelled.Store(true)
				return nil
			case <-s.release:
				return resp
			}
		},
	}
	return s
}

func ok(member, role string, snr float64) *backendResponse {
	return &backendResponse{member: member, role: role, status: http.StatusOK, snr: snr}
}

func bad(member, role string) *backendResponse {
	return &backendResponse{member: member, role: role, status: http.StatusServiceUnavailable}
}

// counterHooks counts every hook firing, for exactly-once assertions.
type counterHooks struct {
	hedges, wins, cancels atomic.Int32
	winRole               atomic.Value // string
}

func (c *counterHooks) hooks() *Hooks {
	return &Hooks{
		Hedge: func(time.Duration) { c.hedges.Add(1) },
		HedgeWin: func(role string) {
			c.wins.Add(1)
			c.winRole.Store(role)
		},
		HedgeCancel: func(string) { c.cancels.Add(1) },
	}
}

// TestRacePrimaryWinsBeforeHedge: a fast primary short-circuits everything —
// no hedge, no secondary launch, no cancel.
func TestRacePrimaryWinsBeforeHedge(t *testing.T) {
	clk := newFakeClock(1)
	var ch counterHooks
	p := newScripted("a", "primary", ok("a", "primary", 20))
	s := newScripted("b", "hedge", ok("b", "hedge", 30))
	close(p.release)
	resp, err := runRace(context.Background(), race{
		hedgeDelay: 10 * time.Millisecond, budget: 50 * time.Millisecond,
		timer: clk.timer, h: ch.hooks(),
	}, p.up, s.up)
	if err != nil || resp.member != "a" {
		t.Fatalf("resp=%+v err=%v, want primary a", resp, err)
	}
	if ch.hedges.Load() != 0 || ch.wins.Load() != 0 || ch.cancels.Load() != 0 {
		t.Errorf("hooks fired on unhedged fast path: hedges=%d wins=%d cancels=%d",
			ch.hedges.Load(), ch.wins.Load(), ch.cancels.Load())
	}
	select {
	case <-s.started:
		t.Error("secondary launched although primary won before the hedge delay")
	default:
	}
}

// TestRaceHigherSNRWins: hedge fires, both backends answer inside the
// budget — the better snapshot wins regardless of arrival order, and the
// win is credited exactly once.
func TestRaceHigherSNRWins(t *testing.T) {
	for _, tc := range []struct {
		name               string
		pSNR, sSNR         float64
		sFinal             bool
		want               string
		wantRole           string
		releaseSecondFirst bool
	}{
		{name: "primary better", pSNR: 30, sSNR: 20, want: "a", wantRole: "primary"},
		{name: "hedge better", pSNR: 20, sSNR: 30, want: "b", wantRole: "hedge", releaseSecondFirst: true},
		{name: "final beats higher dB", pSNR: 90, sSNR: 0, sFinal: true, want: "b", wantRole: "hedge"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			clk := newFakeClock(2)
			var ch counterHooks
			sResp := ok("b", "hedge", tc.sSNR)
			sResp.final = tc.sFinal
			p := newScripted("a", "primary", ok("a", "primary", tc.pSNR))
			s := newScripted("b", "hedge", sResp)
			done := make(chan struct{})
			var resp *backendResponse
			var err error
			go func() {
				defer close(done)
				resp, err = runRace(context.Background(), race{
					hedgeDelay: 10 * time.Millisecond, budget: 50 * time.Millisecond,
					timer: clk.timer, h: ch.hooks(),
				}, p.up, s.up)
			}()
			<-p.started
			clk.fire(0) // hedge delay elapses
			<-s.started
			if tc.releaseSecondFirst {
				close(s.release)
				close(p.release)
			} else {
				close(p.release)
				close(s.release)
			}
			<-done
			if err != nil || resp.member != tc.want {
				t.Fatalf("resp=%+v err=%v, want member %s", resp, err, tc.want)
			}
			if ch.hedges.Load() != 1 {
				t.Errorf("hedges=%d, want 1", ch.hedges.Load())
			}
			if ch.wins.Load() != 1 || ch.winRole.Load().(string) != tc.wantRole {
				t.Errorf("wins=%d role=%v, want exactly one %s win", ch.wins.Load(), ch.winRole.Load(), tc.wantRole)
			}
		})
	}
}

// TestRaceBudgetDeliversBestAndCancelsLoser: the budget fires while the
// hedge is still out — the usable primary is delivered immediately and the
// straggler's context is cancelled.
func TestRaceBudgetDeliversBestAndCancelsLoser(t *testing.T) {
	clk := newFakeClock(2)
	var ch counterHooks
	p := newScripted("a", "primary", ok("a", "primary", 20))
	s := newScripted("b", "hedge", ok("b", "hedge", 99))
	done := make(chan struct{})
	var resp *backendResponse
	var err error
	go func() {
		defer close(done)
		resp, err = runRace(context.Background(), race{
			hedgeDelay: 10 * time.Millisecond, budget: 50 * time.Millisecond,
			timer: clk.timer, h: ch.hooks(),
		}, p.up, s.up)
	}()
	<-p.started
	clk.fire(0) // hedge
	<-s.started
	close(p.release) // primary answers (20 dB), hedge still out
	// Whichever the race loop sees first — the primary's answer or the
	// budget — the delivery is the same: the usable primary, at the budget.
	clk.fire(1) // budget
	<-done
	if err != nil || resp == nil || resp.member != "a" {
		t.Fatalf("resp=%+v err=%v, want primary a delivered at budget", resp, err)
	}
	if !waitTrue(t, func() bool { return s.cancelled.Load() }) {
		t.Error("losing hedge was not cancelled after delivery")
	}
	if ch.cancels.Load() != 1 {
		t.Errorf("cancels=%d, want exactly 1", ch.cancels.Load())
	}
	if ch.wins.Load() != 1 || ch.winRole.Load().(string) != "primary" {
		t.Errorf("wins=%d role=%v, want one primary win", ch.wins.Load(), ch.winRole.Load())
	}
}

// TestRaceBudgetNeverEmptyHanded: the budget fires before anything usable
// arrived. The race must keep waiting and deliver the first usable answer —
// budget exhaustion degrades the answer, it never empties it.
func TestRaceBudgetNeverEmptyHanded(t *testing.T) {
	clk := newFakeClock(2)
	p := newScripted("a", "primary", ok("a", "primary", 15))
	s := newScripted("b", "hedge", ok("b", "hedge", 25))
	done := make(chan struct{})
	var resp *backendResponse
	var err error
	go func() {
		defer close(done)
		resp, err = runRace(context.Background(), race{
			hedgeDelay: 10 * time.Millisecond, budget: 50 * time.Millisecond,
			timer: clk.timer,
		}, p.up, s.up)
	}()
	<-p.started
	clk.fire(0) // hedge
	<-s.started
	clk.fire(1) // budget — nothing usable yet
	select {
	case <-done:
		t.Fatal("race returned empty-handed at budget expiry")
	case <-time.After(10 * time.Millisecond):
	}
	close(s.release) // first usable answer, after the budget
	<-done
	if err != nil || resp == nil || resp.member != "b" {
		t.Fatalf("resp=%+v err=%v, want the late hedge answer delivered", resp, err)
	}
}

// TestRacePrimaryFailureFailsOver: an unusable primary answer (backend
// rejected or errored) fails over to the secondary immediately, without
// waiting out the hedge delay, and is not credited as a hedge win.
func TestRacePrimaryFailureFailsOver(t *testing.T) {
	clk := newFakeClock(1)
	var ch counterHooks
	p := newScripted("a", "primary", bad("a", "primary"))
	s := newScripted("b", "hedge", ok("b", "hedge", 25))
	close(p.release)
	close(s.release)
	resp, err := runRace(context.Background(), race{
		hedgeDelay: 10 * time.Millisecond, budget: 50 * time.Millisecond,
		timer: clk.timer, h: ch.hooks(),
	}, p.up, s.up)
	if err != nil || resp.member != "b" {
		t.Fatalf("resp=%+v err=%v, want failover to b", resp, err)
	}
	if ch.hedges.Load() != 0 {
		t.Errorf("failover counted as a hedge")
	}
}

// TestRaceAllFail: every attempt unusable → ErrNoBackend, never a nil
// response with a nil error.
func TestRaceAllFail(t *testing.T) {
	clk := newFakeClock(1)
	p := newScripted("a", "primary", bad("a", "primary"))
	s := newScripted("b", "hedge", bad("b", "hedge"))
	close(p.release)
	close(s.release)
	resp, err := runRace(context.Background(), race{
		hedgeDelay: 10 * time.Millisecond, budget: 50 * time.Millisecond,
		timer: clk.timer,
	}, p.up, s.up)
	if !errors.Is(err, ErrNoBackend) || resp != nil {
		t.Fatalf("resp=%+v err=%v, want ErrNoBackend", resp, err)
	}
}

// TestRaceNoSecondary: a single-member fleet can't hedge; the primary's
// answer (or failure) is the outcome.
func TestRaceNoSecondary(t *testing.T) {
	p := newScripted("a", "primary", ok("a", "primary", 20))
	close(p.release)
	resp, err := runRace(context.Background(), race{hedgeDelay: time.Millisecond, budget: time.Millisecond}, p.up, nil)
	if err != nil || resp.member != "a" {
		t.Fatalf("resp=%+v err=%v", resp, err)
	}

	p2 := newScripted("a", "primary", bad("a", "primary"))
	close(p2.release)
	if _, err := runRace(context.Background(), race{}, p2.up, nil); !errors.Is(err, ErrNoBackend) {
		t.Fatalf("err=%v, want ErrNoBackend", err)
	}
}

// TestRaceContextCancelPropagates: the client going away tears the race
// down and cancels every in-flight attempt.
func TestRaceContextCancelPropagates(t *testing.T) {
	clk := newFakeClock(2)
	ctx, cancel := context.WithCancel(context.Background())
	p := newScripted("a", "primary", ok("a", "primary", 20))
	s := newScripted("b", "hedge", ok("b", "hedge", 25))
	done := make(chan struct{})
	var err error
	go func() {
		defer close(done)
		_, err = runRace(ctx, race{hedgeDelay: 10 * time.Millisecond, budget: 50 * time.Millisecond, timer: clk.timer}, p.up, s.up)
	}()
	<-p.started
	clk.fire(0)
	<-s.started
	cancel()
	<-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if !waitTrue(t, func() bool { return p.cancelled.Load() && s.cancelled.Load() }) {
		t.Error("in-flight attempts not cancelled with the client context")
	}
}

// TestRaceNoBudgetFirstUsableWins: precise requests (no budget) deliver the
// first usable answer after a hedge instead of waiting for both.
func TestRaceNoBudgetFirstUsableWins(t *testing.T) {
	clk := newFakeClock(1) // hedge timer only: no budget timer must be requested
	p := newScripted("a", "primary", ok("a", "primary", 20))
	s := newScripted("b", "hedge", ok("b", "hedge", 25))
	done := make(chan struct{})
	var resp *backendResponse
	var err error
	go func() {
		defer close(done)
		resp, err = runRace(context.Background(), race{hedgeDelay: 10 * time.Millisecond, timer: clk.timer}, p.up, s.up)
	}()
	<-p.started
	clk.fire(0)
	<-s.started
	close(s.release) // hedge answers first
	<-done
	if err != nil || resp.member != "b" {
		t.Fatalf("resp=%+v err=%v, want first usable (b)", resp, err)
	}
	if !waitTrue(t, func() bool { return p.cancelled.Load() }) {
		t.Error("outstanding primary not cancelled after first-usable delivery")
	}
}

// waitTrue polls cond for up to a second — only for effects that are
// asynchronous by nature (context cancellation reaching a goroutine).
func waitTrue(t *testing.T, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return cond()
}
