package cluster

import (
	"fmt"
	"testing"
)

func members(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("backend-%d:8080", i)
	}
	return out
}

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = RingKey("/blur", fmt.Sprintf("input-%d", i))
	}
	return out
}

// TestRingDeterministic: two rings built from the same members agree on
// every key — the property that lets router replicas route identically
// without coordination.
func TestRingDeterministic(t *testing.T) {
	a := NewRing(members(5), 64)
	b := NewRing(members(5), 64)
	for _, k := range keys(1000) {
		am, bm := a.Lookup(k, 2), b.Lookup(k, 2)
		if len(am) != 2 || len(bm) != 2 || am[0] != bm[0] || am[1] != bm[1] {
			t.Fatalf("rings disagree on %q: %v vs %v", k, am, bm)
		}
	}
}

// TestRingLookupDistinct: the n members returned for a key are distinct —
// the hedge target is never the primary again.
func TestRingLookupDistinct(t *testing.T) {
	r := NewRing(members(3), 64)
	for _, k := range keys(500) {
		got := r.Lookup(k, 2)
		if len(got) != 2 || got[0] == got[1] {
			t.Fatalf("Lookup(%q, 2) = %v, want two distinct members", k, got)
		}
	}
	if got := r.Lookup("k", 5); len(got) != 3 {
		t.Fatalf("Lookup capped at fleet size: got %d members, want 3", len(got))
	}
}

// TestRingBalance: with 64 vnodes, no member of a small fleet owns a
// pathological share of keys. The same-host-adjacent-ports fleet is a
// regression case: raw FNV-1a (no finalizer) makes such members' vnode
// sets affine translates of each other — one member owned >80% of the
// ring until hash64 gained its avalanche mixer.
func TestRingBalance(t *testing.T) {
	for name, fleet := range map[string][]string{
		"distinct hosts": members(4),
		"same host, adjacent ports": {
			"127.0.0.1:40001", "127.0.0.1:40002", "127.0.0.1:40003", "127.0.0.1:40004",
		},
	} {
		t.Run(name, func(t *testing.T) {
			r := NewRing(fleet, 64)
			counts := map[string]int{}
			const n = 8000
			for _, k := range keys(n) {
				counts[r.Lookup(k, 1)[0]]++
			}
			for m, c := range counts {
				share := float64(c) / float64(n)
				if share < 0.10 || share > 0.45 {
					t.Errorf("member %s owns %.1f%% of keys (counts %v)", m, share*100, counts)
				}
			}
		})
	}
}

// TestRingMinimalMovement: removing one member only moves that member's
// keys — everyone else's warm pools keep their traffic.
func TestRingMinimalMovement(t *testing.T) {
	full := NewRing(members(5), 64)
	smaller := NewRing(members(5)[:4], 64) // backend-4 removed
	moved, kept := 0, 0
	for _, k := range keys(4000) {
		before := full.Lookup(k, 1)[0]
		after := smaller.Lookup(k, 1)[0]
		if before == "backend-4:8080" {
			continue // its keys must move somewhere
		}
		if before == after {
			kept++
		} else {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys moved between surviving members (kept %d); consistent hashing should move none", moved, kept)
	}
}

// TestRingEmpty: an empty ring answers nil, not a panic — the router turns
// that into 503.
func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 64)
	if got := r.Lookup("k", 2); got != nil {
		t.Fatalf("empty ring Lookup = %v, want nil", got)
	}
	if r.Size() != 0 {
		t.Fatalf("Size = %d", r.Size())
	}
}
