package cluster

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ewma is a concurrent exponentially-weighted moving average of durations,
// used for each member's observed RTT (the budget arithmetic's network
// term). Alpha 1/4: a few samples converge it, one outlier doesn't own it.
type ewma struct {
	nanos atomic.Int64 // 0 = no samples yet
}

// observe folds one sample in.
func (e *ewma) observe(d time.Duration) {
	for {
		old := e.nanos.Load()
		var next int64
		if old == 0 {
			next = int64(d)
		} else {
			next = old + (int64(d)-old)/4
		}
		if next == 0 {
			next = 1 // keep "no samples" distinguishable
		}
		if e.nanos.CompareAndSwap(old, next) {
			return
		}
	}
}

// value returns the current average, zero when no samples have arrived.
func (e *ewma) value() time.Duration { return time.Duration(e.nanos.Load()) }

// Digest is a bounded reservoir of recent request latencies, the source of
// the hedge delay: hedging at the observed p99 means ~1% of requests hedge
// — enough to rescue stragglers, cheap enough to leave capacity alone.
// A plain ring of the last N samples, not a sketch: N=512 bounds memory,
// recency is exactly what a hedge delay should track, and the copy-sort on
// Quantile is off the request path's critical section.
type Digest struct {
	mu  sync.Mutex
	buf []time.Duration
	n   int // filled entries
	idx int // next write position
}

// NewDigest returns a digest retaining the last size samples (min 16).
func NewDigest(size int) *Digest {
	if size < 16 {
		size = 16
	}
	return &Digest{buf: make([]time.Duration, size)}
}

// Observe records one latency sample.
func (d *Digest) Observe(v time.Duration) {
	d.mu.Lock()
	d.buf[d.idx] = v
	d.idx = (d.idx + 1) % len(d.buf)
	if d.n < len(d.buf) {
		d.n++
	}
	d.mu.Unlock()
}

// Len reports the number of retained samples.
func (d *Digest) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.n
}

// Quantile returns the q-th quantile (0..1) of the retained samples, or 0
// when empty. Nearest-rank on a sorted copy.
func (d *Digest) Quantile(q float64) time.Duration {
	d.mu.Lock()
	if d.n == 0 {
		d.mu.Unlock()
		return 0
	}
	s := make([]time.Duration, d.n)
	copy(s, d.buf[:d.n])
	d.mu.Unlock()
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	rank := int(q * float64(len(s)))
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}
