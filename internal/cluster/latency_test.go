package cluster

import (
	"sync"
	"testing"
	"time"
)

func TestEWMAConvergesAndDistinguishesEmpty(t *testing.T) {
	var e ewma
	if e.value() != 0 {
		t.Fatalf("fresh ewma = %v, want 0 (no samples)", e.value())
	}
	for i := 0; i < 50; i++ {
		e.observe(10 * time.Millisecond)
	}
	if got := e.value(); got < 9*time.Millisecond || got > 11*time.Millisecond {
		t.Fatalf("ewma after steady 10ms samples = %v", got)
	}
	// One outlier moves it by at most alpha (1/4) of the gap.
	e.observe(100 * time.Millisecond)
	if got := e.value(); got > 35*time.Millisecond {
		t.Fatalf("one outlier owns the average: %v", got)
	}
}

func TestEWMAConcurrent(t *testing.T) {
	var e ewma
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				e.observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := e.value(); got <= 0 || got > 2*time.Millisecond {
		t.Fatalf("concurrent ewma = %v", got)
	}
}

func TestDigestQuantiles(t *testing.T) {
	d := NewDigest(128)
	if d.Quantile(0.99) != 0 || d.Len() != 0 {
		t.Fatal("empty digest should answer 0")
	}
	for i := 1; i <= 100; i++ {
		d.Observe(time.Duration(i) * time.Millisecond)
	}
	if got := d.Quantile(0.5); got < 48*time.Millisecond || got > 53*time.Millisecond {
		t.Errorf("p50 = %v", got)
	}
	if got := d.Quantile(0.99); got < 98*time.Millisecond || got > 100*time.Millisecond {
		t.Errorf("p99 = %v", got)
	}
	if got := d.Quantile(0); got != time.Millisecond {
		t.Errorf("p0 = %v, want min", got)
	}
	if got := d.Quantile(1); got != 100*time.Millisecond {
		t.Errorf("p100 = %v, want max", got)
	}
}

// TestDigestWindowSlides: the digest tracks the last N samples only, so a
// latency regression ages in and a recovery ages out.
func TestDigestWindowSlides(t *testing.T) {
	d := NewDigest(16)
	for i := 0; i < 64; i++ {
		d.Observe(time.Second) // old regime
	}
	for i := 0; i < 16; i++ {
		d.Observe(time.Millisecond) // recovery fills the whole window
	}
	if got := d.Quantile(0.99); got != time.Millisecond {
		t.Fatalf("p99 after recovery = %v, want 1ms (old samples aged out)", got)
	}
	if d.Len() != 16 {
		t.Fatalf("Len = %d, want window size", d.Len())
	}
}
