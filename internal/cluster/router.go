package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"anytime/internal/reqtrace"
	"anytime/internal/serve"
)

// Default routing parameters; RouterConfig zero values take these.
const (
	// DefaultReplicas is the virtual-node count per member on the ring.
	DefaultReplicas = 64
	// DefaultHedgeQuantile is the latency quantile the hedge delay tracks:
	// hedging at p99 re-issues ~1% of requests.
	DefaultHedgeQuantile = 0.99
	// DefaultHedgeMin floors the hedge delay so a fast fleet doesn't hedge
	// every request off measurement noise.
	DefaultHedgeMin = 2 * time.Millisecond
	// DefaultHedgeMax caps the hedge delay so one latency spike in the
	// digest can't disable hedging for everyone after it. It also serves
	// as the delay before any samples arrive.
	DefaultHedgeMax = 250 * time.Millisecond
	// DefaultDigestSize is the latency-sample window behind the quantile.
	DefaultDigestSize = 512
)

// RouterConfig assembles a Router. Backends is the only required field.
type RouterConfig struct {
	// Backends are the anytimed base URLs forming the initial fleet.
	Backends []string
	// Replicas is the virtual-node count per member (default 64).
	Replicas int
	// HedgeQuantile picks the hedge delay from the latency digest
	// (default 0.99). Values outside (0,1) take the default.
	HedgeQuantile float64
	// HedgeMin / HedgeMax clamp the derived hedge delay (defaults 2ms /
	// 250ms). HedgeMax also stands in before any samples arrive. Setting
	// HedgeMax < 0 disables hedging entirely.
	HedgeMin, HedgeMax time.Duration
	// DigestSize is the latency-sample window (default 512).
	DigestSize int
	// CheckInterval / CheckTimeout / MaxFails size the health checker
	// (defaults: 1s interval, interval timeout, 3 consecutive fails).
	CheckInterval, CheckTimeout time.Duration
	MaxFails                    int
	// Client performs forwards and probes (default http.DefaultClient).
	Client *http.Client
	// Hooks observes routing (telemetry.RouterHooks); may be nil.
	Hooks *Hooks
	// FlightSize / TraceSample size the router's own flight recorder
	// (reqtrace.RecorderConfig defaults apply).
	FlightSize, TraceSample int

	// timer overrides the hedge/budget clock; tests only.
	timer timerFunc
}

// Router is the fleet's front tier. It consistent-hashes each request's
// (app, input) key onto the ring of healthy anytimed backends, forwards
// with the remaining deadline budget in the X-Anytime-Budget header, hedges
// stragglers onto the next ring member after a p99-derived delay, and
// relays whichever snapshot has the higher SNR when the budget resolves the
// race — the anytime contract, lifted to a fleet: the deadline is the
// client's end-to-end deadline, and the answer is the best snapshot any
// reachable backend published within it.
type Router struct {
	members *Membership
	checker *Checker
	client  *http.Client
	h       *Hooks
	rec     *reqtrace.Recorder
	digest  *Digest

	quantile float64
	hedgeMin time.Duration
	hedgeMax time.Duration
	timer    timerFunc

	mux *http.ServeMux
}

// NewRouter builds a router over the configured backends. Call Start to
// begin health checking and Close to stop it.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Replicas <= 0 {
		cfg.Replicas = DefaultReplicas
	}
	if cfg.HedgeQuantile <= 0 || cfg.HedgeQuantile >= 1 {
		cfg.HedgeQuantile = DefaultHedgeQuantile
	}
	if cfg.HedgeMin <= 0 {
		cfg.HedgeMin = DefaultHedgeMin
	}
	if cfg.HedgeMax == 0 {
		cfg.HedgeMax = DefaultHedgeMax
	}
	if cfg.DigestSize <= 0 {
		cfg.DigestSize = DefaultDigestSize
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.MaxFails <= 0 {
		cfg.MaxFails = 3
	}
	members, err := NewMembership(cfg.Backends, cfg.Replicas, cfg.Hooks)
	if err != nil {
		return nil, err
	}
	rec, err := reqtrace.NewRecorder(reqtrace.RecorderConfig{
		Size:        cfg.FlightSize,
		SampleEvery: cfg.TraceSample,
	})
	if err != nil {
		return nil, err
	}
	rt := &Router{
		members:  members,
		checker:  NewChecker(members, cfg.Client, cfg.CheckInterval, cfg.CheckTimeout, cfg.MaxFails),
		client:   cfg.Client,
		h:        cfg.Hooks,
		rec:      rec,
		digest:   NewDigest(cfg.DigestSize),
		quantile: cfg.HedgeQuantile,
		hedgeMin: cfg.HedgeMin,
		hedgeMax: cfg.HedgeMax,
		timer:    cfg.timer,
		mux:      http.NewServeMux(),
	}
	rt.routes()
	return rt, nil
}

// Start launches the health checker under ctx: cancelling ctx ends the
// probe loop (Close still works for callers that prefer explicit shutdown).
func (rt *Router) Start(ctx context.Context) { rt.checker.Start(ctx) }

// Close stops the health checker. In-flight requests complete.
func (rt *Router) Close() { rt.checker.Stop() }

// Membership exposes the fleet registry (tests, admin tooling).
func (rt *Router) Membership() *Membership { return rt.members }

// Checker exposes the health checker (tests force Sweep instead of waiting
// out the probe interval).
func (rt *Router) Checker() *Checker { return rt.checker }

// Recorder exposes the router's flight recorder.
func (rt *Router) Recorder() *reqtrace.Recorder { return rt.rec }

// HedgeDelay returns the current hedge delay: the configured quantile of
// the latency digest clamped to [HedgeMin, HedgeMax], HedgeMax before any
// samples arrive, and a negative value (hedging disabled) when HedgeMax<0.
func (rt *Router) HedgeDelay() time.Duration {
	if rt.hedgeMax < 0 {
		return -1
	}
	d := rt.digest.Quantile(rt.quantile)
	if d == 0 {
		return rt.hedgeMax
	}
	if d < rt.hedgeMin {
		return rt.hedgeMin
	}
	if d > rt.hedgeMax {
		return rt.hedgeMax
	}
	return d
}

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.mux.ServeHTTP(w, r)
}

func (rt *Router) routes() {
	rt.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if rt.members.Ring().Lookup("", 1) == nil {
			http.Error(w, "no healthy backends", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	rt.mux.HandleFunc("GET /members", rt.handleMembersList)
	rt.mux.HandleFunc("POST /members", rt.handleMemberAdd)
	rt.mux.HandleFunc("DELETE /members", rt.handleMemberRemove)
	rt.registerDebugRequests()
	// Everything else is an app route, proxied onto the ring.
	rt.mux.HandleFunc("/", rt.handleProxy)
}

// memberView is the JSON shape of GET /members.
type memberView struct {
	Name  string `json:"name"`
	URL   string `json:"url"`
	State string `json:"state"`
	RTT   string `json:"rtt"`
}

func (rt *Router) handleMembersList(w http.ResponseWriter, r *http.Request) {
	ms := rt.members.Members()
	views := make([]memberView, 0, len(ms))
	for _, m := range ms {
		views = append(views, memberView{m.Name, m.URL, m.State().String(), m.RTT().String()})
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(views)
}

// handleMemberAdd joins a backend: POST /members?url=http://host:port.
// The new member starts healthy; the next probe sweep corrects that if
// it's wrong. Only its share of keys moves.
func (rt *Router) handleMemberAdd(w http.ResponseWriter, r *http.Request) {
	u := r.URL.Query().Get("url")
	if u == "" {
		http.Error(w, "missing url parameter", http.StatusBadRequest)
		return
	}
	if err := rt.members.Add(u); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	fmt.Fprintln(w, "added")
}

// handleMemberRemove drains then drops a backend:
// DELETE /members?name=host:port. The backend is asked to drain (so its
// own /healthz flips for any other router watching it), marked draining
// here immediately (off the ring without waiting for a probe), and
// forgotten. In-flight requests to it complete.
func (rt *Router) handleMemberRemove(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	m := rt.members.Member(name)
	if m == nil {
		http.Error(w, "unknown member", http.StatusNotFound)
		return
	}
	rt.members.SetState(name, StateDraining)
	if req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, m.URL+"/drain", nil); err == nil {
		if resp, err := rt.client.Do(req); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	rt.members.Remove(name)
	fmt.Fprintln(w, "removed")
}

// registerDebugRequests mounts the router's own flight recorder, same
// shape as the backend's: router spans (route.pick, budget, forward,
// hedge.*, deliver) instead of automaton spans.
func (rt *Router) registerDebugRequests() {
	rt.mux.HandleFunc("GET /debug/requests", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if id := r.URL.Query().Get("id"); id != "" {
			t := rt.rec.Find(id)
			if t == nil {
				http.Error(w, "trace not found (evicted, sampled out, or never seen)", http.StatusNotFound)
				return
			}
			_ = t.WriteDetail(w, 60)
			return
		}
		st := rt.rec.Stats()
		fmt.Fprintf(w, "router flight recorder: %d/%d traces held, %d recorded, %d sampled out, %d evicted\n",
			st.Held, st.Capacity, st.Recorded, st.SampledOut, st.Evicted)
		fmt.Fprintf(w, "detail: GET /debug/requests?id=<ID>  (IDs are echoed as X-Anytime-Trace)\n\n")
		_ = reqtrace.WriteList(w, rt.rec.Snapshot())
	})
	rt.mux.HandleFunc("GET /debug/requests.json", func(w http.ResponseWriter, r *http.Request) {
		traces := rt.rec.Snapshot()
		views := make([]reqtrace.View, 0, len(traces))
		for _, t := range traces {
			views = append(views, t.View())
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(struct {
			Stats  reqtrace.Stats  `json:"stats"`
			Traces []reqtrace.View `json:"traces"`
		}{rt.rec.Stats(), views})
	})
}

// handleProxy is the routing hot path: key → ring lookup → budget →
// hedged forward → relay the winning snapshot.
func (rt *Router) handleProxy(w http.ResponseWriter, r *http.Request) {
	arrival := time.Now()
	ctx, tr := reqtrace.New(r.Context(), r.URL.Path)
	w.Header().Set("X-Anytime-Trace", tr.ID())
	status := http.StatusOK
	defer func() {
		tr.Finish(status)
		rt.rec.Record(tr)
	}()

	// The routing key pins (app, input) to a backend so its warm pools and
	// caches see the same keys across requests. The input digest arrives as
	// the ?input query parameter; absent, the app alone routes (all
	// backends currently serve the same built-in input set).
	key := RingKey(r.URL.Path, r.URL.Query().Get("input"))
	ring := rt.members.Ring()
	targets := ring.Lookup(key, 2)
	if len(targets) == 0 {
		status = http.StatusServiceUnavailable
		tr.Error("no healthy backends")
		http.Error(w, "no healthy backends", status)
		return
	}
	tr.RoutePick(targets[0], key, 0)
	if len(targets) > 1 {
		tr.RoutePick(targets[1], key, 1)
	}
	primary := rt.members.Member(targets[0])
	if primary == nil {
		status = http.StatusServiceUnavailable
		http.Error(w, "no healthy backends", status)
		return
	}

	// Budget arithmetic: what remains of the client's deadline after the
	// router's own dwell and the expected network round trip. Zero-deadline
	// (precise) requests are never budgeted.
	deadline := parseDeadline(r)
	budget, floored := Remaining(deadline, time.Since(arrival), primary.RTT())
	if deadline > 0 {
		tr.Budget(budget, floored)
		if floored {
			if rt.h != nil && rt.h.BudgetFloored != nil {
				rt.h.BudgetFloored()
			}
		}
	}

	// Assemble the race: hedge onto the next ring member if there is one.
	up1 := rt.upstream(primary, "primary", r, deadline, budget)
	var up2 *upstream
	if len(targets) > 1 {
		if second := rt.members.Member(targets[1]); second != nil {
			up2 = rt.upstream(second, "hedge", r, deadline, budget)
		}
	}
	rc := race{
		hedgeDelay: rt.HedgeDelay(),
		timer:      rt.timer,
		tr:         tr,
		h:          rt.h,
	}
	// The race's budget timer bounds the selection phase after a hedge
	// fires. The backends bound themselves via the forwarded header; the
	// router-side timer only needs to cover the leftover (network skew),
	// so it gets the budget plus slack rather than a second full deadline.
	if deadline > 0 && budget > 0 {
		// The race timer is router-side bookkeeping, not the wire budget: the
		// backends were already handed the unwidened value, and the +25% slack
		// only keeps the selection phase from abandoning a response that the
		// backend is still entitled to deliver at its own deadline.
		//lint:ignore budgetflow race-timer slack, not the propagated budget: backends already received the unwidened value
		rc.budget = budget + budget/4
	}

	resp, err := runRace(ctx, rc, up1, up2)
	if err != nil {
		status = http.StatusBadGateway
		tr.Error(err.Error())
		if ctx.Err() != nil {
			status = 499 // client went away; nobody to answer
		}
		http.Error(w, "no backend could serve the request", status)
		return
	}

	elapsed := time.Since(arrival)
	rt.digest.Observe(elapsed)
	if m := rt.members.Member(resp.member); m != nil {
		m.ObserveRTT(resp.rtt)
	}
	hedged := resp.role == "hedge"
	if rt.h != nil && rt.h.Deliver != nil {
		rt.h.Deliver(resp.member, hedged, elapsed)
	}

	// Relay the winner verbatim, plus the router's own provenance headers.
	h := w.Header()
	for k, vs := range resp.header {
		if k == "X-Anytime-Trace" {
			// The router's trace ID names the end-to-end request; the
			// backend's names one leg of it.
			k = "X-Anytime-Backend-Trace"
		}
		for _, v := range vs {
			h.Add(k, v)
		}
	}
	h.Set("X-Anytime-Trace", tr.ID())
	h.Set("X-Anytime-Backend", resp.member)
	h.Set("X-Anytime-Hedged", strconv.FormatBool(hedged))
	status = resp.status
	w.WriteHeader(status)
	_, _ = w.Write(resp.body)
}

// upstream builds one forwarding attempt against a member. The forwarded
// request carries the original path and query plus the budget header; its
// context is the race's per-attempt context, so cancelling the race loser
// tears the connection down.
func (rt *Router) upstream(m *Member, role string, r *http.Request, deadline, budget time.Duration) *upstream {
	target := m.URL + r.URL.RequestURI()
	return &upstream{
		member: m.Name,
		role:   role,
		do: func(ctx context.Context) *backendResponse {
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
			if err != nil {
				return nil
			}
			if deadline > 0 {
				req.Header.Set(serve.BudgetHeader, serve.FormatBudget(budget))
			}
			start := time.Now()
			resp, err := rt.client.Do(req)
			if err != nil {
				return nil
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				return nil
			}
			rtt := time.Since(start)
			m.ObserveRTT(rtt)
			br := &backendResponse{
				member: m.Name,
				role:   role,
				status: resp.StatusCode,
				header: resp.Header,
				body:   body,
				rtt:    rtt,
			}
			// strconv accepts "inf" (metrics.FormatDB's spelling for a
			// final snapshot), so one parse covers both cases.
			if v, err := strconv.ParseFloat(resp.Header.Get("X-Anytime-SNR-dB"), 64); err == nil {
				br.snr = v
			}
			br.final = resp.Header.Get("X-Anytime-Final") == "true"
			return br
		},
	}
}

// parseDeadline reads the request's deadline knob; malformed values are
// left for the backend to reject (the router does not duplicate knob
// validation), so errors here read as "no deadline".
func parseDeadline(r *http.Request) time.Duration {
	d := r.URL.Query().Get("deadline")
	if d == "" {
		return 0
	}
	v, err := time.ParseDuration(d)
	if err != nil || v <= 0 {
		return 0
	}
	return v
}
