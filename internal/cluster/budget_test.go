package cluster

import (
	"testing"
	"time"
)

// TestRemaining is the router-side half of the budget arithmetic
// (serve.ApplyBudget tests cover the backend half): budget = deadline −
// spent − rtt, floored at zero, with precise requests never budgeted.
func TestRemaining(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	for _, tc := range []struct {
		name                 string
		deadline, spent, rtt time.Duration
		want                 time.Duration
		wantFloored          bool
	}{
		{name: "typical", deadline: ms(100), spent: ms(10), rtt: ms(5), want: ms(85)},
		{name: "nothing spent", deadline: ms(100), want: ms(100)},
		{name: "exactly exhausted", deadline: ms(100), spent: ms(60), rtt: ms(40), want: 0, wantFloored: true},
		{name: "overspent", deadline: ms(100), spent: ms(150), rtt: ms(5), want: 0, wantFloored: true},
		{name: "rtt alone exhausts", deadline: ms(10), spent: 0, rtt: ms(20), want: 0, wantFloored: true},
		{name: "one nanosecond left", deadline: ms(100), spent: ms(100) - time.Nanosecond, want: time.Nanosecond},
		{name: "precise request", deadline: 0, spent: ms(50), rtt: ms(5), want: 0, wantFloored: false},
		{name: "negative deadline", deadline: -ms(1), want: 0, wantFloored: false},
		{name: "negative spent clamped", deadline: ms(100), spent: -ms(10), want: ms(100)},
		{name: "negative rtt clamped", deadline: ms(100), rtt: -ms(10), want: ms(100)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, floored := Remaining(tc.deadline, tc.spent, tc.rtt)
			if got != tc.want || floored != tc.wantFloored {
				t.Fatalf("Remaining(%v, %v, %v) = (%v, %v), want (%v, %v)",
					tc.deadline, tc.spent, tc.rtt, got, floored, tc.want, tc.wantFloored)
			}
		})
	}
}
