package cluster

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// LoadConfig describes one open-loop load run against a router (or a bare
// backend — the generator only speaks the public HTTP surface).
type LoadConfig struct {
	// Target is the base URL requests go to.
	Target string
	// Routes are the app paths to spread requests across (default /blur).
	Routes []string
	// Deadline is the per-request deadline knob; zero sends precise
	// requests (no knob).
	Deadline time.Duration
	// Rate is the offered load in requests per second.
	Rate float64
	// Duration is how long arrivals keep coming.
	Duration time.Duration
	// Curve shapes the arrival process: "uniform" (evenly spaced),
	// "poisson" (exponential inter-arrivals, the open-loop default), or
	// "ramp" (rate climbs linearly from zero to twice Rate).
	Curve string
	// Seed makes the arrival schedule and key choice reproducible.
	Seed int64
	// Keys is how many distinct ?input= routing keys to spread across
	// (default 16) — enough to exercise every ring member.
	Keys int
	// Client issues the requests (default http.DefaultClient).
	Client *http.Client
	// MaxInFlight bounds concurrent outstanding requests (default 4096).
	// Arrivals past the bound are counted as dropped, not queued: queuing
	// them would turn the open loop closed and hide saturation.
	MaxInFlight int
}

// LoadReport is one run's scorecard: the delivered-quality and latency
// distributions the anytime contract is graded on. All latencies are
// client-observed (include network + router + backend).
type LoadReport struct {
	Offered  float64 `json:"offered_rps"`
	Curve    string  `json:"curve"`
	Deadline string  `json:"deadline"`

	Sent    int `json:"sent"`
	OK      int `json:"ok"`
	Errors  int `json:"errors"`  // transport errors
	NonOK   int `json:"non_ok"`  // HTTP status != 200 (empty-handed)
	Dropped int `json:"dropped"` // client-side MaxInFlight overflow
	Hedged  int `json:"hedged"`  // X-Anytime-Hedged: true
	Final   int `json:"final"`   // X-Anytime-Final: true (precise delivery)

	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP90Ms float64 `json:"latency_p90_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`

	// SNR percentiles over OK responses, in dB; final (precise) snapshots
	// count as SNRCap dB so the percentiles stay finite in JSON.
	SNRP50DB  float64 `json:"snr_p50_db"`
	SNRP10DB  float64 `json:"snr_p10_db"` // the tail that matters: worst-delivered quality
	MeanSNRDB float64 `json:"snr_mean_db"`
}

// SNRCap stands in for +Inf (a final, bit-exact snapshot) in SNR
// aggregates: JSON has no Inf, and 200 dB is far above any approximation.
const SNRCap = 200.0

// RunLoad executes one open-loop run and aggregates the report. The
// arrival schedule is precomputed from the seed, so two runs with the same
// config offer identical load.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	if cfg.Rate <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("cluster: load needs positive rate and duration")
	}
	if len(cfg.Routes) == 0 {
		cfg.Routes = []string{"/blur"}
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 16
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 4096
	}
	offsets := arrivals(cfg)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	type sample struct {
		latency time.Duration
		snr     float64
		status  int
		hedged  bool
		final   bool
		err     bool
		skipped bool // dropped at MaxInFlight, never sent
	}
	samples := make([]sample, len(offsets))
	sem := make(chan struct{}, cfg.MaxInFlight)
	var wg sync.WaitGroup
	var dropped int
	start := time.Now()
	for i, off := range offsets {
		// Picked on the schedule goroutine so the sequence is seed-stable
		// regardless of request interleaving.
		route := cfg.Routes[rng.Intn(len(cfg.Routes))]
		key := rng.Intn(cfg.Keys)
		if d := time.Until(start.Add(off)); d > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(d):
			}
		}
		select {
		case sem <- struct{}{}:
		default:
			dropped++
			samples[i].skipped = true
			continue
		}
		wg.Add(1)
		go func(i int, route string, key int) {
			defer wg.Done()
			defer func() { <-sem }()
			url := fmt.Sprintf("%s%s?input=k%d", cfg.Target, route, key)
			if cfg.Deadline > 0 {
				url += "&deadline=" + cfg.Deadline.String()
			}
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
			if err != nil {
				samples[i].err = true
				return
			}
			t0 := time.Now()
			resp, err := cfg.Client.Do(req)
			if err != nil {
				samples[i].err = true
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			s := &samples[i]
			s.latency = time.Since(t0)
			s.status = resp.StatusCode
			s.hedged = resp.Header.Get("X-Anytime-Hedged") == "true"
			s.final = resp.Header.Get("X-Anytime-Final") == "true"
			if v, err := strconv.ParseFloat(resp.Header.Get("X-Anytime-SNR-dB"), 64); err == nil {
				s.snr = math.Min(v, SNRCap)
			}
		}(i, route, key)
	}
	wg.Wait()

	rep := &LoadReport{
		Offered:  cfg.Rate,
		Curve:    curveName(cfg.Curve),
		Deadline: cfg.Deadline.String(),
		Sent:     len(offsets),
		Dropped:  dropped,
	}
	var lats []time.Duration
	var snrs []float64
	var snrSum float64
	for i := range samples {
		s := &samples[i]
		if s.skipped {
			continue
		}
		if s.err {
			rep.Errors++
			continue
		}
		lats = append(lats, s.latency)
		if s.status == http.StatusOK {
			rep.OK++
			snrs = append(snrs, s.snr)
			snrSum += s.snr
		} else {
			rep.NonOK++
		}
		if s.hedged {
			rep.Hedged++
		}
		if s.final {
			rep.Final++
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	rep.LatencyP50Ms = ms(quantileDur(lats, 0.50))
	rep.LatencyP90Ms = ms(quantileDur(lats, 0.90))
	rep.LatencyP99Ms = ms(quantileDur(lats, 0.99))
	sort.Float64s(snrs)
	rep.SNRP50DB = quantileF(snrs, 0.50)
	rep.SNRP10DB = quantileF(snrs, 0.10)
	if len(snrs) > 0 {
		rep.MeanSNRDB = snrSum / float64(len(snrs))
	}
	return rep, nil
}

// arrivals precomputes the request offsets for the configured curve: the
// schedule depends only on (rate, duration, curve, seed), never on how the
// server responds — that is what makes the loop open.
func arrivals(cfg LoadConfig) []time.Duration {
	n := int(cfg.Rate * cfg.Duration.Seconds())
	if n < 1 {
		n = 1
	}
	out := make([]time.Duration, 0, n)
	switch curveName(cfg.Curve) {
	case "uniform":
		for i := 0; i < n; i++ {
			out = append(out, time.Duration(float64(i)/cfg.Rate*float64(time.Second)))
		}
	case "ramp":
		// Rate climbs linearly from 0 to 2*Rate over Duration; total count
		// stays Rate*Duration. Cumulative arrivals R*t^2/D invert to
		// t_i = sqrt(i*D/R).
		d := cfg.Duration.Seconds()
		for i := 0; i < n; i++ {
			t := math.Sqrt(float64(i) * d / cfg.Rate)
			out = append(out, time.Duration(t*float64(time.Second)))
		}
	default: // poisson
		rng := rand.New(rand.NewSource(cfg.Seed))
		t := 0.0
		for i := 0; i < n; i++ {
			t += rng.ExpFloat64() / cfg.Rate
			out = append(out, time.Duration(t*float64(time.Second)))
		}
	}
	return out
}

func curveName(c string) string {
	switch c {
	case "uniform", "ramp":
		return c
	default:
		return "poisson"
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// quantileDur is nearest-rank on an already-sorted slice, 0 when empty.
func quantileDur(s []time.Duration, q float64) time.Duration {
	if len(s) == 0 {
		return 0
	}
	i := int(q * float64(len(s)))
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

// quantileF is nearest-rank on an already-sorted slice, 0 when empty.
func quantileF(s []float64, q float64) float64 {
	if len(s) == 0 {
		return 0
	}
	i := int(q * float64(len(s)))
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}
