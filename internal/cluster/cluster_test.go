package cluster_test

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"anytime/internal/cluster"
	"anytime/internal/daemon"
)

// harness is the in-process fleet: N real anytimed servers (internal/daemon,
// the same code the binary runs) behind real loopback listeners, fronted by
// a cluster.Router. No mocks anywhere on the serving path — the deadline contract
// is asserted against the genuine article.
type harness struct {
	backends []*httptest.Server
	names    []string
	router   *cluster.Router
	front    *httptest.Server
	client   *http.Client
}

func newHarness(t *testing.T, n int, cfg cluster.RouterConfig) *harness {
	t.Helper()
	h := &harness{client: &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}}
	for i := 0; i < n; i++ {
		srv, err := daemon.New(64, 2, daemon.Config{})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		h.backends = append(h.backends, ts)
		h.names = append(h.names, strings.TrimPrefix(ts.URL, "http://"))
		cfg.Backends = append(cfg.Backends, ts.URL)
	}
	if cfg.CheckInterval == 0 {
		cfg.CheckInterval = 50 * time.Millisecond
	}
	if cfg.CheckTimeout == 0 {
		// Distinct from the interval: under -race and full request load a
		// healthy backend can take >50ms to answer a probe, and a flapping
		// checker would empty the ring mid-test. Dead backends are still
		// detected fast — connection refused fails immediately.
		cfg.CheckTimeout = 2 * time.Second
	}
	if cfg.MaxFails == 0 {
		cfg.MaxFails = 2
	}
	rt, err := cluster.NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start(context.Background())
	t.Cleanup(rt.Close)
	h.router = rt
	h.front = httptest.NewServer(rt)
	t.Cleanup(h.front.Close)
	return h
}

func (h *harness) get(t *testing.T, path string) *http.Response {
	t.Helper()
	resp, err := h.client.Get(h.front.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return resp
}

// TestClusterDeadlineContract: the per-node contract holds through the
// router — a deadline request returns 200 with a versioned snapshot and an
// SNR, the budget header reaches the backend, and the end-to-end time is
// bounded by the deadline, not the precise run time.
func TestClusterDeadlineContract(t *testing.T) {
	h := newHarness(t, 3, cluster.RouterConfig{})
	for i := 0; i < 10; i++ {
		start := time.Now()
		resp := h.get(t, fmt.Sprintf("/blur?input=k%d&deadline=50ms", i))
		elapsed := time.Since(start)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("deadline request %d: status %d", i, resp.StatusCode)
		}
		if v, err := strconv.Atoi(resp.Header.Get("X-Anytime-Version")); err != nil || v < 1 {
			t.Fatalf("version %q, want >= 1 (never empty-handed)", resp.Header.Get("X-Anytime-Version"))
		}
		if _, err := strconv.ParseFloat(resp.Header.Get("X-Anytime-SNR-dB"), 64); err != nil {
			t.Fatalf("unparseable SNR %q", resp.Header.Get("X-Anytime-SNR-dB"))
		}
		if resp.Header.Get("X-Anytime-Backend") == "" {
			t.Fatal("no backend attribution")
		}
		// Bounded by the deadline plus generous scheduling slack — far
		// below the ~precise run time for a cold 64x64 automaton chain.
		if elapsed > 2*time.Second {
			t.Fatalf("deadline request took %v", elapsed)
		}
	}
}

// TestClusterAffinity: while membership is stable, one key stays on one
// backend — the consistent-hash property the warm pools depend on.
func TestClusterAffinity(t *testing.T) {
	h := newHarness(t, 3, cluster.RouterConfig{})
	owners := map[string]string{}
	for round := 0; round < 5; round++ {
		for k := 0; k < 9; k++ {
			key := fmt.Sprintf("k%d", k)
			resp := h.get(t, "/equalize?input="+key+"&deadline=30ms")
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			backend := resp.Header.Get("X-Anytime-Backend")
			if prev, seen := owners[key]; seen && prev != backend {
				t.Fatalf("key %s moved %s -> %s with stable membership", key, prev, backend)
			}
			owners[key] = backend
		}
	}
	distinct := map[string]bool{}
	for _, b := range owners {
		distinct[b] = true
	}
	if len(distinct) < 2 {
		t.Errorf("9 keys all on one backend: %v", owners)
	}
}

// TestClusterBackendKilledMidSweep is the acceptance sweep: 1000 requests
// against a 3-backend fleet, one backend killed (in-flight connections
// severed, listener closed) a third of the way through, and NOT ONE
// response may be empty-handed: every request returns 200 with a versioned
// snapshot, served by whoever was reachable — failover inside the hedged
// race before the checker reacts, the rebuilt ring after.
func TestClusterBackendKilledMidSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-request sweep")
	}
	h := newHarness(t, 3, cluster.RouterConfig{
		HedgeMin: 5 * time.Millisecond,
		HedgeMax: 30 * time.Millisecond,
	})

	const total = 1000
	const workers = 32
	const killAt = total / 3

	var issued atomic.Int32
	var killOnce sync.Once
	victim := h.backends[0]
	victimName := h.names[0]

	type result struct {
		status  int
		version int
		backend string
		err     error
	}
	results := make([]result, total)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				i := int(issued.Add(1)) - 1
				if i >= total {
					return
				}
				if i == killAt {
					killOnce.Do(func() {
						// Sever in-flight connections first (requests die
						// mid-flight), then stop the listener entirely.
						victim.CloseClientConnections()
						victim.Close()
					})
				}
				key := fmt.Sprintf("k%d", rng.Intn(24))
				resp, err := h.client.Get(h.front.URL + "/blur?input=" + key + "&deadline=40ms")
				if err != nil {
					results[i] = result{err: err}
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				v, _ := strconv.Atoi(resp.Header.Get("X-Anytime-Version"))
				r := result{status: resp.StatusCode, version: v, backend: resp.Header.Get("X-Anytime-Backend")}
				if len(body) == 0 {
					r.status = -1 // empty body counts as empty-handed
				}
				results[i] = r
			}
		}(w)
	}
	wg.Wait()

	emptyHanded := 0
	servedByVictimAfterKill := 0
	for i, r := range results {
		if r.err != nil || r.status != http.StatusOK || r.version < 1 {
			emptyHanded++
			t.Errorf("request %d empty-handed: status=%d version=%d err=%v", i, r.status, r.version, r.err)
			if emptyHanded > 10 {
				t.Fatal("...and more")
			}
		}
		// The victim may legitimately serve requests that were in flight
		// before the kill; afterwards the sweep is concurrent so a small
		// index skew is expected, but far-past-kill victim attributions
		// would mean the ring never rebuilt.
		if i > killAt+workers && r.backend == victimName {
			servedByVictimAfterKill++
		}
	}
	if emptyHanded > 0 {
		t.Fatalf("%d/%d responses empty-handed after killing a backend", emptyHanded, total)
	}
	if servedByVictimAfterKill > 0 {
		t.Errorf("%d responses attributed to the dead backend well after the kill", servedByVictimAfterKill)
	}
	if got := h.router.Membership().Member(victimName).State(); got != cluster.StateDown {
		t.Errorf("victim state %v after sweep, want down", got)
	}
	if h.router.Membership().Ring().Size() != 2 {
		t.Errorf("ring size %d after kill, want 2", h.router.Membership().Ring().Size())
	}
}

// TestClusterDrainLifecycle: POST /drain on a backend takes it off the
// ring via the health checker (no dropped requests), DELETE /drain rejoins
// it — the operator's rolling-restart building block.
func TestClusterDrainLifecycle(t *testing.T) {
	h := newHarness(t, 3, cluster.RouterConfig{})
	target := h.backends[1]
	name := h.names[1]

	req, _ := http.NewRequest(http.MethodPost, target.URL+"/drain", nil)
	resp, err := h.client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !waitTrue(t, func() bool { return h.router.Membership().Member(name).State() == cluster.StateDraining }) {
		t.Fatal("checker never saw the drain")
	}
	if h.router.Membership().Ring().Size() != 2 {
		t.Fatal("draining member still on the ring")
	}
	// Traffic flows around it.
	for i := 0; i < 12; i++ {
		r := h.get(t, fmt.Sprintf("/blur?input=k%d&deadline=30ms", i))
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("request during drain: %d", r.StatusCode)
		}
		if r.Header.Get("X-Anytime-Backend") == name {
			t.Fatalf("new work routed to a draining backend")
		}
	}
	// Rejoin.
	req, _ = http.NewRequest(http.MethodDelete, target.URL+"/drain", nil)
	resp, err = h.client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !waitTrue(t, func() bool { return h.router.Membership().Member(name).State() == cluster.StateHealthy }) {
		t.Fatal("backend never rejoined after DELETE /drain")
	}
	if h.router.Membership().Ring().Size() != 3 {
		t.Fatal("rejoined member not back on the ring")
	}
}

// TestClusterLoadgenSmoke: the load generator end-to-end against the
// in-process fleet — a miniature of the nightly CI smoke and the BENCH
// run. Low rate, short window; asserts the report is coherent and no
// request came back empty-handed.
func TestClusterLoadgenSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load smoke")
	}
	h := newHarness(t, 3, cluster.RouterConfig{})
	rep, err := cluster.RunLoad(t.Context(), cluster.LoadConfig{
		Target:   h.front.URL,
		Routes:   []string{"/blur", "/equalize"},
		Deadline: 40 * time.Millisecond,
		Rate:     60,
		Duration: 2 * time.Second,
		Curve:    "poisson",
		Seed:     7,
		Keys:     12,
		Client:   h.client,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent < 100 {
		t.Fatalf("sent %d, want the full schedule", rep.Sent)
	}
	if rep.NonOK != 0 || rep.Errors != 0 {
		t.Fatalf("empty-handed under nominal load: non_ok=%d errors=%d (of %d)", rep.NonOK, rep.Errors, rep.Sent)
	}
	if rep.OK+rep.Dropped != rep.Sent {
		t.Fatalf("accounting: ok=%d dropped=%d sent=%d", rep.OK, rep.Dropped, rep.Sent)
	}
	if rep.LatencyP50Ms <= 0 || rep.LatencyP99Ms < rep.LatencyP50Ms {
		t.Fatalf("latency percentiles incoherent: p50=%.2f p99=%.2f", rep.LatencyP50Ms, rep.LatencyP99Ms)
	}
	if rep.SNRP50DB <= 0 {
		t.Fatalf("delivered SNR p50 = %.2f dB, want positive", rep.SNRP50DB)
	}
}

// waitTrue polls cond for up to five seconds — for state that flips on the
// health checker's cadence, not synchronously.
func waitTrue(t *testing.T, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return cond()
}
