package cluster

import (
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Checker drives the fleet's health state off the backends' own /healthz:
// 200 means healthy, 503 with a "draining" body means the backend asked to
// leave gracefully (its /drain endpoint was hit), and consecutive probe
// failures mark it down. Each probe's round-trip also feeds the member's
// RTT EWMA, so the budget arithmetic has a network estimate even before
// the first proxied request.
type Checker struct {
	members  *Membership
	client   *http.Client
	interval time.Duration
	timeout  time.Duration
	maxFails int32

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewChecker builds a checker probing every member each interval, with the
// given per-probe timeout and the number of consecutive failures that mark
// a member down (min 1).
func NewChecker(ms *Membership, client *http.Client, interval, timeout time.Duration, maxFails int) *Checker {
	if client == nil {
		client = http.DefaultClient
	}
	if interval <= 0 {
		interval = time.Second
	}
	if timeout <= 0 {
		timeout = interval
	}
	if maxFails < 1 {
		maxFails = 1
	}
	return &Checker{
		members:  ms,
		client:   client,
		interval: interval,
		timeout:  timeout,
		maxFails: int32(maxFails),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the probe loop under ctx: cancelling ctx (or calling
// Stop) ends the loop and aborts any in-flight probes. One immediate sweep
// runs before the first tick so a router doesn't route blind for a full
// interval after boot.
func (c *Checker) Start(ctx context.Context) {
	go func() {
		defer close(c.done)
		c.Sweep(ctx)
		t := time.NewTicker(c.interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-c.stop:
				return
			case <-t.C:
				c.Sweep(ctx)
			}
		}
	}()
}

// Stop ends the probe loop and waits for it to exit. Idempotent.
func (c *Checker) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.done
}

// Sweep probes every member once, concurrently, under ctx, and applies
// transitions. Exported so tests (and an operator poking a router) can
// force a membership reassessment without waiting out the interval.
func (c *Checker) Sweep(ctx context.Context) {
	var wg sync.WaitGroup
	for _, m := range c.members.Members() {
		wg.Add(1)
		go func(m *Member) {
			defer wg.Done()
			c.probe(ctx, m)
		}(m)
	}
	wg.Wait()
}

// probe checks one member and applies the resulting transition. The probe
// request derives from ctx — a stopping router abandons in-flight probes
// instead of letting them dangle on a dead client's timeout.
func (c *Checker) probe(ctx context.Context, m *Member) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimSuffix(m.URL, "/")+"/healthz", nil)
	if err != nil {
		c.fail(m)
		return
	}
	start := time.Now()
	resp, err := c.client.Do(req)
	if err != nil {
		c.fail(m)
		return
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	resp.Body.Close()
	m.ObserveRTT(time.Since(start))
	switch {
	case resp.StatusCode == http.StatusOK:
		m.fails.Store(0)
		c.members.SetState(m.Name, StateHealthy)
	case resp.StatusCode == http.StatusServiceUnavailable && strings.Contains(string(body), "draining"):
		// The backend asked to leave: graceful, not a failure.
		m.fails.Store(0)
		c.members.SetState(m.Name, StateDraining)
	default:
		c.fail(m)
	}
}

// fail counts one failed probe, marking the member down at the threshold.
func (c *Checker) fail(m *Member) {
	if m.fails.Add(1) >= c.maxFails {
		c.members.SetState(m.Name, StateDown)
	}
}
