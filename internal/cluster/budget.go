package cluster

import "time"

// Remaining computes the deadline budget a router hands a backend: the
// client's deadline minus the time already spent inside the router (queue
// wait, routing) minus the expected cost of the network hop (the member's
// observed RTT). The backend treats the result as a ceiling on the
// deadline it grants (serve.ApplyBudget), so the whole fleet's spending on
// one request stays inside the client's contract.
//
// floored reports that the fleet has already spent the entire deadline:
// the budget clamps to zero, and the backend will deliver its first
// published snapshot immediately — degraded to the floor, but never
// empty-handed. Precise requests (deadline <= 0) are never budgeted:
// precision is an explicit contract, bounded by admission control instead.
func Remaining(deadline, spent, rtt time.Duration) (budget time.Duration, floored bool) {
	if deadline <= 0 {
		return 0, false
	}
	if spent < 0 {
		spent = 0
	}
	if rtt < 0 {
		rtt = 0
	}
	budget = deadline - spent - rtt
	if budget <= 0 {
		return 0, true
	}
	return budget, false
}
