package cluster

import (
	"context"
	"errors"
	"math"
	"net/http"
	"time"

	"anytime/internal/reqtrace"
)

// ErrNoBackend is returned when a request cannot be served by any backend:
// the ring is empty, or every attempted forward failed.
var ErrNoBackend = errors.New("cluster: no backend could serve the request")

// backendResponse is one backend's answer, decoded far enough for the race
// to judge it: the raw body and headers to relay, plus the snapshot
// quality read from the X-Anytime-* headers. A final (precise) snapshot
// scores +Inf — it beats any approximation.
type backendResponse struct {
	member string
	role   string // primary | hedge
	status int
	header http.Header
	body   []byte
	rtt    time.Duration
	snr    float64 // dB; +Inf for a final snapshot
	final  bool
}

// usable reports whether the response carries a deliverable snapshot.
func (r *backendResponse) usable() bool { return r != nil && r.status == http.StatusOK }

// score ranks responses in the race: final beats approximate, higher SNR
// beats lower. Unusable responses never reach scoring.
func (r *backendResponse) score() float64 {
	if r.final {
		return math.Inf(1)
	}
	return r.snr
}

// upstream is one forwarding attempt the race can launch: do must honor
// ctx cancellation (the loser's cancel is how the race returns capacity).
type upstream struct {
	member string
	role   string
	do     func(ctx context.Context) *backendResponse // nil = attempt failed
}

// timerFunc is the race's clock seam: production uses time.NewTimer, the
// determinism tests inject hand-fed channels so hedge/budget firings are
// scripted, not raced.
type timerFunc func(d time.Duration) (<-chan time.Time, func() bool)

func stdTimer(d time.Duration) (<-chan time.Time, func() bool) {
	t := time.NewTimer(d)
	return t.C, t.Stop
}

// race is one request's hedging configuration.
type race struct {
	// hedgeDelay arms the secondary: if the primary hasn't answered within
	// it, the next ring member is raced. <= 0 disables hedging (single
	// backend, or hedging turned off).
	hedgeDelay time.Duration
	// budget bounds the selection: when it fires, the best usable response
	// so far is delivered and the straggler cancelled. <= 0 means no
	// budget (precise requests): first usable response wins outright.
	budget time.Duration
	timer  timerFunc
	tr     *reqtrace.Trace
	h      *Hooks
}

// runRace executes the hedged-forward protocol and returns exactly one
// response — the paper's deadline contract lifted to the fleet:
//
//  1. The primary forward launches immediately.
//  2. If it answers usably before the hedge delay, it wins outright.
//  3. When the hedge delay fires (or the primary fails outright), the
//     secondary launches; both race under the remaining budget.
//  4. When the budget fires, the best usable response received so far is
//     delivered and the outstanding attempt is cancelled. If both arrive
//     before the budget, the higher-SNR snapshot wins immediately.
//  5. If nothing usable has arrived when the budget fires, the race keeps
//     waiting and delivers the first usable response — budget exhaustion
//     degrades the answer, it never empties it. Only every attempt
//     failing yields an error.
//
// The returned response is the single delivery: the caller records the
// one deliver span (exactly-once, even when both attempts answered).
func runRace(ctx context.Context, rc race, primary, secondary *upstream) (*backendResponse, error) {
	if rc.timer == nil {
		rc.timer = stdTimer
	}
	type outcome struct {
		resp *backendResponse
		up   *upstream
	}
	results := make(chan outcome, 2)
	launched := 0
	cancels := make(map[*upstream]context.CancelFunc, 2)
	launch := func(up *upstream) {
		upCtx, cancel := context.WithCancel(ctx)
		cancels[up] = cancel
		launched++
		if rc.h != nil && rc.h.Forward != nil {
			rc.h.Forward(up.member, up.role)
		}
		rc.tr.Forward(up.member, up.role)
		go func() {
			resp := up.do(upCtx)
			if resp != nil {
				if rc.h != nil && rc.h.ForwardDone != nil {
					rc.h.ForwardDone(up.member, up.role, resp.rtt, resp.usable())
				}
				rc.tr.ForwardDone(up.member, up.role, resp.rtt, resp.usable())
			} else {
				if rc.h != nil && rc.h.ForwardDone != nil {
					rc.h.ForwardDone(up.member, up.role, 0, false)
				}
				rc.tr.ForwardDone(up.member, up.role, 0, false)
			}
			results <- outcome{resp, up}
		}()
	}
	// deliver resolves the race: cancel the straggler (if any), credit the
	// win, hand the response up.
	pending := func(won *upstream) *upstream {
		for up, cancel := range cancels {
			if up != won && cancel != nil {
				return up
			}
		}
		return nil
	}
	deliver := func(o outcome) (*backendResponse, error) {
		if loser := pending(o.up); loser != nil {
			cancels[loser]()
			if rc.h != nil && rc.h.HedgeCancel != nil {
				rc.h.HedgeCancel(loser.member)
			}
			rc.tr.HedgeCancel(loser.member, loser.role)
		}
		if rc.h != nil && rc.h.HedgeWin != nil && launched > 1 {
			rc.h.HedgeWin(o.up.role)
		}
		return o.resp, nil
	}

	launch(primary)
	defer func() {
		for _, cancel := range cancels {
			cancel()
		}
	}()

	// Phase one: primary alone, hedge timer armed.
	if secondary != nil && rc.hedgeDelay > 0 {
		hedgeC, stopHedge := rc.timer(rc.hedgeDelay)
		select {
		case <-ctx.Done():
			stopHedge()
			return nil, ctx.Err()
		case o := <-results:
			stopHedge()
			if o.resp.usable() {
				return deliver(o)
			}
			// Primary failed outright: fail over to the secondary without
			// waiting for the delay. Not a hedge win — a rescue.
			delete(cancels, o.up)
			launch(secondary)
			secondary = nil
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case o := <-results:
				if o.resp.usable() {
					return deliver(o)
				}
				return nil, ErrNoBackend
			}
		case <-hedgeC:
			if rc.h != nil && rc.h.Hedge != nil {
				rc.h.Hedge(rc.hedgeDelay)
			}
			rc.tr.HedgeFire(rc.hedgeDelay)
			launch(secondary)
		}
	} else {
		// No hedging possible: wait the primary out, fail over only on
		// outright failure.
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case o := <-results:
			if o.resp.usable() {
				return deliver(o)
			}
			if secondary == nil {
				return nil, ErrNoBackend
			}
			delete(cancels, o.up)
			launch(secondary)
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case o := <-results:
				if o.resp.usable() {
					return deliver(o)
				}
				return nil, ErrNoBackend
			}
		}
	}

	// Phase two: primary and hedge both in flight. Collect until the
	// budget fires or both answer; then deliver the best usable response.
	var budgetC <-chan time.Time
	var stopBudget func() bool
	if rc.budget > 0 {
		budgetC, stopBudget = rc.timer(rc.budget)
		defer stopBudget()
	}
	var best outcome
	// With no budget (precise requests) there is nothing to wait out: the
	// first usable answer wins, exactly as if the budget had already fired.
	budgetFired := rc.budget <= 0
	answered := 0
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case o := <-results:
			answered++
			delete(cancels, o.up) // done; nothing to cancel
			if o.resp.usable() && (best.resp == nil || o.resp.score() > best.resp.score()) {
				best = o
			}
			if o.resp.usable() && budgetFired {
				// The budget already fired; the first usable answer is the
				// delivery (best is o or an earlier better one).
				return deliver(best)
			}
			if answered == 2 {
				if best.resp == nil {
					return nil, ErrNoBackend
				}
				return deliver(best)
			}
			// One answered, one outstanding, budget still running: an
			// unusable answer leaves us waiting on the other; a usable one
			// is held as champion until the budget or the challenger
			// resolves the race.
		case <-budgetC:
			budgetFired = true
			budgetC = nil
			if best.resp != nil {
				return deliver(best)
			}
			// Nothing usable yet: never empty-handed — keep waiting for
			// the first usable answer.
		}
	}
}
