package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"anytime/internal/serve"
)

// fakeBackend emulates just enough of anytimed's surface for router unit
// tests: /healthz, and app routes answering with the X-Anytime-* headers
// after a configurable delay. It records the budget header it was handed.
type fakeBackend struct {
	ts      *httptest.Server
	delay   time.Duration
	snr     float64
	hits    atomic.Int32
	budgets chan string // received X-Anytime-Budget values (buffered)
}

func newFakeBackend(delay time.Duration, snr float64) *fakeBackend {
	b := &fakeBackend{delay: delay, snr: snr, budgets: make(chan string, 64)}
	b.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Write([]byte("ok\n"))
			return
		}
		b.hits.Add(1)
		select {
		case b.budgets <- r.Header.Get(serve.BudgetHeader):
		default:
		}
		if b.delay > 0 {
			select {
			case <-time.After(b.delay):
			case <-r.Context().Done():
				return
			}
		}
		w.Header().Set("X-Anytime-Version", "3")
		w.Header().Set("X-Anytime-Final", "false")
		w.Header().Set("X-Anytime-SNR-dB", fmt.Sprintf("%.2f", b.snr))
		w.Header().Set("X-Anytime-Trace", "backend-trace-id")
		w.Write([]byte("payload-" + b.ts.URL))
	}))
	return b
}

func (b *fakeBackend) name() string { return strings.TrimPrefix(b.ts.URL, "http://") }

func testRouter(t *testing.T, cfg RouterConfig, backends ...*fakeBackend) *Router {
	t.Helper()
	for _, b := range backends {
		cfg.Backends = append(cfg.Backends, b.ts.URL)
		t.Cleanup(b.ts.Close)
	}
	if cfg.HedgeMax == 0 {
		cfg.HedgeMax = -1 // hedging off unless the test asks
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func routerGet(t *testing.T, rt *Router, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

// TestRouterAffinity: same (app, input) key → same backend, every time,
// and the response says who served it.
func TestRouterAffinity(t *testing.T) {
	b1 := newFakeBackend(0, 20)
	b2 := newFakeBackend(0, 20)
	rt := testRouter(t, RouterConfig{}, b1, b2)

	owner := ""
	for i := 0; i < 20; i++ {
		rec := routerGet(t, rt, "/blur?input=pinned")
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
		got := rec.Header().Get("X-Anytime-Backend")
		if owner == "" {
			owner = got
		}
		if got != owner {
			t.Fatalf("key moved backends while membership was stable: %s then %s", owner, got)
		}
		if rec.Header().Get("X-Anytime-Hedged") != "false" {
			t.Fatalf("unhedged request marked hedged")
		}
	}
	// Distinct inputs spread: with 40 keys, both backends should see work.
	for i := 0; i < 40; i++ {
		routerGet(t, rt, fmt.Sprintf("/blur?input=k%d", i))
	}
	if b1.hits.Load() == 0 || b2.hits.Load() == 0 {
		t.Errorf("load did not spread: %d / %d", b1.hits.Load(), b2.hits.Load())
	}
}

// TestRouterBudgetPropagation: deadline requests reach the backend with a
// budget strictly no larger than the deadline; precise requests carry none.
func TestRouterBudgetPropagation(t *testing.T) {
	b := newFakeBackend(0, 20)
	rt := testRouter(t, RouterConfig{}, b)

	rec := routerGet(t, rt, "/blur?deadline=80ms")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	hdr := <-b.budgets
	if hdr == "" {
		t.Fatal("deadline request arrived without a budget header")
	}
	budget, err := time.ParseDuration(hdr)
	if err != nil {
		t.Fatalf("unparseable budget %q: %v", hdr, err)
	}
	if budget <= 0 || budget > 80*time.Millisecond {
		t.Fatalf("budget %v out of (0, 80ms]", budget)
	}

	routerGet(t, rt, "/blur")
	if hdr := <-b.budgets; hdr != "" {
		t.Fatalf("precise request carried budget %q", hdr)
	}
}

// TestRouterHedgeRescuesSlowShard: the primary owner is pathologically
// slow; the hedge fires and the fast secondary's snapshot is delivered,
// marked hedged. Uses real timers — delays are far apart (250ms vs 0), so
// the ordering is robust.
func TestRouterHedgeRescuesSlowShard(t *testing.T) {
	slow := newFakeBackend(250*time.Millisecond, 40)
	fast := newFakeBackend(0, 25)
	rt := testRouter(t, RouterConfig{
		HedgeMin: 5 * time.Millisecond,
		HedgeMax: 5 * time.Millisecond,
	}, slow, fast)

	// Find a key owned by the slow backend so the hedge goes to the fast one.
	key := ""
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("k%d", i)
		if rt.Membership().Ring().Lookup(RingKey("/blur", k), 1)[0] == slow.name() {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no key hashed to the slow backend in 200 tries")
	}

	start := time.Now()
	rec := routerGet(t, rt, "/blur?input="+key+"&deadline=100ms")
	elapsed := time.Since(start)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Anytime-Backend"); got != fast.name() {
		t.Fatalf("served by %s, want the hedge target %s (elapsed %v)", got, fast.name(), elapsed)
	}
	if rec.Header().Get("X-Anytime-Hedged") != "true" {
		t.Fatal("hedged delivery not marked hedged")
	}
	// Delivered at the budget (~100ms), not the slow backend's 250ms.
	if elapsed > 200*time.Millisecond {
		t.Errorf("hedged delivery took %v; the slow shard was waited out", elapsed)
	}
	// Backend trace relayed under its own name, router trace on top.
	if rec.Header().Get("X-Anytime-Backend-Trace") != "backend-trace-id" {
		t.Error("backend trace header not relayed as X-Anytime-Backend-Trace")
	}
	if rec.Header().Get("X-Anytime-Trace") == "backend-trace-id" {
		t.Error("router trace ID overwritten by the backend's")
	}
}

// TestRouterNoBackends: an all-down fleet answers 503 on apps and healthz —
// loudly unavailable, not hanging.
func TestRouterNoBackends(t *testing.T) {
	b := newFakeBackend(0, 20)
	rt := testRouter(t, RouterConfig{}, b)
	rt.Membership().SetState(b.name(), StateDown)

	if rec := routerGet(t, rt, "/blur?input=x"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("app with no backends: status %d", rec.Code)
	}
	if rec := routerGet(t, rt, "/healthz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz with no backends: status %d", rec.Code)
	}
	rt.Membership().SetState(b.name(), StateHealthy)
	if rec := routerGet(t, rt, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz with backends: status %d", rec.Code)
	}
}

// TestRouterMemberAdmin: list, add, and drain-remove through the HTTP
// admin surface.
func TestRouterMemberAdmin(t *testing.T) {
	b1 := newFakeBackend(0, 20)
	b2 := newFakeBackend(0, 20)
	rt := testRouter(t, RouterConfig{}, b1)

	var views []memberView
	rec := routerGet(t, rt, "/members")
	if err := json.Unmarshal(rec.Body.Bytes(), &views); err != nil || len(views) != 1 {
		t.Fatalf("GET /members: %v %s", err, rec.Body.String())
	}
	if views[0].State != "healthy" {
		t.Fatalf("member state %q", views[0].State)
	}

	// Join b2.
	rec = httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/members?url="+b2.ts.URL, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /members: %d %s", rec.Code, rec.Body.String())
	}
	if rt.Membership().Ring().Size() != 2 {
		t.Fatal("join did not grow the ring")
	}
	// Rejected joins: missing and duplicate URL.
	rec = httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/members", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("POST /members without url: %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/members?url="+b2.ts.URL, nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("duplicate join: %d", rec.Code)
	}

	// Drain-remove b2; the backend does not implement /drain (404) and the
	// removal must proceed regardless.
	rec = httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/members?name="+b2.name(), nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("DELETE /members: %d %s", rec.Code, rec.Body.String())
	}
	if rt.Membership().Ring().Size() != 1 || rt.Membership().Member(b2.name()) != nil {
		t.Fatal("remove did not shrink the fleet")
	}
	rec = httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/members?name=ghost", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("removing unknown member: %d", rec.Code)
	}
}

// TestRouterDebugRequests: router spans land in the flight recorder and
// render (route.pick, budget, forward spans present for a traced request).
func TestRouterDebugRequests(t *testing.T) {
	b := newFakeBackend(0, 20)
	rt := testRouter(t, RouterConfig{TraceSample: 1}, b)

	rec := routerGet(t, rt, "/blur?input=x&deadline=50ms")
	id := rec.Header().Get("X-Anytime-Trace")
	if id == "" {
		t.Fatal("no router trace ID on the response")
	}
	detail := routerGet(t, rt, "/debug/requests?id="+id)
	if detail.Code != http.StatusOK {
		t.Fatalf("trace %s not retained: %d", id, detail.Code)
	}
	body := detail.Body.String()
	for _, span := range []string{"route.pick", "budget", "forward", "forward.done"} {
		if !strings.Contains(body, span) {
			t.Errorf("trace detail missing %q span:\n%s", span, body)
		}
	}
	list := routerGet(t, rt, "/debug/requests")
	if !strings.Contains(list.Body.String(), id) {
		t.Error("trace list does not include the request")
	}
	js := routerGet(t, rt, "/debug/requests.json")
	if !json.Valid(js.Body.Bytes()) {
		t.Error("debug/requests.json is not valid JSON")
	}
}

// TestRouterHedgeDelayFromDigest: before samples the delay is HedgeMax;
// after traffic it tracks the configured quantile, clamped.
func TestRouterHedgeDelayFromDigest(t *testing.T) {
	b := newFakeBackend(0, 20)
	rt := testRouter(t, RouterConfig{
		HedgeMin: 2 * time.Millisecond,
		HedgeMax: 100 * time.Millisecond,
	}, b)
	if got := rt.HedgeDelay(); got != 100*time.Millisecond {
		t.Fatalf("cold hedge delay = %v, want HedgeMax", got)
	}
	for i := 0; i < 100; i++ {
		routerGet(t, rt, "/blur?input=x")
	}
	got := rt.HedgeDelay()
	if got < 2*time.Millisecond || got > 100*time.Millisecond {
		t.Fatalf("warm hedge delay %v outside clamp", got)
	}
	// Loopback fakes answer in well under 100ms, so the p99 must have
	// pulled the delay off the cold cap.
	if got == 100*time.Millisecond {
		t.Fatalf("hedge delay stuck at the cold cap after 100 samples")
	}

	rtOff := testRouter(t, RouterConfig{HedgeMax: -1}, newFakeBackend(0, 20))
	if rtOff.HedgeDelay() >= 0 {
		t.Fatal("HedgeMax<0 should disable hedging")
	}
}

// TestRouterRelaysBody: the winning backend's payload arrives byte-for-byte.
func TestRouterRelaysBody(t *testing.T) {
	b := newFakeBackend(0, 20)
	rt := testRouter(t, RouterConfig{}, b)
	rec := routerGet(t, rt, "/blur?input=x")
	want := "payload-" + b.ts.URL
	if got, _ := io.ReadAll(rec.Body); string(got) != want {
		t.Fatalf("body %q, want %q", got, want)
	}
}
