package cluster

import "time"

// Hooks is the router tier's observer interface, following the repo's
// nil-guard discipline (core.Hooks, serve.Hooks): a nil *Hooks or nil
// field costs one pointer check, and internal/telemetry.RouterHooks binds
// it to the process metrics registry. Callbacks run synchronously on the
// routing goroutine that triggered them and must not block.
type Hooks struct {
	// Forward runs when a proxied request leaves for a backend, with the
	// member name and the attempt's role (primary | hedge).
	Forward func(member, role string)
	// ForwardDone runs when a proxied request returns, with the observed
	// RTT and whether the response was usable (2xx with a snapshot).
	ForwardDone func(member, role string, rtt time.Duration, usable bool)
	// Hedge runs when the hedge delay elapses with the primary still
	// outstanding and a secondary request is issued.
	Hedge func(delay time.Duration)
	// HedgeWin runs when a race is resolved, with the winning role
	// (primary | hedge).
	HedgeWin func(role string)
	// HedgeCancel runs when the losing in-flight request is cancelled.
	HedgeCancel func(member string)
	// BudgetFloored runs when a request's remaining budget clamps to zero
	// (the fleet spent the whole deadline before the backend could run).
	BudgetFloored func()
	// MemberState runs on every health transition, with the member's new
	// state name (healthy | draining | down).
	MemberState func(member, state string)
	// Deliver runs when the router writes a response, with the serving
	// member, whether the request hedged, and the router-side elapsed time.
	Deliver func(member string, hedged bool, elapsed time.Duration)
}
