package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestMembershipLifecycle(t *testing.T) {
	ms, err := NewMembership([]string{"http://a:1", "http://b:2", "http://c:3"}, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := ms.Ring().Size(); got != 3 {
		t.Fatalf("initial ring size = %d", got)
	}

	// Draining takes the member off the ring; the registry keeps it.
	if !ms.SetState("b:2", StateDraining) {
		t.Fatal("SetState draining reported no transition")
	}
	if got := ms.Ring().Size(); got != 2 {
		t.Fatalf("ring size after drain = %d, want 2", got)
	}
	if m := ms.Member("b:2"); m == nil || m.State() != StateDraining {
		t.Fatalf("drained member state = %v", m)
	}
	// Same state again: no transition.
	if ms.SetState("b:2", StateDraining) {
		t.Fatal("repeated SetState reported a transition")
	}

	// Rejoin.
	if !ms.SetState("b:2", StateHealthy) || ms.Ring().Size() != 3 {
		t.Fatal("rejoin did not restore the ring")
	}

	// Remove drops it outright.
	if !ms.Remove("b:2") || ms.Ring().Size() != 2 || ms.Member("b:2") != nil {
		t.Fatal("Remove did not drop the member")
	}
	if ms.Remove("b:2") {
		t.Fatal("second Remove reported success")
	}

	// Add only moves the new member's keys (spot-check affinity survival).
	before := map[string]string{}
	for _, k := range keys(500) {
		before[k] = ms.Ring().Lookup(k, 1)[0]
	}
	if err := ms.Add("http://d:4"); err != nil {
		t.Fatal(err)
	}
	for k, owner := range before {
		now := ms.Ring().Lookup(k, 1)[0]
		if now != owner && now != "d:4" {
			t.Fatalf("key %q moved %s -> %s on an unrelated join", k, owner, now)
		}
	}
}

func TestMembershipRejectsBadInput(t *testing.T) {
	if _, err := NewMembership(nil, 64, nil); err == nil {
		t.Error("empty membership accepted")
	}
	if _, err := NewMembership([]string{"not a url"}, 64, nil); err == nil {
		t.Error("bad URL accepted")
	}
	if _, err := NewMembership([]string{"http://a:1", "http://a:1"}, 64, nil); err == nil {
		t.Error("duplicate member accepted")
	}
}

func TestMembershipStateHook(t *testing.T) {
	var transitions atomic.Int32
	var lastState atomic.Value
	h := &Hooks{MemberState: func(member, state string) {
		transitions.Add(1)
		lastState.Store(member + "=" + state)
	}}
	ms, err := NewMembership([]string{"http://a:1"}, 64, h)
	if err != nil {
		t.Fatal(err)
	}
	ms.SetState("a:1", StateDown)
	if transitions.Load() != 1 || lastState.Load().(string) != "a:1=down" {
		t.Fatalf("hook saw %d transitions, last %v", transitions.Load(), lastState.Load())
	}
}

// TestCheckerTransitions drives a real checker against stub backends in
// every health shape: healthy, draining (503 + body), and dead.
func TestCheckerTransitions(t *testing.T) {
	var draining atomic.Bool
	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			http.NotFound(w, r)
			return
		}
		if draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte("draining\n"))
			return
		}
		w.Write([]byte("ok\n"))
	}))
	defer healthy.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // immediately: connection refused from now on

	ms, err := NewMembership([]string{healthy.URL, dead.URL}, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := NewChecker(ms, nil, time.Hour /* ticks never fire; Sweep drives */, time.Second, 2)

	healthyName := strings.TrimPrefix(healthy.URL, "http://")
	deadName := strings.TrimPrefix(dead.URL, "http://")
	c.Sweep(context.Background())
	if ms.Member(healthyName).State() != StateHealthy {
		t.Fatal("healthy backend not marked healthy")
	}
	// One failed probe: below maxFails, still on the ring.
	if ms.Member(deadName).State() != StateHealthy {
		t.Fatal("one failed probe already removed the member (maxFails=2)")
	}
	c.Sweep(context.Background()) // second consecutive failure crosses the threshold
	if ms.Member(deadName).State() != StateDown {
		t.Fatal("dead backend not marked down after maxFails probes")
	}
	if got := ms.Ring().Size(); got != 1 {
		t.Fatalf("ring size with one dead member = %d, want 1", got)
	}

	// Drain flows through the probe body.
	draining.Store(true)
	c.Sweep(context.Background())
	if ms.Member(healthyName).State() != StateDraining {
		t.Fatal("draining healthz did not drain the member")
	}
	if got := ms.Ring().Size(); got != 0 {
		t.Fatalf("ring size with everyone out = %d, want 0", got)
	}

	// And back.
	draining.Store(false)
	c.Sweep(context.Background())
	if ms.Member(healthyName).State() != StateHealthy {
		t.Fatal("member did not rejoin after drain ended")
	}

	// RTT was observed by the probes.
	if ms.Member(healthyName).RTT() <= 0 {
		t.Error("probe RTT not folded into the member EWMA")
	}
}

func TestCheckerStartStop(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	}))
	defer srv.Close()
	ms, err := NewMembership([]string{srv.URL}, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := NewChecker(ms, nil, 10*time.Millisecond, time.Second, 3)
	c.Start(context.Background())
	defer c.Stop()
	if !waitTrue(t, func() bool { return ms.Members()[0].RTT() > 0 }) {
		t.Fatal("started checker never probed")
	}
	c.Stop()
	c.Stop() // idempotent
}

// TestCheckerCtxCancelStopsLoop is the regression for the ctxflow fix: the
// probe loop runs under the caller's context, so cancelling it ends the
// loop without an explicit Stop — an operator tearing down a router by
// cancelling its root ctx must not strand the checker goroutine.
func TestCheckerCtxCancelStopsLoop(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	}))
	defer srv.Close()
	ms, err := NewMembership([]string{srv.URL}, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := NewChecker(ms, nil, 10*time.Millisecond, time.Second, 3)
	ctx, cancel := context.WithCancel(context.Background())
	c.Start(ctx)
	cancel()
	select {
	case <-c.done:
	case <-time.After(2 * time.Second):
		t.Fatal("probe loop still running after its context was cancelled")
	}
}

// TestCheckerProbeInheritsCtx proves the probe HTTP request itself derives
// from the sweep's context (the http.NewRequestWithContext fix): against a
// backend that never answers, a cancelled sweep context must abort the
// in-flight probe well before the checker's own per-probe timeout.
func TestCheckerProbeInheritsCtx(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	stuck := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done(): // client abandoned the probe
		case <-release:
		}
	}))
	defer stuck.Close()
	ms, err := NewMembership([]string{stuck.URL}, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Per-probe timeout of an hour: only ctx cancellation can end the sweep.
	c := NewChecker(ms, nil, time.Hour, time.Hour, 1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Sweep(ctx)
	}()
	time.Sleep(20 * time.Millisecond) // let the probe reach the backend
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("sweep ignored context cancellation; probe not derived from ctx")
	}
}
