package cluster

import (
	"fmt"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// State is a member's health state. Only Healthy members are on the ring;
// Draining and Down members receive no new work, the difference being
// intent: draining is an operator (or the backend itself, via its /drain
// endpoint) removing the node gracefully, down is the checker giving up on
// it. In both cases the consistent-hash property confines the rebalance to
// the leaving member's keys — every other backend keeps its keys and its
// warm pools.
type State int32

const (
	StateHealthy State = iota
	StateDraining
	StateDown
)

var stateNames = [...]string{
	StateHealthy:  "healthy",
	StateDraining: "draining",
	StateDown:     "down",
}

// String returns the state's stable name (also the metrics label value).
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// Member is one anytimed backend: its base URL, health state, and observed
// round-trip time (the budget arithmetic's network term).
type Member struct {
	// Name labels the member in rings, traces, and metrics: the URL's
	// host:port.
	Name string
	// URL is the backend's base URL ("http://10.0.0.7:8080").
	URL string

	state atomic.Int32
	fails atomic.Int32 // consecutive failed health probes
	rtt   ewma
}

// State returns the member's current health state.
func (m *Member) State() State { return State(m.state.Load()) }

// RTT returns the member's observed round-trip EWMA, zero before the
// first completed request or probe.
func (m *Member) RTT() time.Duration { return m.rtt.value() }

// ObserveRTT folds one observed round-trip sample into the member's EWMA.
func (m *Member) ObserveRTT(d time.Duration) { m.rtt.observe(d) }

// Membership is the fleet registry: members by name, each with health
// state, plus the current ring (rebuilt over healthy members on every
// transition and swapped atomically — lookups never lock).
type Membership struct {
	replicas int
	h        *Hooks

	mu      sync.Mutex
	members map[string]*Member
	ring    atomic.Pointer[Ring]
}

// NewMembership builds a registry over the given backend base URLs, all
// initially healthy, with the given virtual-node count per member.
func NewMembership(urls []string, replicas int, h *Hooks) (*Membership, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("cluster: membership needs at least one backend")
	}
	ms := &Membership{replicas: replicas, h: h, members: make(map[string]*Member, len(urls))}
	for _, u := range urls {
		if _, err := ms.add(u); err != nil {
			return nil, err
		}
	}
	ms.rebuild()
	return ms, nil
}

// add registers a member (caller holds no lock; add takes it). The name is
// the URL's host:port so logs, metrics and the ring agree on identity.
func (ms *Membership) add(raw string) (*Member, error) {
	u, err := url.Parse(raw)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("cluster: bad backend URL %q", raw)
	}
	m := &Member{Name: u.Host, URL: raw}
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if _, dup := ms.members[m.Name]; dup {
		return nil, fmt.Errorf("cluster: duplicate backend %q", m.Name)
	}
	ms.members[m.Name] = m
	return m, nil
}

// Add registers a new healthy member and rebuilds the ring. Only the new
// member's share of keys moves.
func (ms *Membership) Add(raw string) error {
	if _, err := ms.add(raw); err != nil {
		return err
	}
	ms.rebuild()
	return nil
}

// Remove deletes a member outright. Prefer SetState(name, StateDraining)
// first: draining takes the member off the ring (same rebalance) while its
// in-flight requests finish; Remove is the final bookkeeping step.
func (ms *Membership) Remove(name string) bool {
	ms.mu.Lock()
	_, ok := ms.members[name]
	delete(ms.members, name)
	ms.mu.Unlock()
	if ok {
		ms.rebuild()
	}
	return ok
}

// Member returns the named member, nil if unknown.
func (ms *Membership) Member(name string) *Member {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.members[name]
}

// Members returns all members sorted by name (stable for display/JSON).
func (ms *Membership) Members() []*Member {
	ms.mu.Lock()
	out := make([]*Member, 0, len(ms.members))
	for _, m := range ms.members {
		out = append(out, m)
	}
	ms.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SetState transitions a member, rebuilding the ring when its ring
// eligibility (healthy or not) changes. Reports whether a transition
// actually happened.
func (ms *Membership) SetState(name string, s State) bool {
	ms.mu.Lock()
	m, ok := ms.members[name]
	ms.mu.Unlock()
	if !ok {
		return false
	}
	old := State(m.state.Swap(int32(s)))
	if old == s {
		return false
	}
	if (old == StateHealthy) != (s == StateHealthy) {
		ms.rebuild()
	}
	if ms.h != nil && ms.h.MemberState != nil {
		ms.h.MemberState(name, s.String())
	}
	return true
}

// Ring returns the current ring over healthy members. May be empty (zero
// healthy backends) — callers must handle a nil lookup.
func (ms *Membership) Ring() *Ring { return ms.ring.Load() }

// rebuild swaps in a fresh ring over the currently-healthy members, in
// sorted name order so the ring is deterministic across router replicas.
func (ms *Membership) rebuild() {
	ms.mu.Lock()
	healthy := make([]string, 0, len(ms.members))
	for name, m := range ms.members {
		if m.State() == StateHealthy {
			healthy = append(healthy, name)
		}
	}
	ms.mu.Unlock()
	sort.Strings(healthy)
	ms.ring.Store(NewRing(healthy, ms.replicas))
}
