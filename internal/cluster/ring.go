// Package cluster is the horizontal-scale tier over anytimed backends: a
// consistent-hash router that forwards requests with an explicit deadline
// *budget* (the client's deadline minus the time the fleet has already
// spent on the request) and hedges slow shards — after a p99-derived delay
// it races a second backend and delivers whichever snapshot is better when
// the budget fires. The per-node contract "at the deadline, deliver the
// best published approximation, never empty-handed" becomes the fleet
// contract "accept the best snapshot available anywhere when the deadline
// fires": placement joins workers/granularity/publish-policy as one more
// axis the anytime model can trade against time.
//
// The pieces compose like internal/serve's do:
//
//   - Ring: an immutable consistent-hash ring with virtual nodes, mapping
//     (app, input digest) keys to an ordered list of distinct members.
//     Membership changes move only the changed member's keys, so the other
//     backends' warm pools (serve.Pool) stay warm across rebalances.
//   - Membership + Checker: health-checked member registry reusing the
//     backends' /healthz; a backend answering 503 ("draining") leaves the
//     ring gracefully — new work routes around it while in-flight requests
//     finish.
//   - Remaining: the deadline-budget arithmetic, propagated to backends
//     via serve.BudgetHeader and fed into serve.Controller.Scale there.
//   - runRace (the hedger): issues the primary forward, arms a hedge timer
//     sized from the recent latency distribution, races the next ring
//     member when it fires, and resolves the race by delivered SNR when
//     the budget expires — cancelling the loser, delivering exactly once.
//   - Router: the http.Handler tying it together, with reqtrace spans so a
//     single request's cross-node timeline shows in /debug/requests.
//
// cmd/anytimerouter is the binary; cmd/anytimeload is the open-loop load
// generator that grades the tier (BENCH_cluster.json).
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// RingKey builds the ring key for a request: the app route plus the
// request's input digest. Requests for the same (app, input) always land
// on the same healthy backend, so the content-addressed state a backend
// accumulates for that input keeps paying off: its warm pool, and its
// snapshot cache — internal/snapcache keys entries by the same digest
// (the daemon's ?input= knob), so repeats of a content key warm-start on
// the shard that cached them. N shards therefore give N x aggregate
// cache with no coordination; see docs/CACHING.md.
func RingKey(app, inputDigest string) string {
	return app + "|" + inputDigest
}

// Ring is an immutable consistent-hash ring with virtual nodes. Immutable
// on purpose: membership changes build a fresh ring and swap it in
// atomically, so lookups never lock and a request observes one coherent
// view of the fleet.
type Ring struct {
	replicas int
	hashes   []uint64          // sorted vnode positions
	owner    map[uint64]string // vnode position -> member name
	members  []string          // distinct members, for Size/inspection
}

// NewRing builds a ring with the given virtual-node count per member.
// More replicas smooth the load split at the cost of lookup table size;
// 64 keeps the max/min member share within ~30% for small fleets.
func NewRing(members []string, replicas int) *Ring {
	if replicas < 1 {
		replicas = 1
	}
	r := &Ring{
		replicas: replicas,
		hashes:   make([]uint64, 0, len(members)*replicas),
		owner:    make(map[uint64]string, len(members)*replicas),
		members:  append([]string(nil), members...),
	}
	for _, m := range members {
		for v := 0; v < replicas; v++ {
			h := hash64(fmt.Sprintf("%s#%d", m, v))
			// A full 64-bit collision across members is astronomically
			// unlikely; first writer wins keeps the ring deterministic in
			// member order if it ever happens.
			if _, taken := r.owner[h]; !taken {
				r.owner[h] = m
				r.hashes = append(r.hashes, h)
			}
		}
	}
	sort.Slice(r.hashes, func(i, j int) bool { return r.hashes[i] < r.hashes[j] })
	return r
}

// Size reports the number of distinct members on the ring.
func (r *Ring) Size() int { return len(r.members) }

// Members returns the ring's distinct members (construction order).
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Lookup returns up to n distinct members in ring order starting clockwise
// from key's position: the primary owner first, then the successors a
// hedger should try. Returns nil on an empty ring.
func (r *Ring) Lookup(key string, n int) []string {
	if len(r.hashes) == 0 || n < 1 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := hash64(key)
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.hashes) && len(out) < n; i++ {
		m := r.owner[r.hashes[(start+i)%len(r.hashes)]]
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

// hash64 is FNV-1a with a splitmix64-style finalizer: stable across
// processes (the ring must agree between router replicas), stdlib-only,
// and — critically — avalanched. Raw FNV-1a is affine in its input: two
// member names differing at one byte before a common suffix ("…:8081#v"
// vs "…:8082#v") produce vnode hashes offset by a constant multiple, so
// one member's 64 vnodes land as a translate of the other's and own a
// wildly unequal arc. The finalizer destroys that structure.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
