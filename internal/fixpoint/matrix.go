package fixpoint

import "fmt"

// Matrix is a dense row-major integer (or fixed-point) matrix. It is the
// workload of the paper's summary example (Figure 10): a sensor stage f
// produces a fixed-point matrix F and a dependent stage g computes the
// product F · C.
type Matrix struct {
	Rows, Cols int
	Data       []int32
}

// NewMatrix returns a zeroed rows x cols matrix.
func NewMatrix(rows, cols int) (*Matrix, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("fixpoint: invalid matrix shape %dx%d", rows, cols)
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]int32, rows*cols)}, nil
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) int32 { return m.Data[r*m.Cols+c] }

// Set stores v at element (r, c).
func (m *Matrix) Set(r, c int, v int32) { m.Data[r*m.Cols+c] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := &Matrix{Rows: m.Rows, Cols: m.Cols, Data: make([]int32, len(m.Data))}
	copy(out.Data, m.Data)
	return out
}

// Equal reports shape and element equality.
func (m *Matrix) Equal(o *Matrix) bool {
	if o == nil || m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.Data {
		if o.Data[i] != v {
			return false
		}
	}
	return true
}

// MaskTop returns a copy of m with every element reduced to its keep
// most-significant bits (of width total): the matrix analogue of the
// paper's half-precision [AA] versus full-precision [AA.BB] operands.
func (m *Matrix) MaskTop(keep, width uint) *Matrix {
	out := m.Clone()
	for i, v := range out.Data {
		out.Data[i] = KeepTop(v, keep, width)
	}
	return out
}

// PlaneSlice returns the matrix of signed plane contributions for bit plane
// `plane` of width-bit elements: the update X_i that a diffusive stage adds
// when it refines the matrix by one bit of precision.
func (m *Matrix) PlaneSlice(plane, width uint) *Matrix {
	out := m.Clone()
	for i, v := range out.Data {
		out.Data[i] = PlaneValue(v, plane, width)
	}
	return out
}

// MatMul returns the integer matrix product a·b. Elements accumulate in
// int32 with wraparound on overflow (shift 0; callers using fractional
// formats rescale themselves and are responsible for keeping magnitudes
// in range).
func MatMul(a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("fixpoint: matmul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out, err := NewMatrix(a.Rows, b.Cols)
	if err != nil {
		return nil, err
	}
	MatMulInto(out, a, b)
	return out, nil
}

// MatMulInto computes a·b into dst, which must have shape a.Rows x b.Cols.
//
//anytime:hotpath
func MatMulInto(dst, a, b *Matrix) {
	for r := 0; r < a.Rows; r++ {
		arow := a.Data[r*a.Cols : (r+1)*a.Cols]
		drow := dst.Data[r*b.Cols : (r+1)*b.Cols]
		for c := range drow {
			drow[c] = 0
		}
		for k, av := range arow {
			if av == 0 {
				continue
			}
			// Both rows are b.Cols long; the reslice proves it to the
			// compiler so the inner loop indexes both without bounds checks.
			brow := b.Data[k*b.Cols : (k+1)*b.Cols][:len(drow):len(drow)]
			a64 := int64(av)
			for c := range drow {
				drow[c] = int32(int64(drow[c]) + a64*int64(brow[c]))
			}
		}
	}
}

// MatAdd accumulates src into dst elementwise; shapes must match.
func MatAdd(dst, src *Matrix) error {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		return fmt.Errorf("fixpoint: matadd shape mismatch %dx%d += %dx%d", dst.Rows, dst.Cols, src.Rows, src.Cols)
	}
	for i, v := range src.Data {
		dst.Data[i] += v
	}
	return nil
}
