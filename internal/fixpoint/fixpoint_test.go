package fixpoint

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQValidate(t *testing.T) {
	bad := []Q{{Width: 1, Frac: 0}, {Width: 33, Frac: 0}, {Width: 8, Frac: 8}, {Width: 8, Frac: 9}}
	for _, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("Q%+v validated", q)
		}
	}
	good := []Q{{Width: 2, Frac: 0}, Q16_8, Q32_16, {Width: 32, Frac: 31}}
	for _, q := range good {
		if err := q.Validate(); err != nil {
			t.Errorf("Q%+v rejected: %v", q, err)
		}
	}
}

func TestQRangeAndOne(t *testing.T) {
	q := Q{Width: 8, Frac: 4}
	if q.Max() != 127 || q.Min() != -128 || q.One() != 16 {
		t.Errorf("Max=%d Min=%d One=%d", q.Max(), q.Min(), q.One())
	}
}

func TestFromFloatToFloatRoundTrip(t *testing.T) {
	q := Q16_8
	cases := []float64{0, 1, -1, 0.5, -0.5, 3.25, -7.75, 100.125}
	for _, f := range cases {
		v := q.FromFloat(f)
		if got := q.ToFloat(v); got != f {
			t.Errorf("round trip %v -> %d -> %v", f, v, got)
		}
	}
}

func TestFromFloatRoundsToNearest(t *testing.T) {
	q := Q{Width: 16, Frac: 0}
	if q.FromFloat(2.6) != 3 || q.FromFloat(2.4) != 2 || q.FromFloat(-2.6) != -3 {
		t.Error("rounding wrong")
	}
}

func TestFromFloatSaturates(t *testing.T) {
	q := Q{Width: 8, Frac: 0}
	if q.FromFloat(1e9) != 127 || q.FromFloat(-1e9) != -128 {
		t.Error("saturation wrong")
	}
}

func TestArithmeticSaturates(t *testing.T) {
	q := Q{Width: 8, Frac: 0}
	if q.Add(120, 120) != 127 {
		t.Error("Add does not saturate high")
	}
	if q.Sub(-120, 120) != -128 {
		t.Error("Sub does not saturate low")
	}
	if q.Mul(100, 100) != 127 {
		t.Error("Mul does not saturate")
	}
}

func TestMulFixedPoint(t *testing.T) {
	q := Q16_8
	a := q.FromFloat(1.5)
	b := q.FromFloat(2.5)
	if got := q.ToFloat(q.Mul(a, b)); got != 3.75 {
		t.Errorf("1.5*2.5 = %v", got)
	}
}

func TestTruncateLow(t *testing.T) {
	if TruncateLow(0xFF, 4) != 0xF0 {
		t.Error("positive truncate wrong")
	}
	if TruncateLow(-1, 4) != -16 {
		t.Errorf("negative truncate = %d, want -16", TruncateLow(-1, 4))
	}
	if TruncateLow(123, 0) != 123 {
		t.Error("drop=0 changed value")
	}
	if TruncateLow(123, 32) != 0 || TruncateLow(123, 64) != 0 {
		t.Error("drop>=32 not zero")
	}
}

func TestKeepTop(t *testing.T) {
	// 8-bit value 0b10110111 keeping top 3 bits -> 0b10100000 pattern.
	v := int32(0xB7)
	if got := KeepTop(v, 3, 8); got != 0xA0 {
		t.Errorf("KeepTop = %#x, want 0xA0", got)
	}
	if KeepTop(v, 8, 8) != v || KeepTop(v, 9, 8) != v {
		t.Error("keep >= width changed value")
	}
}

// TestPlaneDecompositionIdentity: summing all signed plane values must
// reconstruct the value exactly, for every width and value. This is the
// identity that makes bit-serial computation diffusive.
func TestPlaneDecompositionIdentity(t *testing.T) {
	f := func(raw int32, rawWidth uint8) bool {
		width := uint(rawWidth)%31 + 2
		// Reduce raw into width bits (sign-extended).
		v := raw << (32 - width) >> (32 - width)
		var sum int64
		for p := uint(0); p < width; p++ {
			sum += int64(PlaneValue(v, p, width))
		}
		return sum == int64(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestPlanePrefixEqualsMaskedValue: the cumulative sum of the top k planes
// equals KeepTop(v, k, width) — the property that lets an asynchronous
// consumer of a diffusive bit-serial producer see exactly the reduced-
// precision operand of an iterative producer.
func TestPlanePrefixEqualsMaskedValue(t *testing.T) {
	f := func(raw int32, rawWidth uint8) bool {
		width := uint(rawWidth)%31 + 2
		v := raw << (32 - width) >> (32 - width)
		var sum int64
		for k := uint(1); k <= width; k++ {
			sum += int64(PlaneValue(v, width-k, width))
			if sum != int64(KeepTop(v, k, width)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDot(t *testing.T) {
	got, err := Dot([]int32{1, 2, 3}, []int32{4, -5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if got != 4-10+18 {
		t.Errorf("Dot = %d", got)
	}
	if _, err := Dot([]int32{1}, []int32{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestDotLargeNoOverflow(t *testing.T) {
	a := []int32{math.MaxInt32, math.MaxInt32}
	b := []int32{math.MaxInt32, math.MaxInt32}
	got, err := Dot(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * int64(math.MaxInt32) * int64(math.MaxInt32)
	if got != want {
		t.Errorf("Dot = %d, want %d", got, want)
	}
}

func TestBitSerialDotExact(t *testing.T) {
	a := []int32{3, -7, 11, 0, 5}
	b := []int32{-120, 45, 99, 7, -128}
	want, _ := Dot(a, b)
	var emitted []int64
	got, err := BitSerialDot(a, b, 8, func(k uint, partial int64) {
		emitted = append(emitted, partial)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("BitSerialDot = %d, want %d", got, want)
	}
	if len(emitted) != 8 {
		t.Fatalf("emitted %d partials, want 8", len(emitted))
	}
	if emitted[7] != want {
		t.Error("last partial is not the exact result")
	}
}

// TestBitSerialDotPartialsMatchMaskedDots verifies Figure 6's semantics:
// after k planes the partial result equals the dot product computed with
// only the top k bits of the second operand.
func TestBitSerialDotPartialsMatchMaskedDots(t *testing.T) {
	f := func(rawA, rawB []int16) bool {
		n := min(len(rawA), len(rawB))
		if n == 0 {
			return true
		}
		a := make([]int32, n)
		b := make([]int32, n)
		for i := 0; i < n; i++ {
			a[i] = int32(rawA[i])
			b[i] = int32(rawB[i])
		}
		const width = 16
		ok := true
		_, err := BitSerialDot(a, b, width, func(k uint, partial int64) {
			masked := make([]int32, n)
			for i := range b {
				masked[i] = KeepTop(b[i], k, width)
			}
			want, _ := Dot(a, masked)
			if partial != want {
				ok = false
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBitSerialDotValidation(t *testing.T) {
	if _, err := BitSerialDot([]int32{1}, []int32{1, 2}, 8, nil); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := BitSerialDot([]int32{1}, []int32{1}, 0, nil); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := BitSerialDot([]int32{1}, []int32{1}, 33, nil); err == nil {
		t.Error("width 33 accepted")
	}
}

func TestBitSerialDotNilEmit(t *testing.T) {
	got, err := BitSerialDot([]int32{2, 3}, []int32{4, 5}, 8, nil)
	if err != nil || got != 23 {
		t.Errorf("BitSerialDot nil emit = %d, %v", got, err)
	}
}
