// Package fixpoint implements the reduced fixed-point precision substrate of
// the paper (§III-B2, "Reduced Fixed-Point Precision", Figures 6 and 19).
//
// A two's-complement integer is a sum of signed powers of two, so any
// computation distributive over addition (sums, dot products, matrix
// products) can be evaluated bit-serially: processing the operand bit planes
// most-significant-first yields a diffusive anytime computation whose
// partial results equal the computation performed at truncated precision,
// and whose final result is bit-exact. No work is wasted relative to the
// precise computation, since integer multiplication is a sum of partial
// products anyway.
package fixpoint

import "fmt"

// Q describes a two's-complement fixed-point format: Width total bits
// (2..32) of which Frac are fractional.
type Q struct {
	Width uint
	Frac  uint
}

// Q16_8 is a convenient 16-bit format with 8 fractional bits.
var Q16_8 = Q{Width: 16, Frac: 8}

// Q32_16 is a 32-bit format with 16 fractional bits.
var Q32_16 = Q{Width: 32, Frac: 16}

// Validate reports whether the format is well formed.
func (q Q) Validate() error {
	if q.Width < 2 || q.Width > 32 {
		return fmt.Errorf("fixpoint: width %d out of range [2,32]", q.Width)
	}
	if q.Frac >= q.Width {
		return fmt.Errorf("fixpoint: %d fractional bits do not fit in width %d", q.Frac, q.Width)
	}
	return nil
}

// Max returns the largest representable value.
func (q Q) Max() int32 { return int32(1)<<(q.Width-1) - 1 }

// Min returns the smallest representable value.
func (q Q) Min() int32 { return -(int32(1) << (q.Width - 1)) }

// One returns the representation of 1.0.
func (q Q) One() int32 { return int32(1) << q.Frac }

// Saturate clamps v into the representable range.
func (q Q) Saturate(v int64) int32 {
	if v > int64(q.Max()) {
		return q.Max()
	}
	if v < int64(q.Min()) {
		return q.Min()
	}
	return int32(v)
}

// FromFloat converts f to fixed point with round-to-nearest, saturating.
func (q Q) FromFloat(f float64) int32 {
	scaled := f * float64(int64(1)<<q.Frac)
	if scaled >= 0 {
		scaled += 0.5
	} else {
		scaled -= 0.5
	}
	return q.Saturate(int64(scaled))
}

// ToFloat converts a fixed-point value back to floating point.
func (q Q) ToFloat(v int32) float64 {
	return float64(v) / float64(int64(1)<<q.Frac)
}

// Add returns a+b, saturating.
func (q Q) Add(a, b int32) int32 { return q.Saturate(int64(a) + int64(b)) }

// Sub returns a-b, saturating.
func (q Q) Sub(a, b int32) int32 { return q.Saturate(int64(a) - int64(b)) }

// Mul returns the fixed-point product (a*b) >> Frac, saturating.
func (q Q) Mul(a, b int32) int32 {
	return q.Saturate((int64(a) * int64(b)) >> q.Frac)
}

// TruncateLow zeroes the drop least-significant bits of v. For nonnegative
// values this truncates toward zero; for negative two's-complement values it
// truncates toward negative infinity. It models computing with reduced
// integer precision by masking operand bits, as in the paper's Figure 19
// evaluation ("8-bit (default), 6-bit, 4-bit and 2-bit pixel precisions").
func TruncateLow(v int32, drop uint) int32 {
	if drop == 0 {
		return v
	}
	if drop >= 32 {
		return 0
	}
	return int32(uint32(v) &^ (uint32(1)<<drop - 1))
}

// KeepTop zeroes all but the keep most-significant bits of a width-bit
// value: the paper's W & mask construction for anytime reduced-precision
// operands (§III-B2).
func KeepTop(v int32, keep, width uint) int32 {
	if keep >= width {
		return v
	}
	return TruncateLow(v, width-keep)
}

// PlaneValue returns the signed contribution of bit plane `plane` (counted
// from the least-significant bit) of the width-bit two's-complement value v.
// The top plane (plane == width-1) is the sign plane and contributes
// -2^(width-1) when set. Summing PlaneValue over all planes reconstructs v
// exactly, which is the identity the bit-serial computations rely on.
func PlaneValue(v int32, plane, width uint) int32 {
	bit := (uint32(v) >> plane) & 1
	if bit == 0 {
		return 0
	}
	if plane == width-1 {
		return -(int32(1) << plane)
	}
	return int32(1) << plane
}

// errLenMismatch and errBadWidth outline the cold error paths of the
// hotpath dot kernels: fmt stays out of the annotated bodies (hotalloc),
// and the error construction stops counting against their inlining budget.
func errLenMismatch(la, lb int) error {
	return fmt.Errorf("fixpoint: dot length mismatch %d vs %d", la, lb)
}

func errBadWidth(width uint) error {
	return fmt.Errorf("fixpoint: width %d out of range [1,32]", width)
}

// Dot returns the exact integer dot product of a and b with a 64-bit
// accumulator. The slices must have equal length.
//
//anytime:hotpath
func Dot(a, b []int32) (int64, error) {
	if len(a) != len(b) {
		return 0, errLenMismatch(len(a), len(b))
	}
	b = b[:len(a):len(a)] // lengths proven equal: b[i] needs no bounds check below
	var acc int64
	for i := range a {
		acc += int64(a[i]) * int64(b[i])
	}
	return acc, nil
}

// BitSerialDot evaluates dot(a, b) bit-serially over the planes of b,
// most-significant-first, invoking emit after each plane with the number of
// planes processed so far and the running partial sum. After k planes the
// partial equals dot(a, KeepTop(b, k, width)); after all width planes it
// equals the exact dot product. This is the computation of paper Figure 6.
//
//anytime:hotpath
func BitSerialDot(a, b []int32, width uint, emit func(planesDone uint, partial int64)) (int64, error) {
	if len(a) != len(b) {
		return 0, errLenMismatch(len(a), len(b))
	}
	if width < 1 || width > 32 {
		return 0, errBadWidth(width)
	}
	bp := b[:len(a):len(a)] // lengths proven equal: bp[i] needs no bounds check below
	var acc int64
	for k := uint(0); k < width; k++ {
		plane := width - 1 - k
		// The plane's weight ±2^plane is constant across the inner loop, so
		// sum raw bits and apply the weight once at the end: Σ aᵢ·bitᵢ·±2^p
		// = (Σ aᵢ·bitᵢ)·±2^p exactly in two's-complement arithmetic. This
		// replaces PlaneValue's per-element branches with one multiply by 0
		// or 1 that the pipeline absorbs.
		var sum int64
		for i := range a {
			sum += int64(a[i]) * int64((uint32(bp[i])>>plane)&1)
		}
		weighted := sum << plane
		if plane == width-1 {
			weighted = -weighted // sign plane contributes -2^(width-1)
		}
		acc += weighted
		if emit != nil {
			emit(k+1, acc)
		}
	}
	return acc, nil
}
