package fixpoint

import "testing"

func benchVectors(n int) ([]int32, []int32) {
	a := make([]int32, n)
	b := make([]int32, n)
	for i := range a {
		a[i] = int32(int16(i * 31))
		b[i] = int32(int16(i*i*17 + 3))
	}
	return a, b
}

func BenchmarkDot(b *testing.B) {
	x, y := benchVectors(1 << 12)
	b.SetBytes(1 << 12 * 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Dot(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBitSerialDot16(b *testing.B) {
	x, y := benchVectors(1 << 12)
	b.SetBytes(1 << 12 * 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BitSerialDot(x, y, 16, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatMul64(b *testing.B) {
	m, _ := NewMatrix(64, 64)
	c, _ := NewMatrix(64, 64)
	for i := range m.Data {
		m.Data[i] = int32(int8(i))
		c.Data[i] = int32(int8(i * 7))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MatMul(m, c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTruncateMantissa(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += TruncateMantissa(float64(i)*1.7, 12)
	}
	_ = sink
}
