package fixpoint

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTruncateMantissaIdentityAtFullPrecision(t *testing.T) {
	for _, f := range []float64{0, 1, -1, math.Pi, 1e-300, -1e300} {
		if got := TruncateMantissa(f, FullMantissaBits); got != f {
			t.Errorf("TruncateMantissa(%v, 52) = %v", f, got)
		}
		if got := TruncateMantissa(f, 100); got != f {
			t.Errorf("TruncateMantissa(%v, 100) = %v", f, got)
		}
	}
}

func TestTruncateMantissaZeroBitsIsPowerOfTwo(t *testing.T) {
	got := TruncateMantissa(13.7, 0)
	if got != 8 {
		t.Errorf("TruncateMantissa(13.7, 0) = %v, want 8", got)
	}
	if got := TruncateMantissa(-13.7, 0); got != -8 {
		t.Errorf("TruncateMantissa(-13.7, 0) = %v, want -8", got)
	}
}

func TestTruncateMantissaKnown(t *testing.T) {
	// 1.75 = 1.11b; with one mantissa bit only 1.1b = 1.5 remains.
	if got := TruncateMantissa(1.75, 1); got != 1.5 {
		t.Errorf("TruncateMantissa(1.75, 1) = %v", got)
	}
	if got := TruncateMantissa(1.75, 2); got != 1.75 {
		t.Errorf("TruncateMantissa(1.75, 2) = %v", got)
	}
}

func TestTruncateMantissaSpecials(t *testing.T) {
	if !math.IsNaN(TruncateMantissa(math.NaN(), 4)) {
		t.Error("NaN not preserved")
	}
	if !math.IsInf(TruncateMantissa(math.Inf(1), 4), 1) {
		t.Error("+Inf not preserved")
	}
	if !math.IsInf(TruncateMantissa(math.Inf(-1), 4), -1) {
		t.Error("-Inf not preserved")
	}
	if TruncateMantissa(0, 4) != 0 {
		t.Error("zero not preserved")
	}
}

// TestTruncateMantissaRelativeErrorBound: relative truncation error is
// below 2^-bits for normal values, and error shrinks (weakly) as precision
// grows — the property that makes a mantissa ladder an anytime schedule.
func TestTruncateMantissaRelativeErrorBound(t *testing.T) {
	f := func(raw int64, rawBits uint8) bool {
		v := float64(raw) / 257.0
		if v == 0 {
			return true
		}
		bits := uint(rawBits) % 53
		got := TruncateMantissa(v, bits)
		relErr := math.Abs(got-v) / math.Abs(v)
		if relErr >= math.Pow(2, -float64(bits)) {
			return false
		}
		// Magnitude never increases, sign never changes (truncation
		// toward zero).
		if math.Abs(got) > math.Abs(v) || got*v < 0 {
			return false
		}
		finer := TruncateMantissa(v, bits+8)
		return math.Abs(finer-v) <= math.Abs(got-v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMantissaLadder(t *testing.T) {
	ladder, err := MantissaLadder(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ladder, []uint{4, 8, 16, 52}) {
		t.Errorf("ladder = %v", ladder)
	}
	// Increasing precision, final entry full.
	for i := 1; i < len(ladder); i++ {
		if ladder[i] <= ladder[i-1] {
			t.Errorf("ladder not increasing: %v", ladder)
		}
	}
	// A single step degenerates to the precise pass alone.
	one, err := MantissaLadder(8, 1)
	if err != nil || !reflect.DeepEqual(one, []uint{FullMantissaBits}) {
		t.Errorf("single-step ladder = %v, %v", one, err)
	}
	if _, err := MantissaLadder(8, 0); err == nil {
		t.Error("zero steps accepted")
	}
	if _, err := MantissaLadder(60, 2); err == nil {
		t.Error("start beyond mantissa accepted")
	}
	long, err := MantissaLadder(16, 10)
	if err != nil {
		t.Fatal(err)
	}
	if long[len(long)-1] != FullMantissaBits {
		t.Errorf("long ladder does not end at full precision: %v", long)
	}
}

func TestDotFloatExactAtFullPrecision(t *testing.T) {
	a := []float64{1.5, -2.25, 3.125}
	b := []float64{4.0, 0.5, -8.0}
	got, err := DotFloat(a, b, FullMantissaBits)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.5*4.0 + (-2.25)*0.5 + 3.125*(-8.0)
	if got != want {
		t.Errorf("DotFloat = %v, want %v", got, want)
	}
	if _, err := DotFloat(a, b[:2], 52); err == nil {
		t.Error("length mismatch accepted")
	}
}

// TestDotFloatErrorShrinksWithPrecision: an iterative FP-precision ladder
// must produce decreasing error, reaching exactness at full precision.
func TestDotFloatErrorShrinksWithPrecision(t *testing.T) {
	const n = 256
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = math.Sin(float64(i)) * 100
		b[i] = math.Cos(float64(i)*0.7) * 3
	}
	exact, err := DotFloat(a, b, FullMantissaBits)
	if err != nil {
		t.Fatal(err)
	}
	ladder, err := MantissaLadder(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	prevErr := math.Inf(1)
	for _, bits := range ladder {
		got, err := DotFloat(a, b, bits)
		if err != nil {
			t.Fatal(err)
		}
		e := math.Abs(got - exact)
		if e > prevErr*1.5 { // allow mild non-monotonicity from rounding interplay
			t.Errorf("error grew at %d bits: %v after %v", bits, e, prevErr)
		}
		prevErr = e
	}
	if prevErr != 0 {
		t.Errorf("full-precision pass not exact: error %v", prevErr)
	}
}
