package fixpoint

import (
	"fmt"
	"math"
)

// Reduced floating-point precision (paper §III-B1: "if applying reduced
// floating-point precision, f_1 computes f with the lowest precision while
// f_n computes with the highest"). Precision is reduced by truncating
// explicit mantissa bits, the standard model for variable-precision FP
// units; an iterative anytime stage sweeps a ladder of mantissa widths
// ending at full (53-bit significand) precision.

// FullMantissaBits is the number of explicit mantissa bits of a float64.
const FullMantissaBits = 52

// TruncateMantissa returns f with all but the top `bits` explicit mantissa
// bits cleared (round toward zero). bits >= FullMantissaBits returns f
// unchanged; bits == 0 keeps only the implicit leading one (a signed power
// of two). NaN and infinities pass through unchanged; the sign and exponent
// are always preserved, so the relative truncation error is below
// 2^-bits.
func TruncateMantissa(f float64, bits uint) float64 {
	if bits >= FullMantissaBits || math.IsNaN(f) || math.IsInf(f, 0) {
		return f
	}
	u := math.Float64bits(f)
	mask := ^uint64(0) << (FullMantissaBits - bits)
	const mantissaMask = 1<<FullMantissaBits - 1
	return math.Float64frombits(u&^mantissaMask | u&mantissaMask&mask)
}

// MantissaLadder returns an iterative precision schedule: `steps` mantissa
// widths increasing geometrically from `start` and ending at full
// precision, for use as the accuracy levels of an iterative stage.
func MantissaLadder(start uint, steps int) ([]uint, error) {
	if steps < 1 {
		return nil, fmt.Errorf("fixpoint: ladder needs at least one step")
	}
	if start > FullMantissaBits {
		return nil, fmt.Errorf("fixpoint: start precision %d exceeds %d mantissa bits", start, FullMantissaBits)
	}
	out := make([]uint, steps)
	bits := start
	for i := 0; i < steps-1; i++ {
		out[i] = bits
		bits *= 2
		if bits > FullMantissaBits || bits == 0 {
			bits = FullMantissaBits
		}
	}
	out[steps-1] = FullMantissaBits
	// Deduplicate a saturated tail while preserving the final full-precision
	// entry.
	dedup := out[:1]
	for _, b := range out[1:] {
		if b != dedup[len(dedup)-1] {
			dedup = append(dedup, b)
		}
	}
	if dedup[len(dedup)-1] != FullMantissaBits {
		dedup = append(dedup, FullMantissaBits)
	}
	return dedup, nil
}

// DotFloat computes the float64 dot product of a and b at the given
// mantissa precision: both operands and every partial product are truncated
// to `bits` mantissa bits, modelling a reduced-precision FP unit. At
// bits >= FullMantissaBits it is the exact (double-precision) dot product.
func DotFloat(a, b []float64, bits uint) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("fixpoint: dot length mismatch %d vs %d", len(a), len(b))
	}
	var acc float64
	for i := range a {
		p := TruncateMantissa(TruncateMantissa(a[i], bits)*TruncateMantissa(b[i], bits), bits)
		acc = TruncateMantissa(acc+p, bits)
	}
	return acc, nil
}
