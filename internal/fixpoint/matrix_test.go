package fixpoint

import (
	"testing"
	"testing/quick"
)

func TestNewMatrixValidation(t *testing.T) {
	if _, err := NewMatrix(-1, 2); err == nil {
		t.Error("negative rows accepted")
	}
	m, err := NewMatrix(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Data) != 0 {
		t.Error("empty matrix has data")
	}
}

func TestMatrixAtSetCloneEqual(t *testing.T) {
	m, _ := NewMatrix(2, 3)
	m.Set(1, 2, 42)
	if m.At(1, 2) != 42 {
		t.Error("At/Set mismatch")
	}
	c := m.Clone()
	c.Set(0, 0, 7)
	if m.At(0, 0) != 0 {
		t.Error("Clone shares storage")
	}
	if m.Equal(c) {
		t.Error("different matrices equal")
	}
	if !m.Equal(m.Clone()) {
		t.Error("clone not equal")
	}
	other, _ := NewMatrix(3, 2)
	if m.Equal(other) || m.Equal(nil) {
		t.Error("shape mismatch equal")
	}
}

func TestMatMulKnown(t *testing.T) {
	a, _ := NewMatrix(2, 3)
	copy(a.Data, []int32{1, 2, 3, 4, 5, 6})
	b, _ := NewMatrix(3, 2)
	copy(b.Data, []int32{7, 8, 9, 10, 11, 12})
	got, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{58, 64, 139, 154}
	for i, w := range want {
		if got.Data[i] != w {
			t.Errorf("MatMul[%d] = %d, want %d", i, got.Data[i], w)
		}
	}
}

func TestMatMulShapeMismatch(t *testing.T) {
	a, _ := NewMatrix(2, 3)
	b, _ := NewMatrix(2, 3)
	if _, err := MatMul(a, b); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestMatAdd(t *testing.T) {
	a, _ := NewMatrix(2, 2)
	copy(a.Data, []int32{1, 2, 3, 4})
	b, _ := NewMatrix(2, 2)
	copy(b.Data, []int32{10, 20, 30, 40})
	if err := MatAdd(a, b); err != nil {
		t.Fatal(err)
	}
	if a.Data[3] != 44 {
		t.Errorf("MatAdd wrong: %v", a.Data)
	}
	c, _ := NewMatrix(1, 2)
	if err := MatAdd(a, c); err == nil {
		t.Error("shape mismatch accepted")
	}
}

// TestMatMulDistributesOverPlanes is the distributivity property behind the
// synchronous pipeline of Figure 10: multiplying the plane slices of A by C
// and summing gives exactly A·C.
func TestMatMulDistributesOverPlanes(t *testing.T) {
	f := func(raw []int16) bool {
		const n = 4
		a, _ := NewMatrix(n, n)
		c, _ := NewMatrix(n, n)
		for i := 0; i < n*n; i++ {
			if len(raw) > 0 {
				a.Data[i] = int32(int8(raw[i%len(raw)]))
				c.Data[i] = int32(int8(raw[(i*7+3)%len(raw)] >> 4))
			}
		}
		const width = 8
		want, err := MatMul(a, c)
		if err != nil {
			return false
		}
		sum, _ := NewMatrix(n, n)
		for p := uint(0); p < width; p++ {
			part, err := MatMul(a.PlaneSlice(p, width), c)
			if err != nil {
				return false
			}
			if err := MatAdd(sum, part); err != nil {
				return false
			}
		}
		return sum.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestMaskTopPlanePrefix: accumulating the top-k plane slices yields the
// masked matrix, mirroring the scalar prefix property at matrix level.
func TestMaskTopPlanePrefix(t *testing.T) {
	m, _ := NewMatrix(2, 2)
	copy(m.Data, []int32{-77, 31, 127, -128})
	const width = 8
	acc, _ := NewMatrix(2, 2)
	for k := uint(1); k <= width; k++ {
		if err := MatAdd(acc, m.PlaneSlice(width-k, width)); err != nil {
			t.Fatal(err)
		}
		if !acc.Equal(m.MaskTop(k, width)) {
			t.Fatalf("after %d planes accumulator %v != mask %v", k, acc.Data, m.MaskTop(k, width).Data)
		}
	}
	if !acc.Equal(m) {
		t.Error("full plane sum != original")
	}
}
