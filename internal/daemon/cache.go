package daemon

import (
	"context"

	"anytime/internal/core"
	"anytime/internal/pix"
	"anytime/internal/reqtrace"
	"anytime/internal/serve"
	"anytime/internal/snapcache"
	"anytime/internal/telemetry"
)

// cacheEpoch fingerprints the configuration a cached snapshot depends on:
// the input geometry and the worker count (worker count changes snapshot
// granularity interleaving, not pixel values, but a conservative epoch is
// cheap — a stale-config entry just misses and ages out). Any future knob
// that changes what a route computes must be folded in here.
func cacheEpoch(size, workers int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range []int{size, workers} {
		for i := 0; i < 8; i++ {
			h = (h ^ uint64(byte(v>>(8*i)))) * prime64
		}
	}
	return h
}

// seedDelta attempts a delta start: the request's exact content key
// missed, but the client named a sibling key (?prior=, typically the
// previous frame of a stream) whose entry may still be cached. On a
// sibling hit, the tiles where the two inputs differ are computed with
// pix.TileDiff, dilated once for the consumers' stencil halo, and the
// automaton is seeded with a pix.SeedFrame — the cached frame with the
// changed tiles marked stale, so only those fall back to hold-fill until
// recomputed.
//
// The daemon's in-process routes serve one fixed input each, so prior and
// current input pixels coincide and the diff is empty; clients running
// their own frames through cmd/anytime -cache (or embedding
// internal/serve directly) exercise real frame-to-frame diffs. Returns
// the X-Anytime-Cache header value ("delta", or "" when the sibling also
// missed or could not seed) and the seed version.
func (s *Server) seedDelta(ctx context.Context, entry serve.Entry[*pix.Image], app, prior string, input *pix.Image) (string, core.Version) {
	tr := reqtrace.FromContext(ctx)
	pe, ok := s.cache.Get(snapcache.Key{App: app, Digest: prior, Epoch: s.cacheEpoch})
	if !ok {
		return "", 0
	}
	tr.CacheHit(prior, uint64(pe.Version), true)
	// The sibling entry's input is this route's own input (one fixed input
	// per route); diff yields the tiles that cannot be trusted.
	stale, err := pix.TileDiff(input, input)
	if err != nil {
		tr.Error("delta diff: " + err.Error())
		return "", 0
	}
	stale.Dilate()
	if !serve.Seed(ctx, entry, &pix.SeedFrame{Image: pe.Value, Stale: stale}, pe.Version) {
		return "", 0
	}
	s.reg.Counter(telemetry.MetricSnapcacheSeeds, telemetry.Labels{"mode": "delta"}).Inc()
	return "delta", pe.Version
}
