package daemon

import (
	"encoding/json"
	"fmt"
	"net/http"

	"anytime/internal/reqtrace"
)

// registerDebugRequests mounts the flight recorder's inspection endpoints.
// Like the other operational endpoints they bypass the request middleware —
// looking at the recorder must not show up in it.
//
//	GET /debug/requests          newest-first summary table of retained traces
//	GET /debug/requests?id=<ID>  one trace in full: span tree + publish timeline
//	GET /debug/requests.json     the same data machine-readable
//
// The ID is the X-Anytime-Trace response header, so "this request was slow,
// why?" is one copy-paste away from its full span timeline — if the trace
// was interesting enough to keep (errors, rejections, deadline misses, shed
// requests, and the slowest always are; unremarkable successes are sampled).
func (s *Server) registerDebugRequests() {
	s.mux.HandleFunc("GET /debug/requests", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if id := r.URL.Query().Get("id"); id != "" {
			t := s.recorder.Find(id)
			if t == nil {
				http.Error(w, "trace not found (evicted, sampled out, or never seen)", http.StatusNotFound)
				return
			}
			_ = t.WriteDetail(w, 60)
			return
		}
		st := s.recorder.Stats()
		fmt.Fprintf(w, "flight recorder: %d/%d traces held, %d recorded, %d sampled out, %d evicted\n",
			st.Held, st.Capacity, st.Recorded, st.SampledOut, st.Evicted)
		fmt.Fprintf(w, "detail: GET /debug/requests?id=<ID>  (IDs are echoed as X-Anytime-Trace)\n\n")
		_ = reqtrace.WriteList(w, s.recorder.Snapshot())
	})
	s.mux.HandleFunc("GET /debug/requests.json", func(w http.ResponseWriter, r *http.Request) {
		traces := s.recorder.Snapshot()
		views := make([]reqtrace.View, 0, len(traces))
		for _, t := range traces {
			views = append(views, t.View())
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(struct {
			Stats  reqtrace.Stats  `json:"stats"`
			Traces []reqtrace.View `json:"traces"`
		}{s.recorder.Stats(), views})
	})
}
