package daemon

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"anytime/internal/serve"
)

// knobs are one request's stopping controls. At most one is set.
type knobs struct {
	// hold stops the automaton after a raw duration and takes whatever is
	// published — possibly nothing (504).
	hold time.Duration
	// deadline is the serving contract: the best published snapshot when
	// the deadline fires, never empty-handed, shed under load.
	deadline time.Duration
	// accept stops at the first output reaching this SNR (dB).
	accept float64
	// budget is the remaining deadline budget a routing tier handed this
	// backend (serve.BudgetHeader); budgetSet reports whether the header
	// was present. It caps the deadline knob and is ignored by the
	// precise/hold/accept paths — zero-deadline precise requests are never
	// budgeted.
	budget    time.Duration
	budgetSet bool
}

// knobCap bounds the hold/deadline knobs so a stray client cannot park on
// an execution slot indefinitely.
const knobCap = 10 * time.Second

// parseKnobs extracts the hold/accept/deadline stopping knobs from a
// request, plus the router-propagated deadline budget header.
func parseKnobs(r *http.Request) (knobs, error) {
	var k knobs
	var err error
	if h := r.URL.Query().Get("hold"); h != "" {
		k.hold, err = time.ParseDuration(h)
		if err != nil || k.hold <= 0 {
			return knobs{}, fmt.Errorf("bad hold duration %q", h)
		}
	}
	if d := r.URL.Query().Get("deadline"); d != "" {
		k.deadline, err = time.ParseDuration(d)
		if err != nil || k.deadline <= 0 {
			return knobs{}, fmt.Errorf("bad deadline %q", d)
		}
	}
	if a := r.URL.Query().Get("accept"); a != "" {
		k.accept, err = strconv.ParseFloat(a, 64)
		if err != nil || k.accept <= 0 {
			return knobs{}, fmt.Errorf("bad accept threshold %q", a)
		}
	}
	set := 0
	for _, on := range []bool{k.hold > 0, k.deadline > 0, k.accept > 0} {
		if on {
			set++
		}
	}
	if set > 1 {
		return knobs{}, fmt.Errorf("hold, deadline and accept are mutually exclusive")
	}
	if k.hold > knobCap || k.deadline > knobCap {
		return knobs{}, fmt.Errorf("hold and deadline capped at %v", knobCap)
	}
	if k.budget, k.budgetSet, err = serve.ParseBudget(r.Header.Get(serve.BudgetHeader)); err != nil {
		return knobs{}, err
	}
	return k, nil
}
