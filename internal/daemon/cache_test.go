package daemon

import (
	"bytes"
	"net/http"
	"strconv"
	"testing"

	"anytime/internal/pix"
)

// TestCacheWarmStartFlow drives the documented repeat-traffic sequence:
// a precise request populates the cache, then a deadline request for the
// same content warm-starts from it.
func TestCacheWarmStartFlow(t *testing.T) {
	s := testServer(t)

	// Request 1: no knob, precise. Delivered snapshot is admitted.
	rec := get(t, s, "/blur")
	if rec.Code != http.StatusOK {
		t.Fatalf("precise: %d %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Anytime-Cache"); got != "" {
		t.Fatalf("no-knob request reported cache state %q", got)
	}
	if s.cache.Len() != 1 {
		t.Fatalf("cache entries after precise delivery = %d, want 1", s.cache.Len())
	}

	// Request 2: deadline. Must hit, seed, and deliver at a version past
	// the seed.
	rec = get(t, s, "/blur?deadline=2s")
	if rec.Code != http.StatusOK {
		t.Fatalf("warm: %d %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Anytime-Cache"); got != "hit" {
		t.Fatalf("X-Anytime-Cache = %q, want hit", got)
	}
	seedV, err := strconv.Atoi(rec.Header().Get("X-Anytime-Seed-Version"))
	if err != nil || seedV < 1 {
		t.Fatalf("X-Anytime-Seed-Version = %q", rec.Header().Get("X-Anytime-Seed-Version"))
	}
	gotV, err := strconv.Atoi(rec.Header().Get("X-Anytime-Version"))
	if err != nil || gotV <= seedV {
		t.Fatalf("delivered version %q not past seed %d", rec.Header().Get("X-Anytime-Version"), seedV)
	}
	// The warm run completed to precise within the generous deadline: its
	// output must be bit-identical to the cold precise output.
	if rec.Header().Get("X-Anytime-Final") != "true" {
		t.Skip("deadline fired before precise on a slow machine; equivalence covered by conform")
	}
	img, err := pix.DecodePNM(bytes.NewReader(rec.Body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !img.Equal(s.blurRef) {
		t.Fatal("warm-started precise output differs from the cold baseline")
	}
}

func TestCacheMissOnFirstDeadlineRequest(t *testing.T) {
	s := testServer(t)
	rec := get(t, s, "/blur?deadline=2s")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if got := rec.Header().Get("X-Anytime-Cache"); got != "miss" {
		t.Fatalf("X-Anytime-Cache = %q, want miss", got)
	}
	if rec.Header().Get("X-Anytime-Seed-Version") != "" {
		t.Fatal("miss carried a seed version")
	}
}

// Distinct ?input= keys must not share entries (the key override is what
// the router hashes on, so collapsing them would cross-contaminate
// streams).
func TestCacheInputKeyIsolation(t *testing.T) {
	s := testServer(t)
	if rec := get(t, s, "/blur?deadline=2s&input=a"); rec.Header().Get("X-Anytime-Cache") != "miss" {
		t.Fatalf("first key-a: %q", rec.Header().Get("X-Anytime-Cache"))
	}
	if rec := get(t, s, "/blur?deadline=2s&input=b"); rec.Header().Get("X-Anytime-Cache") != "miss" {
		t.Fatalf("first key-b: %q", rec.Header().Get("X-Anytime-Cache"))
	}
	if rec := get(t, s, "/blur?deadline=2s&input=a"); rec.Header().Get("X-Anytime-Cache") != "hit" {
		t.Fatalf("repeat key-a: %q", rec.Header().Get("X-Anytime-Cache"))
	}
}

// The delta path: a new key misses, but ?prior= names the cached sibling
// and seeds through a tile diff.
func TestCacheDeltaStart(t *testing.T) {
	s := testServer(t)
	if rec := get(t, s, "/blur?deadline=2s&input=frame1"); rec.Header().Get("X-Anytime-Cache") != "miss" {
		t.Fatal("frame1 should miss")
	}
	rec := get(t, s, "/blur?deadline=2s&input=frame2&prior=frame1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if got := rec.Header().Get("X-Anytime-Cache"); got != "delta" {
		t.Fatalf("X-Anytime-Cache = %q, want delta", got)
	}
	if rec.Header().Get("X-Anytime-Seed-Version") == "" {
		t.Fatal("delta start carried no seed version")
	}
	// A prior that was never cached falls back to a plain miss.
	rec = get(t, s, "/blur?deadline=2s&input=frame9&prior=frame8")
	if got := rec.Header().Get("X-Anytime-Cache"); got != "miss" {
		t.Fatalf("unknown prior: %q, want miss", got)
	}
}

// A config change (different epoch) must never seed from the old entries.
func TestCacheEpochMismatchNeverSeeds(t *testing.T) {
	s := testServer(t)
	if rec := get(t, s, "/blur?deadline=2s"); rec.Header().Get("X-Anytime-Cache") != "miss" {
		t.Fatal("first request should miss")
	}
	// Simulate a config change in place: bump the epoch the handler keys
	// with, as a restart with different workers would.
	s.cacheEpoch++
	if rec := get(t, s, "/blur?deadline=2s"); rec.Header().Get("X-Anytime-Cache") != "miss" {
		t.Fatalf("epoch-mismatched request = %q, want miss", rec.Header().Get("X-Anytime-Cache"))
	}
}

func TestCacheDisabled(t *testing.T) {
	s, err := New(64, 2, Config{CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	if s.cache != nil {
		t.Fatal("CacheBytes -1 still built a cache")
	}
	rec := get(t, s, "/blur?deadline=2s")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if got := rec.Header().Get("X-Anytime-Cache"); got != "" {
		t.Fatalf("disabled cache reported state %q", got)
	}
}

func TestCacheEpochDiffersByConfig(t *testing.T) {
	if cacheEpoch(64, 2) == cacheEpoch(64, 4) || cacheEpoch(64, 2) == cacheEpoch(128, 2) {
		t.Fatal("cacheEpoch does not separate configurations")
	}
	if cacheEpoch(64, 2) != cacheEpoch(64, 2) {
		t.Fatal("cacheEpoch not deterministic")
	}
}
