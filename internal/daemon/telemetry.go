package daemon

import (
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"anytime/internal/telemetry"
)

// Server-level metric names; the pipeline-level families come from
// internal/telemetry's bindings.
const (
	metricHTTPRequests  = "anytimed_http_requests_total"
	metricHTTPDuration  = "anytimed_http_request_duration_seconds"
	metricHTTPInFlight  = "anytimed_http_in_flight"
	metricSlotsInUse    = "anytimed_automaton_slots_in_use"
	metricSlotsRejected = "anytimed_automaton_slots_rejected_total"
	// metricDeliveredSNR is the delivered-accuracy histogram: the SNR (in
	// millidecibels; the registry is integer-valued) of every approximate
	// delivery. Precise deliveries are counted by
	// anytime_serve_deliveries_total{outcome="precise"} instead — their SNR
	// is +Inf.
	metricDeliveredSNR = "anytimed_delivered_snr_millidb"
	// metricBuildInfo is the conventional constant-1 info gauge carrying the
	// build's identity as labels; metricUptime is seconds since the server
	// was constructed, refreshed at each scrape.
	metricBuildInfo = "anytimed_build_info"
	metricUptime    = "anytimed_uptime_seconds"
)

// handle registers h under pattern with the per-request metrics middleware:
// request count by route and status, a latency histogram by route, and an
// in-flight gauge. The route label is the mux pattern's path (bounded
// cardinality), never the raw request path.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	route := pattern
	if i := strings.IndexByte(pattern, ' '); i >= 0 {
		route = pattern[i+1:]
	}
	duration := s.reg.DurationHistogram(metricHTTPDuration, telemetry.Labels{"path": route})
	inFlight := s.reg.Gauge(metricHTTPInFlight, nil)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		inFlight.Inc()
		defer inFlight.Dec()
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		duration.ObserveDuration(time.Since(start))
		s.reg.Counter(metricHTTPRequests, telemetry.Labels{
			"path": route,
			"code": strconv.Itoa(sw.status()),
		}).Inc()
	})
}

// statusWriter captures the response status for the request counter. It
// forwards Flush so the SSE stream handlers keep working through the
// middleware.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// registerOps mounts the operational endpoints: Prometheus exposition,
// expvar, a liveness probe, and (behind the -pprof flag) the runtime
// profiler. These bypass the request middleware so scrapes don't count as
// traffic.
func (s *Server) registerOps(enablePprof bool) {
	s.mux.Handle("GET /metrics", s.metricsHandler())
	s.mux.Handle("GET /debug/vars", expvar.Handler())
	publishExpvarRegistry(s.reg)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	// The drain lifecycle: POST /drain marks the server draining (healthz
	// goes 503, so a router's health checker stops routing new work here
	// while in-flight and straggler requests still complete against warm
	// pools); DELETE /drain rejoins the fleet. Idempotent in both
	// directions — the response reports the state after the call.
	s.mux.HandleFunc("POST /drain", func(w http.ResponseWriter, r *http.Request) {
		s.draining.Store(true)
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "draining")
	})
	s.mux.HandleFunc("DELETE /drain", func(w http.ResponseWriter, r *http.Request) {
		s.draining.Store(false)
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "serving")
	})
	if enablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
}

// metricsHandler wraps the registry's Prometheus handler with the two
// process-identity series: anytimed_build_info (a constant-1 gauge whose
// labels carry the module version and Go toolchain) and
// anytimed_uptime_seconds, refreshed at scrape time so it is current
// without a background ticker.
func (s *Server) metricsHandler() http.Handler {
	s.reg.Gauge(metricBuildInfo, telemetry.Labels{
		"version":   buildVersion(),
		"goversion": runtime.Version(),
	}).Set(1)
	uptime := s.reg.Gauge(metricUptime, nil)
	inner := s.reg.Handler()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		uptime.Set(int64(time.Since(s.started).Seconds()))
		inner.ServeHTTP(w, r)
	})
}

// buildVersion reports the main module's version from the binary's embedded
// build info — "(devel)" for plain `go build`, a pseudo-version or tag for
// module-installed builds, "unknown" when no build info is embedded.
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}

// The expvar package rejects duplicate Publish names with a panic, but
// tests construct many servers per process; publish one process-wide
// expvar that reads whichever registry the newest server installed.
var (
	expvarOnce     sync.Once
	expvarRegistry atomic.Pointer[telemetry.Registry]
)

func publishExpvarRegistry(reg *telemetry.Registry) {
	expvarRegistry.Store(reg)
	expvarOnce.Do(func() {
		expvar.Publish("anytime", expvar.Func(func() any {
			if r := expvarRegistry.Load(); r != nil {
				return r.Expvar()
			}
			return nil
		}))
	})
}
