package daemon

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"anytime/internal/pix"
)

func testServer(t *testing.T) *Server {
	t.Helper()
	s, err := New(64, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestIndexAndNotFound(t *testing.T) {
	s := testServer(t)
	rec := get(t, s, "/")
	if rec.Code != http.StatusOK || !bytes.Contains(rec.Body.Bytes(), []byte("hold a request")) {
		t.Errorf("index: %d %q", rec.Code, rec.Body.String())
	}
	if rec := get(t, s, "/nope"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown path: %d", rec.Code)
	}
}

func TestPreciseBlur(t *testing.T) {
	s := testServer(t)
	rec := get(t, s, "/blur")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("X-Anytime-Final") != "true" {
		t.Error("precise request did not return the final output")
	}
	if rec.Header().Get("X-Anytime-SNR-dB") != "inf" {
		t.Errorf("precise SNR = %q", rec.Header().Get("X-Anytime-SNR-dB"))
	}
	img, err := pix.DecodePNM(bytes.NewReader(rec.Body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if img.W != 64 || img.H != 64 || img.C != 1 {
		t.Errorf("unexpected image geometry %dx%dx%d", img.W, img.H, img.C)
	}
	if !img.Equal(s.blurRef) {
		t.Error("precise response differs from the reference")
	}
}

func TestHeldBlurReturnsValidApproximation(t *testing.T) {
	s := testServer(t)
	rec := get(t, s, "/blur?hold=3ms")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if _, err := pix.DecodePNM(bytes.NewReader(rec.Body.Bytes())); err != nil {
		t.Fatalf("held response not a valid image: %v", err)
	}
	if v := rec.Header().Get("X-Anytime-Version"); v == "" || v == "0" {
		t.Errorf("version header %q", v)
	}
}

func TestAcceptKnobStopsAtThreshold(t *testing.T) {
	s := testServer(t)
	rec := get(t, s, "/blur?accept=10")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	snr := rec.Header().Get("X-Anytime-SNR-dB")
	if snr == "inf" {
		// Legal (small image may jump straight to precise) but the usual
		// case should stop early; just check the header parses.
		return
	}
	db, err := strconv.ParseFloat(snr, 64)
	if err != nil {
		t.Fatalf("bad SNR header %q", snr)
	}
	if db < 10 {
		t.Errorf("accepted output below threshold: %v dB", db)
	}
}

func TestClusterReturnsRGB(t *testing.T) {
	s := testServer(t)
	rec := get(t, s, "/cluster?hold=5ms")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "image/x-portable-pixmap" {
		t.Errorf("content type %q", ct)
	}
	img, err := pix.DecodePNM(bytes.NewReader(rec.Body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if img.C != 3 {
		t.Errorf("cluster returned %d channels", img.C)
	}
}

func TestEqualizePrecise(t *testing.T) {
	s := testServer(t)
	rec := get(t, s, "/equalize")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	img, err := pix.DecodePNM(bytes.NewReader(rec.Body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !img.Equal(s.eqRef) {
		t.Error("precise equalize differs from reference")
	}
}

func TestKnobValidation(t *testing.T) {
	s := testServer(t)
	cases := []string{
		"/blur?hold=banana",
		"/blur?hold=-5ms",
		"/blur?accept=-1",
		"/blur?accept=x",
		"/blur?hold=5ms&accept=10",
		"/blur?hold=11s",
		"/blur?deadline=banana",
		"/blur?deadline=-5ms",
		"/blur?deadline=11s",
		"/blur?deadline=5ms&hold=5ms",
		"/blur?deadline=5ms&accept=10",
	}
	for _, path := range cases {
		if rec := get(t, s, path); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, rec.Code)
		}
	}
}

// TestDeadlineContract pins the serving contract end to end: a deadline far
// too short for the pipeline still returns 200 with a valid, decodable
// approximation (never 504, unlike hold), the deadline headers report the
// interruption, and the delivered-accuracy metric is recorded.
func TestDeadlineContract(t *testing.T) {
	// A larger image than the other tests so a microsecond deadline
	// reliably interrupts before the precise output.
	s, err := New(256, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rec := get(t, s, "/blur?deadline=1us")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	img, err := pix.DecodePNM(bytes.NewReader(rec.Body.Bytes()))
	if err != nil {
		t.Fatalf("deadline response not a valid image: %v", err)
	}
	if img.W != 256 || img.H != 256 {
		t.Errorf("unexpected geometry %dx%d", img.W, img.H)
	}
	if v := rec.Header().Get("X-Anytime-Version"); v == "" || v == "0" {
		t.Errorf("version header %q", v)
	}
	if d := rec.Header().Get("X-Anytime-Deadline"); d != "1µs" {
		t.Errorf("deadline header %q", d)
	}
	if rec.Header().Get("X-Anytime-Deadline-Fired") != "true" {
		t.Error("microsecond deadline did not fire")
	}
	if rec.Header().Get("X-Anytime-Final") != "false" {
		t.Error("microsecond deadline returned the final output")
	}
	metricsBody := get(t, s, "/metrics").Body.String()
	if !strings.Contains(metricsBody, "anytimed_delivered_snr_millidb") {
		t.Error("approximate delivery did not record the delivered-accuracy metric")
	}
	if !strings.Contains(metricsBody, `anytime_serve_deliveries_total{outcome="approximate"}`) {
		t.Error("serve delivery counter missing the approximate outcome")
	}
}

// TestPooledReuseStaysPreciseAcrossRequests is the warm-pool acceptance
// bar at the HTTP level: after interrupted deadline requests, the same
// pooled automaton must still produce the bit-exact precise output, for
// more than two consecutive reuse cycles.
func TestPooledReuseStaysPreciseAcrossRequests(t *testing.T) {
	s := testServer(t)
	for cycle := 1; cycle <= 3; cycle++ {
		if rec := get(t, s, "/blur?deadline=1us"); rec.Code != http.StatusOK {
			t.Fatalf("cycle %d deadline request: %d", cycle, rec.Code)
		}
		rec := get(t, s, "/blur")
		if rec.Code != http.StatusOK {
			t.Fatalf("cycle %d precise request: %d", cycle, rec.Code)
		}
		img, err := pix.DecodePNM(bytes.NewReader(rec.Body.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if !img.Equal(s.blurRef) {
			t.Fatalf("cycle %d: pooled precise output differs from the reference", cycle)
		}
	}
	// The pool must actually have been reused, not rebuilt per request.
	body := get(t, s, "/metrics").Body.String()
	warm := counterValue(t, body, `anytime_serve_pool_gets_total{pool="blur",source="warm"}`)
	if warm < 5 {
		t.Errorf("warm pool checkouts = %d across 6 requests, want ≥ 5", warm)
	}
}

// TestQueueSaturationRejects pins admission control: with one slot, no
// waiting room, and the slot held, the next request is turned away with
// 503 immediately.
func TestQueueSaturationRejects(t *testing.T) {
	s, err := New(64, 2, Config{Slots: 1, QueueLen: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.queue.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.queue.Release()
	if rec := get(t, s, "/blur"); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("saturated queue returned %d, want 503", rec.Code)
	}
}

// TestOverloadPolicyValidation rejects an unknown -overload value.
func TestOverloadPolicyValidation(t *testing.T) {
	if _, err := New(64, 2, Config{Overload: "panic"}); err == nil {
		t.Fatal("bad overload policy accepted")
	}
}

func TestStreamEmitsVersionsAndEndsAtFinal(t *testing.T) {
	s := testServer(t)
	rec := get(t, s, "/blur/stream")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("content type %q", ct)
	}
	body := rec.Body.String()
	events := strings.Count(body, "data: ")
	if events < 1 {
		t.Fatalf("no SSE events:\n%s", body)
	}
	if !strings.Contains(body, `"final":true`) {
		t.Errorf("stream did not end with the final version:\n%s", body)
	}
	if !strings.Contains(body, `"snr_db":"inf"`) {
		t.Errorf("final event not precise:\n%s", body)
	}
}

func TestClusterStream(t *testing.T) {
	s := testServer(t)
	rec := get(t, s, "/cluster/stream")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"final":true`) {
		t.Error("cluster stream missing final event")
	}
}
