package daemon

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"anytime/internal/serve"
)

// getWithBudget is get() plus the router's budget header.
func getWithBudget(t *testing.T, s *Server, path, budget string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	if budget != "" {
		req.Header.Set(serve.BudgetHeader, budget)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// TestBudgetCapsDeadline is the regression for the fleet's core invariant:
// a backend never runs longer than the budget it was handed. The client
// asks for a 5-second deadline but the router's budget says 30ms — the
// response must come back on the budget's clock (±one automaton round),
// not the deadline's.
func TestBudgetCapsDeadline(t *testing.T) {
	s := testServer(t)
	start := time.Now()
	rec := getWithBudget(t, s, "/blur?deadline=5s", "30ms")
	elapsed := time.Since(start)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	// The effective deadline the server granted is the budget, not the
	// requested deadline.
	eff, err := time.ParseDuration(rec.Header().Get("X-Anytime-Effective-Deadline"))
	if err != nil || eff > 30*time.Millisecond {
		t.Fatalf("effective deadline %q, want <= 30ms", rec.Header().Get("X-Anytime-Effective-Deadline"))
	}
	// Wall time: budget plus generous slack for one automaton round and
	// scheduler noise — nowhere near the 5s deadline.
	if elapsed > 2*time.Second {
		t.Fatalf("budgeted request ran %v against a 30ms budget", elapsed)
	}
	// The contract still holds: a snapshot was delivered.
	if v := rec.Header().Get("X-Anytime-Version"); v == "" || v == "0" {
		t.Fatalf("version %q, want >= 1", v)
	}
	// The granted budget is echoed for observability.
	if rec.Header().Get(serve.BudgetHeader) != "30ms" {
		t.Errorf("budget echo %q, want 30ms", rec.Header().Get(serve.BudgetHeader))
	}
}

// TestBudgetExhaustedStillDelivers: a zero budget (the fleet spent the
// whole deadline) degrades to best-effort minimum — one snapshot, never an
// empty response.
func TestBudgetExhaustedStillDelivers(t *testing.T) {
	s := testServer(t)
	rec := getWithBudget(t, s, "/blur?deadline=1s", "0s")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if v := rec.Header().Get("X-Anytime-Version"); v == "" || v == "0" {
		t.Fatalf("version %q, want >= 1 even with an exhausted budget", v)
	}
}

// TestBudgetIgnoredOutsideDeadline: precise and hold requests never consult
// the budget header — only the deadline knob participates in the fleet
// budget protocol.
func TestBudgetIgnoredOutsideDeadline(t *testing.T) {
	s := testServer(t)
	rec := getWithBudget(t, s, "/blur", "1ns")
	if rec.Code != http.StatusOK || rec.Header().Get("X-Anytime-Final") != "true" {
		t.Fatalf("precise request with budget header: %d final=%q", rec.Code, rec.Header().Get("X-Anytime-Final"))
	}
	if rec.Header().Get(serve.BudgetHeader) != "" {
		t.Error("precise response echoed a budget")
	}
}

// TestBudgetAboveDeadlineNotEchoed: a budget looser than the deadline
// doesn't change the contract and isn't echoed as if it had.
func TestBudgetAboveDeadlineNotEchoed(t *testing.T) {
	s := testServer(t)
	rec := getWithBudget(t, s, "/blur?deadline=20ms", "10s")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if got := rec.Header().Get(serve.BudgetHeader); got != "" {
		t.Errorf("uncapping budget echoed as %q", got)
	}
}

// TestBudgetMalformedRejected: garbage in the header is a 400, same as a
// garbage knob.
func TestBudgetMalformedRejected(t *testing.T) {
	s := testServer(t)
	rec := getWithBudget(t, s, "/blur?deadline=20ms", "not-a-duration")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed budget: status %d", rec.Code)
	}
}

// TestDrainLifecycle: POST /drain flips healthz to 503 "draining" (what a
// router's checker keys on), requests still serve (with the draining
// marker), and DELETE /drain restores service.
func TestDrainLifecycle(t *testing.T) {
	s := testServer(t)
	if rec := get(t, s, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz before drain: %d", rec.Code)
	}

	req := httptest.NewRequest(http.MethodPost, "/drain", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "draining") {
		t.Fatalf("POST /drain: %d %q", rec.Code, rec.Body.String())
	}

	rec = get(t, s, "/healthz")
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "draining") {
		t.Fatalf("healthz while draining: %d %q", rec.Code, rec.Body.String())
	}

	// The last requests still serve — the contract holds to the end — and
	// carry the draining marker.
	rec = get(t, s, "/blur?deadline=30ms")
	if rec.Code != http.StatusOK {
		t.Fatalf("request while draining: %d", rec.Code)
	}
	if rec.Header().Get("X-Anytime-Draining") != "true" {
		t.Error("draining response not marked")
	}

	req = httptest.NewRequest(http.MethodDelete, "/drain", nil)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "serving") {
		t.Fatalf("DELETE /drain: %d %q", rec.Code, rec.Body.String())
	}
	if rec := get(t, s, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz after rejoin: %d", rec.Code)
	}
	rec = get(t, s, "/blur?deadline=30ms")
	if rec.Header().Get("X-Anytime-Draining") != "" {
		t.Error("rejoined response still marked draining")
	}
}

// TestBudgetTraced: a budgeted request's trace carries the budget span, so
// /debug/requests shows the fleet's arithmetic next to the local spans.
func TestBudgetTraced(t *testing.T) {
	s := testServer(t)
	rec := getWithBudget(t, s, "/blur?deadline=1s", "25ms")
	id := rec.Header().Get("X-Anytime-Trace")
	if id == "" {
		t.Fatal("no trace ID")
	}
	detail := get(t, s, "/debug/requests?id="+id)
	if detail.Code == http.StatusOK && !strings.Contains(detail.Body.String(), "budget") {
		t.Errorf("trace detail missing budget span:\n%s", detail.Body.String())
	}
}
