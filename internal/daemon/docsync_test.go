package daemon

import (
	"encoding/json"
	"os"
	"regexp"
	"strings"
	"testing"
)

// The doc-sync suite: MetricFamilies is the single source of truth for
// what an anytimed process can register, and both the docs and the live
// /debug/vars surface are diffed against it. A new instrument that is not
// added to MetricFamilies fails TestDebugVarsWithinInventory; one added
// there but not documented fails the table tests.

var metricToken = regexp.MustCompile(`anytimed?_[a-z_]+`)

func docBlock(t *testing.T, path, begin, end string) string {
	t.Helper()
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := string(blob)
	i := strings.Index(text, begin)
	j := strings.Index(text, end)
	if i < 0 || j < 0 || j < i {
		t.Fatalf("%s: markers %q/%q not found", path, begin, end)
	}
	return text[i+len(begin) : j]
}

// TestMetricsTableMatchesRegistry diffs README's metrics table (between
// the metrics:begin/end markers) against the registry inventory, in both
// directions: no family undocumented, no stale name documented.
func TestMetricsTableMatchesRegistry(t *testing.T) {
	table := docBlock(t, "../../README.md", "<!-- metrics:begin -->", "<!-- metrics:end -->")
	documented := map[string]bool{}
	for _, name := range metricToken.FindAllString(table, -1) {
		documented[name] = true
	}
	inventory := map[string]bool{}
	for _, fam := range MetricFamilies() {
		inventory[fam] = true
		if !documented[fam] {
			t.Errorf("README metrics table is missing %s", fam)
		}
	}
	for name := range documented {
		if !inventory[name] {
			t.Errorf("README metrics table lists %s, which no daemon instrument registers", name)
		}
	}
}

// TestOperationsCoversAllFamilies asserts the operator's handbook
// mentions every family the daemon can expose. (The reverse check is
// README-only: OPERATIONS.md legitimately documents the router's own
// anytime_router_* families too.)
func TestOperationsCoversAllFamilies(t *testing.T) {
	blob, err := os.ReadFile("../../docs/OPERATIONS.md")
	if err != nil {
		t.Fatal(err)
	}
	ops := string(blob)
	for _, fam := range MetricFamilies() {
		if !strings.Contains(ops, fam) {
			t.Errorf("docs/OPERATIONS.md does not document %s", fam)
		}
	}
}

// TestDebugVarsWithinInventory drives traffic through a live server and
// asserts /debug/vars — generated from the registry, never hand-written —
// exposes only families present in MetricFamilies. This is the guard that
// keeps the inventory (and through the table tests, the docs) honest when
// new instruments land.
func TestDebugVarsWithinInventory(t *testing.T) {
	s := testServer(t)
	// Touch the big registration surfaces: a precise request (pipeline,
	// serve, HTTP, admission), then a deadline repeat (cache hit + seed).
	if rec := get(t, s, "/blur"); rec.Code != 200 {
		t.Fatalf("precise request: %d", rec.Code)
	}
	if rec := get(t, s, "/blur?deadline=2s"); rec.Code != 200 {
		t.Fatalf("deadline request: %d", rec.Code)
	}
	rec := get(t, s, "/debug/vars")
	if rec.Code != 200 {
		t.Fatalf("/debug/vars: %d", rec.Code)
	}
	var vars struct {
		Anytime map[string]json.RawMessage `json:"anytime"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &vars); err != nil {
		t.Fatalf("decoding /debug/vars: %v", err)
	}
	if len(vars.Anytime) == 0 {
		t.Fatal("/debug/vars exposed no registry families")
	}
	inventory := map[string]bool{}
	for _, fam := range MetricFamilies() {
		inventory[fam] = true
	}
	for fam := range vars.Anytime {
		if !inventory[fam] {
			t.Errorf("live registry exposes %s, which MetricFamilies does not list (add it and document it)", fam)
		}
	}
	// And the traffic above must have registered the cache counters.
	for _, fam := range []string{"anytime_snapcache_hits_total", "anytime_snapcache_seeds_total"} {
		if _, ok := vars.Anytime[fam]; !ok {
			t.Errorf("expected %s to be live after a warm-started request", fam)
		}
	}
}
