package daemon

import (
	"sort"

	"anytime/internal/telemetry"
)

// MetricFamilies is the daemon's full metric inventory: every family name
// an anytimed process can register, compiled from the same constants the
// instruments are created with. It exists so documentation cannot drift
// from the registry: the doc-sync test diffs the README and
// docs/OPERATIONS.md metric tables against this list, and the /debug/vars
// test asserts a live server never exposes a family missing from it.
// Adding an instrument without extending this list (and the docs) fails
// CI.
//
// The router's anytime_router_* families are deliberately absent: they
// belong to cmd/anytimerouter's registry, not the daemon's.
func MetricFamilies() []string {
	fams := []string{
		// HTTP layer and delivery accuracy (internal/daemon).
		metricHTTPRequests,
		metricHTTPDuration,
		metricHTTPInFlight,
		metricSlotsInUse,
		metricSlotsRejected,
		metricDeliveredSNR,
		metricBuildInfo,
		metricUptime,

		// Serving runtime (internal/serve via telemetry.ServeHooks).
		telemetry.MetricServePoolGets,
		telemetry.MetricServePoolPuts,
		telemetry.MetricServeQueueDepthMax,
		telemetry.MetricServeQueueWait,
		telemetry.MetricServeRejects,
		telemetry.MetricServeShedFactor,
		telemetry.MetricServeSheds,
		telemetry.MetricServeDeliveries,
		telemetry.MetricServeDeliveryTime,

		// Snapshot cache (internal/snapcache via telemetry.SnapcacheHooks).
		telemetry.MetricSnapcacheHits,
		telemetry.MetricSnapcacheMisses,
		telemetry.MetricSnapcacheEvictions,
		telemetry.MetricSnapcacheBytes,
		telemetry.MetricSnapcacheEntries,
		telemetry.MetricSnapcacheSeeds,

		// Flight recorder (internal/reqtrace via telemetry.ReqtraceHooks).
		telemetry.MetricReqtraceRecorded,
		telemetry.MetricReqtraceSampledOut,
		telemetry.MetricReqtraceEvicted,

		// Pipeline layer (internal/telemetry core bindings, per run).
		telemetry.MetricCheckpointLatency,
		telemetry.MetricCheckpointTotal,
		telemetry.MetricPauseWait,
		telemetry.MetricStageDuration,
		telemetry.MetricStagesActive,
		telemetry.MetricRunsTotal,
		telemetry.MetricRunDuration,
		telemetry.MetricAutomataActive,
		telemetry.MetricBufferPublish,
		telemetry.MetricBufferVersion,
		telemetry.MetricBufferFinal,
		telemetry.MetricPublishInterval,
		telemetry.MetricStreamDepth,
		telemetry.MetricStreamDepthMax,
	}
	sort.Strings(fams)
	return fams
}
