package daemon

import (
	"fmt"
	"net/http"
	"time"

	"anytime/internal/apps/conv2d"
	"anytime/internal/apps/kmeans"
	"anytime/internal/core"
	"anytime/internal/metrics"
	"anytime/internal/pix"
	"anytime/internal/telemetry"
)

// registerStreams adds the Server-Sent Events endpoints: the client watches
// the whole-application output quality rise live, one event per published
// version, and decides for itself when to stop listening — the
// hold-the-power-button interaction with the button on the client side.
//
// Streams build fresh automata rather than drawing from the warm pools: a
// stream holds its automaton for the client's whole attention span, so
// construction cost is noise, and keeping them out of the pools means a
// few long-lived stream watchers cannot starve the request path's warm
// instances. They do share the admission queue — a stream occupies an
// execution slot like any request.
func (s *Server) registerStreams() {
	s.handle("GET /blur/stream", s.handleStream(func() (*core.Automaton, *core.Buffer[*pix.Image], *pix.Image, error) {
		run, err := conv2d.New(s.grayIn, conv2d.Config{Workers: s.workers})
		if err != nil {
			return nil, nil, nil, err
		}
		return run.Automaton, run.Out, s.blurRef, nil
	}))
	s.handle("GET /cluster/stream", s.handleStream(func() (*core.Automaton, *core.Buffer[*pix.Image], *pix.Image, error) {
		run, err := kmeans.New(s.rgbIn, kmeans.Config{Workers: s.workers})
		if err != nil {
			return nil, nil, nil, err
		}
		return run.Automaton, run.Out, s.kmRef, nil
	}))
}

// handleStream emits one SSE event per published output version:
//
//	data: {"version":3,"final":false,"snr_db":"24.18","elapsed_ms":12}
//
// The stream ends at the final (precise) version; closing the request
// stops the automaton.
func (s *Server) handleStream(build func() (*core.Automaton, *core.Buffer[*pix.Image], *pix.Image, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		flusher, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		release, ok := s.admit(r)
		if !ok {
			http.Error(w, "server at capacity", http.StatusServiceUnavailable)
			return
		}
		defer release()
		a, out, ref, err := build()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		// Fresh (unpooled) automaton: attaching the observer per request
		// cannot pile up, the buffer dies with the stream.
		a.SetHooks(s.hooks)
		telemetry.ObserveBuffer(s.reg, out)
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")

		sub := out.Subscribe(r.Context())
		start := time.Now()
		if err := a.Start(r.Context()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		defer a.Stop()
		for snap := range sub {
			db, err := metrics.SNR(ref.Pix, snap.Value.Pix)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "data: {\"version\":%d,\"final\":%v,\"snr_db\":%q,\"elapsed_ms\":%d}\n\n",
				snap.Version, snap.Final, metrics.FormatDB(db), time.Since(start).Milliseconds())
			flusher.Flush()
		}
	}
}
