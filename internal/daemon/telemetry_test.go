package daemon

import (
	"context"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// counterValue extracts the integer sample of one exact series line from a
// Prometheus exposition body, or -1 if the series is absent.
func counterValue(t *testing.T, body, series string) int64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(series) + ` (\d+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		return -1
	}
	v, err := strconv.ParseInt(m[1], 10, 64)
	if err != nil {
		t.Fatalf("series %s: %v", series, err)
	}
	return v
}

func TestMetricsExpositionReflectsTraffic(t *testing.T) {
	s := testServer(t)
	if rec := get(t, s, "/blur?hold=3ms"); rec.Code != http.StatusOK {
		t.Fatalf("blur: %d", rec.Code)
	}
	rec := get(t, s, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body := rec.Body.String()
	// The acceptance-criteria families must all be present after one
	// pipeline request.
	for _, family := range []string{
		"# TYPE anytime_stage_checkpoint_latency_seconds histogram",
		"# TYPE anytime_buffer_publish_total counter",
		"# TYPE anytimed_http_in_flight gauge",
		"# TYPE anytimed_http_request_duration_seconds histogram",
		"# TYPE anytimed_automaton_slots_in_use gauge",
	} {
		if !strings.Contains(body, family) {
			t.Errorf("exposition missing %q", family)
		}
	}
	requests := counterValue(t, body, `anytimed_http_requests_total{code="200",path="/blur"}`)
	if requests < 1 {
		t.Fatalf("blur request counter = %d after one request\n%s", requests, body)
	}
	publishes := counterValue(t, body, `anytime_buffer_publish_total{buffer="conv2d"}`)
	runs := counterValue(t, body, `anytime_automaton_runs_total{outcome="stopped"}`)

	// Values must change across requests.
	if rec := get(t, s, "/blur?hold=3ms"); rec.Code != http.StatusOK {
		t.Fatalf("second blur: %d", rec.Code)
	}
	body2 := get(t, s, "/metrics").Body.String()
	if got := counterValue(t, body2, `anytimed_http_requests_total{code="200",path="/blur"}`); got != requests+1 {
		t.Errorf("request counter %d -> %d, want +1", requests, got)
	}
	if got := counterValue(t, body2, `anytime_buffer_publish_total{buffer="conv2d"}`); got <= publishes {
		t.Errorf("publish counter did not grow: %d -> %d", publishes, got)
	}
	if runs >= 0 {
		if got := counterValue(t, body2, `anytime_automaton_runs_total{outcome="stopped"}`); got <= runs {
			t.Errorf("run counter did not grow: %d -> %d", runs, got)
		}
	}
}

func TestHealthzAndExpvar(t *testing.T) {
	s := testServer(t)
	rec := get(t, s, "/healthz")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Errorf("healthz: %d %q", rec.Code, rec.Body.String())
	}
	if rec := get(t, s, "/blur?hold=2ms"); rec.Code != http.StatusOK {
		t.Fatalf("blur: %d", rec.Code)
	}
	rec = get(t, s, "/debug/vars")
	if rec.Code != http.StatusOK {
		t.Fatalf("debug/vars: %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, `"anytime"`) || !strings.Contains(body, "anytimed_http_requests_total") {
		t.Errorf("expvar missing the registry:\n%s", body)
	}
}

func TestPprofGatedByFlag(t *testing.T) {
	if rec := get(t, testServer(t), "/debug/pprof/cmdline"); rec.Code != http.StatusNotFound {
		t.Errorf("pprof exposed without the flag: %d", rec.Code)
	}
	s, err := New(64, 2, Config{Pprof: true})
	if err != nil {
		t.Fatal(err)
	}
	if rec := get(t, s, "/debug/pprof/cmdline"); rec.Code != http.StatusOK {
		t.Errorf("pprof absent with the flag: %d", rec.Code)
	}
}

// TestQueueBoundsConcurrentAutomata fires a burst of held requests well
// past the 8 slots and asserts the slots-in-use gauge (which mirrors the
// admission queue's occupancy) never exceeds the bound while every request
// still succeeds.
func TestQueueBoundsConcurrentAutomata(t *testing.T) {
	s := testServer(t)
	slots := s.reg.Gauge(metricSlotsInUse, nil)

	const burst = 24
	var maxSeen atomic.Int64
	stop := make(chan struct{})
	var poll sync.WaitGroup
	poll.Add(1)
	go func() {
		defer poll.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if v := slots.Value(); v > maxSeen.Load() {
				maxSeen.Store(v)
			}
		}
	}()

	var wg sync.WaitGroup
	codes := make([]int, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = get(t, s, "/blur?hold=10ms").Code
		}(i)
	}
	wg.Wait()
	close(stop)
	poll.Wait()

	for i, code := range codes {
		// 504 is legitimate under contention: the hold elapsed before the
		// queued automaton's first publish. The invariant under test is the
		// concurrency bound, not publish latency.
		if code != http.StatusOK && code != http.StatusGatewayTimeout {
			t.Errorf("request %d: status %d", i, code)
		}
	}
	if got := maxSeen.Load(); got > int64(s.queue.Slots()) {
		t.Errorf("slots in use peaked at %d, queue bound is %d", got, s.queue.Slots())
	}
	if got := maxSeen.Load(); got < 2 {
		t.Errorf("burst of %d never ran concurrently (peak %d)", burst, got)
	}
	if v := slots.Value(); v != 0 {
		t.Errorf("slots in use = %d after the burst drained", v)
	}
}

// TestAdmitRejectsWhenSaturatedAndClientGone pins the admission edge case:
// with every slot held, an admit whose client has gone away must give up
// its place in line rather than block forever, and count the rejection.
func TestAdmitRejectsWhenSaturatedAndClientGone(t *testing.T) {
	s := testServer(t)
	bound := s.queue.Slots()
	releases := make([]func(), 0, bound)
	for i := 0; i < bound; i++ {
		req := httptest.NewRequest(http.MethodGet, "/blur", nil)
		release, ok := s.admit(req)
		if !ok {
			t.Fatalf("admit %d failed with free slots", i)
		}
		releases = append(releases, release)
	}
	if v := s.reg.Gauge(metricSlotsInUse, nil).Value(); v != int64(bound) {
		t.Fatalf("slots gauge = %d, want %d", v, bound)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	req := httptest.NewRequest(http.MethodGet, "/blur", nil).WithContext(ctx)
	if _, ok := s.admit(req); ok {
		t.Fatal("admit succeeded past the bound")
	}
	if v := s.reg.Counter(metricSlotsRejected, nil).Value(); v != 1 {
		t.Errorf("rejected counter = %d, want 1", v)
	}
	for _, release := range releases {
		release()
	}
	if v := s.reg.Gauge(metricSlotsInUse, nil).Value(); v != 0 {
		t.Errorf("slots gauge = %d after release, want 0", v)
	}
}

// TestMetricsScrapeIsValidExposition validates the complete /metrics body
// against the text exposition grammar (version 0.0.4): every line is a
// `# TYPE` header or a well-formed sample whose family was declared first,
// each family is declared exactly once, and the process-identity series
// (anytimed_build_info, anytimed_uptime_seconds) are present. A scrape that
// drifts from the grammar is silently dropped by real collectors, so this is
// tested at the full-Server level, with every subsystem's families live.
func TestMetricsScrapeIsValidExposition(t *testing.T) {
	s := testServer(t)
	// Touch every subsystem: pipeline + pools (app request), the deadline
	// path (delivered-accuracy histogram), streams, and the flight recorder.
	for _, path := range []string{"/blur?hold=3ms", "/blur?deadline=1us", "/blur", "/blur/stream"} {
		if rec := get(t, s, path); rec.Code != http.StatusOK && rec.Code != http.StatusGatewayTimeout {
			t.Fatalf("%s: %d", path, rec.Code)
		}
	}
	body := get(t, s, "/metrics").Body.String()

	typeRe := regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	labelRe := `[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"`
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{` + labelRe + `(?:,` + labelRe + `)*\})? (-?[0-9]+(?:\.[0-9]+)?(?:[eE][-+]?[0-9]+)?|[-+]?Inf|NaN)$`)

	declared := map[string]string{}
	for n, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "# HELP") {
			continue
		}
		if m := typeRe.FindStringSubmatch(line); m != nil {
			if _, dup := declared[m[1]]; dup {
				t.Errorf("line %d: family %s declared twice", n+1, m[1])
			}
			declared[m[1]] = m[2]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Errorf("line %d: malformed comment %q", n+1, line)
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("line %d: malformed sample %q", n+1, line)
			continue
		}
		family := m[1]
		if _, ok := declared[family]; !ok {
			// Histogram children sample under derived names.
			base := family
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				base = strings.TrimSuffix(base, suffix)
			}
			if declared[base] != "histogram" {
				t.Errorf("line %d: sample %s before its # TYPE header", n+1, family)
			}
		}
	}

	buildRe := regexp.MustCompile(`(?m)^anytimed_build_info\{goversion="go[^"]+",version="[^"]+"\} 1$`)
	if !buildRe.MatchString(body) {
		t.Error("exposition missing anytimed_build_info with goversion/version labels")
	}
	if counterValue(t, body, "anytimed_uptime_seconds") < 0 {
		t.Error("exposition missing anytimed_uptime_seconds")
	}
	for _, family := range []string{
		"anytimed_build_info", "anytimed_uptime_seconds",
		"anytime_reqtrace_recorded_total",
	} {
		if declared[family] == "" {
			t.Errorf("family %s not declared", family)
		}
	}
}
