package daemon

import (
	"context"
	"encoding/json"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// requestsJSON is the test-side decoding of /debug/requests.json (categories
// and kinds arrive as their stable string names).
type requestsJSON struct {
	Stats struct {
		Held       int    `json:"held"`
		Capacity   int    `json:"capacity"`
		Recorded   uint64 `json:"recorded"`
		SampledOut uint64 `json:"sampled_out"`
		Evicted    uint64 `json:"evicted"`
	} `json:"stats"`
	Traces []struct {
		ID       string `json:"id"`
		Route    string `json:"route"`
		Category string `json:"category"`
		Status   int    `json:"status"`
		Events   []struct {
			Kind string `json:"kind"`
		} `json:"events"`
	} `json:"traces"`
}

func debugRequestsJSON(t *testing.T, s *Server) requestsJSON {
	t.Helper()
	rec := get(t, s, "/debug/requests.json")
	if rec.Code != http.StatusOK {
		t.Fatalf("requests.json: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("requests.json content type %q", ct)
	}
	var out requestsJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("requests.json decode: %v\n%s", err, rec.Body.String())
	}
	return out
}

// TestTraceHeaderEchoed: every app response carries the request's trace ID
// in traceparent style, so a caller can quote it back at /debug/requests.
func TestTraceHeaderEchoed(t *testing.T) {
	s := testServer(t)
	idRe := regexp.MustCompile(`^[0-9a-f]{32}$`)
	first := get(t, s, "/blur?hold=2ms")
	if !idRe.MatchString(first.Header().Get("X-Anytime-Trace")) {
		t.Fatalf("trace header %q", first.Header().Get("X-Anytime-Trace"))
	}
	// Even a rejected knob gets an ID — the failure is traced too.
	bad := get(t, s, "/blur?hold=banana")
	if !idRe.MatchString(bad.Header().Get("X-Anytime-Trace")) {
		t.Fatalf("trace header on 400 %q", bad.Header().Get("X-Anytime-Trace"))
	}
	if first.Header().Get("X-Anytime-Trace") == bad.Header().Get("X-Anytime-Trace") {
		t.Fatal("two requests shared a trace ID")
	}
}

// TestDebugRequestsListAndDetail drives one interesting request end to end:
// its ID (from the response header) must appear in the /debug/requests
// summary, and the ?id= detail view must show the full span tree plus the
// publish timeline.
func TestDebugRequestsListAndDetail(t *testing.T) {
	// 256 px so a microsecond deadline reliably interrupts: deadline misses
	// bypass sampling, making retention deterministic.
	s, err := New(256, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rec := get(t, s, "/blur?deadline=1us")
	if rec.Code != http.StatusOK {
		t.Fatalf("deadline request: %d", rec.Code)
	}
	id := rec.Header().Get("X-Anytime-Trace")

	list := get(t, s, "/debug/requests")
	if list.Code != http.StatusOK {
		t.Fatalf("list: %d", list.Code)
	}
	for _, want := range []string{"flight recorder:", id, "deadline-miss", "blur"} {
		if !strings.Contains(list.Body.String(), want) {
			t.Errorf("list missing %q:\n%s", want, list.Body.String())
		}
	}

	detail := get(t, s, "/debug/requests?id="+id)
	if detail.Code != http.StatusOK {
		t.Fatalf("detail: %d", detail.Code)
	}
	for _, want := range []string{
		"trace " + id, "route=blur", "category=deadline-miss", "status=200",
		"queue.grant", "pool.get pool=blur", "run.start",
		"publish buffer=conv2d", "deadline fired", "deliver",
		"pool.put pool=blur",
		"publish timeline", // the ASCII accuracy ramp
	} {
		if !strings.Contains(detail.Body.String(), want) {
			t.Errorf("detail missing %q:\n%s", want, detail.Body.String())
		}
	}

	if miss := get(t, s, "/debug/requests?id="+strings.Repeat("f", 32)); miss.Code != http.StatusNotFound {
		t.Errorf("unknown id: %d, want 404", miss.Code)
	}
}

// TestFlightRecorderSaturationRetention is the acceptance scenario: under
// saturation, the recorder keeps every shed, deadline-missed, and rejected
// request with its full span timeline, while unremarkable successes are
// sampled out but still counted — nothing is silently lost.
func TestFlightRecorderSaturationRetention(t *testing.T) {
	// One slot plus a small waiting room: requests granted while others wait
	// see depth>0 and shed; one more than the room holds is rejected.
	// Sampling is effectively off so retained successes can only be
	// slow-ranked.
	const room = 4
	s, err := New(64, 2, Config{
		Slots: 1, QueueLen: room, FlightSize: 64, TraceSample: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	requests := 0

	// Deadline miss first, while the queue is free: a nanosecond deadline
	// cannot be met.
	rec := get(t, s, "/blur?deadline=1ns")
	if rec.Code != http.StatusOK {
		t.Fatalf("deadline request: %d", rec.Code)
	}
	missedID := rec.Header().Get("X-Anytime-Trace")
	requests++

	// Saturate: park the only slot, fill the waiting room with long-deadline
	// requests (5s against a millisecond pipeline — the deadline never
	// fires, so when they eventually run, shed is the category that's left).
	if err := s.queue.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	var waiters sync.WaitGroup
	for i := 0; i < room; i++ {
		waiters.Add(1)
		go func() {
			defer waiters.Done()
			if rec := get(t, s, "/blur?deadline=5s"); rec.Code != http.StatusOK {
				t.Errorf("queued request: %d", rec.Code)
			}
		}()
	}
	requests += room
	for i := 0; s.queue.Depth() < room; i++ {
		if i > 5000 {
			t.Fatal("waiting room never filled")
		}
		time.Sleep(time.Millisecond)
	}

	// Overflow: with the room full, one more is turned away immediately.
	rej := get(t, s, "/blur")
	if rej.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated request: %d, want 503", rej.Code)
	}
	rejectedID := rej.Header().Get("X-Anytime-Trace")
	requests++

	s.queue.Release() // free the slot; the queued burst drains
	waiters.Wait()

	// Successes: with sampling at 1-in-2^20, an OK trace that doesn't rank
	// among the slowest is dropped-but-counted. Latency isn't monotone, so a
	// handful of requests is enough to see at least one sampled out.
	for i := 0; i < 50; i++ {
		if rec := get(t, s, "/blur"); rec.Code != http.StatusOK {
			t.Fatalf("ok request %d: %d", i, rec.Code)
		}
		requests++
		if debugRequestsJSON(t, s).Stats.SampledOut > 0 {
			break
		}
	}

	view := debugRequestsJSON(t, s)
	if view.Stats.SampledOut == 0 {
		t.Error("no OK trace was sampled out under effectively-off sampling")
	}
	// Conservation: every app request was either retained or counted out.
	if got := view.Stats.Recorded + view.Stats.SampledOut; got != uint64(requests) {
		t.Errorf("recorded %d + sampled out %d != %d requests issued",
			view.Stats.Recorded, view.Stats.SampledOut, requests)
	}

	byID := map[string][]string{}
	categories := map[string]int{}
	for _, tr := range view.Traces {
		categories[tr.Category]++
		kinds := make([]string, 0, len(tr.Events))
		for _, e := range tr.Events {
			kinds = append(kinds, e.Kind)
		}
		byID[tr.ID] = kinds
	}
	// Queued requests observe depths room-1 .. 0 as the slot cycles; those
	// above ShedStart (queueLen/4 = 1) shed, so room-2 of them must.
	if categories["shed"] < room-2 {
		t.Errorf("shed traces retained = %d, want >= %d (%d queued on one slot)",
			categories["shed"], room-2, room)
	}
	if categories["deadline-miss"] < 1 {
		t.Error("deadline-missed request not retained")
	}
	if categories["rejected"] < 1 {
		t.Error("rejected request not retained")
	}
	// The interesting traces carry their full span timelines.
	missedKinds := strings.Join(byID[missedID], " ")
	for _, want := range []string{"queue.grant", "pool.get", "run.start", "deadline", "deliver", "pool.put"} {
		if !strings.Contains(missedKinds, want) {
			t.Errorf("deadline-miss trace missing %s span: %v", want, byID[missedID])
		}
	}
	if !strings.Contains(strings.Join(byID[rejectedID], " "), "queue.reject") {
		t.Errorf("rejected trace missing queue.reject span: %v", byID[rejectedID])
	}

	// The retention decisions are visible as metrics, too.
	metrics := get(t, s, "/metrics").Body.String()
	if counterValue(t, metrics, `anytime_reqtrace_recorded_total{category="deadline-miss"}`) < 1 {
		t.Error("recorded counter missing the deadline-miss category")
	}
	if counterValue(t, metrics, `anytime_reqtrace_recorded_total{category="rejected"}`) < 1 {
		t.Error("recorded counter missing the rejected category")
	}
	if counterValue(t, metrics, `anytime_reqtrace_sampled_out_total`) < 1 {
		t.Error("sampled-out counter not exported")
	}
}
