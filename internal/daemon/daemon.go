// Package daemon is the anytimed server: the deadline-aware anytime
// serving runtime (internal/serve) wired to HTTP, with warm per-route
// pools, FIFO admission, load shedding, telemetry, request tracing, and —
// for fleet deployments behind cmd/anytimerouter — deadline-budget
// ingestion (serve.BudgetHeader) and a drain lifecycle (/drain flips
// /healthz to 503 so routers stop sending new work while in-flight
// requests finish against still-warm pools).
//
// cmd/anytimed is the thin binary wrapper; the package boundary exists so
// the cluster harness (internal/cluster) can spin real backends on
// httptest servers and test the fleet contract end-to-end in-process.
package daemon

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sync/atomic"
	"time"

	"anytime/internal/apps/conv2d"
	"anytime/internal/apps/histeq"
	"anytime/internal/apps/kmeans"
	"anytime/internal/core"
	"anytime/internal/metrics"
	"anytime/internal/pix"
	"anytime/internal/reqtrace"
	"anytime/internal/serve"
	"anytime/internal/snapcache"
	"anytime/internal/telemetry"
)

// Server holds the prepared inputs, precise references, and the serving
// runtime — per-route warm pools, the FIFO admission queue, and the load
// controller — so request handling only pays for the automaton run itself.
type Server struct {
	mux     *http.ServeMux
	workers int

	// queue is the FIFO admission queue bounding concurrently running
	// automata (replacing the old unfair channel semaphore): slots execute,
	// up to queueLen more wait in arrival order, the rest are rejected.
	queue *serve.Queue
	// ctrl scales deadlines down as the queue deepens; active only when
	// shed is true (-overload=shed).
	ctrl serve.Controller
	shed bool

	// reg is the process metrics registry; every request's pipeline
	// reports into it through hooks (shared across all automata) and
	// per-buffer observers. slotsInUse mirrors queue occupancy so the
	// concurrency bound is visible at /metrics.
	reg        *telemetry.Registry
	hooks      *core.Hooks
	serveHooks *serve.Hooks
	slotsInUse *telemetry.Gauge

	// recorder is the always-on flight recorder: every app request gets a
	// reqtrace.Trace, and completed traces land here (category-sampled) for
	// /debug/requests. started anchors anytimed_uptime_seconds.
	recorder *reqtrace.Recorder
	started  time.Time

	// draining, when set, turns /healthz into a 503 so a routing tier's
	// health checks stop sending new work here; requests that still arrive
	// are served normally (the anytime contract holds to the last request)
	// but carry X-Anytime-Draining so the caller can tell. Flipped by
	// POST/DELETE /drain.
	draining atomic.Bool

	// cache is the content-addressed snapshot cache (nil when disabled):
	// deadline requests whose input digest hits it seed their automaton
	// from the cached approximation and spend the whole budget refining.
	// cacheEpoch fingerprints the app configuration so entries from a
	// differently configured process can never seed a request. See
	// docs/CACHING.md.
	cache      *snapcache.Cache[*pix.Image]
	cacheEpoch uint64
	grayDigest string
	rgbDigest  string

	grayIn  *pix.Image
	rgbIn   *pix.Image
	blurRef *pix.Image
	eqRef   *pix.Image
	kmRef   *pix.Image

	blurPool *serve.Pool[*pix.Image]
	eqPool   *serve.Pool[*pix.Image]
	kmPool   *serve.Pool[*pix.Image]
}

// Config carries the operational knobs from main. Zero values take
// the documented defaults; queueLen -1 means "no waiting room" (reject as
// soon as every slot is busy).
type Config struct {
	Pprof       bool
	Slots       int     // concurrent automata (0 = 8)
	QueueLen    int     // bounded waiting room (0 = 32, -1 = none)
	Warm        int     // automata prebuilt per route pool (0 = 1)
	Overload    string  // "shed" or "reject" ("" = shed)
	ShedMin     float64 // floor of the shed factor (0 = 0.25)
	FlightSize  int     // completed traces retained for /debug/requests (0 = 256)
	TraceSample int     // retain 1 in N unremarkable OK traces (0 = 16)

	// CacheBytes bounds the snapshot cache payload (0 = 64 MiB, -1 =
	// caching disabled); CacheTTL bounds entry age (0 = 5m).
	CacheBytes int64
	CacheTTL   time.Duration
}

func (c *Config) normalize() error {
	if c.Slots == 0 {
		c.Slots = 8
	}
	switch c.QueueLen {
	case 0:
		c.QueueLen = 32
	case -1:
		c.QueueLen = 0
	}
	if c.Warm == 0 {
		c.Warm = 1
	}
	if c.Overload == "" {
		c.Overload = "shed"
	}
	if c.Overload != "shed" && c.Overload != "reject" {
		return fmt.Errorf("overload policy %q (want shed or reject)", c.Overload)
	}
	if c.ShedMin == 0 {
		c.ShedMin = 0.25
	}
	if c.FlightSize == 0 {
		c.FlightSize = 256
	}
	if c.TraceSample == 0 {
		c.TraceSample = 16
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.CacheTTL == 0 {
		c.CacheTTL = 5 * time.Minute
	}
	return nil
}

func New(size, workers int, cfg Config) (*Server, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	gray, err := pix.SyntheticGray(size, size, 1)
	if err != nil {
		return nil, err
	}
	rgb, err := pix.SyntheticRGB(size, size, 1)
	if err != nil {
		return nil, err
	}
	reg := telemetry.NewRegistry()
	serveHooks := telemetry.ServeHooks(reg)
	queue, err := serve.NewQueue(cfg.Slots, cfg.QueueLen, serveHooks)
	if err != nil {
		return nil, err
	}
	recorder, err := reqtrace.NewRecorder(reqtrace.RecorderConfig{
		Size:        cfg.FlightSize,
		SampleEvery: cfg.TraceSample,
		Hooks:       telemetry.ReqtraceHooks(reg),
	})
	if err != nil {
		return nil, err
	}
	s := &Server{
		mux:     http.NewServeMux(),
		workers: workers,
		queue:   queue,
		// The ramp starts at a quarter of the waiting room and bottoms out
		// when the room is full; with no waiting room the depth is always
		// zero and the controller never fires.
		ctrl: serve.Controller{
			ShedStart: max(1, cfg.QueueLen/4),
			ShedFull:  max(2, cfg.QueueLen),
			MinFactor: cfg.ShedMin,
			H:         serveHooks,
		},
		shed:       cfg.Overload == "shed",
		reg:        reg,
		hooks:      telemetry.PipelineHooks(reg),
		serveHooks: serveHooks,
		slotsInUse: reg.Gauge(metricSlotsInUse, nil),
		recorder:   recorder,
		started:    time.Now(),
		grayIn:     gray,
		rgbIn:      rgb,
	}
	if err := s.ctrl.Validate(); err != nil {
		return nil, err
	}
	if cfg.CacheBytes > 0 {
		s.cache, err = snapcache.New(snapcache.Config[*pix.Image]{
			MaxBytes: cfg.CacheBytes,
			TTL:      cfg.CacheTTL,
			// Pools publish SnapshotClone images (immutable forever), so the
			// cache can retain them without a defensive copy.
			SizeOf: func(im *pix.Image) int { return len(im.Pix) * 4 },
			Hooks:  telemetry.SnapcacheHooks(reg),
		})
		if err != nil {
			return nil, err
		}
	}
	s.cacheEpoch = cacheEpoch(size, workers)
	s.grayDigest = snapcache.DigestImage(gray)
	s.rgbDigest = snapcache.DigestImage(rgb)
	if s.blurRef, err = conv2d.Precise(gray, conv2d.Config{Workers: workers}); err != nil {
		return nil, err
	}
	if s.eqRef, err = histeq.Precise(gray, histeq.Config{Workers: workers}); err != nil {
		return nil, err
	}
	if s.kmRef, err = kmeans.Precise(rgb, kmeans.Config{Workers: workers}); err != nil {
		return nil, err
	}
	if s.blurPool, err = s.newPool("blur", cfg, func() (*core.Automaton, *core.Buffer[*pix.Image], error) {
		run, err := conv2d.New(s.grayIn, conv2d.Config{Workers: s.workers})
		if err != nil {
			return nil, nil, err
		}
		return run.Automaton, run.Out, nil
	}); err != nil {
		return nil, err
	}
	if s.eqPool, err = s.newPool("equalize", cfg, func() (*core.Automaton, *core.Buffer[*pix.Image], error) {
		run, err := histeq.New(s.grayIn, histeq.Config{Workers: s.workers})
		if err != nil {
			return nil, nil, err
		}
		return run.Automaton, run.Out, nil
	}); err != nil {
		return nil, err
	}
	if s.kmPool, err = s.newPool("cluster", cfg, func() (*core.Automaton, *core.Buffer[*pix.Image], error) {
		run, err := kmeans.New(s.rgbIn, kmeans.Config{Workers: s.workers})
		if err != nil {
			return nil, nil, err
		}
		return run.Automaton, run.Out, nil
	}); err != nil {
		return nil, err
	}
	s.handle("GET /blur", s.handleApp(s.blurPool, s.blurRef, s.grayIn, s.grayDigest))
	s.handle("GET /equalize", s.handleApp(s.eqPool, s.eqRef, s.grayIn, s.grayDigest))
	s.handle("GET /cluster", s.handleApp(s.kmPool, s.kmRef, s.rgbIn, s.rgbDigest))
	s.registerStreams()
	s.registerOps(cfg.Pprof)
	s.registerDebugRequests()
	s.handle("GET /", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "anytimed — hold a request for more precision")
		fmt.Fprintln(w, "  GET /blur?deadline=50ms  blur, best output published within 50ms")
		fmt.Fprintln(w, "  GET /blur?hold=50ms      blur, stopped after 50ms (may 504 if nothing landed)")
		fmt.Fprintln(w, "  GET /blur?accept=25      blur, stopped at 25 dB")
		fmt.Fprintln(w, "  GET /equalize?hold=10ms  histogram equalization")
		fmt.Fprintln(w, "  GET /cluster?hold=100ms  k-means clustering")
		fmt.Fprintln(w, "  GET /blur?deadline=50ms&input=key   cache key override (ring-affine repeats warm-start)")
		fmt.Fprintln(w, "  GET /blur/stream         live SSE: watch quality rise per version")
		fmt.Fprintln(w, "  GET /cluster/stream      live SSE for k-means")
		fmt.Fprintln(w, "  GET /metrics             Prometheus exposition (stages, buffers, pools, HTTP)")
		fmt.Fprintln(w, "  GET /debug/vars          expvar JSON view of the same registry")
		fmt.Fprintln(w, "  GET /debug/requests      flight recorder: recent request traces (?id= for detail)")
		fmt.Fprintln(w, "  GET /healthz             liveness probe")
		fmt.Fprintln(w, "no knob: precise output")
		fmt.Fprintln(w, "see docs/OPERATIONS.md for pool/queue sizing and the full metrics reference")
	})
	return s, nil
}

// newPool builds one route's warm pool. Telemetry attaches once per pooled
// instance, at construction: the lifecycle hooks and buffer observers
// survive Reset, so attaching per request would pile observers onto reused
// buffers. Buffer names recur across instances (every /blur automaton
// publishes to the same-named buffer), so the series accumulate per route.
//
// Request tracing attaches the same way, through a per-instance
// reqtrace.Slot: the publish observer and reset hook registered here are
// permanent, and report into whichever request's trace is bound to the slot
// at the moment they fire (no trace bound = one atomic load, nothing
// recorded).
func (s *Server) newPool(name string, cfg Config, build func() (*core.Automaton, *core.Buffer[*pix.Image], error)) (*serve.Pool[*pix.Image], error) {
	p, err := serve.NewPool(name, cfg.Slots, func() (serve.Entry[*pix.Image], error) {
		a, out, err := build()
		if err != nil {
			return serve.Entry[*pix.Image]{}, err
		}
		a.SetHooks(s.hooks)
		telemetry.ObserveBuffer(s.reg, out)
		slot := &reqtrace.Slot{}
		out.OnPublish(func(sn core.Snapshot[*pix.Image]) {
			slot.Publish(out.Name(), uint64(sn.Version), len(sn.Value.Pix), sn.Final)
		})
		a.OnReset(slot.OnReset)
		return serve.Entry[*pix.Image]{Automaton: a, Out: out, Slot: slot}, nil
	}, s.serveHooks)
	if err != nil {
		return nil, err
	}
	if err := p.Warm(cfg.Warm); err != nil {
		return nil, err
	}
	return p, nil
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// handleApp builds the common anytime-over-HTTP flow around a route's warm
// pool: admission, checkout, knob dispatch, delivery, check-in. Every
// request gets a reqtrace.Trace (its ID is echoed in X-Anytime-Trace);
// completed traces go to the flight recorder, which always keeps the
// interesting ones — see /debug/requests.
func (s *Server) handleApp(pool *serve.Pool[*pix.Image], ref, input *pix.Image, inputDigest string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, tr := reqtrace.New(r.Context(), pool.Name())
		r = r.WithContext(ctx)
		sw, wrapped := w.(*statusWriter)
		if !wrapped {
			sw = &statusWriter{ResponseWriter: w}
			w = sw
		}
		w.Header().Set("X-Anytime-Trace", tr.ID())
		// Sealing must come after check-in (the deferred Put below runs
		// first — defers are LIFO) so the reset and pool.put spans land
		// inside the trace; only a sealed trace is admissible to the
		// recorder.
		defer func() {
			tr.Finish(sw.status())
			s.recorder.Record(tr)
		}()

		k, err := parseKnobs(r)
		if err != nil {
			tr.Error(err.Error())
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		release, ok := s.admit(r)
		if !ok {
			http.Error(w, "server at capacity", http.StatusServiceUnavailable)
			return
		}
		defer release()
		entry, err := pool.Get(ctx)
		if err != nil {
			tr.Error(err.Error())
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		entry.Slot.Bind(tr)
		// Check-in is deferred until after the response body is written:
		// the next checkout may start republishing, and a snapshot's
		// backing is only guaranteed immutable until the tile ring cycles
		// around (the conformance immutability window). A failed check-in
		// drops the entry; the pool rebuilds on demand. Unbind follows Put
		// so the check-in's reset/pool.put events reach the trace.
		defer func() {
			_ = pool.Put(entry)
			entry.Slot.Unbind()
		}()

		start := time.Now()
		var snap core.Snapshot[*pix.Image]
		deadlineFired := false
		interrupted := false
		budgeted := false
		effective := k.deadline
		// The cache key: the route input's content digest — overridable
		// with ?input=, the same string the router's ring keys on
		// (cluster.RingKey), so repeats of a key land on the shard whose
		// cache holds the warm entry — plus the config epoch, so entries
		// computed under another configuration can never seed.
		cacheKey := snapcache.Key{App: pool.Name(), Digest: inputDigest, Epoch: s.cacheEpoch}
		if in := r.URL.Query().Get("input"); in != "" {
			cacheKey.Digest = in
		}
		cacheState := ""
		var seedVersion core.Version
		admitOut := false
		switch {
		case k.accept > 0:
			res, err := serve.RunUntil(ctx, entry, func(sn core.Snapshot[*pix.Image]) bool {
				db, err := metrics.SNR(ref.Pix, sn.Value.Pix)
				return err == nil && db >= k.accept
			}, s.serveHooks)
			if err != nil {
				httpRunError(w, err)
				return
			}
			snap, interrupted = res.Snapshot, res.Interrupted
		case k.deadline > 0:
			// Warm start: a cache hit for this content key installs the
			// cached approximation as the starting published state, so the
			// deadline budget below is spent purely on refinement. Only the
			// deadline contract seeds — the accept/hold knobs reason about
			// absolute version numbers and SNR trajectories from a cold
			// start, and the no-knob path runs to precise regardless.
			if s.cache != nil {
				cacheState = "miss"
				if ce, hit := serve.SeedFromCache(ctx, entry, s.cache, cacheKey); hit {
					cacheState = "hit"
					seedVersion = ce.Version
					s.reg.Counter(telemetry.MetricSnapcacheSeeds, telemetry.Labels{"mode": "warm"}).Inc()
				} else if prior := r.URL.Query().Get("prior"); prior != "" {
					// Delta start: the client names a sibling key (the
					// previous frame of a stream) whose entry we can reuse
					// after masking the tiles where the inputs differ.
					if mode, v := s.seedDelta(ctx, entry, pool.Name(), prior, input); mode != "" {
						cacheState = mode
						seedVersion = v
					}
				}
			}
			// A router-propagated budget caps the deadline before local
			// shedding: the fleet already spent part of this request's time
			// upstream (queue wait, network), and the backend must not run
			// longer than the budget it was handed.
			var base time.Duration
			base, budgeted = serve.ApplyBudget(k.deadline, k.budget, k.budgetSet)
			if budgeted {
				tr.Budget(base, k.budget <= 0)
			}
			effective = base
			if s.shed {
				effective = s.ctrl.Scale(ctx, base, s.queue.Depth())
			}
			admitOut = true
			res, err := serve.Run(ctx, entry, effective, s.serveHooks)
			if err != nil {
				httpRunError(w, err)
				return
			}
			snap, deadlineFired = res.Snapshot, res.Interrupted
			interrupted = res.Interrupted
		case k.hold > 0:
			// Legacy raw knob: stop after the hold and take whatever is
			// published — including nothing (504). The deadline knob is the
			// contract that never returns empty-handed. The knob bypasses
			// serve.Run, so the run spans are recorded here.
			cancel := core.StopAfter(entry.Automaton, k.hold)
			defer cancel()
			tr.RunStart(k.hold)
			if err := entry.Automaton.Start(ctx); err != nil {
				tr.Error(err.Error())
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			<-entry.Automaton.Done()
			tr.RunFinish(holdOutcome(entry.Automaton.Err()), time.Since(start))
			sn, ok := entry.Out.Latest()
			if !ok {
				tr.Error("no output produced within the hold window")
				http.Error(w, "no output produced within the hold window", http.StatusGatewayTimeout)
				return
			}
			snap, interrupted = sn, !sn.Final
		default:
			admitOut = true
			res, err := serve.Run(ctx, entry, 0, s.serveHooks)
			if err != nil {
				httpRunError(w, err)
				return
			}
			snap = res.Snapshot
		}

		db, err := metrics.SNR(ref.Pix, snap.Value.Pix)
		if err != nil {
			tr.Error(err.Error())
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		snrDB := db
		if math.IsInf(snrDB, 0) || math.IsNaN(snrDB) {
			snrDB = 0 // precise deliveries have no finite SNR; record "unmeasured"
		}
		tr.Deliver(uint64(snap.Version), snap.Final, interrupted, snrDB, time.Since(start))
		s.recordDelivered(db, snap.Final)
		var buf bytes.Buffer
		if err := pix.EncodePNM(&buf, snap.Value); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		ct := "image/x-portable-graymap"
		if snap.Value.C == 3 {
			ct = "image/x-portable-pixmap"
		}
		w.Header().Set("Content-Type", ct)
		w.Header().Set("X-Anytime-Version", fmt.Sprint(snap.Version))
		w.Header().Set("X-Anytime-Final", fmt.Sprint(snap.Final))
		w.Header().Set("X-Anytime-SNR-dB", metrics.FormatDB(db))
		w.Header().Set("X-Anytime-Elapsed", time.Since(start).String())
		if k.deadline > 0 {
			w.Header().Set("X-Anytime-Deadline", k.deadline.String())
			w.Header().Set("X-Anytime-Effective-Deadline", effective.String())
			w.Header().Set("X-Anytime-Deadline-Fired", fmt.Sprint(deadlineFired))
			// Echoed only when the budget actually capped the contract: a
			// budget looser than the deadline never participated, and
			// echoing it would misreport what governed the request.
			if budgeted {
				w.Header().Set(serve.BudgetHeader, serve.FormatBudget(k.budget))
			}
		}
		if cacheState != "" {
			w.Header().Set("X-Anytime-Cache", cacheState)
			if seedVersion > 0 {
				w.Header().Set("X-Anytime-Seed-Version", fmt.Sprint(seedVersion))
			}
		}
		if s.draining.Load() {
			w.Header().Set("X-Anytime-Draining", "true")
		}
		if _, err := w.Write(buf.Bytes()); err != nil {
			return
		}
		// Admission happens after the response bytes are written — off the
		// request's critical path. The cache's own rules keep it sound: a
		// version not newer than the stored one (including a re-admission of
		// the very entry this run was seeded from) is refused.
		if admitOut {
			serve.Admit(s.cache, cacheKey, serve.Result[*pix.Image]{Snapshot: snap}, snrDB)
		}
	}
}

// holdOutcome folds a held automaton's terminal error into the outcome
// vocabulary the run.finish span uses (precise | stopped | failed).
func holdOutcome(err error) string {
	switch {
	case err == nil:
		return "precise"
	case errors.Is(err, core.ErrStopped):
		return "stopped"
	default:
		return "failed"
	}
}

// httpRunError maps a serve.Run/RunUntil failure to a response: a gone
// client gets the (unseen) 503, anything else is a pipeline failure.
func httpRunError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.Canceled) {
		http.Error(w, "client went away", http.StatusServiceUnavailable)
		return
	}
	http.Error(w, err.Error(), http.StatusInternalServerError)
}

// recordDelivered records the delivered-accuracy metric: approximate
// deliveries observe their SNR (in millidecibels — the registry is
// integer-valued), precise ones only count (their SNR is +Inf).
func (s *Server) recordDelivered(db float64, final bool) {
	if final {
		return
	}
	if db < 0 {
		db = 0
	}
	s.reg.Histogram(metricDeliveredSNR, nil).Observe(uint64(db * 1000))
}

// admit takes an execution slot through the FIFO queue, giving up when the
// client goes away or the waiting room is full. The slotsInUse gauge
// mirrors queue occupancy so the bound is observable at /metrics.
func (s *Server) admit(r *http.Request) (release func(), ok bool) {
	if err := s.queue.Acquire(r.Context()); err != nil {
		s.reg.Counter(metricSlotsRejected, nil).Inc()
		return nil, false
	}
	s.slotsInUse.Inc()
	return func() {
		s.slotsInUse.Dec()
		s.queue.Release()
	}, true
}
