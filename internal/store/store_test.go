package store

import (
	"math"
	"testing"
)

func seq(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i * 3)
	}
	return out
}

func TestNewArrayValidation(t *testing.T) {
	if _, err := NewArray(nil, 0, 0, 1); err == nil {
		t.Error("dataBits=0 accepted")
	}
	if _, err := NewArray(nil, 33, 0, 1); err == nil {
		t.Error("dataBits=33 accepted")
	}
	if _, err := NewArray(nil, 8, -0.1, 1); err == nil {
		t.Error("negative prob accepted")
	}
	if _, err := NewArray(nil, 8, 1.1, 1); err == nil {
		t.Error("prob>1 accepted")
	}
	if _, err := NewArray(nil, 8, math.NaN(), 1); err == nil {
		t.Error("NaN prob accepted")
	}
}

func TestZeroProbabilityNeverFlips(t *testing.T) {
	init := seq(1000)
	a, err := NewArray(init, 8, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		for i := range init {
			if got := a.Read(i); got != init[i] {
				t.Fatalf("p=0 read[%d] = %d, want %d", i, got, init[i])
			}
		}
	}
	if a.Flips() != 0 {
		t.Errorf("p=0 injected %d flips", a.Flips())
	}
	if a.Reads() != 5000 {
		t.Errorf("read count = %d", a.Reads())
	}
}

func TestProbabilityOneFlipsEveryBit(t *testing.T) {
	a, err := NewArray([]int32{0}, 8, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Read(0); got != 0xFF {
		t.Errorf("p=1 read of 0 = %#x, want 0xFF (all 8 stored bits flipped)", got)
	}
	// Data-destructive: a second read flips them all back.
	if got := a.Read(0); got != 0 {
		t.Errorf("second p=1 read = %#x, want 0", got)
	}
}

func TestFlipRatePlausible(t *testing.T) {
	const n = 1 << 16
	const p = 1e-3
	a, err := NewArray(make([]int32, n), 32, p, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		a.Read(i)
	}
	bitsRead := float64(n * 32)
	want := bitsRead * p
	got := float64(a.Flips())
	if got < want/2 || got > want*2 {
		t.Errorf("flips = %v, expected about %v", got, want)
	}
}

func TestDataDestructivePersistence(t *testing.T) {
	init := seq(4096)
	a, err := NewArray(init, 8, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range init {
		a.Read(i)
	}
	if a.Flips() == 0 {
		t.Fatal("expected some flips at p=0.05")
	}
	// Raising accuracy (prob -> 0) must NOT repair the corruption.
	if err := a.SetProb(0); err != nil {
		t.Fatal(err)
	}
	corrupted := 0
	for i := range init {
		if a.Read(i) != init[i] {
			corrupted++
		}
	}
	if corrupted == 0 {
		t.Error("corruption vanished after raising voltage; storage must be data-destructive")
	}
}

func TestFlushRestoresPrecision(t *testing.T) {
	init := seq(4096)
	a, err := NewArray(init, 8, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range init {
		a.Read(i)
	}
	if err := a.Flush(init); err != nil {
		t.Fatal(err)
	}
	if err := a.SetProb(0); err != nil {
		t.Fatal(err)
	}
	for i := range init {
		if got := a.Read(i); got != init[i] {
			t.Fatalf("post-flush read[%d] = %d, want %d", i, got, init[i])
		}
	}
	if err := a.Flush(seq(5)); err == nil {
		t.Error("length-mismatched flush accepted")
	}
}

func TestReadCleanDoesNotConsumeRandomness(t *testing.T) {
	mk := func() *Array {
		a, err := NewArray(seq(256), 8, 0.01, 5)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	a, b := mk(), mk()
	for i := 0; i < 256; i++ {
		b.ReadClean(i % 256)
	}
	for i := 0; i < 256; i++ {
		if a.Read(i) != b.Read(i) {
			t.Fatal("ReadClean perturbed the fault sequence")
		}
	}
}

func TestDeterministicSeeds(t *testing.T) {
	run := func(seed uint64) []int32 {
		a, err := NewArray(seq(512), 8, 0.02, seed)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]int32, 512)
		for i := range out {
			out[i] = a.Read(i)
		}
		return out
	}
	a1, a2, b := run(9), run(9), run(10)
	same := true
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("same seed produced different fault sequences")
		}
		if a1[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical fault sequences")
	}
}

func TestSetProbValidation(t *testing.T) {
	a, _ := NewArray(seq(4), 8, 0, 1)
	if err := a.SetProb(2); err == nil {
		t.Error("SetProb(2) accepted")
	}
	if err := a.SetProb(math.NaN()); err == nil {
		t.Error("SetProb(NaN) accepted")
	}
}

func TestWriteThenRead(t *testing.T) {
	a, _ := NewArray(make([]int32, 4), 8, 0, 1)
	a.Write(2, 77)
	if a.Read(2) != 77 {
		t.Error("Write not visible to Read")
	}
	if a.Len() != 4 {
		t.Errorf("Len = %d", a.Len())
	}
}

func TestDefaultLevelsLadder(t *testing.T) {
	if len(DefaultLevels) < 2 {
		t.Fatal("need at least two levels")
	}
	last := DefaultLevels[len(DefaultLevels)-1]
	if last.UpsetProb != 0 {
		t.Error("final level must be precise (paper Property 1)")
	}
	for i := 1; i < len(DefaultLevels); i++ {
		if DefaultLevels[i].UpsetProb > DefaultLevels[i-1].UpsetProb {
			t.Error("levels must have non-increasing upset probability")
		}
		if DefaultLevels[i].Voltage < DefaultLevels[i-1].Voltage {
			t.Error("levels must have non-decreasing voltage")
		}
	}
}

// TestUpsetScalesWithBitsRead captures the paper's Figure 20 observation
// that error accumulates with sample size: reading twice as many words
// should inject roughly twice as many upsets.
func TestUpsetScalesWithBitsRead(t *testing.T) {
	const p = 5e-4
	run := func(words int) uint64 {
		a, err := NewArray(make([]int32, words), 32, p, 1234)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < words; i++ {
			a.Read(i)
		}
		return a.Flips()
	}
	small := run(1 << 14)
	large := run(1 << 15)
	ratio := float64(large) / float64(small)
	if ratio < 1.5 || ratio > 2.5 {
		t.Errorf("flip ratio for 2x reads = %v, want about 2", ratio)
	}
}
