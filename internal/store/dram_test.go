package store

import (
	"testing"
	"time"
)

func TestNewDecayArrayValidation(t *testing.T) {
	if _, err := NewDecayArray(nil, 0, time.Second, 1); err == nil {
		t.Error("dataBits=0 accepted")
	}
	if _, err := NewDecayArray(nil, 33, time.Second, 1); err == nil {
		t.Error("dataBits=33 accepted")
	}
	if _, err := NewDecayArray(nil, 8, 0, 1); err == nil {
		t.Error("zero retention scale accepted")
	}
	if _, err := NewDecayArray(nil, 8, -time.Second, 1); err == nil {
		t.Error("negative retention scale accepted")
	}
}

func TestDecayNoTimeNoFlips(t *testing.T) {
	init := seq(1000)
	d, err := NewDecayArray(init, 8, time.Second, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range init {
		if d.Read(i) != init[i] {
			t.Fatalf("read[%d] changed without time advancing", i)
		}
	}
	if d.Flips() != 0 {
		t.Errorf("flips = %d", d.Flips())
	}
}

func TestDecayAdvanceValidation(t *testing.T) {
	d, _ := NewDecayArray(seq(4), 8, time.Second, 1)
	if err := d.Advance(-time.Second); err == nil {
		t.Error("negative advance accepted")
	}
}

func TestDecayFlipsAccumulateWithTime(t *testing.T) {
	init := seq(1 << 14)
	d, err := NewDecayArray(init, 8, time.Second, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Advance(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	d.Read(0)
	short := d.Flips()
	if short == 0 {
		t.Fatal("no decay after 10ms at 1s retention over 128Ki bits")
	}
	if err := d.Advance(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	d.Read(0)
	long := d.Flips()
	if long <= short*2 {
		t.Errorf("decay did not accelerate with retention time: %d then %d", short, long)
	}
	if d.SinceRefresh() != 510*time.Millisecond {
		t.Errorf("SinceRefresh = %v", d.SinceRefresh())
	}
}

func TestDecayRefreshRestoresPrecision(t *testing.T) {
	init := seq(1 << 12)
	d, err := NewDecayArray(init, 8, 100*time.Millisecond, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Advance(time.Second); err != nil {
		t.Fatal(err)
	}
	corrupted := 0
	for i := range init {
		if d.Read(i) != init[i] {
			corrupted++
		}
	}
	if corrupted == 0 {
		t.Fatal("no corruption after 10 retention constants")
	}
	d.Refresh()
	for i := range init {
		if d.Read(i) != init[i] {
			t.Fatalf("read[%d] wrong after refresh", i)
		}
	}
	if d.SinceRefresh() != 0 {
		t.Error("refresh did not reset the clock")
	}
}

func TestDecayWriteRefreshesCell(t *testing.T) {
	d, err := NewDecayArray(seq(16), 8, time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	d.Write(3, 99)
	if d.Read(3) != 99 {
		t.Error("write not visible")
	}
	d.Refresh()
	if d.Read(3) != 99 {
		t.Error("refresh lost the written value")
	}
	if d.Len() != 16 {
		t.Errorf("Len = %d", d.Len())
	}
}

// TestDecayNoDoubleCounting: advancing in two half-intervals must inject a
// statistically similar number of flips as one full interval, not double
// (a regression test for decay re-application).
func TestDecayNoDoubleCounting(t *testing.T) {
	run := func(split bool) uint64 {
		d, err := NewDecayArray(seq(1<<15), 8, time.Second, 11)
		if err != nil {
			t.Fatal(err)
		}
		if split {
			for k := 0; k < 10; k++ {
				if err := d.Advance(10 * time.Millisecond); err != nil {
					t.Fatal(err)
				}
				d.Read(0) // materialize each slice
			}
		} else {
			if err := d.Advance(100 * time.Millisecond); err != nil {
				t.Fatal(err)
			}
			d.Read(0)
		}
		return d.Flips()
	}
	whole := run(false)
	sliced := run(true)
	if whole == 0 || sliced == 0 {
		t.Fatalf("degenerate flip counts: %d %d", whole, sliced)
	}
	ratio := float64(sliced) / float64(whole)
	if ratio > 1.5 || ratio < 0.6 {
		t.Errorf("sliced/whole flip ratio %v; decay intervals double-counted?", ratio)
	}
}

func TestDecayDeterministicSeeds(t *testing.T) {
	run := func(seed uint64) []int32 {
		d, err := NewDecayArray(seq(512), 8, 50*time.Millisecond, seed)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Advance(100 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		out := make([]int32, 512)
		for i := range out {
			out[i] = d.Read(i)
		}
		return out
	}
	a, b := run(4), run(4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
}
