package store

import (
	"fmt"
	"math"
	"time"
)

// DecayArray models low-refresh DRAM (the paper cites Flikker's
// critical-data partitioning, §III-B1): instead of read-triggered upsets,
// bits decay over *retention time*. Lengthening the refresh interval saves
// refresh power but lets each bit flip with a probability that grows with
// the time since its last refresh.
//
// The model is virtual-time driven for determinism: the caller advances the
// clock explicitly (Advance), and each Refresh restores the precise
// contents, exactly as a DRAM refresh rewrites cells before they decay.
// The per-bit flip probability over an interval d is
// 1 - exp(-d/RetentionScale), with RetentionScale the characteristic
// retention constant of the weakened cells.
type DecayArray struct {
	data     []int32
	shadow   []int32 // last refreshed (precise) contents
	dataBits uint
	scale    time.Duration
	rng      xorshift64

	sinceRefresh time.Duration
	pending      time.Duration // advanced time not yet materialized as decay
	flips        uint64
}

// NewDecayArray returns a decaying array initialized (and refreshed) with
// init. dataBits (1..32) is the stored word width; retentionScale is the
// characteristic decay constant (larger = more reliable cells).
func NewDecayArray(init []int32, dataBits uint, retentionScale time.Duration, seed uint64) (*DecayArray, error) {
	if dataBits < 1 || dataBits > 32 {
		return nil, fmt.Errorf("store: dataBits %d out of range [1,32]", dataBits)
	}
	if retentionScale <= 0 {
		return nil, fmt.Errorf("store: retention scale %v must be positive", retentionScale)
	}
	return &DecayArray{
		data:     append([]int32(nil), init...),
		shadow:   append([]int32(nil), init...),
		dataBits: dataBits,
		scale:    retentionScale,
		rng:      newXorshift64(seed),
	}, nil
}

// Len reports the number of words stored.
func (d *DecayArray) Len() int { return len(d.data) }

// Flips reports the total bit decays injected so far.
func (d *DecayArray) Flips() uint64 { return d.flips }

// SinceRefresh reports the virtual time elapsed since the last refresh.
func (d *DecayArray) SinceRefresh() time.Duration { return d.sinceRefresh }

// Advance moves the virtual clock forward. Decay for the accumulated
// interval is materialized lazily at the next Read.
func (d *DecayArray) Advance(dt time.Duration) error {
	if dt < 0 {
		return fmt.Errorf("store: negative time advance %v", dt)
	}
	if dt > 0 {
		d.sinceRefresh += dt
		d.pending += dt
	}
	return nil
}

// Refresh rewrites every cell from the shadow copy and resets the decay
// clock — one DRAM refresh cycle.
func (d *DecayArray) Refresh() {
	copy(d.data, d.shadow)
	d.sinceRefresh = 0
	d.pending = 0
}

// Write stores v reliably (writes refresh the written cell).
func (d *DecayArray) Write(i int, v int32) {
	d.data[i] = v
	d.shadow[i] = v
}

// Read returns word i after materializing any pending decay.
func (d *DecayArray) Read(i int) int32 {
	d.materialize()
	return d.data[i]
}

// materialize applies the decay accumulated since the last materialization
// to the whole array (cells decay whether or not they are read). Each
// materialized interval flips bits independently; intervals compose by XOR.
func (d *DecayArray) materialize() {
	if d.pending <= 0 || len(d.data) == 0 {
		return
	}
	p := 1 - math.Exp(-float64(d.pending)/float64(d.scale))
	d.pending = 0
	if p <= 0 {
		return
	}
	totalBits := uint64(len(d.data)) * uint64(d.dataBits)
	// Geometric skipping over the bit space, as in Array.
	pos := d.geometric(p)
	for pos < totalBits {
		word := int(pos / uint64(d.dataBits))
		bit := pos % uint64(d.dataBits)
		d.data[word] ^= 1 << bit
		d.flips++
		pos += 1 + d.geometric(p)
	}
}

func (d *DecayArray) geometric(p float64) uint64 {
	if p >= 1 {
		return 0
	}
	u := d.rng.float64()
	for u == 0 {
		u = d.rng.float64()
	}
	g := math.Log(u) / math.Log1p(-p)
	if g < 0 {
		return 0
	}
	if g > 1e18 {
		return uint64(1e18)
	}
	return uint64(g)
}
