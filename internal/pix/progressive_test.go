package pix

import (
	"testing"
	"testing/quick"

	"anytime/internal/perm"
)

// holdFillReference is the direct per-pixel formulation of HoldFill's
// contract: each unfilled pixel takes the value of its nearest filled
// ancestor in the block hierarchy (clearing low coordinate bits level by
// level). The production implementation is an O(n) coarse-to-fine
// propagation; this reference pins its semantics.
func holdFillReference(src *Image, filled []bool) *Image {
	out := src.Clone()
	maxLevel := uint(0)
	for dim := max(src.W, src.H) - 1; dim > 0; dim >>= 1 {
		maxLevel++
	}
	for y := 0; y < src.H; y++ {
		for x := 0; x < src.W; x++ {
			if filled[y*src.W+x] {
				continue
			}
			for lvl := uint(1); lvl <= maxLevel; lvl++ {
				ax := x >> lvl << lvl
				ay := y >> lvl << lvl
				if filled[ay*src.W+ax] {
					for c := 0; c < src.C; c++ {
						out.Set(x, y, c, src.At(ax, ay, c))
					}
					break
				}
			}
		}
	}
	return out
}

func TestHoldFillMaskLengthValidation(t *testing.T) {
	im := MustNew(4, 4, 1)
	if _, err := HoldFill(im, make([]bool, 3)); err == nil {
		t.Error("short mask accepted")
	}
}

func TestHoldFillAllFilledIsClone(t *testing.T) {
	im, err := SyntheticGray(16, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	filled := make([]bool, 16*12)
	for i := range filled {
		filled[i] = true
	}
	got, err := HoldFill(im, filled)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(im) {
		t.Error("fully filled HoldFill changed pixels")
	}
	got.SetGray(0, 0, 99)
	if im.Gray(0, 0) == 99 {
		t.Error("HoldFill aliases the source")
	}
}

func TestHoldFillNothingFilledStaysZero(t *testing.T) {
	im := MustNew(8, 8, 1)
	im.Fill(50)
	got, err := HoldFill(im, make([]bool, 64))
	if err != nil {
		t.Fatal(err)
	}
	// No ancestor is filled, so the output equals the (unmodified) source.
	if !got.Equal(im) {
		t.Error("unfilled HoldFill invented values")
	}
}

func TestHoldFillRootOnly(t *testing.T) {
	im := MustNew(8, 8, 1)
	im.SetGray(0, 0, 7)
	filled := make([]bool, 64)
	filled[0] = true
	got, err := HoldFill(im, filled)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range got.Pix {
		if v != 7 {
			t.Fatalf("root-only fill produced %d", v)
		}
	}
}

// TestHoldFillTreePrefixGivesBlocks: with a 2D-tree-order prefix filled,
// the result must be a block-replicated low-resolution image.
func TestHoldFillTreePrefixGivesBlocks(t *testing.T) {
	const side = 16
	im, err := SyntheticGray(side, side, 8)
	if err != nil {
		t.Fatal(err)
	}
	ord, err := perm.Tree2D(side, side)
	if err != nil {
		t.Fatal(err)
	}
	const prefix = 16 // completes the 4x4 grid: blocks of 4x4
	filled := make([]bool, side*side)
	for i := 0; i < prefix; i++ {
		filled[ord.At(i)] = true
	}
	got, err := HoldFill(im, filled)
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			want := im.Gray(x/4*4, y/4*4)
			if got.Gray(x, y) != want {
				t.Fatalf("(%d,%d) = %d, want block value %d", x, y, got.Gray(x, y), want)
			}
		}
	}
}

// TestHoldFillMatchesReference: the O(n) propagation must agree with the
// per-pixel ancestor-probing reference on arbitrary geometries, channel
// counts and fill masks.
func TestHoldFillMatchesReference(t *testing.T) {
	f := func(rawW, rawH uint8, rgb bool, mask []byte) bool {
		w := int(rawW)%24 + 1
		h := int(rawH)%24 + 1
		c := 1
		if rgb {
			c = 3
		}
		im := MustNew(w, h, c)
		for i := range im.Pix {
			im.Pix[i] = int32(i*13%251) + 1
		}
		filled := make([]bool, w*h)
		for i := range filled {
			if len(mask) > 0 {
				filled[i] = mask[i%len(mask)]&1 == 1
			}
		}
		got, err := HoldFill(im, filled)
		if err != nil {
			return false
		}
		return got.Equal(holdFillReference(im, filled))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestHoldFillMatchesReferenceOnTreePrefixes checks agreement on the masks
// that actually occur in the applications: prefixes of the tree order.
func TestHoldFillMatchesReferenceOnTreePrefixes(t *testing.T) {
	for _, dims := range [][2]int{{16, 16}, {13, 7}, {1, 9}, {32, 8}} {
		w, h := dims[0], dims[1]
		im := MustNew(w, h, 1)
		for i := range im.Pix {
			im.Pix[i] = int32(i)
		}
		ord, err := perm.Tree2D(h, w)
		if err != nil {
			t.Fatal(err)
		}
		filled := make([]bool, w*h)
		for i := 0; i < ord.Len(); i++ {
			filled[ord.At(i)] = true
			got, err := HoldFill(im, filled)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(holdFillReference(im, filled)) {
				t.Fatalf("%dx%d: mismatch after %d filled", w, h, i+1)
			}
		}
	}
}

func BenchmarkHoldFillQuarterFilled(b *testing.B) {
	const side = 512
	im, err := SyntheticGray(side, side, 2)
	if err != nil {
		b.Fatal(err)
	}
	ord, err := perm.Tree2D(side, side)
	if err != nil {
		b.Fatal(err)
	}
	filled := make([]bool, side*side)
	for i := 0; i < side*side/4; i++ {
		filled[ord.At(i)] = true
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := HoldFill(im, filled); err != nil {
			b.Fatal(err)
		}
	}
}
