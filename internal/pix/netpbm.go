package pix

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// Netpbm I/O: binary PGM (P5) for single-channel images and binary PPM (P6)
// for three-channel images, 8 bits per sample. Values outside [0, 255] are
// clamped on encode so intermediate fixed-point images can be inspected
// directly.

// EncodePNM writes im as binary PGM (1 channel) or PPM (3 channels).
func EncodePNM(w io.Writer, im *Image) error {
	var magic string
	switch im.C {
	case 1:
		magic = "P5"
	case 3:
		magic = "P6"
	default:
		return fmt.Errorf("pix: cannot encode %d-channel image as PNM", im.C)
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%s\n%d %d\n255\n", magic, im.W, im.H); err != nil {
		return err
	}
	for _, v := range im.Pix {
		if err := bw.WriteByte(byte(clamp8(v))); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodePNM reads a binary PGM (P5) or PPM (P6) image with maxval <= 255.
func DecodePNM(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	magic, err := pnmToken(br)
	if err != nil {
		return nil, err
	}
	var channels int
	switch magic {
	case "P5":
		channels = 1
	case "P6":
		channels = 3
	default:
		return nil, fmt.Errorf("pix: unsupported PNM magic %q", magic)
	}
	w, err := pnmInt(br)
	if err != nil {
		return nil, err
	}
	h, err := pnmInt(br)
	if err != nil {
		return nil, err
	}
	maxval, err := pnmInt(br)
	if err != nil {
		return nil, err
	}
	if maxval <= 0 || maxval > 255 {
		return nil, fmt.Errorf("pix: unsupported PNM maxval %d", maxval)
	}
	im, err := New(w, h, channels)
	if err != nil {
		return nil, err
	}
	raw := make([]byte, len(im.Pix))
	if _, err := io.ReadFull(br, raw); err != nil {
		return nil, fmt.Errorf("pix: short PNM pixel data: %w", err)
	}
	for i, b := range raw {
		im.Pix[i] = int32(b)
	}
	return im, nil
}

// WritePNMFile encodes im to the named file.
func WritePNMFile(path string, im *Image) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := EncodePNM(f, im); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadPNMFile decodes the named PGM/PPM file.
func ReadPNMFile(path string) (*Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodePNM(f)
}

// pnmToken reads the next whitespace-delimited token, skipping '#' comments.
func pnmToken(br *bufio.Reader) (string, error) {
	var tok []byte
	for {
		b, err := br.ReadByte()
		if err != nil {
			if err == io.EOF && len(tok) > 0 {
				return string(tok), nil
			}
			return "", err
		}
		switch {
		case b == '#':
			if _, err := br.ReadString('\n'); err != nil && err != io.EOF {
				return "", err
			}
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			if len(tok) > 0 {
				return string(tok), nil
			}
		default:
			tok = append(tok, b)
		}
	}
}

func pnmInt(br *bufio.Reader) (int, error) {
	tok, err := pnmToken(br)
	if err != nil {
		return 0, err
	}
	var v int
	if _, err := fmt.Sscanf(tok, "%d", &v); err != nil {
		return 0, fmt.Errorf("pix: bad PNM header token %q", tok)
	}
	if v < 0 {
		return 0, fmt.Errorf("pix: negative PNM header value %d", v)
	}
	return v, nil
}
