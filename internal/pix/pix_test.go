package pix

import (
	"bytes"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestNewGeometryValidation(t *testing.T) {
	if _, err := New(-1, 4, 1); err == nil {
		t.Error("negative width accepted")
	}
	if _, err := New(4, -1, 1); err == nil {
		t.Error("negative height accepted")
	}
	if _, err := New(4, 4, 0); err == nil {
		t.Error("zero channels accepted")
	}
	im, err := New(0, 0, 3)
	if err != nil {
		t.Fatalf("0x0 image rejected: %v", err)
	}
	if im.Pixels() != 0 || len(im.Pix) != 0 {
		t.Error("0x0 image not empty")
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	im := MustNew(4, 3, 3)
	im.Set(2, 1, 1, 42)
	if im.At(2, 1, 1) != 42 {
		t.Error("At/Set mismatch")
	}
	g := MustNew(4, 3, 1)
	g.SetGray(3, 2, -7)
	if g.Gray(3, 2) != -7 {
		t.Error("Gray/SetGray mismatch")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := MustNew(2, 2, 1)
	a.SetGray(0, 0, 5)
	b := a.Clone()
	b.SetGray(0, 0, 9)
	if a.Gray(0, 0) != 5 {
		t.Error("Clone shares storage with original")
	}
	if !a.Equal(a.Clone()) {
		t.Error("Clone not equal to original")
	}
}

func TestCloneInto(t *testing.T) {
	a := MustNew(2, 2, 1)
	a.Fill(3)
	dst := MustNew(2, 2, 1)
	got := a.CloneInto(dst)
	if got != dst {
		t.Error("CloneInto allocated despite matching geometry")
	}
	if !got.Equal(a) {
		t.Error("CloneInto copied wrong data")
	}
	mismatched := MustNew(3, 2, 1)
	got = a.CloneInto(mismatched)
	if got == mismatched {
		t.Error("CloneInto reused mismatched destination")
	}
	if got := a.CloneInto(nil); !got.Equal(a) {
		t.Error("CloneInto(nil) wrong")
	}
}

func TestEqual(t *testing.T) {
	a := MustNew(2, 2, 1)
	if a.Equal(nil) {
		t.Error("Equal(nil) true")
	}
	if a.Equal(MustNew(2, 2, 3)) {
		t.Error("different channels compare equal")
	}
	b := MustNew(2, 2, 1)
	b.SetGray(1, 1, 1)
	if a.Equal(b) {
		t.Error("different pixels compare equal")
	}
}

func TestClamp8(t *testing.T) {
	im := MustNew(3, 1, 1)
	im.Pix[0], im.Pix[1], im.Pix[2] = -5, 128, 999
	im.Clamp8()
	if im.Pix[0] != 0 || im.Pix[1] != 128 || im.Pix[2] != 255 {
		t.Errorf("Clamp8 = %v", im.Pix)
	}
	if Clamp8Value(-1) != 0 || Clamp8Value(256) != 255 || Clamp8Value(7) != 7 {
		t.Error("Clamp8Value wrong")
	}
}

func TestInBounds(t *testing.T) {
	im := MustNew(4, 3, 1)
	cases := []struct {
		x, y int
		want bool
	}{{0, 0, true}, {3, 2, true}, {4, 0, false}, {0, 3, false}, {-1, 0, false}}
	for _, c := range cases {
		if im.InBounds(c.x, c.y) != c.want {
			t.Errorf("InBounds(%d,%d) != %v", c.x, c.y, c.want)
		}
	}
}

func TestSyntheticGrayDeterministicAndBounded(t *testing.T) {
	a, err := SyntheticGray(64, 48, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := SyntheticGray(64, 48, 11)
	if !a.Equal(b) {
		t.Error("SyntheticGray not deterministic")
	}
	c, _ := SyntheticGray(64, 48, 12)
	if a.Equal(c) {
		t.Error("SyntheticGray ignores seed")
	}
	for i, v := range a.Pix {
		if v < 0 || v > 255 {
			t.Fatalf("pixel %d out of 8-bit range: %d", i, v)
		}
	}
}

func TestSyntheticGrayHasContrast(t *testing.T) {
	im, err := SyntheticGray(128, 128, 3)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := im.Pix[0], im.Pix[0]
	for _, v := range im.Pix {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi-lo < 100 {
		t.Errorf("synthetic image nearly flat: range [%d,%d]", lo, hi)
	}
}

func TestSyntheticRGBDeterministicAndBounded(t *testing.T) {
	a, err := SyntheticRGB(48, 32, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := SyntheticRGB(48, 32, 5)
	if !a.Equal(b) {
		t.Error("SyntheticRGB not deterministic")
	}
	for _, v := range a.Pix {
		if v < 0 || v > 255 {
			t.Fatalf("RGB pixel out of range: %d", v)
		}
	}
}

func TestSyntheticEmpty(t *testing.T) {
	if _, err := SyntheticGray(0, 16, 1); err != nil {
		t.Errorf("zero-width synthetic rejected: %v", err)
	}
	if _, err := SyntheticRGB(16, 0, 1); err != nil {
		t.Errorf("zero-height synthetic rejected: %v", err)
	}
}

func TestBayerGRBGPattern(t *testing.T) {
	rgb := MustNew(4, 4, 3)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			rgb.Set(x, y, 0, 10) // R
			rgb.Set(x, y, 1, 20) // G
			rgb.Set(x, y, 2, 30) // B
		}
	}
	m, err := BayerGRBG(rgb)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int32{
		{20, 10, 20, 10},
		{30, 20, 30, 20},
		{20, 10, 20, 10},
		{30, 20, 30, 20},
	}
	for y := range want {
		for x := range want[y] {
			if m.Gray(x, y) != want[y][x] {
				t.Errorf("mosaic(%d,%d) = %d, want %d", x, y, m.Gray(x, y), want[y][x])
			}
		}
	}
	if _, err := BayerGRBG(MustNew(2, 2, 1)); err == nil {
		t.Error("BayerGRBG accepted 1-channel image")
	}
}

func TestBayerChannelGRBG(t *testing.T) {
	if BayerChannelGRBG(0, 0) != 1 || BayerChannelGRBG(1, 0) != 0 ||
		BayerChannelGRBG(0, 1) != 2 || BayerChannelGRBG(1, 1) != 1 {
		t.Error("GRBG layout wrong")
	}
}

func TestPNMRoundTripGray(t *testing.T) {
	im, err := SyntheticGray(33, 17, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodePNM(&buf, im); err != nil {
		t.Fatal(err)
	}
	got, err := DecodePNM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(im) {
		t.Error("PGM round trip lost data")
	}
}

func TestPNMRoundTripRGB(t *testing.T) {
	im, err := SyntheticRGB(19, 23, 9)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodePNM(&buf, im); err != nil {
		t.Fatal(err)
	}
	got, err := DecodePNM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(im) {
		t.Error("PPM round trip lost data")
	}
}

func TestPNMEncodeClampsOutOfRange(t *testing.T) {
	im := MustNew(2, 1, 1)
	im.Pix[0], im.Pix[1] = -50, 500
	var buf bytes.Buffer
	if err := EncodePNM(&buf, im); err != nil {
		t.Fatal(err)
	}
	got, err := DecodePNM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Pix[0] != 0 || got.Pix[1] != 255 {
		t.Errorf("clamping on encode failed: %v", got.Pix)
	}
}

func TestPNMRejectsBadInput(t *testing.T) {
	if err := EncodePNM(&bytes.Buffer{}, MustNew(1, 1, 2)); err == nil {
		t.Error("2-channel PNM encode accepted")
	}
	if _, err := DecodePNM(bytes.NewBufferString("P7\n1 1\n255\nx")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := DecodePNM(bytes.NewBufferString("P5\n2 2\n255\nab")); err == nil {
		t.Error("short pixel data accepted")
	}
	if _, err := DecodePNM(bytes.NewBufferString("P5\n1 1\n65535\n\x00\x00")); err == nil {
		t.Error("16-bit maxval accepted")
	}
}

func TestPNMCommentsSkipped(t *testing.T) {
	im, err := DecodePNM(bytes.NewBufferString("P5 # magic\n# a comment line\n2 1\n# another\n255\nAB"))
	if err != nil {
		t.Fatal(err)
	}
	if im.W != 2 || im.H != 1 || im.Pix[0] != 'A' || im.Pix[1] != 'B' {
		t.Errorf("comment handling wrong: %+v", im)
	}
}

func TestPNMFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.pgm")
	im, err := SyntheticGray(8, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := WritePNMFile(path, im); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPNMFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(im) {
		t.Error("file round trip lost data")
	}
	if _, err := ReadPNMFile(filepath.Join(dir, "missing.pgm")); err == nil {
		t.Error("missing file read succeeded")
	}
}

// TestPNMRoundTripProperty: any 8-bit image survives encode/decode exactly.
func TestPNMRoundTripProperty(t *testing.T) {
	f := func(rawW, rawH uint8, rgbFlag bool, fill []byte) bool {
		w := int(rawW)%16 + 1
		h := int(rawH)%16 + 1
		c := 1
		if rgbFlag {
			c = 3
		}
		im := MustNew(w, h, c)
		for i := range im.Pix {
			if len(fill) > 0 {
				im.Pix[i] = int32(fill[i%len(fill)])
			}
		}
		var buf bytes.Buffer
		if err := EncodePNM(&buf, im); err != nil {
			return false
		}
		got, err := DecodePNM(&buf)
		return err == nil && got.Equal(im)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNewRejectsOverflowGeometry(t *testing.T) {
	if _, err := New(99999999, 99999999, 1); err == nil {
		t.Error("overflowing geometry accepted")
	}
	if _, err := New(1<<15, 1<<15, 4); err == nil {
		t.Error("over-limit geometry accepted")
	}
}

func TestDiffImage(t *testing.T) {
	ref := MustNew(2, 1, 3)
	approx := MustNew(2, 1, 3)
	ref.Pix = []int32{10, 20, 30, 0, 0, 0}
	approx.Pix = []int32{10, 25, 28, 0, 0, 100}
	d, err := DiffImage(ref, approx, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Pixel 0: max channel error 5 -> 50; pixel 1: 100 -> clamped 255.
	if d.Pix[0] != 50 || d.Pix[1] != 255 {
		t.Errorf("diff = %v", d.Pix)
	}
	if _, err := DiffImage(ref, MustNew(3, 1, 3), 1); err == nil {
		t.Error("geometry mismatch accepted")
	}
	if _, err := DiffImage(ref, approx, 0); err == nil {
		t.Error("zero gain accepted")
	}
	if _, err := DiffImage(nil, approx, 1); err == nil {
		t.Error("nil ref accepted")
	}
	same, err := DiffImage(ref, ref, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range same.Pix {
		if v != 0 {
			t.Error("self-diff nonzero")
		}
	}
}
