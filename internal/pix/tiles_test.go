package pix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTileGridGeometry(t *testing.T) {
	cases := []struct {
		w, h, tiles int
	}{
		{1, 1, 1},
		{32, 32, 1},
		{33, 32, 2},
		{64, 64, 4},
		{50, 70, 2 * 3},
		{512, 512, 16 * 16},
	}
	for _, c := range cases {
		g := NewTileGrid(c.w, c.h, 1)
		if g.Tiles() != c.tiles {
			t.Errorf("%dx%d: got %d tiles, want %d", c.w, c.h, g.Tiles(), c.tiles)
		}
	}
	g := NewTileGrid(50, 70, 1)
	if got := g.TileOf(0, 0); got != 0 {
		t.Errorf("TileOf(0,0) = %d", got)
	}
	if got := g.TileOf(49, 69); got != g.Tiles()-1 {
		t.Errorf("TileOf(49,69) = %d, want %d", got, g.Tiles()-1)
	}
	// Edge tiles clip to the image.
	x0, y0, x1, y1 := g.tileBounds(g.Tiles() - 1)
	if x0 != 32 || y0 != 64 || x1 != 50 || y1 != 70 {
		t.Errorf("last tile bounds = (%d,%d)-(%d,%d)", x0, y0, x1, y1)
	}
}

func TestDirtyTilesMarking(t *testing.T) {
	g := NewTileGrid(100, 100, 1) // 4x4 tiles
	d := NewDirtyTiles(g)
	if d.Any() || d.Count() != 0 {
		t.Fatal("fresh set not empty")
	}
	d.MarkPixel(0, 0)
	d.MarkPixel(31, 31) // same tile
	if d.Count() != 1 {
		t.Errorf("count after same-tile marks = %d, want 1", d.Count())
	}
	d.MarkPixel(99, 99)
	if d.Count() != 2 || !d.Any() {
		t.Errorf("count = %d, want 2", d.Count())
	}
	d.Reset()
	if d.Any() {
		t.Fatal("reset left marks")
	}
	// A rect spanning tile boundaries marks every intersecting tile.
	d.MarkRect(16, 16, 32) // covers pixels 16..47 in both axes -> tiles (0,0)..(1,1)
	if d.Count() != 4 {
		t.Errorf("rect count = %d, want 4", d.Count())
	}
	// Rects clip at the image edge rather than running off the grid.
	d.Reset()
	d.MarkRect(96, 96, 64)
	if d.Count() != 1 {
		t.Errorf("clipped rect count = %d, want 1", d.Count())
	}
	// A whole-image rect takes the MarkAll fast path.
	d.Reset()
	d.MarkRect(0, 0, 128)
	if d.Count() != g.Tiles() {
		t.Errorf("full rect count = %d, want %d", d.Count(), g.Tiles())
	}
	// Or folds and respects the all fast path.
	a := NewDirtyTiles(g)
	a.MarkPixel(50, 50)
	b := NewDirtyTiles(g)
	b.Or(a)
	if b.Count() != 1 {
		t.Errorf("or count = %d, want 1", b.Count())
	}
	b.Or(d)
	if b.Count() != g.Tiles() {
		t.Errorf("or-all count = %d, want %d", b.Count(), g.Tiles())
	}
}

func TestDirtyTilesForEachOrder(t *testing.T) {
	g := NewTileGrid(100, 100, 1)
	d := NewDirtyTiles(g)
	d.MarkPixel(99, 0)  // tile 3
	d.MarkPixel(0, 99)  // tile 12
	d.MarkPixel(40, 40) // tile 5
	var got []int
	d.forEach(func(tile int) { got = append(got, tile) })
	want := []int{3, 5, 12}
	if len(got) != len(want) {
		t.Fatalf("forEach visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("forEach visited %v, want %v", got, want)
		}
	}
}

func TestTileClonerDepthValidation(t *testing.T) {
	if _, err := NewTileCloner(32, 32, 1, 1); err == nil {
		t.Fatal("depth 1 accepted")
	}
	if _, err := NewTileCloner(32, 32, 1, 2); err != nil {
		t.Fatal(err)
	}
}

func TestTileClonerSyncsOnlyStaleTiles(t *testing.T) {
	src := MustNew(64, 64, 1) // 2x2 tiles
	tc, err := NewTileCloner(src.W, src.H, src.C, 2)
	if err != nil {
		t.Fatal(err)
	}
	render := func(dst *Image, tile int) { tc.Grid().CopyTile(dst, src, tile) }
	countingRender := func(n *int) func(*Image, int) {
		return func(dst *Image, tile int) { *n++; render(dst, tile) }
	}
	// First sync of each ring member renders everything (fresh images are
	// fully stale).
	var n int
	tc.Sync(countingRender(&n))
	if n != 4 {
		t.Fatalf("first sync rendered %d tiles, want 4", n)
	}
	n = 0
	tc.Sync(countingRender(&n))
	if n != 4 {
		t.Fatalf("second ring member first sync rendered %d tiles, want 4", n)
	}
	// With nothing invalidated, a sync renders nothing.
	n = 0
	out := tc.Sync(countingRender(&n))
	if n != 0 {
		t.Fatalf("clean sync rendered %d tiles, want 0", n)
	}
	if !out.Equal(src) {
		t.Fatal("clean sync diverged from source")
	}
	// Invalidating one tile makes each ring member re-render exactly it.
	src.Set(40, 40, 0, 7)
	d := NewDirtyTiles(tc.Grid())
	d.MarkPixel(40, 40)
	tc.Invalidate(d)
	for i := 0; i < tc.Depth(); i++ {
		n = 0
		out = tc.Sync(countingRender(&n))
		if n != 1 {
			t.Fatalf("post-invalidate sync %d rendered %d tiles, want 1", i, n)
		}
		if !out.Equal(src) {
			t.Fatalf("post-invalidate sync %d diverged from source", i)
		}
	}
}

func TestSnapshotterValidation(t *testing.T) {
	im := MustNew(8, 8, 1)
	if _, err := NewSnapshotter(im, 0, SnapshotClone); err == nil {
		t.Fatal("workers 0 accepted")
	}
	if _, err := NewSnapshotter(im, 1, SnapshotMode(99)); err == nil {
		t.Fatal("bogus mode accepted")
	}
	s, err := NewSnapshotter(im, 2, SnapshotTiles)
	if err != nil {
		t.Fatal(err)
	}
	if s.Mode() != SnapshotTiles {
		t.Fatalf("mode = %d", s.Mode())
	}
	if len(s.Filled()) != 64 {
		t.Fatalf("filled len = %d", len(s.Filled()))
	}
}

// fillTreeOrder returns the 2D tree-sampling visit order of a w×h image as
// pixel indices: block origins coarse to fine, the order diffusive image
// stages process pixels in.
func fillTreeOrder(w, h int) []int {
	side := 1
	for side < w || side < h {
		side <<= 1
	}
	var order []int
	seen := make(map[int]bool)
	for step := side; step >= 1; step >>= 1 {
		for y := 0; y < h; y += step {
			for x := 0; x < w; x += step {
				idx := y*w + x
				if !seen[idx] {
					seen[idx] = true
					order = append(order, idx)
				}
			}
		}
	}
	return order
}

// runSnapshotComparison marks pixels of a rnd-generated image in the given
// order, spread across workers, snapshotting every snapEvery marks, and
// fails unless the tile-mode snapshot is bit-identical to HoldFill at every
// version. Returns false (for testing/quick) on mismatch.
func runSnapshotComparison(t *testing.T, rnd *rand.Rand, w, h, c, workers, snapEvery int, order []int) bool {
	working := MustNew(w, h, c)
	for i := range working.Pix {
		working.Pix[i] = int32(rnd.Intn(256))
	}
	tiles, err := NewSnapshotter(working, workers, SnapshotTiles)
	if err != nil {
		t.Fatal(err)
	}
	check := func(version int) bool {
		got, err := tiles.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		want, err := HoldFill(working, tiles.Filled())
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Logf("snapshot version %d diverged from HoldFill (%dx%dx%d, %d workers)",
				version, w, h, c, workers)
			return false
		}
		return true
	}
	version := 0
	for i, idx := range order {
		// Re-marks mutate the working value, modeling a recomputation pass
		// (kmeans re-assigns every pixel each iteration).
		working.Pix[idx*c] = int32(rnd.Intn(256))
		tiles.Mark(i%workers, idx)
		if (i+1)%snapEvery == 0 {
			version++
			if !check(version) {
				return false
			}
		}
	}
	return check(version + 1)
}

func TestSnapshotterTilesMatchesHoldFillTreeOrder(t *testing.T) {
	// Deterministic tree-order fill across tile boundaries and a ragged
	// edge, snapshotting every few marks — the conv2d/debayer shape.
	rnd := rand.New(rand.NewSource(1))
	for _, geom := range [][2]int{{48, 40}, {33, 65}, {8, 8}, {1, 1}, {100, 3}} {
		w, h := geom[0], geom[1]
		order := fillTreeOrder(w, h)
		if !runSnapshotComparison(t, rnd, w, h, 1, 3, max(1, len(order)/7), order) {
			t.Fatalf("%dx%d tree-order fill diverged", w, h)
		}
	}
}

func TestSnapshotterTilesMatchesHoldFillRepeatedPasses(t *testing.T) {
	// Two full passes over the same image (the kmeans shape: every pixel
	// re-marked with new values each iteration).
	rnd := rand.New(rand.NewSource(2))
	order := fillTreeOrder(40, 40)
	double := append(append([]int(nil), order...), order...)
	if !runSnapshotComparison(t, rnd, 40, 40, 3, 4, 97, double) {
		t.Fatal("repeated-pass fill diverged")
	}
}

// TestSnapshotterTilesQuick is the property test: for random geometry,
// channel count, worker count, mark order (any permutation, not just tree
// order), and snapshot cadence, dirty-tile snapshots are bit-identical to
// full HoldFill clones at every published version.
func TestSnapshotterTilesQuick(t *testing.T) {
	prop := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		w := 1 + rnd.Intn(70)
		h := 1 + rnd.Intn(70)
		c := 1 + rnd.Intn(3)
		workers := 1 + rnd.Intn(4)
		order := rnd.Perm(w * h)
		// Random re-marks: append a shuffled sample of already-marked pixels.
		for _, i := range rnd.Perm(len(order))[:len(order)/3] {
			order = append(order, order[i])
		}
		snapEvery := 1 + rnd.Intn(len(order))
		return runSnapshotComparison(t, rnd, w, h, c, workers, snapEvery, order)
	}
	cfg := &quick.Config{MaxCount: 25}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotterTilesAliasingContract(t *testing.T) {
	// A published snapshot must stay intact until ring-depth further
	// publishes, then its storage is reused.
	working := MustNew(64, 64, 1)
	s, err := NewSnapshotter(working, 1, SnapshotTiles)
	if err != nil {
		t.Fatal(err)
	}
	working.SetGray(0, 0, 11)
	s.Mark(0, 0)
	first, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	keep := first.Clone()
	for i := 0; i < snapshotRingDepth-1; i++ {
		working.SetGray(0, 0, int32(20+i))
		s.Mark(0, 0)
		if _, err := s.Snapshot(); err != nil {
			t.Fatal(err)
		}
		if !first.Equal(keep) {
			t.Fatalf("snapshot mutated after %d further publishes (depth %d)", i+1, snapshotRingDepth)
		}
	}
	working.SetGray(0, 0, 99)
	s.Mark(0, 0)
	reused, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if reused != first {
		t.Fatal("ring did not reuse storage after depth publishes")
	}
}

func TestSnapshotterCloneSnapshotsImmutable(t *testing.T) {
	working := MustNew(16, 16, 1)
	s, err := NewSnapshotter(working, 1, SnapshotClone)
	if err != nil {
		t.Fatal(err)
	}
	working.SetGray(0, 0, 5)
	s.Mark(0, 0)
	first, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	keep := first.Clone()
	for v := 1; v < 10; v++ {
		working.SetGray(0, 0, int32(v*10))
		s.Mark(0, 0)
		if _, err := s.Snapshot(); err != nil {
			t.Fatal(err)
		}
	}
	if !first.Equal(keep) {
		t.Fatal("clone-mode snapshot mutated by later publishes")
	}
}

// TestSnapshotterResetReuse: after Reset a snapshotter over a rewritten
// working image behaves exactly like a fresh one — every version of the
// second run is bit-identical to HoldFill, with no pixels leaking from the
// first run through stale filled bits or stale ring tiles.
func TestSnapshotterResetReuse(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	working := MustNew(48, 40, 1)
	s, err := NewSnapshotter(working, 2, SnapshotTiles)
	if err != nil {
		t.Fatal(err)
	}
	order := fillTreeOrder(working.W, working.H)
	run := func(cycle int) {
		for i, idx := range order {
			working.Pix[idx] = int32(rnd.Intn(256))
			s.Mark(i%2, idx)
			if (i+1)%61 == 0 || i == len(order)-1 {
				got, err := s.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				want, err := HoldFill(working, s.Filled())
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want) {
					t.Fatalf("cycle %d mark %d: snapshot diverged from HoldFill", cycle, i)
				}
			}
		}
	}
	for cycle := 1; cycle <= 3; cycle++ {
		run(cycle)
		s.Reset()
		for i, f := range s.Filled() {
			if f {
				t.Fatalf("cycle %d: filled[%d] survived Reset", cycle, i)
			}
		}
	}
}

// TestSnapshotterResetCloneMode: Reset also clears the mask in clone mode.
func TestSnapshotterResetCloneMode(t *testing.T) {
	working := MustNew(8, 8, 1)
	s, err := NewSnapshotter(working, 1, SnapshotClone)
	if err != nil {
		t.Fatal(err)
	}
	working.SetGray(0, 0, 9)
	s.Mark(0, 0)
	s.Reset()
	if s.Filled()[0] {
		t.Fatal("filled mask survived Reset")
	}
}

// TestTileClonerInvalidateAll: after InvalidateAll every ring member
// re-renders every tile.
func TestTileClonerInvalidateAll(t *testing.T) {
	src := MustNew(64, 64, 1) // 2x2 tiles
	tc, err := NewTileCloner(src.W, src.H, src.C, 2)
	if err != nil {
		t.Fatal(err)
	}
	render := func(dst *Image, tile int) { tc.Grid().CopyTile(dst, src, tile) }
	for i := 0; i < tc.Depth(); i++ {
		tc.Sync(render)
	}
	var n int
	tc.Sync(func(dst *Image, tile int) { n++; render(dst, tile) })
	if n != 0 {
		t.Fatalf("clean sync rendered %d tiles, want 0", n)
	}
	tc.InvalidateAll()
	for i := 0; i < tc.Depth(); i++ {
		n = 0
		out := tc.Sync(func(dst *Image, tile int) { n++; render(dst, tile) })
		if n != 4 {
			t.Fatalf("post-InvalidateAll sync %d rendered %d tiles, want 4", i, n)
		}
		if !out.Equal(src) {
			t.Fatalf("post-InvalidateAll sync %d diverged", i)
		}
	}
}
