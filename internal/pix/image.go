// Package pix is the image substrate for the benchmark applications of the
// paper's evaluation (§IV-A2). It provides a fixed-point image type with an
// arbitrary channel count, deterministic synthetic input generators (the
// offline stand-in for the PERFECT/AxBench image inputs; see DESIGN.md §2),
// Bayer mosaic construction for the debayer benchmark, and binary PGM/PPM
// encoding so outputs can be inspected with standard tools.
package pix

import "fmt"

// Image is a W x H image with C interleaved int32 channels in row-major
// order. Pixel values are conventionally 8-bit (0..255) but the type places
// no restriction, so intermediate fixed-point data (e.g. wavelet
// coefficients) can use the full int32 range.
type Image struct {
	W, H, C int
	Pix     []int32
}

// MaxSamples bounds an image's total sample count (W*H*C), protecting
// allocation from overflowed or absurd geometry.
const MaxSamples = 1 << 28

// New returns a zeroed image with the given geometry.
func New(w, h, c int) (*Image, error) {
	if w < 0 || h < 0 || c <= 0 {
		return nil, fmt.Errorf("pix: invalid geometry %dx%dx%d", w, h, c)
	}
	if total := int64(w) * int64(h) * int64(c); total > MaxSamples {
		return nil, fmt.Errorf("pix: geometry %dx%dx%d exceeds %d samples", w, h, c, MaxSamples)
	}
	return &Image{W: w, H: h, C: c, Pix: make([]int32, w*h*c)}, nil
}

// NewGray returns a zeroed single-channel image.
func NewGray(w, h int) (*Image, error) { return New(w, h, 1) }

// NewRGB returns a zeroed three-channel image.
func NewRGB(w, h int) (*Image, error) { return New(w, h, 3) }

// MustNew is New for known-good geometry; it panics on error and is
// intended for tests and internal construction.
func MustNew(w, h, c int) *Image {
	im, err := New(w, h, c)
	if err != nil {
		panic(err)
	}
	return im
}

// At returns the value of channel c at (x, y). Bounds are the caller's
// responsibility; out-of-range access panics like a slice access.
func (im *Image) At(x, y, c int) int32 { return im.Pix[(y*im.W+x)*im.C+c] }

// Set stores v in channel c at (x, y).
func (im *Image) Set(x, y, c int, v int32) { im.Pix[(y*im.W+x)*im.C+c] = v }

// Gray returns the single channel value at (x, y) of a 1-channel image.
func (im *Image) Gray(x, y int) int32 { return im.Pix[y*im.W+x] }

// SetGray stores v at (x, y) of a 1-channel image.
func (im *Image) SetGray(x, y int, v int32) { im.Pix[y*im.W+x] = v }

// Pixels reports the number of pixels (W*H).
func (im *Image) Pixels() int { return im.W * im.H }

// Clone returns a deep copy.
func (im *Image) Clone() *Image {
	out := &Image{W: im.W, H: im.H, C: im.C, Pix: make([]int32, len(im.Pix))}
	copy(out.Pix, im.Pix)
	return out
}

// CloneInto copies im into dst if geometries match, reusing dst's storage;
// otherwise it allocates. It returns the destination actually used.
func (im *Image) CloneInto(dst *Image) *Image {
	if dst == nil || dst.W != im.W || dst.H != im.H || dst.C != im.C || len(dst.Pix) != len(im.Pix) {
		return im.Clone()
	}
	copy(dst.Pix, im.Pix)
	return dst
}

// Equal reports whether the two images have identical geometry and pixels.
func (im *Image) Equal(other *Image) bool {
	if other == nil || im.W != other.W || im.H != other.H || im.C != other.C {
		return false
	}
	for i, v := range im.Pix {
		if other.Pix[i] != v {
			return false
		}
	}
	return true
}

// Fill sets every sample of the image to v.
func (im *Image) Fill(v int32) {
	for i := range im.Pix {
		im.Pix[i] = v
	}
}

// Clamp8 clamps every sample into the 8-bit range [0, 255].
func (im *Image) Clamp8() {
	for i, v := range im.Pix {
		im.Pix[i] = clamp8(v)
	}
}

// InBounds reports whether (x, y) lies inside the image.
func (im *Image) InBounds(x, y int) bool {
	return x >= 0 && x < im.W && y >= 0 && y < im.H
}

func clamp8(v int32) int32 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return v
}

// Clamp8Value clamps a single sample into [0, 255].
func Clamp8Value(v int32) int32 { return clamp8(v) }
