package pix

import "fmt"

// DiffImage renders the per-pixel absolute error between a reference and an
// approximation as a single-channel heat image (multi-channel inputs take
// the per-pixel maximum across channels), scaled by gain and clamped to
// 8 bits. It is the visual counterpart of the SNR numbers in the paper's
// Figures 16–18: where an approximate output still differs from precise.
func DiffImage(ref, approx *Image, gain int32) (*Image, error) {
	if ref == nil || approx == nil {
		return nil, fmt.Errorf("pix: DiffImage requires both images")
	}
	if ref.W != approx.W || ref.H != approx.H || ref.C != approx.C {
		return nil, fmt.Errorf("pix: DiffImage geometry mismatch %dx%dx%d vs %dx%dx%d",
			ref.W, ref.H, ref.C, approx.W, approx.H, approx.C)
	}
	if gain < 1 {
		return nil, fmt.Errorf("pix: DiffImage gain %d must be positive", gain)
	}
	out, err := NewGray(ref.W, ref.H)
	if err != nil {
		return nil, err
	}
	for p := 0; p < ref.Pixels(); p++ {
		var worst int32
		for c := 0; c < ref.C; c++ {
			d := ref.Pix[p*ref.C+c] - approx.Pix[p*ref.C+c]
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
		out.Pix[p] = clamp8(worst * gain)
	}
	return out, nil
}
