package pix

import "fmt"

// DiffImage renders the per-pixel absolute error between a reference and an
// approximation as a single-channel heat image (multi-channel inputs take
// the per-pixel maximum across channels), scaled by gain and clamped to
// 8 bits. It is the visual counterpart of the SNR numbers in the paper's
// Figures 16–18: where an approximate output still differs from precise.
func DiffImage(ref, approx *Image, gain int32) (*Image, error) {
	if ref == nil || approx == nil {
		return nil, fmt.Errorf("pix: DiffImage requires both images")
	}
	if ref.W != approx.W || ref.H != approx.H || ref.C != approx.C {
		return nil, fmt.Errorf("pix: DiffImage geometry mismatch %dx%dx%d vs %dx%dx%d",
			ref.W, ref.H, ref.C, approx.W, approx.H, approx.C)
	}
	if gain < 1 {
		return nil, fmt.Errorf("pix: DiffImage gain %d must be positive", gain)
	}
	out, err := NewGray(ref.W, ref.H)
	if err != nil {
		return nil, err
	}
	for p := 0; p < ref.Pixels(); p++ {
		var worst int32
		for c := 0; c < ref.C; c++ {
			d := ref.Pix[p*ref.C+c] - approx.Pix[p*ref.C+c]
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
		out.Pix[p] = clamp8(worst * gain)
	}
	return out, nil
}

// TileDiff compares two same-geometry images tile by tile and returns the
// set of tiles where they differ. It is the delta-start primitive for repeat
// traffic with small frame-to-frame changes (a video/stream scenario): diff
// the new input against the input whose output is cached, Dilate the result
// once per ring of stencil halo the consuming computation needs, and pass it
// as the stale set of a seeded run — only the changed tiles lose their
// cached values and hold-fill until recomputed.
func TileDiff(prev, next *Image) (*DirtyTiles, error) {
	if prev == nil || next == nil {
		return nil, fmt.Errorf("pix: TileDiff requires both images")
	}
	if prev.W != next.W || prev.H != next.H || prev.C != next.C {
		return nil, fmt.Errorf("pix: TileDiff geometry mismatch %dx%dx%d vs %dx%dx%d",
			prev.W, prev.H, prev.C, next.W, next.H, next.C)
	}
	g := NewTileGrid(next.W, next.H, next.C)
	d := NewDirtyTiles(g)
	for t := 0; t < g.Tiles(); t++ {
		x0, y0, x1, y1 := g.tileBounds(t)
		rowLen := (x1 - x0) * g.C
	rows:
		for y := y0; y < y1; y++ {
			off := (y*g.W + x0) * g.C
			pr := prev.Pix[off : off+rowLen]
			nr := next.Pix[off : off+rowLen]
			for i, v := range pr {
				if v != nr[i] {
					d.Mark(t)
					break rows
				}
			}
		}
	}
	return d, nil
}

// SeedFrame is the delta-start seed payload for tile apps: a cached output
// frame plus the set of tiles whose cached values are stale because the
// input changed there (typically TileDiff of the two inputs, Dilated by the
// consumer's stencil halo). A nil Stale set means every tile is trusted —
// the plain warm start. App OnSeed hooks accept either a bare *Image or a
// *SeedFrame.
type SeedFrame struct {
	Image *Image
	Stale *DirtyTiles
}

// AsSeedFrame normalizes a seed payload — a bare *Image or a *SeedFrame —
// into image + stale set, validating the payload type and geometry against
// the app's working frame. It is the shared front half of every tile app's
// OnSeed hook.
func AsSeedFrame(seed any, w, h, c int) (*Image, *DirtyTiles, error) {
	var img *Image
	var stale *DirtyTiles
	switch p := seed.(type) {
	case *Image:
		img = p
	case *SeedFrame:
		if p == nil {
			return nil, nil, fmt.Errorf("pix: nil seed frame")
		}
		img, stale = p.Image, p.Stale
	default:
		return nil, nil, fmt.Errorf("pix: seed payload %T is neither *pix.Image nor *pix.SeedFrame", seed)
	}
	if img == nil {
		return nil, nil, fmt.Errorf("pix: seed payload has no image")
	}
	if img.W != w || img.H != h || img.C != c {
		return nil, nil, fmt.Errorf("pix: seed geometry %dx%dx%d does not match app %dx%dx%d",
			img.W, img.H, img.C, w, h, c)
	}
	return img, stale, nil
}
