package pix

import (
	"fmt"
	"math"

	"anytime/internal/perm"
)

// Synthetic generators. The paper evaluates on "large image input sets" from
// PERFECT and AxBench, which are not available offline. These generators
// produce deterministic images with the statistics the benchmarks care
// about — smooth gradients (convolution, wavelets), hard edges and disks
// (debayer, histeq contrast), periodic texture (dwt53), distinct color
// populations (kmeans), and broadband noise — so the identical code paths
// are exercised. See DESIGN.md §2 for the substitution rationale.

// SyntheticGray returns a deterministic single-channel 8-bit test image:
// a diagonal gradient base layer with superimposed disks, bars, a sine
// texture band, and LFSR noise.
func SyntheticGray(w, h int, seed uint64) (*Image, error) {
	im, err := NewGray(w, h)
	if err != nil {
		return nil, err
	}
	if w == 0 || h == 0 {
		return im, nil
	}
	noise, err := noiseField(w*h, seed)
	if err != nil {
		return nil, err
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := gradient(x, y, w, h)
			v += disks(x, y, w, h)
			v += bars(x, y, w, h)
			v += sineBand(x, y, w, h)
			v += noise[y*w+x] % 17 // low-amplitude broadband noise
			im.SetGray(x, y, clamp8(v))
		}
	}
	return im, nil
}

// SyntheticRGB returns a deterministic three-channel 8-bit test image with
// several distinct color regions (useful for k-means) overlaid on
// channel-shifted versions of the gray features.
func SyntheticRGB(w, h int, seed uint64) (*Image, error) {
	im, err := NewRGB(w, h)
	if err != nil {
		return nil, err
	}
	if w == 0 || h == 0 {
		return im, nil
	}
	noise, err := noiseField(w*h*3, seed)
	if err != nil {
		return nil, err
	}
	// Distinct color patches give k-means well-separated populations.
	palette := [6][3]int32{
		{220, 60, 50}, {60, 190, 80}, {50, 90, 210},
		{230, 200, 60}, {160, 70, 190}, {240, 240, 235},
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			region := (3*y/h)*2 + (2 * x / w) // 3x2 grid of patches
			if region > 5 {
				region = 5
			}
			base := palette[region]
			for c := 0; c < 3; c++ {
				v := base[c]
				// Channel-dependent texture keeps the patches non-constant.
				v += gradient(x+13*c, y+7*c, w, h) / 4
				v += sineBand(x, y+c*h/9, w, h) / 2
				v += noise[(y*w+x)*3+c] % 13
				im.Set(x, y, c, clamp8(v))
			}
		}
	}
	return im, nil
}

// BayerGRBG mosaics an RGB image into a single-channel Bayer pattern with
// the GRBG layout:
//
//	G R
//	B G
//
// This is the sensor output format consumed by the debayer benchmark.
func BayerGRBG(rgb *Image) (*Image, error) {
	if rgb.C != 3 {
		return nil, errChannels("BayerGRBG", 3, rgb.C)
	}
	out, err := NewGray(rgb.W, rgb.H)
	if err != nil {
		return nil, err
	}
	for y := 0; y < rgb.H; y++ {
		for x := 0; x < rgb.W; x++ {
			out.SetGray(x, y, rgb.At(x, y, bayerChannelGRBG(x, y)))
		}
	}
	return out, nil
}

// BayerChannelGRBG returns which RGB channel (0=R, 1=G, 2=B) the GRBG Bayer
// pattern samples at (x, y).
func BayerChannelGRBG(x, y int) int { return bayerChannelGRBG(x, y) }

func bayerChannelGRBG(x, y int) int {
	switch {
	case y%2 == 0 && x%2 == 0:
		return 1 // G
	case y%2 == 0:
		return 0 // R
	case x%2 == 0:
		return 2 // B
	default:
		return 1 // G
	}
}

func gradient(x, y, w, h int) int32 {
	return int32(64 * (x + y) / (w + h))
}

func disks(x, y, w, h int) int32 {
	type disk struct {
		cx, cy, r float64
		amp       int32
	}
	ds := [3]disk{
		{0.3, 0.35, 0.14, 120},
		{0.72, 0.28, 0.10, -70},
		{0.62, 0.72, 0.18, 90},
	}
	var v int32
	fx, fy := float64(x)/float64(w), float64(y)/float64(h)
	for _, d := range ds {
		dx, dy := fx-d.cx, fy-d.cy
		if dx*dx+dy*dy < d.r*d.r {
			v += d.amp
		}
	}
	return v
}

func bars(x, y, w, h int) int32 {
	// Vertical bars in the lower-left quadrant: hard edges for filters.
	if x < w/2 && y > 2*h/3 {
		if (8*x/w)%2 == 0 {
			return 60
		}
		return -40
	}
	return 0
}

func sineBand(x, y, w, h int) int32 {
	// Horizontal band of sinusoidal texture across the middle.
	if y >= 2*h/5 && y < 3*h/5 {
		return int32(40 * math.Sin(float64(x)*2*math.Pi*6/float64(w)))
	}
	return 0
}

func noiseField(n int, seed uint64) ([]int32, error) {
	out := make([]int32, n)
	if n == 0 {
		return out, nil
	}
	l, err := perm.NewLFSR(24, seed|1)
	if err != nil {
		return nil, err
	}
	for i := range out {
		out[i] = int32(l.Next() & 0xFF)
	}
	return out, nil
}

func errChannels(op string, want, got int) error {
	return fmt.Errorf("pix: %s requires %d channels, got %d", op, want, got)
}
