package pix

import (
	"bytes"
	"testing"
)

// FuzzDecodePNM hardens the parser: arbitrary input must never panic, and
// any successfully decoded image must re-encode and decode to the same
// pixels.
func FuzzDecodePNM(f *testing.F) {
	var seed bytes.Buffer
	img, err := SyntheticGray(5, 3, 2)
	if err != nil {
		f.Fatal(err)
	}
	if err := EncodePNM(&seed, img); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("P5\n2 2\n255\nabcd"))
	f.Add([]byte("P6\n1 1\n255\nRGB"))
	f.Add([]byte("P5 # comment\n1 1\n255\nx"))
	f.Add([]byte("P5\n-1 1\n255\n"))
	f.Add([]byte("P5\n99999999 99999999\n255\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		im, err := DecodePNM(bytes.NewReader(data))
		if err != nil {
			return
		}
		if im.W*im.H*im.C != len(im.Pix) {
			t.Fatalf("inconsistent geometry %dx%dx%d with %d samples", im.W, im.H, im.C, len(im.Pix))
		}
		var buf bytes.Buffer
		if err := EncodePNM(&buf, im); err != nil {
			t.Fatalf("re-encode of decoded image failed: %v", err)
		}
		back, err := DecodePNM(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !back.Equal(im) {
			t.Fatal("decode/encode/decode not stable")
		}
	})
}

// FuzzHoldFill: arbitrary geometry and mask bytes must not panic, and the
// result must leave filled pixels untouched.
func FuzzHoldFill(f *testing.F) {
	f.Add(uint8(4), uint8(4), []byte{1, 0, 1})
	f.Add(uint8(1), uint8(1), []byte{})
	f.Add(uint8(16), uint8(3), []byte{0})
	f.Fuzz(func(t *testing.T, rw, rh uint8, mask []byte) {
		w := int(rw)%24 + 1
		h := int(rh)%24 + 1
		im := MustNew(w, h, 1)
		for i := range im.Pix {
			im.Pix[i] = int32(i % 251)
		}
		filled := make([]bool, w*h)
		for i := range filled {
			if len(mask) > 0 {
				filled[i] = mask[i%len(mask)]&1 == 1
			}
		}
		out, err := HoldFill(im, filled)
		if err != nil {
			t.Fatal(err)
		}
		for i, ok := range filled {
			if ok && out.Pix[i] != im.Pix[i] {
				t.Fatalf("filled pixel %d changed", i)
			}
		}
	})
}
