package pix

import (
	"strings"
	"testing"
)

// seedWorking builds a 64x64 gray snapshotter whose working image holds a
// recognizable "cached approximation" (value 100 everywhere).
func seedWorking(t *testing.T, mode SnapshotMode) (*Snapshotter, *Image) {
	t.Helper()
	working := MustNew(64, 64, 1)
	working.Fill(100)
	s, err := NewSnapshotter(working, 2, mode)
	if err != nil {
		t.Fatal(err)
	}
	return s, working
}

func TestSnapshotterSeedTrustsWorking(t *testing.T) {
	for _, mode := range []SnapshotMode{SnapshotClone, SnapshotTiles} {
		s, working := seedWorking(t, mode)
		if err := s.Seed(nil); err != nil {
			t.Fatal(err)
		}
		if !s.Seeded() {
			t.Fatal("Seeded() = false after Seed")
		}
		// No pixels computed yet: the snapshot must present the cached
		// approximation, not an ancestor hold-fill of stale values.
		snap, err := s.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if snap.Gray(63, 63) != 100 || snap.Gray(0, 0) != 100 {
			t.Fatalf("mode %v: seeded snapshot lost the cached values: corners %d %d",
				mode, snap.Gray(0, 0), snap.Gray(63, 63))
		}
		// A recomputed pixel overrides the cache.
		working.SetGray(40, 40, 7)
		s.Mark(0, 40*64+40)
		snap, err = s.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if snap.Gray(40, 40) != 7 {
			t.Fatalf("mode %v: recomputed pixel = %d, want 7", mode, snap.Gray(40, 40))
		}
		if snap.Gray(0, 0) != 100 {
			t.Fatalf("mode %v: cached pixel lost after a mark: %d", mode, snap.Gray(0, 0))
		}
		// Reset drops the seed: back to hold-fill semantics.
		s.Reset()
		if s.Seeded() {
			t.Fatalf("mode %v: Seeded() = true after Reset", mode)
		}
	}
}

func TestSnapshotterSeedStaleTilesHoldFill(t *testing.T) {
	s, working := seedWorking(t, SnapshotClone)
	g := NewTileGrid(64, 64, 1) // 2x2 tiles
	stale := NewDirtyTiles(g)
	stale.Mark(3) // bottom-right tile: cache not trusted there
	if err := s.Seed(stale); err != nil {
		t.Fatal(err)
	}
	// Fill the tree root so stale pixels have an ancestor to inherit.
	working.SetGray(0, 0, 55)
	s.Mark(0, 0)
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Gray(1, 1) != 100 {
		t.Fatalf("trusted tile pixel = %d, want cached 100", snap.Gray(1, 1))
	}
	if snap.Gray(40, 40) != 55 {
		t.Fatalf("stale tile pixel = %d, want ancestor hold-fill 55", snap.Gray(40, 40))
	}
}

func TestSnapshotterSeedGridMismatch(t *testing.T) {
	s, _ := seedWorking(t, SnapshotClone)
	wrong := NewDirtyTiles(NewTileGrid(32, 32, 1))
	err := s.Seed(wrong)
	if err == nil || !strings.Contains(err.Error(), "grid") {
		t.Fatalf("Seed with mismatched grid = %v, want grid error", err)
	}
}

func TestSnapshotterSeedTilesModeInvalidatesRing(t *testing.T) {
	s, working := seedWorking(t, SnapshotTiles)
	// Simulate a previous run: publish once so ring members hold old pixels.
	working.SetGray(0, 0, 9)
	s.Mark(0, 0)
	if _, err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	// New warm run over refreshed working content.
	working.Fill(200)
	if err := s.Seed(nil); err != nil {
		t.Fatal(err)
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range snap.Pix {
		if v != 200 {
			t.Fatalf("ring pixel %d = %d leaked from previous run, want 200", i, v)
		}
	}
}

func TestDirtyTilesDilate(t *testing.T) {
	g := NewTileGrid(128, 128, 1) // 4x4 tiles
	d := NewDirtyTiles(g)
	d.Mark(5) // tile (1,1)
	d.Dilate()
	if d.Count() != 9 {
		t.Fatalf("dilated interior tile count = %d, want 9", d.Count())
	}
	for _, tile := range []int{0, 1, 2, 4, 5, 6, 8, 9, 10} {
		if !d.Has(tile) {
			t.Errorf("tile %d missing from dilation", tile)
		}
	}
	// Corner tiles clip at the grid edge.
	d = NewDirtyTiles(g)
	d.Mark(0)
	d.Dilate()
	if d.Count() != 4 {
		t.Fatalf("dilated corner count = %d, want 4", d.Count())
	}
	// MarkAll stays all.
	d.MarkAll()
	d.Dilate()
	if d.Count() != g.Tiles() {
		t.Fatalf("dilate after MarkAll = %d tiles", d.Count())
	}
}

func TestTileDiff(t *testing.T) {
	a := MustNew(64, 64, 1)
	b := a.Clone()
	d, err := TileDiff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Any() {
		t.Fatal("identical images produced a non-empty diff")
	}
	b.SetGray(40, 10, 1) // tile (1,0) of the 2x2 grid
	d, err = TileDiff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Count() != 1 || !d.Has(1) {
		t.Fatalf("diff = %d tiles (has(1)=%v), want exactly tile 1", d.Count(), d.Has(1))
	}
	// Geometry mismatch is an error.
	c := MustNew(32, 64, 1)
	if _, err := TileDiff(a, c); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
	if _, err := TileDiff(nil, a); err == nil {
		t.Fatal("nil image accepted")
	}
}

func TestAsSeedFrame(t *testing.T) {
	img := MustNew(64, 64, 1)
	got, stale, err := AsSeedFrame(img, 64, 64, 1)
	if err != nil || got != img || stale != nil {
		t.Fatalf("bare image: %v %v %v", got, stale, err)
	}
	d := NewDirtyTiles(NewTileGrid(64, 64, 1))
	got, stale2, err := AsSeedFrame(&SeedFrame{Image: img, Stale: d}, 64, 64, 1)
	if err != nil || got != img || stale2 != d {
		t.Fatalf("seed frame: %v %v %v", got, stale2, err)
	}
	if _, _, err := AsSeedFrame(img, 32, 32, 1); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
	if _, _, err := AsSeedFrame("nope", 64, 64, 1); err == nil {
		t.Fatal("wrong payload type accepted")
	}
	if _, _, err := AsSeedFrame((*SeedFrame)(nil), 64, 64, 1); err == nil {
		t.Fatal("nil seed frame accepted")
	}
	if _, _, err := AsSeedFrame(&SeedFrame{}, 64, 64, 1); err == nil {
		t.Fatal("seed frame without image accepted")
	}
}
