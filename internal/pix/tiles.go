package pix

import (
	"fmt"
	"math/bits"
)

// This file is the zero-copy publish path for diffusive image stages
// (paper §III-B2 granularity, §IV-C overheads). Publishing an intermediate
// snapshot of a partially computed image costs a full-image render per
// round when done naively — ~32 deep copies of the output per pass at the
// default granularity. The types here cut that down:
//
//   - TileGrid / DirtyTiles: tile-granular (32×32 pixels) dirty tracking,
//     marked by the apply loop as it writes the working image.
//   - TileCloner: a small ring of reusable snapshot images, each with a
//     per-image stale-tile set; syncing an image to the working state
//     copies only the tiles dirtied since that image was last synced.
//   - Snapshotter: the app-facing bundle of working image + filled mask +
//     dirty sets, rendering tree-sampled hold-fill approximations either as
//     fresh clones (immutable snapshots, the default) or into the tile
//     ring (zero allocation, bit-identical content).

// TileShift is log2 of the tile side. 32×32 tiles balance dirty-set
// precision against per-tile bookkeeping: a tile row is a 128-byte copy for
// a gray image, and a 512×512 image has 256 tiles — a 4-word bitmap.
const TileShift = 5

// TileSize is the side length of a dirty-tracking tile, in pixels.
const TileSize = 1 << TileShift

// TileGrid describes the tile decomposition of a W×H×C image.
type TileGrid struct {
	W, H, C int
	tx, ty  int // tiles across and down
}

// NewTileGrid returns the tile grid of a w×h image with c channels.
func NewTileGrid(w, h, c int) TileGrid {
	return TileGrid{
		W: w, H: h, C: c,
		tx: (w + TileSize - 1) >> TileShift,
		ty: (h + TileSize - 1) >> TileShift,
	}
}

// Tiles reports the number of tiles in the grid.
func (g TileGrid) Tiles() int { return g.tx * g.ty }

// TileOf returns the tile index containing pixel (x, y).
func (g TileGrid) TileOf(x, y int) int {
	return (y>>TileShift)*g.tx + (x >> TileShift)
}

// tileBounds returns the pixel rectangle [x0, x1) × [y0, y1) of tile t,
// clipped to the image.
func (g TileGrid) tileBounds(t int) (x0, y0, x1, y1 int) {
	x0 = (t % g.tx) << TileShift
	y0 = (t / g.tx) << TileShift
	x1 = min(x0+TileSize, g.W)
	y1 = min(y0+TileSize, g.H)
	return
}

// DirtyTiles is a bitmap over a grid's tiles. It is not safe for concurrent
// mutation; concurrent apply workers each mark a private set, merged with
// Or during round quiescence.
type DirtyTiles struct {
	g     TileGrid
	words []uint64
	all   bool // fast path: every tile dirty
}

// NewDirtyTiles returns an empty dirty set over g.
func NewDirtyTiles(g TileGrid) *DirtyTiles {
	return &DirtyTiles{g: g, words: make([]uint64, (g.Tiles()+63)/64)}
}

// MarkPixel marks the tile containing pixel (x, y).
func (d *DirtyTiles) MarkPixel(x, y int) {
	t := d.g.TileOf(x, y)
	d.words[t>>6] |= 1 << (t & 63)
}

// Mark marks tile t by index.
func (d *DirtyTiles) Mark(t int) {
	d.words[t>>6] |= 1 << (t & 63)
}

// Has reports whether tile t is marked.
func (d *DirtyTiles) Has(t int) bool {
	return d.words[t>>6]&(1<<(t&63)) != 0
}

// Dilate marks the 8-neighborhood of every currently marked tile — one ring
// of growth per call. Delta starts use it to widen a changed-tile set by the
// stencil halo of the computation that will consume it: a convolution whose
// kernel reaches up to TileSize pixels past a changed pixel needs one ring.
func (d *DirtyTiles) Dilate() {
	if d.all {
		return
	}
	grown := make([]uint64, len(d.words))
	copy(grown, d.words)
	d.forEach(func(t int) {
		tx, ty := t%d.g.tx, t/d.g.tx
		for dy := -1; dy <= 1; dy++ {
			ny := ty + dy
			if ny < 0 || ny >= d.g.ty {
				continue
			}
			for dx := -1; dx <= 1; dx++ {
				nx := tx + dx
				if nx < 0 || nx >= d.g.tx {
					continue
				}
				n := ny*d.g.tx + nx
				grown[n>>6] |= 1 << (n & 63)
			}
		}
	})
	d.words = grown
}

// MarkRect marks every tile intersecting the pixel rectangle
// [x, x+side) × [y, y+side), clipped to the image.
func (d *DirtyTiles) MarkRect(x, y, side int) {
	if d.all {
		return
	}
	x1 := x + side
	y1 := y + side
	if x1 > d.g.W {
		x1 = d.g.W
	}
	if y1 > d.g.H {
		y1 = d.g.H
	}
	t0x, t0y := x>>TileShift, y>>TileShift
	t1x, t1y := (x1-1)>>TileShift, (y1-1)>>TileShift
	if t0x == 0 && t0y == 0 && t1x == d.g.tx-1 && t1y == d.g.ty-1 {
		d.MarkAll()
		return
	}
	for ty := t0y; ty <= t1y; ty++ {
		row := ty * d.g.tx
		for tx := t0x; tx <= t1x; tx++ {
			t := row + tx
			d.words[t>>6] |= 1 << (t & 63)
		}
	}
}

// MarkAll marks every tile.
func (d *DirtyTiles) MarkAll() {
	d.all = true
	for i := range d.words {
		d.words[i] = ^uint64(0)
	}
	// Keep the spare bits of the last word clear so Count and forEach never
	// see phantom tiles.
	if n := d.g.Tiles() & 63; n != 0 {
		d.words[len(d.words)-1] = 1<<n - 1
	}
}

// Reset clears the set.
func (d *DirtyTiles) Reset() {
	d.all = false
	for i := range d.words {
		d.words[i] = 0
	}
}

// Or folds src into d. The sets must share a grid.
func (d *DirtyTiles) Or(src *DirtyTiles) {
	if src.all {
		d.MarkAll()
		return
	}
	for i, w := range src.words {
		d.words[i] |= w
	}
}

// Any reports whether any tile is marked.
func (d *DirtyTiles) Any() bool {
	for _, w := range d.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Count reports the number of marked tiles (at most Tiles(); the spare bits
// of the last word are never set).
func (d *DirtyTiles) Count() int {
	n := 0
	for _, w := range d.words {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// forEach invokes fn for every marked tile, in index order.
func (d *DirtyTiles) forEach(fn func(tile int)) {
	total := d.g.Tiles()
	for i, w := range d.words {
		base := i << 6
		for ; w != 0; w &= w - 1 {
			t := base + bits.TrailingZeros64(w)
			if t >= total {
				return
			}
			fn(t)
		}
	}
}

// TileCloner is a ring of reusable snapshot images, each tracking which of
// its tiles are stale relative to the source working image. Syncing copies
// only a ring member's stale tiles, so a round that touched k tiles costs
// O(k · tile) instead of O(pixels) — and zero allocation.
//
// The aliasing contract: a snapshot returned by Sync is overwritten again
// after `depth` further Sync calls. Readers must either consume a snapshot
// promptly (within depth-1 publishes — every synchronous observer and any
// AsyncConsume child that keeps up qualifies) or copy it. Stages that hand
// snapshots to retaining consumers should use SnapshotClone instead.
type TileCloner struct {
	g     TileGrid
	ring  []*Image
	stale []*DirtyTiles
	cur   int
}

// NewTileCloner returns a cloner with depth ring images of the given
// geometry. depth must be at least 2 (double buffering: the image being
// synced is never the one just published).
func NewTileCloner(w, h, c, depth int) (*TileCloner, error) {
	if depth < 2 {
		return nil, fmt.Errorf("pix: tile cloner depth %d must be at least 2", depth)
	}
	g := NewTileGrid(w, h, c)
	tc := &TileCloner{g: g, ring: make([]*Image, depth), stale: make([]*DirtyTiles, depth)}
	for i := range tc.ring {
		im, err := New(w, h, c)
		if err != nil {
			return nil, err
		}
		tc.ring[i] = im
		tc.stale[i] = NewDirtyTiles(g)
		tc.stale[i].MarkAll() // fresh images are entirely out of sync
	}
	return tc, nil
}

// Grid reports the cloner's tile grid.
func (tc *TileCloner) Grid() TileGrid { return tc.g }

// Depth reports the ring depth.
func (tc *TileCloner) Depth() int { return len(tc.ring) }

// Invalidate records that the tiles in d changed in the source image: every
// ring member must re-copy them before it is published again.
func (tc *TileCloner) Invalidate(d *DirtyTiles) {
	for _, s := range tc.stale {
		s.Or(d)
	}
}

// InvalidateAll marks every tile of every ring member stale, as if the
// whole source image changed. It is the reuse primitive: a pooled stage
// whose working image is about to be rewritten for a new input calls it so
// no ring member can publish pixels left over from the previous run.
func (tc *TileCloner) InvalidateAll() {
	for _, s := range tc.stale {
		s.MarkAll()
	}
}

// Sync brings the next ring image up to date by re-rendering only its
// stale tiles through render (render must write every pixel of the tile it
// is given), then returns it. The returned image must not be written by the
// caller and remains valid until depth further Sync calls.
func (tc *TileCloner) Sync(render func(dst *Image, tile int)) *Image {
	tc.cur = (tc.cur + 1) % len(tc.ring)
	dst := tc.ring[tc.cur]
	st := tc.stale[tc.cur]
	st.forEach(func(t int) { render(dst, t) })
	st.Reset()
	return dst
}

// CopyTile copies tile t of the grid from src to dst row by row. It is the
// plain (no hold-fill) tile renderer.
func (g TileGrid) CopyTile(dst, src *Image, t int) {
	x0, y0, x1, y1 := g.tileBounds(t)
	rowLen := (x1 - x0) * g.C
	for y := y0; y < y1; y++ {
		off := (y*g.W + x0) * g.C
		copy(dst.Pix[off:off+rowLen], src.Pix[off:off+rowLen])
	}
}

// SnapshotMode selects how a Snapshotter renders published approximations.
type SnapshotMode int

const (
	// SnapshotClone renders every publish into a fresh image (a HoldFill
	// clone). Snapshots are immutable forever (Property 3 in its strongest
	// form) and may be retained indefinitely by any consumer. This is the
	// default and matches the pre-tile behavior bit for bit.
	SnapshotClone SnapshotMode = iota
	// SnapshotTiles renders publishes into a small ring of reused images,
	// copying only tiles dirtied since that ring slot was last published —
	// the zero-copy publish path. Content is bit-identical to
	// SnapshotClone; the trade is the TileCloner aliasing contract (a
	// snapshot is overwritten after ring-depth further publishes), so use
	// it when consumers read promptly or copy, not when they retain.
	SnapshotTiles
)

// snapshotRingDepth is the Snapshotter's ring depth in SnapshotTiles mode:
// a published snapshot survives two further publishes before its storage is
// reused, enough slack for the model's latest-wins consumers.
const snapshotRingDepth = 3

// Snapshotter renders the published approximations of a tree-sampled
// diffusive image stage: pixels not yet computed take the value of their
// nearest computed tree ancestor (exactly HoldFill), and rendering is
// either a fresh clone per publish or a dirty-tile sync into a reused ring,
// per SnapshotMode.
//
// The owning stage writes computed pixels into the working image and calls
// Mark for each; Snapshot must be called during round quiescence (no Mark
// running), which is precisely when diffusive snapshot callbacks run.
// Mark is safe for concurrent use by distinct workers.
type Snapshotter struct {
	mode    SnapshotMode
	working *Image
	filled  []bool
	grid    TileGrid
	dirty   []*DirtyTiles // one per worker; nil slices in clone mode
	cloner  *TileCloner
	merge   *DirtyTiles // scratch for merging worker sets at snapshot time

	// Warm-start state (see Seed): while seeded, unfilled pixels in trusted
	// tiles render from the working image — which holds a previous run's
	// published approximation — instead of hold-filling from tree ancestors.
	seeded    bool
	seedStale *DirtyTiles // tiles whose seed values are NOT trusted; nil = trust all
}

// NewSnapshotter returns a snapshotter over working for the given worker
// count and mode. The snapshotter owns the filled mask; the stage keeps
// ownership of working and writes pixel values directly.
func NewSnapshotter(working *Image, workers int, mode SnapshotMode) (*Snapshotter, error) {
	if workers < 1 {
		return nil, fmt.Errorf("pix: snapshotter workers %d must be positive", workers)
	}
	if mode != SnapshotClone && mode != SnapshotTiles {
		return nil, fmt.Errorf("pix: unknown snapshot mode %d", mode)
	}
	s := &Snapshotter{
		mode:    mode,
		working: working,
		filled:  make([]bool, working.W*working.H),
		grid:    NewTileGrid(working.W, working.H, working.C),
	}
	if mode == SnapshotTiles {
		cloner, err := NewTileCloner(working.W, working.H, working.C, snapshotRingDepth)
		if err != nil {
			return nil, err
		}
		s.cloner = cloner
		s.dirty = make([]*DirtyTiles, workers)
		for w := range s.dirty {
			s.dirty[w] = NewDirtyTiles(s.grid)
		}
		s.merge = NewDirtyTiles(s.grid)
	}
	return s, nil
}

// Mode reports the snapshotter's rendering mode.
func (s *Snapshotter) Mode() SnapshotMode { return s.mode }

// Filled exposes the computed-pixel mask (for stages that need to consult
// it, e.g. to report coverage). The caller must not mutate it.
func (s *Snapshotter) Filled() []bool { return s.filled }

// Mark records that worker w computed (or recomputed) pixel index
// idx = y*W + x of the working image. In SnapshotTiles mode it dirties
// every tile whose rendered content the write can influence: the pixel's
// own tile, plus — because unfilled pixels inherit from their tree
// ancestors — the pixel's whole ancestor block when it is (or could feed)
// an inheritance source.
func (s *Snapshotter) Mark(w, idx int) {
	s.filled[idx] = true
	if s.mode != SnapshotTiles {
		return
	}
	x := idx % s.working.W
	y := idx / s.working.W
	d := s.dirty[w]
	// Influence region of (x, y): it is the origin of tree blocks up to
	// side s = lowest set bit of (x|y); every unfilled pixel in that block
	// hold-fills from it (or from a descendant origin computed later), so
	// a write here can change the rendered value of the whole block. For
	// interior pixels (odd coordinate) this degenerates to the pixel's own
	// tile.
	m := x | y
	if m == 0 {
		d.MarkAll() // (0, 0) is the root: it can feed every pixel
		return
	}
	side := m & -m
	if side < TileSize {
		d.MarkPixel(x, y)
		return
	}
	d.MarkRect(x, y, side)
}

// Seed puts the snapshotter into warm-start mode for the next run. The
// caller must first have copied a previous run's published approximation
// into the working image; from then until Reset, pixels not yet computed
// render at their working value (the cached approximation) instead of
// hold-filling from tree ancestors, so the first snapshots of a seeded run
// start at the cached accuracy and rise from there.
//
// stale, if non-nil, marks tiles whose cached values must NOT be presented
// — the delta-start path, where the input changed in those tiles since the
// cached frame was computed (see TileDiff). Pixels in stale tiles fall back
// to ordinary hold-fill from freshly computed ancestors. stale must share
// the working image's tile grid; the snapshotter takes ownership of it.
//
// Like Reset, Seed must run during quiescence, on a freshly Reset (no
// pixels filled) snapshotter, before the automaton starts. Seeding does not
// change what the run computes — every pixel is still computed exactly once
// from the input — so the final output is bit-identical to a cold run's.
func (s *Snapshotter) Seed(stale *DirtyTiles) error {
	if stale != nil && stale.g != s.grid {
		return fmt.Errorf("pix: seed stale grid %dx%dx%d does not match working %dx%dx%d",
			stale.g.W, stale.g.H, stale.g.C, s.grid.W, s.grid.H, s.grid.C)
	}
	s.seeded = true
	s.seedStale = stale
	if s.mode == SnapshotTiles {
		// No ring member may present pixels rendered for the previous run's
		// (unseeded) working content.
		s.cloner.InvalidateAll()
	}
	return nil
}

// Seeded reports whether the snapshotter is in warm-start mode.
func (s *Snapshotter) Seeded() bool { return s.seeded }

// trusted reports whether unfilled pixels of tile t may render their seeded
// working values.
func (s *Snapshotter) trusted(t int) bool {
	return s.seeded && (s.seedStale == nil || !s.seedStale.Has(t))
}

// Snapshot renders the current approximation: every computed pixel shows
// its working value, every other pixel its nearest computed tree ancestor's
// (HoldFill semantics) — or, in a seeded run, its cached working value when
// its tile is trusted. Must run during round quiescence.
func (s *Snapshotter) Snapshot() (*Image, error) {
	if s.mode == SnapshotClone {
		if !s.seeded {
			return HoldFill(s.working, s.filled)
		}
		// Seeded clone: render tile by tile so the trusted/stale split takes
		// effect, into a fresh image (same immutability as HoldFill).
		img, err := New(s.grid.W, s.grid.H, s.grid.C)
		if err != nil {
			return nil, err
		}
		for t := 0; t < s.grid.Tiles(); t++ {
			s.renderTile(img, t)
		}
		return img, nil
	}
	s.merge.Reset()
	for _, d := range s.dirty {
		s.merge.Or(d)
		d.Reset()
	}
	s.cloner.Invalidate(s.merge)
	return s.cloner.Sync(s.renderTile), nil
}

// Reset rewinds the snapshotter for a new run over the same working image:
// the filled mask and per-worker dirty sets are cleared, and in
// SnapshotTiles mode every ring member is marked fully stale so no snapshot
// of the new run can alias pixels from the previous one. Like Snapshot it
// must run during quiescence (no Mark running); the stage's OnReset hook is
// the natural call site. The working image itself belongs to the stage and
// is not touched — its stale content is unreachable because hold-fill only
// reads filled pixels, and the first round always fills the tree root.
func (s *Snapshotter) Reset() {
	for i := range s.filled {
		s.filled[i] = false
	}
	s.seeded = false
	s.seedStale = nil
	if s.mode != SnapshotTiles {
		return
	}
	for _, d := range s.dirty {
		d.Reset()
	}
	s.merge.Reset()
	s.cloner.InvalidateAll()
}

// renderTile renders tile t of the hold-filled approximation into dst.
func (s *Snapshotter) renderTile(dst *Image, t int) {
	g := s.grid
	w, c := g.W, g.C
	if s.trusted(t) {
		// Seeded warm start: unfilled pixels hold the cached approximation
		// in the working image, filled pixels hold their recomputed values
		// there too — the whole tile is a plain copy.
		g.CopyTile(dst, s.working, t)
		return
	}
	x0, y0, x1, y1 := g.tileBounds(t)
	for y := y0; y < y1; y++ {
		row := y * w
		for x := x0; x < x1; x++ {
			idx := row + x
			src := idx
			if !s.filled[idx] {
				src = s.ancestorOf(x, y)
			}
			copy(dst.Pix[idx*c:idx*c+c], s.working.Pix[src*c:src*c+c])
		}
	}
}

// ancestorOf returns the pixel index whose value (x, y) hold-fills from:
// the nearest filled origin along its tree-ancestor chain, or (x, y) itself
// when no ancestor is filled (matching HoldFill, which leaves such pixels
// at their working value).
func (s *Snapshotter) ancestorOf(x, y int) int {
	w := s.working.W
	for step := 2; ; step <<= 1 {
		ox := x &^ (step - 1)
		oy := y &^ (step - 1)
		if s.filled[oy*w+ox] {
			return oy*w + ox
		}
		if ox == 0 && oy == 0 {
			return y*w + x
		}
	}
}
