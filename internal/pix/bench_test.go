package pix

import (
	"math/rand"
	"testing"
)

// The publish-path benchmarks measure what a conv2d-shaped diffusive stage
// pays to publish its intermediate approximations: a 512×512 gray image
// filled in 2D tree order, snapshotted every 1/32 of the pass (the app's
// default granularity). Each op is one cold pass — snapshotter construction
// included, since a real stage builds one per run. SnapshotClone is the
// pre-tile behavior (a full HoldFill clone per round); SnapshotTiles is the
// zero-copy ring. Regenerate BENCH_publish_path.json from these (see
// README).

func benchPublishPath(b *testing.B, mode SnapshotMode) {
	b.Helper()
	const side = 512
	const rounds = 32
	working := MustNew(side, side, 1)
	rnd := rand.New(rand.NewSource(3))
	for i := range working.Pix {
		working.Pix[i] = int32(rnd.Intn(256))
	}
	order := fillTreeOrder(side, side)
	chunk := len(order) / rounds
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := NewSnapshotter(working, 1, mode)
		if err != nil {
			b.Fatal(err)
		}
		for r := 0; r < rounds; r++ {
			lo := r * chunk
			hi := lo + chunk
			if r == rounds-1 {
				hi = len(order)
			}
			for _, idx := range order[lo:hi] {
				s.Mark(0, idx)
			}
			if _, err := s.Snapshot(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.SetBytes(int64(len(working.Pix) * 4))
}

func BenchmarkPublishPathClone(b *testing.B) { benchPublishPath(b, SnapshotClone) }
func BenchmarkPublishPathTiles(b *testing.B) { benchPublishPath(b, SnapshotTiles) }
