package pix

import "fmt"

// HoldFill renders a displayable approximation from a partially computed
// image: every pixel not yet computed takes the value of its nearest
// computed ancestor in the 2D tree-sampling hierarchy (the pixel obtained
// by clearing low coordinate bits). Under the tree permutation of paper
// Figure 5 this turns a k-samples prefix into a complete low-resolution
// image whose resolution doubles as sampling proceeds — the approximate
// outputs visualized in the paper's Figures 16–18.
//
// filled[y*W+x] reports whether pixel (x, y) has been computed. The result
// is a fresh image; src is not modified. Pixels with no filled ancestor
// (possible only when nothing is filled) are left zero.
func HoldFill(src *Image, filled []bool) (*Image, error) {
	if len(filled) != src.W*src.H {
		return nil, fmt.Errorf("pix: HoldFill mask length %d != %d pixels", len(filled), src.W*src.H)
	}
	out := src.Clone()
	if src.W == 0 || src.H == 0 {
		return out, nil
	}
	maxLevel := uint(0)
	for dim := max(src.W, src.H) - 1; dim > 0; dim >>= 1 {
		maxLevel++
	}
	// Propagate values down the block hierarchy, coarse to fine: each
	// unfilled block origin inherits from its (transitively inherited)
	// parent origin. One write per origin per level — O(pixels) total —
	// with the same result as probing each pixel's ancestor chain.
	have := make([]bool, len(filled))
	copy(have, filled)
	for lvl := int(maxLevel) - 1; lvl >= 0; lvl-- {
		step := 1 << lvl
		parentMask := ^(step<<1 - 1)
		for y := 0; y < src.H; y += step {
			py := y & parentMask
			for x := 0; x < src.W; x += step {
				if have[y*src.W+x] {
					continue
				}
				px := x & parentMask
				if !have[py*src.W+px] {
					continue
				}
				srcOff := (py*src.W + px) * src.C
				dstOff := (y*src.W + x) * src.C
				copy(out.Pix[dstOff:dstOff+src.C], out.Pix[srcOff:srcOff+src.C])
				have[y*src.W+x] = true
			}
		}
	}
	return out, nil
}
