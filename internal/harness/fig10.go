package harness

import (
	"context"
	"fmt"
	"io"
	"time"

	"anytime/internal/core"
	"anytime/internal/fixpoint"
)

// Figure 10 of the paper compares five organizations of the same two-stage
// application: a sensor stage f that produces a fixed-point matrix F, and a
// dependent stage g that computes the product G = F · C.
//
//	baseline                      f16 ; g(F16)
//	f iterative                   f8 ; g(F8) ; f16 ; g(F16)
//	f iterative, async pipeline   f8 ; [f16 ∥ g(F8)] ; g(F16)
//	f diffusive, async pipeline   f8 ; [f+8 ∥ g(F8)] ; g(F16)
//	f diffusive, g distributive,  f8 ; [f+8 ∥ g(X1)] ; g(X2)
//	  synchronous pipeline
//
// The workload makes both effects of the paper's example physically real:
//
//   - Sensing is bit-serial: producing k bits of precision costs k plane
//     passes over the sensor, so the diffusive f computes 16 plane passes
//     total where the iterative f computes 8 + 16 = 24.
//   - The product is computed by shift-and-add over the set bits of F's
//     elements (a bit-serial multiplier), so g's cost scales with the
//     operand's occupied bit planes: g over the low-half update X2 costs
//     about half of g over the full-precision F16.
type Fig10Result struct {
	Org string
	// FirstOutput is the time until the first whole-application output
	// G-version is available.
	FirstOutput time.Duration
	// Precise is the time until the precise G is available.
	Precise time.Duration
	// NormFirst and NormPrecise are normalized to the baseline's precise
	// time.
	NormFirst, NormPrecise float64
}

// WriteFig10 prints the organization comparison as an aligned table.
func WriteFig10(w io.Writer, rows []Fig10Result) error {
	if _, err := fmt.Fprintf(w, "%-42s %12s %12s %10s %10s\n", "organization", "first-output", "precise", "norm-first", "norm-precise"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-42s %12v %12v %10.2f %10.2f\n", r.Org, r.FirstOutput.Round(time.Microsecond), r.Precise.Round(time.Microsecond), r.NormFirst, r.NormPrecise); err != nil {
			return err
		}
	}
	return nil
}

// fig10Workload fixes the sensor, the constant matrix C and the dimensions.
type fig10Workload struct {
	n, m       int // F is n x n, C is n x m
	sensorWork int // xorshift rounds per element sense
	seed       uint64
	c          *fixpoint.Matrix
}

const fig10Width = 16 // bit planes per element

func newFig10Workload(n int, seed uint64) (*fig10Workload, error) {
	wl := &fig10Workload{n: n, m: 96, sensorWork: 48, seed: seed}
	c, err := fixpoint.NewMatrix(n, wl.m)
	if err != nil {
		return nil, err
	}
	for i := range c.Data {
		c.Data[i] = int32(int8(uint8(uint64(i)*2654435761 + seed)))
	}
	wl.c = c
	return wl, nil
}

// sensorValue recomputes element i of the ground-truth matrix from the
// seed; the xorshift loop is the per-sample sensor processing cost, paid
// once per element per plane pass (half precision therefore costs half).
func (wl *fig10Workload) sensorValue(i int) int32 {
	x := wl.seed + uint64(i)*0x9E3779B97F4A7C15
	for r := 0; r < wl.sensorWork; r++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	return int32(int16(x)) // 16-bit signed fixed-point sample
}

// sensePlanes adds the signed contributions of bit planes
// [fig10Width-1-from … fig10Width-to] (MSB-first positions from, …, to-1)
// into dst. Each plane costs one full pass over the sensor.
func (wl *fig10Workload) sensePlanes(dst *fixpoint.Matrix, from, to int) {
	for p := from; p < to; p++ {
		plane := uint(fig10Width - 1 - p)
		for i := range dst.Data {
			dst.Data[i] += fixpoint.PlaneValue(wl.sensorValue(i), plane, fig10Width)
		}
	}
}

// senseMatrix computes a fresh F with the top `planes` planes (an iterative
// pass at that precision level).
func (wl *fig10Workload) senseMatrix(planes int) (*fixpoint.Matrix, error) {
	f, err := fixpoint.NewMatrix(wl.n, wl.n)
	if err != nil {
		return nil, err
	}
	wl.sensePlanes(f, 0, planes)
	return f, nil
}

// product computes F·C with a bit-serial shift-and-add multiplier: cost is
// proportional to the number of set bits in F's elements, so reduced-
// precision or plane-slice operands are genuinely cheaper.
func (wl *fig10Workload) product(f *fixpoint.Matrix) (*fixpoint.Matrix, error) {
	if f.Cols != wl.c.Rows {
		return nil, fmt.Errorf("harness: fig10 product shape mismatch")
	}
	out, err := fixpoint.NewMatrix(f.Rows, wl.m)
	if err != nil {
		return nil, err
	}
	wl.productInto(out, f)
	return out, nil
}

func (wl *fig10Workload) productInto(dst *fixpoint.Matrix, f *fixpoint.Matrix) {
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	for r := 0; r < f.Rows; r++ {
		drow := dst.Data[r*wl.m : (r+1)*wl.m]
		for k := 0; k < f.Cols; k++ {
			v := f.Data[r*f.Cols+k]
			if v == 0 {
				continue
			}
			crow := wl.c.Data[k*wl.m : (k+1)*wl.m]
			// Shift-and-add over the set planes of v.
			for p := uint(0); p < fig10Width; p++ {
				pv := fixpoint.PlaneValue(v, p, fig10Width)
				if pv == 0 {
					continue
				}
				if pv > 0 {
					for c2, cv := range crow {
						drow[c2] += cv << p
					}
				} else {
					for c2, cv := range crow {
						drow[c2] -= cv << p
					}
				}
			}
		}
	}
}

// Fig10Organizations measures time-to-first-output and time-to-precise for
// the five organizations. opt.Size is the matrix dimension n (default 160).
func Fig10Organizations(opt Options) ([]Fig10Result, error) {
	n := opt.Size
	if n == 0 {
		n = 160
	}
	seed := opt.Seed
	if seed == 0 {
		seed = 1
	}
	wl, err := newFig10Workload(n, seed)
	if err != nil {
		return nil, err
	}

	// Ground truth for output verification.
	f16, err := wl.senseMatrix(fig10Width)
	if err != nil {
		return nil, err
	}
	want, err := wl.product(f16)
	if err != nil {
		return nil, err
	}

	var rows []Fig10Result
	runs := []struct {
		org string
		fn  func() (first, precise time.Duration, final *fixpoint.Matrix, err error)
	}{
		{"baseline", wl.runBaseline},
		{"f iterative (sequential)", wl.runIterativeSequential},
		{"f iterative, async pipeline", wl.runIterativeAsync},
		{"f diffusive, async pipeline", wl.runDiffusiveAsync},
		{"f diffusive, g distributive, sync pipeline", wl.runDiffusiveSync},
	}
	var baselinePrecise time.Duration
	for i, r := range runs {
		first, precise, final, err := r.fn()
		if err != nil {
			return nil, fmt.Errorf("harness: fig10 %s: %w", r.org, err)
		}
		if !final.Equal(want) {
			return nil, fmt.Errorf("harness: fig10 %s produced a non-precise final output", r.org)
		}
		if i == 0 {
			baselinePrecise = precise
		}
		rows = append(rows, Fig10Result{
			Org:         r.org,
			FirstOutput: first,
			Precise:     precise,
			NormFirst:   float64(first) / float64(baselinePrecise),
			NormPrecise: float64(precise) / float64(baselinePrecise),
		})
	}
	return rows, nil
}

func (wl *fig10Workload) runBaseline() (time.Duration, time.Duration, *fixpoint.Matrix, error) {
	start := time.Now()
	f, err := wl.senseMatrix(fig10Width)
	if err != nil {
		return 0, 0, nil, err
	}
	g, err := wl.product(f)
	if err != nil {
		return 0, 0, nil, err
	}
	d := time.Since(start)
	return d, d, g, nil
}

func (wl *fig10Workload) runIterativeSequential() (time.Duration, time.Duration, *fixpoint.Matrix, error) {
	start := time.Now()
	f8, err := wl.senseMatrix(fig10Width / 2)
	if err != nil {
		return 0, 0, nil, err
	}
	if _, err := wl.product(f8); err != nil {
		return 0, 0, nil, err
	}
	first := time.Since(start)
	f16, err := wl.senseMatrix(fig10Width)
	if err != nil {
		return 0, 0, nil, err
	}
	g, err := wl.product(f16)
	if err != nil {
		return 0, 0, nil, err
	}
	return first, time.Since(start), g, nil
}

// runPipelined runs stage f (which publishes F snapshots) against an async
// consumer computing g on each, returning the publish times of g's first
// and final outputs.
func (wl *fig10Workload) runPipelined(fStage func(c *core.Context, out *core.Buffer[*fixpoint.Matrix]) error) (time.Duration, time.Duration, *fixpoint.Matrix, error) {
	fBuf := core.NewBuffer[*fixpoint.Matrix]("F", nil)
	gBuf := core.NewBuffer[*fixpoint.Matrix]("G", nil)
	a := core.New()
	if err := a.AddStage("f", func(c *core.Context) error {
		return fStage(c, fBuf)
	}); err != nil {
		return 0, 0, nil, err
	}
	if err := a.AddStage("g", func(c *core.Context) error {
		return core.AsyncConsume(c, fBuf, func(s core.Snapshot[*fixpoint.Matrix]) error {
			g, err := wl.product(s.Value)
			if err != nil {
				return err
			}
			_, err = gBuf.Publish(g, s.Final)
			return err
		})
	}); err != nil {
		return 0, 0, nil, err
	}
	return timePipeline(a, gBuf)
}

func (wl *fig10Workload) runIterativeAsync() (time.Duration, time.Duration, *fixpoint.Matrix, error) {
	return wl.runPipelined(func(c *core.Context, out *core.Buffer[*fixpoint.Matrix]) error {
		return core.Iterative(c, out, []func() (*fixpoint.Matrix, error){
			func() (*fixpoint.Matrix, error) { return wl.senseMatrix(fig10Width / 2) },
			func() (*fixpoint.Matrix, error) { return wl.senseMatrix(fig10Width) },
		})
	})
}

func (wl *fig10Workload) runDiffusiveAsync() (time.Duration, time.Duration, *fixpoint.Matrix, error) {
	return wl.runPipelined(func(c *core.Context, out *core.Buffer[*fixpoint.Matrix]) error {
		working, err := fixpoint.NewMatrix(wl.n, wl.n)
		if err != nil {
			return err
		}
		return core.Diffusive(c, out, 2,
			func(pos int) error {
				wl.sensePlanes(working, pos*fig10Width/2, (pos+1)*fig10Width/2)
				return nil
			},
			func(processed int) (*fixpoint.Matrix, error) { return working.Clone(), nil },
			core.RoundConfig{Granularity: 1})
	})
}

func (wl *fig10Workload) runDiffusiveSync() (time.Duration, time.Duration, *fixpoint.Matrix, error) {
	stream, err := core.NewStream[*fixpoint.Matrix](1)
	if err != nil {
		return 0, 0, nil, err
	}
	gBuf := core.NewBuffer[*fixpoint.Matrix]("G", nil)
	a := core.New()
	if err := a.AddStage("f", func(c *core.Context) error {
		for half := 0; half < 2; half++ {
			if err := c.Checkpoint(); err != nil {
				return err
			}
			x, err := fixpoint.NewMatrix(wl.n, wl.n)
			if err != nil {
				return err
			}
			wl.sensePlanes(x, half*fig10Width/2, (half+1)*fig10Width/2)
			if err := stream.Send(c, core.Update[*fixpoint.Matrix]{Seq: half + 1, Data: x, Last: half == 1}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return 0, 0, nil, err
	}
	if err := a.AddStage("g", func(c *core.Context) error {
		acc, err := fixpoint.NewMatrix(wl.n, wl.m)
		if err != nil {
			return err
		}
		return core.SyncConsume(c, stream, func(u core.Update[*fixpoint.Matrix]) error {
			part, err := wl.product(u.Data)
			if err != nil {
				return err
			}
			if err := fixpoint.MatAdd(acc, part); err != nil {
				return err
			}
			_, err = gBuf.Publish(acc.Clone(), u.Last)
			return err
		})
	}); err != nil {
		return 0, 0, nil, err
	}
	return timePipeline(a, gBuf)
}

// timePipeline starts the automaton and reports the wall times of the first
// and final publishes to gBuf, plus the final matrix.
func timePipeline(a *core.Automaton, gBuf *core.Buffer[*fixpoint.Matrix]) (time.Duration, time.Duration, *fixpoint.Matrix, error) {
	var first, precise time.Duration
	var start time.Time
	gBuf.OnPublish(func(s core.Snapshot[*fixpoint.Matrix]) {
		at := time.Since(start)
		if s.Version == 1 {
			first = at
		}
		if s.Final {
			precise = at
		}
	})
	start = time.Now()
	if err := a.Start(context.Background()); err != nil {
		return 0, 0, nil, err
	}
	if err := a.Wait(); err != nil {
		return 0, 0, nil, err
	}
	snap, ok := gBuf.Latest()
	if !ok || !snap.Final {
		return 0, 0, nil, fmt.Errorf("harness: pipeline produced no final output")
	}
	return first, precise, snap.Value, nil
}
