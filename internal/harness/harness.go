// Package harness drives the paper's evaluation (§IV): it times precise
// baselines, records runtime–accuracy profiles of running automata
// (Figures 11–15), halts automata at a target fraction of the baseline
// runtime to grab sample outputs (Figures 16–18), sweeps sample-size versus
// accuracy under reduced precision and approximate storage (Figures 19–20),
// and compares the automaton organizations of the §III-D summary example
// (Figure 10).
//
// The paper generates its profiles "from multiple runs, executing each
// automaton and halting it after some time to evaluate its output
// accuracy". This harness instead attaches an observer to the output buffer
// and records every published snapshot of a single run — an equivalent
// measurement (each snapshot is exactly what a halt at that moment would
// observe, by Property 3) at a fraction of the cost.
package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"anytime/internal/core"
	"anytime/internal/metrics"
	"anytime/internal/pix"
)

// Point is one observed output of a running automaton.
type Point struct {
	// Runtime is the elapsed wall time at publication, normalized to the
	// precise baseline's runtime (the x-axis of Figures 11–15).
	Runtime float64
	// SNR is the output accuracy in decibels relative to the precise
	// output (+Inf when bit-exact).
	SNR float64
	// Fraction is the portion of the sample processed, when the producing
	// stage reports one (the x-axis of Figures 19–20); otherwise 0.
	Fraction float64
}

// Profile is the measured runtime–accuracy curve of one automaton run.
type Profile struct {
	App      string
	Baseline time.Duration
	Total    time.Duration // automaton wall time to precise output
	Points   []Point
}

// PreciseAt returns the normalized runtime at which the profile first
// reached +Inf dB, or 0 if it never did.
func (p Profile) PreciseAt() float64 {
	for _, pt := range p.Points {
		if pt.SNR == metrics.InfDB {
			return pt.Runtime
		}
	}
	return 0
}

// BestUnder returns the best SNR among points with normalized runtime at
// most limit, and whether any such point exists.
func (p Profile) BestUnder(limit float64) (float64, bool) {
	best, ok := 0.0, false
	for _, pt := range p.Points {
		if pt.Runtime <= limit && (!ok || pt.SNR > best) {
			best, ok = pt.SNR, true
		}
	}
	return best, ok
}

// WriteCSV emits the profile as "runtime,snr_db,fraction" rows.
func (p Profile) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s: baseline %v, total %v\n", p.App, p.Baseline, p.Total); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "runtime,snr_db,fraction"); err != nil {
		return err
	}
	for _, pt := range p.Points {
		if _, err := fmt.Fprintf(w, "%.4f,%s,%.4f\n", pt.Runtime, metrics.FormatDB(pt.SNR), pt.Fraction); err != nil {
			return err
		}
	}
	return nil
}

// Collector accumulates timestamped output snapshots during a run and
// converts them to a Profile afterwards, so SNR computation never delays
// the pipeline being measured.
type Collector struct {
	ref   *pix.Image
	total int // total sample size for Fraction, 0 if unused
	copy  bool

	mu     sync.Mutex
	start  time.Time
	points []rawPoint
}

type rawPoint struct {
	at        time.Duration
	img       *pix.Image
	processed int
}

// NewCollector returns a collector comparing snapshots against the precise
// reference output. sampleTotal, if nonzero, scales recorded processed
// counts into Fraction.
func NewCollector(ref *pix.Image, sampleTotal int) *Collector {
	return &Collector{ref: ref, total: sampleTotal}
}

// CopyOnRecord makes Record deep-copy each snapshot instead of retaining
// the published pointer. Required when the observed stage publishes through
// the zero-copy tile ring (pix.SnapshotTiles), whose snapshots are reused
// after ring-depth further publishes; a collector retains images until
// Finish, far past that window. Call it before the automaton starts.
func (c *Collector) CopyOnRecord() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.copy = true
}

// Begin marks the automaton's start time.
func (c *Collector) Begin() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.start = time.Now()
	c.points = c.points[:0]
}

// Record stores one published snapshot. Unless CopyOnRecord is set, img
// must stay immutable after the call (clone-mode automaton snapshots are;
// tile-ring snapshots are not — see CopyOnRecord). processed may be 0 when
// the producing stage does not report sample sizes.
func (c *Collector) Record(processed int, img *pix.Image) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.copy {
		img = img.Clone()
	}
	c.points = append(c.points, rawPoint{at: now.Sub(c.start), img: img, processed: processed})
}

// Finish computes the profile, normalizing runtimes by baseline.
func (c *Collector) Finish(app string, baseline time.Duration) (Profile, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if baseline <= 0 {
		return Profile{}, fmt.Errorf("harness: nonpositive baseline %v", baseline)
	}
	p := Profile{App: app, Baseline: baseline}
	for _, rp := range c.points {
		db, err := metrics.SNR(c.ref.Pix, rp.img.Pix)
		if err != nil {
			return Profile{}, err
		}
		pt := Point{
			Runtime: float64(rp.at) / float64(baseline),
			SNR:     db,
		}
		if c.total > 0 {
			pt.Fraction = float64(rp.processed) / float64(c.total)
		}
		p.Points = append(p.Points, pt)
		if rp.at > p.Total {
			p.Total = rp.at
		}
	}
	return p, nil
}

// TimeBaseline runs fn reps times and returns the fastest duration (the
// standard way to suppress scheduling noise). reps must be positive.
func TimeBaseline(fn func() error, reps int) (time.Duration, error) {
	if reps < 1 {
		return 0, fmt.Errorf("harness: reps %d must be positive", reps)
	}
	best := time.Duration(0)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		d := time.Since(start)
		if i == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// RunToCompletion starts the automaton, waits for its precise output, and
// returns the total wall time.
func RunToCompletion(a *core.Automaton) (time.Duration, error) {
	start := time.Now()
	if err := a.Start(context.Background()); err != nil {
		return 0, err
	}
	if err := a.Wait(); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// RunUntil starts the automaton, stops it after d (unless it finishes
// first), and returns the latest output snapshot — the paper's
// halt-and-evaluate methodology for Figures 16–18. If the deadline lands
// before the automaton's first publish, RunUntil waits for that first
// snapshot: the earliest valid halt point of an anytime computation is its
// first available output.
func RunUntil(a *core.Automaton, out *core.Buffer[*pix.Image], d time.Duration) (core.Snapshot[*pix.Image], error) {
	if err := a.Start(context.Background()); err != nil {
		return core.Snapshot[*pix.Image]{}, err
	}
	select {
	case <-a.Done():
	case <-time.After(d):
	}
	if _, ok := out.Latest(); !ok {
		// Nothing published yet; wait for the first output (bounded by the
		// automaton finishing, in which case WaitNewer errors and Latest
		// below reports the truth).
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			<-a.Done()
			cancel()
		}()
		_, _ = out.WaitNewer(ctx, 0)
		cancel()
	}
	a.Stop()
	snap, ok := out.Latest()
	if !ok {
		return snap, fmt.Errorf("harness: automaton finished without publishing any output (halt after %v)", d)
	}
	return snap, nil
}

// MarshalJSON renders the profile for external tooling: points as
// [runtime, snr_db, fraction] triples with +Inf serialized as "inf".
func (p Profile) MarshalJSON() ([]byte, error) {
	type jsonPoint struct {
		Runtime  float64 `json:"runtime"`
		SNR      string  `json:"snr_db"`
		Fraction float64 `json:"fraction,omitempty"`
	}
	pts := make([]jsonPoint, len(p.Points))
	for i, pt := range p.Points {
		pts[i] = jsonPoint{Runtime: pt.Runtime, SNR: metrics.FormatDB(pt.SNR), Fraction: pt.Fraction}
	}
	return json.Marshal(struct {
		App        string      `json:"app"`
		BaselineNS int64       `json:"baseline_ns"`
		TotalNS    int64       `json:"total_ns"`
		Points     []jsonPoint `json:"points"`
	}{p.App, int64(p.Baseline), int64(p.Total), pts})
}
