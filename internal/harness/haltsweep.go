package harness

import (
	"fmt"
	"time"

	"anytime/internal/core"
	"anytime/internal/metrics"
	"anytime/internal/pix"
)

// HaltSweep reproduces the paper's literal measurement procedure for the
// runtime–accuracy figures: "executing each automaton and halting it after
// some time to evaluate its output accuracy", once per requested halt
// fraction. build must return a fresh automaton each call; ref is the
// precise output; fractions are normalized halt points (values >= 1 let
// the run finish if it can).
//
// The observer-based Collector measures the same curve from a single run;
// TestHaltSweepMatchesObserverProfile validates that equivalence.
func HaltSweep(build func() (*core.Automaton, *core.Buffer[*pix.Image], error), ref *pix.Image, baseline time.Duration, fractions []float64) (Profile, error) {
	if baseline <= 0 {
		return Profile{}, fmt.Errorf("harness: nonpositive baseline %v", baseline)
	}
	if len(fractions) == 0 {
		return Profile{}, fmt.Errorf("harness: no halt fractions")
	}
	p := Profile{App: "halt-sweep", Baseline: baseline}
	for _, frac := range fractions {
		if frac <= 0 {
			return Profile{}, fmt.Errorf("harness: nonpositive halt fraction %v", frac)
		}
		a, out, err := build()
		if err != nil {
			return Profile{}, err
		}
		start := time.Now()
		snap, err := RunUntil(a, out, time.Duration(frac*float64(baseline)))
		elapsed := time.Since(start)
		if err != nil {
			return Profile{}, err
		}
		db, err := metrics.SNR(ref.Pix, snap.Value.Pix)
		if err != nil {
			return Profile{}, err
		}
		p.Points = append(p.Points, Point{
			Runtime: float64(elapsed) / float64(baseline),
			SNR:     db,
		})
		if elapsed > p.Total {
			p.Total = elapsed
		}
	}
	return p, nil
}
