package harness

import (
	"fmt"
	"io"
	"time"

	"anytime/internal/apps/conv2d"
	"anytime/internal/apps/debayer"
	"anytime/internal/apps/dwt53"
	"anytime/internal/apps/histeq"
	"anytime/internal/apps/kmeans"
	"anytime/internal/core"
	"anytime/internal/metrics"
	"anytime/internal/pix"
)

// Options configures the figure experiments.
type Options struct {
	// Size is the image side length. Default 256 (the recorded
	// EXPERIMENTS.md run uses 512, matching the paper's "large image
	// input sets" at laptop scale).
	Size int
	// Workers is the worker count per parallel stage. Default 4.
	Workers int
	// Seed drives the synthetic inputs. Default 1.
	Seed uint64
	// BaselineReps is how many baseline timings to take (fastest wins).
	// Default 3.
	BaselineReps int
}

func (o Options) withDefaults() Options {
	if o.Size == 0 {
		o.Size = 256
	}
	if o.Workers == 0 {
		o.Workers = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.BaselineReps == 0 {
		o.BaselineReps = 3
	}
	return o
}

// Fig11Conv2D measures the runtime–accuracy profile of the 2dconv anytime
// automaton (paper Figure 11).
func Fig11Conv2D(opt Options) (Profile, error) {
	opt = opt.withDefaults()
	in, err := pix.SyntheticGray(opt.Size, opt.Size, opt.Seed)
	if err != nil {
		return Profile{}, err
	}
	baseCfg := conv2d.Config{Workers: opt.Workers}
	ref, err := conv2d.Precise(in, baseCfg)
	if err != nil {
		return Profile{}, err
	}
	baseline, err := TimeBaseline(func() error {
		_, err := conv2d.Precise(in, baseCfg)
		return err
	}, opt.BaselineReps)
	if err != nil {
		return Profile{}, err
	}
	col := NewCollector(ref, 0)
	run, err := conv2d.New(in, conv2d.Config{
		Workers:    opt.Workers,
		OnSnapshot: func(processed int, img *pix.Image) { col.Record(processed, img) },
	})
	if err != nil {
		return Profile{}, err
	}
	col.Begin()
	if _, err := RunToCompletion(run.Automaton); err != nil {
		return Profile{}, err
	}
	return col.Finish("2dconv", baseline)
}

// Fig12Histeq measures the runtime–accuracy profile of the histeq automaton
// (paper Figure 12).
func Fig12Histeq(opt Options) (Profile, error) {
	opt = opt.withDefaults()
	in, err := pix.SyntheticGray(opt.Size, opt.Size, opt.Seed)
	if err != nil {
		return Profile{}, err
	}
	baseCfg := histeq.Config{Workers: opt.Workers}
	ref, err := histeq.Precise(in, baseCfg)
	if err != nil {
		return Profile{}, err
	}
	baseline, err := TimeBaseline(func() error {
		_, err := histeq.Precise(in, baseCfg)
		return err
	}, opt.BaselineReps)
	if err != nil {
		return Profile{}, err
	}
	col := NewCollector(ref, 0)
	run, err := histeq.New(in, histeq.Config{
		Workers:    opt.Workers,
		OnSnapshot: func(img *pix.Image) { col.Record(0, img) },
	})
	if err != nil {
		return Profile{}, err
	}
	col.Begin()
	if _, err := RunToCompletion(run.Automaton); err != nil {
		return Profile{}, err
	}
	return col.Finish("histeq", baseline)
}

// Fig13DWT53 measures the runtime–accuracy profile of the dwt53 automaton
// (paper Figure 13).
func Fig13DWT53(opt Options) (Profile, error) {
	opt = opt.withDefaults()
	in, err := pix.SyntheticGray(opt.Size, opt.Size, opt.Seed)
	if err != nil {
		return Profile{}, err
	}
	baseCfg := dwt53.Config{Workers: opt.Workers}
	// The reversible 5/3 baseline reconstructs the input exactly, so the
	// input is the accuracy reference.
	baseline, err := TimeBaseline(func() error {
		_, err := dwt53.Precise(in, baseCfg)
		return err
	}, opt.BaselineReps)
	if err != nil {
		return Profile{}, err
	}
	col := NewCollector(in, 0)
	run, err := dwt53.New(in, dwt53.Config{
		Workers: opt.Workers,
		OnPass:  func(stride int, img *pix.Image) { col.Record(0, img) },
	})
	if err != nil {
		return Profile{}, err
	}
	col.Begin()
	if _, err := RunToCompletion(run.Automaton); err != nil {
		return Profile{}, err
	}
	return col.Finish("dwt53", baseline)
}

// Fig14Debayer measures the runtime–accuracy profile of the debayer
// automaton (paper Figure 14).
func Fig14Debayer(opt Options) (Profile, error) {
	opt = opt.withDefaults()
	rgb, err := pix.SyntheticRGB(opt.Size, opt.Size, opt.Seed)
	if err != nil {
		return Profile{}, err
	}
	in, err := pix.BayerGRBG(rgb)
	if err != nil {
		return Profile{}, err
	}
	baseCfg := debayer.Config{Workers: opt.Workers}
	ref, err := debayer.Precise(in, baseCfg)
	if err != nil {
		return Profile{}, err
	}
	baseline, err := TimeBaseline(func() error {
		_, err := debayer.Precise(in, baseCfg)
		return err
	}, opt.BaselineReps)
	if err != nil {
		return Profile{}, err
	}
	col := NewCollector(ref, 0)
	run, err := debayer.New(in, debayer.Config{
		Workers:    opt.Workers,
		OnSnapshot: func(processed int, img *pix.Image) { col.Record(processed, img) },
	})
	if err != nil {
		return Profile{}, err
	}
	col.Begin()
	if _, err := RunToCompletion(run.Automaton); err != nil {
		return Profile{}, err
	}
	return col.Finish("debayer", baseline)
}

// Fig15Kmeans measures the runtime–accuracy profile of the kmeans automaton
// (paper Figure 15).
func Fig15Kmeans(opt Options) (Profile, error) {
	opt = opt.withDefaults()
	in, err := pix.SyntheticRGB(opt.Size, opt.Size, opt.Seed)
	if err != nil {
		return Profile{}, err
	}
	baseCfg := kmeans.Config{Workers: opt.Workers}
	ref, err := kmeans.Precise(in, baseCfg)
	if err != nil {
		return Profile{}, err
	}
	baseline, err := TimeBaseline(func() error {
		_, err := kmeans.Precise(in, baseCfg)
		return err
	}, opt.BaselineReps)
	if err != nil {
		return Profile{}, err
	}
	col := NewCollector(ref, 0)
	run, err := kmeans.New(in, kmeans.Config{
		Workers:    opt.Workers,
		OnSnapshot: func(img *pix.Image) { col.Record(0, img) },
	})
	if err != nil {
		return Profile{}, err
	}
	col.Begin()
	if _, err := RunToCompletion(run.Automaton); err != nil {
		return Profile{}, err
	}
	return col.Finish("kmeans", baseline)
}

// SnapshotResult is the output of a halt-and-evaluate run (Figures 16–18):
// the image the user would see stopping the automaton at the target
// fraction of the baseline runtime.
type SnapshotResult struct {
	App      string
	Target   float64 // halt point as a fraction of baseline runtime
	SNR      float64 // accuracy of the halted output
	Final    bool    // whether the automaton had already finished
	Image    *pix.Image
	Baseline time.Duration
}

// Write prints the result in the paper's caption style.
func (r SnapshotResult) Write(w io.Writer) error {
	_, err := fmt.Fprintf(w, "%s @ %.0f%% runtime: SNR %s dB (baseline %v, final=%v)\n",
		r.App, r.Target*100, metrics.FormatDB(r.SNR), r.Baseline, r.Final)
	return err
}

// Fig16Conv2DSnapshot halts the 2dconv automaton at the paper's 21% of
// baseline runtime (Figure 16, paper: SNR 15.8 dB).
func Fig16Conv2DSnapshot(opt Options) (SnapshotResult, error) {
	opt = opt.withDefaults()
	in, err := pix.SyntheticGray(opt.Size, opt.Size, opt.Seed)
	if err != nil {
		return SnapshotResult{}, err
	}
	cfg := conv2d.Config{Workers: opt.Workers}
	ref, err := conv2d.Precise(in, cfg)
	if err != nil {
		return SnapshotResult{}, err
	}
	baseline, err := TimeBaseline(func() error {
		_, err := conv2d.Precise(in, cfg)
		return err
	}, opt.BaselineReps)
	if err != nil {
		return SnapshotResult{}, err
	}
	run, err := conv2d.New(in, cfg)
	if err != nil {
		return SnapshotResult{}, err
	}
	return haltAndScore("2dconv", 0.21, baseline, ref, run.Automaton, run.Out)
}

// Fig17DWT53Snapshot halts the dwt53 automaton at the paper's 78% of
// baseline runtime (Figure 17, paper: SNR 16.8 dB).
func Fig17DWT53Snapshot(opt Options) (SnapshotResult, error) {
	opt = opt.withDefaults()
	in, err := pix.SyntheticGray(opt.Size, opt.Size, opt.Seed)
	if err != nil {
		return SnapshotResult{}, err
	}
	cfg := dwt53.Config{Workers: opt.Workers}
	baseline, err := TimeBaseline(func() error {
		_, err := dwt53.Precise(in, cfg)
		return err
	}, opt.BaselineReps)
	if err != nil {
		return SnapshotResult{}, err
	}
	run, err := dwt53.New(in, cfg)
	if err != nil {
		return SnapshotResult{}, err
	}
	return haltAndScore("dwt53", 0.78, baseline, in, run.Automaton, run.Out)
}

// Fig18KmeansSnapshot halts the kmeans automaton at the paper's 63% of
// baseline runtime (Figure 18, paper: SNR 16.7 dB).
func Fig18KmeansSnapshot(opt Options) (SnapshotResult, error) {
	opt = opt.withDefaults()
	in, err := pix.SyntheticRGB(opt.Size, opt.Size, opt.Seed)
	if err != nil {
		return SnapshotResult{}, err
	}
	cfg := kmeans.Config{Workers: opt.Workers}
	ref, err := kmeans.Precise(in, cfg)
	if err != nil {
		return SnapshotResult{}, err
	}
	baseline, err := TimeBaseline(func() error {
		_, err := kmeans.Precise(in, cfg)
		return err
	}, opt.BaselineReps)
	if err != nil {
		return SnapshotResult{}, err
	}
	run, err := kmeans.New(in, cfg)
	if err != nil {
		return SnapshotResult{}, err
	}
	return haltAndScore("kmeans", 0.63, baseline, ref, run.Automaton, run.Out)
}

func haltAndScore(app string, frac float64, baseline time.Duration, ref *pix.Image, a *core.Automaton, out *core.Buffer[*pix.Image]) (SnapshotResult, error) {
	snap, err := RunUntil(a, out, time.Duration(frac*float64(baseline)))
	if err != nil {
		return SnapshotResult{}, err
	}
	db, err := metrics.SNR(ref.Pix, snap.Value.Pix)
	if err != nil {
		return SnapshotResult{}, err
	}
	return SnapshotResult{
		App:      app,
		Target:   frac,
		SNR:      db,
		Final:    snap.Final,
		Image:    snap.Value,
		Baseline: baseline,
	}, nil
}

// Sweep is one labelled sample-size/accuracy series of Figures 19–20.
type Sweep struct {
	Label  string
	Points []Point // Fraction carries the sample size axis
}

// WriteCSV emits "label,fraction,snr_db" rows for a set of sweeps.
func WriteSweepsCSV(w io.Writer, sweeps []Sweep) error {
	if _, err := fmt.Fprintln(w, "label,fraction,snr_db"); err != nil {
		return err
	}
	for _, s := range sweeps {
		for _, pt := range s.Points {
			if _, err := fmt.Fprintf(w, "%s,%.4f,%s\n", s.Label, pt.Fraction, metrics.FormatDB(pt.SNR)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Fig19Precision sweeps sample size versus accuracy for 2dconv at 8-, 6-,
// 4- and 2-bit pixel precision (paper Figure 19; the paper reports 37.9 dB
// at 6 bits and 24.2 dB at 4 bits for the full sample).
func Fig19Precision(opt Options) ([]Sweep, error) {
	opt = opt.withDefaults()
	in, err := pix.SyntheticGray(opt.Size, opt.Size, opt.Seed)
	if err != nil {
		return nil, err
	}
	ref, err := conv2d.Precise(in, conv2d.Config{Workers: opt.Workers})
	if err != nil {
		return nil, err
	}
	var sweeps []Sweep
	for _, bits := range []uint{8, 6, 4, 2} {
		s, err := conv2dSweep(in, ref, fmt.Sprintf("%d bits", bits), conv2d.Config{
			Workers:   opt.Workers,
			PixelBits: bits,
		})
		if err != nil {
			return nil, err
		}
		sweeps = append(sweeps, s)
	}
	return sweeps, nil
}

// Fig20Storage sweeps sample size versus accuracy for 2dconv with SRAM
// read-upset probabilities 0, 1e-7 and 1e-5 (paper Figure 20's 0%,
// 0.00001% and 0.001%).
func Fig20Storage(opt Options) ([]Sweep, error) {
	opt = opt.withDefaults()
	in, err := pix.SyntheticGray(opt.Size, opt.Size, opt.Seed)
	if err != nil {
		return nil, err
	}
	ref, err := conv2d.Precise(in, conv2d.Config{Workers: opt.Workers})
	if err != nil {
		return nil, err
	}
	var sweeps []Sweep
	probs := []struct {
		p     float64
		label string
	}{
		{0, "0%"},
		{1e-7, "0.00001%"},
		{1e-5, "0.001%"},
	}
	for _, pr := range probs {
		cfg := conv2d.Config{
			Workers: opt.Workers,
			Storage: &conv2d.StorageConfig{Prob: pr.p, Seed: opt.Seed},
		}
		s, err := conv2dSweep(in, ref, pr.label, cfg)
		if err != nil {
			return nil, err
		}
		sweeps = append(sweeps, s)
	}
	return sweeps, nil
}

func conv2dSweep(in, ref *pix.Image, label string, cfg conv2d.Config) (Sweep, error) {
	col := NewCollector(ref, in.Pixels())
	cfg.OnSnapshot = func(processed int, img *pix.Image) { col.Record(processed, img) }
	run, err := conv2d.New(in, cfg)
	if err != nil {
		return Sweep{}, err
	}
	col.Begin()
	if _, err := RunToCompletion(run.Automaton); err != nil {
		return Sweep{}, err
	}
	profile, err := col.Finish(label, time.Second)
	if err != nil {
		return Sweep{}, err
	}
	return Sweep{Label: label, Points: profile.Points}, nil
}
