package harness

import (
	"bytes"
	"encoding/json"

	"math"
	"strings"
	"testing"
	"time"

	"anytime/internal/core"
	"anytime/internal/metrics"
	"anytime/internal/pix"
)

// smallOpt keeps unit-test experiment runs fast.
var smallOpt = Options{Size: 48, Workers: 2, Seed: 3, BaselineReps: 1}

func TestTimeBaseline(t *testing.T) {
	d, err := TimeBaseline(func() error {
		time.Sleep(2 * time.Millisecond)
		return nil
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d < time.Millisecond {
		t.Errorf("baseline %v implausibly fast", d)
	}
	if _, err := TimeBaseline(func() error { return nil }, 0); err == nil {
		t.Error("reps=0 accepted")
	}
}

func TestCollectorProfile(t *testing.T) {
	ref := pix.MustNew(2, 2, 1)
	ref.Fill(10)
	near := pix.MustNew(2, 2, 1)
	near.Fill(9)
	col := NewCollector(ref, 4)
	col.Begin()
	col.Record(2, near)
	col.Record(4, ref.Clone())
	p, err := col.Finish("test", 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Points) != 2 {
		t.Fatalf("%d points", len(p.Points))
	}
	if p.Points[0].Fraction != 0.5 || p.Points[1].Fraction != 1.0 {
		t.Errorf("fractions %v %v", p.Points[0].Fraction, p.Points[1].Fraction)
	}
	if !math.IsInf(p.Points[1].SNR, 1) {
		t.Errorf("exact point SNR %v", p.Points[1].SNR)
	}
	if p.PreciseAt() == 0 {
		t.Error("PreciseAt found no precise point")
	}
	if best, ok := p.BestUnder(100); !ok || !math.IsInf(best, 1) {
		t.Errorf("BestUnder = %v %v", best, ok)
	}
	var buf bytes.Buffer
	if err := p.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "runtime,snr_db,fraction") {
		t.Error("CSV header missing")
	}
	if !strings.Contains(buf.String(), "inf") {
		t.Error("CSV missing inf row")
	}
}

func TestCollectorFinishRejectsBadBaseline(t *testing.T) {
	col := NewCollector(pix.MustNew(1, 1, 1), 0)
	if _, err := col.Finish("x", 0); err == nil {
		t.Error("zero baseline accepted")
	}
}

func TestRunUntilStopsAutomaton(t *testing.T) {
	out := core.NewBuffer[*pix.Image]("out", nil)
	a := core.New()
	if err := a.AddStage("slow", func(c *core.Context) error {
		img := pix.MustNew(1, 1, 1)
		for i := 0; ; i++ {
			if err := c.Checkpoint(); err != nil {
				return err
			}
			if _, err := out.Publish(img.Clone(), false); err != nil {
				return err
			}
			time.Sleep(time.Millisecond)
		}
	}); err != nil {
		t.Fatal(err)
	}
	snap, err := RunUntil(a, out, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Final {
		t.Error("snap marked final")
	}
	select {
	case <-a.Done():
	case <-time.After(time.Second):
		t.Fatal("RunUntil left the automaton running")
	}
}

func TestFig11Conv2DSmall(t *testing.T) {
	p, err := Fig11Conv2D(smallOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Points) < 4 {
		t.Fatalf("too few points: %d", len(p.Points))
	}
	last := p.Points[len(p.Points)-1]
	if !math.IsInf(last.SNR, 1) {
		t.Errorf("final point SNR %v, want +Inf", last.SNR)
	}
	for i := 1; i < len(p.Points); i++ {
		if p.Points[i].Runtime < p.Points[i-1].Runtime {
			t.Error("runtimes not monotone")
		}
	}
}

func TestFig12HisteqSmall(t *testing.T) {
	p, err := Fig12Histeq(smallOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(p.Points[len(p.Points)-1].SNR, 1) {
		t.Error("histeq never reached precise output")
	}
}

func TestFig13DWT53Small(t *testing.T) {
	p, err := Fig13DWT53(smallOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(p.Points[len(p.Points)-1].SNR, 1) {
		t.Error("dwt53 never reached precise output")
	}
}

func TestFig14DebayerSmall(t *testing.T) {
	p, err := Fig14Debayer(smallOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(p.Points[len(p.Points)-1].SNR, 1) {
		t.Error("debayer never reached precise output")
	}
}

func TestFig15KmeansSmall(t *testing.T) {
	p, err := Fig15Kmeans(smallOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(p.Points[len(p.Points)-1].SNR, 1) {
		t.Error("kmeans never reached precise output")
	}
}

func TestFig19PrecisionSmall(t *testing.T) {
	sweeps, err := Fig19Precision(smallOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweeps) != 4 {
		t.Fatalf("%d sweeps", len(sweeps))
	}
	finalOf := func(s Sweep) float64 { return s.Points[len(s.Points)-1].SNR }
	if !math.IsInf(finalOf(sweeps[0]), 1) {
		t.Errorf("8-bit sweep final = %v", finalOf(sweeps[0]))
	}
	if !(finalOf(sweeps[1]) > finalOf(sweeps[2]) && finalOf(sweeps[2]) > finalOf(sweeps[3])) {
		t.Errorf("precision ordering violated: %v %v %v", finalOf(sweeps[1]), finalOf(sweeps[2]), finalOf(sweeps[3]))
	}
	var buf bytes.Buffer
	if err := WriteSweepsCSV(&buf, sweeps); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "6 bits") {
		t.Error("sweep CSV missing label")
	}
}

func TestFig20StorageSmall(t *testing.T) {
	sweeps, err := Fig20Storage(Options{Size: 64, Workers: 2, Seed: 3, BaselineReps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweeps) != 3 {
		t.Fatalf("%d sweeps", len(sweeps))
	}
	finalOf := func(s Sweep) float64 { return s.Points[len(s.Points)-1].SNR }
	if !math.IsInf(finalOf(sweeps[0]), 1) {
		t.Errorf("p=0 sweep final = %v", finalOf(sweeps[0]))
	}
	// 1e-7 on a small image may inject zero faults; 1e-5 must not beat it.
	if finalOf(sweeps[1]) < finalOf(sweeps[2]) {
		t.Errorf("fault ordering violated: p=1e-7 %v < p=1e-5 %v", finalOf(sweeps[1]), finalOf(sweeps[2]))
	}
}

func TestFig16SnapshotSmall(t *testing.T) {
	r, err := Fig16Conv2DSnapshot(Options{Size: 128, Workers: 2, Seed: 3, BaselineReps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Image == nil {
		t.Fatal("no image")
	}
	if r.SNR < 0 {
		t.Errorf("snapshot SNR %v", r.SNR)
	}
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2dconv") {
		t.Error("summary missing app name")
	}
}

func TestFig10OrganizationsSmall(t *testing.T) {
	rows, err := Fig10Organizations(Options{Size: 64, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	base := rows[0]
	if base.NormPrecise != 1.0 {
		t.Errorf("baseline norm %v", base.NormPrecise)
	}
	// Every anytime organization must deliver a first output before it
	// delivers the precise one.
	for _, r := range rows[1:] {
		if r.FirstOutput > r.Precise {
			t.Errorf("%s: first output after precise", r.Org)
		}
	}
	// The iterative sequential organization pays full redundancy: precise
	// strictly later than baseline.
	if rows[1].NormPrecise <= 1.0 {
		t.Errorf("iterative sequential norm-precise %v, want > 1", rows[1].NormPrecise)
	}
	var buf bytes.Buffer
	if err := WriteFig10(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "baseline") {
		t.Error("table missing baseline row")
	}
}

func TestSNRHelperAgreement(t *testing.T) {
	// Collector must agree with metrics.SNR on recorded images.
	ref, err := pix.SyntheticGray(16, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	approx := ref.Clone()
	approx.Pix[0] += 8
	col := NewCollector(ref, 0)
	col.Begin()
	col.Record(0, approx)
	p, err := col.Finish("x", time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := metrics.SNR(ref.Pix, approx.Pix)
	if p.Points[0].SNR != want {
		t.Errorf("collector SNR %v != metrics %v", p.Points[0].SNR, want)
	}
}

func TestProfilePlot(t *testing.T) {
	p := Profile{App: "demo", Points: []Point{
		{Runtime: 0.2, SNR: 10},
		{Runtime: 0.6, SNR: 20},
		{Runtime: 1.4, SNR: math.Inf(1)},
	}}
	var buf bytes.Buffer
	if err := p.Plot(&buf, 40, 8); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "#") {
		t.Errorf("plot missing precise mark:\n%s", out)
	}
	if strings.Count(out, "*") != 2 {
		t.Errorf("plot wants 2 finite marks:\n%s", out)
	}
	if !strings.Contains(out, "|") {
		t.Errorf("plot missing baseline column:\n%s", out)
	}
	var empty bytes.Buffer
	if err := (Profile{App: "x"}).Plot(&empty, 40, 8); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), "no points") {
		t.Error("empty profile plot wrong")
	}
}

func TestProfileMarshalJSON(t *testing.T) {
	p := Profile{
		App:      "demo",
		Baseline: time.Millisecond,
		Total:    2 * time.Millisecond,
		Points:   []Point{{Runtime: 0.5, SNR: 12.345}, {Runtime: 2.0, SNR: math.Inf(1)}},
	}
	raw, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	for _, want := range []string{`"app":"demo"`, `"snr_db":"12.35"`, `"snr_db":"inf"`, `"baseline_ns":1000000`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %s:\n%s", want, out)
		}
	}
}

// TestFig19ConclusionRobustAcrossSeeds: the Figure 19 ordering (more pixel
// bits => higher final SNR, 8-bit exact) must hold for any input, not just
// the recorded seed.
func TestFig19ConclusionRobustAcrossSeeds(t *testing.T) {
	for _, seed := range []uint64{2, 13, 101} {
		sweeps, err := Fig19Precision(Options{Size: 48, Workers: 2, Seed: seed, BaselineReps: 1})
		if err != nil {
			t.Fatal(err)
		}
		final := func(i int) float64 { return sweeps[i].Points[len(sweeps[i].Points)-1].SNR }
		if !math.IsInf(final(0), 1) {
			t.Errorf("seed %d: 8-bit not exact (%v)", seed, final(0))
		}
		if !(final(1) > final(2) && final(2) > final(3)) {
			t.Errorf("seed %d: ordering violated: %v %v %v", seed, final(1), final(2), final(3))
		}
	}
}
