package harness

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Plot renders the profile as an ASCII scatter in the layout of the
// paper's Figures 11–15: x is runtime normalized to the baseline, y is SNR
// in dB. Points at +Inf dB are drawn as '#' on the top row; finite points
// as '*'. A '|' column marks x = 1.0 (the baseline runtime).
func (p Profile) Plot(w io.Writer, width, height int) error {
	if width < 20 {
		width = 20
	}
	if height < 6 {
		height = 6
	}
	if len(p.Points) == 0 {
		_, err := fmt.Fprintln(w, "(no points)")
		return err
	}
	var xMax, yMax float64
	yMax = 1
	xMax = 1
	for _, pt := range p.Points {
		if pt.Runtime > xMax {
			xMax = pt.Runtime
		}
		if !math.IsInf(pt.SNR, 0) && pt.SNR > yMax {
			yMax = pt.SNR
		}
	}
	yMax *= 1.05
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	// Baseline marker column.
	baseCol := int(1.0 / xMax * float64(width-1))
	if baseCol >= 0 && baseCol < width {
		for r := range grid {
			grid[r][baseCol] = '|'
		}
	}
	for _, pt := range p.Points {
		col := int(pt.Runtime / xMax * float64(width-1))
		if col < 0 {
			col = 0
		}
		if col >= width {
			col = width - 1
		}
		var row int
		mark := '*'
		if math.IsInf(pt.SNR, 1) {
			row = 0
			mark = '#'
		} else {
			y := pt.SNR
			if y < 0 {
				y = 0
			}
			row = height - 1 - int(y/yMax*float64(height-1))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
		}
		grid[row][col] = mark
	}
	if _, err := fmt.Fprintf(w, "%s: SNR(dB) vs runtime/baseline ('#' = precise, '|' = 1.0x)\n", p.App); err != nil {
		return err
	}
	for r, line := range grid {
		label := "      "
		switch r {
		case 0:
			label = fmt.Sprintf("%5.1f ", yMax)
		case height - 1:
			label = "  0.0 "
		}
		if _, err := fmt.Fprintf(w, "%s|%s|\n", label, string(line)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "      %s\n      0%sx%.2f\n", strings.Repeat("-", width+2), strings.Repeat(" ", width-6), xMax)
	return err
}
