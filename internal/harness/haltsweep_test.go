package harness

import (
	"math"
	"testing"
	"time"

	"anytime/internal/apps/conv2d"
	"anytime/internal/core"
	"anytime/internal/pix"
)

func conv2dBuild(t *testing.T, in *pix.Image) func() (*core.Automaton, *core.Buffer[*pix.Image], error) {
	t.Helper()
	return func() (*core.Automaton, *core.Buffer[*pix.Image], error) {
		run, err := conv2d.New(in, conv2d.Config{Workers: 2})
		if err != nil {
			return nil, nil, err
		}
		return run.Automaton, run.Out, nil
	}
}

func TestHaltSweepValidation(t *testing.T) {
	in, err := pix.SyntheticGray(16, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	build := conv2dBuild(t, in)
	if _, err := HaltSweep(build, in, 0, []float64{0.5}); err == nil {
		t.Error("zero baseline accepted")
	}
	if _, err := HaltSweep(build, in, time.Millisecond, nil); err == nil {
		t.Error("empty fractions accepted")
	}
	if _, err := HaltSweep(build, in, time.Millisecond, []float64{-1}); err == nil {
		t.Error("negative fraction accepted")
	}
}

// TestHaltSweepMatchesObserverProfile validates the harness's central
// methodological claim (see the package comment): a halted run at fraction
// x observes the same accuracy that the single-run observer profile
// recorded at (or before) x. We compare the halted SNR at each fraction
// against the observer profile's best-under bound — the halted run may be
// slightly ahead or behind by one snapshot, so the check is a sandwich:
// halted SNR must be at least the observer's best at half the fraction and
// at most the observer's best at twice the fraction.
func TestHaltSweepMatchesObserverProfile(t *testing.T) {
	in, err := pix.SyntheticGray(160, 160, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := conv2d.Config{Workers: 2}
	ref, err := conv2d.Precise(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := TimeBaseline(func() error {
		_, err := conv2d.Precise(in, cfg)
		return err
	}, 3)
	if err != nil {
		t.Fatal(err)
	}

	// Observer profile from a single run.
	col := NewCollector(ref, 0)
	obsCfg := cfg
	obsCfg.OnSnapshot = func(processed int, img *pix.Image) { col.Record(processed, img) }
	run, err := conv2d.New(in, obsCfg)
	if err != nil {
		t.Fatal(err)
	}
	col.Begin()
	if _, err := RunToCompletion(run.Automaton); err != nil {
		t.Fatal(err)
	}
	observed, err := col.Finish("2dconv", baseline)
	if err != nil {
		t.Fatal(err)
	}

	// Halting sweep, the paper's procedure.
	fractions := []float64{0.4, 0.8}
	swept, err := HaltSweep(conv2dBuild(t, in), ref, baseline, fractions)
	if err != nil {
		t.Fatal(err)
	}
	if len(swept.Points) != len(fractions) {
		t.Fatalf("%d sweep points", len(swept.Points))
	}
	for i, pt := range swept.Points {
		if math.IsInf(pt.SNR, 1) {
			continue // finished early; trivially consistent
		}
		lower, okL := observed.BestUnder(fractions[i] / 2)
		upper, okU := observed.BestUnder(fractions[i] * 2)
		if okL && pt.SNR < lower-3 {
			t.Errorf("halt@%.1f: swept SNR %.1f well below observer's %.1f at half the budget", fractions[i], pt.SNR, lower)
		}
		if okU && !math.IsInf(upper, 1) && pt.SNR > upper+3 {
			t.Errorf("halt@%.1f: swept SNR %.1f well above observer's %.1f at twice the budget", fractions[i], pt.SNR, upper)
		}
	}
}

func TestHaltSweepGenerousBudgetReachesPrecise(t *testing.T) {
	in, err := pix.SyntheticGray(48, 48, 5)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := conv2d.Precise(in, conv2d.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := TimeBaseline(func() error {
		_, err := conv2d.Precise(in, conv2d.Config{Workers: 2})
		return err
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := HaltSweep(conv2dBuild(t, in), ref, baseline, []float64{1000})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(p.Points[0].SNR, 1) {
		t.Errorf("generous budget did not reach precise output: %v dB", p.Points[0].SNR)
	}
}

// TestRunUntilWaitsForFirstOutput: a halt deadline shorter than the time to
// the first publish must still return the first valid output rather than
// erroring — the earliest halt point of an anytime computation is its
// first available snapshot.
func TestRunUntilWaitsForFirstOutput(t *testing.T) {
	out := core.NewBuffer[*pix.Image]("out", nil)
	a := core.New()
	if err := a.AddStage("slowstart", func(c *core.Context) error {
		time.Sleep(30 * time.Millisecond) // first publish well past the halt
		img := pix.MustNew(1, 1, 1)
		if _, err := out.Publish(img, false); err != nil {
			return err
		}
		for {
			if err := c.Checkpoint(); err != nil {
				return err
			}
			time.Sleep(time.Millisecond)
		}
	}); err != nil {
		t.Fatal(err)
	}
	snap, err := RunUntil(a, out, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != 1 {
		t.Errorf("got version %d, want the first output", snap.Version)
	}
}

// TestRunUntilErrorsWhenNothingEverPublished: an automaton that finishes
// without publishing is a genuine error.
func TestRunUntilErrorsWhenNothingEverPublished(t *testing.T) {
	out := core.NewBuffer[*pix.Image]("out", nil)
	a := core.New()
	if err := a.AddStage("mute", func(c *core.Context) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := RunUntil(a, out, time.Millisecond); err == nil {
		t.Error("silent automaton did not error")
	}
}
