// Package cachesim reproduces the data-locality study of paper §IV-C3.
//
// The anytime automaton's non-sequential sampling permutations (tree,
// pseudo-random) defeat conventional cache locality, but because the
// permutations are deterministic, "simple hardware prefetchers can be
// implemented to alleviate the high miss rates … an address computation
// unit coupled with the deterministic tree or pseudo-random (e.g., LFSR)
// counters". This package provides a set-associative LRU cache model, a
// next-line prefetcher (the conventional design that only helps sequential
// access) and a permutation prefetcher (the paper's proposal), plus the
// experiment that measures miss rates for each permutation with each
// prefetcher.
package cachesim

import "fmt"

// Cache is a set-associative cache with true-LRU replacement, modeling hits
// and misses for word-granularity accesses. Addresses are word indices; a
// line holds LineWords consecutive words.
type Cache struct {
	sets      int
	ways      int
	lineWords int

	// lines[set][way] holds the line tag; lru[set][way] the recency stamp.
	lines [][]int64
	lru   [][]uint64
	clock uint64

	hits, misses uint64
}

// Config describes a cache geometry.
type Config struct {
	// SizeWords is the total capacity in words.
	SizeWords int
	// Ways is the associativity.
	Ways int
	// LineWords is the line size in words (a power of two).
	LineWords int
}

// New returns an empty cache with the given geometry.
func New(cfg Config) (*Cache, error) {
	if cfg.SizeWords <= 0 || cfg.Ways <= 0 || cfg.LineWords <= 0 {
		return nil, fmt.Errorf("cachesim: nonpositive geometry %+v", cfg)
	}
	if cfg.LineWords&(cfg.LineWords-1) != 0 {
		return nil, fmt.Errorf("cachesim: line size %d must be a power of two", cfg.LineWords)
	}
	linesTotal := cfg.SizeWords / cfg.LineWords
	if linesTotal < cfg.Ways || linesTotal%cfg.Ways != 0 {
		return nil, fmt.Errorf("cachesim: %d lines not divisible into %d ways", linesTotal, cfg.Ways)
	}
	sets := linesTotal / cfg.Ways
	c := &Cache{sets: sets, ways: cfg.Ways, lineWords: cfg.LineWords}
	c.lines = make([][]int64, sets)
	c.lru = make([][]uint64, sets)
	for s := range c.lines {
		c.lines[s] = make([]int64, cfg.Ways)
		c.lru[s] = make([]uint64, cfg.Ways)
		for w := range c.lines[s] {
			c.lines[s][w] = -1
		}
	}
	return c, nil
}

// Sets reports the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Hits reports demand hits so far.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses reports demand misses so far.
func (c *Cache) Misses() uint64 { return c.misses }

// MissRate reports misses / (hits + misses), or 0 before any access.
func (c *Cache) MissRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.misses) / float64(total)
}

// Access performs a demand access to the given word address, returning
// whether it hit.
func (c *Cache) Access(addr int) bool {
	hit := c.touch(addr)
	if hit {
		c.hits++
	} else {
		c.misses++
	}
	return hit
}

// Prefetch installs the line containing addr without counting a demand
// access (prefetch traffic is free in this model; the paper's point is
// about demand miss latency).
func (c *Cache) Prefetch(addr int) { c.touch(addr) }

// touch looks the line up, updating LRU; on miss it installs the line
// (evicting true-LRU) and reports false.
func (c *Cache) touch(addr int) bool {
	line := int64(addr / c.lineWords)
	set := int(uint64(line) % uint64(c.sets))
	c.clock++
	ways := c.lines[set]
	for w, tag := range ways {
		if tag == line {
			c.lru[set][w] = c.clock
			return true
		}
	}
	victim := 0
	oldest := c.lru[set][0]
	for w := 1; w < c.ways; w++ {
		if c.lru[set][w] < oldest {
			oldest = c.lru[set][w]
			victim = w
		}
	}
	ways[victim] = line
	c.lru[set][victim] = c.clock
	return false
}
