package cachesim

import (
	"strings"
	"testing"

	"anytime/internal/perm"
)

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{SizeWords: 0, Ways: 1, LineWords: 1},
		{SizeWords: 64, Ways: 0, LineWords: 1},
		{SizeWords: 64, Ways: 1, LineWords: 0},
		{SizeWords: 64, Ways: 1, LineWords: 3},  // not a power of two
		{SizeWords: 16, Ways: 32, LineWords: 1}, // fewer lines than ways
		{SizeWords: 48, Ways: 5, LineWords: 1},  // lines % ways != 0
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
	c, err := New(Config{SizeWords: 64, Ways: 2, LineWords: 4})
	if err != nil {
		t.Fatal(err)
	}
	if c.Sets() != 8 {
		t.Errorf("Sets = %d, want 8", c.Sets())
	}
}

func TestColdMissThenHit(t *testing.T) {
	c, err := New(Config{SizeWords: 64, Ways: 2, LineWords: 4})
	if err != nil {
		t.Fatal(err)
	}
	if c.Access(0) {
		t.Error("cold access hit")
	}
	if !c.Access(0) {
		t.Error("repeat access missed")
	}
	// Same line, different word: hit.
	if !c.Access(3) {
		t.Error("same-line access missed")
	}
	// Next line: cold miss.
	if c.Access(4) {
		t.Error("next-line cold access hit")
	}
	if c.Hits() != 2 || c.Misses() != 2 {
		t.Errorf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
	if c.MissRate() != 0.5 {
		t.Errorf("miss rate %v", c.MissRate())
	}
}

// TestLRUEvictionHandChecked: a 1-set, 2-way cache with 1-word lines holds
// exactly two addresses; accessing a third evicts the least recent.
func TestLRUEvictionHandChecked(t *testing.T) {
	c, err := New(Config{SizeWords: 2, Ways: 2, LineWords: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0) // miss; resident {0}
	c.Access(1) // miss; resident {0,1}
	if !c.Access(0) {
		t.Error("0 evicted prematurely")
	}
	c.Access(2) // miss; evicts LRU = 1
	if !c.Access(0) {
		t.Error("0 evicted instead of LRU 1")
	}
	if c.Access(1) {
		t.Error("1 still resident after eviction")
	}
}

func TestPrefetchInstallsWithoutDemandCount(t *testing.T) {
	c, err := New(Config{SizeWords: 64, Ways: 2, LineWords: 4})
	if err != nil {
		t.Fatal(err)
	}
	c.Prefetch(8)
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Error("prefetch counted as demand access")
	}
	if !c.Access(8) {
		t.Error("prefetched line missed")
	}
}

func TestSequentialSweepMissRateIsCompulsory(t *testing.T) {
	const n = 1 << 12
	ord, err := perm.Sequential(n)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Sweep(Config{SizeWords: 256, Ways: 4, LineWords: 8}, ord, NoPrefetch{})
	if err != nil {
		t.Fatal(err)
	}
	// A streaming sweep misses exactly once per line: 1/8.
	want := 1.0 / 8
	if r.MissRate != want {
		t.Errorf("sequential miss rate %v, want %v", r.MissRate, want)
	}
}

// TestStudyReproducesSectionIVC3 is the paper's locality claim end to end:
//
//  1. without prefetching, the tree and pseudo-random permutations miss far
//     more than sequential;
//  2. the conventional next-line prefetcher rescues only sequential; and
//  3. the deterministic permutation prefetcher brings every permutation's
//     demand miss rate to (near) zero.
func TestStudyReproducesSectionIVC3(t *testing.T) {
	// 64Ki-word data set against a 4Ki-word cache: 16x oversubscribed.
	rows, err := Study(Config{SizeWords: 4096, Ways: 8, LineWords: 16}, 1<<16, 7)
	if err != nil {
		t.Fatal(err)
	}
	get := func(permName, pf string) SweepResult {
		for _, r := range rows {
			if r.Permutation == permName && r.Prefetcher == pf {
				return r
			}
		}
		t.Fatalf("row %s/%s missing", permName, pf)
		return SweepResult{}
	}
	seqNone := get("sequential", "none").MissRate
	treeNone := get("tree", "none").MissRate
	randNone := get("pseudo-random", "none").MissRate
	if !(treeNone > 4*seqNone) || !(randNone > 4*seqNone) {
		t.Errorf("permuted sweeps did not lose locality: seq=%v tree=%v rand=%v", seqNone, treeNone, randNone)
	}
	// Next-line rescues sequential…
	if nl := get("sequential", "next-line").MissRate; nl > seqNone/4 {
		t.Errorf("next-line did not help the sequential sweep: %v vs %v", nl, seqNone)
	}
	// …but barely moves the permuted sweeps.
	if nl := get("pseudo-random", "next-line").MissRate; nl < randNone/2 {
		t.Errorf("next-line implausibly rescued the pseudo-random sweep: %v vs %v", nl, randNone)
	}
	// The permutation prefetcher (the paper's proposal) fixes everything.
	for _, permName := range []string{"sequential", "tree", "pseudo-random"} {
		if pp := get(permName, "permutation").MissRate; pp > 0.01 {
			t.Errorf("permutation prefetcher left %s at %v demand misses", permName, pp)
		}
	}
}

func TestFormatStudy(t *testing.T) {
	rows, err := Study(Config{SizeWords: 512, Ways: 4, LineWords: 8}, 1<<12, 3)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatStudy(rows)
	for _, want := range []string{"sequential", "tree", "pseudo-random", "next-line", "permutation", "miss-rate"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

// TestTreePrefetchDistanceConflict documents the tree permutation's
// power-of-two-stride conflict behavior: a short prefetch distance is
// miss-free, while a deep one self-evicts in the few sets the early tree
// accesses pile into.
func TestTreePrefetchDistanceConflict(t *testing.T) {
	cfg := Config{SizeWords: 4096, Ways: 8, LineWords: 16}
	tree, err := perm.Tree1D(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	short, err := Sweep(cfg, tree, PermPrefetcher{Order: tree, Distance: 2})
	if err != nil {
		t.Fatal(err)
	}
	deep, err := Sweep(cfg, tree, PermPrefetcher{Order: tree, Distance: 8})
	if err != nil {
		t.Fatal(err)
	}
	if short.MissRate > 0.01 {
		t.Errorf("timely prefetch missed: %v", short.MissRate)
	}
	if deep.MissRate < 0.5 {
		t.Errorf("deep prefetch should self-evict under power-of-two strides, got %v", deep.MissRate)
	}
}
