package cachesim

import (
	"fmt"

	"anytime/internal/perm"
)

// Prefetcher predicts the upcoming word addresses of a sampling sweep. It
// is consulted before each demand access with the sweep position about to
// execute.
type Prefetcher interface {
	// Name labels the prefetcher in reports.
	Name() string
	// Predict returns the word addresses to prefetch before the demand
	// access at sweep position pos executes.
	Predict(pos int) []int
}

// NoPrefetch is the baseline: no prefetching.
type NoPrefetch struct{}

// Name implements Prefetcher.
func (NoPrefetch) Name() string { return "none" }

// Predict implements Prefetcher.
func (NoPrefetch) Predict(int) []int { return nil }

// NextLine is the conventional sequential prefetcher: on every access it
// prefetches the next cache line after the current one in address order. It
// helps streaming sweeps and does nothing useful for permuted ones.
type NextLine struct {
	Order     perm.Order
	LineWords int
	Degree    int // lines ahead; default 1
}

// Name implements Prefetcher.
func (p NextLine) Name() string { return "next-line" }

// Predict implements Prefetcher.
func (p NextLine) Predict(pos int) []int {
	if pos >= p.Order.Len() {
		return nil
	}
	degree := p.Degree
	if degree <= 0 {
		degree = 1
	}
	addr := p.Order.At(pos)
	out := make([]int, 0, degree)
	for d := 1; d <= degree; d++ {
		out = append(out, addr+d*p.LineWords)
	}
	return out
}

// PermPrefetcher is the paper's proposal: an address computation unit that
// replays the deterministic sampling permutation a fixed distance ahead of
// the demand stream, so even pseudo-random sweeps find their lines
// resident. "The overhead and complexity of such prefetchers is minimal: an
// address computation unit coupled with the deterministic tree or
// pseudo-random (e.g., LFSR) counters" (§IV-C3).
//
// Distance matters for the tree permutation: its early accesses stride by
// large powers of two and therefore pile into a handful of cache sets, so
// a deep prefetch is evicted by the intervening same-set fills before its
// demand access arrives (measured here: distance 2 is miss-free, distance
// 8 thrashes completely on an 8-way cache). A hardware design would pair
// the prefetcher with index hashing; the model simply defaults to a short,
// timely distance.
type PermPrefetcher struct {
	Order    perm.Order
	Distance int // sweep positions ahead; default 2
}

// Name implements Prefetcher.
func (p PermPrefetcher) Name() string { return "permutation" }

// Predict implements Prefetcher.
func (p PermPrefetcher) Predict(pos int) []int {
	distance := p.Distance
	if distance <= 0 {
		distance = 2
	}
	ahead := pos + distance
	if ahead >= p.Order.Len() {
		return nil
	}
	return []int{p.Order.At(ahead)}
}

// SweepResult reports one measured sweep.
type SweepResult struct {
	Permutation string
	Prefetcher  string
	MissRate    float64
	Hits        uint64
	Misses      uint64
}

// Sweep performs one full pass over n words in the given visit order,
// consulting the prefetcher before each demand access, and reports the
// demand miss rate.
func Sweep(cfg Config, ord perm.Order, pf Prefetcher) (SweepResult, error) {
	c, err := New(cfg)
	if err != nil {
		return SweepResult{}, err
	}
	if pf == nil {
		pf = NoPrefetch{}
	}
	for pos := 0; pos < ord.Len(); pos++ {
		for _, addr := range pf.Predict(pos) {
			if addr >= 0 && addr < ord.Len() {
				c.Prefetch(addr)
			}
		}
		c.Access(ord.At(pos))
	}
	return SweepResult{
		Prefetcher: pf.Name(),
		MissRate:   c.MissRate(),
		Hits:       c.Hits(),
		Misses:     c.Misses(),
	}, nil
}

// Study runs the §IV-C3 experiment: every permutation × every prefetcher
// over a data set of n words with the given cache geometry.
func Study(cfg Config, n int, seed uint64) ([]SweepResult, error) {
	seqOrd, err := perm.Sequential(n)
	if err != nil {
		return nil, err
	}
	treeOrd, err := perm.Tree1D(n)
	if err != nil {
		return nil, err
	}
	randOrd, err := perm.PseudoRandom(n, seed)
	if err != nil {
		return nil, err
	}
	perms := []struct {
		name string
		ord  perm.Order
	}{
		{"sequential", seqOrd},
		{"tree", treeOrd},
		{"pseudo-random", randOrd},
	}
	var out []SweepResult
	for _, p := range perms {
		pfs := []Prefetcher{
			NoPrefetch{},
			NextLine{Order: p.ord, LineWords: cfg.LineWords},
			PermPrefetcher{Order: p.ord},
		}
		for _, pf := range pfs {
			r, err := Sweep(cfg, p.ord, pf)
			if err != nil {
				return nil, err
			}
			r.Permutation = p.name
			out = append(out, r)
		}
	}
	return out, nil
}

// FormatStudy renders study rows as an aligned table.
func FormatStudy(rows []SweepResult) string {
	out := fmt.Sprintf("%-14s %-12s %10s %10s %10s\n", "permutation", "prefetcher", "miss-rate", "hits", "misses")
	for _, r := range rows {
		out += fmt.Sprintf("%-14s %-12s %9.1f%% %10d %10d\n", r.Permutation, r.Prefetcher, r.MissRate*100, r.Hits, r.Misses)
	}
	return out
}
