package conform

import (
	"flag"
	"reflect"
	"testing"
)

var (
	seedFlag = flag.Uint64("conform.seed", 0, "run only this schedule seed (0 = full sweep)")
	nFlag    = flag.Int("conform.n", 0, "override the number of seeded schedules per app")
)

// schedulesPerApp is the exploration budget: the full sweep runs at least
// 100 seeded schedules per app (the repo's conformance bar); -short keeps
// the PR/CI budget small.
func schedulesPerApp(t *testing.T) int {
	if *nFlag > 0 {
		return *nFlag
	}
	if testing.Short() {
		return 12
	}
	return 100
}

// explore runs the app's seeded sweep, reporting the first invariant
// violation with its seed and a shrunk minimal schedule so the failure is
// reproducible with -conform.seed.
func explore(t *testing.T, app App) {
	t.Helper()
	if *seedFlag != 0 {
		runSeed(t, app, *seedFlag)
		return
	}
	n := schedulesPerApp(t)
	for i := 0; i < n; i++ {
		// Seed 0 is the -conform.seed sentinel; start at 1.
		runSeed(t, app, uint64(i)+1)
	}
}

func runSeed(t *testing.T, app App, seed uint64) {
	t.Helper()
	s := DeriveSchedule(app, seed)
	res := RunOne(app, s)
	if !res.Failed() {
		return
	}
	shrunk := Shrink(app, s)
	// The reproduce line must be copy-pasteable verbatim: t.Name() is the
	// exact -run pattern (app.Name() is lowercase and matches no test).
	t.Fatalf("conform: %s violated invariants under seed %d\nviolations:\n%s\nschedule: %s\nshrunk:   %s\nreproduce: go test ./internal/conform -run '^%s$' -conform.seed=%d",
		app.Name(), seed, res.FailureSummary(), s, shrunk, t.Name(), seed)
}

// TestConformConv2D .. TestConformSyncPipe: the seeded schedule sweep per
// app. Named so `go test -run Conform` selects exactly the conformance
// suite (the nightly CI profile runs it with -count=3 -race).
func TestConformConv2D(t *testing.T)   { t.Parallel(); explore(t, &conv2dApp{}) }
func TestConformDebayer(t *testing.T)  { t.Parallel(); explore(t, &debayerApp{}) }
func TestConformHisteq(t *testing.T)   { t.Parallel(); explore(t, &histeqApp{}) }
func TestConformKmeans(t *testing.T)   { t.Parallel(); explore(t, &kmeansApp{}) }
func TestConformDWT53(t *testing.T)    { t.Parallel(); explore(t, &dwt53App{}) }
func TestConformSyncPipe(t *testing.T) { t.Parallel(); explore(t, &syncPipeApp{}) }

// reuseCycles is how many consecutive checkout cycles the reset-reuse
// sweep drives one built instance through: two interrupted requests under
// the schedule's own stop point, then a final uninterrupted one that must
// still reach the bit-exact precise output (the serving runtime's
// acceptance bar is ≥ 2 consecutive reset-reuse cycles).
const reuseCycles = 3

// exploreReuse is the warm-pool counterpart of explore: each seeded
// schedule runs through reuseCycles checkouts of a single instance via
// RunReuse. Half the single-run budget keeps the added wall-clock modest
// while still permuting every configuration dimension.
func exploreReuse(t *testing.T, app App) {
	t.Helper()
	if *seedFlag != 0 {
		runReuseSeed(t, app, *seedFlag)
		return
	}
	n := (schedulesPerApp(t) + 1) / 2
	for i := 0; i < n; i++ {
		runReuseSeed(t, app, uint64(i)+1)
	}
}

func runReuseSeed(t *testing.T, app App, seed uint64) {
	t.Helper()
	s := DeriveSchedule(app, seed)
	results := RunReuse(app, s, reuseCycles)
	for _, res := range results {
		if res.Failed() {
			t.Fatalf("conform: %s violated invariants on reuse cycle %d/%d under seed %d\nviolations:\n%s\nschedule: %s\nreproduce: go test ./internal/conform -run '^%s$' -conform.seed=%d",
				app.Name(), res.Cycle, reuseCycles, seed, res.FailureSummary(), res.Schedule, t.Name(), seed)
		}
	}
	last := results[len(results)-1]
	if last.Cycle != reuseCycles {
		t.Fatalf("conform: %s reuse sweep under seed %d stopped at cycle %d/%d without a violation",
			app.Name(), seed, last.Cycle, reuseCycles)
	}
	if !last.Completed {
		t.Fatalf("conform: %s final reuse cycle under seed %d did not reach the precise output", app.Name(), seed)
	}
}

// TestConformReset*: the reset-reuse sweep per app. The names match the
// nightly profile's `-run Conform` selection, so pooled automata are swept
// by the same seeded invariant checks as fresh ones.
func TestConformResetConv2D(t *testing.T)   { t.Parallel(); exploreReuse(t, &conv2dApp{}) }
func TestConformResetDebayer(t *testing.T)  { t.Parallel(); exploreReuse(t, &debayerApp{}) }
func TestConformResetHisteq(t *testing.T)   { t.Parallel(); exploreReuse(t, &histeqApp{}) }
func TestConformResetKmeans(t *testing.T)   { t.Parallel(); exploreReuse(t, &kmeansApp{}) }
func TestConformResetDWT53(t *testing.T)    { t.Parallel(); exploreReuse(t, &dwt53App{}) }
func TestConformResetSyncPipe(t *testing.T) { t.Parallel(); exploreReuse(t, &syncPipeApp{}) }

// TestScheduleDerivationDeterministic pins the reproducibility contract:
// the same (app, seed) pair must always expand to the same schedule, or a
// reported seed would not reproduce its failure.
func TestScheduleDerivationDeterministic(t *testing.T) {
	for _, app := range Apps() {
		for seed := uint64(1); seed <= 50; seed++ {
			a := DeriveSchedule(app, seed)
			b := DeriveSchedule(app, seed)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s seed %d: derivation not deterministic:\n%s\n%s", app.Name(), seed, a, b)
			}
		}
	}
}

// TestScheduleDerivationCoversDimensions checks the explorer actually
// reaches every point of the configuration lattice it claims to permute:
// across a modest seed range each app must see both snapshot modes, all
// publish policies, interrupts and completions, and at least one fault
// injection where supported.
func TestScheduleDerivationCoversDimensions(t *testing.T) {
	for _, app := range Apps() {
		feats := app.Features()
		policies := map[string]bool{}
		snapshots := map[string]bool{}
		stops := map[StopKind]bool{}
		faults := false
		for seed := uint64(1); seed <= 200; seed++ {
			s := DeriveSchedule(app, seed)
			policies[policyName(s.Policy)] = true
			snapshots[snapshotName(s.Snapshot)] = true
			stops[s.Stop.Kind] = true
			if s.StorageUpset > 0 || s.EdgeDelay > 0 || len(s.Pauses) > 0 || len(s.Delays) > 0 {
				faults = true
			}
		}
		if feats.Policies && len(policies) != 3 {
			t.Errorf("%s: explored policies %v, want all three", app.Name(), policies)
		}
		if feats.Snapshots && len(snapshots) != 2 {
			t.Errorf("%s: explored snapshot modes %v, want both", app.Name(), snapshots)
		}
		for _, k := range []StopKind{StopNone, StopAtPublish, StopAtCheckpoint} {
			if !stops[k] {
				t.Errorf("%s: stop kind %v never explored", app.Name(), k)
			}
		}
		if !faults {
			t.Errorf("%s: no schedule injected any fault", app.Name())
		}
	}
}

// TestConformStorageFaultDeterminism pins the reproducibility of the
// drowsy-storage fault path: two runs of the same seeded faulty schedule
// must corrupt identically and publish bit-identical final outputs (the
// per-worker fault streams and the worker→position assignment are both
// deterministic).
func TestConformStorageFaultDeterminism(t *testing.T) {
	t.Parallel()
	app := &conv2dApp{}
	s := Schedule{Seed: 97, Workers: 3, StorageUpset: 1e-3}
	var sums []uint64
	for i := 0; i < 2; i++ {
		res := RunOne(app, s)
		if res.Failed() {
			t.Fatalf("faulty run violated invariants:\n%s", res.FailureSummary())
		}
		if !res.Completed {
			t.Fatal("faulty run did not complete")
		}
		_, sum, final, ok := lastOf(t, app, s)
		if !ok || !final {
			t.Fatal("no final snapshot")
		}
		sums = append(sums, sum)
	}
	if sums[0] != sums[1] {
		t.Fatalf("storage-faulted final output not deterministic: %016x vs %016x", sums[0], sums[1])
	}
}

// lastOf runs the schedule once and returns the sink's terminal state.
func lastOf(t *testing.T, app App, s Schedule) (version uint64, sum uint64, final, ok bool) {
	t.Helper()
	col := &Collector{}
	env := &Env{Col: col}
	inst, err := app.Build(env, s)
	if err != nil {
		t.Fatal(err)
	}
	sched := newChaosScheduler(inst.Automaton, app.Stages(), s)
	inst.Automaton.SetHooks(sched.hooks())
	if err := inst.Automaton.Start(t.Context()); err != nil {
		t.Fatal(err)
	}
	if err := inst.Automaton.Wait(); err != nil {
		t.Fatal(err)
	}
	v, sm, fin, has := inst.Sink.Last()
	return uint64(v), sm, fin, has
}
