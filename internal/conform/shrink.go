package conform

import (
	"anytime/internal/core"
	"anytime/internal/pix"
)

// shrinkRetries is how many times a candidate simplification is re-run
// before concluding it no longer fails: real OS scheduling makes some
// failures flaky, so a candidate keeps only if at least one of its retries
// still violates an invariant.
const shrinkRetries = 3

// shrinkBudget caps the total number of candidate evaluations (each up to
// shrinkRetries runs), so shrinking a pathological failure stays bounded.
const shrinkBudget = 48

// Shrink minimizes a failing schedule by greedily applying simplifying
// transformations — dropping chaos points, zeroing faults, reverting
// policy/snapshot/workers to defaults, halving the interrupt ordinal —
// and keeping each one that still reproduces a violation. The result is
// the smallest schedule the budget could confirm failing, which is what a
// human debugs from.
func Shrink(app App, s Schedule) Schedule {
	budget := shrinkBudget
	fails := func(c Schedule) bool {
		if budget <= 0 {
			return false
		}
		budget--
		for i := 0; i < shrinkRetries; i++ {
			if RunOne(app, c).Failed() {
				return true
			}
		}
		return false
	}
	cur := s
	for changed := true; changed && budget > 0; {
		changed = false
		for _, cand := range shrinkCandidates(cur) {
			if fails(cand) {
				cur = cand
				changed = true
				break
			}
		}
	}
	return cur
}

// shrinkCandidates returns the one-step simplifications of s, most
// aggressive first.
func shrinkCandidates(s Schedule) []Schedule {
	var out []Schedule
	add := func(c Schedule) { out = append(out, c) }

	// Drop all chaos at once — the best case is a chaos-free failure.
	if len(s.Pauses) > 0 || len(s.Delays) > 0 || s.EdgeDelay > 0 || s.StorageUpset > 0 {
		c := s
		c.Pauses, c.Delays, c.EdgeDelay, c.StorageUpset = nil, nil, 0, 0
		add(c)
	}
	for i := range s.Pauses {
		c := s
		c.Pauses = append(append([]ChaosPoint(nil), s.Pauses[:i]...), s.Pauses[i+1:]...)
		add(c)
	}
	for i := range s.Delays {
		c := s
		c.Delays = append(append([]ChaosPoint(nil), s.Delays[:i]...), s.Delays[i+1:]...)
		add(c)
	}
	if s.EdgeDelay > 0 {
		c := s
		c.EdgeDelay = 0
		add(c)
	}
	if s.StorageUpset > 0 {
		c := s
		c.StorageUpset = 0
		add(c)
	}
	if s.Stop.Kind != StopNone {
		c := s
		c.Stop = StopPoint{}
		add(c)
	}
	if s.Stop.Count > 1 {
		c := s
		c.Stop.Count = s.Stop.Count / 2
		add(c)
	}
	if s.Workers > 1 {
		c := s
		c.Workers = 1
		add(c)
	}
	if s.Policy != core.PublishEveryRound {
		c := s
		c.Policy = core.PublishEveryRound
		add(c)
	}
	if s.Snapshot != pix.SnapshotClone {
		c := s
		c.Snapshot = pix.SnapshotClone
		add(c)
	}
	if s.Granularity > 0 {
		c := s
		c.Granularity = 0
		add(c)
	}
	return out
}
