package conform

// The harness must be able to fail: each test here runs a deliberately
// broken automaton through RunOne and asserts the probes convict it of the
// right invariant. A conformance suite whose checkers cannot catch a
// planted violation proves nothing about the apps that pass it.

import (
	"reflect"
	"testing"
	"time"

	"anytime/internal/core"
	"anytime/internal/pix"
)

// fakeApp adapts a hand-built automaton to the App interface so RunOne can
// drive it like any benchmark app.
type fakeApp struct {
	name   string
	stages []string
	build  func(env *Env) (*Instance, error)
}

func (f *fakeApp) Name() string                                  { return f.name }
func (f *fakeApp) Features() Features                            { return Features{} }
func (f *fakeApp) Stages() []string                              { return f.stages }
func (f *fakeApp) Build(env *Env, _ Schedule) (*Instance, error) { return f.build(env) }

func sumInt64(v int64) uint64 { return fnv1aStep(fnv1aInit, uint64(v)) }

func hasInvariant(vs []Violation, name string) bool {
	for _, v := range vs {
		if v.Invariant == name {
			return true
		}
	}
	return false
}

func requireViolation(t *testing.T, app App, invariant string) Result {
	t.Helper()
	res := RunOne(app, Schedule{Seed: 1, Workers: 1})
	if !hasInvariant(res.Violations, invariant) {
		t.Fatalf("planted %q violation not detected; got:\n%s", invariant, res.FailureSummary())
	}
	return res
}

// TestSelfSnapshotMutatorCaught plants the exact bug the zero-copy publish
// path could introduce: a stage that keeps writing into an already
// published snapshot's backing store.
func TestSelfSnapshotMutatorCaught(t *testing.T) {
	t.Parallel()
	type box struct{ vals []int64 }
	sumBox := func(b *box) uint64 {
		h := uint64(fnv1aInit)
		for _, v := range b.vals {
			h = fnv1aStep(h, uint64(v))
		}
		return h
	}
	app := &fakeApp{name: "mutator", stages: []string{"mutate"}, build: func(env *Env) (*Instance, error) {
		buf := core.NewBuffer[*box]("mutant", nil)
		auto := core.New()
		shared := &box{vals: make([]int64, 4)}
		err := auto.AddStage("mutate", func(c *core.Context) error {
			for i := 0; i < 3; i++ {
				if err := c.Checkpoint(); err != nil {
					return err
				}
				// No clone: every publish hands out the same backing slice,
				// so writing round i+1 mutates the round-i snapshot in place.
				shared.vals[0] = int64(i + 1)
				if _, err := buf.Publish(shared, i == 2); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		sink := AttachProbe(env, buf, sumBox, nil)
		return &Instance{Automaton: auto, Probes: []*Probe{sink}, Sink: sink}, nil
	}}
	requireViolation(t, app, "snapshot-mutated")
}

// TestSelfDoubleWriterCaught plants a second publisher. The two goroutines
// hand off through a channel so there is no data race for the race
// detector to find — only the goroutine-pinning probe convicts it, which
// is why the probe exists.
func TestSelfDoubleWriterCaught(t *testing.T) {
	t.Parallel()
	app := &fakeApp{name: "doublewriter", stages: []string{"writer"}, build: func(env *Env) (*Instance, error) {
		buf := core.NewBuffer[int64]("contested", nil)
		auto := core.New()
		err := auto.AddStage("writer", func(c *core.Context) error {
			if err := c.Checkpoint(); err != nil {
				return err
			}
			if _, err := buf.Publish(1, false); err != nil {
				return err
			}
			done := make(chan error)
			go func() {
				//lint:ignore singlewriter planted violation: this self-test proves the runtime probe convicts the second writer
				_, err := buf.Publish(2, true)
				done <- err
			}()
			return <-done
		})
		if err != nil {
			return nil, err
		}
		sink := AttachProbe(env, buf, sumInt64, nil)
		return &Instance{Automaton: auto, Probes: []*Probe{sink}, Sink: sink}, nil
	}}
	requireViolation(t, app, "single-writer")
}

// TestSelfInvalidSnapshotCaught plants an undecodable intermediate: the
// interrupt-validity invariant says every published snapshot must pass the
// app's decoder, not just the final one.
func TestSelfInvalidSnapshotCaught(t *testing.T) {
	t.Parallel()
	app := &fakeApp{name: "invalid", stages: []string{"emit"}, build: func(env *Env) (*Instance, error) {
		buf := core.NewBuffer[int64]("range", nil)
		auto := core.New()
		err := auto.AddStage("emit", func(c *core.Context) error {
			if err := c.Checkpoint(); err != nil {
				return err
			}
			if _, err := buf.Publish(-5, false); err != nil {
				return err
			}
			_, err := buf.Publish(7, true)
			return err
		})
		if err != nil {
			return nil, err
		}
		sink := AttachProbe(env, buf, sumInt64, func(v int64) error {
			if v < 0 {
				return errInvalid(v)
			}
			return nil
		})
		return &Instance{Automaton: auto, Probes: []*Probe{sink}, Sink: sink}, nil
	}}
	requireViolation(t, app, "invalid-snapshot")
}

type errInvalid int64

func (e errInvalid) Error() string { return "negative value" }

// TestSelfWrongFinalCaught plants a final output that disagrees with the
// sequential golden.
func TestSelfWrongFinalCaught(t *testing.T) {
	t.Parallel()
	requireViolation(t, wrongFinalApp(), "final-mismatch")
}

func wrongFinalApp() App {
	return &fakeApp{name: "wrongfinal", stages: []string{"emit"}, build: func(env *Env) (*Instance, error) {
		buf := core.NewBuffer[int64]("answer", nil)
		auto := core.New()
		err := auto.AddStage("emit", func(c *core.Context) error {
			if err := c.Checkpoint(); err != nil {
				return err
			}
			_, err := buf.Publish(41, true)
			return err
		})
		if err != nil {
			return nil, err
		}
		sink := AttachProbe(env, buf, sumInt64, nil)
		return &Instance{
			Automaton: auto,
			Probes:    []*Probe{sink},
			Sink:      sink,
			GoldenSum: sumInt64(42),
			HasGolden: true,
		}, nil
	}}
}

// TestSelfMissingFinalCaught plants a run that finishes without ever
// publishing a Final snapshot — the paper's Property 1 (the automaton
// eventually commits its precise output) would be silently broken.
func TestSelfMissingFinalCaught(t *testing.T) {
	t.Parallel()
	app := &fakeApp{name: "nofinal", stages: []string{"emit"}, build: func(env *Env) (*Instance, error) {
		buf := core.NewBuffer[int64]("forgetful", nil)
		auto := core.New()
		err := auto.AddStage("emit", func(c *core.Context) error {
			if err := c.Checkpoint(); err != nil {
				return err
			}
			_, err := buf.Publish(1, false)
			return err
		})
		if err != nil {
			return nil, err
		}
		sink := AttachProbe(env, buf, sumInt64, nil)
		return &Instance{Automaton: auto, Probes: []*Probe{sink}, Sink: sink}, nil
	}}
	requireViolation(t, app, "no-final")
}

// TestSelfCleanRunPasses is the negative control: a correct pipeline under
// a chaotic schedule must produce zero violations.
func TestSelfCleanRunPasses(t *testing.T) {
	t.Parallel()
	s := Schedule{
		Seed:    3,
		Workers: 2,
		Pauses:  []ChaosPoint{{Stage: "square", At: 5, Dur: 100 * time.Microsecond}},
		Delays:  []ChaosPoint{{Stage: "sum", At: 3, Dur: 50 * time.Microsecond}},
	}
	res := RunOne(&syncPipeApp{}, s)
	if res.Failed() {
		t.Fatalf("clean pipeline reported violations:\n%s", res.FailureSummary())
	}
	if !res.Completed {
		t.Fatal("clean pipeline did not complete")
	}
}

// TestShrinkMinimizes feeds the shrinker a maximally noisy schedule whose
// failure (wrong final output) is independent of every knob, and expects
// it to strip the schedule down to the defaults.
func TestShrinkMinimizes(t *testing.T) {
	t.Parallel()
	app := wrongFinalApp()
	noisy := Schedule{
		Seed:        5,
		Workers:     4,
		Policy:      core.PublishAdaptive,
		Snapshot:    pix.SnapshotTiles,
		Granularity: 7,
		Pauses:      []ChaosPoint{{Stage: "emit", At: 1, Dur: time.Millisecond}},
		Delays:      []ChaosPoint{{Stage: "emit", At: 1, Dur: time.Millisecond}},
		EdgeDelay:   time.Millisecond,
	}
	if !RunOne(app, noisy).Failed() {
		t.Fatal("noisy schedule unexpectedly passed")
	}
	shrunk := Shrink(app, noisy)
	want := Schedule{Seed: 5, Workers: 1, Policy: core.PublishEveryRound, Snapshot: pix.SnapshotClone}
	if !reflect.DeepEqual(shrunk, want) {
		t.Fatalf("shrunk schedule not minimal:\ngot  %s\nwant %s", shrunk, want)
	}
	if !RunOne(app, shrunk).Failed() {
		t.Fatal("shrunk schedule no longer fails")
	}
}
