package conform

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"time"

	"anytime/internal/core"
)

// runWatchdog bounds one conformance run. The workloads finish in
// milliseconds; a run that is still going after this long has deadlocked,
// which is itself an invariant violation ("interruptible at any moment"
// implies "never wedged").
const runWatchdog = 30 * time.Second

// Result is the outcome of one schedule run.
type Result struct {
	App        string
	Schedule   Schedule
	Violations []Violation
	// Completed reports whether the automaton reached its precise output
	// (Wait returned nil); interrupted runs report false.
	Completed bool
	// Publishes is the total publish count across all probed buffers.
	Publishes int64
	// Cycle is the 1-based reuse cycle this result came from (RunReuse);
	// single-run results (RunOne) report 0.
	Cycle int
}

// Failed reports whether the run violated any invariant.
func (r Result) Failed() bool { return len(r.Violations) > 0 }

// FailureSummary formats the violations, one per line.
func (r Result) FailureSummary() string {
	lines := make([]string, len(r.Violations))
	for i, v := range r.Violations {
		lines[i] = "  " + v.String()
	}
	return strings.Join(lines, "\n")
}

// RunOne executes app under the schedule and checks every conformance
// invariant: the probes watch each publish inline, the chaos scheduler
// injects the seeded perturbations and interrupt, and the terminal state
// is verified after quiescence.
func RunOne(app App, s Schedule) Result {
	env := &Env{Col: &Collector{}}
	inst, err := app.Build(env, s)
	if err != nil {
		env.Col.Add("build-error", app.Name(), "%v", err)
		return Result{App: app.Name(), Schedule: s, Violations: env.Col.Violations()}
	}
	return runCycle(app, inst, env, s)
}

// RunReuse builds one instance of app and runs it through cycles
// consecutive checkout cycles — the warm-pool discipline of internal/serve
// under the harness's invariants. Cycles 1..n-1 run under the schedule's
// own interrupt (an interrupted, possibly approximate request); the final
// cycle forces StopNone and must still reach the bit-exact precise output,
// proving Reset leaks no state from any earlier interrupted run. Between
// cycles the automaton is Reset (running the app's production OnReset
// hooks) and the probes' observation state is rewound, so every cycle
// re-proves version-monotonicity from version 1. Each cycle gets its own
// Collector; the sweep stops at the first failing cycle (a broken instance
// only produces noise afterwards).
func RunReuse(app App, s Schedule, cycles int) []Result {
	if cycles < 1 {
		cycles = 1
	}
	env := &Env{Col: &Collector{}}
	inst, err := app.Build(env, s)
	if err != nil {
		env.Col.Add("build-error", app.Name(), "%v", err)
		return []Result{{App: app.Name(), Schedule: s, Violations: env.Col.Violations()}}
	}
	results := make([]Result, 0, cycles)
	for c := 1; c <= cycles; c++ {
		cs := s
		if c == cycles {
			cs.Stop = StopPoint{Kind: StopNone}
		}
		env.Col = &Collector{}
		if c > 1 {
			if err := inst.Automaton.Reset(); err != nil {
				env.Col.Add("reset-error", app.Name(), "cycle %d: %v", c, err)
				return append(results, Result{App: app.Name(), Schedule: cs, Cycle: c, Violations: env.Col.Violations()})
			}
			env.reset()
		}
		res := runCycle(app, inst, env, cs)
		res.Cycle = c
		results = append(results, res)
		if res.Failed() {
			break
		}
	}
	return results
}

// runCycle is one start→quiesce pass over a built instance: attach a fresh
// chaos scheduler, run under the schedule's perturbations and interrupt,
// then verify the terminal state. env.OnPublish and the automaton's hooks
// are (re)bound here, which is safe because the instance is quiescent
// between cycles.
func runCycle(app App, inst *Instance, env *Env, s Schedule) Result {
	res := Result{App: app.Name(), Schedule: s}
	col := env.Col

	sched := newChaosScheduler(inst.Automaton, app.Stages(), s)
	var publishes atomic.Int64
	env.OnPublish = func() {
		n := publishes.Add(1)
		if s.Stop.Kind == StopAtPublish && n == int64(s.Stop.Count) {
			sched.trigger()
		}
	}
	inst.Automaton.SetHooks(core.ChainHooks(sched.hooks(), env.Hooks))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := inst.Automaton.Start(ctx); err != nil {
		col.Add("build-error", app.Name(), "start: %v", err)
		res.Violations = col.Violations()
		return res
	}

	// Supervisor: perform the interrupt when the scheduler triggers it. An
	// observer or hook cannot call Stop itself (Stop waits for every stage
	// to exit, and hooks run on stage goroutines).
	supDone := make(chan struct{})
	go func() {
		defer close(supDone)
		select {
		case <-sched.stopCh:
			inst.Automaton.Stop()
		case <-inst.Automaton.Done():
		}
	}()

	select {
	case <-inst.Automaton.Done():
	case <-time.After(runWatchdog):
		// Wedged: cancel the context (non-blocking) and give the pipeline a
		// moment to unwind before reporting. If it stays stuck we leak its
		// goroutines — there is nothing safe left to wait on.
		col.Add("hang", app.Name(), "automaton still running after %v", runWatchdog)
		cancel()
		select {
		case <-inst.Automaton.Done():
		case <-time.After(5 * time.Second):
			res.Violations = col.Violations()
			return res
		}
	}
	<-supDone
	sched.pausers.Wait()

	err := inst.Automaton.Wait()
	res.Completed = err == nil
	interrupted := s.Stop.Kind != StopNone
	switch {
	case err == nil:
	case errors.Is(err, core.ErrStopped):
		// A legitimate anytime outcome — but only if somebody interrupted.
		if !interrupted {
			col.Add("stage-error", app.Name(), "stopped without an interrupt point: %v", err)
		}
	default:
		col.Add("stage-error", app.Name(), "%v", err)
	}

	// Terminal checks, now that quiescence gives us a happens-before edge
	// to every stage's writes.
	for _, p := range inst.Probes {
		p.VerifyQuiescent()
	}
	if res.Completed {
		_, sum, final, ok := inst.Sink.Last()
		switch {
		case !ok:
			col.Add("no-final", inst.Sink.Name, "run completed but the sink never published")
		case !final:
			col.Add("no-final", inst.Sink.Name, "run completed but the sink's last snapshot is not final")
		case inst.HasGolden && sum != inst.GoldenSum:
			col.Add("final-mismatch", inst.Sink.Name, "final checksum %016x != sequential golden %016x", sum, inst.GoldenSum)
		}
	}

	res.Publishes = publishes.Load()
	res.Violations = col.Violations()
	return res
}
