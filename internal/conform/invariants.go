// Package conform is the repo's conformance and chaos harness: it runs any
// automaton DAG under seeded schedules — permuted worker counts, publish
// policies, snapshot modes, interrupt points, and injected faults — and
// machine-checks the paper's §III guarantees at every step:
//
//   - version monotonicity: each buffer's published versions are 1, 2, 3, …
//     with no publish after the final (precise) snapshot;
//   - snapshot immutability: a published snapshot's checksum is unchanged
//     when the next version lands and when the run quiesces (Property 3);
//   - single writer: every publish to a buffer happens on the goroutine
//     that performed its first publish, with no overlapping publishes
//     (Property 2);
//   - interrupt validity: stopping or pausing anywhere always leaves every
//     buffer holding a decodable, well-formed output;
//   - final equivalence: a run that reaches its precise output matches the
//     sequential golden computation bit-for-bit.
//
// A violation is reported with the seed that produced it and a shrunk,
// minimal failing schedule (see Shrink), so every red run is reproducible.
package conform

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"anytime/internal/core"
)

// Violation is one observed breach of a conformance invariant.
type Violation struct {
	Invariant string // e.g. "version-monotone", "snapshot-mutated"
	Buffer    string // buffer (or stage) the violation was observed on
	Detail    string
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] %s: %s", v.Invariant, v.Buffer, v.Detail)
}

// Collector accumulates violations from every probe of a run. It is safe
// for concurrent use: probes report from their stages' goroutines.
type Collector struct {
	mu         sync.Mutex
	violations []Violation
}

// Add records a violation.
func (c *Collector) Add(invariant, buffer, format string, args ...any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.violations = append(c.violations, Violation{
		Invariant: invariant,
		Buffer:    buffer,
		Detail:    fmt.Sprintf(format, args...),
	})
}

// Violations returns the violations recorded so far.
func (c *Collector) Violations() []Violation {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Violation(nil), c.violations...)
}

// Env is the per-run environment a conformance app builds against: the
// violation collector and the harness's publish notification (which drives
// StopAtPublish interrupt points). App adapters wire both through
// AttachProbe.
//
// Both fields are read at use time, not captured at Build, so the
// reset-reuse sweep (RunReuse) can swap in a fresh Collector and interrupt
// trigger for each checkout cycle of one built instance. Swapping is only
// safe at quiescence: the automaton's Wait/Start pair provides the
// happens-before edge to the stage goroutines that read them.
type Env struct {
	Col       *Collector
	OnPublish func() // may be nil

	// Hooks, when set, is chained after the chaos scheduler's own hooks for
	// every cycle (core.ChainHooks). This is how observers under test —
	// telemetry bindings, request tracers — ride along inside a conformance
	// run: the harness proves they never perturb the invariants they watch.
	Hooks *core.Hooks

	resetMu sync.Mutex
	resets  []func()
}

// OnReset registers fn to run when the harness rewinds a built instance
// between reuse cycles (see RunReuse). AttachProbe registers its own
// observation-state rewind here; apps whose validators keep per-run state
// (e.g. publish counters) must register a rewind too, mirroring what their
// production constructors register with core.Automaton.OnReset. nil is
// ignored.
func (e *Env) OnReset(fn func()) {
	if fn == nil {
		return
	}
	e.resetMu.Lock()
	defer e.resetMu.Unlock()
	e.resets = append(e.resets, fn)
}

// reset runs the registered rewind hooks in registration order. Only call
// at quiescence, after every probe's VerifyQuiescent for the finished
// cycle.
func (e *Env) reset() {
	e.resetMu.Lock()
	hooks := append([]func(){}, e.resets...)
	e.resetMu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}

// Probe watches one buffer of an automaton under test. Its observer runs
// synchronously on the publishing goroutine (checking each snapshot as it
// is published); VerifyQuiescent re-checks the terminal snapshot once the
// automaton has finished and must only be called after quiescence.
type Probe struct {
	Name string

	publishes atomic.Int64
	// seed is the version the buffer was seeded at for the current run (0 =
	// cold): the first observed publish must be seed+1. Set via SeedVersion
	// before Start, after any SeedFrom; cleared by the env reset.
	seed atomic.Uint64

	// Set by AttachProbe.
	verifyQuiescent func()
	lastInfo        func() (version core.Version, sum uint64, final bool, ok bool)
}

// Publishes reports how many publishes the probe observed.
func (p *Probe) Publishes() int64 { return p.publishes.Load() }

// SeedVersion tells the probe the buffer was warm-started at version v
// (core.Buffer.Seed): the run's first publish must then be v+1, keeping
// the version-monotone invariant anchored to the seed instead of to 1.
// Call during quiescence, before the automaton starts.
func (p *Probe) SeedVersion(v core.Version) { p.seed.Store(uint64(v)) }

// VerifyQuiescent re-validates the terminal snapshot: its checksum must
// still match the value recorded at publish time, and the buffer's latest
// version must be the last one the observer saw. Call only after the
// automaton is done (Wait/Done establish the needed happens-before edge).
func (p *Probe) VerifyQuiescent() { p.verifyQuiescent() }

// Last reports the last observed snapshot's version, checksum and Final
// flag. ok is false if the buffer never published.
func (p *Probe) Last() (version core.Version, sum uint64, final bool, ok bool) {
	return p.lastInfo()
}

// AttachProbe registers a conformance observer on buf. sum must be a
// deterministic checksum of a value's full contents; validate must reject
// malformed (undecodable) values and may be nil. Probes must attach before
// the automaton starts, like any observer.
//
// The immutability check is deliberately windowed: snapshot v's checksum is
// re-verified when v+1 is published and again at quiescence. This is
// exactly the window the zero-copy tile ring guarantees (pix.TileCloner
// reuses a snapshot's backing array only snapshotRingDepth publishes
// later), and it is the window an interrupt-anywhere consumer relies on.
func AttachProbe[T any](env *Env, buf *core.Buffer[T], sum func(T) uint64, validate func(T) error) *Probe {
	p := &Probe{Name: buf.Name()}
	var st struct {
		mu       sync.Mutex
		has      bool
		last     core.Snapshot[T]
		lastSum  uint64
		writerID uint64
	}
	var inObserver atomic.Int32
	// env.Col is read per report (not captured) so RunReuse can give each
	// reuse cycle its own Collector.
	buf.OnPublish(func(s core.Snapshot[T]) {
		col := env.Col
		if n := inObserver.Add(1); n != 1 {
			col.Add("single-writer", p.Name, "%d publishes in flight concurrently", n)
		}
		defer inObserver.Add(-1)
		st.mu.Lock()
		gid := goroutineID()
		if st.has {
			if gid != st.writerID {
				col.Add("single-writer", p.Name, "version %d published from goroutine %d; version %d came from goroutine %d",
					s.Version, gid, st.last.Version, st.writerID)
			}
			if s.Version != st.last.Version+1 {
				col.Add("version-monotone", p.Name, "version %d follows %d (want %d)",
					s.Version, st.last.Version, st.last.Version+1)
			}
			if st.last.Final {
				col.Add("publish-after-final", p.Name, "version %d published after final version %d",
					s.Version, st.last.Version)
			}
			if got := sum(st.last.Value); got != st.lastSum {
				col.Add("snapshot-mutated", p.Name, "version %d checksum changed %016x -> %016x before version %d landed",
					st.last.Version, st.lastSum, got, s.Version)
			}
		} else {
			st.writerID = gid
			if want := core.Version(p.seed.Load()) + 1; s.Version != want {
				col.Add("version-monotone", p.Name, "first observed version is %d, want %d", s.Version, want)
			}
		}
		if validate != nil {
			if err := validate(s.Value); err != nil {
				col.Add("invalid-snapshot", p.Name, "version %d: %v", s.Version, err)
			}
		}
		st.has = true
		st.last = s
		st.lastSum = sum(s.Value)
		st.mu.Unlock()
		p.publishes.Add(1)
		if env.OnPublish != nil {
			env.OnPublish()
		}
	})
	p.verifyQuiescent = func() {
		col := env.Col
		st.mu.Lock()
		defer st.mu.Unlock()
		latest, ok := buf.Peek()
		if !st.has {
			if ok {
				col.Add("observer-miss", p.Name, "buffer holds version %d but the observer saw no publish", latest.Version)
			}
			return
		}
		if got := sum(st.last.Value); got != st.lastSum {
			col.Add("snapshot-mutated", p.Name, "terminal version %d checksum changed %016x -> %016x after quiescence",
				st.last.Version, st.lastSum, got)
		}
		if !ok || latest.Version != st.last.Version {
			col.Add("observer-miss", p.Name, "buffer latest version %d != last observed version %d", latest.Version, st.last.Version)
		}
	}
	p.lastInfo = func() (core.Version, uint64, bool, bool) {
		st.mu.Lock()
		defer st.mu.Unlock()
		return st.last.Version, st.lastSum, st.last.Final, st.has
	}
	// Reset-reuse: rewind the observation state so every cycle re-proves
	// the invariants from scratch — in particular "first observed version
	// is 1" (Buffer.Reset must rewind the version counter) and the
	// single-writer identity (the next run's stage goroutine is new).
	env.OnReset(func() {
		st.mu.Lock()
		st.has = false
		st.last = core.Snapshot[T]{}
		st.lastSum = 0
		st.writerID = 0
		st.mu.Unlock()
		p.publishes.Store(0)
		p.seed.Store(0)
	})
	return p
}

// goroutineID parses the current goroutine's id from its stack header
// ("goroutine 123 [running]"). It costs a runtime.Stack call per publish —
// fine for a conformance harness, never for production code.
func goroutineID() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	const prefix = "goroutine "
	if n <= len(prefix) {
		return 0
	}
	var id uint64
	for _, c := range buf[len(prefix):n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

// fnv1aInit/fnv1aStep: the 64-bit FNV-1a checksum the probes use. Written
// out manually so per-publish hashing allocates nothing.
const (
	fnv1aInit  = 0xcbf29ce484222325
	fnv1aPrime = 0x00000100000001b3
)

func fnv1aStep(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnv1aPrime
		v >>= 8
	}
	return h
}
