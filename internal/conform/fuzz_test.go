package conform

import (
	"context"
	"errors"
	"sync"
	"testing"

	"anytime/internal/core"
)

// FuzzBufferPublish drives a Buffer through a fuzzer-chosen publish run
// while concurrent readers chase it through Latest and WaitNewer. The
// value published at version k is a pure function of (seed, k), so any
// torn or stale read is detectable: a reader that ever sees a version
// whose value does not match the closed form has caught a buffer bug.
// Run under -race this doubles as a memory-model check of the wait-free
// publish path and the CAS-armed wakeup in WaitNewer.
func FuzzBufferPublish(f *testing.F) {
	f.Add(uint64(1), uint8(5))
	f.Add(uint64(42), uint8(1))
	f.Add(uint64(0xdeadbeef), uint8(31))
	f.Fuzz(func(t *testing.T, seed uint64, n uint8) {
		total := core.Version(n%32) + 1
		buf := core.NewBuffer[uint64]("fuzz", nil)
		valueAt := func(v core.Version) uint64 { return fnv1aStep(seed, uint64(v)) }

		var wg sync.WaitGroup
		stop := make(chan struct{})

		// Polling readers: versions must be monotone and values untorn.
		for r := 0; r < 2; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var last core.Version
				for {
					if snap, ok := buf.Latest(); ok {
						if snap.Version < last {
							t.Errorf("Latest went backwards: %d after %d", snap.Version, last)
							return
						}
						last = snap.Version
						if snap.Value != valueAt(snap.Version) {
							t.Errorf("version %d holds %016x, want %016x", snap.Version, snap.Value, valueAt(snap.Version))
							return
						}
					}
					select {
					case <-stop:
						return
					default:
					}
				}
			}()
		}

		// Blocking reader: chases every wakeup through WaitNewer until the
		// final snapshot lands. This is the consumer the CAS-armed wakeup
		// race would starve if Publish and WaitNewer ever missed each other.
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last core.Version
			for {
				snap, err := buf.WaitNewer(context.Background(), last)
				if err != nil {
					t.Errorf("WaitNewer(%d): %v", last, err)
					return
				}
				if snap.Version <= last {
					t.Errorf("WaitNewer(%d) returned version %d", last, snap.Version)
					return
				}
				last = snap.Version
				if snap.Value != valueAt(snap.Version) {
					t.Errorf("version %d holds %016x, want %016x", snap.Version, snap.Value, valueAt(snap.Version))
					return
				}
				if snap.Final {
					return
				}
			}
		}()

		for v := core.Version(1); v <= total; v++ {
			snap, err := buf.Publish(valueAt(v), v == total)
			if err != nil {
				t.Fatalf("Publish version %d: %v", v, err)
			}
			if snap.Version != v {
				t.Fatalf("Publish returned version %d, want %d", snap.Version, v)
			}
		}
		if _, err := buf.Publish(0, true); !errors.Is(err, core.ErrFinalized) {
			t.Fatalf("publish past final = %v, want ErrFinalized", err)
		}

		close(stop)
		wg.Wait()

		snap, ok := buf.Peek()
		if !ok || snap.Version != total || !snap.Final {
			t.Fatalf("terminal snapshot = (%d, final=%v, ok=%v), want (%d, true, true)", snap.Version, snap.Final, ok, total)
		}
	})
}

// FuzzInterruptAnywhere treats the fuzzer's input as a schedule seed: each
// input expands through DeriveSchedule into a full configuration — worker
// count, publish policy, snapshot mode, interrupt point, injected faults —
// and one conformance run must uphold every invariant under it. The corpus
// therefore accumulates schedules, not data.
func FuzzInterruptAnywhere(f *testing.F) {
	for seed := uint64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		// Alternate between the synthetic synchronous pipeline (Stream
		// edges, exact per-version decodability) and histeq (the deepest
		// DAG: four stages over async edges).
		var app App
		if seed%2 == 0 {
			app = &histeqApp{}
		} else {
			app = &syncPipeApp{}
		}
		s := DeriveSchedule(app, seed)
		res := RunOne(app, s)
		if res.Failed() {
			t.Fatalf("seed %d (%s) violated invariants:\n%s\nschedule: %s", seed, app.Name(), res.FailureSummary(), s)
		}
	})
}
