package conform

import (
	"errors"
	"fmt"
	"sync"

	"anytime/internal/apps/conv2d"
	"anytime/internal/apps/debayer"
	"anytime/internal/apps/dwt53"
	"anytime/internal/apps/histeq"
	"anytime/internal/apps/kmeans"
	"anytime/internal/core"
	"anytime/internal/pix"
)

// Features declares which schedule dimensions an app supports, so
// DeriveSchedule only samples meaningful ones.
type Features struct {
	Workers        bool // worker count is configurable
	Policies       bool // publish policies are configurable
	Snapshots      bool // snapshot modes (clone|tiles) are configurable
	MaxGranularity int  // explore granularities 1..Max; 0 = fixed
	Edges          bool // has async/sync consumer edges (edge faults apply)
	Storage        bool // supports drowsy-storage upset injection
}

// App adapts one automaton application to the harness: it names the
// stages (for schedule derivation) and builds a fresh probed instance for
// a schedule.
type App interface {
	Name() string
	Features() Features
	Stages() []string
	Build(env *Env, s Schedule) (*Instance, error)
}

// Instance is one probed automaton, ready to start.
type Instance struct {
	Automaton *core.Automaton
	Probes    []*Probe
	// Sink is the probe of the application's output buffer; final-output
	// equivalence is checked against it.
	Sink *Probe
	// GoldenSum is the checksum of the sequential golden (precise) final
	// output; HasGolden is false when the schedule makes the final output
	// intentionally approximate (storage upsets).
	GoldenSum uint64
	HasGolden bool
}

// conformSize is the square input edge for the benchmark inputs — small
// enough that a full sweep of several hundred schedules stays in seconds.
const conformSize = 32

// inputs builds the shared synthetic inputs once per process.
var inputs struct {
	once   sync.Once
	gray   *pix.Image
	rgb    *pix.Image
	mosaic *pix.Image
	err    error
}

func sharedInputs() (gray, rgb, mosaic *pix.Image, err error) {
	inputs.once.Do(func() {
		inputs.gray, inputs.err = pix.SyntheticGray(conformSize, conformSize, 11)
		if inputs.err != nil {
			return
		}
		inputs.rgb, inputs.err = pix.SyntheticRGB(conformSize, conformSize, 11)
		if inputs.err != nil {
			return
		}
		inputs.mosaic, inputs.err = pix.BayerGRBG(inputs.rgb)
	})
	return inputs.gray, inputs.rgb, inputs.mosaic, inputs.err
}

// Apps returns the harness's application suite: the five benchmark apps of
// the paper's evaluation plus a synthetic synchronous pipeline exercising
// Stream edges (§III-C2).
func Apps() []App {
	return []App{
		&conv2dApp{},
		&debayerApp{},
		&histeqApp{},
		&kmeansApp{},
		&dwt53App{},
		&syncPipeApp{},
	}
}

// AppNamed returns the suite app with the given name, or nil.
func AppNamed(name string) App {
	for _, a := range Apps() {
		if a.Name() == name {
			return a
		}
	}
	return nil
}

// --- checksums and validators -------------------------------------------

func sumImage(im *pix.Image) uint64 {
	h := uint64(fnv1aInit)
	if im == nil {
		return h
	}
	h = fnv1aStep(h, uint64(im.W))
	h = fnv1aStep(h, uint64(im.H))
	h = fnv1aStep(h, uint64(im.C))
	for _, v := range im.Pix {
		h = fnv1aStep(h, uint64(uint32(v)))
	}
	return h
}

// validImage rejects snapshots that a consumer could not decode: wrong
// shape, wrong backing length, or values outside [lo, hi].
func validImage(w, h, c int, lo, hi int32) func(*pix.Image) error {
	return func(im *pix.Image) error {
		if im == nil {
			return errors.New("nil image")
		}
		if im.W != w || im.H != h || im.C != c {
			return fmt.Errorf("shape %dx%dx%d, want %dx%dx%d", im.W, im.H, im.C, w, h, c)
		}
		if len(im.Pix) != w*h*c {
			return fmt.Errorf("backing length %d, want %d", len(im.Pix), w*h*c)
		}
		for i, v := range im.Pix {
			if v < lo || v > hi {
				return fmt.Errorf("pix[%d] = %d outside [%d, %d]", i, v, lo, hi)
			}
		}
		return nil
	}
}

// --- conv2d --------------------------------------------------------------

type conv2dApp struct{}

func (*conv2dApp) Name() string { return "conv2d" }

func (*conv2dApp) Features() Features {
	return Features{Workers: true, Policies: true, Snapshots: true, MaxGranularity: 256, Storage: true}
}

func (*conv2dApp) Stages() []string { return []string{"convolve"} }

func (a *conv2dApp) Build(env *Env, s Schedule) (*Instance, error) {
	in, _, _, err := sharedInputs()
	if err != nil {
		return nil, err
	}
	cfg := conv2d.Config{
		Workers:     s.Workers,
		Granularity: s.Granularity,
		Snapshot:    s.Snapshot,
		Publish:     s.Policy,
	}
	if s.StorageUpset > 0 {
		cfg.Storage = &conv2d.StorageConfig{Prob: s.StorageUpset, Seed: s.Seed | 1}
	}
	run, err := conv2d.New(in, cfg)
	if err != nil {
		return nil, err
	}
	sink := AttachProbe(env, run.Out, sumImage, validImage(in.W, in.H, 1, 0, 255))
	inst := &Instance{Automaton: run.Automaton, Probes: []*Probe{sink}, Sink: sink}
	if s.StorageUpset == 0 {
		golden, err := goldenSum("conv2d", func() (*pix.Image, error) { return conv2d.Precise(in, conv2d.Config{}) })
		if err != nil {
			return nil, err
		}
		inst.GoldenSum, inst.HasGolden = golden, true
	}
	return inst, nil
}

// --- debayer -------------------------------------------------------------

type debayerApp struct{}

func (*debayerApp) Name() string { return "debayer" }

func (*debayerApp) Features() Features {
	return Features{Workers: true, Policies: true, Snapshots: true, MaxGranularity: 256}
}

func (*debayerApp) Stages() []string { return []string{"interpolate"} }

func (a *debayerApp) Build(env *Env, s Schedule) (*Instance, error) {
	_, _, mosaic, err := sharedInputs()
	if err != nil {
		return nil, err
	}
	run, err := debayer.New(mosaic, debayer.Config{
		Workers:     s.Workers,
		Granularity: s.Granularity,
		Snapshot:    s.Snapshot,
		Publish:     s.Policy,
	})
	if err != nil {
		return nil, err
	}
	sink := AttachProbe(env, run.Out, sumImage, validImage(mosaic.W, mosaic.H, 3, 0, 255))
	golden, err := goldenSum("debayer", func() (*pix.Image, error) { return debayer.Precise(mosaic, debayer.Config{}) })
	if err != nil {
		return nil, err
	}
	return &Instance{
		Automaton: run.Automaton,
		Probes:    []*Probe{sink},
		Sink:      sink,
		GoldenSum: golden,
		HasGolden: true,
	}, nil
}

// --- histeq --------------------------------------------------------------

type histeqApp struct{}

func (*histeqApp) Name() string { return "histeq" }

func (*histeqApp) Features() Features {
	return Features{Workers: true, Policies: true, Snapshots: true, MaxGranularity: 256, Edges: true}
}

func (*histeqApp) Stages() []string { return []string{"hist", "cdf", "lut", "apply"} }

func (a *histeqApp) Build(env *Env, s Schedule) (*Instance, error) {
	in, _, _, err := sharedInputs()
	if err != nil {
		return nil, err
	}
	run, err := histeq.New(in, histeq.Config{
		Workers:          s.Workers,
		ApplyGranularity: s.Granularity,
		Snapshot:         s.Snapshot,
		Publish:          s.Policy,
	})
	if err != nil {
		return nil, err
	}
	pixels := in.Pixels()
	histProbe := AttachProbe(env, run.HistBuf, func(h *histeq.Hist) uint64 {
		sum := uint64(fnv1aInit)
		for _, c := range h.Counts {
			sum = fnv1aStep(sum, uint64(c))
		}
		return fnv1aStep(sum, uint64(h.Processed))
	}, func(h *histeq.Hist) error {
		if h == nil {
			return errors.New("nil histogram")
		}
		var total int64
		for v, c := range h.Counts {
			if c < 0 {
				return fmt.Errorf("negative count %d in bin %d", c, v)
			}
			total += c
		}
		if total != int64(h.Processed) {
			return fmt.Errorf("counts sum to %d but Processed = %d", total, h.Processed)
		}
		if h.Processed < 0 || h.Processed > pixels {
			return fmt.Errorf("processed %d outside [0, %d]", h.Processed, pixels)
		}
		return nil
	})
	cdfProbe := AttachProbe(env, run.CDFBuf, func(c *histeq.CDF) uint64 {
		sum := uint64(fnv1aInit)
		for _, v := range c.Cum {
			sum = fnv1aStep(sum, uint64(v))
		}
		return fnv1aStep(sum, uint64(c.Samples))
	}, func(c *histeq.CDF) error {
		if c == nil {
			return errors.New("nil CDF")
		}
		prev := int64(0)
		for v, cum := range c.Cum {
			if cum < prev {
				return fmt.Errorf("CDF decreases at bin %d: %d < %d", v, cum, prev)
			}
			prev = cum
		}
		if c.Cum[histeq.Bins-1] != c.Samples {
			return fmt.Errorf("CDF tail %d != samples %d", c.Cum[histeq.Bins-1], c.Samples)
		}
		return nil
	})
	lutProbe := AttachProbe(env, run.LUTBuf, func(l *histeq.LUT) uint64 {
		sum := uint64(fnv1aInit)
		for _, v := range l.Map {
			sum = fnv1aStep(sum, uint64(uint32(v)))
		}
		return sum
	}, func(l *histeq.LUT) error {
		if l == nil {
			return errors.New("nil LUT")
		}
		for v, m := range l.Map {
			if m < 0 || m > 255 {
				return fmt.Errorf("LUT[%d] = %d outside [0, 255]", v, m)
			}
		}
		return nil
	})
	sink := AttachProbe(env, run.Out, sumImage, validImage(in.W, in.H, 1, 0, 255))
	golden, err := goldenSum("histeq", func() (*pix.Image, error) { return histeq.Precise(in, histeq.Config{}) })
	if err != nil {
		return nil, err
	}
	return &Instance{
		Automaton: run.Automaton,
		Probes:    []*Probe{histProbe, cdfProbe, lutProbe, sink},
		Sink:      sink,
		GoldenSum: golden,
		HasGolden: true,
	}, nil
}

// --- kmeans --------------------------------------------------------------

type kmeansApp struct{}

func (*kmeansApp) Name() string { return "kmeans" }

func (*kmeansApp) Features() Features {
	return Features{Workers: true, Policies: true, Snapshots: true, MaxGranularity: 256, Edges: true}
}

func (*kmeansApp) Stages() []string { return []string{"cluster", "reduce"} }

func (a *kmeansApp) Build(env *Env, s Schedule) (*Instance, error) {
	_, rgb, _, err := sharedInputs()
	if err != nil {
		return nil, err
	}
	cfg := kmeans.Config{
		Workers:            s.Workers,
		ClusterGranularity: s.Granularity,
		Snapshot:           s.Snapshot,
		Publish:            s.Policy,
	}
	run, err := kmeans.New(rgb, cfg)
	if err != nil {
		return nil, err
	}
	modelProbe := AttachProbe(env, run.ModelBuf, func(m *kmeans.Model) uint64 {
		sum := uint64(fnv1aInit)
		sum = fnv1aStep(sum, uint64(m.Iter))
		for _, c := range m.Centroids {
			for _, v := range c {
				sum = fnv1aStep(sum, uint64(uint32(v)))
			}
		}
		return sum
	}, func(m *kmeans.Model) error {
		if m == nil {
			return errors.New("nil model")
		}
		if len(m.Centroids) == 0 {
			return errors.New("no centroids")
		}
		for i, c := range m.Centroids {
			for ch, v := range c {
				if v < 0 || v > 255 {
					return fmt.Errorf("centroid %d channel %d = %d outside [0, 255]", i, ch, v)
				}
			}
		}
		return nil
	})
	sink := AttachProbe(env, run.Out, sumImage, validImage(rgb.W, rgb.H, 3, 0, 255))
	golden, err := goldenSum("kmeans", func() (*pix.Image, error) { return kmeans.Precise(rgb, kmeans.Config{}) })
	if err != nil {
		return nil, err
	}
	return &Instance{
		Automaton: run.Automaton,
		Probes:    []*Probe{modelProbe, sink},
		Sink:      sink,
		GoldenSum: golden,
		HasGolden: true,
	}, nil
}

// --- dwt53 ---------------------------------------------------------------

type dwt53App struct{}

func (*dwt53App) Name() string { return "dwt53" }

func (*dwt53App) Features() Features {
	return Features{Workers: true, Edges: true}
}

func (*dwt53App) Stages() []string { return []string{"forward", "inverse"} }

func (a *dwt53App) Build(env *Env, s Schedule) (*Instance, error) {
	in, _, _, err := sharedInputs()
	if err != nil {
		return nil, err
	}
	run, err := dwt53.New(in, dwt53.Config{Workers: s.Workers})
	if err != nil {
		return nil, err
	}
	// Wavelet coefficients are signed and perforated reconstructions may
	// over/undershoot the pixel range slightly, so the validators bound
	// shape and a generous value band rather than [0, 255].
	coefProbe := AttachProbe(env, run.Coef, sumImage, validImage(in.W, in.H, 1, -4096, 4096))
	sink := AttachProbe(env, run.Out, sumImage, validImage(in.W, in.H, 1, -4096, 4096))
	golden, err := goldenSum("dwt53", func() (*pix.Image, error) { return dwt53.Precise(in, dwt53.Config{}) })
	if err != nil {
		return nil, err
	}
	return &Instance{
		Automaton: run.Automaton,
		Probes:    []*Probe{coefProbe, sink},
		Sink:      sink,
		GoldenSum: golden,
		HasGolden: true,
	}, nil
}

// --- syncpipe ------------------------------------------------------------

// syncPipeApp is a synthetic two-stage synchronous pipeline (§III-C2): a
// diffusive producer squares 0..n-1, streaming every update X_i to a
// distributive consumer that folds a running sum of squares. It exists to
// put Stream edges (Send/Recv backpressure, EdgeRecv starvation faults)
// under the same conformance invariants as the benchmark apps. Both
// buffers publish one version per element, so a snapshot's expected value
// is an exact function of its version — the strongest decodability check
// in the suite.
type syncPipeApp struct{}

const syncPipeN = 64

func (*syncPipeApp) Name() string { return "syncpipe" }

func (*syncPipeApp) Features() Features { return Features{Edges: true} }

func (*syncPipeApp) Stages() []string { return []string{"square", "sum"} }

// sumOfSquares is the sequential golden: sum of i^2 for i in [0, n).
func sumOfSquares(n int) int64 {
	m := int64(n)
	return m * (m - 1) * (2*m - 1) / 6
}

func (a *syncPipeApp) Build(env *Env, s Schedule) (*Instance, error) {
	prodBuf := core.NewBuffer[int64]("syncpipe-squares", nil)
	sumBuf := core.NewBuffer[int64]("syncpipe-sum", nil)
	stream, err := core.NewStream[int64](2)
	if err != nil {
		return nil, err
	}
	auto := core.New()
	if err := auto.AddStage("square", func(c *core.Context) error {
		var running int64
		for i := 0; i < syncPipeN; i++ {
			if err := c.Checkpoint(); err != nil {
				return err
			}
			sq := int64(i) * int64(i)
			running += sq
			if err := stream.Send(c, core.Update[int64]{Seq: i + 1, Data: sq, Last: i == syncPipeN-1}); err != nil {
				return err
			}
			if _, err := prodBuf.Publish(running, i == syncPipeN-1); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if err := auto.AddStage("sum", func(c *core.Context) error {
		var acc int64
		return core.SyncConsume(c, stream, func(u core.Update[int64]) error {
			acc += u.Data
			_, err := sumBuf.Publish(acc, u.Last)
			return err
		})
	}); err != nil {
		return nil, err
	}
	// What a production constructor registers with OnReset, the harness app
	// registers too: the reset-reuse sweep checks this automaton out again,
	// and an interrupted cycle may leave in-flight elements in the stream.
	auto.OnReset(func() {
		stream.Reset()
		prodBuf.Reset()
		sumBuf.Reset()
	})
	sumInt := func(v int64) uint64 { return fnv1aStep(fnv1aInit, uint64(v)) }
	// Both stages publish once per element, so version v of either buffer
	// must hold exactly the sum of the first v squares. The validator
	// counts publishes itself (it runs once per publish, in order), making
	// every intermediate snapshot checkable against a closed form. The
	// counter is per-run state, so a rewind is registered alongside it.
	exactSums := func(name string) func(int64) error {
		published := 0
		env.OnReset(func() { published = 0 })
		return func(v int64) error {
			published++
			if want := sumOfSquares(published); v != want {
				return fmt.Errorf("%s version %d holds %d, want %d", name, published, v, want)
			}
			return nil
		}
	}
	prodProbe := AttachProbe(env, prodBuf, sumInt, exactSums("squares"))
	sink := AttachProbe(env, sumBuf, sumInt, exactSums("sum"))
	return &Instance{
		Automaton: auto,
		Probes:    []*Probe{prodProbe, sink},
		Sink:      sink,
		GoldenSum: sumInt(sumOfSquares(syncPipeN)),
		HasGolden: true,
	}, nil
}

// --- golden cache --------------------------------------------------------

// goldenCache memoizes each app's sequential golden checksum; the suite
// re-derives instances hundreds of times per run and the golden never
// changes for the fixed shared inputs.
var goldenCache sync.Map // name -> uint64

func goldenSum(name string, precise func() (*pix.Image, error)) (uint64, error) {
	if v, ok := goldenCache.Load(name); ok {
		return v.(uint64), nil
	}
	img, err := precise()
	if err != nil {
		return 0, err
	}
	sum := sumImage(img)
	goldenCache.Store(name, sum)
	return sum, nil
}
