package conform

import (
	"context"
	"fmt"
	"testing"

	"anytime/internal/core"
)

// The runner-equivalence property: for a fixed seed and granularity, the
// per-update runner (DiffusiveWorkers) and the batched runner
// (DiffusiveBatch) must produce the same publish sequence — one snapshot
// per round boundary, at the same processed counts, with the same buffer
// versions — and bit-identical final outputs, regardless of worker count.
// This is what licenses the core round loop's batched-checkpoint execution
// and the per-worker span division as pure optimizations: every observable
// of the anytime contract (version sequence, snapshot contents, final
// output) is pinned across execution strategies.
//
// The sweep uses PublishEveryRound: the demand and adaptive policies
// publish by wall-clock or reader timing and are deliberately
// non-deterministic across runs, so they cannot pin a version sequence.

// equivHash is a seeded splitmix64-style position hash, so every output
// element depends on both the seed and the position and accidental
// reorderings cannot cancel.
func equivHash(seed uint64, pos int) int32 {
	z := seed + uint64(pos)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int32(z ^ (z >> 31))
}

// equivPublish is one recorded publish opportunity: the processed count the
// snapshot saw and a checksum of the output array at that moment.
type equivPublish struct {
	processed int
	sum       uint64
}

// runEquivalence executes one diffusive pass of total updates writing
// equivHash values into a fresh output array, recording every publish. It
// returns the publish log, the final output, and the final buffer version.
func runEquivalence(t *testing.T, total, granularity, workers int, seed uint64, batch bool) ([]equivPublish, []int32, core.Version) {
	t.Helper()
	outArr := make([]int32, total)
	var log []equivPublish
	snapshot := func(processed int) (int, error) {
		var sum uint64
		for _, v := range outArr {
			sum = sum*31 + uint64(uint32(v))
		}
		log = append(log, equivPublish{processed: processed, sum: sum})
		return processed, nil
	}
	cfg := core.RoundConfig{Granularity: granularity, Workers: workers}
	out := core.NewBuffer[int]("out", nil)
	a := core.New()
	stage := func(c *core.Context) error {
		if batch {
			return core.DiffusiveBatch(c, out, total,
				func(worker, lo, hi int) error {
					for pos := lo; pos < hi; pos++ {
						outArr[pos] = equivHash(seed, pos)
					}
					return nil
				},
				snapshot, cfg, true)
		}
		return core.DiffusiveWorkers(c, out, total,
			func(worker, pos int) error {
				outArr[pos] = equivHash(seed, pos)
				return nil
			},
			snapshot, cfg)
	}
	if err := a.AddStage("equiv", stage); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	snap, ok := out.Latest()
	if !ok || !snap.Final {
		t.Fatalf("no final snapshot (ok=%v snap=%+v)", ok, snap)
	}
	return log, outArr, snap.Version
}

// TestConformRunnerEquivalence quick-checks the equivalence across
// granularities (including non-dividing and degenerate ones), worker
// counts, and both runners, against the per-update single-worker reference.
// Named TestConform* so the nightly `-run Conform` profile sweeps it.
func TestConformRunnerEquivalence(t *testing.T) {
	t.Parallel()
	const total = 4109 // prime: no granularity below divides it evenly
	for _, seed := range []uint64{1, 2, 3} {
		for _, granularity := range []int{1, 7, 64, 257, 1024, total} {
			ref, refOut, refVersion := runEquivalence(t, total, granularity, 1, seed, false)
			if len(ref) == 0 || ref[len(ref)-1].processed != total {
				t.Fatalf("g=%d: reference log malformed: %v", granularity, ref)
			}
			if refVersion != core.Version(len(ref)) {
				t.Fatalf("g=%d: reference published %d times but final version is %d",
					granularity, len(ref), refVersion)
			}
			for _, workers := range []int{1, 2, 4} {
				for _, batch := range []bool{false, true} {
					if workers == 1 && !batch {
						continue // the reference itself
					}
					name := fmt.Sprintf("seed=%d g=%d w=%d batch=%v", seed, granularity, workers, batch)
					log, outArr, version := runEquivalence(t, total, granularity, workers, seed, batch)
					if len(log) != len(ref) {
						t.Fatalf("%s: %d publishes, reference has %d", name, len(log), len(ref))
					}
					for i := range log {
						if log[i] != ref[i] {
							t.Fatalf("%s: publish %d is %+v, reference %+v", name, i, log[i], ref[i])
						}
					}
					if version != refVersion {
						t.Fatalf("%s: final version %d, reference %d", name, version, refVersion)
					}
					for pos := range outArr {
						if outArr[pos] != refOut[pos] {
							t.Fatalf("%s: output[%d] = %d, reference %d", name, pos, outArr[pos], refOut[pos])
						}
					}
				}
			}
		}
	}
}
