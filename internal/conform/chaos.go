package conform

import (
	"sync"
	"sync/atomic"
	"time"

	"anytime/internal/core"
)

// chaosScheduler is the harness's seeded virtual scheduler: it compiles a
// Schedule's perturbations into per-stage plans keyed by checkpoint
// ordinal and drives them through core.Hooks. Because a stage's checkpoint
// sequence is a deterministic function of its own loop, "stall stage X at
// its 7th checkpoint" fires at the same point of X's execution on every
// run with the same seed — the OS may interleave the other stages
// differently, which is precisely the nondeterminism the invariants must
// be robust to.
type chaosScheduler struct {
	auto  *core.Automaton
	plans map[string]*stagePlan
	edge  time.Duration

	stopOnce sync.Once
	stopCh   chan struct{}

	// pausers tracks the helper goroutines that re-open the pause gate, so
	// a run can drain them before tearing down.
	pausers sync.WaitGroup
}

type stagePlan struct {
	counter atomic.Int64
	pauses  map[int]time.Duration
	delays  map[int]time.Duration
	stopAt  int
}

// newChaosScheduler compiles the schedule for an automaton whose stages
// are named by stages. The returned scheduler's hooks must be attached
// with SetHooks before Start.
func newChaosScheduler(auto *core.Automaton, stages []string, s Schedule) *chaosScheduler {
	c := &chaosScheduler{
		auto:   auto,
		plans:  make(map[string]*stagePlan, len(stages)),
		edge:   s.EdgeDelay,
		stopCh: make(chan struct{}),
	}
	plan := func(stage string) *stagePlan {
		p := c.plans[stage]
		if p == nil {
			p = &stagePlan{pauses: map[int]time.Duration{}, delays: map[int]time.Duration{}}
			c.plans[stage] = p
		}
		return p
	}
	for _, name := range stages {
		plan(name)
	}
	for _, pp := range s.Pauses {
		plan(pp.Stage).pauses[pp.At] = pp.Dur
	}
	for _, d := range s.Delays {
		plan(d.Stage).delays[d.At] = d.Dur
	}
	if s.Stop.Kind == StopAtCheckpoint {
		plan(s.Stop.Stage).stopAt = s.Stop.Count
	}
	return c
}

// trigger requests the interrupt; the run supervisor performs the actual
// Stop (an observer cannot: Stop blocks until every stage exits, and the
// observer runs on a stage goroutine).
func (c *chaosScheduler) trigger() {
	c.stopOnce.Do(func() { close(c.stopCh) })
}

// hooks returns the core.Hooks implementing the compiled plan.
func (c *chaosScheduler) hooks() *core.Hooks {
	return &core.Hooks{
		Checkpoint: func(stage string, wait time.Duration) {
			p := c.plans[stage]
			if p == nil {
				return
			}
			n := int(p.counter.Add(1))
			if d, ok := p.delays[n]; ok {
				time.Sleep(d)
			}
			if d, ok := p.pauses[n]; ok {
				// Close the pause gate; a helper re-opens it after d. The
				// pausing stage itself blocks at its next checkpoint, so
				// the resume must come from outside the pipeline.
				c.auto.Pause()
				c.pausers.Add(1)
				go func() {
					defer c.pausers.Done()
					time.Sleep(d)
					c.auto.Resume()
				}()
			}
			if p.stopAt != 0 && n == p.stopAt {
				c.trigger()
			}
		},
		EdgeWait: func(stage, buffer string, after core.Version) {
			if c.edge > 0 {
				time.Sleep(c.edge)
			}
		},
		EdgeRecv: func(stage string) {
			if c.edge > 0 {
				time.Sleep(c.edge)
			}
		},
	}
}
