package conform

import (
	"fmt"
	"strings"
	"time"

	"anytime/internal/core"
	"anytime/internal/pix"
)

// rng is the harness's deterministic generator (splitmix64). Every random
// decision of a conformance run flows from one of these, so a seed fully
// determines the schedule it expands into.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// chance reports true with probability pct/100.
func (r *rng) chance(pct int) bool { return r.intn(100) < pct }

// StopKind selects how a schedule interrupts its automaton.
type StopKind int

const (
	// StopNone runs the automaton to its precise output.
	StopNone StopKind = iota
	// StopAtPublish stops after the run's Count-th publish across all
	// probed buffers.
	StopAtPublish
	// StopAtCheckpoint stops when stage Stage reaches its Count-th
	// checkpoint. The trigger is deterministic in the stage's own
	// execution; the progress of sibling stages at that instant is exactly
	// what the invariants must be robust to.
	StopAtCheckpoint
)

func (k StopKind) String() string {
	switch k {
	case StopNone:
		return "none"
	case StopAtPublish:
		return "publish"
	case StopAtCheckpoint:
		return "checkpoint"
	default:
		return fmt.Sprintf("StopKind(%d)", int(k))
	}
}

// StopPoint is a schedule's interrupt point.
type StopPoint struct {
	Kind  StopKind
	Stage string // StopAtCheckpoint only
	Count int    // 1-based trigger ordinal
}

// ChaosPoint is one seeded scheduling perturbation: at stage Stage's At-th
// checkpoint, stall (delay fault) or close the pause gate (pause fault)
// for Dur.
type ChaosPoint struct {
	Stage string
	At    int
	Dur   time.Duration
}

// Schedule is one fully expanded conformance plan: the configuration
// dimensions the explorer permutes (workers × publish policy × snapshot
// mode × granularity), the interrupt point, and the injected faults. A
// Schedule is a pure function of (App, Seed); see DeriveSchedule.
type Schedule struct {
	Seed        uint64
	Workers     int
	Policy      core.PublishPolicy
	Snapshot    pix.SnapshotMode
	Granularity int // 0 selects the app default
	Stop        StopPoint
	// Pauses close the automaton's pause gate at the named stage's At-th
	// checkpoint for Dur; a helper then resumes it (the paper's
	// pause-anywhere interrupt, §III).
	Pauses []ChaosPoint
	// Delays stall the named stage at its At-th checkpoint for Dur,
	// skewing worker interleavings the way a noisy scheduler would.
	Delays []ChaosPoint
	// EdgeDelay starves asynchronous and synchronous pipeline edges: every
	// consumer blocks this long before taking its next snapshot/update.
	EdgeDelay time.Duration
	// StorageUpset, when positive, routes input reads of apps built on
	// approximate storage through internal/store's drowsy-upset machinery
	// with this per-bit read upset probability (§IV-B2).
	StorageUpset float64
}

func (s Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d workers=%d policy=%s snapshot=%s", s.Seed, s.Workers, policyName(s.Policy), snapshotName(s.Snapshot))
	if s.Granularity > 0 {
		fmt.Fprintf(&b, " gran=%d", s.Granularity)
	}
	switch s.Stop.Kind {
	case StopAtPublish:
		fmt.Fprintf(&b, " stop=publish#%d", s.Stop.Count)
	case StopAtCheckpoint:
		fmt.Fprintf(&b, " stop=%s@ckpt#%d", s.Stop.Stage, s.Stop.Count)
	}
	for _, p := range s.Pauses {
		fmt.Fprintf(&b, " pause=%s@%d/%v", p.Stage, p.At, p.Dur)
	}
	for _, d := range s.Delays {
		fmt.Fprintf(&b, " delay=%s@%d/%v", d.Stage, d.At, d.Dur)
	}
	if s.EdgeDelay > 0 {
		fmt.Fprintf(&b, " edgedelay=%v", s.EdgeDelay)
	}
	if s.StorageUpset > 0 {
		fmt.Fprintf(&b, " upset=%g", s.StorageUpset)
	}
	return b.String()
}

func policyName(p core.PublishPolicy) string {
	switch p {
	case core.PublishEveryRound:
		return "every"
	case core.PublishOnDemand:
		return "demand"
	case core.PublishAdaptive:
		return "adaptive"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

func snapshotName(m pix.SnapshotMode) string {
	switch m {
	case pix.SnapshotClone:
		return "clone"
	case pix.SnapshotTiles:
		return "tiles"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// DeriveSchedule expands a seed into a concrete schedule for the app,
// sampling only the dimensions the app supports (Features). The expansion
// is deterministic: the same (app, seed) pair always yields the same
// schedule, which is what makes a reported failure reproducible.
func DeriveSchedule(app App, seed uint64) Schedule {
	r := newRNG(seed)
	feats := app.Features()
	stages := app.Stages()
	s := Schedule{Seed: seed, Workers: 1}
	if feats.Workers {
		s.Workers = 1 + r.intn(4)
	}
	if feats.Policies {
		s.Policy = []core.PublishPolicy{core.PublishEveryRound, core.PublishOnDemand, core.PublishAdaptive}[r.intn(3)]
	}
	if feats.Snapshots {
		s.Snapshot = []pix.SnapshotMode{pix.SnapshotClone, pix.SnapshotTiles}[r.intn(2)]
	}
	if feats.MaxGranularity > 0 && r.chance(50) {
		s.Granularity = 1 + r.intn(feats.MaxGranularity)
	}
	// Three in four schedules interrupt the automaton somewhere; the rest
	// run to the precise output and pin final-output equivalence.
	switch r.intn(4) {
	case 0:
		// StopNone
	case 1:
		s.Stop = StopPoint{Kind: StopAtPublish, Count: 1 + r.intn(12)}
	default:
		s.Stop = StopPoint{
			Kind:  StopAtCheckpoint,
			Stage: stages[r.intn(len(stages))],
			Count: 1 + r.intn(24),
		}
	}
	for i, n := 0, r.intn(3); i < n; i++ {
		s.Pauses = append(s.Pauses, ChaosPoint{
			Stage: stages[r.intn(len(stages))],
			At:    1 + r.intn(16),
			Dur:   time.Duration(50+r.intn(300)) * time.Microsecond,
		})
	}
	for i, n := 0, r.intn(4); i < n; i++ {
		s.Delays = append(s.Delays, ChaosPoint{
			Stage: stages[r.intn(len(stages))],
			At:    1 + r.intn(24),
			Dur:   time.Duration(1+r.intn(200)) * time.Microsecond,
		})
	}
	if feats.Edges && r.chance(30) {
		s.EdgeDelay = time.Duration(20+r.intn(200)) * time.Microsecond
	}
	if feats.Storage && r.chance(25) {
		s.StorageUpset = []float64{1e-5, 1e-4, 1e-3}[r.intn(3)]
	}
	return s
}
