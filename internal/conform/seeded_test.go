package conform

import (
	"context"
	"sync"
	"testing"

	"anytime/internal/apps/conv2d"
	"anytime/internal/apps/debayer"
	"anytime/internal/apps/histeq"
	"anytime/internal/apps/kmeans"
	"anytime/internal/core"
	"anytime/internal/pix"
)

// The seeded-cache sweep: warm-starting an automaton from a cached
// approximation (core.Automaton.SeedFrom, the internal/snapcache serving
// path) must preserve the §III guarantees relative to a cold run —
// publishes stay strictly monotone from the seed version, every published
// snapshot stays decodable, and the forced-precise final output is
// bit-identical to the cold baseline. Runs in the nightly `-run Conform`
// cron and under -race in the PR race pass.

// seededCase adapts one warm-startable app for the sweep.
type seededCase struct {
	name   string
	c      int // output channels
	build  func(workers int) (*core.Automaton, *core.Buffer[*pix.Image], error)
	golden func() (*pix.Image, error)
}

func seededCases(t *testing.T) []seededCase {
	t.Helper()
	gray, rgb, mosaic, err := sharedInputs()
	if err != nil {
		t.Fatal(err)
	}
	return []seededCase{
		{
			name: "conv2d", c: 1,
			build: func(w int) (*core.Automaton, *core.Buffer[*pix.Image], error) {
				run, err := conv2d.New(gray, conv2d.Config{Workers: w, Granularity: 64})
				if err != nil {
					return nil, nil, err
				}
				return run.Automaton, run.Out, nil
			},
			golden: func() (*pix.Image, error) { return conv2d.Precise(gray, conv2d.Config{}) },
		},
		{
			name: "debayer", c: 3,
			build: func(w int) (*core.Automaton, *core.Buffer[*pix.Image], error) {
				run, err := debayer.New(mosaic, debayer.Config{Workers: w, Granularity: 64})
				if err != nil {
					return nil, nil, err
				}
				return run.Automaton, run.Out, nil
			},
			golden: func() (*pix.Image, error) { return debayer.Precise(mosaic, debayer.Config{}) },
		},
		{
			name: "histeq", c: 1,
			build: func(w int) (*core.Automaton, *core.Buffer[*pix.Image], error) {
				run, err := histeq.New(gray, histeq.Config{Workers: w})
				if err != nil {
					return nil, nil, err
				}
				return run.Automaton, run.Out, nil
			},
			golden: func() (*pix.Image, error) { return histeq.Precise(gray, histeq.Config{}) },
		},
		{
			name: "kmeans", c: 3,
			build: func(w int) (*core.Automaton, *core.Buffer[*pix.Image], error) {
				run, err := kmeans.New(rgb, kmeans.Config{Workers: w})
				if err != nil {
					return nil, nil, err
				}
				return run.Automaton, run.Out, nil
			},
			golden: func() (*pix.Image, error) { return kmeans.Precise(rgb, kmeans.Config{}) },
		},
	}
}

// runSeeded drives one warm-vs-cold cycle for an app: interrupt a cold run
// a few publishes in (producing the "cached" approximation a real serving
// tier would admit), reset, seed the same instance from it, run the seeded
// instance to its precise output, and check every probe invariant plus
// final equivalence against the sequential golden.
func runSeeded(t *testing.T, tc seededCase, workers int) {
	t.Helper()
	a, out, err := tc.build(workers)
	if err != nil {
		t.Fatal(err)
	}
	env := &Env{Col: &Collector{}}
	sink := AttachProbe(env, out, sumImage, validImage(conformSize, conformSize, tc.c, 0, 255))

	// Cold phase: stop after a couple of publishes to capture a genuine
	// mid-run approximation. Stop runs off the publishing goroutine (it
	// waits for the stages to exit).
	stopCh := make(chan struct{})
	var once sync.Once
	env.OnPublish = func() {
		if sink.Publishes() >= 2 {
			once.Do(func() { close(stopCh) })
		}
	}
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		<-stopCh
		a.Stop()
	}()
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil && err != core.ErrStopped {
		t.Fatalf("cold phase: %v", err)
	}
	once.Do(func() { close(stopCh) }) // finished before the trigger
	<-stopped
	sink.VerifyQuiescent()
	if v := env.Col.Violations(); len(v) != 0 {
		t.Fatalf("cold phase violations: %v", v)
	}
	cached, ok := out.Peek()
	if !ok {
		t.Fatal("cold phase published nothing")
	}

	// Warm phase: reset, seed, re-prove the invariants from the seed.
	env.Col = &Collector{}
	env.OnPublish = nil
	if err := a.Reset(); err != nil {
		t.Fatal(err)
	}
	env.reset()
	if err := a.SeedFrom(cached.Value, cached.Version); err != nil {
		t.Fatalf("SeedFrom: %v", err)
	}
	sink.SeedVersion(cached.Version)
	seeded, ok := out.Peek()
	if !ok || seeded.Version != cached.Version || seeded.Final {
		t.Fatalf("seeded buffer state = %+v, ok=%v", seeded, ok)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatalf("seeded run: %v", err)
	}
	sink.VerifyQuiescent()
	if v := env.Col.Violations(); len(v) != 0 {
		t.Fatalf("seeded run violations: %v", v)
	}
	final, _, isFinal, ok := sink.Last()
	if !ok || !isFinal {
		t.Fatalf("seeded run did not reach a final output (version %d, final %v)", final, isFinal)
	}
	if final <= cached.Version {
		t.Fatalf("final version %d not past seed %d", final, cached.Version)
	}
	golden, err := tc.golden()
	if err != nil {
		t.Fatal(err)
	}
	fs, _ := out.Peek()
	if !fs.Value.Equal(golden) {
		t.Fatal("seeded precise final differs from the cold golden output")
	}
}

func TestConformSeededWarmStart(t *testing.T) {
	for _, tc := range seededCases(t) {
		for _, workers := range []int{1, 3} {
			tc, workers := tc, workers
			t.Run(tc.name, func(t *testing.T) { runSeeded(t, tc, workers) })
		}
	}
}

// TestConformSeededDeltaStart proves the cross-request delta path: frame
// B's run is seeded with frame A's cached output plus the dilated
// changed-tile set (pix.TileDiff of the two inputs), and must still
// converge to exactly Precise(B).
func TestConformSeededDeltaStart(t *testing.T) {
	frameA, err := pix.SyntheticGray(conformSize, conformSize, 11)
	if err != nil {
		t.Fatal(err)
	}
	frameB := frameA.Clone()
	for y := 8; y < 16; y++ {
		for x := 8; x < 16; x++ {
			frameB.SetGray(x, y, 255-frameB.Gray(x, y))
		}
	}

	runA, err := conv2d.New(frameA, conv2d.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := runA.Automaton.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := runA.Automaton.Wait(); err != nil {
		t.Fatal(err)
	}
	cached, ok := runA.Out.Peek()
	if !ok || !cached.Final {
		t.Fatal("frame A did not reach its precise output")
	}

	runB, err := conv2d.New(frameB, conv2d.Config{Workers: 2, Granularity: 64})
	if err != nil {
		t.Fatal(err)
	}
	env := &Env{Col: &Collector{}}
	sink := AttachProbe(env, runB.Out, sumImage, validImage(conformSize, conformSize, 1, 0, 255))
	stale, err := pix.TileDiff(frameA, frameB)
	if err != nil {
		t.Fatal(err)
	}
	if !stale.Any() {
		t.Fatal("tile diff of distinct frames is empty")
	}
	stale.Dilate()
	if err := runB.Automaton.SeedFrom(&pix.SeedFrame{Image: cached.Value, Stale: stale}, cached.Version); err != nil {
		t.Fatalf("delta SeedFrom: %v", err)
	}
	sink.SeedVersion(cached.Version)
	if err := runB.Automaton.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := runB.Automaton.Wait(); err != nil {
		t.Fatal(err)
	}
	sink.VerifyQuiescent()
	if v := env.Col.Violations(); len(v) != 0 {
		t.Fatalf("delta run violations: %v", v)
	}
	golden, err := conv2d.Precise(frameB, conv2d.Config{})
	if err != nil {
		t.Fatal(err)
	}
	fs, _ := runB.Out.Peek()
	if !fs.Final {
		t.Fatal("delta run did not finish")
	}
	if !fs.Value.Equal(golden) {
		t.Fatal("delta-seeded precise final differs from Precise(frame B)")
	}
}

// TestConformSeededCorruptCacheCaught is the planted-bug self-test for the
// cache path: a corrupted cached snapshot (values no consumer could
// decode) seeded into a run must be convicted by the decodability
// validator at the first publish — the probes are the safety net between
// a bad cache entry and a client. The final output must still be valid:
// every pixel is recomputed from the input.
func TestConformSeededCorruptCacheCaught(t *testing.T) {
	gray, _, _, err := sharedInputs()
	if err != nil {
		t.Fatal(err)
	}
	run, err := conv2d.New(gray, conv2d.Config{Workers: 1, Granularity: 64})
	if err != nil {
		t.Fatal(err)
	}
	env := &Env{Col: &Collector{}}
	sink := AttachProbe(env, run.Out, sumImage, validImage(conformSize, conformSize, 1, 0, 255))

	corrupt := pix.MustNew(conformSize, conformSize, 1)
	corrupt.Fill(999) // undecodable: outside the 8-bit pixel range
	if err := run.Automaton.SeedFrom(corrupt, 4); err != nil {
		t.Fatalf("SeedFrom: %v", err)
	}
	sink.SeedVersion(4)
	if err := run.Automaton.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := run.Automaton.Wait(); err != nil {
		t.Fatal(err)
	}
	sink.VerifyQuiescent()
	convicted := false
	for _, v := range env.Col.Violations() {
		switch v.Invariant {
		case "invalid-snapshot":
			convicted = true
		case "version-monotone", "single-writer", "publish-after-final", "snapshot-mutated":
			t.Errorf("corrupt seed tripped an unrelated invariant: %v", v)
		}
	}
	if !convicted {
		t.Fatal("corrupted cached snapshot was not convicted by the decodability validator")
	}
	// The precise final recomputes every pixel from the input: valid again.
	fs, _ := run.Out.Peek()
	if !fs.Final {
		t.Fatal("run did not finish")
	}
	if verr := validImage(conformSize, conformSize, 1, 0, 255)(fs.Value); verr != nil {
		t.Fatalf("final output still corrupt: %v", verr)
	}
}
