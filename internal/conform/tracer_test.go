package conform

import (
	"context"
	"testing"

	"anytime/internal/reqtrace"
)

// TestTracerRidesChaosSweeps proves the observability contract from the
// harness's side: a request tracer attached through Env.Hooks rides along
// inside seeded chaos runs — interrupts, pauses, injected faults — without
// perturbing a single invariant, while still observing every run's
// lifecycle. The tracer is wired exactly as the serving path wires it: a
// permanent reqtrace.Slot whose CoreHooks are chained after the chaos
// scheduler's own hooks, with a fresh trace bound per run.
func TestTracerRidesChaosSweeps(t *testing.T) {
	t.Parallel()
	app := &conv2dApp{}
	slot := &reqtrace.Slot{}
	seeds := uint64(schedulesPerApp(t) / 4)
	if seeds < 4 {
		seeds = 4
	}
	for seed := uint64(1); seed <= seeds; seed++ {
		s := DeriveSchedule(app, seed)
		env := &Env{Col: &Collector{}, Hooks: slot.CoreHooks()}
		inst, err := app.Build(env, s)
		if err != nil {
			t.Fatal(err)
		}
		_, tr := reqtrace.New(context.Background(), app.Name())
		slot.Bind(tr)
		res := runCycle(app, inst, env, s)
		slot.Unbind()
		tr.Finish(0)

		if res.Failed() {
			t.Fatalf("tracer perturbed seed %d:\n%s\nschedule: %s", seed, res.FailureSummary(), s)
		}
		// The chained hooks really fired: every run has its lifecycle spans.
		var starts, finishes int
		for _, e := range tr.Events() {
			switch e.Kind {
			case reqtrace.KindRunStart:
				starts++
			case reqtrace.KindRunFinish:
				finishes++
			}
		}
		if starts != 1 || finishes != 1 {
			t.Fatalf("seed %d: trace saw %d run.start / %d run.finish, want 1/1", seed, starts, finishes)
		}
	}
	// An unbound slot (no request in flight) must also be harmless.
	s := DeriveSchedule(app, 1)
	env := &Env{Col: &Collector{}, Hooks: slot.CoreHooks()}
	inst, err := app.Build(env, s)
	if err != nil {
		t.Fatal(err)
	}
	if res := runCycle(app, inst, env, s); res.Failed() {
		t.Fatalf("unbound tracer perturbed the run:\n%s", res.FailureSummary())
	}
}
