package sampling

import (
	"context"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"anytime/internal/core"
	"anytime/internal/perm"
)

func runStage(t *testing.T, fn func(*core.Context) error) error {
	t.Helper()
	a := core.New()
	if err := a.AddStage("stage", fn); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	return a.Wait()
}

func TestMapComputesEveryOutputOnce(t *testing.T) {
	const n = 256
	ord, err := perm.Tree1D(n)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, n)
	out := core.NewBuffer[int]("out", nil)
	err = runStage(t, func(c *core.Context) error {
		return Map(c, out, ord,
			func(dst int) error { counts[dst]++; return nil },
			func(processed int) (int, error) { return processed, nil },
			core.RoundConfig{Granularity: 64})
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range counts {
		if v != 1 {
			t.Errorf("output %d computed %d times", i, v)
		}
	}
	snap, ok := out.Latest()
	if !ok || !snap.Final || snap.Value != n {
		t.Errorf("final snapshot = %+v", snap)
	}
}

// TestMapTreePrefixIsLowResolution: halting an output-sampled map stage
// early must have filled a uniform low-resolution grid, which is the
// property that makes early snapshots recognizable images (Figure 5).
func TestMapTreePrefixIsLowResolution(t *testing.T) {
	const side = 16
	ord, err := perm.Tree2D(side, side)
	if err != nil {
		t.Fatal(err)
	}
	filled := make([]bool, side*side)
	fills := 0
	out := core.NewBuffer[int]("out", nil)
	stop := errors.New("halt")
	err = runStage(t, func(c *core.Context) error {
		return Map(c, out, ord,
			func(dst int) error {
				filled[dst] = true
				fills++
				if fills == 16 {
					return stop
				}
				return nil
			},
			func(processed int) (int, error) { return processed, nil },
			core.RoundConfig{Granularity: 16})
	})
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v", err)
	}
	// After exactly 16 fills of a 16x16 tree order, the 4x4 grid with
	// stride 4 must be complete.
	for r := 0; r < side; r += 4 {
		for c := 0; c < side; c += 4 {
			if !filled[r*side+c] {
				t.Errorf("low-res cell (%d,%d) unfilled after 16 samples", r, c)
			}
		}
	}
}

func sumReduce() Reduce[int64] {
	return Reduce[int64]{
		NewAcc:  func() int64 { return 0 },
		Consume: func(acc int64, idx int) int64 { return acc + int64(idx) },
		Merge:   func(dst, src int64) int64 { return dst + src },
		Snapshot: func(merged int64, processed, total int) (int64, error) {
			return ScaleCount(merged, processed, total), nil
		},
	}
}

func TestReduceExactFinalSum(t *testing.T) {
	const n = 4096
	ord, err := perm.PseudoRandom(n, 99)
	if err != nil {
		t.Fatal(err)
	}
	out := core.NewBuffer[int64]("sum", nil)
	for _, workers := range []int{1, 4} {
		out = core.NewBuffer[int64]("sum", nil)
		err = runStage(t, func(c *core.Context) error {
			return sumReduce().Run(c, out, ord, core.RoundConfig{Granularity: 512, Workers: workers})
		})
		if err != nil {
			t.Fatal(err)
		}
		snap, ok := out.Latest()
		if !ok || !snap.Final {
			t.Fatal("no final snapshot")
		}
		if snap.Value != int64(n)*(n-1)/2 {
			t.Errorf("workers=%d: final sum = %d, want %d", workers, snap.Value, int64(n)*(n-1)/2)
		}
	}
}

// TestReduceWeightedSnapshotsApproximateFinal: intermediate weighted
// snapshots of a sum over a pseudo-random order must approximate the true
// total (the paper's O'_i = O_i × n/i normalization), with error shrinking
// as the sample grows.
func TestReduceWeightedSnapshotsApproximateFinal(t *testing.T) {
	const n = 1 << 14
	ord, err := perm.PseudoRandom(n, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(int64(n) * (n - 1) / 2)
	var snaps []core.Snapshot[int64]
	out := core.NewBuffer[int64]("sum", nil)
	out.OnPublish(func(s core.Snapshot[int64]) { snaps = append(snaps, s) })
	err = runStage(t, func(c *core.Context) error {
		return sumReduce().Run(c, out, ord, core.RoundConfig{Granularity: n / 16, Workers: 2})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 16 {
		t.Fatalf("got %d snapshots", len(snaps))
	}
	for i, s := range snaps {
		relErr := math.Abs(float64(s.Value)-want) / want
		// Early samples tolerate more estimator noise than late ones.
		tol := 0.25
		if i >= len(snaps)/2 {
			tol = 0.10
		}
		if relErr > tol {
			t.Errorf("snapshot %d: weighted estimate off by %.1f%%", i, relErr*100)
		}
	}
	if snaps[len(snaps)-1].Value != int64(want) {
		t.Error("final snapshot not exact")
	}
}

func TestReduceValidation(t *testing.T) {
	ord, _ := perm.Sequential(4)
	out := core.NewBuffer[int64]("sum", nil)
	bad := Reduce[int64]{} // all nil
	err := runStage(t, func(c *core.Context) error {
		return bad.Run(c, out, ord, core.RoundConfig{})
	})
	if err == nil {
		t.Error("nil-field Reduce accepted")
	}
}

func TestReduceEmptyOrder(t *testing.T) {
	ord, _ := perm.Sequential(0)
	out := core.NewBuffer[int64]("sum", nil)
	err := runStage(t, func(c *core.Context) error {
		return sumReduce().Run(c, out, ord, core.RoundConfig{})
	})
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := out.Latest()
	if !ok || !snap.Final || snap.Value != 0 {
		t.Errorf("empty reduce snapshot = %+v", snap)
	}
}

// TestReduceIdempotentMax: idempotent operators need no weighting; check a
// max-reduction converges to the exact max and that early snapshots are
// lower bounds.
func TestReduceIdempotentMax(t *testing.T) {
	const n = 1024
	values := make([]int64, n)
	for i := range values {
		values[i] = int64((i * 2654435761) % 100000)
	}
	var wantMax int64
	for _, v := range values {
		if v > wantMax {
			wantMax = v
		}
	}
	maxReduce := Reduce[int64]{
		NewAcc: func() int64 { return math.MinInt64 },
		Consume: func(acc int64, idx int) int64 {
			if values[idx] > acc {
				return values[idx]
			}
			return acc
		},
		Merge: func(dst, src int64) int64 {
			if src > dst {
				return src
			}
			return dst
		},
		Snapshot: func(merged int64, processed, total int) (int64, error) { return merged, nil },
	}
	ord, err := perm.PseudoRandom(n, 31)
	if err != nil {
		t.Fatal(err)
	}
	var snaps []int64
	out := core.NewBuffer[int64]("max", nil)
	out.OnPublish(func(s core.Snapshot[int64]) { snaps = append(snaps, s.Value) })
	err = runStage(t, func(c *core.Context) error {
		return maxReduce.Run(c, out, ord, core.RoundConfig{Granularity: 128, Workers: 3})
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i] < snaps[i-1] {
			t.Error("max reduction regressed between snapshots")
		}
	}
	if snaps[len(snaps)-1] != wantMax {
		t.Errorf("final max = %d, want %d", snaps[len(snaps)-1], wantMax)
	}
}

func TestScaleCount(t *testing.T) {
	if got := ScaleCount(50, 50, 100); got != 100 {
		t.Errorf("ScaleCount(50,50,100) = %d", got)
	}
	if got := ScaleCount(7, 100, 100); got != 7 {
		t.Errorf("full population scaled: %d", got)
	}
	if got := ScaleCount(7, 120, 100); got != 7 {
		t.Errorf("overfull population scaled: %d", got)
	}
	if got := ScaleCount(7, 0, 100); got != 0 {
		t.Errorf("zero processed: %d", got)
	}
	if got := ScaleCount(7, 10, 0); got != 7 {
		t.Errorf("zero total with processed>=total: %d", got)
	}
}

func TestScaleFloat(t *testing.T) {
	if got := ScaleFloat(5, 10, 100); got != 50 {
		t.Errorf("ScaleFloat = %v", got)
	}
	if got := ScaleFloat(5, 100, 100); got != 5 {
		t.Errorf("full population: %v", got)
	}
	if got := ScaleFloat(5, 0, 100); got != 0 {
		t.Errorf("zero processed: %v", got)
	}
}

// TestScaleCountUnbiasedProperty: scaling a half-sample of a uniform value
// reproduces the full-population total exactly.
func TestScaleCountUnbiasedProperty(t *testing.T) {
	f := func(rawV uint16, rawN uint8) bool {
		v := int64(rawV)
		n := int(rawN)%100 + 2
		half := n / 2
		if half == 0 {
			return true
		}
		// Accumulated v per element over half the population.
		got := ScaleCount(v*int64(half), half, n)
		want := v * int64(n)
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		return diff <= int64(v) // at most one element of rounding error
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
