// Package sampling builds diffusive anytime stages from data-sampling
// approximations (paper §III-B2, "Data Sampling"). It connects the
// permutations of internal/perm to the execution machinery of
// internal/core:
//
//   - Output sampling (Map): for map-style computations that produce a set
//     of distinct output elements, the output indices are visited in a
//     permuted order, each computed exactly once.
//   - Input sampling (Reduce): for reduction computations with a
//     commutative operator, input elements are consumed in a permuted
//     order into worker-private accumulators; snapshots merge the partials
//     and, for non-idempotent operators, weight them by population/sample
//     size.
package sampling

import (
	"fmt"
	"math"

	"anytime/internal/core"
	"anytime/internal/perm"
)

// Map runs an output-sampled diffusive map stage: for each position i of
// ord, apply(ord.At(i)) computes output element ord.At(i) in place, and
// snapshot(processed) publishes the current approximation. With a tree
// permutation this realizes the progressively-increasing-resolution
// sampling of paper Figure 5.
//
// When cfg.Workers > 1, apply must write only to its own output element,
// which map computations do by construction (disjoint-set union).
func Map[T any](c *core.Context, out *core.Buffer[T], ord perm.Order, apply func(dst int) error, snapshot func(processed int) (T, error), cfg core.RoundConfig) error {
	return MapWorkers(c, out, ord,
		func(worker, dst int) error { return apply(dst) },
		snapshot, cfg)
}

// MapWorkers is Map with the executing worker's index exposed to apply, for
// map stages whose element computation reads through worker-private state
// (for example a per-worker approximate storage array).
//
// It runs as a batched diffusive stage: each worker iterates its
// contiguous span of order positions directly, so the per-element overhead
// is one order lookup plus the apply call — not a chain of per-position
// wrappers.
func MapWorkers[T any](c *core.Context, out *core.Buffer[T], ord perm.Order, apply func(worker, dst int) error, snapshot func(processed int) (T, error), cfg core.RoundConfig) error {
	return core.DiffusiveBatch(c, out, ord.Len(),
		func(worker, lo, hi int) error {
			for pos := lo; pos < hi; pos++ {
				if err := apply(worker, ord.At(pos)); err != nil {
					return err
				}
			}
			return nil
		},
		snapshot, cfg, true)
}

// Reduce describes an input-sampled commutative reduction over elements
// 0..n-1 with worker-private partial accumulators of type A.
type Reduce[A any] struct {
	// NewAcc allocates an empty accumulator.
	NewAcc func() A
	// Consume folds input element idx into acc and returns the updated
	// accumulator.
	Consume func(acc A, idx int) A
	// Merge folds src into dst and returns the result. Merge must be
	// commutative and associative across partials.
	Merge func(dst, src A) A
	// Snapshot converts the merged accumulator over the first `processed`
	// of `total` elements into the published value. This is where
	// non-idempotent reductions apply the paper's population weighting
	// O'_i = O_i × n/i. The returned value must not alias live accumulator
	// state (it is published without further cloning).
	Snapshot func(merged A, processed, total int) (A, error)
}

func (r Reduce[A]) validate() error {
	if r.NewAcc == nil || r.Consume == nil || r.Merge == nil || r.Snapshot == nil {
		return fmt.Errorf("sampling: Reduce requires NewAcc, Consume, Merge and Snapshot")
	}
	return nil
}

// Run executes the reduction as a diffusive anytime stage over the given
// visit order, publishing to out after every round and marking the final
// (complete-population) snapshot precise.
func (r Reduce[A]) Run(c *core.Context, out *core.Buffer[A], ord perm.Order, cfg core.RoundConfig) error {
	if err := r.validate(); err != nil {
		return err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	cfg.Workers = workers
	partials := make([]A, workers)
	for w := range partials {
		partials[w] = r.NewAcc()
	}
	total := ord.Len()
	return core.DiffusiveWorkers(c, out, total,
		func(worker, pos int) error {
			partials[worker] = r.Consume(partials[worker], ord.At(pos))
			return nil
		},
		func(processed int) (A, error) {
			merged := r.NewAcc()
			for _, p := range partials {
				merged = r.Merge(merged, p)
			}
			return r.Snapshot(merged, processed, total)
		},
		cfg)
}

// ScaleCount applies the paper's population weighting for non-idempotent
// reductions: it scales a partial count/sum accumulated over `processed`
// elements up to the full population of `total` elements, rounding to
// nearest. ScaleCount(v, 0, total) is 0.
func ScaleCount(v int64, processed, total int) int64 {
	if processed <= 0 || total <= 0 || processed >= total {
		if processed >= total {
			return v
		}
		return 0
	}
	scaled := (float64(v) * float64(total)) / float64(processed)
	return int64(math.RoundToEven(scaled))
}

// ScaleFloat is ScaleCount for floating-point accumulators.
func ScaleFloat(v float64, processed, total int) float64 {
	if processed <= 0 || total <= 0 {
		return 0
	}
	if processed >= total {
		return v
	}
	return v * float64(total) / float64(processed)
}
