package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

// slowCounter builds an automaton publishing 1..n with a small delay.
func slowCounter(t *testing.T, n int, delay time.Duration) (*Automaton, *Buffer[int]) {
	t.Helper()
	out := NewBuffer[int]("count", nil)
	a := New()
	if err := a.AddStage("count", func(c *Context) error {
		for i := 1; i <= n; i++ {
			if err := c.Checkpoint(); err != nil {
				return err
			}
			if _, err := out.Publish(i, i == n); err != nil {
				return err
			}
			time.Sleep(delay)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return a, out
}

func TestStopWhenAcceptsEarly(t *testing.T) {
	a, out := slowCounter(t, 1000, time.Millisecond)
	accepted := StopWhen(a, out, func(s Snapshot[int]) bool { return s.Value >= 5 })
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap, ok := <-accepted
	if !ok {
		t.Fatal("controller closed without a snapshot")
	}
	if snap.Value < 5 {
		t.Errorf("accepted %d before threshold", snap.Value)
	}
	if snap.Final {
		t.Error("early acceptance should not be final")
	}
	if err := a.Wait(); !errors.Is(err, ErrStopped) {
		t.Errorf("Wait = %v, want ErrStopped", err)
	}
	// The channel delivers exactly one snapshot.
	if _, ok := <-accepted; ok {
		t.Error("controller delivered a second snapshot")
	}
}

func TestStopWhenFallsThroughToFinal(t *testing.T) {
	a, out := slowCounter(t, 10, 0)
	accepted := StopWhen(a, out, func(s Snapshot[int]) bool { return false })
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap := <-accepted
	if !snap.Final || snap.Value != 10 {
		t.Errorf("never-accept controller delivered %+v, want the final snapshot", snap)
	}
	if err := a.Wait(); err != nil {
		t.Errorf("Wait = %v", err)
	}
}

func TestStopWhenSurvivesExternalStop(t *testing.T) {
	a, out := slowCounter(t, 1_000_000, time.Millisecond)
	accepted := StopWhen(a, out, func(s Snapshot[int]) bool { return false })
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	a.Stop()
	select {
	case snap, ok := <-accepted:
		if ok && snap.Version == 0 {
			t.Error("delivered zero-version snapshot")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("controller hung after external stop")
	}
}

func TestStopAfterEnforcesDeadline(t *testing.T) {
	a, out := slowCounter(t, 1_000_000, time.Millisecond)
	cancel := StopAfter(a, 20*time.Millisecond)
	defer cancel()
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	select {
	case <-a.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("deadline did not stop the automaton")
	}
	if _, ok := out.Latest(); !ok {
		t.Error("no output at the deadline")
	}
	if err := a.Wait(); !errors.Is(err, ErrStopped) {
		t.Errorf("Wait = %v", err)
	}
}

func TestStopAfterCancelDisarms(t *testing.T) {
	a, _ := slowCounter(t, 5, 0)
	cancel := StopAfter(a, time.Millisecond)
	cancel() // disarm before start: the automaton must finish precisely
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Errorf("Wait = %v, want clean finish", err)
	}
}

func TestStopAfterNoopWhenFinished(t *testing.T) {
	a, _ := slowCounter(t, 3, 0)
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	cancel := StopAfter(a, time.Millisecond)
	defer cancel()
	time.Sleep(5 * time.Millisecond) // must not panic or hang
}
