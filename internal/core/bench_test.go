package core

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

// The model's overheads in isolation: publish cost, snapshot read cost,
// and the per-update overhead of the diffusive runners (the quantity that
// decides whether an application needs DiffusiveBatch).

func BenchmarkBufferPublish(b *testing.B) {
	buf := NewBuffer[int]("b", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := buf.Publish(i, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBufferPublishWithClone(b *testing.B) {
	data := make([]int, 1024)
	buf := NewBuffer("b", func(s []int) []int { return append([]int(nil), s...) })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := buf.Publish(data, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBufferLatest(b *testing.B) {
	buf := NewBuffer[int]("b", nil)
	if _, err := buf.Publish(1, false); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := buf.Latest(); !ok {
			b.Fatal("no snapshot")
		}
	}
}

func benchDiffusive(b *testing.B, workers int, batch bool) {
	b.Helper()
	var sink atomic.Int64
	const total = 1 << 16
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := NewBuffer[int]("out", nil)
		a := New()
		stage := func(c *Context) error {
			if batch {
				return DiffusiveBatch(c, out, total,
					func(worker, lo, hi int) error {
						var local int64
						for pos := lo; pos < hi; pos++ {
							local += int64(pos)
						}
						sink.Add(local)
						return nil
					},
					func(processed int) (int, error) { return processed, nil },
					RoundConfig{Granularity: total / 8, Workers: workers}, true)
			}
			return DiffusiveWorkers(c, out, total,
				func(worker, pos int) error { sink.Add(int64(pos)); return nil },
				func(processed int) (int, error) { return processed, nil },
				RoundConfig{Granularity: total / 8, Workers: workers})
		}
		if err := a.AddStage("d", stage); err != nil {
			b.Fatal(err)
		}
		if err := a.Start(context.Background()); err != nil {
			b.Fatal(err)
		}
		if err := a.Wait(); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(total)
}

func BenchmarkDiffusivePerUpdate(b *testing.B)      { benchDiffusive(b, 1, false) }
func BenchmarkDiffusivePerUpdate4W(b *testing.B)    { benchDiffusive(b, 4, false) }
func BenchmarkDiffusiveBatchPerUpdate(b *testing.B) { benchDiffusive(b, 1, true) }

// benchContext returns a stage context over a running (open) gate, the
// state every Checkpoint call sees in an unpaused pipeline.
func benchContext(h *Hooks) *Context {
	return &Context{ctx: context.Background(), a: New(), name: "bench", hooks: h}
}

// BenchmarkCheckpointUnhooked is the hot path with no registry attached —
// the cost every existing pipeline pays for the telemetry layer existing.
func BenchmarkCheckpointUnhooked(b *testing.B) {
	c := benchContext(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := c.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpointHooked is the same path with a minimal hook attached —
// the floor any real telemetry binding builds on.
func BenchmarkCheckpointHooked(b *testing.B) {
	var n atomic.Int64
	c := benchContext(&Hooks{Checkpoint: func(string, time.Duration) { n.Add(1) }})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := c.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBufferLatestParallel hammers Latest from every P at once: with
// the wait-free read path these loads scale instead of serializing on a
// publisher mutex.
func BenchmarkBufferLatestParallel(b *testing.B) {
	buf := NewBuffer[int]("b", nil)
	if _, err := buf.Publish(1, false); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, ok := buf.Latest(); !ok {
				b.Fatal("no snapshot")
			}
		}
	})
}

func BenchmarkBufferDemanded(b *testing.B) {
	buf := NewBuffer[int]("b", nil)
	if _, err := buf.Publish(1, false); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Demanded()
	}
}

func BenchmarkWaitNewerHot(b *testing.B) {
	buf := NewBuffer[int]("b", nil)
	if _, err := buf.Publish(1, false); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := buf.WaitNewer(ctx, 0); err != nil {
			b.Fatal(err)
		}
	}
}
