package core

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

// The model's overheads in isolation: publish cost, snapshot read cost,
// and the per-update overhead of the diffusive runners (the quantity that
// decides whether an application needs DiffusiveBatch).

func BenchmarkBufferPublish(b *testing.B) {
	buf := NewBuffer[int]("b", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := buf.Publish(i, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBufferPublishWithClone(b *testing.B) {
	data := make([]int, 1024)
	buf := NewBuffer("b", func(s []int) []int { return append([]int(nil), s...) })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := buf.Publish(data, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBufferLatest(b *testing.B) {
	buf := NewBuffer[int]("b", nil)
	if _, err := buf.Publish(1, false); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := buf.Latest(); !ok {
			b.Fatal("no snapshot")
		}
	}
}

// benchDiffusive measures the runner's per-update orchestration overhead
// for the dominant serving-path shape: a map-style kernel that computes
// one output element per update (conv2d, debayer, histeq's apply stage all
// have this form). The apply body is a single store into the update's own
// output slot, so everything else on the profile is the round loop, worker
// dispatch, and publish machinery — and because each worker's round span
// is contiguous and cache-line-aligned, multi-worker runs write disjoint
// line sets (the strided division used to shear every line across all
// workers). The output array is verified after the timed loop: a runner
// that drops or misroutes updates fails instead of benchmarking garbage.
func benchDiffusive(b *testing.B, workers int, batch bool) {
	b.Helper()
	const total = 1 << 16
	outArr := make([]int32, total)
	snapshot := func(processed int) (int, error) { return processed, nil }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := NewBuffer[int]("out", nil)
		a := New()
		stage := func(c *Context) error {
			if batch {
				return DiffusiveBatch(c, out, total,
					func(worker, lo, hi int) error {
						for pos := lo; pos < hi; pos++ {
							outArr[pos] = int32(pos)
						}
						return nil
					},
					snapshot,
					RoundConfig{Granularity: total / 8, Workers: workers}, true)
			}
			return DiffusiveWorkers(c, out, total,
				func(worker, pos int) error { outArr[pos] = int32(pos); return nil },
				snapshot,
				RoundConfig{Granularity: total / 8, Workers: workers})
		}
		if err := a.AddStage("d", stage); err != nil {
			b.Fatal(err)
		}
		if err := a.Start(context.Background()); err != nil {
			b.Fatal(err)
		}
		if err := a.Wait(); err != nil {
			b.Fatal(err)
		}
		if snap, ok := out.Latest(); !ok || !snap.Final || snap.Value != total {
			b.Fatalf("final snapshot = %+v, want %d", snap, total)
		}
	}
	b.StopTimer()
	b.SetBytes(total)
	for pos, v := range outArr {
		if v != int32(pos) {
			b.Fatalf("output[%d] = %d after final run; updates dropped or misrouted", pos, v)
		}
	}
}

// The worker sweep: before the persistent round pool and contiguous spans,
// 4W ran *slower* than 1W (the strided division sent every worker's writes
// through shared cache lines, and each round paid a fresh goroutine spawn
// per worker); the sweep pins that workers now scale at serving-path sizes
// instead of inverting.
func BenchmarkDiffusivePerUpdate(b *testing.B)      { benchDiffusive(b, 1, false) }
func BenchmarkDiffusivePerUpdate2W(b *testing.B)    { benchDiffusive(b, 2, false) }
func BenchmarkDiffusivePerUpdate4W(b *testing.B)    { benchDiffusive(b, 4, false) }
func BenchmarkDiffusivePerUpdate8W(b *testing.B)    { benchDiffusive(b, 8, false) }
func BenchmarkDiffusiveBatchPerUpdate(b *testing.B) { benchDiffusive(b, 1, true) }
func BenchmarkDiffusiveBatchPerUpdate4W(b *testing.B) {
	benchDiffusive(b, 4, true)
}

// benchPartial is one worker's private accumulator, padded to a cache
// line — the thread-privatized-partials pattern DiffusiveWorkers documents
// (§IV-A2), merged by snapshot at round quiescence.
type benchPartial struct {
	sum int64
	_   [56]byte
}

// BenchmarkDiffusiveReducePerUpdate is the reduce-shaped counterpart: each
// update folds into its worker's partial, so every update carries a
// load-add-store dependence on the previous one through the accumulator
// cell. That serial chain, not the runner, is this variant's floor —
// reduce kernels that care should accumulate locally per batch span
// (DiffusiveBatch), which BenchmarkDiffusiveBatchPerUpdate measures.
func BenchmarkDiffusiveReducePerUpdate(b *testing.B) {
	const total = 1 << 16
	const want = int64(total) * (total - 1) / 2
	parts := make([]benchPartial, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parts[0].sum = 0
		out := NewBuffer[int64]("out", nil)
		a := New()
		if err := a.AddStage("d", func(c *Context) error {
			return DiffusiveWorkers(c, out, total,
				func(worker, pos int) error { parts[worker].sum += int64(pos); return nil },
				func(processed int) (int64, error) { return parts[0].sum, nil },
				RoundConfig{Granularity: total / 8})
		}); err != nil {
			b.Fatal(err)
		}
		if err := a.Start(context.Background()); err != nil {
			b.Fatal(err)
		}
		if err := a.Wait(); err != nil {
			b.Fatal(err)
		}
		if snap, ok := out.Latest(); !ok || snap.Value != want {
			b.Fatalf("final sum = %+v, want %d", snap, want)
		}
	}
	b.SetBytes(total)
}

// benchContext returns a stage context over a running (open) gate, the
// state every Checkpoint call sees in an unpaused pipeline.
func benchContext(h *Hooks) *Context {
	return &Context{ctx: context.Background(), a: New(), name: "bench", hooks: h}
}

// BenchmarkCheckpointUnhooked is the hot path with no registry attached —
// the cost every existing pipeline pays for the telemetry layer existing.
func BenchmarkCheckpointUnhooked(b *testing.B) {
	c := benchContext(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := c.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpointHooked is the same path with a minimal hook attached —
// the floor any real telemetry binding builds on.
func BenchmarkCheckpointHooked(b *testing.B) {
	var n atomic.Int64
	c := benchContext(&Hooks{Checkpoint: func(string, time.Duration) { n.Add(1) }})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := c.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBufferLatestParallel hammers Latest from every P at once: with
// the wait-free read path these loads scale instead of serializing on a
// publisher mutex.
func BenchmarkBufferLatestParallel(b *testing.B) {
	buf := NewBuffer[int]("b", nil)
	if _, err := buf.Publish(1, false); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, ok := buf.Latest(); !ok {
				b.Fatal("no snapshot")
			}
		}
	})
}

func BenchmarkBufferDemanded(b *testing.B) {
	buf := NewBuffer[int]("b", nil)
	if _, err := buf.Publish(1, false); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Demanded()
	}
}

func BenchmarkWaitNewerHot(b *testing.B) {
	buf := NewBuffer[int]("b", nil)
	if _, err := buf.Publish(1, false); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := buf.WaitNewer(ctx, 0); err != nil {
			b.Fatal(err)
		}
	}
}
