package core

// Regression tests for the CAS-armed wakeup in Buffer.WaitNewer.
//
// The suspected race: a waiter loads cur (too old), arms the wakeup
// channel, and a publish lands in between — if Publish could miss the
// armed channel, the waiter would sleep forever on a buffer that already
// holds what it wants (a lost wakeup). The implementation closes the
// window in two directions: Publish stores cur BEFORE swapping the waiter
// channel, and WaitNewer re-checks cur AFTER arming. Go's atomics are
// sequentially consistent, so either the waiter's re-check observes the
// new snapshot, or its arm predates the publish's swap and the swap
// observes (and closes) the channel. These tests pin that reasoning with
// schedules that force each side of the window, plus a stress mix meant
// to be run under -race.

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitDeadline bounds every blocking wait: a waiter still blocked after
// this long on a buffer that has the version it wants has lost a wakeup.
const waitDeadline = 5 * time.Second

// TestWaitNewerPublishBetweenCheckAndArm forces the racy window directly:
// many rounds of one waiter and one publisher released by a barrier at the
// same instant, so publishes repeatedly land between the waiter's first
// version check and its channel arm. A lost wakeup turns into a deadline
// error rather than a hang.
func TestWaitNewerPublishBetweenCheckAndArm(t *testing.T) {
	t.Parallel()
	const rounds = 2000
	b := NewBuffer[int]("armrace", nil)
	ctx, cancel := context.WithTimeout(context.Background(), waitDeadline)
	defer cancel()

	for round := 1; round <= rounds; round++ {
		var barrier sync.WaitGroup
		barrier.Add(1)
		got := make(chan error, 1)
		go func() {
			barrier.Wait()
			s, err := b.WaitNewer(ctx, Version(round-1))
			if err == nil && s.Version < Version(round) {
				t.Errorf("round %d: woke with stale version %d", round, s.Version)
			}
			got <- err
		}()
		barrier.Done()
		if _, err := b.Publish(round, false); err != nil {
			t.Fatalf("publish %d: %v", round, err)
		}
		if err := <-got; err != nil {
			t.Fatalf("round %d: waiter lost the wakeup: %v", round, err)
		}
	}
}

// TestWaitNewerNoLostWakeupStress is the adversarial mix: one publisher
// racing many waiters that re-arm for every version, so the CAS on the
// shared waiter channel is contended from all sides while publishes stream
// past. Every waiter must observe the final version within the deadline.
func TestWaitNewerNoLostWakeupStress(t *testing.T) {
	t.Parallel()
	const (
		versions = 500
		waiters  = 8
	)
	b := NewBuffer[int]("stress", nil)
	ctx, cancel := context.WithTimeout(context.Background(), waitDeadline)
	defer cancel()

	var lagged atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < waiters; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var after Version
			for {
				s, err := b.WaitNewer(ctx, after)
				if err != nil {
					t.Errorf("WaitNewer(%d) lost a wakeup: %v", after, err)
					return
				}
				if s.Version <= after {
					t.Errorf("WaitNewer(%d) returned stale version %d", after, s.Version)
					return
				}
				if s.Version > after+1 {
					lagged.Add(1) // skipped ahead: legal anytime behavior
				}
				after = s.Version
				if s.Version == versions {
					return
				}
			}
		}()
	}
	for v := 1; v <= versions; v++ {
		if _, err := b.Publish(v, false); err != nil {
			t.Fatalf("publish %d: %v", v, err)
		}
		if v%7 == 0 {
			time.Sleep(time.Microsecond) // let waiters re-arm mid-stream
		}
	}
	wg.Wait()
	t.Logf("waiters skipped ahead %d times", lagged.Load())
}

// TestWaitNewerWakesAllSharersOfOneArm pins the channel-sharing path: when
// several waiters join the same armed channel, one publish must release
// them all — the Swap(nil) hands the channel to the closer, and late
// joiners must not be left holding a channel nobody will ever close.
func TestWaitNewerWakesAllSharersOfOneArm(t *testing.T) {
	t.Parallel()
	const waiters = 32
	b := NewBuffer[int]("sharers", nil)
	ctx, cancel := context.WithTimeout(context.Background(), waitDeadline)
	defer cancel()

	var ready, wg sync.WaitGroup
	for w := 0; w < waiters; w++ {
		ready.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			ready.Done()
			if _, err := b.WaitNewer(ctx, 0); err != nil {
				t.Errorf("sharer lost the wakeup: %v", err)
			}
		}()
	}
	ready.Wait()
	// Give the waiters a moment to pile onto one armed channel, then
	// publish exactly once: every sharer must come back.
	time.Sleep(time.Millisecond)
	if _, err := b.Publish(1, true); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}
