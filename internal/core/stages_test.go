package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// runSingle runs one stage function inside a fresh automaton and returns
// Wait's result.
func runSingle(t *testing.T, name string, fn func(*Context) error) error {
	t.Helper()
	a := New()
	if err := a.AddStage(name, fn); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	return a.Wait()
}

func TestIterativePublishesAllPassesInOrder(t *testing.T) {
	out := NewBuffer[int]("out", nil)
	var seen []Snapshot[int]
	out.OnPublish(func(s Snapshot[int]) { seen = append(seen, s) })
	passes := []func() (int, error){
		func() (int, error) { return 10, nil },
		func() (int, error) { return 20, nil },
		func() (int, error) { return 30, nil },
	}
	if err := runSingle(t, "iter", func(c *Context) error {
		return Iterative(c, out, passes)
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 {
		t.Fatalf("published %d snapshots", len(seen))
	}
	for i, s := range seen {
		if s.Value != (i+1)*10 {
			t.Errorf("snapshot %d value %d", i, s.Value)
		}
		if s.Final != (i == 2) {
			t.Errorf("snapshot %d final=%v", i, s.Final)
		}
	}
}

func TestIterativeEmptyPasses(t *testing.T) {
	out := NewBuffer[int]("out", nil)
	err := runSingle(t, "iter", func(c *Context) error {
		return Iterative(c, out, nil)
	})
	if err == nil {
		t.Error("empty pass list accepted")
	}
}

func TestIterativePassErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	out := NewBuffer[int]("out", nil)
	err := runSingle(t, "iter", func(c *Context) error {
		return Iterative(c, out, []func() (int, error){
			func() (int, error) { return 0, boom },
		})
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestDiffusiveComputesExactSum(t *testing.T) {
	// Diffusive sum of 0..n-1 with per-round snapshots.
	const n = 1000
	var acc atomic.Int64
	out := NewBuffer[int64]("sum", nil)
	var versions int
	out.OnPublish(func(s Snapshot[int64]) { versions++ })
	err := runSingle(t, "sum", func(c *Context) error {
		return Diffusive(c, out, n,
			func(pos int) error { acc.Add(int64(pos)); return nil },
			func(processed int) (int64, error) { return acc.Load(), nil },
			RoundConfig{Granularity: 100})
	})
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := out.Latest()
	if !ok || !snap.Final {
		t.Fatal("no final snapshot")
	}
	if snap.Value != n*(n-1)/2 {
		t.Errorf("sum = %d", snap.Value)
	}
	if versions != 10 {
		t.Errorf("published %d versions, want 10", versions)
	}
}

func TestDiffusiveZeroTotalPublishesFinalImmediately(t *testing.T) {
	out := NewBuffer[int]("out", nil)
	err := runSingle(t, "empty", func(c *Context) error {
		return Diffusive(c, out, 0,
			func(pos int) error { t.Error("apply called"); return nil },
			func(processed int) (int, error) { return -1, nil },
			RoundConfig{})
	})
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := out.Latest()
	if !ok || !snap.Final || snap.Value != -1 {
		t.Errorf("snapshot = %+v ok=%v", snap, ok)
	}
}

func TestDiffusiveNegativeTotalRejected(t *testing.T) {
	out := NewBuffer[int]("out", nil)
	err := runSingle(t, "neg", func(c *Context) error {
		return Diffusive(c, out, -1, func(int) error { return nil },
			func(int) (int, error) { return 0, nil }, RoundConfig{})
	})
	if err == nil {
		t.Error("negative total accepted")
	}
}

func TestDiffusiveNegativeConfigRejected(t *testing.T) {
	out := NewBuffer[int]("out", nil)
	err := runSingle(t, "cfg", func(c *Context) error {
		return Diffusive(c, out, 10, func(int) error { return nil },
			func(int) (int, error) { return 0, nil }, RoundConfig{Workers: -1})
	})
	if err == nil {
		t.Error("negative workers accepted")
	}
}

// TestDiffusiveEveryPositionExactlyOnce is the bijectivity guarantee at the
// execution layer, across worker counts and granularities.
func TestDiffusiveEveryPositionExactlyOnce(t *testing.T) {
	f := func(rawTotal uint16, rawGran, rawWorkers uint8) bool {
		total := int(rawTotal)%2000 + 1
		cfg := RoundConfig{
			Granularity: int(rawGran) % 130,
			Workers:     int(rawWorkers) % 9,
		}
		counts := make([]atomic.Int32, total)
		out := NewBuffer[int]("out", nil)
		a := New()
		if err := a.AddStage("d", func(c *Context) error {
			return Diffusive(c, out, total,
				func(pos int) error { counts[pos].Add(1); return nil },
				func(processed int) (int, error) { return processed, nil },
				cfg)
		}); err != nil {
			return false
		}
		if err := a.Start(context.Background()); err != nil {
			return false
		}
		if err := a.Wait(); err != nil {
			return false
		}
		for i := range counts {
			if counts[i].Load() != 1 {
				return false
			}
		}
		snap, ok := out.Latest()
		return ok && snap.Final && snap.Value == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestDiffusiveSnapshotQuiescence: snapshot must never run concurrently
// with apply (the publisher needs a quiescent working buffer to clone).
func TestDiffusiveSnapshotQuiescence(t *testing.T) {
	var inApply atomic.Int32
	out := NewBuffer[int]("out", nil)
	err := runSingle(t, "q", func(c *Context) error {
		return Diffusive(c, out, 500,
			func(pos int) error {
				inApply.Add(1)
				defer inApply.Add(-1)
				return nil
			},
			func(processed int) (int, error) {
				if inApply.Load() != 0 {
					t.Error("snapshot ran concurrently with apply")
				}
				return processed, nil
			},
			RoundConfig{Granularity: 25, Workers: 4})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDiffusiveApplyErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	out := NewBuffer[int]("out", nil)
	for _, workers := range []int{1, 4} {
		err := runSingle(t, "err", func(c *Context) error {
			return Diffusive(c, out, 100,
				func(pos int) error {
					if pos == 57 {
						return boom
					}
					return nil
				},
				func(processed int) (int, error) { return processed, nil },
				RoundConfig{Granularity: 30, Workers: workers})
		})
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d err = %v", workers, err)
		}
		out = NewBuffer[int]("out", nil)
	}
}

func TestDiffusiveSnapshotErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	out := NewBuffer[int]("out", nil)
	err := runSingle(t, "err", func(c *Context) error {
		return Diffusive(c, out, 10,
			func(pos int) error { return nil },
			func(processed int) (int, error) { return 0, boom },
			RoundConfig{Granularity: 5})
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

// TestAsyncConsumeSeesFinal verifies the asynchronous pipeline guarantee:
// however the consumer lags, it always processes the parent's final
// snapshot, so the precise output is always reachable (Figure 7).
func TestAsyncConsumeSeesFinal(t *testing.T) {
	parent := NewBuffer[int]("f", nil)
	child := NewBuffer[int]("g", nil)
	a := New()
	if err := a.AddStage("f", func(c *Context) error {
		for i := 1; i <= 50; i++ {
			if err := c.Checkpoint(); err != nil {
				return err
			}
			if _, err := parent.Publish(i, i == 50); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddStage("g", func(c *Context) error {
		return AsyncConsume(c, parent, func(snap Snapshot[int]) error {
			_, err := child.Publish(snap.Value*2, snap.Final)
			return err
		})
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	snap, ok := child.Latest()
	if !ok || !snap.Final || snap.Value != 100 {
		t.Errorf("child final = %+v ok=%v, want 100", snap, ok)
	}
}

// TestAsyncConsumeSkipsStaleVersions: a slow consumer must process the
// latest snapshot, not every intermediate one.
func TestAsyncConsumeSkipsStaleVersions(t *testing.T) {
	parent := NewBuffer[int]("f", nil)
	var consumed []Version
	a := New()
	ready := make(chan struct{})
	if err := a.AddStage("f", func(c *Context) error {
		for i := 1; i <= 100; i++ {
			if _, err := parent.Publish(i, i == 100); err != nil {
				return err
			}
		}
		close(ready)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddStage("g", func(c *Context) error {
		<-ready // let the producer finish first
		return AsyncConsume(c, parent, func(snap Snapshot[int]) error {
			consumed = append(consumed, snap.Version)
			return nil
		})
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(consumed) != 1 || consumed[0] != 100 {
		t.Errorf("consumed versions %v, want just the final [100]", consumed)
	}
}

func TestAsyncConsumeFnErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	parent := NewBuffer[int]("f", nil)
	a := New()
	if err := a.AddStage("f", func(c *Context) error {
		_, err := parent.Publish(1, true)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddStage("g", func(c *Context) error {
		return AsyncConsume(c, parent, func(Snapshot[int]) error { return boom })
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); !errors.Is(err, boom) {
		t.Errorf("Wait = %v", err)
	}
}

// TestThreeStageAsyncPipelineReachesPrecise wires the paper's Figure 7
// shape (f -> g -> h) and checks the end-to-end eventual-precision
// guarantee with anytime stages at every level.
func TestThreeStageAsyncPipelineReachesPrecise(t *testing.T) {
	fBuf := NewBuffer[int]("f", nil)
	gBuf := NewBuffer[int]("g", nil)
	hBuf := NewBuffer[int]("h", nil)
	a := New()
	if err := a.AddStage("f", func(c *Context) error {
		return Iterative(c, fBuf, []func() (int, error){
			func() (int, error) { return 90, nil },  // coarse
			func() (int, error) { return 100, nil }, // precise
		})
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddStage("g", func(c *Context) error {
		return AsyncConsume(c, fBuf, func(s Snapshot[int]) error {
			_, err := gBuf.Publish(s.Value+1, s.Final)
			return err
		})
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddStage("h", func(c *Context) error {
		return AsyncConsume(c, gBuf, func(s Snapshot[int]) error {
			_, err := hBuf.Publish(s.Value*10, s.Final)
			return err
		})
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	snap, ok := hBuf.Latest()
	if !ok || !snap.Final || snap.Value != 1010 {
		t.Errorf("pipeline output = %+v ok=%v, want final 1010", snap, ok)
	}
}

// TestAsyncConsumeSupportsNonAnytimeParent: correctness must hold even when
// the parent publishes only its precise output (n = 1), as the paper notes.
func TestAsyncConsumeSupportsNonAnytimeParent(t *testing.T) {
	parent := NewBuffer[int]("f", nil)
	child := NewBuffer[int]("g", nil)
	a := New()
	if err := a.AddStage("f", func(c *Context) error {
		_, err := parent.Publish(7, true)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddStage("g", func(c *Context) error {
		return AsyncConsume(c, parent, func(s Snapshot[int]) error {
			_, err := child.Publish(s.Value*3, s.Final)
			return err
		})
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	snap, _ := child.Latest()
	if snap.Value != 21 || !snap.Final {
		t.Errorf("child = %+v", snap)
	}
}
