package core

import (
	"fmt"
)

// AnyBuffer is the type-erased view of a Buffer[T], used for graph
// declarations.
type AnyBuffer interface {
	Name() string
}

// GraphBuilder declares an automaton as an explicit dataflow graph — the
// directed acyclic graph of Figure 1 — and validates the model's structural
// properties before construction:
//
//   - Property 2: every buffer has exactly one writing stage.
//   - The read/write relation is acyclic (synchronous feedback via Streams
//     is intentionally outside the graph, as in the paper's model where
//     stages form a DAG).
//   - Every read buffer is produced by some declared stage.
//
// Stages still run their own loops; the builder constrains wiring, not
// behavior.
type GraphBuilder struct {
	stages []graphStage
	errs   []error
}

type graphStage struct {
	name   string
	fn     func(*Context) error
	writes string
	reads  []string
}

// NewGraph returns an empty graph builder.
func NewGraph() *GraphBuilder { return &GraphBuilder{} }

// Stage declares a stage that writes the given buffer and reads the listed
// ones. Pass writes == nil for a pure sink (a stage with side effects only,
// e.g. a display). Errors are accumulated and reported by Build.
func (g *GraphBuilder) Stage(name string, fn func(*Context) error, writes AnyBuffer, reads ...AnyBuffer) *GraphBuilder {
	if fn == nil {
		g.errs = append(g.errs, fmt.Errorf("core: graph stage %q has nil function", name))
		return g
	}
	s := graphStage{name: name, fn: fn}
	if writes != nil {
		s.writes = writes.Name()
	}
	for _, r := range reads {
		if r == nil {
			g.errs = append(g.errs, fmt.Errorf("core: graph stage %q reads a nil buffer", name))
			continue
		}
		s.reads = append(s.reads, r.Name())
	}
	g.stages = append(g.stages, s)
	return g
}

// Build validates the declared graph and assembles the automaton.
func (g *GraphBuilder) Build() (*Automaton, error) {
	if len(g.errs) > 0 {
		return nil, g.errs[0]
	}
	if len(g.stages) == 0 {
		return nil, fmt.Errorf("core: empty graph")
	}
	writer := map[string]string{} // buffer -> stage
	for _, s := range g.stages {
		if s.writes == "" {
			continue
		}
		if prev, ok := writer[s.writes]; ok {
			return nil, fmt.Errorf("core: buffer %q written by both %q and %q (Property 2)", s.writes, prev, s.name)
		}
		writer[s.writes] = s.name
	}
	for _, s := range g.stages {
		for _, r := range s.reads {
			if _, ok := writer[r]; !ok {
				return nil, fmt.Errorf("core: stage %q reads buffer %q, which no stage writes", s.name, r)
			}
			if r == s.writes {
				return nil, fmt.Errorf("core: stage %q reads its own output buffer %q", s.name, r)
			}
		}
	}
	if cycle := findCycle(g.stages, writer); cycle != "" {
		return nil, fmt.Errorf("core: dataflow cycle through %s (the model requires a DAG)", cycle)
	}
	a := New()
	for _, s := range g.stages {
		if err := a.AddStage(s.name, s.fn); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// findCycle runs a three-color DFS over the stage graph (edges: stage that
// writes buffer b -> stages that read b) and returns a description of a
// cycle, or "".
func findCycle(stages []graphStage, writer map[string]string) string {
	// Map stage name -> successor stage names.
	succ := map[string][]string{}
	for _, s := range stages {
		for _, r := range s.reads {
			w := writer[r]
			succ[w] = append(succ[w], s.name)
		}
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var cycle string
	var dfs func(string) bool
	dfs = func(n string) bool {
		color[n] = gray
		for _, m := range succ[n] {
			switch color[m] {
			case gray:
				cycle = fmt.Sprintf("%q -> %q", n, m)
				return true
			case white:
				if dfs(m) {
					return true
				}
			}
		}
		color[n] = black
		return false
	}
	for _, s := range stages {
		if color[s.name] == white {
			if dfs(s.name) {
				return cycle
			}
		}
	}
	return ""
}
