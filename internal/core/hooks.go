package core

import "time"

// Hooks is the core's observer interface: a set of optional callbacks the
// automaton invokes at its lifecycle and scheduling edges, in the style of
// net/http/httptrace.ClientTrace. It exists so an external telemetry layer
// can watch a running automaton without core importing it; any nil field is
// skipped, and an automaton with no hooks attached pays only a nil pointer
// check on its hot paths.
//
// All callbacks are invoked synchronously from pipeline goroutines and must
// be cheap and safe for concurrent use (every stage goroutine reports
// through the same Hooks value).
type Hooks struct {
	// AutomatonStart fires from Start after the stage goroutines launch.
	AutomatonStart func(stages int)
	// AutomatonFinish fires once every stage has exited. outcome is the
	// terminal error as Wait would report it: nil for a precise finish,
	// ErrStopped for an interruption, the first stage failure otherwise.
	AutomatonFinish func(outcome error, elapsed time.Duration)
	// StageStart fires on the stage's own goroutine before its loop runs.
	StageStart func(stage string)
	// StageFinish fires when the stage loop returns (or panics). err is the
	// loop's error, normalized like Wait: nil on a clean finish, ErrStopped
	// on interruption.
	StageFinish func(stage string, err error, elapsed time.Duration)
	// Checkpoint fires on every Context.Checkpoint call. wait is the time
	// the stage spent blocked at the pause gate — zero in the common
	// unpaused case, where the checkpoint costs one closed-channel receive.
	Checkpoint func(stage string, wait time.Duration)
	// EdgeWait fires on the consumer goroutine of an asynchronous pipeline
	// edge (AsyncConsume) just before it blocks for the next parent
	// snapshot, with the consuming stage, the parent buffer's name, and the
	// version the consumer waits to supersede. Chaos harnesses inject
	// delay/starvation faults here; a telemetry layer can watch how far
	// each child runs behind its parent.
	EdgeWait func(stage, buffer string, after Version)
	// EdgeRecv fires on the consumer goroutine of a synchronous pipeline
	// edge (SyncConsume) just before it receives the next in-flight update
	// from its stream. Like EdgeWait, it is a fault-injection and
	// observation point for the edge's backpressure behavior.
	EdgeRecv func(stage string)
}

// ChainHooks combines several Hooks values into one that invokes every
// non-nil callback in argument order — a telemetry binding and a request
// tracer (or a chaos scheduler) can then share one automaton's single hook
// attachment point. Nil elements are skipped; with zero or one non-nil
// element the input is returned as-is, so chaining preserves the nil-guard
// fast path exactly. Each combined field is set only when at least one
// input sets it, keeping unused instrumentation points at one pointer
// check.
func ChainHooks(hooks ...*Hooks) *Hooks {
	live := hooks[:0:0]
	for _, h := range hooks {
		if h != nil {
			live = append(live, h)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	out := &Hooks{}
	var starts []func(int)
	var finishes []func(error, time.Duration)
	var stageStarts []func(string)
	var stageFinishes []func(string, error, time.Duration)
	var checkpoints []func(string, time.Duration)
	var edgeWaits []func(string, string, Version)
	var edgeRecvs []func(string)
	for _, h := range live {
		if h.AutomatonStart != nil {
			starts = append(starts, h.AutomatonStart)
		}
		if h.AutomatonFinish != nil {
			finishes = append(finishes, h.AutomatonFinish)
		}
		if h.StageStart != nil {
			stageStarts = append(stageStarts, h.StageStart)
		}
		if h.StageFinish != nil {
			stageFinishes = append(stageFinishes, h.StageFinish)
		}
		if h.Checkpoint != nil {
			checkpoints = append(checkpoints, h.Checkpoint)
		}
		if h.EdgeWait != nil {
			edgeWaits = append(edgeWaits, h.EdgeWait)
		}
		if h.EdgeRecv != nil {
			edgeRecvs = append(edgeRecvs, h.EdgeRecv)
		}
	}
	if len(starts) > 0 {
		out.AutomatonStart = func(stages int) {
			for _, fn := range starts {
				fn(stages)
			}
		}
	}
	if len(finishes) > 0 {
		out.AutomatonFinish = func(outcome error, elapsed time.Duration) {
			for _, fn := range finishes {
				fn(outcome, elapsed)
			}
		}
	}
	if len(stageStarts) > 0 {
		out.StageStart = func(stage string) {
			for _, fn := range stageStarts {
				fn(stage)
			}
		}
	}
	if len(stageFinishes) > 0 {
		out.StageFinish = func(stage string, err error, elapsed time.Duration) {
			for _, fn := range stageFinishes {
				fn(stage, err, elapsed)
			}
		}
	}
	if len(checkpoints) > 0 {
		out.Checkpoint = func(stage string, wait time.Duration) {
			for _, fn := range checkpoints {
				fn(stage, wait)
			}
		}
	}
	if len(edgeWaits) > 0 {
		out.EdgeWait = func(stage, buffer string, after Version) {
			for _, fn := range edgeWaits {
				fn(stage, buffer, after)
			}
		}
	}
	if len(edgeRecvs) > 0 {
		out.EdgeRecv = func(stage string) {
			for _, fn := range edgeRecvs {
				fn(stage)
			}
		}
	}
	return out
}

// SetHooks attaches hooks to the automaton. It must be called before Start;
// calling it later is a no-op. A nil value detaches nothing and is ignored
// on the hot paths exactly like an unset field.
func (a *Automaton) SetHooks(h *Hooks) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.state != stateIdle {
		return
	}
	a.hooks = h
}
