package core

import "time"

// Hooks is the core's observer interface: a set of optional callbacks the
// automaton invokes at its lifecycle and scheduling edges, in the style of
// net/http/httptrace.ClientTrace. It exists so an external telemetry layer
// can watch a running automaton without core importing it; any nil field is
// skipped, and an automaton with no hooks attached pays only a nil pointer
// check on its hot paths.
//
// All callbacks are invoked synchronously from pipeline goroutines and must
// be cheap and safe for concurrent use (every stage goroutine reports
// through the same Hooks value).
type Hooks struct {
	// AutomatonStart fires from Start after the stage goroutines launch.
	AutomatonStart func(stages int)
	// AutomatonFinish fires once every stage has exited. outcome is the
	// terminal error as Wait would report it: nil for a precise finish,
	// ErrStopped for an interruption, the first stage failure otherwise.
	AutomatonFinish func(outcome error, elapsed time.Duration)
	// StageStart fires on the stage's own goroutine before its loop runs.
	StageStart func(stage string)
	// StageFinish fires when the stage loop returns (or panics). err is the
	// loop's error, normalized like Wait: nil on a clean finish, ErrStopped
	// on interruption.
	StageFinish func(stage string, err error, elapsed time.Duration)
	// Checkpoint fires on every Context.Checkpoint call. wait is the time
	// the stage spent blocked at the pause gate — zero in the common
	// unpaused case, where the checkpoint costs one closed-channel receive.
	Checkpoint func(stage string, wait time.Duration)
	// EdgeWait fires on the consumer goroutine of an asynchronous pipeline
	// edge (AsyncConsume) just before it blocks for the next parent
	// snapshot, with the consuming stage, the parent buffer's name, and the
	// version the consumer waits to supersede. Chaos harnesses inject
	// delay/starvation faults here; a telemetry layer can watch how far
	// each child runs behind its parent.
	EdgeWait func(stage, buffer string, after Version)
	// EdgeRecv fires on the consumer goroutine of a synchronous pipeline
	// edge (SyncConsume) just before it receives the next in-flight update
	// from its stream. Like EdgeWait, it is a fault-injection and
	// observation point for the edge's backpressure behavior.
	EdgeRecv func(stage string)
}

// SetHooks attaches hooks to the automaton. It must be called before Start;
// calling it later is a no-op. A nil value detaches nothing and is ignored
// on the hot paths exactly like an unset field.
func (a *Automaton) SetHooks(h *Hooks) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.state != stateIdle {
		return
	}
	a.hooks = h
}
