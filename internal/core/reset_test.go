package core

import (
	"context"
	"errors"
	"testing"
)

// TestBufferResetRewindsVersions pins the warm-pool contract: after Reset
// the next publish is version 1 again, the finalized state is cleared, and
// snapshots retained from before the reset stay intact.
func TestBufferResetRewindsVersions(t *testing.T) {
	b := NewBuffer[int]("reset", nil)
	if _, err := b.Publish(10, false); err != nil {
		t.Fatal(err)
	}
	last, err := b.Publish(20, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Publish(30, false); !errors.Is(err, ErrFinalized) {
		t.Fatalf("publish after final: %v, want ErrFinalized", err)
	}

	b.Reset()
	if _, ok := b.Peek(); ok {
		t.Fatal("buffer still holds a snapshot after Reset")
	}
	s, err := b.Publish(30, false)
	if err != nil {
		t.Fatalf("publish after Reset: %v", err)
	}
	if s.Version != 1 || s.Final {
		t.Fatalf("post-reset snapshot %+v, want version 1, not final", s)
	}
	// The retained pre-reset snapshot is immutable across the reuse.
	if last.Value != 20 || last.Version != 2 || !last.Final {
		t.Fatalf("retained snapshot mutated: %+v", last)
	}
}

// TestBufferResetKeepsObservers: a pooled pipeline's telemetry observers
// must survive reuse.
func TestBufferResetKeepsObservers(t *testing.T) {
	b := NewBuffer[int]("reset-obs", nil)
	var seen []int
	b.OnPublish(func(s Snapshot[int]) { seen = append(seen, s.Value) })
	if _, err := b.Publish(1, true); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if _, err := b.Publish(2, true); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Fatalf("observer saw %v, want [1 2]", seen)
	}
}

// TestBufferResetWakesStaleWaiter: a reader left blocked across a reset is
// woken rather than deadlocked, and then blocks against the new run.
func TestBufferResetWakesStaleWaiter(t *testing.T) {
	b := NewBuffer[int]("reset-waiter", nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got := make(chan Snapshot[int], 1)
	go func() {
		s, err := b.WaitNewer(ctx, 0)
		if err == nil {
			got <- s
		}
	}()
	// Let the reader arm, then reset and publish the new run's version 1.
	for b.waiter.Load() == nil {
	}
	b.Reset()
	if _, err := b.Publish(7, true); err != nil {
		t.Fatal(err)
	}
	s := <-got
	if s.Value != 7 || s.Version != 1 {
		t.Fatalf("waiter got %+v, want value 7 version 1", s)
	}
}

// resettableCounter builds a two-run automaton fixture: one stage that
// publishes per-run state which OnReset must rewind.
func resettableCounter(t *testing.T) (*Automaton, *Buffer[int]) {
	t.Helper()
	out := NewBuffer[int]("counter", nil)
	a := New()
	if err := a.AddStage("count", func(c *Context) error {
		for i := 1; i <= 3; i++ {
			if err := c.Checkpoint(); err != nil {
				return err
			}
			if _, err := out.Publish(i, i == 3); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	a.OnReset(out.Reset)
	return a, out
}

// TestAutomatonResetReuse runs the same automaton twice and checks the
// second run is indistinguishable from a fresh one.
func TestAutomatonResetReuse(t *testing.T) {
	a, out := resettableCounter(t)
	for cycle := 1; cycle <= 3; cycle++ {
		if err := a.Start(context.Background()); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if err := a.Wait(); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		s, ok := out.Latest()
		if !ok || s.Value != 3 || s.Version != 3 || !s.Final {
			t.Fatalf("cycle %d: terminal snapshot %+v ok=%v", cycle, s, ok)
		}
		if err := a.Reset(); err != nil {
			t.Fatalf("cycle %d: reset: %v", cycle, err)
		}
		if _, ok := out.Peek(); ok {
			t.Fatalf("cycle %d: buffer not rewound", cycle)
		}
	}
}

// TestAutomatonResetWhileRunningFails: Reset is a quiescence-only
// operation.
func TestAutomatonResetWhileRunningFails(t *testing.T) {
	block := make(chan struct{})
	a := New()
	if err := a.AddStage("hang", func(c *Context) error {
		<-block
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Reset(); err == nil {
		t.Fatal("reset of a running automaton succeeded")
	}
	close(block)
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := a.Reset(); err != nil {
		t.Fatalf("reset after completion: %v", err)
	}
}

// TestAutomatonResetClearsInterrupt: an interrupted run's ErrStopped and a
// pending pause must not leak into the next checkout.
func TestAutomatonResetClearsInterrupt(t *testing.T) {
	a, out := resettableCounter(t)
	started := make(chan struct{})
	var once bool
	a.OnReset(func() { once = true })
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	close(started)
	a.Stop()
	a.Pause() // a pause left closed after the run
	if err := a.Reset(); err != nil {
		t.Fatal(err)
	}
	if !once {
		t.Fatal("OnReset hook did not run")
	}
	if a.Paused() {
		t.Fatal("pause gate still closed after Reset")
	}
	if err := a.Err(); err != nil {
		t.Fatalf("terminal error survived Reset: %v", err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatalf("restart after reset: %v", err)
	}
	if err := a.Wait(); err != nil {
		t.Fatalf("second run: %v", err)
	}
	if s, ok := out.Latest(); !ok || !s.Final {
		t.Fatalf("second run terminal snapshot %+v ok=%v", s, ok)
	}
}

// TestStreamResetDrains: updates stranded by an interrupt are gone after
// Reset.
func TestStreamResetDrains(t *testing.T) {
	s, err := NewStream[int](4)
	if err != nil {
		t.Fatal(err)
	}
	s.ch <- Update[int]{Seq: 1, Data: 10}
	s.ch <- Update[int]{Seq: 2, Data: 20}
	s.Reset()
	if n := len(s.ch); n != 0 {
		t.Fatalf("%d updates left after Reset", n)
	}
}
