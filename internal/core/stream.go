package core

import "fmt"

// Synchronous pipeline support (paper §III-C2). When a parent stage f is
// diffusive and its child g is distributive over f's updates, passing the
// whole output F down the pipeline makes g redo work it has already done.
// Instead, the parent exposes its update stream X_1 … X_n and the child
// folds g(X_i) into an accumulator. The stream's bounded buffer provides
// the required synchronization: "f must not overwrite X_i with X_{i+1}
// before g(X_i) begins executing".

// Update is one diffusive update X_i flowing through a synchronous edge.
type Update[X any] struct {
	// Seq numbers updates from 1 in production order.
	Seq int
	// Data is the update payload. Ownership transfers to the consumer.
	Data X
	// Last marks the final update; after folding it the consumer holds the
	// precise result.
	Last bool
}

// Stream is the synchronous edge between a diffusive producer and a
// distributive consumer. It carries every update exactly once, in order,
// with backpressure once the buffer fills.
type Stream[X any] struct {
	ch      chan Update[X]
	onDepth func(depth, capacity int)
}

// NewStream returns a stream whose buffer holds up to capacity in-flight
// updates (capacity 0 gives fully synchronous rendezvous).
func NewStream[X any](capacity int) (*Stream[X], error) {
	if capacity < 0 {
		return nil, fmt.Errorf("core: negative stream capacity %d", capacity)
	}
	return &Stream[X]{ch: make(chan Update[X], capacity)}, nil
}

// OnDepth registers an observer invoked with the stream's in-flight update
// count after every Send and Recv, so a telemetry layer can watch the
// synchronous edge's queue depth (how far the consumer is running behind
// its producer). It must be registered before the automaton starts; nil is
// ignored. The reported depth is a snapshot and may already be stale when
// the observer runs.
func (s *Stream[X]) OnDepth(fn func(depth, capacity int)) {
	if fn == nil {
		return
	}
	s.onDepth = fn
}

// Send delivers one update, blocking while the buffer is full. It returns
// ErrStopped if the automaton stops first.
func (s *Stream[X]) Send(c *Context, u Update[X]) error {
	select {
	case s.ch <- u:
		if s.onDepth != nil {
			s.onDepth(len(s.ch), cap(s.ch))
		}
		return nil
	case <-c.Context().Done():
		return ErrStopped
	}
}

// Recv returns the next update. ok is false if the producer closed the
// stream without a Last update. It returns ErrStopped if the automaton
// stops first.
func (s *Stream[X]) Recv(c *Context) (u Update[X], ok bool, err error) {
	select {
	case u, ok = <-s.ch:
		if s.onDepth != nil {
			s.onDepth(len(s.ch), cap(s.ch))
		}
		return u, ok, nil
	case <-c.Context().Done():
		return u, false, ErrStopped
	}
}

// Close marks the producing side done. Sending after Close panics, as with
// any channel; producers normally mark the final update Last instead and
// Close defensively afterwards.
func (s *Stream[X]) Close() { close(s.ch) }

// Reset drains any updates left in flight by an interrupted run, so a
// reused automaton's consumer does not fold stale updates from its
// previous request. Like Buffer.Reset it must only be called during
// quiescence (no Send or Recv running), typically from an OnReset hook; it
// is meaningless on a stream whose producer has Closed it.
func (s *Stream[X]) Reset() {
	for {
		select {
		case <-s.ch:
		default:
			return
		}
	}
}

// SyncConsume implements the consumer side of a synchronous edge: it folds
// every update exactly once, in order, until the Last update (or stream
// close) and then returns. fold typically publishes the running accumulator
// to the consumer's own buffer after each update, marking it final on the
// Last one.
func SyncConsume[X any](c *Context, in *Stream[X], fold func(u Update[X]) error) error {
	for {
		if err := c.Checkpoint(); err != nil {
			return err
		}
		if h := c.hooks; h != nil && h.EdgeRecv != nil {
			h.EdgeRecv(c.name)
		}
		u, ok, err := in.Recv(c)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := fold(u); err != nil {
			return err
		}
		if u.Last {
			return nil
		}
	}
}
