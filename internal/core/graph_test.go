package core

import (
	"context"
	"strings"
	"testing"
)

func noopStage(c *Context) error { return nil }

func TestGraphBuildsValidDAG(t *testing.T) {
	f := NewBuffer[int]("F", nil)
	gBuf := NewBuffer[int]("G", nil)
	h := NewBuffer[int]("H", nil)
	iBuf := NewBuffer[int]("I", nil)
	a, err := NewGraph().
		Stage("f", func(c *Context) error { _, err := f.Publish(1, true); return err }, f).
		Stage("g", func(c *Context) error {
			return AsyncConsume(c, f, func(s Snapshot[int]) error {
				_, err := gBuf.Publish(s.Value+1, s.Final)
				return err
			})
		}, gBuf, f).
		Stage("h", func(c *Context) error {
			return AsyncConsume(c, f, func(s Snapshot[int]) error {
				_, err := h.Publish(s.Value+2, s.Final)
				return err
			})
		}, h, f).
		Stage("i", func(c *Context) error {
			return AsyncConsume(c, gBuf, func(s Snapshot[int]) error {
				_, err := iBuf.Publish(s.Value*10, s.Final)
				return err
			})
		}, iBuf, gBuf, h).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	snap, _ := iBuf.Latest()
	if snap.Value != 20 || !snap.Final {
		t.Errorf("graph output = %+v", snap)
	}
}

func TestGraphRejectsDoubleWriter(t *testing.T) {
	b := NewBuffer[int]("B", nil)
	_, err := NewGraph().
		Stage("w1", noopStage, b).
		Stage("w2", noopStage, b).
		Build()
	if err == nil || !strings.Contains(err.Error(), "Property 2") {
		t.Errorf("double writer: %v", err)
	}
}

func TestGraphRejectsUnproducedRead(t *testing.T) {
	b := NewBuffer[int]("B", nil)
	orphan := NewBuffer[int]("orphan", nil)
	_, err := NewGraph().
		Stage("w", noopStage, b).
		Stage("r", noopStage, nil, orphan).
		Build()
	if err == nil || !strings.Contains(err.Error(), "no stage writes") {
		t.Errorf("orphan read: %v", err)
	}
}

func TestGraphRejectsSelfRead(t *testing.T) {
	b := NewBuffer[int]("B", nil)
	_, err := NewGraph().Stage("w", noopStage, b, b).Build()
	if err == nil || !strings.Contains(err.Error(), "own output") {
		t.Errorf("self read: %v", err)
	}
}

func TestGraphRejectsCycle(t *testing.T) {
	x := NewBuffer[int]("X", nil)
	y := NewBuffer[int]("Y", nil)
	_, err := NewGraph().
		Stage("a", noopStage, x, y).
		Stage("b", noopStage, y, x).
		Build()
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle: %v", err)
	}
}

func TestGraphRejectsNilStageAndNilRead(t *testing.T) {
	b := NewBuffer[int]("B", nil)
	if _, err := NewGraph().Stage("n", nil, b).Build(); err == nil {
		t.Error("nil stage accepted")
	}
	if _, err := NewGraph().Stage("r", noopStage, b, nil).Build(); err == nil {
		t.Error("nil read accepted")
	}
	if _, err := NewGraph().Build(); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestGraphAllowsPureSink(t *testing.T) {
	b := NewBuffer[int]("B", nil)
	a, err := NewGraph().
		Stage("w", func(c *Context) error { _, err := b.Publish(1, true); return err }, b).
		Stage("sink", func(c *Context) error {
			return AsyncConsume(c, b, func(Snapshot[int]) error { return nil })
		}, nil, b).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
}
