package core

import "context"

// Subscribe returns a channel delivering the buffer's snapshots to an
// external consumer with the model's latest-wins semantics: if the consumer
// falls behind, stale intermediate versions are skipped, exactly as an
// asynchronous child stage would skip them. The channel closes after the
// final snapshot has been delivered or when ctx is cancelled.
//
// Unlike OnPublish (synchronous observers on the publishing goroutine,
// registered before the automaton starts), any number of subscribers may
// attach at any time, and a slow subscriber never delays the pipeline.
func (b *Buffer[T]) Subscribe(ctx context.Context) <-chan Snapshot[T] {
	out := make(chan Snapshot[T], 1)
	go func() {
		defer close(out)
		var last Version
		for {
			snap, err := b.WaitNewer(ctx, last)
			if err != nil {
				return
			}
			last = snap.Version
			// Latest-wins delivery: displace an undelivered stale snapshot
			// rather than blocking behind it. With a single sender and a
			// one-slot buffer, the retry send cannot block.
			select {
			case out <- snap:
			case <-ctx.Done():
				return
			default:
				select {
				case <-out:
				default:
				}
				out <- snap
			}
			if snap.Final {
				return
			}
		}
	}()
	return out
}
