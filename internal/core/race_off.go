//go:build !race

package core

// raceEnabled reports, at compile time, whether the race detector is
// active. The round pool uses it to disable its busy-wait phases: under
// -race every atomic load is instrumented, which turns a microsecond of
// spinning into close to a millisecond of instrumented work per park.
const raceEnabled = 0
