package core

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestNewStreamValidation(t *testing.T) {
	if _, err := NewStream[int](-1); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := NewStream[int](0); err != nil {
		t.Errorf("rendezvous stream rejected: %v", err)
	}
}

// TestSyncPipelineCapitalize reproduces paper Figure 8: f generates a
// string letter by letter (concatenation is the diffusive operator) and the
// distributive g capitalizes only each newly added letter, never redoing
// completed work.
func TestSyncPipelineCapitalize(t *testing.T) {
	const word = "hello, anytime world"
	stream, err := NewStream[byte](4)
	if err != nil {
		t.Fatal(err)
	}
	out := NewBuffer[string]("G", nil)
	var workDone int // letters g processed; distributivity => exactly len(word)
	a := New()
	if err := a.AddStage("f", func(c *Context) error {
		for i := 0; i < len(word); i++ {
			if err := c.Checkpoint(); err != nil {
				return err
			}
			if err := stream.Send(c, Update[byte]{Seq: i + 1, Data: word[i], Last: i == len(word)-1}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddStage("g", func(c *Context) error {
		var acc strings.Builder
		return SyncConsume(c, stream, func(u Update[byte]) error {
			workDone++
			acc.WriteByte(byte(strings.ToUpper(string(u.Data))[0]))
			_, err := out.Publish(acc.String(), u.Last)
			return err
		})
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	snap, ok := out.Latest()
	if !ok || !snap.Final || snap.Value != strings.ToUpper(word) {
		t.Errorf("output = %+v", snap)
	}
	if workDone != len(word) {
		t.Errorf("distributive consumer did %d units of work, want %d", workDone, len(word))
	}
}

// TestSyncConsumeProcessesEveryUpdateExactlyOnce, in order, for arbitrary
// update counts and stream capacities — the exactly-once guarantee the
// synchronous pipeline's correctness rests on.
func TestSyncConsumeProcessesEveryUpdateExactlyOnce(t *testing.T) {
	f := func(rawN uint8, rawCap uint8) bool {
		n := int(rawN)%200 + 1
		capacity := int(rawCap) % 16
		stream, err := NewStream[int](capacity)
		if err != nil {
			return false
		}
		var got []int
		a := New()
		if err := a.AddStage("f", func(c *Context) error {
			for i := 1; i <= n; i++ {
				if err := stream.Send(c, Update[int]{Seq: i, Data: i * i, Last: i == n}); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return false
		}
		if err := a.AddStage("g", func(c *Context) error {
			return SyncConsume(c, stream, func(u Update[int]) error {
				got = append(got, u.Data)
				return nil
			})
		}); err != nil {
			return false
		}
		if err := a.Start(context.Background()); err != nil {
			return false
		}
		if err := a.Wait(); err != nil {
			return false
		}
		if len(got) != n {
			return false
		}
		for i, v := range got {
			if v != (i+1)*(i+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSyncBackpressure: with a zero-capacity stream the producer cannot run
// ahead of the consumer — the synchronization the paper requires so f does
// not overwrite X_i before g(X_i) starts.
func TestSyncBackpressure(t *testing.T) {
	stream, err := NewStream[int](0)
	if err != nil {
		t.Fatal(err)
	}
	var produced, consumed atomic.Int64
	a := New()
	if err := a.AddStage("f", func(c *Context) error {
		for i := 1; i <= 10; i++ {
			if err := stream.Send(c, Update[int]{Seq: i, Data: i, Last: i == 10}); err != nil {
				return err
			}
			produced.Store(int64(i))
			// With rendezvous semantics the consumer has begun receiving
			// update i before Send returns, so produced can lead consumed
			// by at most one fully-consumed update.
			if p, c := produced.Load(), consumed.Load(); p > c+1 {
				t.Errorf("producer ran ahead: produced %d consumed %d", p, c)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddStage("g", func(c *Context) error {
		return SyncConsume(c, stream, func(u Update[int]) error {
			time.Sleep(time.Millisecond)
			consumed.Store(int64(u.Seq))
			return nil
		})
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestSyncConsumeStopsOnClose(t *testing.T) {
	stream, err := NewStream[int](4)
	if err != nil {
		t.Fatal(err)
	}
	a := New()
	if err := a.AddStage("f", func(c *Context) error {
		if err := stream.Send(c, Update[int]{Seq: 1, Data: 1}); err != nil {
			return err
		}
		stream.Close()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var got int
	if err := a.AddStage("g", func(c *Context) error {
		return SyncConsume(c, stream, func(u Update[int]) error {
			got = u.Data
			return nil
		})
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("got %d", got)
	}
}

func TestStreamSendRecvHonorStop(t *testing.T) {
	stream, err := NewStream[int](0)
	if err != nil {
		t.Fatal(err)
	}
	a := New()
	if err := a.AddStage("sender", func(c *Context) error {
		// Nobody receives; Send must unblock on stop.
		return stream.Send(c, Update[int]{Seq: 1})
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	a.Stop()
	if err := a.Wait(); !errors.Is(err, ErrStopped) {
		t.Errorf("Wait = %v", err)
	}

	b := New()
	stream2, _ := NewStream[int](0)
	if err := b.AddStage("receiver", func(c *Context) error {
		_, _, err := stream2.Recv(c)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	b.Stop()
	if err := b.Wait(); !errors.Is(err, ErrStopped) {
		t.Errorf("Wait = %v", err)
	}
}

func TestSyncConsumeFoldErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	stream, err := NewStream[int](1)
	if err != nil {
		t.Fatal(err)
	}
	a := New()
	if err := a.AddStage("f", func(c *Context) error {
		return stream.Send(c, Update[int]{Seq: 1, Data: 1, Last: true})
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddStage("g", func(c *Context) error {
		return SyncConsume(c, stream, func(Update[int]) error { return boom })
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); !errors.Is(err, boom) {
		t.Errorf("Wait = %v", err)
	}
}
