//go:build race

package core

// raceEnabled reports, at compile time, whether the race detector is
// active; see race_off.go.
const raceEnabled = 1
