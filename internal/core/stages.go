package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// This file provides the three stage-loop shapes of the paper:
//
//   - Iterative (§III-B1): re-execute the computation at increasing
//     accuracy; each pass overwrites the previous output; the last pass is
//     the precise function.
//   - Diffusive (§III-B2): apply permuted updates to a working output;
//     every update contributes to the final result, so no work is redundant.
//   - AsyncConsume (§III-C1): a child stage that recomputes on whichever
//     parent snapshot is current, always eventually running on the final
//     one.
//
// The synchronous pipeline's update stream (§III-C2) lives in stream.go.

// Iterative runs the intermediate computations f_1 … f_n in order,
// publishing each result to out; the final pass is published as the precise
// output. Each pass must be a pure function of its captured inputs
// (Property 1).
func Iterative[T any](c *Context, out *Buffer[T], passes []func() (T, error)) error {
	if len(passes) == 0 {
		return fmt.Errorf("core: iterative stage %q has no passes", c.Name())
	}
	for i, pass := range passes {
		if err := c.Checkpoint(); err != nil {
			return err
		}
		v, err := pass()
		if err != nil {
			return err
		}
		if _, err := out.Publish(v, i == len(passes)-1); err != nil {
			return err
		}
	}
	return nil
}

// PublishPolicy selects when a diffusive stage constructs and publishes a
// round snapshot. Snapshot construction is pure overhead relative to the
// precise computation (paper §IV-C), so how often it runs decides the
// automaton's cost of being anytime.
type PublishPolicy int

const (
	// PublishEveryRound publishes after every round of Granularity updates
	// — the paper's default granularity model (§III-B2).
	PublishEveryRound PublishPolicy = iota
	// PublishOnDemand skips snapshot construction while nobody has consumed
	// the previous version (no Latest/WaitNewer reader and no observer):
	// the consumer "processes whichever output happens to be in the buffer"
	// (§III-C1), so refreshing an unread buffer buys nothing. A blocked
	// reader or a consumed snapshot re-enables publishing at the next round
	// boundary, and the final snapshot is always published.
	PublishOnDemand
	// PublishAdaptive widens the effective publish interval until snapshot
	// construction stays within PublishBudget as a fraction of stage time —
	// the granularity auto-tuning of §IV-C1 aimed at a fixed overhead
	// target instead of a fixed update count.
	PublishAdaptive
)

// DefaultPublishBudget is the adaptive policy's snapshot-overhead target
// when RoundConfig.PublishBudget is zero: publishing may consume at most
// this fraction of the stage's wall time.
const DefaultPublishBudget = 0.1

// RoundConfig tunes a diffusive stage's execution.
type RoundConfig struct {
	// Granularity is the number of updates applied between successive
	// publish opportunities. It controls how early and how often
	// approximate outputs become visible. Zero selects total/32 (at least
	// 1).
	Granularity int
	// Workers is the number of goroutines applying updates within a round
	// (the multi-threaded sampling of §IV-C1). Zero selects 1. When
	// Workers > 1, apply must be safe for concurrent calls with distinct
	// positions.
	Workers int
	// Policy selects when round snapshots are constructed and published.
	// The zero value is PublishEveryRound.
	Policy PublishPolicy
	// PublishBudget is PublishAdaptive's target ceiling for the fraction of
	// stage time spent building and publishing snapshots, in (0, 1). Zero
	// selects DefaultPublishBudget. Ignored by the other policies.
	PublishBudget float64
}

func (cfg RoundConfig) withDefaults(total int) (RoundConfig, error) {
	if cfg.Granularity < 0 || cfg.Workers < 0 {
		return cfg, fmt.Errorf("core: negative round config %+v", cfg)
	}
	if cfg.Policy < PublishEveryRound || cfg.Policy > PublishAdaptive {
		return cfg, fmt.Errorf("core: unknown publish policy %d", cfg.Policy)
	}
	if cfg.PublishBudget < 0 || cfg.PublishBudget >= 1 {
		return cfg, fmt.Errorf("core: publish budget %v out of range [0, 1)", cfg.PublishBudget)
	}
	if cfg.Granularity == 0 {
		cfg.Granularity = total / 32
		if cfg.Granularity < 1 {
			cfg.Granularity = 1
		}
	}
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	if cfg.PublishBudget == 0 {
		cfg.PublishBudget = DefaultPublishBudget
	}
	return cfg, nil
}

// Diffusive executes a diffusive anytime stage: total update steps applied
// in rounds, publishing an approximate snapshot after every round and the
// precise output after the last.
//
// apply(pos) performs update step pos (0 <= pos < total); positions are
// executed exactly once, in rounds of Granularity consecutive positions
// striped across Workers goroutines. snapshot(processed) is called with no
// apply running and returns the value to publish after the first
// `processed` updates — typically a clone, possibly weighted/normalized for
// non-idempotent reductions (§III-B2).
func Diffusive[T any](c *Context, out *Buffer[T], total int, apply func(pos int) error, snapshot func(processed int) (T, error), cfg RoundConfig) error {
	return DiffusiveWorkers(c, out, total,
		func(worker, pos int) error { return apply(pos) },
		snapshot, cfg)
}

// DiffusiveWorkers is Diffusive with the executing worker's index exposed to
// apply. Worker indices are in [0, Workers); a given worker runs its updates
// sequentially on a goroutine that persists for the whole pass, so apply may
// accumulate into worker-private state — the thread-privatized partials the
// paper's multi-threaded reductions use (§IV-A2, kmeans) — which snapshot
// then merges during round quiescence.
func DiffusiveWorkers[T any](c *Context, out *Buffer[T], total int, apply func(worker, pos int) error, snapshot func(processed int) (T, error), cfg RoundConfig) error {
	return DiffusivePass(c, out, total, apply, snapshot, cfg, true)
}

// DiffusivePass is DiffusiveWorkers with control over whether the pass's
// last snapshot is published as the buffer's final output. An anytime child
// stage in an asynchronous pipeline runs one full diffusive pass per parent
// snapshot it consumes (§III-C1, g(F_i) with g itself anytime); only the
// pass over the parent's final snapshot may mark the child's buffer final,
// so intermediate passes run with markFinal = false.
func DiffusivePass[T any](c *Context, out *Buffer[T], total int, apply func(worker, pos int) error, snapshot func(processed int) (T, error), cfg RoundConfig, markFinal bool) error {
	return diffusiveRun(c, out, total,
		func(worker, lo, hi int) error { return applySpan(worker, lo, hi, apply) },
		snapshot, cfg, markFinal)
}

// DiffusiveBatch is DiffusivePass for stages whose per-update work is tiny
// (a table lookup, a histogram increment): apply receives a contiguous
// range [lo, hi) of update positions and iterates it directly, avoiding a
// function call per update. Each round is split into one contiguous chunk
// per worker; as with DiffusiveWorkers, a given worker's chunks execute
// sequentially, so worker-private accumulators are safe.
func DiffusiveBatch[T any](c *Context, out *Buffer[T], total int, apply func(worker, lo, hi int) error, snapshot func(processed int) (T, error), cfg RoundConfig, markFinal bool) error {
	return diffusiveRun(c, out, total, apply, snapshot, cfg, markFinal)
}

// checkpointStride is the minimum number of updates the diffusive round
// loop aims to apply between successive Checkpoint calls. When Granularity
// is smaller than this, consecutive rounds are executed as one batch under
// a single checkpoint, amortizing the gate's lock and the hook dispatch
// over the batch while leaving every round boundary's publish decision
// untouched: the published version sequence is bit-identical to unbatched
// execution, only the Checkpoint hook rate coarsens.
//
// Pause/stop responsiveness does NOT coarsen with the batch: between the
// batch's rounds the loop polls a lock-free pause hint and the context's
// done channel (a few nanoseconds against a full Checkpoint's two lock
// round-trips) and breaks out to a real Checkpoint as soon as either
// fires, so an automaton still answers Stop/Pause within one round of
// updates plus one snapshot, exactly as it did when every round
// checkpointed.
const checkpointStride = 4096

// diffusiveRun is the shared round loop of the diffusive stage shapes: it
// applies rounds of Granularity contiguous positions through run (split
// across the pass's persistent workers) and publishes snapshots as the
// round config's publish policy dictates. A skipped round's updates are
// simply covered by the next snapshot that does get built — diffusive
// updates are cumulative, so every published version reflects all updates
// applied so far regardless of how many publish opportunities were skipped.
//
// Rounds are grouped into checkpoint batches (see checkpointStride): the
// loop checkpoints once per batch, then runs the batch's rounds with a
// publish opportunity at every round boundary exactly as before.
func diffusiveRun[T any](c *Context, out *Buffer[T], total int, run func(worker, lo, hi int) error, snapshot func(processed int) (T, error), cfg RoundConfig, markFinal bool) error {
	if total < 0 {
		return fmt.Errorf("core: diffusive stage %q has negative total %d", c.Name(), total)
	}
	cfg, err := cfg.withDefaults(total)
	if err != nil {
		return err
	}
	if total == 0 {
		v, err := snapshot(0)
		if err != nil {
			return err
		}
		_, err = out.Publish(v, markFinal)
		return err
	}
	pool := newRoundPool(cfg.Workers, run)
	defer pool.stop()
	batchRounds := 1
	if cfg.Granularity < checkpointStride {
		batchRounds = (checkpointStride + cfg.Granularity - 1) / cfg.Granularity
	}
	// interrupted is the cheap intra-batch poll: a lock-free pause hint and
	// a non-blocking read of the done channel. It never blocks and never
	// errs — it only decides whether to cut the batch short and let the
	// next Checkpoint give the authoritative (blocking) answer.
	stop := c.ctx.Done()
	interrupted := func() bool {
		if c.a.gate.pauseHint() {
			return true
		}
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}
	gov := publishGovernor{cfg: cfg}
	for done := 0; done < total; {
		if err := c.Checkpoint(); err != nil {
			return err
		}
		// One cooperative yield per checkpoint batch. Per-round checkpoints
		// used to create incidental scheduling points (lock handoffs, spawns)
		// every Granularity updates; batching removed them, which on a
		// saturated P let a stage monopolize the processor for a full async
		// preemption quantum and serialize an entire serving burst. The
		// explicit yield bounds that to one batch (~checkpointStride updates)
		// at a cost of one scheduler call per batch.
		runtime.Gosched()
		for r := 0; r < batchRounds && done < total; r++ {
			n := cfg.Granularity
			if done+n > total {
				n = total - done
			}
			gov.beginApply()
			if err := pool.apply(done, n); err != nil {
				return err
			}
			gov.endApply()
			done += n
			final := done == total
			if publish := final || gov.shouldPublish(out); publish {
				gov.beginPublish()
				v, err := snapshot(done)
				if err != nil {
					return err
				}
				if _, err := out.Publish(v, markFinal && final); err != nil {
					return err
				}
				gov.endPublish()
			}
			if interrupted() {
				break
			}
		}
	}
	return nil
}

// publishGovernor implements the publish policies for the diffusive round
// loop. It only reads the clock under PublishAdaptive, so the default
// policy's round loop stays timestamp-free.
type publishGovernor struct {
	cfg         RoundConfig
	applyTime   time.Duration
	publishTime time.Duration
	mark        time.Time
}

func (g *publishGovernor) timed() bool { return g.cfg.Policy == PublishAdaptive }

func (g *publishGovernor) beginApply() {
	if g.timed() {
		g.mark = time.Now()
	}
}

func (g *publishGovernor) endApply() {
	if g.timed() {
		g.applyTime += time.Since(g.mark)
	}
}

func (g *publishGovernor) beginPublish() {
	if g.timed() {
		g.mark = time.Now()
	}
}

func (g *publishGovernor) endPublish() {
	if g.timed() {
		g.publishTime += time.Since(g.mark)
	}
}

// shouldPublish decides whether this round boundary builds a snapshot (the
// final round always does; the loop never asks about it).
func (g *publishGovernor) shouldPublish(demand interface{ Demanded() bool }) bool {
	switch g.cfg.Policy {
	case PublishOnDemand:
		return demand.Demanded()
	case PublishAdaptive:
		// Publish while cumulative snapshot overhead sits within budget:
		// each (expensive) publish pushes the ratio up, then apply rounds
		// dilute it back under the target, so the cadence self-adjusts to
		// spend ~PublishBudget of stage time on publishing.
		spent := g.applyTime + g.publishTime
		return spent == 0 || float64(g.publishTime) <= g.cfg.PublishBudget*float64(spent)
	default:
		return true
	}
}

// applySpan invokes apply for every position of [lo, hi) in ascending
// order. The body is unrolled eight wide so the loop bookkeeping and error
// checks pipeline across calls — with a small apply this roughly triples
// per-update throughput, which is most of what separated DiffusiveWorkers
// from DiffusiveBatch.
func applySpan(worker, lo, hi int, apply func(worker, pos int) error) error {
	pos := lo
	for ; hi-pos >= 8; pos += 8 {
		if err := apply(worker, pos); err != nil {
			return err
		}
		if err := apply(worker, pos+1); err != nil {
			return err
		}
		if err := apply(worker, pos+2); err != nil {
			return err
		}
		if err := apply(worker, pos+3); err != nil {
			return err
		}
		if err := apply(worker, pos+4); err != nil {
			return err
		}
		if err := apply(worker, pos+5); err != nil {
			return err
		}
		if err := apply(worker, pos+6); err != nil {
			return err
		}
		if err := apply(worker, pos+7); err != nil {
			return err
		}
	}
	for ; pos < hi; pos++ {
		if err := apply(worker, pos); err != nil {
			return err
		}
	}
	return nil
}

// spanAlign is the alignment quantum, in update positions, of per-worker
// span boundaries: 16 positions of an int32-element working buffer is one
// 64-byte cache line, so workers that write output element `pos` (the
// sequential order) never split a line — the false-sharing pathology that
// made multi-worker rounds slower than single-worker ones.
const spanAlign = 16

// spanBound returns worker boundary w of n positions split across workers:
// the exact n*w/workers split rounded up to spanAlign, capped at n. Bounds
// are non-decreasing in w, bound 0 is 0, and bound `workers` is n, so the
// spans [bound(w), bound(w+1)) cover [0, n) exactly once.
func spanBound(n, w, workers int) int {
	if w >= workers {
		return n
	}
	b := (n*w/workers + spanAlign - 1) &^ (spanAlign - 1)
	if b > n {
		b = n
	}
	return b
}

// spinIters bounds the busy-wait phases of the round pool's handshakes: a
// worker spins this long for its next span before parking on its wake
// channel, and the dispatcher spins this long for round completion before
// parking in wg.Wait. At ~1ns per polling iteration it covers tens of
// microseconds — enough that back-to-back small rounds (the per-update
// serving path) never pay a goroutine park/unpark round trip, while a pool
// idling across an expensive snapshot still parks and frees the CPU. Under
// the race detector every atomic load is instrumented and ~50× more
// expensive, so the bound shrinks accordingly (see race_on.go).
const spinIters = (1 - raceEnabled) << 14 // 16384 normally, 0 (park immediately) under -race

// roundWorker is one persistent worker's slot, padded so that slots on
// adjacent cache lines never share the hot fields: the dispatcher writes
// lo/hi/seq each round and the worker writes err/done each round.
type roundWorker struct {
	lo, hi int
	quit   bool
	err    error
	seq    atomic.Uint32 // bumped by the dispatcher to hand over lo/hi
	parked atomic.Bool   // worker is (about to be) blocked on wake
	wake   chan struct{} // buffered(1) wake token, conflating
	_      [40]byte
}

// roundPool executes rounds of a diffusive pass. Workers 1..W-1 are
// goroutines spawned once for the whole pass; worker 0's span runs inline
// on the stage goroutine. Compared to spawning W goroutines per round this
// keeps worker identity stable (worker-private scratch stays on a warm
// stack and cache), removes the per-round spawn allocations, and leaves
// the publish path untouched on the stage goroutine — the single-writer
// discipline anytimevet enforces.
//
// Handover is a seq-number handshake with bounded spinning on both sides
// (see spinIters). Parking is race-free by the usual store/load-check
// protocol: the worker publishes parked=true and then re-checks seq; the
// dispatcher publishes seq and then checks parked. Both are sequentially
// consistent atomics, so at least one side observes the other and either
// the worker sees the new span or the dispatcher sends a wake token. The
// token channel is buffered and conflating — a stale token only causes one
// extra loop of the worker's seq check.
//
// Memory ordering: the dispatcher's seq.Add publishing lo/hi
// happens-before the worker's seq.Load observing it, and the worker's
// done.Add after its span happens-before the dispatcher's done.Load
// observing the count, so each round's writes are visible to snapshot()
// and to the same worker's next round without further synchronization.
type roundPool struct {
	run     func(worker, lo, hi int) error
	n       int           // configured worker count
	workers []roundWorker // index 0 unused; stage goroutine is worker 0. nil = inline-only pool
	done    atomic.Int32  // spans completed this round
	wg      sync.WaitGroup
}

func newRoundPool(workers int, run func(worker, lo, hi int) error) *roundPool {
	p := &roundPool{run: run, n: workers}
	// On a single-P runtime the goroutines could never overlap the stage
	// goroutine anyway, so don't spawn them at all: every round runs
	// through applyInline, and the pool costs nothing beyond its struct.
	if workers <= 1 || runtime.GOMAXPROCS(0) == 1 {
		return p
	}
	p.workers = make([]roundWorker, workers)
	for w := 1; w < workers; w++ {
		p.workers[w].wake = make(chan struct{}, 1)
		go p.worker(w)
	}
	return p
}

func (p *roundPool) worker(w int) {
	slot := &p.workers[w]
	seen := uint32(0)
	// Park immediately while waiting for the first dispatch — it may never
	// come (small totals dispatch fewer workers). Spinning only pays
	// between back-to-back rounds, so the budget turns on after the first
	// completed span.
	budget := 0
	for {
		// Spin for the next dispatch, yielding periodically so a
		// saturated scheduler can still make progress under GOMAXPROCS
		// oversubscription.
		for i := 0; slot.seq.Load() == seen; i++ {
			if i >= budget {
				slot.parked.Store(true)
				if slot.seq.Load() == seen {
					<-slot.wake
				}
				slot.parked.Store(false)
				i = 0
				continue
			}
			if i&1023 == 1023 {
				runtime.Gosched()
			}
		}
		seen = slot.seq.Load()
		if slot.quit {
			return
		}
		slot.err = p.run(w, slot.lo, slot.hi)
		p.done.Add(1)
		p.wg.Done()
		budget = spinIters
	}
}

// dispatch hands span [lo, hi) to worker w and wakes it if it parked.
func (p *roundPool) dispatch(w, lo, hi int) {
	slot := &p.workers[w]
	slot.lo, slot.hi = lo, hi
	slot.seq.Add(1)
	if slot.parked.Load() {
		select {
		case slot.wake <- struct{}{}:
		default: // a token is already pending; it conflates
		}
	}
}

// apply executes one round over positions [start, start+n).
func (p *roundPool) apply(start, n int) error {
	workers := p.n
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return p.run(0, start, start+n)
	}
	if p.workers == nil || runtime.GOMAXPROCS(0) == 1 {
		return p.applyInline(start, n, workers)
	}
	p.done.Store(0)
	hi0 := spanBound(n, 1, workers)
	dispatched := int32(0)
	for w := 1; w < workers; w++ {
		lo := spanBound(n, w, workers)
		hi := spanBound(n, w+1, workers)
		if lo >= hi {
			continue
		}
		dispatched++
		p.wg.Add(1)
		p.dispatch(w, start+lo, start+hi)
	}
	var err0 error
	if hi0 > 0 {
		err0 = p.run(0, start, start+hi0)
	}
	// Spin for completion (the workers finish at about the same time as
	// the inline span), then fall back to a real wait. The WaitGroup is
	// kept balanced either way: workers always call Done, and Wait on a
	// drained group returns immediately.
	for i := 0; p.done.Load() != dispatched; i++ {
		if i >= spinIters {
			break
		}
		if i&1023 == 1023 {
			runtime.Gosched()
		}
	}
	p.wg.Wait()
	if err0 != nil {
		return err0
	}
	for w := 1; w < workers; w++ {
		if err := p.workers[w].err; err != nil {
			return err
		}
	}
	return nil
}

// applyInline runs every worker's span sequentially on the stage
// goroutine, keeping the same worker-index-to-span mapping as the parallel
// path so worker-private partials end up in the same cells either way.
// With a single scheduler P there is no parallelism to win: handing spans
// to pool goroutines costs scheduler round-trips per round and can overlap
// nothing, which is exactly the configuration where multi-worker rounds
// used to run slower than single-worker ones.
func (p *roundPool) applyInline(start, n, workers int) error {
	for w := 0; w < workers; w++ {
		lo, hi := spanBound(n, w, workers), spanBound(n, w+1, workers)
		if lo >= hi {
			continue
		}
		if err := p.run(w, start+lo, start+hi); err != nil {
			return err
		}
	}
	return nil
}

// stop releases the pool's goroutines. It must be called with no round in
// flight; spans dispatched before stop have completed (apply waits).
func (p *roundPool) stop() {
	for w := 1; w < len(p.workers); w++ {
		p.workers[w].quit = true
		p.dispatch(w, 0, 0)
	}
}

// AsyncConsume implements the child side of an asynchronous pipeline edge:
// it invokes fn on successive snapshots of in, skipping stale intermediates
// (the child "processes whichever output happens to be in the buffer"), and
// always runs fn at least once on the parent's final snapshot before
// returning. fn itself typically publishes — possibly several anytime
// versions — to the child's own buffer, marking its output final only when
// snap.Final is set.
func AsyncConsume[I any](c *Context, in *Buffer[I], fn func(snap Snapshot[I]) error) error {
	var last Version
	for {
		if err := c.Checkpoint(); err != nil {
			return err
		}
		if h := c.hooks; h != nil && h.EdgeWait != nil {
			h.EdgeWait(c.name, in.Name(), last)
		}
		snap, err := in.WaitNewer(c.Context(), last)
		if err != nil {
			return ErrStopped
		}
		last = snap.Version
		if err := fn(snap); err != nil {
			return err
		}
		if snap.Final {
			return nil
		}
	}
}
