package core

import (
	"fmt"
	"sync"
	"time"
)

// This file provides the three stage-loop shapes of the paper:
//
//   - Iterative (§III-B1): re-execute the computation at increasing
//     accuracy; each pass overwrites the previous output; the last pass is
//     the precise function.
//   - Diffusive (§III-B2): apply permuted updates to a working output;
//     every update contributes to the final result, so no work is redundant.
//   - AsyncConsume (§III-C1): a child stage that recomputes on whichever
//     parent snapshot is current, always eventually running on the final
//     one.
//
// The synchronous pipeline's update stream (§III-C2) lives in stream.go.

// Iterative runs the intermediate computations f_1 … f_n in order,
// publishing each result to out; the final pass is published as the precise
// output. Each pass must be a pure function of its captured inputs
// (Property 1).
func Iterative[T any](c *Context, out *Buffer[T], passes []func() (T, error)) error {
	if len(passes) == 0 {
		return fmt.Errorf("core: iterative stage %q has no passes", c.Name())
	}
	for i, pass := range passes {
		if err := c.Checkpoint(); err != nil {
			return err
		}
		v, err := pass()
		if err != nil {
			return err
		}
		if _, err := out.Publish(v, i == len(passes)-1); err != nil {
			return err
		}
	}
	return nil
}

// PublishPolicy selects when a diffusive stage constructs and publishes a
// round snapshot. Snapshot construction is pure overhead relative to the
// precise computation (paper §IV-C), so how often it runs decides the
// automaton's cost of being anytime.
type PublishPolicy int

const (
	// PublishEveryRound publishes after every round of Granularity updates
	// — the paper's default granularity model (§III-B2).
	PublishEveryRound PublishPolicy = iota
	// PublishOnDemand skips snapshot construction while nobody has consumed
	// the previous version (no Latest/WaitNewer reader and no observer):
	// the consumer "processes whichever output happens to be in the buffer"
	// (§III-C1), so refreshing an unread buffer buys nothing. A blocked
	// reader or a consumed snapshot re-enables publishing at the next round
	// boundary, and the final snapshot is always published.
	PublishOnDemand
	// PublishAdaptive widens the effective publish interval until snapshot
	// construction stays within PublishBudget as a fraction of stage time —
	// the granularity auto-tuning of §IV-C1 aimed at a fixed overhead
	// target instead of a fixed update count.
	PublishAdaptive
)

// DefaultPublishBudget is the adaptive policy's snapshot-overhead target
// when RoundConfig.PublishBudget is zero: publishing may consume at most
// this fraction of the stage's wall time.
const DefaultPublishBudget = 0.1

// RoundConfig tunes a diffusive stage's execution.
type RoundConfig struct {
	// Granularity is the number of updates applied between successive
	// publish opportunities. It controls how early and how often
	// approximate outputs become visible. Zero selects total/32 (at least
	// 1).
	Granularity int
	// Workers is the number of goroutines applying updates within a round
	// (the multi-threaded sampling of §IV-C1). Zero selects 1. When
	// Workers > 1, apply must be safe for concurrent calls with distinct
	// positions.
	Workers int
	// Policy selects when round snapshots are constructed and published.
	// The zero value is PublishEveryRound.
	Policy PublishPolicy
	// PublishBudget is PublishAdaptive's target ceiling for the fraction of
	// stage time spent building and publishing snapshots, in (0, 1). Zero
	// selects DefaultPublishBudget. Ignored by the other policies.
	PublishBudget float64
}

func (cfg RoundConfig) withDefaults(total int) (RoundConfig, error) {
	if cfg.Granularity < 0 || cfg.Workers < 0 {
		return cfg, fmt.Errorf("core: negative round config %+v", cfg)
	}
	if cfg.Policy < PublishEveryRound || cfg.Policy > PublishAdaptive {
		return cfg, fmt.Errorf("core: unknown publish policy %d", cfg.Policy)
	}
	if cfg.PublishBudget < 0 || cfg.PublishBudget >= 1 {
		return cfg, fmt.Errorf("core: publish budget %v out of range [0, 1)", cfg.PublishBudget)
	}
	if cfg.Granularity == 0 {
		cfg.Granularity = total / 32
		if cfg.Granularity < 1 {
			cfg.Granularity = 1
		}
	}
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	if cfg.PublishBudget == 0 {
		cfg.PublishBudget = DefaultPublishBudget
	}
	return cfg, nil
}

// Diffusive executes a diffusive anytime stage: total update steps applied
// in rounds, publishing an approximate snapshot after every round and the
// precise output after the last.
//
// apply(pos) performs update step pos (0 <= pos < total); positions are
// executed exactly once, in rounds of Granularity consecutive positions
// striped across Workers goroutines. snapshot(processed) is called with no
// apply running and returns the value to publish after the first
// `processed` updates — typically a clone, possibly weighted/normalized for
// non-idempotent reductions (§III-B2).
func Diffusive[T any](c *Context, out *Buffer[T], total int, apply func(pos int) error, snapshot func(processed int) (T, error), cfg RoundConfig) error {
	return DiffusiveWorkers(c, out, total,
		func(worker, pos int) error { return apply(pos) },
		snapshot, cfg)
}

// DiffusiveWorkers is Diffusive with the executing worker's index exposed to
// apply. Worker indices are in [0, Workers); a given worker runs its updates
// sequentially, so apply may accumulate into worker-private state — the
// thread-privatized partials the paper's multi-threaded reductions use
// (§IV-A2, kmeans) — which snapshot then merges during round quiescence.
func DiffusiveWorkers[T any](c *Context, out *Buffer[T], total int, apply func(worker, pos int) error, snapshot func(processed int) (T, error), cfg RoundConfig) error {
	return DiffusivePass(c, out, total, apply, snapshot, cfg, true)
}

// DiffusivePass is DiffusiveWorkers with control over whether the pass's
// last snapshot is published as the buffer's final output. An anytime child
// stage in an asynchronous pipeline runs one full diffusive pass per parent
// snapshot it consumes (§III-C1, g(F_i) with g itself anytime); only the
// pass over the parent's final snapshot may mark the child's buffer final,
// so intermediate passes run with markFinal = false.
func DiffusivePass[T any](c *Context, out *Buffer[T], total int, apply func(worker, pos int) error, snapshot func(processed int) (T, error), cfg RoundConfig, markFinal bool) error {
	return diffusiveRun(c, out, total,
		func(cfg RoundConfig, start, n int) error {
			return applyRound(start, n, cfg.Workers, apply)
		},
		snapshot, cfg, markFinal)
}

// DiffusiveBatch is DiffusivePass for stages whose per-update work is tiny
// (a table lookup, a histogram increment): apply receives a contiguous
// range [lo, hi) of update positions and iterates it directly, avoiding a
// function call per update. Each round is split into one contiguous chunk
// per worker; as with DiffusiveWorkers, a given worker's chunks execute
// sequentially, so worker-private accumulators are safe.
func DiffusiveBatch[T any](c *Context, out *Buffer[T], total int, apply func(worker, lo, hi int) error, snapshot func(processed int) (T, error), cfg RoundConfig, markFinal bool) error {
	return diffusiveRun(c, out, total,
		func(cfg RoundConfig, start, n int) error {
			return applyRoundBatch(start, n, cfg.Workers, apply)
		},
		snapshot, cfg, markFinal)
}

// diffusiveRun is the shared round loop of the diffusive stage shapes: it
// applies rounds through applyRange and publishes snapshots as the round
// config's publish policy dictates. A skipped round's updates are simply
// covered by the next snapshot that does get built — diffusive updates are
// cumulative, so every published version reflects all updates applied so
// far regardless of how many publish opportunities were skipped.
func diffusiveRun[T any](c *Context, out *Buffer[T], total int, applyRange func(cfg RoundConfig, start, n int) error, snapshot func(processed int) (T, error), cfg RoundConfig, markFinal bool) error {
	if total < 0 {
		return fmt.Errorf("core: diffusive stage %q has negative total %d", c.Name(), total)
	}
	cfg, err := cfg.withDefaults(total)
	if err != nil {
		return err
	}
	if total == 0 {
		v, err := snapshot(0)
		if err != nil {
			return err
		}
		_, err = out.Publish(v, markFinal)
		return err
	}
	gov := publishGovernor{cfg: cfg}
	for done := 0; done < total; {
		if err := c.Checkpoint(); err != nil {
			return err
		}
		n := cfg.Granularity
		if done+n > total {
			n = total - done
		}
		gov.beginApply()
		if err := applyRange(cfg, done, n); err != nil {
			return err
		}
		gov.endApply()
		done += n
		final := done == total
		if !final && !gov.shouldPublish(out) {
			continue
		}
		gov.beginPublish()
		v, err := snapshot(done)
		if err != nil {
			return err
		}
		if _, err := out.Publish(v, markFinal && final); err != nil {
			return err
		}
		gov.endPublish()
	}
	return nil
}

// publishGovernor implements the publish policies for the diffusive round
// loop. It only reads the clock under PublishAdaptive, so the default
// policy's round loop stays timestamp-free.
type publishGovernor struct {
	cfg         RoundConfig
	applyTime   time.Duration
	publishTime time.Duration
	mark        time.Time
}

func (g *publishGovernor) timed() bool { return g.cfg.Policy == PublishAdaptive }

func (g *publishGovernor) beginApply() {
	if g.timed() {
		g.mark = time.Now()
	}
}

func (g *publishGovernor) endApply() {
	if g.timed() {
		g.applyTime += time.Since(g.mark)
	}
}

func (g *publishGovernor) beginPublish() {
	if g.timed() {
		g.mark = time.Now()
	}
}

func (g *publishGovernor) endPublish() {
	if g.timed() {
		g.publishTime += time.Since(g.mark)
	}
}

// shouldPublish decides whether this round boundary builds a snapshot (the
// final round always does; the loop never asks about it).
func (g *publishGovernor) shouldPublish(demand interface{ Demanded() bool }) bool {
	switch g.cfg.Policy {
	case PublishOnDemand:
		return demand.Demanded()
	case PublishAdaptive:
		// Publish while cumulative snapshot overhead sits within budget:
		// each (expensive) publish pushes the ratio up, then apply rounds
		// dilute it back under the target, so the cadence self-adjusts to
		// spend ~PublishBudget of stage time on publishing.
		spent := g.applyTime + g.publishTime
		return spent == 0 || float64(g.publishTime) <= g.cfg.PublishBudget*float64(spent)
	default:
		return true
	}
}

// applyRoundBatch splits [start, start+n) into contiguous per-worker chunks.
func applyRoundBatch(start, n, workers int, apply func(worker, lo, hi int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return apply(0, start, start+n)
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			lo := start + n*w/workers
			hi := start + n*(w+1)/workers
			if lo < hi {
				errs[w] = apply(w, lo, hi)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// applyRound executes apply for positions [start, start+n) using the given
// number of workers, striping positions cyclically.
func applyRound(start, n, workers int, apply func(worker, pos int) error) error {
	if workers == 1 || n == 1 {
		for k := 0; k < n; k++ {
			if err := apply(0, start+k); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for k := w; k < n; k += workers {
				if err := apply(w, start+k); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// AsyncConsume implements the child side of an asynchronous pipeline edge:
// it invokes fn on successive snapshots of in, skipping stale intermediates
// (the child "processes whichever output happens to be in the buffer"), and
// always runs fn at least once on the parent's final snapshot before
// returning. fn itself typically publishes — possibly several anytime
// versions — to the child's own buffer, marking its output final only when
// snap.Final is set.
func AsyncConsume[I any](c *Context, in *Buffer[I], fn func(snap Snapshot[I]) error) error {
	var last Version
	for {
		if err := c.Checkpoint(); err != nil {
			return err
		}
		if h := c.hooks; h != nil && h.EdgeWait != nil {
			h.EdgeWait(c.name, in.Name(), last)
		}
		snap, err := in.WaitNewer(c.Context(), last)
		if err != nil {
			return ErrStopped
		}
		last = snap.Version
		if err := fn(snap); err != nil {
			return err
		}
		if snap.Final {
			return nil
		}
	}
}
