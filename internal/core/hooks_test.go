package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// collectHooks builds a Hooks value recording every callback into counters
// safe for the concurrent stage goroutines.
type hookLog struct {
	mu            sync.Mutex
	starts        []string
	finishes      map[string]error
	autoStart     int
	autoStages    int
	autoFinish    int
	autoOutcome   error
	checkpoints   atomic.Int64
	pausedWaits   atomic.Int64
	totalPausedNS atomic.Int64
}

func (l *hookLog) hooks() *Hooks {
	return &Hooks{
		AutomatonStart: func(stages int) {
			l.mu.Lock()
			defer l.mu.Unlock()
			l.autoStart++
			l.autoStages = stages
		},
		AutomatonFinish: func(outcome error, elapsed time.Duration) {
			l.mu.Lock()
			defer l.mu.Unlock()
			l.autoFinish++
			l.autoOutcome = outcome
		},
		StageStart: func(stage string) {
			l.mu.Lock()
			defer l.mu.Unlock()
			l.starts = append(l.starts, stage)
		},
		StageFinish: func(stage string, err error, elapsed time.Duration) {
			l.mu.Lock()
			defer l.mu.Unlock()
			if l.finishes == nil {
				l.finishes = map[string]error{}
			}
			l.finishes[stage] = err
		},
		Checkpoint: func(stage string, wait time.Duration) {
			l.checkpoints.Add(1)
			if wait > 0 {
				l.pausedWaits.Add(1)
				l.totalPausedNS.Add(int64(wait))
			}
		},
	}
}

func TestHooksFireAcrossLifecycle(t *testing.T) {
	var log hookLog
	out := NewBuffer[int]("out", nil)
	a := New()
	if err := a.AddStage("s1", func(c *Context) error {
		for i := 0; i < 4; i++ {
			if err := c.Checkpoint(); err != nil {
				return err
			}
			if _, err := out.Publish(i, i == 3); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddStage("s2", func(c *Context) error {
		return c.Checkpoint()
	}); err != nil {
		t.Fatal(err)
	}
	a.SetHooks(log.hooks())
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	// AutomatonFinish fires on its own goroutine after done closes; give it
	// a moment.
	deadline := time.After(2 * time.Second)
	for {
		log.mu.Lock()
		fin := log.autoFinish
		log.mu.Unlock()
		if fin == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("AutomatonFinish never fired")
		case <-time.After(time.Millisecond):
		}
	}
	log.mu.Lock()
	defer log.mu.Unlock()
	if log.autoStart != 1 || log.autoStages != 2 {
		t.Errorf("AutomatonStart = %d (stages %d), want 1 (2)", log.autoStart, log.autoStages)
	}
	if log.autoOutcome != nil {
		t.Errorf("outcome = %v, want nil (precise finish)", log.autoOutcome)
	}
	if len(log.starts) != 2 {
		t.Errorf("StageStart fired for %v, want both stages", log.starts)
	}
	if err, ok := log.finishes["s1"]; !ok || err != nil {
		t.Errorf("StageFinish(s1) = %v, %v", err, ok)
	}
	if got := log.checkpoints.Load(); got < 5 {
		t.Errorf("checkpoints = %d, want >= 5", got)
	}
}

func TestHooksCheckpointReportsPauseWait(t *testing.T) {
	var log hookLog
	started := make(chan struct{})
	release := make(chan struct{})
	a := New()
	if err := a.AddStage("s", func(c *Context) error {
		if err := c.Checkpoint(); err != nil {
			return err
		}
		close(started)
		<-release
		return c.Checkpoint() // blocks at the paused gate
	}); err != nil {
		t.Fatal(err)
	}
	a.SetHooks(log.hooks())
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	<-started
	a.Pause()
	close(release)
	time.Sleep(20 * time.Millisecond) // stage is now blocked at the gate
	a.Resume()
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	if log.pausedWaits.Load() == 0 {
		t.Error("no checkpoint reported a nonzero pause wait")
	}
	if log.totalPausedNS.Load() < int64(10*time.Millisecond) {
		t.Errorf("total pause wait %v, want >= 10ms", time.Duration(log.totalPausedNS.Load()))
	}
}

func TestHooksStageFinishNormalizesErrors(t *testing.T) {
	var log hookLog
	a := New()
	if err := a.AddStage("boom", func(c *Context) error {
		panic("kaboom")
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddStage("loop", func(c *Context) error {
		for {
			if err := c.Checkpoint(); err != nil {
				return err
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	a.SetHooks(log.hooks())
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	err := a.Wait()
	if err == nil || errors.Is(err, ErrStopped) {
		t.Fatalf("Wait() = %v, want the panic as a stage failure", err)
	}
	log.mu.Lock()
	defer log.mu.Unlock()
	if err := log.finishes["boom"]; err == nil || errors.Is(err, ErrStopped) {
		t.Errorf("StageFinish(boom) = %v, want the panic error", err)
	}
	if err := log.finishes["loop"]; !errors.Is(err, ErrStopped) {
		t.Errorf("StageFinish(loop) = %v, want ErrStopped", err)
	}
}

func TestSetHooksAfterStartIsNoOp(t *testing.T) {
	var log hookLog
	a := New()
	block := make(chan struct{})
	if err := a.AddStage("s", func(c *Context) error {
		<-block
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	a.SetHooks(log.hooks())
	close(block)
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	log.mu.Lock()
	defer log.mu.Unlock()
	if log.autoStart != 0 || len(log.starts) != 0 {
		t.Error("hooks attached after Start still fired")
	}
}

func TestStreamOnDepthObservesQueue(t *testing.T) {
	st, err := NewStream[int](4)
	if err != nil {
		t.Fatal(err)
	}
	var maxDepth atomic.Int64
	var gotCap atomic.Int64
	st.OnDepth(func(depth, capacity int) {
		gotCap.Store(int64(capacity))
		for {
			cur := maxDepth.Load()
			if int64(depth) <= cur || maxDepth.CompareAndSwap(cur, int64(depth)) {
				return
			}
		}
	})
	a := New()
	if err := a.AddStage("producer", func(c *Context) error {
		for i := 1; i <= 8; i++ {
			if err := st.Send(c, Update[int]{Seq: i, Data: i, Last: i == 8}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddStage("consumer", func(c *Context) error {
		return SyncConsume(c, st, func(u Update[int]) error {
			time.Sleep(time.Millisecond) // let the producer run ahead
			return nil
		})
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	if gotCap.Load() != 4 {
		t.Errorf("capacity = %d, want 4", gotCap.Load())
	}
	if maxDepth.Load() < 1 {
		t.Errorf("max depth = %d, want >= 1", maxDepth.Load())
	}
}

// TestChainHooksIdentity: zero or one live input passes through unchanged,
// preserving the nil-guard fast path exactly — chaining must never wrap
// what it doesn't need to.
func TestChainHooksIdentity(t *testing.T) {
	if got := ChainHooks(); got != nil {
		t.Error("ChainHooks() != nil")
	}
	if got := ChainHooks(nil, nil); got != nil {
		t.Error("ChainHooks(nil, nil) != nil")
	}
	h := &Hooks{StageStart: func(string) {}}
	if got := ChainHooks(nil, h, nil); got != h {
		t.Error("single live input was wrapped instead of returned as-is")
	}
}

// TestChainHooksInvokesAllInOrder: every non-nil callback of every input
// fires, in argument order, with the original arguments.
func TestChainHooksInvokesAllInOrder(t *testing.T) {
	var order []string
	mk := func(name string) *Hooks {
		return &Hooks{
			AutomatonStart:  func(stages int) { order = append(order, name+".start") },
			AutomatonFinish: func(error, time.Duration) { order = append(order, name+".finish") },
			StageStart:      func(stage string) { order = append(order, name+".stage:"+stage) },
			StageFinish:     func(string, error, time.Duration) { order = append(order, name+".stagefin") },
			Checkpoint:      func(string, time.Duration) { order = append(order, name+".cp") },
			EdgeWait:        func(stage, buffer string, after Version) { order = append(order, name+".wait:"+buffer) },
			EdgeRecv:        func(string) { order = append(order, name+".recv") },
		}
	}
	c := ChainHooks(mk("a"), nil, mk("b"))
	if c == nil || c.AutomatonStart == nil || c.StageStart == nil || c.Checkpoint == nil ||
		c.EdgeWait == nil || c.EdgeRecv == nil || c.StageFinish == nil || c.AutomatonFinish == nil {
		t.Fatal("chain dropped a provided callback")
		return
	}
	c.AutomatonStart(2)
	c.StageStart("s")
	c.Checkpoint("s", 0)
	c.EdgeWait("s", "buf", 1)
	c.EdgeRecv("s")
	c.StageFinish("s", nil, 0)
	c.AutomatonFinish(nil, 0)
	want := []string{
		"a.start", "b.start",
		"a.stage:s", "b.stage:s",
		"a.cp", "b.cp",
		"a.wait:buf", "b.wait:buf",
		"a.recv", "b.recv",
		"a.stagefin", "b.stagefin",
		"a.finish", "b.finish",
	}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order[%d] = %q, want %q (full: %v)", i, order[i], want[i], order)
		}
	}
}

// TestChainHooksSparseFields: a combined field is set only when some input
// sets it, so unused instrumentation points keep their one-pointer-check
// cost through the chain.
func TestChainHooksSparseFields(t *testing.T) {
	fired := 0
	c := ChainHooks(
		&Hooks{AutomatonStart: func(int) { fired++ }},
		&Hooks{Checkpoint: func(string, time.Duration) { fired++ }},
	)
	if c.AutomatonFinish != nil || c.StageStart != nil || c.StageFinish != nil ||
		c.EdgeWait != nil || c.EdgeRecv != nil {
		t.Error("chain set callbacks no input provided")
	}
	if c == nil || c.AutomatonStart == nil || c.Checkpoint == nil {
		t.Fatal("chain dropped provided callbacks")
		return
	}
	c.AutomatonStart(1)
	c.Checkpoint("s", 0)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

// TestChainHooksDrivesAutomaton: a chained pair observes a real run — the
// integration shape cmd/anytimed uses (telemetry + request tracer on one
// SetHooks point).
func TestChainHooksDrivesAutomaton(t *testing.T) {
	var a, b atomic.Int64
	count := func(n *atomic.Int64) *Hooks {
		return &Hooks{
			AutomatonStart:  func(int) { n.Add(1) },
			AutomatonFinish: func(error, time.Duration) { n.Add(1) },
		}
	}
	auto := New()
	if err := auto.AddStage("s", func(c *Context) error { return c.Checkpoint() }); err != nil {
		t.Fatal(err)
	}
	auto.SetHooks(ChainHooks(count(&a), count(&b)))
	if err := auto.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := auto.Wait(); err != nil {
		t.Fatal(err)
	}
	if a.Load() != 2 || b.Load() != 2 {
		t.Fatalf("chained observers saw a=%d b=%d lifecycle callbacks, want 2 each", a.Load(), b.Load())
	}
}
