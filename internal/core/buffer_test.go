package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestBufferPublishLatest(t *testing.T) {
	b := NewBuffer[int]("b", nil)
	if _, ok := b.Latest(); ok {
		t.Error("empty buffer reported a snapshot")
	}
	snap, err := b.Publish(7, false)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != 1 || snap.Final || snap.Value != 7 {
		t.Errorf("first snapshot = %+v", snap)
	}
	got, ok := b.Latest()
	if !ok || got != snap {
		t.Errorf("Latest = %+v, %v", got, ok)
	}
}

func TestBufferVersionsIncrease(t *testing.T) {
	b := NewBuffer[int]("b", nil)
	for i := 1; i <= 10; i++ {
		snap, err := b.Publish(i, i == 10)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Version != Version(i) {
			t.Errorf("version %d after %d publishes", snap.Version, i)
		}
	}
	if !b.Final() {
		t.Error("buffer not final after final publish")
	}
}

func TestBufferRejectsPublishAfterFinal(t *testing.T) {
	b := NewBuffer[int]("b", nil)
	if _, err := b.Publish(1, true); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Publish(2, false); !errors.Is(err, ErrFinalized) {
		t.Errorf("publish after final: %v", err)
	}
}

func TestBufferCloneIsolation(t *testing.T) {
	clone := func(s []int) []int { return append([]int(nil), s...) }
	b := NewBuffer("b", clone)
	work := []int{1, 2, 3}
	if _, err := b.Publish(work, false); err != nil {
		t.Fatal(err)
	}
	work[0] = 99 // writer keeps mutating its working copy
	snap, _ := b.Latest()
	if snap.Value[0] != 1 {
		t.Error("published snapshot shares storage with the working value (Property 3 violated)")
	}
}

func TestBufferWaitNewerReturnsImmediatelyWhenFresh(t *testing.T) {
	b := NewBuffer[string]("b", nil)
	if _, err := b.Publish("x", false); err != nil {
		t.Fatal(err)
	}
	snap, err := b.WaitNewer(context.Background(), 0)
	if err != nil || snap.Value != "x" {
		t.Errorf("WaitNewer = %+v, %v", snap, err)
	}
}

func TestBufferWaitNewerBlocksUntilPublish(t *testing.T) {
	b := NewBuffer[int]("b", nil)
	done := make(chan Snapshot[int])
	go func() {
		snap, err := b.WaitNewer(context.Background(), 0)
		if err != nil {
			t.Error(err)
		}
		done <- snap
	}()
	select {
	case <-done:
		t.Fatal("WaitNewer returned before any publish")
	case <-time.After(10 * time.Millisecond):
	}
	if _, err := b.Publish(5, false); err != nil {
		t.Fatal(err)
	}
	select {
	case snap := <-done:
		if snap.Value != 5 {
			t.Errorf("got %+v", snap)
		}
	case <-time.After(time.Second):
		t.Fatal("WaitNewer never woke up")
	}
}

func TestBufferWaitNewerSkipsStale(t *testing.T) {
	b := NewBuffer[int]("b", nil)
	var v3 Snapshot[int]
	for i := 1; i <= 3; i++ {
		snap, err := b.Publish(i, false)
		if err != nil {
			t.Fatal(err)
		}
		v3 = snap
	}
	snap, err := b.WaitNewer(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if snap != v3 {
		t.Errorf("WaitNewer(1) = %+v, want latest %+v", snap, v3)
	}
}

func TestBufferWaitNewerHonorsContext(t *testing.T) {
	b := NewBuffer[int]("b", nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.WaitNewer(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("WaitNewer with cancelled ctx = %v", err)
	}
}

func TestBufferObserverSeesEveryPublishInOrder(t *testing.T) {
	b := NewBuffer[int]("b", nil)
	var got []Version
	b.OnPublish(func(s Snapshot[int]) { got = append(got, s.Version) })
	for i := 0; i < 5; i++ {
		if _, err := b.Publish(i, i == 4); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 5 {
		t.Fatalf("observer saw %d publishes", len(got))
	}
	for i, v := range got {
		if v != Version(i+1) {
			t.Errorf("observer order wrong: %v", got)
		}
	}
}

// TestBufferTwoObserversBothSeeEveryPublish locks in the append-only
// observer list: registering a second observer (telemetry next to a tracer,
// say) must not displace the first, and both must see every publish in
// order.
func TestBufferTwoObserversBothSeeEveryPublish(t *testing.T) {
	b := NewBuffer[int]("b", nil)
	var first, second []Version
	b.OnPublish(func(s Snapshot[int]) { first = append(first, s.Version) })
	b.OnPublish(func(s Snapshot[int]) { second = append(second, s.Version) })
	b.OnPublish(nil) // must be ignored, not registered
	for i := 0; i < 4; i++ {
		if _, err := b.Publish(i, i == 3); err != nil {
			t.Fatal(err)
		}
	}
	for name, got := range map[string][]Version{"first": first, "second": second} {
		if len(got) != 4 {
			t.Fatalf("%s observer saw %d publishes, want 4", name, len(got))
		}
		for i, v := range got {
			if v != Version(i+1) {
				t.Errorf("%s observer order wrong: %v", name, got)
			}
		}
	}
}

// TestBufferConcurrentReadersSeeMonotoneVersions hammers a buffer with one
// writer and many readers; every reader must observe strictly increasing
// versions and never a torn snapshot (value encodes the version).
func TestBufferConcurrentReadersSeeMonotoneVersions(t *testing.T) {
	b := NewBuffer[uint64]("b", nil)
	const publishes = 2000
	const readers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastVersion Version
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap, ok := b.Latest()
				if !ok {
					continue
				}
				if snap.Version < lastVersion {
					t.Error("version went backwards")
					return
				}
				if snap.Value != uint64(snap.Version)*3 {
					t.Errorf("torn snapshot: version %d value %d", snap.Version, snap.Value)
					return
				}
				lastVersion = snap.Version
			}
		}()
	}
	for i := 1; i <= publishes; i++ {
		if _, err := b.Publish(uint64(i)*3, i == publishes); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestBufferManyWaiters: all blocked waiters wake on a single publish.
func TestBufferManyWaiters(t *testing.T) {
	b := NewBuffer[int]("b", nil)
	const n = 16
	var wg sync.WaitGroup
	results := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			snap, err := b.WaitNewer(context.Background(), 0)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = snap.Value
		}(i)
	}
	time.Sleep(5 * time.Millisecond)
	if _, err := b.Publish(42, true); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, v := range results {
		if v != 42 {
			t.Errorf("waiter %d got %d", i, v)
		}
	}
}
