package core

import (
	"context"
	"runtime"
	"testing"
)

// The per-update alloc budget guard. The serving path's per-update runner
// was rebuilt to allocate only at pass setup (buffer, automaton, pool, and
// — with real parallelism — the pool's worker goroutines); per-round costs
// are allocation-free. These tests pin that property numerically so a
// regression reintroducing per-round allocations (the old runner spawned
// goroutines every round: 111 allocs/op at 4W) fails CI's bench-smoke
// step. The budgets are 2× the measured post-rewrite counts, so routine
// runtime drift doesn't trip them but a per-round leak (which multiplies
// by the round count, 8 here) immediately does.

// allocGuardTotal matches BenchmarkDiffusivePerUpdate's workload: 8 rounds
// of total/8 updates through the per-update runner.
const allocGuardTotal = 1 << 16

// measuredPerUpdateAllocs are the pinned post-rewrite allocs per pass
// (BENCH_kernels.json): 20 at 1 worker, 27 at 4 workers on the spawned
// (GOMAXPROCS>1) path.
var measuredPerUpdateAllocs = map[int]float64{1: 20, 4: 27}

func runPerUpdatePass(t *testing.T, outArr []int32, workers int) {
	t.Helper()
	out := NewBuffer[int]("out", nil)
	a := New()
	err := a.AddStage("d", func(c *Context) error {
		return DiffusiveWorkers(c, out, allocGuardTotal,
			func(worker, pos int) error { outArr[pos] = int32(pos); return nil },
			func(processed int) (int, error) { return processed, nil },
			RoundConfig{Granularity: allocGuardTotal / 8, Workers: workers})
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
}

func allocsPerPass(t *testing.T, workers int) float64 {
	t.Helper()
	outArr := make([]int32, allocGuardTotal)
	runPerUpdatePass(t, outArr, workers) // warm up lazy runtime state
	const runs = 50
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		runPerUpdatePass(t, outArr, workers)
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / runs
}

// TestPerUpdateAllocBudget1W guards the single-worker per-update path.
func TestPerUpdateAllocBudget1W(t *testing.T) {
	got := allocsPerPass(t, 1)
	if budget := 2 * measuredPerUpdateAllocs[1]; got > budget {
		t.Fatalf("per-update pass at 1 worker allocates %.1f times, budget is %.0f (2x the pinned %.0f)",
			got, budget, measuredPerUpdateAllocs[1])
	}
}

// TestPerUpdateAllocBudget4W guards the multi-worker path. GOMAXPROCS is
// forced to 2 for the measurement so the pool's spawned-goroutine path (the
// one that used to cost 111 allocs/op) is exercised even on single-CPU
// hosts, where the pool would otherwise run every span inline.
func TestPerUpdateAllocBudget4W(t *testing.T) {
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)
	got := allocsPerPass(t, 4)
	if budget := 2 * measuredPerUpdateAllocs[4]; got > budget {
		t.Fatalf("per-update pass at 4 workers allocates %.1f times, budget is %.0f (2x the pinned %.0f)",
			got, budget, measuredPerUpdateAllocs[4])
	}
}
