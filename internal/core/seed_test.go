package core

import (
	"context"
	"errors"
	"testing"
)

func TestBufferSeedThenPublishContinues(t *testing.T) {
	t.Parallel()
	b := NewBuffer[int]("seeded", nil)
	if err := b.Seed(41, 7); err != nil {
		t.Fatalf("Seed: %v", err)
	}
	s, ok := b.Peek()
	if !ok || s.Version != 7 || s.Value != 41 || s.Final {
		t.Fatalf("seeded snapshot = %+v, ok=%v; want version 7 value 41 non-final", s, ok)
	}
	pub, err := b.Publish(42, false)
	if err != nil {
		t.Fatalf("Publish after seed: %v", err)
	}
	if pub.Version != 8 {
		t.Fatalf("publish after seed at 7 got version %d, want 8", pub.Version)
	}
}

func TestBufferSeedErrors(t *testing.T) {
	t.Parallel()
	b := NewBuffer[int]("seeded", nil)
	if err := b.Seed(1, 0); err == nil {
		t.Fatal("Seed with version 0 succeeded")
	}
	if _, err := b.Publish(1, false); err != nil {
		t.Fatal(err)
	}
	if err := b.Seed(2, 5); err == nil {
		t.Fatal("Seed after publish succeeded")
	}
	b.Reset()
	if err := b.Seed(2, 5); err != nil {
		t.Fatalf("Seed after Reset: %v", err)
	}
}

func TestBufferSeedDoesNotFireObservers(t *testing.T) {
	t.Parallel()
	b := NewBuffer[int]("seeded", nil)
	fired := 0
	b.OnPublish(func(Snapshot[int]) { fired++ })
	if err := b.Seed(1, 3); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatalf("seed fired %d observers; a seed is not a publish", fired)
	}
	if _, err := b.Publish(2, true); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("publish after seed fired %d observers, want 1", fired)
	}
}

func TestBufferSeedClones(t *testing.T) {
	t.Parallel()
	clone := func(v []int) []int { return append([]int(nil), v...) }
	b := NewBuffer[[]int]("seeded", clone)
	src := []int{1, 2, 3}
	if err := b.Seed(src, 2); err != nil {
		t.Fatal(err)
	}
	src[0] = 99
	s, _ := b.Peek()
	if s.Value[0] != 1 {
		t.Fatalf("seed aliased the caller's value: got %v", s.Value)
	}
}

func TestBufferSeedWakesWaiter(t *testing.T) {
	t.Parallel()
	b := NewBuffer[int]("seeded", nil)
	got := make(chan Snapshot[int], 1)
	armed := make(chan struct{})
	go func() {
		close(armed)
		s, err := b.WaitNewer(context.Background(), 0)
		if err == nil {
			got <- s
		}
	}()
	<-armed
	if err := b.Seed(9, 4); err != nil {
		t.Fatal(err)
	}
	s := <-got
	if s.Version != 4 || s.Value != 9 {
		t.Fatalf("waiter saw %+v, want the version-4 seed", s)
	}
}

func TestAutomatonSeedFrom(t *testing.T) {
	t.Parallel()
	out := NewBuffer[int]("out", nil)
	a := New()
	if err := a.AddStage("count", func(c *Context) error {
		for i := 0; i < 2; i++ {
			if err := c.Checkpoint(); err != nil {
				return err
			}
			if _, err := out.Publish(i, i == 1); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// No hook registered: callers must get the sentinel to fall back on.
	if err := a.SeedFrom(7, 3); !errors.Is(err, ErrNoSeedSupport) {
		t.Fatalf("SeedFrom without hooks = %v, want ErrNoSeedSupport", err)
	}

	var order []string
	a.OnSeed(func(seed any, v Version) error {
		order = append(order, "first")
		if seed.(int) != 7 || v != 3 {
			t.Errorf("hook saw (%v, %d), want (7, 3)", seed, v)
		}
		return out.Seed(seed.(int), v)
	})
	a.OnSeed(func(seed any, v Version) error {
		order = append(order, "second")
		return nil
	})
	a.OnSeed(nil) // ignored

	if err := a.SeedFrom(7, 3); err != nil {
		t.Fatalf("SeedFrom: %v", err)
	}
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("hook order = %v", order)
	}
	s, ok := out.Peek()
	if !ok || s.Version != 3 {
		t.Fatalf("buffer after seed = %+v, ok=%v", s, ok)
	}

	// Publishes continue past the seed version.
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	final, _ := out.Peek()
	if final.Version != 5 || !final.Final {
		t.Fatalf("final after seeded run = %+v, want version 5 final", final)
	}

	// A started (or finished) automaton must refuse to seed.
	if err := a.SeedFrom(7, 3); err == nil {
		t.Fatal("SeedFrom on a finished automaton succeeded")
	}
	if err := a.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := a.SeedFrom(7, 0); err == nil {
		t.Fatal("SeedFrom with version 0 succeeded")
	}
}

func TestAutomatonSeedFromHookFailure(t *testing.T) {
	t.Parallel()
	a := New()
	boom := errors.New("bad seed")
	ran := 0
	a.OnSeed(func(any, Version) error { ran++; return boom })
	a.OnSeed(func(any, Version) error { ran++; return nil })
	if err := a.SeedFrom(1, 1); !errors.Is(err, boom) {
		t.Fatalf("SeedFrom = %v, want the hook failure", err)
	}
	if ran != 1 {
		t.Fatalf("%d hooks ran after a failure, want 1 (stop at first error)", ran)
	}
}
