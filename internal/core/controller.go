package core

import (
	"context"
	"time"
)

// Stopping control (paper §III-A): "The decision of stopping can either be
// automated via dynamic accuracy metrics, user-specified or enforced by
// time/energy constraints." This file provides the automated and
// constraint-driven controllers; user-specified stopping is just calling
// Automaton.Stop.

// StopWhen watches buf and stops the automaton as soon as a published
// snapshot satisfies accept — the whole-output dynamic accuracy control the
// model enables (unlike per-segment metrics, accept sees the entire
// application output). The returned channel delivers exactly one snapshot:
// the first accepted one, or the final snapshot if the automaton reaches
// its precise output (always acceptable, by the model's guarantee) or is
// stopped by other means first.
//
// accept runs on the controller's goroutine; it must not call Stop or Wait
// itself (StopWhen does that).
func StopWhen[T any](a *Automaton, buf *Buffer[T], accept func(Snapshot[T]) bool) <-chan Snapshot[T] {
	out := make(chan Snapshot[T], 1)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-a.Done()
		cancel()
	}()
	go func() {
		defer cancel()
		var last Version
		for {
			snap, err := buf.WaitNewer(ctx, last)
			if err != nil {
				// Automaton ended (stopped or finished); deliver whatever
				// the buffer holds.
				if final, ok := buf.Latest(); ok {
					out <- final
				}
				close(out)
				return
			}
			last = snap.Version
			if accept(snap) || snap.Final {
				if !snap.Final {
					a.Stop()
				}
				out <- snap
				close(out)
				return
			}
		}
	}()
	return out
}

// StopAfter enforces a hard time budget: it stops the automaton once d has
// elapsed unless it finishes first — the paper's "real-time environments
// where absolute time/energy constraints need to be met". It returns a
// cancel function that disarms the deadline.
func StopAfter(a *Automaton, d time.Duration) (cancel func()) {
	timer := time.NewTimer(d)
	done := make(chan struct{})
	go func() {
		select {
		case <-timer.C:
			a.Stop()
		case <-a.Done():
		case <-done:
		}
	}()
	return func() {
		timer.Stop()
		close(done)
	}
}
