package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrStopped is the error stages observe at a Checkpoint after the
// automaton has been stopped. Automaton.Wait returns it when execution was
// interrupted before the precise output was reached — which, in the anytime
// model, is a legitimate outcome, not a failure: the output buffers hold the
// latest published approximations.
var ErrStopped = errors.New("core: automaton stopped")

type automatonState int

const (
	stateIdle automatonState = iota
	stateRunning
	stateDone
)

// Automaton supervises the parallel pipeline: it owns the stage goroutines,
// the pause gate, and cancellation. Build one with New, register each
// stage's loop with AddStage, then Start it. The automaton finishes either
// when every stage has returned (the precise output has been reached) or
// when Stop interrupts it.
type Automaton struct {
	gate *gate

	mu      sync.Mutex
	state   automatonState
	stages  []registeredStage
	cancel  context.CancelFunc
	done    chan struct{}
	err     error
	hooks   *Hooks
	onReset []func()
	onSeed  []func(seed any, version Version) error

	wg sync.WaitGroup
}

type registeredStage struct {
	name string
	fn   func(*Context) error
}

// New returns an empty automaton, ready for stage registration.
func New() *Automaton {
	return &Automaton{
		gate: newGate(),
		done: make(chan struct{}),
	}
}

// AddStage registers a stage loop under the given name. fn runs on its own
// goroutine once the automaton starts; it should publish to exactly one
// Buffer (Property 2) and call Context.Checkpoint between units of work so
// pause and stop take effect promptly. Stages must be added before Start.
func (a *Automaton) AddStage(name string, fn func(*Context) error) error {
	if fn == nil {
		return fmt.Errorf("core: stage %q has nil function", name)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.state != stateIdle {
		return fmt.Errorf("core: cannot add stage %q after start", name)
	}
	a.stages = append(a.stages, registeredStage{name: name, fn: fn})
	return nil
}

// Start launches every registered stage. The provided context bounds the
// whole execution: cancelling it is equivalent to Stop.
func (a *Automaton) Start(ctx context.Context) error {
	a.mu.Lock()
	if a.state != stateIdle {
		a.mu.Unlock()
		return errors.New("core: automaton already started")
	}
	if len(a.stages) == 0 {
		a.mu.Unlock()
		return errors.New("core: automaton has no stages")
	}
	runCtx, cancel := context.WithCancel(ctx)
	a.cancel = cancel
	a.state = stateRunning
	stages := a.stages
	hooks := a.hooks
	done := a.done // capture: Reset swaps the field for the next run
	a.mu.Unlock()

	var begin time.Time
	if hooks != nil {
		begin = time.Now()
		if hooks.AutomatonStart != nil {
			hooks.AutomatonStart(len(stages))
		}
	}
	a.wg.Add(len(stages))
	for _, s := range stages {
		go func() {
			defer a.wg.Done()
			sc := &Context{ctx: runCtx, a: a, name: s.name, hooks: hooks}
			var stageBegin time.Time
			if hooks != nil {
				stageBegin = time.Now()
				if hooks.StageStart != nil {
					hooks.StageStart(s.name)
				}
			}
			err := runStage(s, sc)
			if hooks != nil && hooks.StageFinish != nil {
				hooks.StageFinish(s.name, normalizeStop(err), time.Since(stageBegin))
			}
			if err != nil {
				a.recordError(s.name, err)
			}
		}()
	}
	go func() {
		a.wg.Wait()
		a.mu.Lock()
		a.state = stateDone
		err := a.err
		a.mu.Unlock()
		cancel()
		close(done)
		if hooks != nil && hooks.AutomatonFinish != nil {
			hooks.AutomatonFinish(err, time.Since(begin))
		}
	}()
	return nil
}

// runStage executes one stage loop, converting a panic into a stage
// failure: a panicking stage must bring the automaton down as an error, not
// kill the whole process — the other stages' output buffers still hold
// valid approximations.
func runStage(s registeredStage, sc *Context) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return s.fn(sc)
}

// normalizeStop folds the stop-shaped errors into ErrStopped, the way Wait
// reports them.
func normalizeStop(err error) error {
	if err != nil && isStop(err) {
		return ErrStopped
	}
	return err
}

func (a *Automaton) recordError(stage string, err error) {
	if isStop(err) {
		err = ErrStopped
	} else {
		err = fmt.Errorf("core: stage %q: %w", stage, err)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	// Keep the first real failure; a real failure outranks ErrStopped.
	switch {
	case a.err == nil:
		a.err = err
	case errors.Is(a.err, ErrStopped) && !errors.Is(err, ErrStopped):
		a.err = err
	}
	// A stage failure must bring the pipeline down rather than hang its
	// consumers, and must not leave siblings blocked at a pause gate.
	if !errors.Is(err, ErrStopped) {
		if a.cancel != nil {
			a.cancel()
		}
		a.gate.resume()
	}
}

func isStop(err error) bool {
	return errors.Is(err, ErrStopped) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Pause suspends progress: every stage blocks at its next Checkpoint.
// Published snapshots remain readable while paused — the interruptibility
// the model is named for. Pausing an idle or finished automaton is a no-op
// that still takes effect if it is later started.
func (a *Automaton) Pause() { a.gate.pause() }

// Resume releases a Pause.
func (a *Automaton) Resume() { a.gate.resume() }

// Paused reports whether the pause gate is currently closed.
func (a *Automaton) Paused() bool { return a.gate.paused() }

// Stop interrupts execution and waits for every stage to exit. The output
// buffers keep their latest snapshots. Stopping an already-finished
// automaton is a no-op.
func (a *Automaton) Stop() {
	a.mu.Lock()
	cancel := a.cancel
	started := a.state != stateIdle
	done := a.done
	a.mu.Unlock()
	if !started {
		return
	}
	if cancel != nil {
		cancel()
	}
	a.gate.resume() // a paused stage must be released to observe the stop
	<-done
}

// OnReset registers fn to run during Reset, after the automaton's own
// control state has been rewound. Applications register the rewinding of
// their per-run state here — output Buffer.Reset, snapshotter masks,
// worker-private accumulators — so a pooled automaton can be checked out
// again without reallocating stages, permutations, or arenas. Hooks run in
// registration order on the resetting goroutine; nil is ignored.
func (a *Automaton) OnReset(fn func()) {
	if fn == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.onReset = append(a.onReset, fn)
}

// Reset rewinds a finished (or never-started) automaton back to idle so it
// can be started again: the registered stages, attached hooks, and OnReset
// callbacks are kept; the terminal error, cancellation, done channel, and a
// pending pause are cleared; then every OnReset hook runs. Resetting a
// running automaton is an error — Stop it first.
//
// Reset is the warm-pool primitive of internal/serve: construction cost
// (DAG building, permutation tables, image arenas) is paid once, and each
// reuse pays only this rewind.
func (a *Automaton) Reset() error {
	a.mu.Lock()
	if a.state == stateRunning {
		a.mu.Unlock()
		return errors.New("core: cannot reset a running automaton")
	}
	a.state = stateIdle
	a.err = nil
	a.cancel = nil
	a.done = make(chan struct{})
	hooks := append([]func(){}, a.onReset...)
	a.mu.Unlock()
	// A pause requested during (or after) the previous run must not leak
	// into the next one.
	a.gate.resume()
	for _, fn := range hooks {
		fn()
	}
	return nil
}

// Done returns a channel closed when every stage has exited. Reset replaces
// the channel, so a reused automaton's callers must take Done again after
// each checkout rather than caching it across runs.
func (a *Automaton) Done() <-chan struct{} {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.done
}

// Wait blocks until every stage has exited. It returns nil if the automaton
// ran to its precise output, ErrStopped if it was interrupted, or the first
// stage failure otherwise.
func (a *Automaton) Wait() error {
	<-a.Done()
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.err
}

// Context is the per-stage execution context handed to stage loops.
type Context struct {
	ctx   context.Context
	a     *Automaton
	name  string
	hooks *Hooks
}

// Name reports the stage's registered name.
func (c *Context) Name() string { return c.name }

// Context returns the cancellation context bounding this execution.
func (c *Context) Context() context.Context { return c.ctx }

// Checkpoint is the stage's cooperation point: it blocks while the
// automaton is paused and returns ErrStopped once it has been stopped.
// Stage loops should call it between units of work.
func (c *Context) Checkpoint() error {
	if c.ctx.Err() != nil {
		return ErrStopped
	}
	h := c.hooks
	if h == nil || h.Checkpoint == nil {
		if err := c.a.gate.wait(c.ctx); err != nil {
			return ErrStopped
		}
		return nil
	}
	// Hooked path: report the time spent blocked at the pause gate, paying
	// for timestamps only when the gate is actually closed.
	if c.a.gate.tryWait() {
		h.Checkpoint(c.name, 0)
		return nil
	}
	begin := time.Now()
	err := c.a.gate.wait(c.ctx)
	h.Checkpoint(c.name, time.Since(begin))
	if err != nil {
		return ErrStopped
	}
	return nil
}

// gate implements pause/resume as a swap-on-pause closed channel.
type gate struct {
	mu   sync.Mutex
	ch   chan struct{} // closed while running; open (blocking) while paused
	on   bool          // paused?
	hint atomic.Bool   // mirrors on; a lock-free poll for batched loops
}

func newGate() *gate {
	g := &gate{ch: make(chan struct{})}
	close(g.ch)
	return g
}

func (g *gate) pause() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.on {
		g.on = true
		g.hint.Store(true)
		g.ch = make(chan struct{})
	}
}

func (g *gate) resume() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.on {
		g.on = false
		g.hint.Store(false)
		close(g.ch)
	}
}

// pauseHint reports, without taking the gate lock, whether a pause has been
// requested. It may trail pause/resume by a moment; callers use it to decide
// when to fall back to a full Checkpoint, which gives the authoritative
// answer.
func (g *gate) pauseHint() bool { return g.hint.Load() }

func (g *gate) paused() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.on
}

// tryWait reports whether the gate is open without blocking.
func (g *gate) tryWait() bool {
	g.mu.Lock()
	ch := g.ch
	g.mu.Unlock()
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

func (g *gate) wait(ctx context.Context) error {
	g.mu.Lock()
	ch := g.ch
	g.mu.Unlock()
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Err reports the automaton's terminal error without blocking: nil while
// running or after a clean finish, ErrStopped after an interruption, or the
// first stage failure.
func (a *Automaton) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.err
}
