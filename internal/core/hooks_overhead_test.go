package core

import (
	"testing"
	"time"
)

// seedCheckpoint is the exact Checkpoint body the package had before the
// Hooks instrumentation points were added: a context error check plus one
// closed-channel receive at the (open) pause gate.
func seedCheckpoint(c *Context) error {
	if c.ctx.Err() != nil {
		return ErrStopped
	}
	if err := c.a.gate.wait(c.ctx); err != nil {
		return ErrStopped
	}
	return nil
}

// TestUnhookedCheckpointOverheadWithinBudget is the bench guard for the
// telemetry layer: with no registry attached (nil hooks), the instrumented
// Checkpoint must stay within 5% of the pre-telemetry path. Both loops are
// identical but for one nil pointer check, so the guard holds outside of
// scheduler noise; it retries a few times before declaring a regression.
func TestUnhookedCheckpointOverheadWithinBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard")
	}
	c := benchContext(nil)
	// Warm both paths so neither loop pays one-time costs.
	for i := 0; i < 1000; i++ {
		if err := c.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if err := seedCheckpoint(c); err != nil {
			t.Fatal(err)
		}
	}
	measure := func(fn func(*Context) error) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := fn(c); err != nil {
					b.Fatal(err)
				}
			}
		})
		return float64(r.T.Nanoseconds()) / float64(r.N)
	}
	const attempts = 5
	var lastBase, lastCur float64
	for i := 0; i < attempts; i++ {
		lastBase = measure(seedCheckpoint)
		lastCur = measure((*Context).Checkpoint)
		if lastCur <= lastBase*1.05 {
			return
		}
	}
	t.Errorf("unhooked Checkpoint %.2f ns/op vs pre-telemetry %.2f ns/op (>5%% overhead across %d attempts)",
		lastCur, lastBase, attempts)
}

// TestHookedCheckpointStillCheap bounds the hooked path loosely: attaching
// hooks may pay for timestamps and callbacks, but must stay within an order
// of magnitude of the bare gate — a canary against accidentally putting a
// lock or allocation on the per-checkpoint path.
func TestHookedCheckpointStillCheap(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard")
	}
	hooked := benchContext(&Hooks{Checkpoint: func(string, time.Duration) {}})
	bare := benchContext(nil)
	measure := func(c *Context) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := c.Checkpoint(); err != nil {
					b.Fatal(err)
				}
			}
		})
		return float64(r.T.Nanoseconds()) / float64(r.N)
	}
	h := measure(hooked)
	u := measure(bare)
	if u > 0 && h > u*10 {
		t.Errorf("hooked Checkpoint %.2f ns/op vs unhooked %.2f ns/op (>10x)", h, u)
	}
}
