package core

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Tests for the wait-free buffer's demand tracking and the diffusive
// publish policies.

func TestBufferPublishAmortizedAllocFree(t *testing.T) {
	buf := NewBuffer[int]("b", nil)
	// Warm the arena past its growth phase.
	for i := 0; i < snapArenaCap*2; i++ {
		if _, err := buf.Publish(i, false); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		if _, err := buf.Publish(1, false); err != nil {
			t.Fatal(err)
		}
	})
	// One chunk allocation per snapArenaCap publishes; anything near 1
	// means the per-publish channel (or cell) allocation came back.
	if avg > 2.0/float64(snapArenaCap) {
		t.Errorf("publish allocates %.3f objects/op, want ~1/%d", avg, snapArenaCap)
	}
}

func TestBufferLatestAllocFree(t *testing.T) {
	buf := NewBuffer[int]("b", nil)
	if _, err := buf.Publish(1, false); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(100, func() { buf.Latest() }); avg != 0 {
		t.Errorf("Latest allocates %.3f objects/op, want 0", avg)
	}
}

func TestBufferDemandedSemantics(t *testing.T) {
	buf := NewBuffer[int]("b", nil)
	if !buf.Demanded() {
		t.Error("empty buffer should be demanded (first publish always has value)")
	}
	if _, err := buf.Publish(1, false); err != nil {
		t.Fatal(err)
	}
	if buf.Demanded() {
		t.Error("unconsumed snapshot reported as demanded")
	}
	if _, ok := buf.Peek(); !ok {
		t.Fatal("peek failed")
	}
	if buf.Demanded() {
		t.Error("Peek must not register demand")
	}
	if _, ok := buf.Latest(); !ok {
		t.Fatal("latest failed")
	}
	if !buf.Demanded() {
		t.Error("consumed snapshot should re-arm demand")
	}
	if _, err := buf.Publish(2, false); err != nil {
		t.Fatal(err)
	}
	if buf.Demanded() {
		t.Error("fresh unconsumed snapshot reported as demanded")
	}
	// A blocked waiter is demand.
	armed := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		close(armed)
		if _, err := buf.WaitNewer(context.Background(), 2); err != nil {
			t.Error(err)
		}
	}()
	<-armed
	for !buf.Demanded() {
		time.Sleep(time.Millisecond) // waiter not yet parked
	}
	if _, err := buf.Publish(3, false); err != nil {
		t.Fatal(err)
	}
	<-done
}

func TestBufferObserverCountsAsDemand(t *testing.T) {
	buf := NewBuffer[int]("b", nil)
	buf.OnPublish(func(Snapshot[int]) {})
	if _, err := buf.Publish(1, false); err != nil {
		t.Fatal(err)
	}
	if !buf.Demanded() {
		t.Error("buffer with an observer should always be demanded")
	}
}

// TestBufferConcurrentPublishWaitDemand races a publisher against waiters
// and demand pollers; run with -race it checks the lock-free paths.
func TestBufferConcurrentPublishWaitDemand(t *testing.T) {
	buf := NewBuffer[int]("b", nil)
	const publishes = 2000
	var wg sync.WaitGroup
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last Version
			for {
				s, err := buf.WaitNewer(ctx, last)
				if err != nil {
					return
				}
				if s.Version <= last {
					t.Errorf("version went backwards: %d after %d", s.Version, last)
					return
				}
				last = s.Version
				if s.Final {
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ctx.Err() == nil {
			buf.Demanded()
			buf.Peek()
			buf.Latest()
		}
	}()
	for i := 1; i <= publishes; i++ {
		if _, err := buf.Publish(i, i == publishes); err != nil {
			t.Error(err)
			break
		}
	}
	cancel()
	wg.Wait()
}

// stageEnv runs a single diffusive stage to completion and returns its
// error.
func stageEnv(t *testing.T, stage func(*Context) error) error {
	t.Helper()
	a := New()
	if err := a.AddStage("s", stage); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	return a.Wait()
}

func TestDiffusiveWorkersExceedRoundSize(t *testing.T) {
	out := NewBuffer[int]("out", nil)
	const total = 6
	var sum atomic.Int64
	err := stageEnv(t, func(c *Context) error {
		return DiffusiveWorkers(c, out, total,
			func(worker, pos int) error { sum.Add(int64(pos + 1)); return nil },
			func(processed int) (int, error) { return processed, nil },
			RoundConfig{Granularity: 2, Workers: 16})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sum.Load(); got != total*(total+1)/2 {
		t.Errorf("positions mis-applied: sum %d", got)
	}
	s, ok := out.Latest()
	if !ok || !s.Final || s.Value != total {
		t.Errorf("final snapshot = %+v, %v", s, ok)
	}
}

func TestDiffusiveBatchWorkersExceedRoundSize(t *testing.T) {
	out := NewBuffer[int]("out", nil)
	const total = 5
	var sum atomic.Int64
	err := stageEnv(t, func(c *Context) error {
		return DiffusiveBatch(c, out, total,
			func(worker, lo, hi int) error {
				for pos := lo; pos < hi; pos++ {
					sum.Add(int64(pos + 1))
				}
				return nil
			},
			func(processed int) (int, error) { return processed, nil },
			RoundConfig{Granularity: 2, Workers: 16}, true)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sum.Load(); got != total*(total+1)/2 {
		t.Errorf("positions mis-applied: sum %d", got)
	}
}

func TestDiffusiveGranularityExceedsTotal(t *testing.T) {
	out := NewBuffer[int]("out", nil)
	const total = 5
	snapshots := 0
	err := stageEnv(t, func(c *Context) error {
		return Diffusive(c, out, total,
			func(pos int) error { return nil },
			func(processed int) (int, error) { snapshots++; return processed, nil },
			RoundConfig{Granularity: total * 10})
	})
	if err != nil {
		t.Fatal(err)
	}
	if snapshots != 1 {
		t.Errorf("snapshot called %d times, want 1 (single oversized round)", snapshots)
	}
	s, ok := out.Latest()
	if !ok || s.Version != 1 || !s.Final || s.Value != total {
		t.Errorf("snapshot = %+v, %v", s, ok)
	}
}

func TestRoundConfigRejectsBadPolicyAndBudget(t *testing.T) {
	out := NewBuffer[int]("out", nil)
	noop := func(pos int) error { return nil }
	snap := func(processed int) (int, error) { return processed, nil }
	if err := stageEnv(t, func(c *Context) error {
		return Diffusive(c, out, 4, noop, snap, RoundConfig{Policy: PublishPolicy(99)})
	}); err == nil {
		t.Error("bogus policy accepted")
	}
	out2 := NewBuffer[int]("out2", nil)
	if err := stageEnv(t, func(c *Context) error {
		return Diffusive(c, out2, 4, noop, snap, RoundConfig{PublishBudget: 1.5})
	}); err == nil {
		t.Error("out-of-range budget accepted")
	}
}

func TestPublishOnDemandSkipsUnconsumedRounds(t *testing.T) {
	out := NewBuffer[int]("out", nil)
	const total, gran = 64, 4 // 16 round boundaries
	snapshots := 0
	err := stageEnv(t, func(c *Context) error {
		return Diffusive(c, out, total,
			func(pos int) error { return nil },
			func(processed int) (int, error) { snapshots++; return processed, nil },
			RoundConfig{Granularity: gran, Policy: PublishOnDemand})
	})
	if err != nil {
		t.Fatal(err)
	}
	// Round 1 publishes (empty buffer is demand), nobody consumes, so every
	// other non-final round is skipped; the final round always publishes.
	if snapshots != 2 {
		t.Errorf("snapshot built %d times, want 2 (first + final)", snapshots)
	}
	s, ok := out.Latest()
	if !ok || !s.Final || s.Value != total || s.Version != 2 {
		t.Errorf("final snapshot = %+v, %v", s, ok)
	}
}

func TestPublishOnDemandServesConsumers(t *testing.T) {
	out := NewBuffer[int]("out", nil)
	// An observer is standing demand: every round must publish.
	var seen atomic.Int64
	out.OnPublish(func(Snapshot[int]) { seen.Add(1) })
	const total, gran = 64, 4
	err := stageEnv(t, func(c *Context) error {
		return Diffusive(c, out, total,
			func(pos int) error { return nil },
			func(processed int) (int, error) { return processed, nil },
			RoundConfig{Granularity: gran, Policy: PublishOnDemand})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := seen.Load(); got != total/gran {
		t.Errorf("observer saw %d publishes, want %d", got, total/gran)
	}
}

func TestPublishAdaptiveStaysNearBudget(t *testing.T) {
	out := NewBuffer[int]("out", nil)
	const total, gran = 256, 4 // 64 round boundaries
	snapshots := 0
	err := stageEnv(t, func(c *Context) error {
		return Diffusive(c, out, total,
			func(pos int) error { return nil }, // apply is ~free
			func(processed int) (int, error) {
				snapshots++
				time.Sleep(2 * time.Millisecond) // snapshots are expensive
				return processed, nil
			},
			RoundConfig{Granularity: gran, Policy: PublishAdaptive, PublishBudget: 0.05})
	})
	if err != nil {
		t.Fatal(err)
	}
	// With free applies and 2ms snapshots, publishing every round would put
	// snapshot time at ~100% of stage time; a 5% budget must skip most
	// boundaries. The exact count is timing-dependent; the invariant is
	// "far fewer than every round, and always the final one".
	if snapshots >= total/gran/2 {
		t.Errorf("adaptive policy built %d snapshots of %d boundaries", snapshots, total/gran)
	}
	if s, ok := out.Latest(); !ok || !s.Final || s.Value != total {
		t.Errorf("final snapshot = %+v, %v", s, ok)
	}
}

// TestPublishAdaptiveZeroBudgetStillPublishesFinal pins the anytime
// contract against the governor: PublishBudget == 0 means "use the
// default", not "never publish", and even the stingiest governor state
// must not suppress the final precise snapshot (Property 1 outranks the
// overhead target).
func TestPublishAdaptiveZeroBudgetStillPublishesFinal(t *testing.T) {
	out := NewBuffer[int]("out", nil)
	const total, gran = 256, 4
	err := stageEnv(t, func(c *Context) error {
		return Diffusive(c, out, total,
			func(pos int) error { return nil },
			func(processed int) (int, error) {
				time.Sleep(time.Millisecond) // make every snapshot look expensive
				return processed, nil
			},
			RoundConfig{Granularity: gran, Policy: PublishAdaptive}) // budget left zero
	})
	if err != nil {
		t.Fatal(err)
	}
	s, ok := out.Latest()
	if !ok {
		t.Fatal("zero-budget adaptive stage never published")
	}
	if !s.Final || s.Value != total {
		t.Errorf("terminal snapshot = %+v, want final with value %d", s, total)
	}
}

// TestPublishAdaptiveTinyBudgetStillPublishesFinal drives the same
// contract to its pathological corner: a budget so small the governor
// wants to skip every boundary. Intermediate rounds may all be suppressed;
// the final round must still land, and it must be the precise output.
func TestPublishAdaptiveTinyBudgetStillPublishesFinal(t *testing.T) {
	out := NewBuffer[int]("out", nil)
	const total, gran = 256, 4
	snapshots := 0
	err := stageEnv(t, func(c *Context) error {
		return Diffusive(c, out, total,
			func(pos int) error { return nil },
			func(processed int) (int, error) {
				snapshots++
				time.Sleep(time.Millisecond)
				return processed, nil
			},
			RoundConfig{Granularity: gran, Policy: PublishAdaptive, PublishBudget: 1e-9})
	})
	if err != nil {
		t.Fatal(err)
	}
	s, ok := out.Latest()
	if !ok || !s.Final || s.Value != total {
		t.Fatalf("terminal snapshot = %+v, %v; want final with value %d", s, ok, total)
	}
	if snapshots < 1 {
		t.Error("final snapshot was never built")
	}
	t.Logf("tiny budget built %d of %d boundary snapshots", snapshots, total/gran)
}
