package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

// runContract executes RunContract inside an automaton and returns the
// chosen pass index.
func runContract(t *testing.T, out *Buffer[string], passes []ContractPass[string], deadline time.Duration) (int, error) {
	t.Helper()
	var ran int
	var runErr error
	a := New()
	if err := a.AddStage("contract", func(c *Context) error {
		ran, runErr = RunContract(c, out, passes, deadline)
		return runErr
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil && runErr == nil {
		t.Fatal(err)
	}
	return ran, runErr
}

func pass(name string, est, actual time.Duration) ContractPass[string] {
	return ContractPass[string]{
		Name:    name,
		EstCost: est,
		Run: func() (string, error) {
			time.Sleep(actual)
			return name, nil
		},
	}
}

func TestContractValidation(t *testing.T) {
	out := NewBuffer[string]("out", nil)
	if _, err := runContract(t, out, nil, time.Second); err == nil {
		t.Error("no passes accepted")
	}
	out = NewBuffer[string]("out", nil)
	if _, err := runContract(t, out, []ContractPass[string]{pass("a", 1, 0)}, 0); err == nil {
		t.Error("zero deadline accepted")
	}
	out = NewBuffer[string]("out", nil)
	if _, err := runContract(t, out, []ContractPass[string]{{Name: "nil"}}, time.Second); err == nil {
		t.Error("nil Run accepted")
	}
	out = NewBuffer[string]("out", nil)
	if _, err := runContract(t, out, []ContractPass[string]{{Name: "neg", EstCost: -1, Run: func() (string, error) { return "", nil }}}, time.Second); err == nil {
		t.Error("negative estimate accepted")
	}
}

// TestContractPicksMostAccurateFittingPass: with an ample budget, the
// precise pass runs directly and is final.
func TestContractAmpleBudgetGoesPrecise(t *testing.T) {
	out := NewBuffer[string]("out", nil)
	passes := []ContractPass[string]{
		pass("coarse", time.Millisecond, 0),
		pass("medium", 2*time.Millisecond, 0),
		pass("precise", 3*time.Millisecond, 0),
	}
	ran, err := runContract(t, out, passes, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ran != 2 {
		t.Errorf("ran pass %d, want 2 (precise)", ran)
	}
	snap, _ := out.Latest()
	if snap.Value != "precise" || !snap.Final {
		t.Errorf("snapshot = %+v", snap)
	}
	// Only one pass should have been needed.
	if snap.Version != 1 {
		t.Errorf("versions published: %d, want 1", snap.Version)
	}
}

// TestContractTightBudgetPicksCoarse: with a budget below every estimate,
// the coarsest pass still runs (a contract stage always delivers), and the
// output is not final.
func TestContractTightBudgetPicksCoarse(t *testing.T) {
	out := NewBuffer[string]("out", nil)
	passes := []ContractPass[string]{
		pass("coarse", 50*time.Millisecond, 0),
		pass("precise", time.Hour, 0),
	}
	ran, err := runContract(t, out, passes, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if ran != 0 {
		t.Errorf("ran pass %d, want 0", ran)
	}
	snap, _ := out.Latest()
	if snap.Value != "coarse" || snap.Final {
		t.Errorf("snapshot = %+v", snap)
	}
}

// TestContractUpgradesWithLeftoverBudget: if the chosen pass finishes well
// under its estimate, the leftover budget buys an upgrade pass.
func TestContractUpgradesWithLeftoverBudget(t *testing.T) {
	out := NewBuffer[string]("out", nil)
	passes := []ContractPass[string]{
		pass("coarse", time.Millisecond, 0),
		pass("medium", 5*time.Millisecond, time.Millisecond),
		// precise estimated far beyond the deadline: never picked.
		pass("precise", time.Hour, 0),
	}
	// Budget fits medium but not precise; medium runs fast, but precise's
	// estimate still exceeds what remains.
	ran, err := runContract(t, out, passes, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Errorf("ran pass %d, want 1 (medium)", ran)
	}
	snap, _ := out.Latest()
	if snap.Final {
		t.Error("non-precise contract output marked final")
	}
}

func TestContractPassErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	out := NewBuffer[string]("out", nil)
	passes := []ContractPass[string]{
		{Name: "bad", EstCost: 0, Run: func() (string, error) { return "", boom }},
	}
	if _, err := runContract(t, out, passes, time.Second); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

// TestContractNeverRunsLowerAccuracyAfterHigher: once a pass has run, only
// strictly more accurate passes may follow.
func TestContractNeverDowngrades(t *testing.T) {
	out := NewBuffer[string]("out", nil)
	var orderRan []string
	mk := func(name string, est time.Duration) ContractPass[string] {
		return ContractPass[string]{
			Name:    name,
			EstCost: est,
			Run: func() (string, error) {
				orderRan = append(orderRan, name)
				return name, nil
			},
		}
	}
	passes := []ContractPass[string]{
		mk("p0", time.Microsecond),
		mk("p1", time.Microsecond),
		mk("p2", time.Microsecond),
	}
	if _, err := runContract(t, out, passes, time.Second); err != nil {
		t.Fatal(err)
	}
	// Ample budget: p2 runs immediately; nothing else.
	if len(orderRan) != 1 || orderRan[0] != "p2" {
		t.Errorf("ran %v", orderRan)
	}
}
