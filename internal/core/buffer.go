// Package core implements the Anytime Automaton computation model of
// San Miguel & Enright Jerger (ISCA 2016, §III): an approximate application
// is decomposed into computation stages connected by single-writer output
// buffers and executed as a parallel pipeline. Each stage publishes
// intermediate outputs of increasing accuracy; the automaton guarantees the
// precise output is eventually published, and it can be paused or stopped at
// any moment while the output buffers still hold valid approximations.
//
// The package enforces the paper's three structural properties:
//
//   - Property 1 (purity): stage step functions see only their input
//     snapshots and their own working output.
//   - Property 2 (single writer): each stage owns exactly one Buffer.
//   - Property 3 (atomic publish): buffers expose immutable versioned
//     snapshots; a reader never observes a torn write.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Version numbers the successive snapshots published to a Buffer, starting
// at 1. Versions are strictly increasing per buffer.
type Version uint64

// Snapshot is one immutable published output of a stage. Final marks the
// precise output: the last version the stage will ever publish.
type Snapshot[T any] struct {
	Value   T
	Version Version
	Final   bool
}

// ErrFinalized is returned when a stage attempts to publish past its final
// (precise) output.
var ErrFinalized = errors.New("core: buffer already holds its final output")

// snapArenaCap bounds the publisher-private snapshot arena. Chunks double
// from 1 up to this size, so a long-lived buffer amortizes its per-publish
// allocation to 1/snapArenaCap (reported as 0 allocs/op) while a buffer
// that publishes only a handful of versions allocates only what it uses.
// The flip side is retention: up to ~2×snapArenaCap recent snapshot values
// stay reachable through the live chunk until the publisher cycles past
// them. Keep the cap small enough that retaining that many values of a
// large T (a full image, say) stays cheap next to the pipeline's working
// state.
const snapArenaCap = 8

// Buffer is the versioned single-writer multi-reader output buffer of an
// anytime computation stage. The owning stage publishes successive
// approximations with Publish; any number of readers take consistent
// snapshots with Latest or block for fresher ones with WaitNewer.
//
// The hot paths are wait-free: Latest and Final are single atomic loads of
// an immutable snapshot cell (Property 3), and Publish is an atomic store
// under the single-writer invariant (Property 2). Blocking WaitNewer
// readers arm a wakeup channel with a compare-and-swap; a publish with no
// blocked reader neither allocates nor closes anything.
//
// If the stage keeps mutating a working value between publishes, it must
// construct the Buffer with a clone function so each published snapshot is
// an independent copy (Property 3). Stages that publish freshly built
// values each time may pass nil.
type Buffer[T any] struct {
	name  string
	clone func(T) T

	// cur points at the latest published snapshot (nil until the first
	// publish). Cells are immutable once stored: the publisher never writes
	// a cell after it becomes visible, so a reader dereferences without
	// synchronization beyond the atomic load.
	cur atomic.Pointer[Snapshot[T]]

	// waiter holds the wakeup channel armed by blocked WaitNewer callers,
	// nil when nobody is blocked. The publisher swaps it out and closes it
	// on every publish that finds one armed.
	waiter atomic.Pointer[chan struct{}]

	// consumed is the highest version a reader has taken through Latest or
	// WaitNewer — the demand signal PublishOnDemand stages poll through
	// Demanded.
	consumed atomic.Uint64

	// observers is the immutable registered-observer slice, swapped
	// wholesale on registration so Publish reads it with one atomic load.
	observers atomic.Pointer[[]func(Snapshot[T])]
	regMu     sync.Mutex

	// arena is the publisher-private snapshot chunk (Property 2: only the
	// owning stage touches it). Cells are handed out in order and never
	// reused, so published snapshots stay immutable; exhausted chunks are
	// garbage collected once no reader holds a cell in them.
	arena     []Snapshot[T]
	arenaNext int

	// errFinalized is the publish-past-final error, preformatted at
	// construction: Publish is a hotpath (//anytime:hotpath) and may not
	// call fmt, whose operands box.
	errFinalized error
}

// NewBuffer returns an empty buffer. name labels the buffer in errors and
// diagnostics. clone, if non-nil, deep-copies values at publish time.
func NewBuffer[T any](name string, clone func(T) T) *Buffer[T] {
	return &Buffer[T]{
		name:         name,
		clone:        clone,
		errFinalized: fmt.Errorf("%w (buffer %q)", ErrFinalized, name),
	}
}

// Name reports the buffer's label.
func (b *Buffer[T]) Name() string { return b.name }

// OnPublish registers an observer invoked after every publish with the new
// snapshot. Any number of observers may be registered (a Tracer and a
// telemetry sink routinely share a buffer); each is invoked from the
// publishing stage's goroutine, in registration order, and must not block
// for long (it delays the pipeline, exactly as a profiler attached to a
// real automaton would). Observers must be registered before the automaton
// starts.
func (b *Buffer[T]) OnPublish(fn func(Snapshot[T])) {
	if fn == nil {
		return
	}
	b.regMu.Lock()
	defer b.regMu.Unlock()
	var next []func(Snapshot[T])
	if prev := b.observers.Load(); prev != nil {
		next = append(next, *prev...)
	}
	next = append(next, fn)
	b.observers.Store(&next)
}

// nextCell hands out the next arena cell, growing the chunk geometrically
// up to snapArenaCap. Publisher-private; see Buffer.arena.
//
//anytime:hotpath
func (b *Buffer[T]) nextCell() *Snapshot[T] {
	if b.arenaNext == len(b.arena) {
		size := 2 * len(b.arena)
		if size == 0 {
			size = 1
		}
		if size > snapArenaCap {
			size = snapArenaCap
		}
		b.arena = make([]Snapshot[T], size)
		b.arenaNext = 0
	}
	cell := &b.arena[b.arenaNext]
	b.arenaNext++
	return cell
}

// Publish atomically installs v as the next snapshot. final marks v as the
// precise output; no further publishes are allowed after it. Publish
// returns the installed snapshot.
//
// Only the owning stage may call Publish (Property 2); calls are therefore
// sequential, and the fast path is one atomic store plus one atomic swap —
// no lock, and no allocation beyond the amortized snapshot cell.
//
//anytime:hotpath
func (b *Buffer[T]) Publish(v T, final bool) (Snapshot[T], error) {
	if b.clone != nil {
		v = b.clone(v)
	}
	prev := b.cur.Load()
	version := Version(1)
	if prev != nil {
		if prev.Final {
			return Snapshot[T]{}, b.errFinalized
		}
		version = prev.Version + 1
	}
	cell := b.nextCell()
	*cell = Snapshot[T]{Value: v, Version: version, Final: final}
	b.cur.Store(cell)
	// Wake blocked readers, if any. The store above happens before the
	// swap, and WaitNewer re-checks cur after arming, so a waiter either
	// sees this snapshot directly or owns a channel this swap observes.
	if ch := b.waiter.Swap(nil); ch != nil {
		close(*ch)
	}
	if obs := b.observers.Load(); obs != nil {
		for _, observer := range *obs {
			observer(*cell)
		}
	}
	return *cell, nil
}

// Latest returns the most recent snapshot, if any has been published. It is
// a wait-free atomic load; hot readers never contend with the publishing
// stage.
func (b *Buffer[T]) Latest() (Snapshot[T], bool) {
	s := b.cur.Load()
	if s == nil {
		return Snapshot[T]{}, false
	}
	b.markConsumed(s.Version)
	return *s, true
}

// Peek is Latest without registering demand: diagnostics and tests that
// merely inspect the buffer should not make a PublishOnDemand stage build
// fresh snapshots on their account.
func (b *Buffer[T]) Peek() (Snapshot[T], bool) {
	s := b.cur.Load()
	if s == nil {
		return Snapshot[T]{}, false
	}
	return *s, true
}

// Final reports whether the buffer holds its precise output (a wait-free
// load, like Latest).
func (b *Buffer[T]) Final() bool {
	s := b.cur.Load()
	return s != nil && s.Final
}

// markConsumed raises the consumed-version watermark to v.
func (b *Buffer[T]) markConsumed(v Version) {
	for {
		cur := b.consumed.Load()
		if uint64(v) <= cur || b.consumed.CompareAndSwap(cur, uint64(v)) {
			return
		}
	}
}

// Demanded reports whether a fresh publish would have an audience: the
// buffer is empty, an observer is registered, a reader is currently blocked
// in WaitNewer, or the latest snapshot has been consumed by Latest or
// WaitNewer. Demand-driven stages (RoundConfig.Policy == PublishOnDemand)
// poll this to skip building snapshots nobody would look at — the paper's
// consumer "processes whichever output happens to be in the buffer"
// (§III-C1), so an unconsumed version may simply be refreshed later.
func (b *Buffer[T]) Demanded() bool {
	if obs := b.observers.Load(); obs != nil && len(*obs) > 0 {
		return true
	}
	if b.waiter.Load() != nil {
		return true
	}
	s := b.cur.Load()
	return s == nil || b.consumed.Load() >= uint64(s.Version)
}

// Reset rewinds the buffer to its unpublished state so the owning
// automaton can be reused for a new run: the next Publish produces version
// 1 again and clears any finalized state. Registered observers stay
// attached (a pooled pipeline keeps its telemetry across requests), and the
// publisher-private arena keeps handing out unused cells, so snapshots a
// reader retained from the previous run remain immutable.
//
// Reset is part of the warm-pool discipline (internal/serve): it must only
// be called during quiescence — after the automaton has stopped and before
// it is restarted — with no reader blocked in WaitNewer. A reader that is
// blocked anyway is woken and simply blocks again for the new run's first
// version.
func (b *Buffer[T]) Reset() {
	b.cur.Store(nil)
	b.consumed.Store(0)
	// Wake any stale blocked reader so it cannot deadlock against a run
	// that no longer exists; it re-checks cur, sees nothing newer, and
	// re-arms against the next run.
	if ch := b.waiter.Swap(nil); ch != nil {
		close(*ch)
	}
}

// WaitNewer blocks until the buffer holds a snapshot with version greater
// than after, then returns it. Passing after == 0 returns the first
// available snapshot. It returns ctx.Err() if the context is cancelled
// first.
func (b *Buffer[T]) WaitNewer(ctx context.Context, after Version) (Snapshot[T], error) {
	for {
		if s := b.cur.Load(); s != nil && s.Version > after {
			b.markConsumed(s.Version)
			return *s, nil
		}
		// Arm (or join) the wakeup channel, then re-check: a publish that
		// raced ahead of the arm is caught by the re-check, and one that
		// lands after it must observe the armed channel in its swap.
		ch := b.waiter.Load()
		if ch == nil {
			armed := make(chan struct{})
			if !b.waiter.CompareAndSwap(nil, &armed) {
				continue
			}
			ch = &armed
		}
		if s := b.cur.Load(); s != nil && s.Version > after {
			b.markConsumed(s.Version)
			return *s, nil
		}
		select {
		case <-*ch:
		case <-ctx.Done():
			return Snapshot[T]{}, ctx.Err()
		}
	}
}
