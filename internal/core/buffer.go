// Package core implements the Anytime Automaton computation model of
// San Miguel & Enright Jerger (ISCA 2016, §III): an approximate application
// is decomposed into computation stages connected by single-writer output
// buffers and executed as a parallel pipeline. Each stage publishes
// intermediate outputs of increasing accuracy; the automaton guarantees the
// precise output is eventually published, and it can be paused or stopped at
// any moment while the output buffers still hold valid approximations.
//
// The package enforces the paper's three structural properties:
//
//   - Property 1 (purity): stage step functions see only their input
//     snapshots and their own working output.
//   - Property 2 (single writer): each stage owns exactly one Buffer.
//   - Property 3 (atomic publish): buffers expose immutable versioned
//     snapshots; a reader never observes a torn write.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// Version numbers the successive snapshots published to a Buffer, starting
// at 1. Versions are strictly increasing per buffer.
type Version uint64

// Snapshot is one immutable published output of a stage. Final marks the
// precise output: the last version the stage will ever publish.
type Snapshot[T any] struct {
	Value   T
	Version Version
	Final   bool
}

// ErrFinalized is returned when a stage attempts to publish past its final
// (precise) output.
var ErrFinalized = errors.New("core: buffer already holds its final output")

// Buffer is the versioned single-writer multi-reader output buffer of an
// anytime computation stage. The owning stage publishes successive
// approximations with Publish; any number of readers take consistent
// snapshots with Latest or block for fresher ones with WaitNewer.
//
// If the stage keeps mutating a working value between publishes, it must
// construct the Buffer with a clone function so each published snapshot is
// an independent copy (Property 3). Stages that publish freshly built
// values each time may pass nil.
type Buffer[T any] struct {
	name  string
	clone func(T) T

	mu        sync.Mutex
	snap      Snapshot[T]
	has       bool
	changed   chan struct{}
	observers []func(Snapshot[T])
}

// NewBuffer returns an empty buffer. name labels the buffer in errors and
// diagnostics. clone, if non-nil, deep-copies values at publish time.
func NewBuffer[T any](name string, clone func(T) T) *Buffer[T] {
	return &Buffer[T]{
		name:    name,
		clone:   clone,
		changed: make(chan struct{}),
	}
}

// Name reports the buffer's label.
func (b *Buffer[T]) Name() string { return b.name }

// OnPublish registers an observer invoked after every publish with the new
// snapshot. Any number of observers may be registered (a Tracer and a
// telemetry sink routinely share a buffer); each is invoked from the
// publishing stage's goroutine, in registration order, and must not block
// for long (it delays the pipeline, exactly as a profiler attached to a
// real automaton would). Observers must be registered before the automaton
// starts.
func (b *Buffer[T]) OnPublish(fn func(Snapshot[T])) {
	if fn == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.observers = append(b.observers, fn)
}

// Publish atomically installs v as the next snapshot. final marks v as the
// precise output; no further publishes are allowed after it. Publish
// returns the installed snapshot.
//
// Only the owning stage may call Publish (Property 2); calls are therefore
// sequential.
func (b *Buffer[T]) Publish(v T, final bool) (Snapshot[T], error) {
	if b.clone != nil {
		v = b.clone(v)
	}
	b.mu.Lock()
	if b.has && b.snap.Final {
		b.mu.Unlock()
		return Snapshot[T]{}, fmt.Errorf("%w (buffer %q)", ErrFinalized, b.name)
	}
	b.snap = Snapshot[T]{Value: v, Version: b.snap.Version + 1, Final: final}
	b.has = true
	snap := b.snap
	observers := b.observers
	close(b.changed)
	b.changed = make(chan struct{})
	b.mu.Unlock()
	for _, observer := range observers {
		observer(snap)
	}
	return snap, nil
}

// Latest returns the most recent snapshot, if any has been published.
func (b *Buffer[T]) Latest() (Snapshot[T], bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.snap, b.has
}

// Final reports whether the buffer holds its precise output.
func (b *Buffer[T]) Final() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.has && b.snap.Final
}

// WaitNewer blocks until the buffer holds a snapshot with version greater
// than after, then returns it. Passing after == 0 returns the first
// available snapshot. It returns ctx.Err() if the context is cancelled
// first.
func (b *Buffer[T]) WaitNewer(ctx context.Context, after Version) (Snapshot[T], error) {
	for {
		b.mu.Lock()
		if b.has && b.snap.Version > after {
			snap := b.snap
			b.mu.Unlock()
			return snap, nil
		}
		changed := b.changed
		b.mu.Unlock()
		select {
		case <-changed:
		case <-ctx.Done():
			return Snapshot[T]{}, ctx.Err()
		}
	}
}
