package core

import (
	"fmt"
	"time"
)

// Contract-mode execution (paper §II-B). Anytime algorithms split into
// interruptible algorithms — the automaton's native mode, stoppable at any
// moment — and contract algorithms, which are given a time budget up front
// and make scheduling decisions to meet it ("design-to-time" scheduling).
// RunContract layers the contract discipline over an iterative stage: given
// per-pass cost estimates and a deadline, it runs the most accurate pass
// expected to fit, then keeps upgrading while budget remains.

// ContractPass is one accuracy level available to a contract stage, in
// increasing accuracy order; the last pass must be the precise computation.
type ContractPass[T any] struct {
	// Name labels the accuracy level.
	Name string
	// EstCost is the estimated execution time of this pass.
	EstCost time.Duration
	// Run executes the pass (a pure function of its captured inputs,
	// Property 1).
	Run func() (T, error)
}

// RunContract executes an iterative stage under a time contract: it
// repeatedly picks the most accurate not-yet-run pass whose estimated cost
// fits the remaining budget, runs it, and publishes the result. At least
// the first (coarsest) pass always runs, even over budget, so a contract
// stage still delivers an output. The published snapshot is marked final
// only if the precise (last) pass ran.
//
// It returns the index of the best pass that ran. Estimates being
// estimates, the wall clock can overrun the deadline by at most the
// estimation error of the final chosen pass — the inherent weakness of
// contract algorithms the paper contrasts with interruptibility.
func RunContract[T any](c *Context, out *Buffer[T], passes []ContractPass[T], deadline time.Duration) (int, error) {
	if len(passes) == 0 {
		return -1, fmt.Errorf("core: contract stage %q has no passes", c.Name())
	}
	if deadline <= 0 {
		return -1, fmt.Errorf("core: contract stage %q has nonpositive deadline %v", c.Name(), deadline)
	}
	for i, p := range passes {
		if p.Run == nil {
			return -1, fmt.Errorf("core: contract pass %d (%q) has nil Run", i, p.Name)
		}
		if p.EstCost < 0 {
			return -1, fmt.Errorf("core: contract pass %d (%q) has negative estimate", i, p.Name)
		}
	}
	start := time.Now()
	ran := -1
	for {
		if err := c.Checkpoint(); err != nil {
			return ran, err
		}
		remaining := deadline - time.Since(start)
		// Most accurate unran pass that fits; the coarsest pass is always
		// admissible if nothing has run yet.
		pick := -1
		for i := len(passes) - 1; i > ran; i-- {
			if passes[i].EstCost <= remaining || (ran < 0 && i == 0) {
				pick = i
				break
			}
		}
		if pick < 0 {
			return ran, nil
		}
		v, err := passes[pick].Run()
		if err != nil {
			return ran, err
		}
		ran = pick
		if _, err := out.Publish(v, ran == len(passes)-1); err != nil {
			return ran, err
		}
		if ran == len(passes)-1 {
			return ran, nil
		}
	}
}
