package core

import (
	"context"
	"testing"
	"time"
)

func TestSubscribeDeliversAllWhenKeptUp(t *testing.T) {
	b := NewBuffer[int]("b", nil)
	ctx := context.Background()
	sub := b.Subscribe(ctx)
	go func() {
		for i := 1; i <= 5; i++ {
			if _, err := b.Publish(i, i == 5); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(2 * time.Millisecond) // let the subscriber keep up
		}
	}()
	var got []int
	for snap := range sub {
		got = append(got, snap.Value)
	}
	if len(got) == 0 || got[len(got)-1] != 5 {
		t.Fatalf("received %v; final version missing", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Errorf("out-of-order delivery: %v", got)
		}
	}
}

// TestSubscribeSkipsStaleForSlowConsumer: a consumer that never reads until
// the producer finishes receives (at most) one stale displaced value and
// then the final snapshot — never the full backlog.
func TestSubscribeSkipsStaleForSlowConsumer(t *testing.T) {
	b := NewBuffer[int]("b", nil)
	sub := b.Subscribe(context.Background())
	for i := 1; i <= 100; i++ {
		if _, err := b.Publish(i, i == 100); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(10 * time.Millisecond) // let the pump drain
	var got []int
	for snap := range sub {
		got = append(got, snap.Value)
	}
	if len(got) > 3 {
		t.Errorf("slow consumer received %d snapshots (%v); stale versions not skipped", len(got), got)
	}
	if got[len(got)-1] != 100 {
		t.Errorf("final snapshot missing: %v", got)
	}
}

func TestSubscribeClosesOnFinal(t *testing.T) {
	b := NewBuffer[int]("b", nil)
	sub := b.Subscribe(context.Background())
	if _, err := b.Publish(7, true); err != nil {
		t.Fatal(err)
	}
	snap, ok := <-sub
	if !ok || !snap.Final || snap.Value != 7 {
		t.Fatalf("snap=%+v ok=%v", snap, ok)
	}
	if _, ok := <-sub; ok {
		t.Error("channel not closed after final")
	}
}

func TestSubscribeHonorsContext(t *testing.T) {
	b := NewBuffer[int]("b", nil)
	ctx, cancel := context.WithCancel(context.Background())
	sub := b.Subscribe(ctx)
	cancel()
	select {
	case _, ok := <-sub:
		if ok {
			t.Error("received after cancel")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("subscription did not close on cancel")
	}
}

func TestSubscribeMultipleConsumers(t *testing.T) {
	b := NewBuffer[int]("b", nil)
	ctx := context.Background()
	subs := []<-chan Snapshot[int]{b.Subscribe(ctx), b.Subscribe(ctx), b.Subscribe(ctx)}
	if _, err := b.Publish(1, false); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Publish(2, true); err != nil {
		t.Fatal(err)
	}
	for i, sub := range subs {
		var last Snapshot[int]
		for snap := range sub {
			last = snap
		}
		if !last.Final || last.Value != 2 {
			t.Errorf("subscriber %d ended on %+v", i, last)
		}
	}
}
