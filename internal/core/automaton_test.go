package core

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestAutomatonLifecycle(t *testing.T) {
	a := New()
	out := NewBuffer[int]("out", nil)
	if err := a.AddStage("s", func(c *Context) error {
		_, err := out.Publish(1, true)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatalf("Wait = %v", err)
	}
	if !out.Final() {
		t.Error("output not final after clean completion")
	}
}

func TestAutomatonRejectsEmptyAndDoubleStart(t *testing.T) {
	a := New()
	if err := a.Start(context.Background()); err == nil {
		t.Error("empty automaton started")
	}
	if err := a.AddStage("s", func(c *Context) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err == nil {
		t.Error("double start accepted")
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestAutomatonRejectsNilStageAndLateAdd(t *testing.T) {
	a := New()
	if err := a.AddStage("nil", nil); err == nil {
		t.Error("nil stage accepted")
	}
	if err := a.AddStage("s", func(c *Context) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.AddStage("late", func(c *Context) error { return nil }); err == nil {
		t.Error("late AddStage accepted")
	}
	a.Stop()
}

func TestAutomatonStopInterrupts(t *testing.T) {
	a := New()
	started := make(chan struct{})
	if err := a.AddStage("spin", func(c *Context) error {
		close(started)
		for {
			if err := c.Checkpoint(); err != nil {
				return err
			}
			time.Sleep(time.Millisecond)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	<-started
	a.Stop()
	if err := a.Wait(); !errors.Is(err, ErrStopped) {
		t.Errorf("Wait after Stop = %v, want ErrStopped", err)
	}
}

func TestAutomatonStopBeforeStartIsNoop(t *testing.T) {
	a := New()
	a.Stop() // must not hang or panic
	if err := a.AddStage("s", func(c *Context) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	a.Stop() // stop after finish: no-op
}

func TestAutomatonParentContextCancels(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	a := New()
	if err := a.AddStage("spin", func(c *Context) error {
		for {
			if err := c.Checkpoint(); err != nil {
				return err
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := a.Wait(); !errors.Is(err, ErrStopped) {
		t.Errorf("Wait = %v", err)
	}
}

func TestAutomatonPauseHaltsProgress(t *testing.T) {
	a := New()
	var steps atomic.Int64
	if err := a.AddStage("count", func(c *Context) error {
		for i := 0; i < 1_000_000; i++ {
			if err := c.Checkpoint(); err != nil {
				return err
			}
			steps.Add(1)
			time.Sleep(100 * time.Microsecond)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	a.Pause()
	if !a.Paused() {
		t.Error("Paused() false after Pause")
	}
	time.Sleep(5 * time.Millisecond) // allow in-flight step to finish
	before := steps.Load()
	time.Sleep(30 * time.Millisecond)
	after := steps.Load()
	if after > before+1 {
		t.Errorf("progress while paused: %d -> %d", before, after)
	}
	a.Resume()
	if a.Paused() {
		t.Error("Paused() true after Resume")
	}
	time.Sleep(20 * time.Millisecond)
	if steps.Load() <= after {
		t.Error("no progress after Resume")
	}
	a.Stop()
}

func TestAutomatonStopWhilePaused(t *testing.T) {
	a := New()
	if err := a.AddStage("spin", func(c *Context) error {
		for {
			if err := c.Checkpoint(); err != nil {
				return err
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	a.Pause()
	done := make(chan struct{})
	go func() {
		a.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop hung on a paused automaton")
	}
}

func TestAutomatonStageErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	a := New()
	if err := a.AddStage("fail", func(c *Context) error { return boom }); err != nil {
		t.Fatal(err)
	}
	if err := a.AddStage("spin", func(c *Context) error {
		for {
			if err := c.Checkpoint(); err != nil {
				return err
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	err := a.Wait()
	if !errors.Is(err, boom) {
		t.Errorf("Wait = %v, want wrapped boom", err)
	}
	if errors.Is(err, ErrStopped) {
		t.Error("real failure reported as ErrStopped")
	}
}

func TestAutomatonFailureOutranksStop(t *testing.T) {
	boom := errors.New("boom")
	a := New()
	if err := a.AddStage("stopper", func(c *Context) error {
		<-c.Context().Done()
		return ErrStopped
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddStage("fail", func(c *Context) error {
		time.Sleep(5 * time.Millisecond)
		return boom
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); !errors.Is(err, boom) {
		t.Errorf("Wait = %v, want boom", err)
	}
}

func TestAutomatonStageErrorUnblocksPausedSiblings(t *testing.T) {
	boom := errors.New("boom")
	a := New()
	if err := a.AddStage("pausee", func(c *Context) error {
		for {
			if err := c.Checkpoint(); err != nil {
				return err
			}
			time.Sleep(time.Millisecond)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddStage("fail", func(c *Context) error {
		time.Sleep(10 * time.Millisecond)
		return boom
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	a.Pause()
	waitDone := make(chan error, 1)
	go func() { waitDone <- a.Wait() }()
	select {
	case err := <-waitDone:
		if !errors.Is(err, boom) {
			t.Errorf("Wait = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("failure did not release paused sibling")
	}
}

func TestContextNameAndContext(t *testing.T) {
	a := New()
	got := make(chan string, 1)
	if err := a.AddStage("mystage", func(c *Context) error {
		got <- c.Name()
		if c.Context() == nil {
			t.Error("nil context")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	if name := <-got; name != "mystage" {
		t.Errorf("Name = %q", name)
	}
}

func TestDoneChannelCloses(t *testing.T) {
	a := New()
	if err := a.AddStage("s", func(c *Context) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	select {
	case <-a.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("Done never closed")
	}
}

// TestInterruptibilityOutputSurvivesStop is the paper's headline behaviour:
// stopping mid-flight leaves the latest approximate output readable.
func TestInterruptibilityOutputSurvivesStop(t *testing.T) {
	a := New()
	out := NewBuffer[int]("out", nil)
	published := make(chan struct{})
	var once atomic.Bool
	if err := a.AddStage("s", func(c *Context) error {
		for i := 1; ; i++ {
			if err := c.Checkpoint(); err != nil {
				return err
			}
			if _, err := out.Publish(i, false); err != nil {
				return err
			}
			if once.CompareAndSwap(false, true) {
				close(published)
			}
			time.Sleep(time.Millisecond)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	<-published
	a.Stop()
	snap, ok := out.Latest()
	if !ok || snap.Value < 1 {
		t.Errorf("no valid approximate output after Stop: %+v ok=%v", snap, ok)
	}
	if snap.Final {
		t.Error("interrupted output wrongly marked final")
	}
}

// TestStagePanicBecomesFailure: a panicking stage is reported as a stage
// error and brings the pipeline down; siblings exit and their buffers keep
// their latest snapshots.
func TestStagePanicBecomesFailure(t *testing.T) {
	a := New()
	out := NewBuffer[int]("out", nil)
	if err := a.AddStage("panicker", func(c *Context) error {
		time.Sleep(5 * time.Millisecond)
		panic("kaboom")
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddStage("worker", func(c *Context) error {
		for i := 1; ; i++ {
			if err := c.Checkpoint(); err != nil {
				return err
			}
			if _, err := out.Publish(i, false); err != nil {
				return err
			}
			time.Sleep(time.Millisecond)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	err := a.Wait()
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("Wait = %v, want wrapped panic", err)
	}
	if errors.Is(err, ErrStopped) {
		t.Error("panic reported as a mere stop")
	}
	if _, ok := out.Latest(); !ok {
		t.Error("sibling's snapshots lost after panic")
	}
}

func TestAutomatonErrAccessor(t *testing.T) {
	a := New()
	if err := a.AddStage("s", func(c *Context) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := a.Err(); err != nil {
		t.Errorf("Err after clean finish = %v", err)
	}
}
