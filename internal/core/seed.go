package core

import (
	"errors"
	"fmt"
)

// Warm starts. A content-addressed snapshot cache (internal/snapcache) can
// hold the published output of a previous run — a valid approximation at a
// known version. Seeding installs that approximation as a reused automaton's
// starting published state, so a deadline-bounded rerun spends its whole
// budget on refinement instead of recomputing the trajectory from version 1.
//
// The seed path deliberately mirrors the Reset/OnReset machinery: apps
// register an OnSeed hook next to their OnReset hook, and the serving tier
// calls SeedFrom between Reset and Start. Seeding never touches a running
// automaton and never fires buffer observers — a seed is starting state, not
// a stage publish, so the single-writer property (Property 2) and the
// conformance probes' publish accounting are unaffected.

// ErrNoSeedSupport is returned by SeedFrom when the automaton has no OnSeed
// hook: the app was built without warm-start support, and the caller should
// fall back to a cold run.
var ErrNoSeedSupport = errors.New("core: automaton has no seed hook")

// OnSeed registers fn to run during SeedFrom, in registration order. An app
// registers a hook that validates the seed payload (type and geometry),
// copies it into its working state, prepares its snapshotter for seeded
// rendering, and seeds its output buffer at the given version. A hook that
// cannot apply the seed returns an error; SeedFrom stops at the first
// failure so the caller can fall back to a cold run. nil is ignored.
func (a *Automaton) OnSeed(fn func(seed any, version Version) error) {
	if fn == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.onSeed = append(a.onSeed, fn)
}

// SeedFrom installs a cached approximation as the automaton's starting
// published state by running every OnSeed hook with the seed payload and the
// version it was published at. It may only be called while the automaton is
// idle — after construction or Reset, before Start — exactly the window the
// warm pool's checkout path provides. The next run's first publish then
// continues at version+1 (see Buffer.Seed), keeping the per-run version
// sequence strictly monotone from the seed.
//
// SeedFrom returns ErrNoSeedSupport when no hook is registered, and the
// first hook failure otherwise. On failure the automaton may hold a
// partially applied seed; callers must Reset (or discard) the entry rather
// than start it. version must be positive.
func (a *Automaton) SeedFrom(seed any, version Version) error {
	if version == 0 {
		return fmt.Errorf("core: seed version must be positive")
	}
	a.mu.Lock()
	if a.state != stateIdle {
		a.mu.Unlock()
		return errors.New("core: cannot seed a started automaton (Reset first)")
	}
	hooks := append([]func(any, Version) error{}, a.onSeed...)
	a.mu.Unlock()
	if len(hooks) == 0 {
		return ErrNoSeedSupport
	}
	for _, fn := range hooks {
		if err := fn(seed, version); err != nil {
			return err
		}
	}
	return nil
}

// Seed installs v as the buffer's current snapshot at the given version
// without treating it as a stage publish: registered observers do not fire,
// and the snapshot is never final (a cached approximation is a starting
// point, not a terminal output — even a cached precise value is refined
// again by the seeded run). The owning stage's next Publish continues at
// version+1.
//
// Seed is part of the warm-start discipline: like Reset it must only be
// called during quiescence — on an unpublished (fresh or Reset) buffer,
// before the automaton starts. Seeding a buffer that has already published
// is an error; so is a zero version. A reader blocked in WaitNewer across
// the quiescent window is woken and sees the seed as it would any snapshot.
func (b *Buffer[T]) Seed(v T, version Version) error {
	if version == 0 {
		return fmt.Errorf("core: seed version must be positive (buffer %q)", b.name)
	}
	if b.cur.Load() != nil {
		return fmt.Errorf("core: cannot seed buffer %q after it has published", b.name)
	}
	if b.clone != nil {
		v = b.clone(v)
	}
	cell := b.nextCell()
	*cell = Snapshot[T]{Value: v, Version: version}
	b.cur.Store(cell)
	if ch := b.waiter.Swap(nil); ch != nil {
		close(*ch)
	}
	return nil
}
