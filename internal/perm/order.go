package perm

import (
	"fmt"
	"math/bits"
)

// Order is a materialized bijective visit order of the index set [0, n):
// position i of the order names the i-th element to be sampled. Because the
// order is a bijection, a diffusive stage that consumes it processes every
// element exactly once and is therefore guaranteed to reach the precise
// output (paper §III-B2, requirement that p be bijective).
//
// Orders are immutable after construction and safe for concurrent readers.
type Order struct {
	idx []int32
}

// Len reports the number of indices in the order.
func (o Order) Len() int { return len(o.idx) }

// At returns the index visited at position i of the order.
func (o Order) At(i int) int { return int(o.idx[i]) }

// Indices returns a copy of the full visit order.
func (o Order) Indices() []int {
	out := make([]int, len(o.idx))
	for i, v := range o.idx {
		out[i] = int(v)
	}
	return out
}

// IsBijective verifies that the order visits every index of [0, Len())
// exactly once. It is O(n) and intended for tests and validation.
func (o Order) IsBijective() bool {
	seen := make([]bool, len(o.idx))
	for _, v := range o.idx {
		if v < 0 || int(v) >= len(o.idx) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// maxOrderLen bounds order sizes so the int32 backing store cannot overflow.
const maxOrderLen = 1 << 30

func checkLen(n int) error {
	if n < 0 {
		return fmt.Errorf("perm: negative order length %d", n)
	}
	if n > maxOrderLen {
		return fmt.Errorf("perm: order length %d exceeds maximum %d", n, maxOrderLen)
	}
	return nil
}

// Sequential returns the identity order p(i) = i. It is the paper's default
// permutation, suited to priority-ordered data sets such as bit planes in
// most-significant-first order.
func Sequential(n int) (Order, error) {
	if err := checkLen(n); err != nil {
		return Order{}, err
	}
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	return Order{idx: idx}, nil
}

// ReverseSequential returns the order p(i) = n-1-i, the descending variant
// of the sequential permutation (the paper's p(i) = n+1-i in 1-based form).
func ReverseSequential(n int) (Order, error) {
	if err := checkLen(n); err != nil {
		return Order{}, err
	}
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(n - 1 - i)
	}
	return Order{idx: idx}, nil
}

// Tree1D returns the one-dimensional bit-reverse ("tree") order of paper
// Figure 4: indices are visited as a perfect binary tree, doubling the
// sampled resolution as each level completes. For n = 16 the order is
// 0, 8, 4, 12, 2, 10, 6, 14, 1, 9, 5, 13, 3, 11, 7, 15.
//
// n need not be a power of two: the order enumerates the bit-reversed
// power-of-two superset and skips indices >= n, preserving bijectivity and
// the progressive-resolution property.
func Tree1D(n int) (Order, error) {
	if err := checkLen(n); err != nil {
		return Order{}, err
	}
	if n == 0 {
		return Order{idx: nil}, nil
	}
	width := uint(bits.Len(uint(n - 1)))
	if n == 1 {
		width = 0
	}
	idx := make([]int32, 0, n)
	total := 1 << width
	for j := 0; j < total; j++ {
		v := reverseBits(uint32(j), width)
		if int(v) < n {
			idx = append(idx, int32(v))
		}
	}
	return Order{idx: idx}, nil
}

// Tree2D returns the two-dimensional tree order of paper Figure 5 for a
// rows x cols grid, yielding linear indices r*cols + c. The grid is sampled
// at progressively doubling two-dimensional resolution: after 4 elements a
// 2x2 grid has been touched, after 16 a 4x4 grid, and so on.
func Tree2D(rows, cols int) (Order, error) {
	return TreeND(rows, cols)
}

// TreeND returns the N-dimensional tree order for a grid with the given
// dimension sizes (slowest-varying dimension first), yielding linear
// row-major indices. Position bits of the sequence counter are dealt to the
// dimensions round-robin from the least-significant bit, and each
// dimension's coordinate takes its dealt bits most-significant-first —
// exactly the deinterleave-then-bit-reverse construction of paper §III-B2.
func TreeND(dims ...int) (Order, error) {
	if len(dims) == 0 {
		return Order{}, fmt.Errorf("perm: TreeND requires at least one dimension")
	}
	n := 1
	for _, d := range dims {
		if d < 0 {
			return Order{}, fmt.Errorf("perm: negative dimension %d", d)
		}
		if d > 0 && n > maxOrderLen/d {
			return Order{}, fmt.Errorf("perm: grid %v exceeds maximum order length", dims)
		}
		n *= d
	}
	if err := checkLen(n); err != nil {
		return Order{}, err
	}
	if n == 0 {
		return Order{idx: nil}, nil
	}

	widths := make([]uint, len(dims))
	var totalBits uint
	for k, d := range dims {
		if d > 1 {
			widths[k] = uint(bits.Len(uint(d - 1)))
		}
		totalBits += widths[k]
	}

	// deal[j] is the dimension that receives the j-th sequence-counter bit
	// (counting from the LSB). Bits are dealt round-robin across dimensions
	// that still have capacity; the last dimension (fastest varying) gets
	// the first bit, matching the paper's 8x8 example where b0 becomes the
	// column MSB.
	deal := make([]int, 0, totalBits)
	remaining := make([]uint, len(dims))
	copy(remaining, widths)
	for uint(len(deal)) < totalBits {
		for k := len(dims) - 1; k >= 0; k-- {
			if remaining[k] > 0 {
				deal = append(deal, k)
				remaining[k]--
			}
		}
	}

	coord := make([]uint32, len(dims))
	taken := make([]uint, len(dims))
	idx := make([]int32, 0, n)
	total := uint64(1) << totalBits
	for j := uint64(0); j < total; j++ {
		for k := range coord {
			coord[k] = 0
			taken[k] = 0
		}
		// Deal bit j_b to its dimension; the first dealt bit of a dimension
		// becomes that coordinate's most significant bit.
		for b, k := range deal {
			bit := uint32(j>>uint(b)) & 1
			coord[k] |= bit << (widths[k] - 1 - taken[k])
			taken[k]++
		}
		linear := 0
		ok := true
		for k, d := range dims {
			if int(coord[k]) >= d {
				ok = false
				break
			}
			linear = linear*d + int(coord[k])
		}
		if ok {
			idx = append(idx, int32(linear))
		}
	}
	return Order{idx: idx}, nil
}

// PseudoRandom returns a pseudo-random order generated by a maximal-length
// LFSR (paper §III-B2). The order is deterministic for a given (n, seed)
// pair, bijective, and free of memory-order bias, making it the recommended
// permutation for unordered data sets such as histogram or k-means inputs.
func PseudoRandom(n int, seed uint64) (Order, error) {
	if err := checkLen(n); err != nil {
		return Order{}, err
	}
	if n == 0 {
		return Order{idx: nil}, nil
	}
	if n == 1 {
		return Order{idx: []int32{0}}, nil
	}
	l, err := NewLFSR(bitsFor(n), seed)
	if err != nil {
		return Order{}, err
	}
	idx := make([]int32, 0, n)
	for period, step := l.Period(), uint64(0); step < period; step++ {
		v := int(l.Next()) - 1
		if v < n {
			idx = append(idx, int32(v))
			if len(idx) == n {
				break
			}
		}
	}
	return Order{idx: idx}, nil
}

// reverseBits reverses the low `width` bits of v.
func reverseBits(v uint32, width uint) uint32 {
	return bits.Reverse32(v) >> (32 - width)
}
