package perm

import "fmt"

// Data reordering (paper §IV-C3). Non-sequential sampling permutations cost
// cache and row-buffer locality; the paper points out that because the
// permutations are static and deterministic, "input and output data sets
// can be reordered in-memory" (via near-data processing) so that sampling
// proceeds through memory sequentially. These helpers perform that
// reordering in software; the applications expose it as an opt-in
// (see the histeq ablation).

// Reorder returns a copy of data permuted into visit order:
// out[i] = data[o.At(i)], so reading out sequentially visits data in the
// order's sequence. len(data) must equal o.Len().
func (o Order) Reorder(data []int32) ([]int32, error) {
	if len(data) != o.Len() {
		return nil, fmt.Errorf("perm: reorder length %d != order length %d", len(data), o.Len())
	}
	out := make([]int32, len(data))
	for i := range out {
		out[i] = data[o.At(i)]
	}
	return out, nil
}

// Scatter is the inverse of Reorder: it returns a copy of data scattered
// back to original positions, out[o.At(i)] = data[i]. Applying Reorder then
// Scatter (or vice versa) yields the original slice.
func (o Order) Scatter(data []int32) ([]int32, error) {
	if len(data) != o.Len() {
		return nil, fmt.Errorf("perm: scatter length %d != order length %d", len(data), o.Len())
	}
	out := make([]int32, len(data))
	for i := range data {
		out[o.At(i)] = data[i]
	}
	return out, nil
}
