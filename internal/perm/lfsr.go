// Package perm provides the sampling permutations of the Anytime Automaton
// model (San Miguel & Enright Jerger, ISCA 2016, §III-B2): sequential orders
// for priority-ordered data, N-dimensional bit-reverse "tree" orders for
// ordered data without priority, and LFSR-based pseudo-random orders for
// unordered data. All orders are bijections on [0, n): every index is
// visited exactly once, which is what guarantees that a diffusive anytime
// stage eventually reaches the precise output.
//
// The package also implements the multi-threaded sampling scheme of §IV-C1:
// a deterministic order can be divided cyclically among workers so that the
// sampled resolution grows uniformly no matter how many workers consume it.
package perm

import "fmt"

// galoisTaps maps an LFSR width in bits to the feedback mask of a maximal-
// length Galois LFSR (mask bit k set means polynomial term x^(k+1)). With a
// maximal mask, the register cycles through every nonzero state exactly once
// per period (period 2^width - 1). The masks are derived from the standard
// table of primitive polynomials used for hardware LFSRs; widths 2..20 are
// verified exhaustively by the package tests.
var galoisTaps = [33]uint32{
	2:  0x3,        // x^2 + x + 1
	3:  0x6,        // x^3 + x^2 + 1
	4:  0xC,        // x^4 + x^3 + 1
	5:  0x14,       // x^5 + x^3 + 1
	6:  0x30,       // x^6 + x^5 + 1
	7:  0x60,       // x^7 + x^6 + 1
	8:  0xB8,       // x^8 + x^6 + x^5 + x^4 + 1
	9:  0x110,      // x^9 + x^5 + 1
	10: 0x240,      // x^10 + x^7 + 1
	11: 0x500,      // x^11 + x^9 + 1
	12: 0x829,      // x^12 + x^6 + x^4 + x^1 + 1
	13: 0x100D,     // x^13 + x^4 + x^3 + x^1 + 1
	14: 0x2015,     // x^14 + x^5 + x^3 + x^1 + 1
	15: 0x6000,     // x^15 + x^14 + 1
	16: 0xD008,     // x^16 + x^15 + x^13 + x^4 + 1
	17: 0x12000,    // x^17 + x^14 + 1
	18: 0x20400,    // x^18 + x^11 + 1
	19: 0x40023,    // x^19 + x^6 + x^2 + x^1 + 1
	20: 0x90000,    // x^20 + x^17 + 1
	21: 0x140000,   // x^21 + x^19 + 1
	22: 0x300000,   // x^22 + x^21 + 1
	23: 0x420000,   // x^23 + x^18 + 1
	24: 0xE10000,   // x^24 + x^23 + x^22 + x^17 + 1
	25: 0x1200000,  // x^25 + x^22 + 1
	26: 0x2000023,  // x^26 + x^6 + x^2 + x^1 + 1
	27: 0x4000013,  // x^27 + x^5 + x^2 + x^1 + 1
	28: 0x9000000,  // x^28 + x^25 + 1
	29: 0x14000000, // x^29 + x^27 + 1
	30: 0x20000029, // x^30 + x^6 + x^4 + x^1 + 1
	31: 0x48000000, // x^31 + x^28 + 1
	32: 0x80200003, // x^32 + x^22 + x^2 + x^1 + 1
}

// MaxLFSRBits is the widest LFSR this package can construct.
const MaxLFSRBits = 32

// LFSR is a maximal-length Galois linear-feedback shift register. It is the
// deterministic pseudo-random number generator the paper recommends for
// pseudo-random sampling permutations ("we use a linear-feedback shift
// register, which is very simple to implement in hardware", §III-B2).
//
// An LFSR of width b cycles through all 2^b - 1 nonzero b-bit values exactly
// once before repeating. The zero state is absorbing and therefore invalid.
type LFSR struct {
	state uint32
	taps  uint32
	bits  uint
}

// NewLFSR returns an LFSR of the given width seeded with the given state.
// Width must be in [2, MaxLFSRBits]. The seed is reduced into the register's
// nonzero state space, so any seed value is acceptable.
func NewLFSR(bits uint, seed uint64) (*LFSR, error) {
	if bits < 2 || bits > MaxLFSRBits {
		return nil, fmt.Errorf("perm: LFSR width %d out of range [2,%d]", bits, MaxLFSRBits)
	}
	mask := uint32(1)<<bits - 1
	if bits == 32 {
		mask = ^uint32(0)
	}
	state := uint32(seed^(seed>>32)) & mask
	if state == 0 {
		state = 1
	}
	return &LFSR{state: state, taps: galoisTaps[bits], bits: bits}, nil
}

// Bits reports the register width.
func (l *LFSR) Bits() uint { return l.bits }

// State reports the current register contents (always nonzero).
func (l *LFSR) State() uint32 { return l.state }

// Next advances the register one step and returns the new state. The
// returned value is uniform over [1, 2^bits) across a full period.
func (l *LFSR) Next() uint32 {
	lsb := l.state & 1
	l.state >>= 1
	if lsb != 0 {
		l.state ^= l.taps
	}
	return l.state
}

// Period returns the register's full period, 2^bits - 1.
func (l *LFSR) Period() uint64 { return 1<<l.bits - 1 }

// bitsFor returns the smallest LFSR width whose period covers values
// 1..n, i.e. the smallest b with 2^b - 1 >= n.
func bitsFor(n int) uint {
	b := uint(2)
	for (uint64(1)<<b)-1 < uint64(n) {
		b++
	}
	return b
}
