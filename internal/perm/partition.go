package perm

import "fmt"

// RunLen is the length, in order positions, of the contiguous runs
// Partition deals to workers: 16 positions of an int32-element working
// array is exactly one 64-byte cache line. Runs start at multiples of
// RunLen, so two workers never write into the same line of an output
// indexed by position — the false-sharing pathology that made strided
// (stride = workers) divisions slower with more workers.
const RunLen = 16

// Stripe is one worker's share of an Order under the block-cyclic
// division: the order's positions are cut into contiguous cache-line-
// aligned runs of RunLen, and run r belongs to worker r mod workers. A
// stripe therefore visits positions
//
//	w*RunLen … w*RunLen+RunLen-1, (w+workers)*RunLen … , …
//
// in ascending order. Dealing whole runs keeps each worker's writes on
// private cache lines (unlike the stride-1 cyclic division this package
// used to produce), while cycling the runs keeps the paper's §IV-C1
// property that the workers' combined progress tracks a prefix of the
// order — now at run granularity: with every worker j elements in, the
// union of visited positions covers the order's first
// workers*RunLen*floor(j/RunLen) positions.
type Stripe struct {
	order   Order
	worker  int
	workers int
}

// Len reports how many positions this stripe covers.
func (s Stripe) Len() int {
	if s.workers <= 0 {
		return 0
	}
	n := s.order.Len()
	fullRuns := n / RunLen
	owned := 0
	if s.worker < fullRuns {
		owned = (fullRuns - s.worker + s.workers - 1) / s.workers
	}
	count := owned * RunLen
	if rem := n % RunLen; rem > 0 && fullRuns%s.workers == s.worker {
		count += rem
	}
	return count
}

// At returns the index visited at the stripe's local position i.
func (s Stripe) At(i int) int { return s.order.At(s.Position(i)) }

// Position returns the parent-order position of the stripe's local
// position i. Within a stripe positions are ascending: run i/RunLen of the
// stripe is parent run worker + (i/RunLen)*workers.
func (s Stripe) Position(i int) int {
	return (s.worker+(i/RunLen)*s.workers)*RunLen + i%RunLen
}

// Partition divides the order among the given number of workers in
// contiguous, cache-line-aligned runs of RunLen positions, dealt
// cyclically: worker w receives runs w, w+workers, w+2*workers, …
// Together the stripes cover every position exactly once; when workers
// exceeds the number of runs, the surplus stripes are empty.
func (o Order) Partition(workers int) ([]Stripe, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("perm: worker count %d must be positive", workers)
	}
	stripes := make([]Stripe, workers)
	for w := range stripes {
		stripes[w] = Stripe{order: o, worker: w, workers: workers}
	}
	return stripes, nil
}

// Range returns the positions [lo, hi) of the order as a single-worker
// Stripe (one contiguous run sequence). It is useful for round-based
// diffusive execution where each round consumes a contiguous span of the
// order.
func (o Order) Range(lo, hi int) (Stripe, error) {
	if lo < 0 || hi < lo || hi > o.Len() {
		return Stripe{}, fmt.Errorf("perm: range [%d,%d) out of bounds for order of length %d", lo, hi, o.Len())
	}
	return Stripe{order: Order{idx: o.idx[lo:hi]}, worker: 0, workers: 1}, nil
}
