package perm

import "fmt"

// Stripe is one worker's cyclic share of an Order: positions start,
// start+stride, start+2*stride, ... of the parent order. Striping an order
// cyclically is the paper's recommended division for multi-threaded
// sampling (§IV-C1): with the tree permutation it keeps the sampled
// resolution growing uniformly regardless of worker count, and with the
// pseudo-random permutation it keeps each worker's sample unbiased.
type Stripe struct {
	order  Order
	start  int
	stride int
}

// Len reports how many positions this stripe covers.
func (s Stripe) Len() int {
	if s.stride <= 0 || s.start >= s.order.Len() {
		return 0
	}
	return (s.order.Len() - s.start + s.stride - 1) / s.stride
}

// At returns the index visited at the stripe's local position i.
func (s Stripe) At(i int) int { return s.order.At(s.start + i*s.stride) }

// Position returns the parent-order position of the stripe's local
// position i.
func (s Stripe) Position(i int) int { return s.start + i*s.stride }

// Partition divides the order cyclically among the given number of workers:
// worker w receives positions w, w+workers, w+2*workers, ... Together the
// stripes cover every position exactly once.
func (o Order) Partition(workers int) ([]Stripe, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("perm: worker count %d must be positive", workers)
	}
	stripes := make([]Stripe, workers)
	for w := range stripes {
		stripes[w] = Stripe{order: o, start: w, stride: workers}
	}
	return stripes, nil
}

// Range returns the positions [lo, hi) of the order as a Stripe with
// stride 1. It is useful for round-based diffusive execution where each
// round consumes a contiguous span of the order.
func (o Order) Range(lo, hi int) (Stripe, error) {
	if lo < 0 || hi < lo || hi > o.Len() {
		return Stripe{}, fmt.Errorf("perm: range [%d,%d) out of bounds for order of length %d", lo, hi, o.Len())
	}
	return Stripe{order: Order{idx: o.idx[lo:hi]}, start: 0, stride: 1}, nil
}
