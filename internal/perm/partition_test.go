package perm

import (
	"testing"
	"testing/quick"
)

func TestPartitionCoversOrderExactlyOnce(t *testing.T) {
	o, err := Tree1D(100)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 7, 100, 128} {
		stripes, err := o.Partition(workers)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[int]int)
		total := 0
		for _, s := range stripes {
			for i := 0; i < s.Len(); i++ {
				seen[s.At(i)]++
				total++
			}
		}
		if total != o.Len() {
			t.Errorf("workers=%d: stripes cover %d positions, want %d", workers, total, o.Len())
		}
		for idx, c := range seen {
			if c != 1 {
				t.Errorf("workers=%d: index %d visited %d times", workers, idx, c)
			}
		}
	}
}

func TestPartitionRejectsNonPositive(t *testing.T) {
	o, _ := Sequential(10)
	for _, w := range []int{0, -1} {
		if _, err := o.Partition(w); err == nil {
			t.Errorf("Partition(%d) did not error", w)
		}
	}
}

// TestPartitionCyclicEarlyCoverage verifies the paper's motivation for
// cyclic distribution (§IV-C1): with W workers each having consumed j
// elements, the union equals the first W*j positions of the order, so the
// tree order's low-resolution-first property is preserved.
func TestPartitionCyclicEarlyCoverage(t *testing.T) {
	o, err := Tree2D(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	stripes, err := o.Partition(workers)
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j <= 8; j++ {
		got := make(map[int]bool)
		for _, s := range stripes {
			for i := 0; i < j && i < s.Len(); i++ {
				got[s.At(i)] = true
			}
		}
		for p := 0; p < workers*j && p < o.Len(); p++ {
			if !got[o.At(p)] {
				t.Fatalf("after %d elements/worker, order position %d (index %d) missing", j, p, o.At(p))
			}
		}
	}
}

func TestStripePosition(t *testing.T) {
	o, _ := Sequential(10)
	stripes, _ := o.Partition(3)
	s := stripes[1]
	if s.Position(0) != 1 || s.Position(1) != 4 || s.Position(2) != 7 {
		t.Errorf("stripe positions wrong: %d %d %d", s.Position(0), s.Position(1), s.Position(2))
	}
	if s.Len() != 3 {
		t.Errorf("stripe len = %d, want 3", s.Len())
	}
}

func TestRange(t *testing.T) {
	o, _ := Tree1D(32)
	r, err := o.Range(4, 12)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 8 {
		t.Fatalf("Range len = %d, want 8", r.Len())
	}
	for i := 0; i < r.Len(); i++ {
		if r.At(i) != o.At(4+i) {
			t.Errorf("Range At(%d) = %d, want %d", i, r.At(i), o.At(4+i))
		}
	}
	if _, err := o.Range(-1, 4); err == nil {
		t.Error("negative lo accepted")
	}
	if _, err := o.Range(8, 4); err == nil {
		t.Error("hi<lo accepted")
	}
	if _, err := o.Range(0, 33); err == nil {
		t.Error("hi>len accepted")
	}
}

func TestRangePartitionProperty(t *testing.T) {
	f := func(rawN, rawW uint8) bool {
		n := int(rawN)%500 + 1
		w := int(rawW)%8 + 1
		o, err := PseudoRandom(n, 5)
		if err != nil {
			return false
		}
		stripes, err := o.Partition(w)
		if err != nil {
			return false
		}
		total := 0
		for _, s := range stripes {
			total += s.Len()
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
