package perm

import (
	"testing"
	"testing/quick"
)

func TestPartitionCoversOrderExactlyOnce(t *testing.T) {
	o, err := Tree1D(100)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 7, 100, 128} {
		stripes, err := o.Partition(workers)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[int]int)
		total := 0
		for _, s := range stripes {
			for i := 0; i < s.Len(); i++ {
				seen[s.At(i)]++
				total++
			}
		}
		if total != o.Len() {
			t.Errorf("workers=%d: stripes cover %d positions, want %d", workers, total, o.Len())
		}
		for idx, c := range seen {
			if c != 1 {
				t.Errorf("workers=%d: index %d visited %d times", workers, idx, c)
			}
		}
	}
}

func TestPartitionRejectsNonPositive(t *testing.T) {
	o, _ := Sequential(10)
	for _, w := range []int{0, -1} {
		if _, err := o.Partition(w); err == nil {
			t.Errorf("Partition(%d) did not error", w)
		}
	}
}

// TestPartitionEarlyCoverage verifies the paper's §IV-C1 motivation for
// cyclic distribution survives the move to run dealing: with W workers
// each having consumed j elements, the union covers the first
// W*RunLen*floor(j/RunLen) positions of the order, so the tree order's
// low-resolution-first property is preserved at run granularity.
func TestPartitionEarlyCoverage(t *testing.T) {
	o, err := Tree2D(32, 32)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	stripes, err := o.Partition(workers)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range []int{1, RunLen - 1, RunLen, RunLen + 3, 3 * RunLen, 5 * RunLen} {
		got := make(map[int]bool)
		for _, s := range stripes {
			for i := 0; i < j && i < s.Len(); i++ {
				got[s.At(i)] = true
			}
		}
		covered := workers * RunLen * (j / RunLen)
		for p := 0; p < covered && p < o.Len(); p++ {
			if !got[o.At(p)] {
				t.Fatalf("after %d elements/worker, order position %d (index %d) missing", j, p, o.At(p))
			}
		}
	}
}

// TestStripePosition pins the run-cyclic layout: worker w's run r is
// parent run w + r*workers, contiguous within the run.
func TestStripePosition(t *testing.T) {
	o, _ := Sequential(7 * RunLen)
	stripes, _ := o.Partition(3)
	s := stripes[1]
	if s.Position(0) != RunLen || s.Position(1) != RunLen+1 {
		t.Errorf("run 0 starts at %d, %d; want %d, %d", s.Position(0), s.Position(1), RunLen, RunLen+1)
	}
	if got := s.Position(RunLen); got != 4*RunLen {
		t.Errorf("run 1 starts at parent position %d, want %d", got, 4*RunLen)
	}
	if s.Len() != 2*RunLen {
		t.Errorf("stripe len = %d, want %d", s.Len(), 2*RunLen)
	}
}

// TestPartitionAlignedRuns verifies the cache-alignment contract: every
// stripe visits the order as maximal contiguous runs that start at RunLen
// boundaries and span exactly RunLen positions, except for the order's
// final partial run.
func TestPartitionAlignedRuns(t *testing.T) {
	for _, n := range []int{0, 1, RunLen, RunLen + 5, 6*RunLen - 1, 6 * RunLen, 100, 1000} {
		o, err := Sequential(n)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 3, 4, 8} {
			stripes, err := o.Partition(workers)
			if err != nil {
				t.Fatal(err)
			}
			for w, s := range stripes {
				i := 0
				for i < s.Len() {
					lo := s.Position(i)
					if lo%RunLen != 0 {
						t.Fatalf("n=%d workers=%d worker=%d: run starts at %d, not RunLen-aligned", n, workers, w, lo)
					}
					runLen := 0
					for i < s.Len() && s.Position(i) == lo+runLen {
						runLen++
						i++
					}
					if runLen != RunLen && lo+runLen != n {
						t.Fatalf("n=%d workers=%d worker=%d: interior run [%d,%d) has length %d, want %d", n, workers, w, lo, lo+runLen, runLen, RunLen)
					}
				}
			}
		}
	}
}

func TestRange(t *testing.T) {
	o, _ := Tree1D(32)
	r, err := o.Range(4, 12)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 8 {
		t.Fatalf("Range len = %d, want 8", r.Len())
	}
	for i := 0; i < r.Len(); i++ {
		if r.At(i) != o.At(4+i) {
			t.Errorf("Range At(%d) = %d, want %d", i, r.At(i), o.At(4+i))
		}
	}
	if _, err := o.Range(-1, 4); err == nil {
		t.Error("negative lo accepted")
	}
	if _, err := o.Range(8, 4); err == nil {
		t.Error("hi<lo accepted")
	}
	if _, err := o.Range(0, 33); err == nil {
		t.Error("hi>len accepted")
	}
}

func TestRangePartitionProperty(t *testing.T) {
	f := func(rawN, rawW uint8) bool {
		n := int(rawN)%500 + 1
		w := int(rawW)%8 + 1
		o, err := PseudoRandom(n, 5)
		if err != nil {
			return false
		}
		stripes, err := o.Partition(w)
		if err != nil {
			return false
		}
		total := 0
		for _, s := range stripes {
			total += s.Len()
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
