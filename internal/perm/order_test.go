package perm

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestSequentialOrder(t *testing.T) {
	o, err := Sequential(5)
	if err != nil {
		t.Fatal(err)
	}
	if got := o.Indices(); !reflect.DeepEqual(got, []int{0, 1, 2, 3, 4}) {
		t.Errorf("Sequential(5) = %v", got)
	}
}

func TestReverseSequentialOrder(t *testing.T) {
	o, err := ReverseSequential(4)
	if err != nil {
		t.Fatal(err)
	}
	if got := o.Indices(); !reflect.DeepEqual(got, []int{3, 2, 1, 0}) {
		t.Errorf("ReverseSequential(4) = %v", got)
	}
}

// TestTree1DPaperFigure4 asserts the exact visit order of paper Figure 4:
// a 16-element set sampled by the bit-reverse permutation
// p: b3b2b1b0 -> b0b1b2b3.
func TestTree1DPaperFigure4(t *testing.T) {
	o, err := Tree1D(16)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 8, 4, 12, 2, 10, 6, 14, 1, 9, 5, 13, 3, 11, 7, 15}
	if got := o.Indices(); !reflect.DeepEqual(got, want) {
		t.Errorf("Tree1D(16) = %v, want %v", got, want)
	}
}

// TestTree1DResolutionDoubling checks the defining property of the tree
// order: after 2^k elements, the visited indices form an evenly spaced grid
// of stride n/2^k starting at 0.
func TestTree1DResolutionDoubling(t *testing.T) {
	const n = 256
	o, err := Tree1D(n)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; 1<<k <= n; k++ {
		count := 1 << k
		stride := n / count
		visited := make(map[int]bool, count)
		for i := 0; i < count; i++ {
			visited[o.At(i)] = true
		}
		for v := 0; v < n; v += stride {
			if !visited[v] {
				t.Fatalf("after %d elements index %d (stride %d grid) not visited; got %v", count, v, stride, visited)
			}
		}
	}
}

// TestTree2DPaperFigure5 asserts the paper's 8x8 construction
// p: b5b4b3 b2b1b0 -> row=b1b3b5, col=b0b2b4: the first four visits are the
// four quadrant origins, and after 4^k visits a 2^k x 2^k uniform grid has
// been sampled.
func TestTree2DPaperFigure5(t *testing.T) {
	o, err := Tree2D(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	wantFirst := []int{
		0*8 + 0, // (0,0)
		0*8 + 4, // (0,4)
		4*8 + 0, // (4,0)
		4*8 + 4, // (4,4)
	}
	for i, w := range wantFirst {
		if o.At(i) != w {
			t.Errorf("Tree2D(8,8) position %d = %d (r=%d,c=%d), want %d", i, o.At(i), o.At(i)/8, o.At(i)%8, w)
		}
	}
	for k := 0; k <= 3; k++ {
		count := 1 << (2 * k)
		stride := 8 >> k
		visited := make(map[int]bool, count)
		for i := 0; i < count; i++ {
			visited[o.At(i)] = true
		}
		for r := 0; r < 8; r += stride {
			for c := 0; c < 8; c += stride {
				if !visited[r*8+c] {
					t.Fatalf("after %d elements cell (%d,%d) not visited", count, r, c)
				}
			}
		}
	}
}

func TestTreeNDRejectsNoDims(t *testing.T) {
	if _, err := TreeND(); err == nil {
		t.Error("TreeND() with no dims did not error")
	}
}

func TestTreeNDNegativeDim(t *testing.T) {
	if _, err := TreeND(4, -1); err == nil {
		t.Error("TreeND(4,-1) did not error")
	}
}

func TestOrdersEmptyAndSingleton(t *testing.T) {
	builders := map[string]func(int) (Order, error){
		"Sequential":        Sequential,
		"ReverseSequential": ReverseSequential,
		"Tree1D":            Tree1D,
		"PseudoRandom":      func(n int) (Order, error) { return PseudoRandom(n, 7) },
	}
	for name, build := range builders {
		for _, n := range []int{0, 1} {
			o, err := build(n)
			if err != nil {
				t.Errorf("%s(%d): %v", name, n, err)
				continue
			}
			if o.Len() != n {
				t.Errorf("%s(%d).Len() = %d", name, n, o.Len())
			}
			if !o.IsBijective() {
				t.Errorf("%s(%d) not bijective", name, n)
			}
		}
	}
}

func TestOrdersRejectNegative(t *testing.T) {
	if _, err := Sequential(-1); err == nil {
		t.Error("Sequential(-1) did not error")
	}
	if _, err := Tree1D(-3); err == nil {
		t.Error("Tree1D(-3) did not error")
	}
	if _, err := PseudoRandom(-3, 1); err == nil {
		t.Error("PseudoRandom(-3,1) did not error")
	}
}

// TestOrdersBijectiveProperty is the central property-based test: every
// order constructor must produce a bijection on [0, n) for arbitrary n,
// including non-powers of two.
func TestOrdersBijectiveProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	check := func(name string, build func(n int) (Order, error)) {
		f := func(raw uint16) bool {
			n := int(raw%5000) + 1
			o, err := build(n)
			if err != nil {
				return false
			}
			return o.Len() == n && o.IsBijective()
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	check("Sequential", Sequential)
	check("ReverseSequential", ReverseSequential)
	check("Tree1D", Tree1D)
	check("PseudoRandom", func(n int) (Order, error) { return PseudoRandom(n, uint64(n)*2654435761) })
}

// TestTreeNDBijectiveProperty checks bijectivity of the N-dimensional tree
// order over random small grids of 1 to 3 dimensions.
func TestTreeNDBijectiveProperty(t *testing.T) {
	f := func(a, b, c uint8, ndims uint8) bool {
		dims := []int{int(a%40) + 1, int(b%40) + 1, int(c%40) + 1}
		dims = dims[:int(ndims%3)+1]
		o, err := TreeND(dims...)
		if err != nil {
			return false
		}
		want := 1
		for _, d := range dims {
			want *= d
		}
		return o.Len() == want && o.IsBijective()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestTree2DNonSquare(t *testing.T) {
	o, err := Tree2D(3, 17)
	if err != nil {
		t.Fatal(err)
	}
	if o.Len() != 51 || !o.IsBijective() {
		t.Fatalf("Tree2D(3,17): len=%d bijective=%v", o.Len(), o.IsBijective())
	}
}

func TestPseudoRandomDeterministicAndSeedSensitive(t *testing.T) {
	a, err := PseudoRandom(1000, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := PseudoRandom(1000, 42)
	if !reflect.DeepEqual(a.Indices(), b.Indices()) {
		t.Error("same seed produced different orders")
	}
	c, _ := PseudoRandom(1000, 43)
	if reflect.DeepEqual(a.Indices(), c.Indices()) {
		t.Error("different seeds produced identical orders")
	}
}

// TestPseudoRandomNotSequential guards against a degenerate generator that
// would reintroduce the memory-order bias the permutation exists to avoid.
func TestPseudoRandomNotSequential(t *testing.T) {
	o, err := PseudoRandom(4096, 7)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := 0; i < o.Len(); i++ {
		if o.At(i) == i {
			same++
		}
	}
	if same > o.Len()/10 {
		t.Errorf("pseudo-random order has %d/%d fixed points", same, o.Len())
	}
}

// TestPseudoRandomPrefixSpread checks that an early prefix of the
// pseudo-random order is roughly uniform across the index range, the
// property that makes it suitable for unbiased input sampling (Figure 3).
func TestPseudoRandomPrefixSpread(t *testing.T) {
	const n = 1 << 16
	o, err := PseudoRandom(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	const prefix = n / 16
	const buckets = 8
	var counts [buckets]int
	for i := 0; i < prefix; i++ {
		counts[o.At(i)*buckets/n]++
	}
	want := prefix / buckets
	for b, c := range counts {
		if c < want/2 || c > want*2 {
			t.Errorf("bucket %d has %d of %d prefix samples (expected ~%d)", b, c, prefix, want)
		}
	}
}
