package perm

// Property tests for the paper's bijectivity requirement (§III-B2): every
// permutation constructor must produce a true bijection of [0, n), and
// Partition must cover the order exactly once across any worker count.
// Unlike order_test.go these do not trust Order.IsBijective — they count
// occurrences independently, so a bug shared by a constructor and the
// checker cannot hide.

import (
	"fmt"
	"testing"
)

// constructors enumerates every Order constructor under a common signature.
func constructors() map[string]func(n int) (Order, error) {
	return map[string]func(n int) (Order, error){
		"Sequential":        Sequential,
		"ReverseSequential": ReverseSequential,
		"Tree1D":            Tree1D,
		"TreeND-1":          func(n int) (Order, error) { return TreeND(n) },
		"PseudoRandom-1":    func(n int) (Order, error) { return PseudoRandom(n, 1) },
		"PseudoRandom-99":   func(n int) (Order, error) { return PseudoRandom(n, 99) },
	}
}

// sweepSizes covers the shapes that break off-by-one permutation bugs:
// degenerate, exact powers of two, their neighbours, and odd composites.
var sweepSizes = []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 100, 127, 128, 129, 255, 256, 257, 1000}

// countOccurrences tallies how often each index of [0, n) appears in the
// order, failing on any out-of-range value.
func countOccurrences(t *testing.T, label string, o Order, n int) []int {
	t.Helper()
	if o.Len() != n {
		t.Fatalf("%s: order length %d, want %d", label, o.Len(), n)
	}
	counts := make([]int, n)
	for i := 0; i < n; i++ {
		v := o.At(i)
		if v < 0 || v >= n {
			t.Fatalf("%s: position %d holds %d, outside [0, %d)", label, i, v, n)
		}
		counts[v]++
	}
	return counts
}

func TestEveryConstructorIsBijection(t *testing.T) {
	for name, mk := range constructors() {
		for _, n := range sweepSizes {
			label := fmt.Sprintf("%s(n=%d)", name, n)
			o, err := mk(n)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			for v, c := range countOccurrences(t, label, o, n) {
				if c != 1 {
					t.Fatalf("%s: index %d visited %d times, want exactly once", label, v, c)
				}
			}
			// The independent count and the package's own checker must agree.
			if !o.IsBijective() {
				t.Fatalf("%s: IsBijective() = false on a counted bijection", label)
			}
		}
	}
}

func TestTreeNDGridsAreBijections(t *testing.T) {
	grids := [][]int{
		{2, 2}, {4, 4}, {8, 8}, {3, 5}, {5, 3}, {1, 7}, {7, 1},
		{16, 9}, {9, 16}, {2, 3, 4}, {4, 3, 2}, {3, 3, 3}, {2, 2, 2, 2},
	}
	for _, dims := range grids {
		n := 1
		for _, d := range dims {
			n *= d
		}
		label := fmt.Sprintf("TreeND%v", dims)
		o, err := TreeND(dims...)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		for v, c := range countOccurrences(t, label, o, n) {
			if c != 1 {
				t.Fatalf("%s: linear index %d visited %d times, want exactly once", label, v, c)
			}
		}
	}
}

// TestPartitionExactCoverAcrossWorkers verifies the paper's multi-threaded
// division invariant: for every constructor, size, and worker count —
// including more workers than elements — the union of the stripes visits
// each index exactly once, and each stripe position maps back to a
// distinct parent position.
func TestPartitionExactCoverAcrossWorkers(t *testing.T) {
	workerCounts := []int{1, 2, 3, 4, 5, 7, 8, 16, 33}
	for name, mk := range constructors() {
		for _, n := range []int{0, 1, 5, 16, 31, 64, 100} {
			o, err := mk(n)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range workerCounts {
				label := fmt.Sprintf("%s(n=%d)/workers=%d", name, n, workers)
				stripes, err := o.Partition(workers)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if len(stripes) != workers {
					t.Fatalf("%s: got %d stripes", label, len(stripes))
				}
				idxCounts := make([]int, n)
				posCounts := make([]int, n)
				total := 0
				for w, s := range stripes {
					for i := 0; i < s.Len(); i++ {
						v := s.At(i)
						if v < 0 || v >= n {
							t.Fatalf("%s: worker %d local %d holds %d, outside [0, %d)", label, w, i, v, n)
						}
						idxCounts[v]++
						p := s.Position(i)
						if p < 0 || p >= n {
							t.Fatalf("%s: worker %d local %d maps to parent position %d, outside [0, %d)", label, w, i, p, n)
						}
						posCounts[p]++
						total++
					}
				}
				if total != n {
					t.Fatalf("%s: stripes visit %d positions, want %d", label, total, n)
				}
				for v := range idxCounts {
					if idxCounts[v] != 1 {
						t.Fatalf("%s: index %d covered %d times", label, v, idxCounts[v])
					}
					if posCounts[v] != 1 {
						t.Fatalf("%s: parent position %d covered %d times", label, v, posCounts[v])
					}
				}
			}
		}
	}
}

// TestPartitionWorkersExceedElements pins the degenerate stripes: with
// more workers than runs, the surplus stripes must be empty rather than
// aliasing positions of the busy ones. An order shorter than one run is a
// single partial run, so exactly one worker carries all of it.
func TestPartitionWorkersExceedElements(t *testing.T) {
	o, err := Tree1D(3)
	if err != nil {
		t.Fatal(err)
	}
	stripes, err := o.Partition(8)
	if err != nil {
		t.Fatal(err)
	}
	for w, s := range stripes {
		want := 0
		if w == 0 {
			want = 3
		}
		if s.Len() != want {
			t.Errorf("worker %d: stripe length %d, want %d", w, s.Len(), want)
		}
	}
	// Several whole runs, still fewer than workers: each lands on its own
	// worker in run order.
	o2, err := Tree1D(2*RunLen + 5)
	if err != nil {
		t.Fatal(err)
	}
	stripes, err = o2.Partition(8)
	if err != nil {
		t.Fatal(err)
	}
	wantLens := []int{RunLen, RunLen, 5, 0, 0, 0, 0, 0}
	for w, s := range stripes {
		if s.Len() != wantLens[w] {
			t.Errorf("worker %d: stripe length %d, want %d", w, s.Len(), wantLens[w])
		}
	}
}
