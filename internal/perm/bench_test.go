package perm

import "testing"

func BenchmarkLFSRNext(b *testing.B) {
	l, err := NewLFSR(24, 1)
	if err != nil {
		b.Fatal(err)
	}
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink ^= l.Next()
	}
	_ = sink
}

func BenchmarkTree2DConstruct512(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Tree2D(512, 512); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPseudoRandomConstruct512(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := PseudoRandom(512*512, 7); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOrderAt(b *testing.B) {
	o, err := Tree1D(1 << 16)
	if err != nil {
		b.Fatal(err)
	}
	var sink int
	for i := 0; i < b.N; i++ {
		sink += o.At(i & (1<<16 - 1))
	}
	_ = sink
}

func BenchmarkReorder(b *testing.B) {
	const n = 1 << 18
	o, err := PseudoRandom(n, 3)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]int32, n)
	b.SetBytes(n * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Reorder(data); err != nil {
			b.Fatal(err)
		}
	}
}
