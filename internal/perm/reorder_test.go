package perm

import (
	"testing"
	"testing/quick"
)

func TestReorderKnown(t *testing.T) {
	o, err := ReverseSequential(4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := o.Reorder([]int32{10, 20, 30, 40})
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{40, 30, 20, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Reorder = %v", got)
		}
	}
}

func TestReorderLengthMismatch(t *testing.T) {
	o, _ := Sequential(4)
	if _, err := o.Reorder([]int32{1}); err == nil {
		t.Error("short data accepted by Reorder")
	}
	if _, err := o.Scatter([]int32{1}); err == nil {
		t.Error("short data accepted by Scatter")
	}
}

// TestReorderScatterRoundTrip: Scatter inverts Reorder for any order.
func TestReorderScatterRoundTrip(t *testing.T) {
	f := func(raw []int32, seed uint64) bool {
		n := len(raw)
		if n == 0 {
			return true
		}
		o, err := PseudoRandom(n, seed)
		if err != nil {
			return false
		}
		re, err := o.Reorder(raw)
		if err != nil {
			return false
		}
		back, err := o.Scatter(re)
		if err != nil {
			return false
		}
		for i := range raw {
			if back[i] != raw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestReorderedSequentialReadEquivalence: reading the reordered slice
// sequentially yields exactly the values of visiting the original in
// permuted order — the equivalence the §IV-C3 optimization rests on.
func TestReorderedSequentialReadEquivalence(t *testing.T) {
	const n = 1000
	data := make([]int32, n)
	for i := range data {
		data[i] = int32(i * 7)
	}
	o, err := Tree1D(n)
	if err != nil {
		t.Fatal(err)
	}
	re, err := o.Reorder(data)
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < n; pos++ {
		if re[pos] != data[o.At(pos)] {
			t.Fatalf("position %d: reordered %d != permuted read %d", pos, re[pos], data[o.At(pos)])
		}
	}
}
