package perm

import (
	"testing"
	"testing/quick"
)

func TestNewLFSRWidthBounds(t *testing.T) {
	for _, bits := range []uint{0, 1, 33, 64} {
		if _, err := NewLFSR(bits, 1); err == nil {
			t.Errorf("NewLFSR(%d) accepted out-of-range width", bits)
		}
	}
	for _, bits := range []uint{2, 8, 16, 32} {
		if _, err := NewLFSR(bits, 1); err != nil {
			t.Errorf("NewLFSR(%d) rejected valid width: %v", bits, err)
		}
	}
}

func TestLFSRZeroSeedCoerced(t *testing.T) {
	l, err := NewLFSR(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if l.State() == 0 {
		t.Fatal("zero seed left LFSR in absorbing zero state")
	}
}

// TestLFSRFullPeriod exhaustively verifies that every tap mask up to 20 bits
// yields a maximal-length register: all 2^b - 1 nonzero states visited
// exactly once before returning to the start state.
func TestLFSRFullPeriod(t *testing.T) {
	for bits := uint(2); bits <= 20; bits++ {
		l, err := NewLFSR(bits, 1)
		if err != nil {
			t.Fatal(err)
		}
		start := l.State()
		period := l.Period()
		seen := make([]bool, uint64(1)<<bits)
		var steps uint64
		for {
			v := l.Next()
			if v == 0 {
				t.Fatalf("bits=%d: LFSR reached zero state", bits)
			}
			if seen[v] {
				t.Fatalf("bits=%d: state %d repeated after %d steps (period %d)", bits, v, steps, period)
			}
			seen[v] = true
			steps++
			if v == start {
				break
			}
		}
		if steps != period {
			t.Fatalf("bits=%d: period %d, want %d", bits, steps, period)
		}
	}
}

// TestLFSRWidePeriodNoEarlyRepeat spot-checks the wide registers: the start
// state must not recur within a large number of steps (a short cycle would
// betray a non-maximal tap mask).
func TestLFSRWidePeriodNoEarlyRepeat(t *testing.T) {
	const steps = 1 << 21
	for bits := uint(22); bits <= 32; bits++ {
		l, err := NewLFSR(bits, 12345)
		if err != nil {
			t.Fatal(err)
		}
		start := l.State()
		for i := 0; i < steps; i++ {
			if l.Next() == start {
				t.Fatalf("bits=%d: start state recurred after %d steps", bits, i+1)
			}
		}
	}
}

func TestLFSRDeterministic(t *testing.T) {
	a, _ := NewLFSR(16, 99)
	b, _ := NewLFSR(16, 99)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("same-seed LFSRs diverged at step %d", i)
		}
	}
}

func TestLFSRSeedReduction(t *testing.T) {
	// Seeds differing only above the register width must still produce a
	// valid (nonzero) state.
	if err := quick.Check(func(seed uint64) bool {
		l, err := NewLFSR(12, seed)
		return err == nil && l.State() != 0 && l.State() < 1<<12
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestBitsFor(t *testing.T) {
	cases := []struct {
		n    int
		want uint
	}{
		{1, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {255, 8}, {256, 9}, {1 << 20, 21},
	}
	for _, c := range cases {
		if got := bitsFor(c.n); got != c.want {
			t.Errorf("bitsFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}
