package perm

import (
	"sync"
	"testing"
)

// The partition benchmarks demonstrate the cache behavior that motivated
// moving Partition from cyclic stripes to contiguous runs: four workers
// writing their share of a shared output array. Under the cyclic division
// adjacent positions belong to different workers, so every cache line of
// the output is shared by all of them and each store invalidates the
// others' copies; contiguous runs give each worker a private span of lines.
// BENCH_kernels.json records the measured gap.

const partitionBenchN = 1 << 16

type benchShare struct{ start, end, stride int }

func benchPartitionWrite(b *testing.B, shares []benchShare) {
	b.Helper()
	o, err := Sequential(partitionBenchN)
	if err != nil {
		b.Fatal(err)
	}
	out := make([]int32, partitionBenchN)
	b.SetBytes(partitionBenchN * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		wg.Add(len(shares))
		for _, sh := range shares {
			go func(sh benchShare) {
				defer wg.Done()
				for p := sh.start; p < sh.end; p += sh.stride {
					out[o.At(p)]++
				}
			}(sh)
		}
		wg.Wait()
	}
}

// BenchmarkPartitionWriteStrided is the pre-rewrite cyclic division: worker
// w visits positions w, w+4, w+8, … so neighboring writes ping-pong cache
// lines between cores.
func BenchmarkPartitionWriteStrided(b *testing.B) {
	benchPartitionWrite(b, []benchShare{
		{0, partitionBenchN, 4},
		{1, partitionBenchN, 4},
		{2, partitionBenchN, 4},
		{3, partitionBenchN, 4},
	})
}

// BenchmarkPartitionWriteContiguous hands each worker one contiguous
// quarter, the division Partition now produces.
func BenchmarkPartitionWriteContiguous(b *testing.B) {
	q := partitionBenchN / 4
	benchPartitionWrite(b, []benchShare{
		{0 * q, 1 * q, 1},
		{1 * q, 2 * q, 1},
		{2 * q, 3 * q, 1},
		{3 * q, 4 * q, 1},
	})
}

// BenchmarkPartitionStripes runs the same write workload through whatever
// division Partition currently produces, one goroutine per stripe.
func BenchmarkPartitionStripes(b *testing.B) {
	o, err := Sequential(partitionBenchN)
	if err != nil {
		b.Fatal(err)
	}
	stripes, err := o.Partition(4)
	if err != nil {
		b.Fatal(err)
	}
	out := make([]int32, partitionBenchN)
	b.SetBytes(partitionBenchN * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		wg.Add(len(stripes))
		for _, s := range stripes {
			go func(s Stripe) {
				defer wg.Done()
				n := s.Len()
				for j := 0; j < n; j++ {
					out[s.At(j)]++
				}
			}(s)
		}
		wg.Wait()
	}
}
