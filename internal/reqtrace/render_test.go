package reqtrace

import (
	"context"
	"strings"
	"testing"
	"time"
)

// fullTrace builds a sealed trace exercising every span the serving path
// records.
func fullTrace(t *testing.T) *Trace {
	t.Helper()
	_, tr := New(context.Background(), "blur")
	tr.QueueEnter(3)
	tr.QueueGrant(2 * time.Millisecond)
	tr.Shed(0.75, 75*time.Millisecond)
	tr.PoolGet("blur", true)
	tr.RunStart(75 * time.Millisecond)
	tr.Publish("out", 1, 65536, false)
	tr.Publish("out", 2, 65536, false)
	tr.DeadlineFired(75 * time.Millisecond)
	tr.Deliver(2, false, true, 21.5, 76*time.Millisecond)
	tr.PoolPut("blur", true)
	tr.Finish(200)
	return tr
}

func TestWriteListRendersSummaryRows(t *testing.T) {
	tr := fullTrace(t)
	rejected := func() *Trace {
		_, r := New(context.Background(), "cluster")
		r.QueueReject(32)
		r.Finish(503)
		return r
	}()
	var b strings.Builder
	if err := WriteList(&b, []*Trace{tr, rejected}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"ID", "CATEGORY", "DELIVERED", // header
		tr.ID(), "deadline-miss", "blur", "v2 21.5dB",
		rejected.ID(), "rejected", "cluster", "503",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteListEmpty(t *testing.T) {
	var b strings.Builder
	if err := WriteList(&b, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no traces") {
		t.Fatalf("empty list output %q", b.String())
	}
}

// TestWriteDetailRendersSpansAndTimeline: the per-trace view shows every
// span with its offset plus the publish timeline in internal/trace's ASCII
// layout ('·' per version, '#' for the final).
func TestWriteDetailRendersSpansAndTimeline(t *testing.T) {
	tr := fullTrace(t)
	var b strings.Builder
	if err := tr.WriteDetail(&b, 40); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"trace " + tr.ID(),
		"route=blur", "category=deadline-miss", "status=200",
		"queue.enter depth=3",
		"queue.grant wait=2ms",
		"shed factor=0.750",
		"pool.get pool=blur warm=true",
		"run.start deadline=75ms",
		"publish buffer=out v1 bytes=65536",
		"deadline fired after=75ms",
		"deliver v2 final=false", "snr=21.5dB", "interrupted",
		"pool.put pool=blur retained=true",
		"publish ", // the timeline block
		"·",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("detail output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDetailNilTrace(t *testing.T) {
	var tr *Trace
	var b strings.Builder
	if err := tr.WriteDetail(&b, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no trace") {
		t.Fatalf("nil detail output %q", b.String())
	}
}
