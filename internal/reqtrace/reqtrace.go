// Package reqtrace is request-scoped tracing for the serving path: one
// Trace per request, recording the request's whole life — admission queue
// enter/grant/reject, shed decision, pool checkout/check-in, automaton run
// start/finish/reset, every buffer publish, deadline firing, and delivery —
// as spans with monotonic timestamps. Where internal/telemetry aggregates
// (how are requests doing?), reqtrace answers the per-request question: why
// did *this* request queue for 12ms, which pool entry did it get, which
// versions published before its deadline fired, and what snapshot was it
// finally handed.
//
// The package follows core.Hooks' nil-guard discipline throughout: every
// method is safe on a nil receiver and the disabled fast path — a nil
// *Trace, an unbound Slot, a context without a trace — costs a pointer
// check (or one atomic load) and zero allocations, so instrumentation
// points stay in place permanently, exactly like the hooks they ride on.
//
// Traces propagate by context (NewContext/FromContext), so the serving
// layers (internal/serve) pick them up without new dependencies on the
// caller. When the Go execution tracer is running, each Trace additionally
// opens a runtime/trace task, letting `go tool trace` show requests against
// the scheduler; serve's queue-wait and run phases become regions inside
// it.
//
// Completed traces are retained by a Recorder — an always-on bounded flight
// recorder with category sampling: errors, rejections, deadline misses,
// shed requests, and the slowest-N are always kept; sampled-out successes
// are only counted. cmd/anytimed exposes the recorder at /debug/requests.
package reqtrace

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	rtrace "runtime/trace"
	"sync"
	"sync/atomic"
	"time"
)

// Kind identifies the instrumentation point an Event was recorded at.
type Kind uint8

const (
	// KindQueueEnter: the request started waiting for an execution slot.
	// N is the queue depth including it.
	KindQueueEnter Kind = iota + 1
	// KindQueueGrant: the request obtained a slot. Dur is the time spent
	// waiting (zero on the uncontended fast path).
	KindQueueGrant
	// KindQueueReject: admission control turned the request away. N is the
	// wait-queue capacity it found full.
	KindQueueReject
	// KindShed: the load controller scaled the request's contract. Val is
	// the factor applied, Dur the effective deadline it produced.
	KindShed
	// KindPoolGet: an automaton was checked out. Name is the pool, Flag
	// reports a warm (reused) entry.
	KindPoolGet
	// KindPoolPut: the automaton was checked back in. Name is the pool,
	// Flag reports whether the entry was retained for reuse.
	KindPoolPut
	// KindRunStart: the automaton started. Dur is the (effective) deadline
	// it runs under, zero for run-to-precise.
	KindRunStart
	// KindRunFinish: the automaton finished or was stopped. Note is the
	// outcome (precise | stopped | failed), Dur the run's wall time.
	KindRunFinish
	// KindReset: the automaton's per-run state was rewound for the next
	// checkout (the warm-pool discipline).
	KindReset
	// KindPublish: a buffer published a snapshot. Name is the buffer,
	// Version its version, N the snapshot's payload bytes, Flag whether it
	// is the final (precise) output.
	KindPublish
	// KindDeadline: the request's deadline fired while the automaton was
	// still running. Dur is the deadline that fired.
	KindDeadline
	// KindDeliver: a snapshot was delivered. Version/Flag describe the
	// snapshot (Flag = final), Val its SNR in dB when the caller measured
	// one (0 otherwise), Dur the elapsed run time, Note "interrupted" when
	// the run was cut short.
	KindDeliver
	// KindError: the request failed. Note is the error text.
	KindError
	// KindRoute: the router picked a backend off the consistent-hash ring.
	// Name is the member, Note the ring key (app|digest), N the attempt
	// rank on the ring (0 = primary owner).
	KindRoute
	// KindBudget: the router computed the request's remaining deadline
	// budget. Dur is the budget granted downstream, Flag reports that the
	// budget floored at zero (the request is delivered best-effort).
	KindBudget
	// KindForward: a proxied request left for a backend. Name is the
	// member, Note the role (primary | hedge).
	KindForward
	// KindForwardDone: a proxied request returned. Name is the member,
	// Note the role, Dur the observed RTT, Flag whether the response was
	// usable (2xx with a snapshot).
	KindForwardDone
	// KindHedgeFire: the hedge delay elapsed with the primary still
	// outstanding; a secondary request was issued. Dur is the delay that
	// fired.
	KindHedgeFire
	// KindHedgeCancel: the race was decided and the losing in-flight
	// request was cancelled. Name is the cancelled member, Note its role.
	KindHedgeCancel
	// KindCacheHit: the snapshot cache held an entry for the request's
	// content key. Name is the input digest, Version the cached version,
	// Note "delta" when the hit came from a delta-start sibling entry.
	KindCacheHit
	// KindCacheMiss: no usable cache entry. Name is the input digest.
	KindCacheMiss
	// KindCacheSeed: the automaton was seeded from the cached entry. Name
	// is the output buffer, Version the seed version the run continues
	// from.
	KindCacheSeed
)

var kindNames = [...]string{
	KindQueueEnter:  "queue.enter",
	KindQueueGrant:  "queue.grant",
	KindQueueReject: "queue.reject",
	KindShed:        "shed",
	KindPoolGet:     "pool.get",
	KindPoolPut:     "pool.put",
	KindRunStart:    "run.start",
	KindRunFinish:   "run.finish",
	KindReset:       "reset",
	KindPublish:     "publish",
	KindDeadline:    "deadline",
	KindDeliver:     "deliver",
	KindError:       "error",
	KindRoute:       "route.pick",
	KindBudget:      "budget",
	KindForward:     "forward",
	KindForwardDone: "forward.done",
	KindHedgeFire:   "hedge.fire",
	KindHedgeCancel: "hedge.cancel",
	KindCacheHit:    "cache.hit",
	KindCacheMiss:   "cache.miss",
	KindCacheSeed:   "cache.seed",
}

// String returns the kind's stable wire name (also used in JSON).
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalText renders the kind by name, so JSON traces read without a
// decoder ring.
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// Event is one span point in a request's life. At is the monotonic offset
// from the trace's start; the remaining fields are kind-specific (see the
// Kind constants for which mean what).
type Event struct {
	Kind    Kind          `json:"kind"`
	At      time.Duration `json:"at_ns"`
	Name    string        `json:"name,omitempty"`    // pool, buffer
	Version uint64        `json:"version,omitempty"` // snapshot version
	N       int           `json:"n,omitempty"`       // queue depth, payload bytes
	Dur     time.Duration `json:"dur_ns,omitempty"`  // wait, deadline, run time
	Val     float64       `json:"val,omitempty"`     // shed factor, SNR dB
	Flag    bool          `json:"flag,omitempty"`    // warm, retained, final
	Note    string        `json:"note,omitempty"`    // outcome, error text
}

// Category classifies a completed trace for the flight recorder's retention
// policy and the exemplar counters.
type Category uint8

const (
	// CategoryOK: delivered within contract, nothing noteworthy.
	CategoryOK Category = iota
	// CategorySlow: an OK trace retained for being among the slowest seen.
	CategorySlow
	// CategoryShed: the load controller scaled the request's contract.
	CategoryShed
	// CategoryDeadlineMiss: the deadline fired before the precise output —
	// an approximate snapshot was delivered.
	CategoryDeadlineMiss
	// CategoryRejected: admission control turned the request away.
	CategoryRejected
	// CategoryError: the request failed (stage error, no output, 5xx).
	CategoryError
)

var categoryNames = [...]string{
	CategoryOK:           "ok",
	CategorySlow:         "slow",
	CategoryShed:         "shed",
	CategoryDeadlineMiss: "deadline-miss",
	CategoryRejected:     "rejected",
	CategoryError:        "error",
}

// String returns the category's stable name (also the metrics label value,
// with '-' as-is).
func (c Category) String() string {
	if int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return fmt.Sprintf("category(%d)", uint8(c))
}

// MarshalText renders the category by name.
func (c Category) MarshalText() ([]byte, error) { return []byte(c.String()), nil }

// Trace is one request's recorded life. A nil *Trace is the disabled
// tracer: every method is a no-op costing one pointer check, so
// instrumentation sites never branch on configuration themselves.
//
// Events may be appended from several goroutines at once (the request
// goroutine and the publishing stage goroutines reporting through a Slot);
// appends are serialized by a mutex that is uncontended in the common case.
// After Finish the trace is sealed and immutable: late events are dropped,
// and readers handed the trace by a Recorder can render it without
// synchronizing with the (long gone) request.
type Trace struct {
	id    string
	route string
	start time.Time // wall + monotonic; At offsets use the monotonic part

	task *rtrace.Task // execution-tracer bridge; nil unless it was running

	mu     sync.Mutex
	events []Event
	done   bool

	// classification flags, folded in as events arrive
	rejected bool
	shed     bool
	deadline bool
	errored  bool

	// sealed at Finish
	elapsed time.Duration
	status  int
}

// idPrefix and idCounter generate traceparent-style request IDs (32 hex
// chars) without a per-request random read: 8 random bytes fixed at process
// start, then a process-wide counter.
var (
	idPrefix  [8]byte
	idCounter atomic.Uint64
	idOnce    sync.Once
)

func newID() string {
	idOnce.Do(func() {
		if _, err := rand.Read(idPrefix[:]); err != nil {
			// Degrade to time-seeded: IDs stay unique per process.
			now := uint64(time.Now().UnixNano())
			for i := range idPrefix {
				idPrefix[i] = byte(now >> (8 * i))
			}
		}
	})
	var b [16]byte
	copy(b[:8], idPrefix[:])
	n := idCounter.Add(1)
	for i := 0; i < 8; i++ {
		b[8+i] = byte(n >> (56 - 8*i))
	}
	return hex.EncodeToString(b[:])
}

// New returns a fresh trace for one request on the given route, bound into
// the returned context for the serving layers to find. When the Go
// execution tracer is running, the trace opens a runtime/trace task named
// "anytime.request" (ended at Finish) so `go tool trace`'s user-task view
// groups the request's regions and goroutines.
func New(ctx context.Context, route string) (context.Context, *Trace) {
	t := &Trace{
		id:     newID(),
		route:  route,
		start:  time.Now(),
		events: make([]Event, 0, 16),
	}
	if rtrace.IsEnabled() {
		ctx, t.task = rtrace.NewTask(ctx, "anytime.request")
		rtrace.Log(ctx, "anytime.trace", t.id)
	}
	return NewContext(ctx, t), t
}

// ctxKey is the private context key for the bound trace.
type ctxKey struct{}

// NewContext returns ctx carrying t.
func NewContext(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the trace bound to ctx, or nil — and a nil *Trace
// swallows every call, so callers need not branch.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// ID returns the trace's request ID (32 hex chars, traceparent-style).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Route returns the route label the trace was created for.
func (t *Trace) Route() string {
	if t == nil {
		return ""
	}
	return t.route
}

// Start returns the trace's wall-clock start time.
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// Add appends one event, stamping it with the monotonic offset from the
// trace's start. Nil traces and sealed traces drop the event.
func (t *Trace) Add(e Event) {
	if t == nil {
		return
	}
	e.At = time.Since(t.start)
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return
	}
	switch e.Kind {
	case KindQueueReject:
		t.rejected = true
	case KindShed:
		t.shed = true
	case KindDeadline:
		t.deadline = true
	case KindError:
		t.errored = true
	}
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Instrumentation-point helpers: one per serving-path site, all nil-safe
// through Add.

// QueueEnter records the request starting to wait at the given depth.
func (t *Trace) QueueEnter(depth int) { t.Add(Event{Kind: KindQueueEnter, N: depth}) }

// QueueGrant records the request obtaining a slot after wait.
func (t *Trace) QueueGrant(wait time.Duration) { t.Add(Event{Kind: KindQueueGrant, Dur: wait}) }

// QueueReject records admission control turning the request away with the
// wait queue at capacity.
func (t *Trace) QueueReject(capacity int) { t.Add(Event{Kind: KindQueueReject, N: capacity}) }

// Shed records the load controller applying factor, yielding the effective
// deadline.
func (t *Trace) Shed(factor float64, effective time.Duration) {
	t.Add(Event{Kind: KindShed, Val: factor, Dur: effective})
}

// PoolGet records an automaton checkout from pool (warm = reused idle
// entry).
func (t *Trace) PoolGet(pool string, warm bool) {
	t.Add(Event{Kind: KindPoolGet, Name: pool, Flag: warm})
}

// PoolPut records the automaton's check-in (retained = kept for reuse).
func (t *Trace) PoolPut(pool string, retained bool) {
	t.Add(Event{Kind: KindPoolPut, Name: pool, Flag: retained})
}

// RunStart records the automaton starting under deadline (zero =
// run-to-precise).
func (t *Trace) RunStart(deadline time.Duration) { t.Add(Event{Kind: KindRunStart, Dur: deadline}) }

// RunFinish records the automaton finishing with the given outcome label
// after elapsed.
func (t *Trace) RunFinish(outcome string, elapsed time.Duration) {
	t.Add(Event{Kind: KindRunFinish, Note: outcome, Dur: elapsed})
}

// Reset records the automaton's per-run state being rewound.
func (t *Trace) Reset() { t.Add(Event{Kind: KindReset}) }

// Publish records one buffer publish: version, payload bytes, finality.
func (t *Trace) Publish(buffer string, version uint64, bytes int, final bool) {
	t.Add(Event{Kind: KindPublish, Name: buffer, Version: version, N: bytes, Flag: final})
}

// DeadlineFired records the request's deadline firing mid-run.
func (t *Trace) DeadlineFired(deadline time.Duration) {
	t.Add(Event{Kind: KindDeadline, Dur: deadline})
}

// Deliver records the delivered snapshot: its version, finality,
// interruption, measured SNR in dB (0 when unmeasured), and run time.
func (t *Trace) Deliver(version uint64, final, interrupted bool, snrDB float64, elapsed time.Duration) {
	e := Event{Kind: KindDeliver, Version: version, Flag: final, Val: snrDB, Dur: elapsed}
	if interrupted {
		e.Note = "interrupted"
	}
	t.Add(e)
}

// Error records a request failure.
func (t *Trace) Error(note string) { t.Add(Event{Kind: KindError, Note: note}) }

// Router-tier helpers: the cross-node spans cmd/anytimerouter records so a
// single request's timeline spans the fleet (see internal/cluster).

// RoutePick records the ring pick: member will serve key as the rank-th
// choice (0 = primary owner).
func (t *Trace) RoutePick(member, key string, rank int) {
	t.Add(Event{Kind: KindRoute, Name: member, Note: key, N: rank})
}

// Budget records the remaining deadline budget granted downstream; floored
// reports the budget hit zero (best-effort delivery).
func (t *Trace) Budget(budget time.Duration, floored bool) {
	t.Add(Event{Kind: KindBudget, Dur: budget, Flag: floored})
}

// Forward records a proxied request leaving for member in the given role
// (primary | hedge).
func (t *Trace) Forward(member, role string) {
	t.Add(Event{Kind: KindForward, Name: member, Note: role})
}

// ForwardDone records a proxied request returning after rtt; usable
// reports whether the response carried a deliverable snapshot.
func (t *Trace) ForwardDone(member, role string, rtt time.Duration, usable bool) {
	t.Add(Event{Kind: KindForwardDone, Name: member, Note: role, Dur: rtt, Flag: usable})
}

// HedgeFire records the hedge delay elapsing with the primary outstanding.
func (t *Trace) HedgeFire(delay time.Duration) {
	t.Add(Event{Kind: KindHedgeFire, Dur: delay})
}

// HedgeCancel records the losing in-flight request being cancelled.
func (t *Trace) HedgeCancel(member, role string) {
	t.Add(Event{Kind: KindHedgeCancel, Name: member, Note: role})
}

// Snapshot-cache helpers: the warm-start spans internal/serve and
// cmd/anytimed record around internal/snapcache lookups.

// CacheHit records the cache holding an entry for the request's content
// digest at the given version; delta marks a delta-start hit (the entry
// belongs to a sibling frame, to be reused through a tile diff).
func (t *Trace) CacheHit(digest string, version uint64, delta bool) {
	e := Event{Kind: KindCacheHit, Name: digest, Version: version}
	if delta {
		e.Note = "delta"
	}
	t.Add(e)
}

// CacheMiss records the cache holding no usable entry for digest.
func (t *Trace) CacheMiss(digest string) { t.Add(Event{Kind: KindCacheMiss, Name: digest}) }

// CacheSeed records the automaton being seeded: its output buffer starts
// at version, and the run's publishes continue from there.
func (t *Trace) CacheSeed(buffer string, version uint64) {
	t.Add(Event{Kind: KindCacheSeed, Name: buffer, Version: version})
}

// Finish seals the trace with the response status, fixing its elapsed time
// and category; further Adds are dropped. It also ends the runtime/trace
// task when one was opened. Finish is idempotent.
func (t *Trace) Finish(status int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.done {
		t.done = true
		t.elapsed = time.Since(t.start)
		t.status = status
		// A 5xx seals the trace as errored — unless admission control
		// rejected it, which is the runtime working as designed (and has its
		// own always-retained category), not a failure.
		if status >= 500 && !t.rejected {
			t.errored = true
		}
	}
	task := t.task
	t.task = nil
	t.mu.Unlock()
	if task != nil {
		task.End()
	}
}

// Done reports whether the trace has been sealed by Finish.
func (t *Trace) Done() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.done
}

// Elapsed returns the sealed trace's total wall time (request arrival to
// Finish), or the running elapsed time if not yet sealed.
func (t *Trace) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return t.elapsed
	}
	return time.Since(t.start)
}

// Status returns the HTTP-ish status Finish sealed the trace with (0 until
// sealed).
func (t *Trace) Status() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.status
}

// Category classifies the trace. Priority: error > rejected >
// deadline-miss > shed > ok. (Slow is assigned by the Recorder, which
// knows the distribution.)
func (t *Trace) Category() Category {
	if t == nil {
		return CategoryOK
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.categoryLocked()
}

func (t *Trace) categoryLocked() Category {
	switch {
	case t.errored:
		return CategoryError
	case t.rejected:
		return CategoryRejected
	case t.deadline:
		return CategoryDeadlineMiss
	case t.shed:
		return CategoryShed
	default:
		return CategoryOK
	}
}

// Events returns a copy of the recorded events in arrival order.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Len returns the number of recorded events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}
