package reqtrace

import (
	"errors"
	"sync/atomic"
	"time"

	"anytime/internal/core"
)

// Slot is the binding point between long-lived instrumentation and
// short-lived requests. A pooled automaton's observers — buffer publish
// callbacks, lifecycle hooks, OnReset — are attached once, at construction,
// and survive Reset (observers are permanent); the Slot gives them a place
// to look up which request currently owns the automaton. The serving layer
// Binds the active request's trace at checkout and Unbinds it after
// check-in; between requests (and whenever tracing is disabled, where the
// Slot itself is nil) every report hits the unbound fast path: one atomic
// load, no allocation.
//
// Bind/Unbind follow the pool's ownership discipline — exactly one request
// owns a checked-out entry — so they never race each other; reports race
// only with the load, which is the point of the atomic.
type Slot struct {
	cur atomic.Pointer[Trace]
}

// Bind attaches t as the slot's active trace. Nil slots ignore the call.
func (s *Slot) Bind(t *Trace) {
	if s == nil {
		return
	}
	s.cur.Store(t)
}

// Unbind detaches the active trace. Nil slots ignore the call.
func (s *Slot) Unbind() {
	if s == nil {
		return
	}
	s.cur.Store(nil)
}

// Trace returns the currently bound trace, nil when unbound (or the slot
// itself is nil) — and a nil *Trace swallows every recording call.
func (s *Slot) Trace() *Trace {
	if s == nil {
		return nil
	}
	return s.cur.Load()
}

// Publish reports one buffer publish into the bound trace, if any. This is
// the publish hot path's instrumentation site: unbound, it is one atomic
// load and a branch, with zero allocations.
func (s *Slot) Publish(buffer string, version uint64, bytes int, final bool) {
	if s == nil {
		return
	}
	if t := s.cur.Load(); t != nil {
		t.Publish(buffer, version, bytes, final)
	}
}

// OnReset reports the automaton's per-run rewind into the bound trace.
// Register it with core.Automaton.OnReset at construction.
func (s *Slot) OnReset() {
	if s == nil {
		return
	}
	if t := s.cur.Load(); t != nil {
		t.Reset()
	}
}

// CoreHooks returns a core.Hooks mirroring the automaton's lifecycle into
// whichever trace is bound when each callback fires: AutomatonStart →
// run.start, AutomatonFinish → run.finish with the outcome label core.Wait
// would report. Chain it with other hooks (telemetry, chaos) via
// core.ChainHooks; like them, it must be attached before Start. Callers
// that drive the automaton through internal/serve do not need it — serve
// records the same spans from the request goroutine. A nil Slot yields nil
// hooks, so the call composes with ChainHooks when tracing is off.
func (s *Slot) CoreHooks() *core.Hooks {
	if s == nil {
		return nil
	}
	return &core.Hooks{
		AutomatonStart: func(stages int) {
			if t := s.Trace(); t != nil {
				t.RunStart(0)
			}
		},
		AutomatonFinish: func(outcome error, elapsed time.Duration) {
			if t := s.Trace(); t != nil {
				t.RunFinish(outcomeLabel(outcome), elapsed)
			}
		},
	}
}

// outcomeLabel folds a run's terminal error into the stable outcome
// vocabulary shared with telemetry: precise, stopped, failed.
func outcomeLabel(err error) string {
	switch {
	case err == nil:
		return "precise"
	case errors.Is(err, core.ErrStopped):
		return "stopped"
	default:
		return "failed"
	}
}
