package reqtrace

import (
	"context"
	"testing"
	"time"
)

// The disabled tracer's contract, mirroring core's hooks_overhead_test: a
// request served with tracing off (nil trace, unbound slot, bare context)
// must pay nothing measurable at any instrumentation site — no allocations,
// and per-site cost on the order of a pointer check. BenchmarkDisabled*
// record the per-site nanoseconds (captured in BENCH_reqtrace.json);
// TestDisabledTracerZeroAlloc pins the allocation count at exactly zero.

func TestDisabledTracerZeroAlloc(t *testing.T) {
	ctx := context.Background()
	sites := []struct {
		name string
		fn   func()
	}{
		{"context miss + helpers", func() {
			tr := FromContext(ctx)
			tr.QueueEnter(1)
			tr.QueueGrant(0)
			tr.Shed(0.5, time.Millisecond)
			tr.PoolGet("p", true)
			tr.RunStart(time.Millisecond)
			tr.Publish("buf", 1, 64, false)
			tr.DeadlineFired(time.Millisecond)
			tr.Deliver(1, true, false, 0, time.Millisecond)
			tr.Finish(200)
		}},
		{"nil slot publish", func() {
			var s *Slot
			s.Publish("buf", 1, 64, false)
			s.OnReset()
			s.Bind(nil)
			s.Unbind()
		}},
		{"unbound slot publish", func() {
			s := unboundSlot
			s.Publish("buf", 1, 64, false)
			s.OnReset()
		}},
	}
	for _, site := range sites {
		if allocs := testing.AllocsPerRun(1000, site.fn); allocs != 0 {
			t.Errorf("%s: %.1f allocs/run, want 0", site.name, allocs)
		}
	}
}

// unboundSlot is shared so AllocsPerRun measures Publish, not Slot
// construction.
var unboundSlot = &Slot{}

// BenchmarkDisabledTracePublish is the publish hot path with tracing off:
// the nil-trace method call every Buffer.Publish pays when no request trace
// exists. This is the number the flight recorder must keep at "a few ns, 0
// allocs" for the tracer to stay always-on.
func BenchmarkDisabledTracePublish(b *testing.B) {
	var tr *Trace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Publish("buf", uint64(i), 64, false)
	}
}

// BenchmarkDisabledSlotPublish is the pooled-observer variant: one atomic
// load finds no bound trace.
func BenchmarkDisabledSlotPublish(b *testing.B) {
	s := &Slot{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Publish("buf", uint64(i), 64, false)
	}
}

// BenchmarkDisabledFromContext is the serve-layer entry cost with no trace
// bound: one context value miss.
func BenchmarkDisabledFromContext(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := FromContext(ctx)
		tr.QueueGrant(0)
	}
}

// BenchmarkEnabledSlotPublish is the contrast figure: the bound-slot publish
// path a traced request actually pays (mutex + event append, amortized over
// the preallocated event slice).
func BenchmarkEnabledSlotPublish(b *testing.B) {
	s := &Slot{}
	_, tr := New(context.Background(), "bench")
	s.Bind(tr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Publish("buf", uint64(i), 64, false)
		if i%1024 == 1023 {
			// Keep the event slice bounded so the benchmark measures the
			// append path, not unbounded growth.
			b.StopTimer()
			tr.mu.Lock()
			tr.events = tr.events[:0]
			tr.mu.Unlock()
			b.StartTimer()
		}
	}
}
