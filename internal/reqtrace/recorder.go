package reqtrace

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Hooks is the recorder's observer interface, nil-guarded like core.Hooks:
// internal/telemetry binds it to the process metrics registry so the
// recorder's retention decisions are visible as exemplar counters at
// /metrics.
type Hooks struct {
	// Recorded runs when a trace is retained, with its category label
	// (error, rejected, deadline-miss, shed, slow, sampled).
	Recorded func(category string)
	// SampledOut runs when an OK trace is dropped by sampling — the trace
	// is counted, not kept.
	SampledOut func()
	// Evicted runs when retaining a trace overwrote the ring's oldest.
	Evicted func()
}

// Recorder is the always-on flight recorder: a bounded ring of completed,
// sealed traces with category sampling. Errors, rejections, deadline
// misses, shed requests, and the slowest-N are always retained; other
// successes are retained one in SampleEvery and merely counted otherwise.
// The ring overwrites oldest-first, so the recorder's memory is bounded by
// Size regardless of traffic, and the view at /debug/requests is
// newest-biased — exactly what a crash-cart inspection wants.
//
// Record is called once per request after Finish seals the trace, and the
// readers (Snapshot, Find) copy pointers out under the same mutex, so the
// lock is held for pointer shuffling only: recorded traces are immutable
// and rendered without the lock.
type Recorder struct {
	size    int
	sample  uint64
	slowN   int
	h       *Hooks
	created time.Time

	okSeen atomic.Uint64 // OK traces seen, for 1-in-SampleEvery sampling

	mu      sync.Mutex
	ring    []*Trace // ring[0..len) valid; next is the overwrite cursor
	next    int
	slow    []time.Duration // ascending; the N slowest retained OK elapsed times
	kept    uint64
	sampled uint64
	evicted uint64
}

// RecorderConfig sizes a Recorder. Zero values take the defaults.
type RecorderConfig struct {
	// Size bounds the ring (default 256).
	Size int
	// SampleEvery retains one in this many unremarkable OK traces
	// (default 16; 1 keeps every trace).
	SampleEvery int
	// SlowN is how many of the slowest OK traces bypass sampling
	// (default 8; negative disables the slow category).
	SlowN int
	// Hooks receives the recorder's retention callbacks; may be nil.
	Hooks *Hooks
}

// NewRecorder returns an empty flight recorder.
func NewRecorder(cfg RecorderConfig) (*Recorder, error) {
	if cfg.Size == 0 {
		cfg.Size = 256
	}
	if cfg.Size < 1 {
		return nil, fmt.Errorf("reqtrace: recorder size %d must be positive", cfg.Size)
	}
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = 16
	}
	if cfg.SampleEvery < 1 {
		return nil, fmt.Errorf("reqtrace: sample-every %d must be positive", cfg.SampleEvery)
	}
	if cfg.SlowN == 0 {
		cfg.SlowN = 8
	}
	if cfg.SlowN < 0 {
		cfg.SlowN = 0
	}
	return &Recorder{
		size:    cfg.Size,
		sample:  uint64(cfg.SampleEvery),
		slowN:   cfg.SlowN,
		h:       cfg.Hooks,
		created: time.Now(),
		ring:    make([]*Trace, 0, cfg.Size),
	}, nil
}

// Size reports the ring's capacity.
func (r *Recorder) Size() int { return r.size }

// SampleEvery reports the OK-trace sampling period.
func (r *Recorder) SampleEvery() int { return int(r.sample) }

// Record offers a sealed trace to the recorder; traces still in flight are
// rejected outright (retaining a mutable trace would let /debug/requests
// readers race the request's writers — the snapshot-immutability discipline
// applies to trace records too). It returns the category the trace was
// filed under and whether it was retained.
func (r *Recorder) Record(t *Trace) (Category, bool) {
	if r == nil || t == nil || !t.Done() {
		return CategoryOK, false
	}
	cat := t.Category()
	label := cat.String()
	if cat == CategoryOK {
		switch {
		case r.admitSlow(t.Elapsed()):
			cat, label = CategorySlow, CategorySlow.String()
		case r.okSeen.Add(1)%r.sample == 0:
			label = "sampled"
		default:
			r.mu.Lock()
			r.sampled++
			r.mu.Unlock()
			if r.h != nil && r.h.SampledOut != nil {
				r.h.SampledOut()
			}
			return CategoryOK, false
		}
	}
	evicted := r.retain(t)
	if r.h != nil && r.h.Recorded != nil {
		r.h.Recorded(label)
	}
	if evicted && r.h != nil && r.h.Evicted != nil {
		r.h.Evicted()
	}
	return cat, true
}

// admitSlow reports whether an OK trace with the given elapsed time ranks
// among the slowest-N retained so far, updating the rank list if so.
func (r *Recorder) admitSlow(elapsed time.Duration) bool {
	if r.slowN == 0 {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.slow) < r.slowN {
		r.slow = append(r.slow, elapsed)
		sort.Slice(r.slow, func(i, j int) bool { return r.slow[i] < r.slow[j] })
		return true
	}
	if elapsed <= r.slow[0] {
		return false
	}
	r.slow[0] = elapsed
	sort.Slice(r.slow, func(i, j int) bool { return r.slow[i] < r.slow[j] })
	return true
}

// retain files t in the ring, reporting whether an older trace was
// overwritten.
func (r *Recorder) retain(t *Trace) (evicted bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.kept++
	if len(r.ring) < r.size {
		r.ring = append(r.ring, t)
		r.next = len(r.ring) % r.size
		return false
	}
	r.ring[r.next] = t
	r.next = (r.next + 1) % r.size
	r.evicted++
	return true
}

// Snapshot returns the retained traces, newest first. The returned traces
// are sealed and safe to render concurrently with further Records.
func (r *Recorder) Snapshot() []*Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Trace, 0, len(r.ring))
	// ring[next-1] is the newest (next equals len until the ring wraps, so
	// the same arithmetic covers both phases).
	for i := 0; i < len(r.ring); i++ {
		out = append(out, r.ring[(r.next-1-i+2*len(r.ring))%len(r.ring)])
	}
	return out
}

// Find returns the retained trace with the given ID, or nil.
func (r *Recorder) Find(id string) *Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, t := range r.ring {
		if t.ID() == id {
			return t
		}
	}
	return nil
}

// Stats is the recorder's own bookkeeping, exposed at /debug/requests.
type Stats struct {
	Held       int    `json:"held"`        // traces currently retained
	Capacity   int    `json:"capacity"`    // ring size
	Recorded   uint64 `json:"recorded"`    // traces ever retained
	SampledOut uint64 `json:"sampled_out"` // OK traces counted but dropped
	Evicted    uint64 `json:"evicted"`     // retained traces overwritten
}

// Stats returns the recorder's counters.
func (r *Recorder) Stats() Stats {
	if r == nil {
		return Stats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return Stats{
		Held:       len(r.ring),
		Capacity:   r.size,
		Recorded:   r.kept,
		SampledOut: r.sampled,
		Evicted:    r.evicted,
	}
}
