package reqtrace

import (
	"context"
	"encoding/json"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilTraceSwallowsEverything: the disabled tracer is a nil pointer, and
// every method must be a safe no-op on it — the same discipline as
// core.Hooks. This is what lets instrumentation sites skip branching on
// configuration.
func TestNilTraceSwallowsEverything(t *testing.T) {
	var tr *Trace
	tr.QueueEnter(3)
	tr.QueueGrant(time.Millisecond)
	tr.QueueReject(32)
	tr.Shed(0.5, time.Millisecond)
	tr.PoolGet("p", true)
	tr.PoolPut("p", true)
	tr.RunStart(time.Second)
	tr.RunFinish("precise", time.Second)
	tr.Reset()
	tr.Publish("buf", 1, 64, false)
	tr.DeadlineFired(time.Second)
	tr.Deliver(1, true, false, 0, time.Second)
	tr.Error("boom")
	tr.Finish(200)
	if tr.ID() != "" || tr.Route() != "" || tr.Len() != 0 || tr.Done() {
		t.Errorf("nil trace leaked state: id=%q route=%q len=%d done=%v",
			tr.ID(), tr.Route(), tr.Len(), tr.Done())
	}
	if tr.Events() != nil || tr.Status() != 0 || tr.Elapsed() != 0 {
		t.Error("nil trace accessors returned non-zero values")
	}
	if tr.Category() != CategoryOK {
		t.Errorf("nil trace category = %v", tr.Category())
	}
}

func TestFromContextMissIsNil(t *testing.T) {
	if tr := FromContext(context.Background()); tr != nil {
		t.Fatalf("bare context yielded trace %v", tr)
	}
}

func TestNewBindsTraceIntoContext(t *testing.T) {
	ctx, tr := New(context.Background(), "blur")
	if tr == nil {
		t.Fatal("New returned nil trace")
	}
	if got := FromContext(ctx); got != tr {
		t.Fatalf("FromContext = %p, want %p", got, tr)
	}
	if tr.Route() != "blur" {
		t.Fatalf("route = %q", tr.Route())
	}
}

// TestIDsAreTraceparentStyleAndUnique: 32 lowercase hex chars, unique per
// trace within the process.
func TestIDsAreTraceparentStyleAndUnique(t *testing.T) {
	idRE := regexp.MustCompile(`^[0-9a-f]{32}$`)
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		_, tr := New(context.Background(), "r")
		id := tr.ID()
		if !idRE.MatchString(id) {
			t.Fatalf("id %q is not 32 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestEventsCarryMonotonicOffsets(t *testing.T) {
	_, tr := New(context.Background(), "r")
	tr.QueueGrant(0)
	tr.Publish("buf", 1, 10, false)
	tr.Publish("buf", 2, 10, true)
	tr.Finish(200)
	ev := tr.Events()
	if len(ev) != 3 {
		t.Fatalf("got %d events", len(ev))
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].At < ev[i-1].At {
			t.Fatalf("event %d offset %v precedes event %d offset %v", i, ev[i].At, i-1, ev[i-1].At)
		}
	}
	if tr.Elapsed() < ev[len(ev)-1].At {
		t.Fatalf("sealed elapsed %v precedes last event %v", tr.Elapsed(), ev[2].At)
	}
}

// TestFinishSealsTrace: Finish fixes status and elapsed, drops later events,
// and is idempotent — a recorded trace is immutable no matter what late
// instrumentation still fires.
func TestFinishSealsTrace(t *testing.T) {
	_, tr := New(context.Background(), "r")
	tr.Publish("buf", 1, 10, false)
	tr.Finish(200)
	if !tr.Done() || tr.Status() != 200 {
		t.Fatalf("done=%v status=%d", tr.Done(), tr.Status())
	}
	sealed := tr.Elapsed()
	tr.Publish("buf", 2, 10, true) // late publish from a pooled observer
	tr.Error("late")
	tr.Finish(500) // second Finish must not reopen or reclassify
	if tr.Len() != 1 || tr.Status() != 200 || tr.Elapsed() != sealed {
		t.Fatalf("seal broken: len=%d status=%d elapsed=%v (want 1, 200, %v)",
			tr.Len(), tr.Status(), tr.Elapsed(), sealed)
	}
	if tr.Category() != CategoryOK {
		t.Fatalf("late error reclassified trace to %v", tr.Category())
	}
}

// TestCategoryPriority: classification folds in as events arrive and
// resolves by severity — error > rejected > deadline-miss > shed > ok.
func TestCategoryPriority(t *testing.T) {
	build := func(events func(*Trace), status int) Category {
		_, tr := New(context.Background(), "r")
		events(tr)
		tr.Finish(status)
		return tr.Category()
	}
	cases := []struct {
		name   string
		events func(*Trace)
		status int
		want   Category
	}{
		{"plain ok", func(tr *Trace) { tr.Deliver(3, true, false, 0, time.Millisecond) }, 200, CategoryOK},
		{"shed", func(tr *Trace) { tr.Shed(0.5, time.Millisecond) }, 200, CategoryShed},
		{"deadline beats shed", func(tr *Trace) {
			tr.Shed(0.5, time.Millisecond)
			tr.DeadlineFired(time.Millisecond)
		}, 200, CategoryDeadlineMiss},
		{"rejected beats deadline", func(tr *Trace) {
			tr.DeadlineFired(time.Millisecond)
			tr.QueueReject(32)
		}, 503, CategoryRejected},
		{"error beats all", func(tr *Trace) {
			tr.QueueReject(32)
			tr.Error("boom")
		}, 503, CategoryError},
		{"5xx status alone is an error", func(tr *Trace) {}, 500, CategoryError},
	}
	for _, tc := range cases {
		if got := build(tc.events, tc.status); got != tc.want {
			t.Errorf("%s: category = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestEventsReturnsACopy(t *testing.T) {
	_, tr := New(context.Background(), "r")
	tr.Publish("buf", 1, 10, false)
	ev := tr.Events()
	ev[0].Name = "mutated"
	if tr.Events()[0].Name != "buf" {
		t.Fatal("Events exposed internal storage")
	}
}

// TestTraceConcurrentAppends: the request goroutine and stage goroutines
// (reporting through a Slot) append concurrently; the race detector plus an
// exact final count prove the serialization.
func TestTraceConcurrentAppends(t *testing.T) {
	_, tr := New(context.Background(), "r")
	const goroutines, per = 8, 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Publish("buf", uint64(g*per+i), 8, false)
			}
		}(g)
	}
	wg.Wait()
	tr.Finish(200)
	if tr.Len() != goroutines*per {
		t.Fatalf("recorded %d events, want %d", tr.Len(), goroutines*per)
	}
}

func TestKindAndCategoryNames(t *testing.T) {
	kinds := []Kind{KindQueueEnter, KindQueueGrant, KindQueueReject, KindShed,
		KindPoolGet, KindPoolPut, KindRunStart, KindRunFinish, KindReset,
		KindPublish, KindDeadline, KindDeliver, KindError}
	for _, k := range kinds {
		if strings.HasPrefix(k.String(), "kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	cats := []Category{CategoryOK, CategorySlow, CategoryShed,
		CategoryDeadlineMiss, CategoryRejected, CategoryError}
	for _, c := range cats {
		if strings.HasPrefix(c.String(), "category(") {
			t.Errorf("category %d has no name", c)
		}
	}
}

// TestTraceJSONRoundTrips: the View marshals with named kinds/categories and
// ns offsets — the machine contract of /debug/requests.json.
func TestTraceJSONRoundTrips(t *testing.T) {
	_, tr := New(context.Background(), "blur")
	tr.QueueGrant(0)
	tr.Publish("out", 1, 64, false)
	tr.Deliver(1, false, true, 21.5, time.Millisecond)
	tr.Finish(200)
	raw, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var v struct {
		ID       string `json:"id"`
		Route    string `json:"route"`
		Category string `json:"category"`
		Status   int    `json:"status"`
		Events   []struct {
			Kind string `json:"kind"`
		} `json:"events"`
	}
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, raw)
	}
	if v.ID != tr.ID() || v.Route != "blur" || v.Category != "ok" || v.Status != 200 {
		t.Fatalf("view = %+v", v)
	}
	if len(v.Events) != 3 || v.Events[0].Kind != "queue.grant" || v.Events[1].Kind != "publish" || v.Events[2].Kind != "deliver" {
		t.Fatalf("events = %+v", v.Events)
	}
}
