package reqtrace

import (
	"context"
	"sync"
	"testing"
	"time"
)

// finished builds a sealed trace of the given shape for recorder tests.
func finished(t *testing.T, route string, status int, events func(*Trace)) *Trace {
	t.Helper()
	_, tr := New(context.Background(), route)
	if events != nil {
		events(tr)
	}
	tr.Finish(status)
	return tr
}

func TestRecorderValidation(t *testing.T) {
	if _, err := NewRecorder(RecorderConfig{Size: -1}); err == nil {
		t.Error("negative size accepted")
	}
	if _, err := NewRecorder(RecorderConfig{SampleEvery: -1}); err == nil {
		t.Error("negative sample accepted")
	}
	r, err := NewRecorder(RecorderConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 256 || r.SampleEvery() != 16 {
		t.Fatalf("defaults = size %d, sample %d", r.Size(), r.SampleEvery())
	}
}

// TestRecorderRefusesUnsealedTraces: retaining a mutable trace would let
// /debug/requests readers race the request's writers, so Record demands
// Finish first.
func TestRecorderRefusesUnsealedTraces(t *testing.T) {
	r, err := NewRecorder(RecorderConfig{Size: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, tr := New(context.Background(), "r")
	if _, kept := r.Record(tr); kept {
		t.Fatal("unsealed trace retained")
	}
	if _, kept := r.Record(nil); kept {
		t.Fatal("nil trace retained")
	}
	if st := r.Stats(); st.Held != 0 || st.Recorded != 0 {
		t.Fatalf("stats %+v after refused records", st)
	}
}

// TestRecorderAlwaysKeepsInterestingCategories: errors, rejections,
// deadline misses, and shed requests bypass sampling entirely.
func TestRecorderAlwaysKeepsInterestingCategories(t *testing.T) {
	r, err := NewRecorder(RecorderConfig{Size: 64, SampleEvery: 1 << 30, SlowN: -1})
	if err != nil {
		t.Fatal(err)
	}
	shapes := []struct {
		events func(*Trace)
		status int
		want   Category
	}{
		{func(tr *Trace) { tr.Error("boom") }, 500, CategoryError},
		{func(tr *Trace) { tr.QueueReject(32) }, 503, CategoryRejected},
		{func(tr *Trace) { tr.DeadlineFired(time.Millisecond) }, 200, CategoryDeadlineMiss},
		{func(tr *Trace) { tr.Shed(0.5, time.Millisecond) }, 200, CategoryShed},
	}
	for _, sh := range shapes {
		cat, kept := r.Record(finished(t, "r", sh.status, sh.events))
		if !kept || cat != sh.want {
			t.Errorf("category %v: kept=%v cat=%v", sh.want, kept, cat)
		}
	}
	// With sampling effectively off, an OK trace is dropped...
	if _, kept := r.Record(finished(t, "r", 200, nil)); kept {
		t.Error("OK trace retained despite sampling")
	}
	// ...but counted.
	if st := r.Stats(); st.Held != 4 || st.SampledOut != 1 {
		t.Fatalf("stats %+v, want 4 held / 1 sampled out", st)
	}
}

// TestRecorderSamplesOKTraces: exactly one in SampleEvery unremarkable
// successes is retained; the rest are counted as sampled out.
func TestRecorderSamplesOKTraces(t *testing.T) {
	var recorded []string
	sampledOut := 0
	r, err := NewRecorder(RecorderConfig{
		Size:        64,
		SampleEvery: 4,
		SlowN:       -1,
		Hooks: &Hooks{
			Recorded:   func(cat string) { recorded = append(recorded, cat) },
			SampledOut: func() { sampledOut++ },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	kept := 0
	for i := 0; i < 16; i++ {
		if _, ok := r.Record(finished(t, "r", 200, nil)); ok {
			kept++
		}
	}
	if kept != 4 || sampledOut != 12 {
		t.Fatalf("kept %d / sampled out %d of 16 at 1-in-4", kept, sampledOut)
	}
	for _, cat := range recorded {
		if cat != "sampled" {
			t.Errorf("retained OK trace labeled %q, want sampled", cat)
		}
	}
}

// TestRecorderKeepsSlowestN: the slowest OK traces bypass sampling under
// the "slow" label, and the rank list tightens as slower traces arrive.
func TestRecorderKeepsSlowestN(t *testing.T) {
	r, err := NewRecorder(RecorderConfig{Size: 64, SampleEvery: 1 << 30, SlowN: 2})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(elapsed time.Duration) *Trace {
		_, tr := New(context.Background(), "r")
		tr.Finish(200)
		tr.elapsed = elapsed // backdate: elapsed drives the slow rank
		return tr
	}
	// The first two fill the rank list regardless of speed.
	for _, d := range []time.Duration{time.Millisecond, 2 * time.Millisecond} {
		if cat, kept := r.Record(mk(d)); !kept || cat != CategorySlow {
			t.Fatalf("rank-filling trace: kept=%v cat=%v", kept, cat)
		}
	}
	// Faster than both ranked entries: sampled out, not slow.
	if _, kept := r.Record(mk(time.Microsecond)); kept {
		t.Fatal("fast trace admitted as slow")
	}
	// Slower than the floor: admitted, evicting the rank floor.
	if cat, kept := r.Record(mk(3 * time.Millisecond)); !kept || cat != CategorySlow {
		t.Fatalf("slowest trace: kept=%v cat=%v", kept, cat)
	}
	// The rank floor is now 2ms (the 1ms entry was evicted): 1.5ms no
	// longer ranks, 2.5ms does.
	if _, kept := r.Record(mk(1500 * time.Microsecond)); kept {
		t.Fatal("sub-floor trace admitted as slow")
	}
	if cat, kept := r.Record(mk(2500 * time.Microsecond)); !kept || cat != CategorySlow {
		t.Fatalf("newly ranking trace: kept=%v cat=%v", kept, cat)
	}
}

// TestRecorderRingWrapsOldestFirst: the ring is bounded, evicts
// oldest-first, and Snapshot returns newest-first across the wrap.
func TestRecorderRingWrapsOldestFirst(t *testing.T) {
	evictions := 0
	r, err := NewRecorder(RecorderConfig{
		Size:        3,
		SampleEvery: 1,
		SlowN:       -1,
		Hooks:       &Hooks{Evicted: func() { evictions++ }},
	})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 5; i++ {
		tr := finished(t, "r", 200, nil)
		ids = append(ids, tr.ID())
		if _, kept := r.Record(tr); !kept {
			t.Fatalf("trace %d dropped at 1-in-1 sampling", i)
		}
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("held %d traces, want 3", len(snap))
	}
	// Newest first: ids[4], ids[3], ids[2].
	for i, want := range []string{ids[4], ids[3], ids[2]} {
		if snap[i].ID() != want {
			t.Fatalf("snapshot[%d] = %s, want %s", i, snap[i].ID(), want)
		}
	}
	if evictions != 2 {
		t.Fatalf("evictions = %d, want 2", evictions)
	}
	// The evicted traces are gone; the retained are findable.
	if r.Find(ids[0]) != nil || r.Find(ids[1]) != nil {
		t.Error("evicted trace still findable")
	}
	if r.Find(ids[4]) == nil {
		t.Error("retained trace not findable")
	}
	if st := r.Stats(); st.Held != 3 || st.Capacity != 3 || st.Recorded != 5 || st.Evicted != 2 {
		t.Fatalf("stats %+v", st)
	}
}

// TestRecorderConcurrentRecordAndRead is the -race proof of the flight
// recorder's concurrency contract: parallel writers record completed traces
// while readers snapshot, find, and fully render — and every trace a reader
// sees is sealed (immutable), never a request still in flight.
func TestRecorderConcurrentRecordAndRead(t *testing.T) {
	r, err := NewRecorder(RecorderConfig{Size: 32, SampleEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 4; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, tr := range r.Snapshot() {
					if !tr.Done() {
						t.Error("recorder handed out an unsealed trace")
						return
					}
					// Render fully: a torn trace would trip the race
					// detector here.
					v := tr.View()
					if v.ID == "" {
						t.Error("retained trace has no ID")
						return
					}
					_ = r.Find(v.ID)
				}
				_ = r.Stats()
			}
		}()
	}
	var writers sync.WaitGroup
	for g := 0; g < 8; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 200; i++ {
				_, tr := New(context.Background(), "load")
				tr.QueueGrant(0)
				tr.Publish("buf", uint64(i+1), 64, i%5 == 4)
				switch i % 7 {
				case 0:
					tr.Error("synthetic failure")
					tr.Finish(500)
				case 1:
					tr.DeadlineFired(time.Millisecond)
					tr.Finish(200)
				default:
					tr.Deliver(uint64(i+1), i%5 == 4, false, 0, time.Microsecond)
					tr.Finish(200)
				}
				r.Record(tr)
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	st := r.Stats()
	if st.Held != 32 {
		t.Fatalf("held %d traces, want the full ring of 32", st.Held)
	}
	// Everything offered was accounted for: retained + sampled out = 1600.
	if st.Recorded+st.SampledOut != 8*200 {
		t.Fatalf("recorded %d + sampled out %d != %d offered", st.Recorded, st.SampledOut, 8*200)
	}
}
