package reqtrace

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"anytime/internal/core"
	"anytime/internal/trace"
)

// View is a trace's JSON shape — the /debug/requests.json payload tooling
// joins against load-test output by ID.
type View struct {
	ID       string        `json:"id"`
	Route    string        `json:"route"`
	Category Category      `json:"category"`
	Status   int           `json:"status,omitempty"`
	Start    time.Time     `json:"start"`
	Elapsed  time.Duration `json:"elapsed_ns"`
	Events   []Event       `json:"events"`
}

// View returns the trace's exported shape. Safe on nil (zero View).
func (t *Trace) View() View {
	if t == nil {
		return View{}
	}
	return View{
		ID:       t.ID(),
		Route:    t.Route(),
		Category: t.Category(),
		Status:   t.Status(),
		Start:    t.Start(),
		Elapsed:  t.Elapsed(),
		Events:   t.Events(),
	}
}

// MarshalJSON renders the trace as its View.
func (t *Trace) MarshalJSON() ([]byte, error) { return json.Marshal(t.View()) }

// WriteList renders a one-line-per-trace summary table: ID, category,
// route, status, elapsed, publish count, and the delivered snapshot (or the
// terminal event when nothing was delivered). This is the /debug/requests
// index view.
func WriteList(w io.Writer, traces []*Trace) error {
	if len(traces) == 0 {
		_, err := fmt.Fprintln(w, "(no traces recorded)")
		return err
	}
	if _, err := fmt.Fprintf(w, "%-32s  %-13s  %-10s  %-4s  %-10s  %-9s  %s\n",
		"ID", "CATEGORY", "ROUTE", "CODE", "ELAPSED", "PUBLISHES", "DELIVERED"); err != nil {
		return err
	}
	for _, t := range traces {
		v := t.View()
		publishes := 0
		delivered := "-"
		for _, e := range v.Events {
			switch e.Kind {
			case KindPublish:
				publishes++
			case KindDeliver:
				delivered = fmt.Sprintf("v%d", e.Version)
				if e.Flag {
					delivered += " final"
				} else if e.Val > 0 {
					delivered += fmt.Sprintf(" %.1fdB", e.Val)
				}
			case KindQueueReject:
				if delivered == "-" {
					delivered = "rejected"
				}
			case KindError:
				if delivered == "-" {
					delivered = "error"
				}
			}
		}
		if _, err := fmt.Fprintf(w, "%-32s  %-13s  %-10s  %-4d  %-10s  %-9d  %s\n",
			v.ID, v.Category, v.Route, v.Status, v.Elapsed.Round(time.Microsecond), publishes, delivered); err != nil {
			return err
		}
	}
	return nil
}

// WriteDetail renders one trace in full: a header line, the span tree (one
// line per event, indented by phase), and — when the trace saw publishes —
// the publish timeline in internal/trace's Figure 2 ASCII layout, so a
// single request's accuracy ramp reads exactly like the paper's.
func (t *Trace) WriteDetail(w io.Writer, width int) error {
	v := t.View()
	if v.ID == "" {
		_, err := fmt.Fprintln(w, "(no trace)")
		return err
	}
	if _, err := fmt.Fprintf(w, "trace %s  route=%s  category=%s  status=%d  elapsed=%v  start=%s\n",
		v.ID, v.Route, v.Category, v.Status, v.Elapsed.Round(time.Microsecond),
		v.Start.Format(time.RFC3339Nano)); err != nil {
		return err
	}
	var publishes []trace.Event
	for _, e := range v.Events {
		if _, err := fmt.Fprintf(w, "  %10v  %s%s\n",
			e.At.Round(time.Microsecond), indentFor(e.Kind), describe(e)); err != nil {
			return err
		}
		if e.Kind == KindPublish {
			publishes = append(publishes, trace.Event{
				Buffer:  e.Name,
				At:      e.At,
				Version: core.Version(e.Version),
				Final:   e.Flag,
			})
		}
	}
	if len(publishes) > 0 {
		if _, err := fmt.Fprint(w, "publish "); err != nil {
			return err
		}
		return trace.RenderTimeline(w, publishes, width)
	}
	return nil
}

// indentFor nests the span tree: queue/pool/delivery events at request
// level, run lifecycle one level in, publishes (which happen inside the
// run) two levels in.
func indentFor(k Kind) string {
	switch k {
	case KindRunStart, KindRunFinish, KindDeadline, KindReset:
		return "  "
	case KindPublish:
		return "    "
	default:
		return ""
	}
}

// describe renders one event's kind-specific fields as key=value text.
func describe(e Event) string {
	switch e.Kind {
	case KindQueueEnter:
		return fmt.Sprintf("queue.enter depth=%d", e.N)
	case KindQueueGrant:
		return fmt.Sprintf("queue.grant wait=%v", e.Dur.Round(time.Microsecond))
	case KindQueueReject:
		return fmt.Sprintf("queue.reject capacity=%d", e.N)
	case KindShed:
		return fmt.Sprintf("shed factor=%.3f effective=%v", e.Val, e.Dur)
	case KindPoolGet:
		return fmt.Sprintf("pool.get pool=%s warm=%v", e.Name, e.Flag)
	case KindPoolPut:
		return fmt.Sprintf("pool.put pool=%s retained=%v", e.Name, e.Flag)
	case KindRunStart:
		if e.Dur > 0 {
			return fmt.Sprintf("run.start deadline=%v", e.Dur)
		}
		return "run.start deadline=none (precise)"
	case KindRunFinish:
		return fmt.Sprintf("run.finish outcome=%s elapsed=%v", e.Note, e.Dur.Round(time.Microsecond))
	case KindReset:
		return "reset"
	case KindPublish:
		final := ""
		if e.Flag {
			final = " final"
		}
		return fmt.Sprintf("publish buffer=%s v%d bytes=%d%s", e.Name, e.Version, e.N, final)
	case KindDeadline:
		return fmt.Sprintf("deadline fired after=%v", e.Dur)
	case KindDeliver:
		s := fmt.Sprintf("deliver v%d final=%v elapsed=%v", e.Version, e.Flag, e.Dur.Round(time.Microsecond))
		if e.Val > 0 {
			s += fmt.Sprintf(" snr=%.1fdB", e.Val)
		}
		if e.Note != "" {
			s += " " + e.Note
		}
		return s
	case KindError:
		return "error: " + e.Note
	case KindRoute:
		return fmt.Sprintf("route.pick member=%s key=%s rank=%d", e.Name, e.Note, e.N)
	case KindBudget:
		if e.Flag {
			return fmt.Sprintf("budget granted=%v (floored: best-effort)", e.Dur)
		}
		return fmt.Sprintf("budget granted=%v", e.Dur)
	case KindForward:
		return fmt.Sprintf("forward member=%s role=%s", e.Name, e.Note)
	case KindForwardDone:
		return fmt.Sprintf("forward.done member=%s role=%s rtt=%v usable=%v",
			e.Name, e.Note, e.Dur.Round(time.Microsecond), e.Flag)
	case KindHedgeFire:
		return fmt.Sprintf("hedge.fire after=%v", e.Dur)
	case KindHedgeCancel:
		return fmt.Sprintf("hedge.cancel member=%s role=%s", e.Name, e.Note)
	default:
		return e.Kind.String()
	}
}
