// Package par provides the small deterministic parallel-loop helpers the
// benchmark baselines share. The baselines are parallelized "to fully
// utilize the available hardware threads" exactly as the paper's precise
// executions are (§IV-A1); these helpers keep that parallelization
// identical in structure across applications.
package par

import "sync"

// Rows invokes fn on contiguous row bands [y0, y1) covering [0, h), one
// band per worker. fn must be safe for concurrent calls on disjoint bands.
func Rows(h, workers int, fn func(y0, y1 int)) {
	if workers > h {
		workers = h
	}
	if workers <= 1 {
		fn(0, h)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			fn(h*w/workers, h*(w+1)/workers)
		}(w)
	}
	wg.Wait()
}

// Index invokes fn for every i in [0, n), handing each worker one
// contiguous chunk of indices. fn must be safe for concurrent calls on
// distinct indices.
//
// Chunks, not stripes: when index i addresses the i-th element (or row,
// or column) of a shared output, cyclic striping puts adjacent indices on
// different workers and every cache line of the output ping-pongs between
// cores. Contiguous chunks give each worker a private span of lines; the
// union of chunks is the same index set, so results are unchanged for any
// fn with disjoint writes.
func Index(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := n * w / workers; i < n*(w+1)/workers; i++ {
				fn(i)
			}
		}(w)
	}
	wg.Wait()
}
