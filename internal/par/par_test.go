package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestRowsCoverExactlyOnce(t *testing.T) {
	f := func(rawH, rawW uint8) bool {
		h := int(rawH) % 200
		workers := int(rawW)%8 + 1
		counts := make([]atomic.Int32, h)
		Rows(h, workers, func(y0, y1 int) {
			for y := y0; y < y1; y++ {
				counts[y].Add(1)
			}
		})
		for i := range counts {
			if counts[i].Load() != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestIndexCoversExactlyOnce(t *testing.T) {
	f := func(rawN, rawW uint8) bool {
		n := int(rawN) % 300
		workers := int(rawW)%8 + 1
		counts := make([]atomic.Int32, n)
		Index(n, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if counts[i].Load() != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDegenerateShapes(t *testing.T) {
	Rows(0, 4, func(y0, y1 int) {
		if y0 != y1 {
			t.Error("empty rows invoked with work")
		}
	})
	Index(0, 4, func(int) { t.Error("empty index invoked") })
	calls := 0
	Rows(3, 0, func(y0, y1 int) { calls += y1 - y0 })
	if calls != 3 {
		t.Errorf("workers=0 rows covered %d", calls)
	}
}
