package perforate

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	good := []Schedule{{1}, {2, 1}, {8, 4, 2, 1}, {7, 3, 1}}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("%v rejected: %v", s, err)
		}
	}
	bad := []Schedule{nil, {}, {0}, {2, 2, 1}, {2, 4, 1}, {4, 2}, {-1, 1}}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("%v accepted", s)
		}
	}
}

func TestGeometric(t *testing.T) {
	s, err := Geometric(8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, Schedule{8, 4, 2, 1}) {
		t.Errorf("Geometric(8) = %v", s)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("Geometric schedule invalid: %v", err)
	}
	if s.Passes() != 4 {
		t.Errorf("Passes = %d", s.Passes())
	}
	one, err := Geometric(1)
	if err != nil || !reflect.DeepEqual(one, Schedule{1}) {
		t.Errorf("Geometric(1) = %v, %v", one, err)
	}
	for _, bad := range []int{0, -2, 3, 12} {
		if _, err := Geometric(bad); err == nil {
			t.Errorf("Geometric(%d) accepted", bad)
		}
	}
}

func TestForEach(t *testing.T) {
	var got []int
	if err := ForEach(10, 3, func(i int) { got = append(got, i) }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{0, 3, 6, 9}) {
		t.Errorf("ForEach = %v", got)
	}
	if err := ForEach(5, 0, func(int) {}); err == nil {
		t.Error("stride 0 accepted")
	}
	if err := ForEach(-1, 1, func(int) {}); err == nil {
		t.Error("negative n accepted")
	}
	calls := 0
	if err := ForEach(0, 1, func(int) { calls++ }); err != nil || calls != 0 {
		t.Error("n=0 misbehaved")
	}
}

func TestIterationsMatchesForEach(t *testing.T) {
	f := func(rawN uint16, rawS uint8) bool {
		n := int(rawN) % 1000
		stride := int(rawS)%16 + 1
		count := 0
		if err := ForEach(n, stride, func(int) { count++ }); err != nil {
			return false
		}
		return count == Iterations(n, stride)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestStrideOneCoversAll: the precise pass must visit every index — the
// guarantee that makes the final iterative computation exact.
func TestStrideOneCoversAll(t *testing.T) {
	const n = 137
	seen := make([]bool, n)
	if err := ForEach(n, 1, func(i int) { seen[i] = true }); err != nil {
		t.Fatal(err)
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("index %d not visited by precise pass", i)
		}
	}
}

func TestRedundantWork(t *testing.T) {
	s := Schedule{8, 4, 2, 1}
	// For n divisible by 8: n/8 + n/4 + n/2 + n iterations = 1.875n.
	got := s.RedundantWork(800)
	if math.Abs(got-1.875) > 1e-12 {
		t.Errorf("RedundantWork = %v, want 1.875", got)
	}
	if s.RedundantWork(0) != 0 || s.RedundantWork(-5) != 0 {
		t.Error("degenerate n should report 0")
	}
	// A diffusive stage would be 1.0; iterative must exceed it.
	if got <= 1 {
		t.Error("iterative schedule reports no redundant work")
	}
}

func TestLinear(t *testing.T) {
	s, err := Linear(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, Schedule{7, 5, 3, 1}) {
		t.Errorf("Linear(7,2) = %v", s)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("linear schedule invalid: %v", err)
	}
	one, err := Linear(1, 3)
	if err != nil || !reflect.DeepEqual(one, Schedule{1}) {
		t.Errorf("Linear(1,3) = %v, %v", one, err)
	}
	if _, err := Linear(0, 1); err == nil {
		t.Error("max=0 accepted")
	}
	if _, err := Linear(4, 0); err == nil {
		t.Error("step=0 accepted")
	}
	// Exactly-divisible case must still end at 1 without duplicates.
	s, err = Linear(4, 3)
	if err != nil || !reflect.DeepEqual(s, Schedule{4, 1}) {
		t.Errorf("Linear(4,3) = %v, %v", s, err)
	}
}
