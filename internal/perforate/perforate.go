// Package perforate implements loop perforation schedules for iterative
// anytime stages (paper §III-B1, "Loop Perforation"). Perforation jumps
// past loop iterations with a fixed stride; an anytime stage re-executes
// the perforated loop with progressively smaller strides s_1 > … > s_n = 1,
// so accuracy increases over time and the final pass is precise.
package perforate

import "fmt"

// Schedule is a sequence of perforation strides for the intermediate
// computations f_1 … f_n of an iterative stage. A valid schedule is
// strictly decreasing and ends at stride 1 (the precise pass).
type Schedule []int

// Validate checks the paper's requirements: s_i < s_{i-1} and s_n = 1.
func (s Schedule) Validate() error {
	if len(s) == 0 {
		return fmt.Errorf("perforate: empty schedule")
	}
	for i, v := range s {
		if v < 1 {
			return fmt.Errorf("perforate: stride %d at position %d must be >= 1", v, i)
		}
		if i > 0 && v >= s[i-1] {
			return fmt.Errorf("perforate: strides must strictly decrease; got %d after %d", v, s[i-1])
		}
	}
	if s[len(s)-1] != 1 {
		return fmt.Errorf("perforate: final stride must be 1 (precise pass), got %d", s[len(s)-1])
	}
	return nil
}

// Passes reports the number of intermediate computations (n).
func (s Schedule) Passes() int { return len(s) }

// Geometric returns the schedule maxStride, maxStride/2, …, 2, 1.
// maxStride must be a positive power of two.
func Geometric(maxStride int) (Schedule, error) {
	if maxStride < 1 || maxStride&(maxStride-1) != 0 {
		return nil, fmt.Errorf("perforate: maxStride %d must be a positive power of two", maxStride)
	}
	var s Schedule
	for v := maxStride; v >= 1; v /= 2 {
		s = append(s, v)
	}
	return s, nil
}

// ForEach invokes fn(i) for i = 0, stride, 2*stride, … while i < n.
// It is the perforated form of `for i := 0; i < n; i++`.
func ForEach(n, stride int, fn func(i int)) error {
	if stride < 1 {
		return fmt.Errorf("perforate: stride %d must be >= 1", stride)
	}
	if n < 0 {
		return fmt.Errorf("perforate: negative trip count %d", n)
	}
	for i := 0; i < n; i += stride {
		fn(i)
	}
	return nil
}

// Iterations reports how many iterations ForEach(n, stride, …) executes.
func Iterations(n, stride int) int {
	if n <= 0 || stride < 1 {
		return 0
	}
	return (n + stride - 1) / stride
}

// RedundantWork reports the total number of loop iterations executed by a
// full schedule relative to the single precise pass: the overhead the paper
// attributes to iterative (as opposed to diffusive) anytime stages. The
// returned value is total iterations across all passes divided by n.
func (s Schedule) RedundantWork(n int) float64 {
	if n <= 0 {
		return 0
	}
	total := 0
	for _, stride := range s {
		total += Iterations(n, stride)
	}
	return float64(total) / float64(n)
}

// Linear returns the schedule max, max-step, …, ending at 1. step must be
// positive; max must be at least 1.
func Linear(max, step int) (Schedule, error) {
	if max < 1 {
		return nil, fmt.Errorf("perforate: max stride %d must be >= 1", max)
	}
	if step < 1 {
		return nil, fmt.Errorf("perforate: step %d must be >= 1", step)
	}
	var s Schedule
	for v := max; v > 1; v -= step {
		s = append(s, v)
	}
	s = append(s, 1)
	return s, nil
}
