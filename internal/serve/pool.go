package serve

import (
	"context"
	"fmt"
	"sync"

	"anytime/internal/reqtrace"
)

// Pool is a warm pool of resettable automata for one app configuration.
// Get checks an entry out (reusing an idle one when available, building
// fresh otherwise) and Put checks it back in, paying the Reset rewind off
// the next request's critical path. The pool never blocks and never bounds
// concurrency — admission control is the Queue's job; the pool only bounds
// how many idle entries it retains.
//
// Entries must not be shared: exactly one request owns a checked-out entry
// until it is Put back. All methods are safe for concurrent use.
type Pool[T any] struct {
	name  string
	build func() (Entry[T], error)
	h     *Hooks

	mu   sync.Mutex
	idle []Entry[T]
}

// NewPool returns a pool retaining at most capacity idle entries, building
// new ones with build. capacity must be positive — a pool that retains
// nothing is just a constructor call.
func NewPool[T any](name string, capacity int, build func() (Entry[T], error), h *Hooks) (*Pool[T], error) {
	if capacity < 1 {
		return nil, fmt.Errorf("serve: pool %q capacity %d must be positive", name, capacity)
	}
	if build == nil {
		return nil, fmt.Errorf("serve: pool %q has no build function", name)
	}
	return &Pool[T]{name: name, build: build, h: h, idle: make([]Entry[T], 0, capacity)}, nil
}

// Name reports the pool's label.
func (p *Pool[T]) Name() string { return p.name }

// Warm pre-builds idle entries until the pool holds n (clamped to the
// pool's capacity), so the first requests after startup pay no
// construction cost.
func (p *Pool[T]) Warm(n int) error {
	for {
		p.mu.Lock()
		if len(p.idle) >= n || len(p.idle) == cap(p.idle) {
			p.mu.Unlock()
			return nil
		}
		p.mu.Unlock()
		e, err := p.build()
		if err != nil {
			return err
		}
		p.mu.Lock()
		if len(p.idle) < cap(p.idle) {
			p.idle = append(p.idle, e)
		}
		p.mu.Unlock()
	}
}

// Get checks out an entry: the most recently returned idle one (LIFO, so
// its working set is the warmest) or a freshly built one when the idle set
// is empty. A request trace bound into ctx records the checkout and its
// warm/fresh source.
func (p *Pool[T]) Get(ctx context.Context) (Entry[T], error) {
	tr := reqtrace.FromContext(ctx)
	p.mu.Lock()
	if n := len(p.idle); n > 0 {
		e := p.idle[n-1]
		p.idle[n-1] = Entry[T]{} // release the reference
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		if p.h != nil && p.h.PoolGet != nil {
			p.h.PoolGet(p.name, true)
		}
		tr.PoolGet(p.name, true)
		return e, nil
	}
	p.mu.Unlock()
	e, err := p.build()
	if err != nil {
		return Entry[T]{}, err
	}
	if p.h != nil && p.h.PoolGet != nil {
		p.h.PoolGet(p.name, false)
	}
	tr.PoolGet(p.name, false)
	return e, nil
}

// Put checks an entry back in: the automaton is Reset (rewinding buffers,
// snapshot masks, and version numbering — see core.Automaton.Reset) and
// retained for the next Get, unless the pool is already holding its
// capacity of idle entries or the reset fails, in which case the entry is
// discarded. The automaton must be stopped or finished; a Put of a running
// automaton returns the reset error and discards the entry.
//
// A trace still bound to the entry's Slot records the check-in (and, via
// the automaton's OnReset hooks, the reset itself) — so the caller must
// Unbind only after Put, and must do so before sealing the trace.
func (p *Pool[T]) Put(e Entry[T]) error {
	if err := e.Automaton.Reset(); err != nil {
		if p.h != nil && p.h.PoolPut != nil {
			p.h.PoolPut(p.name, false)
		}
		e.Slot.Trace().PoolPut(p.name, false)
		return fmt.Errorf("serve: pool %q check-in: %w", p.name, err)
	}
	p.mu.Lock()
	retained := len(p.idle) < cap(p.idle)
	if retained {
		p.idle = append(p.idle, e)
	}
	p.mu.Unlock()
	if p.h != nil && p.h.PoolPut != nil {
		p.h.PoolPut(p.name, retained)
	}
	e.Slot.Trace().PoolPut(p.name, retained)
	return nil
}

// Idle reports the number of entries currently checked in.
func (p *Pool[T]) Idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle)
}
