// Package serve is the deadline-aware serving runtime over internal/core:
// it turns the paper's interrupt-anywhere property (§III-C) into the
// contract a loaded server needs — under pressure, degrade accuracy, not
// availability.
//
// The package has three independent pieces, composed by the caller
// (cmd/anytimed wires all three):
//
//   - Pool: warm automaton pools. core.Automaton.Reset rewinds an
//     automaton's per-run state without reallocating stages, permutation
//     tables, tile rings, or arenas, so a pool amortizes construction cost
//     across requests: check an entry out with Get, run it, check it back
//     in with Put.
//
//   - Run / RunUntil: deadline and acceptance contracts. Run executes a
//     checked-out automaton and returns the best published snapshot when
//     the deadline fires — never an error merely because time ran out,
//     because an anytime automaton always holds a valid approximation once
//     its first version is published. RunUntil stops at the first snapshot
//     an acceptance predicate admits, polling published versions rather
//     than registering buffer observers (observers are permanent, so a
//     pooled buffer must not accumulate per-request callbacks).
//
//   - Queue / Controller: admission control. Queue is a bounded FIFO-fair
//     concurrency limiter — waiters are served strictly in arrival order
//     and excess load is rejected immediately rather than queued without
//     bound. Controller maps queue depth to a shed factor that the caller
//     applies to each request's deadline (or target accuracy), trading
//     per-request accuracy for throughput as load rises and restoring it
//     as load drains.
//
// All observability is routed through the optional *Hooks parameter;
// internal/telemetry.ServeHooks binds it to the process metrics registry.
package serve

import (
	"context"
	"errors"
	"fmt"
	rtrace "runtime/trace"
	"time"

	"anytime/internal/core"
	"anytime/internal/reqtrace"
)

// ErrNoOutput is returned when a run ends without a single published
// snapshot to deliver (for example, the client disconnected before the
// automaton published its first version).
var ErrNoOutput = errors.New("serve: run produced no output")

// Entry is one pooled automaton together with the output buffer requests
// read their snapshots from. Apps expose constructors returning exactly
// this shape (an automaton plus its terminal buffer); intermediate buffers
// stay internal to the app.
type Entry[T any] struct {
	Automaton *core.Automaton
	Out       *core.Buffer[T]
	// Slot, when non-nil, is the entry's request-trace binding point:
	// instrumentation attached once at construction (buffer publish
	// observers, OnReset hooks) reports into whichever trace is currently
	// bound to it. The serving caller Binds the request's trace at checkout
	// and Unbinds after Put; a nil Slot (tracing disabled) costs each
	// observer one pointer check.
	Slot *reqtrace.Slot
}

// Result is the outcome of a Run or RunUntil: the delivered snapshot and
// how the run ended.
type Result[T any] struct {
	// Snapshot is the delivered output. Snapshot.Final reports whether it
	// is the precise output; Snapshot.Version is its accuracy rank within
	// the run.
	Snapshot core.Snapshot[T]
	// Interrupted reports that the automaton was stopped before reaching
	// its precise output — the deadline fired or the acceptance predicate
	// admitted an early snapshot.
	Interrupted bool
	// Elapsed is the wall time from Start to delivery.
	Elapsed time.Duration
}

// Run executes a checked-out entry under a deadline contract and returns
// the best published snapshot available when the contract is met:
//
//   - deadline <= 0: run to the precise output and return it (bit-exact
//     with the app's baseline; the no-knob serving path).
//   - deadline > 0: let the automaton run until the deadline fires, stop
//     it, and return the newest published snapshot. If nothing has been
//     published yet when the deadline fires, Run waits for the first
//     version instead of failing — an anytime request never times out
//     empty-handed once admitted.
//
// Cancelling ctx (client disconnect) stops the automaton and returns
// ctx.Err(). A stage failure is returned as an error. The caller owns the
// entry throughout and must still check it back into its pool afterwards;
// Run always leaves the automaton stopped or finished, ready for Reset.
func Run[T any](ctx context.Context, e Entry[T], deadline time.Duration, h *Hooks) (Result[T], error) {
	tr := reqtrace.FromContext(ctx)
	var region *rtrace.Region
	if tr != nil {
		region = rtrace.StartRegion(ctx, "anytime.run")
	}
	start := time.Now()
	if err := e.Automaton.Start(ctx); err != nil {
		if region != nil {
			region.End()
		}
		tr.Error(err.Error())
		return Result[T]{}, err
	}
	tr.RunStart(deadline)
	done := e.Automaton.Done()
	interrupted := false
	if deadline > 0 {
		timer := time.NewTimer(deadline)
		select {
		case <-done:
		case <-ctx.Done():
			timer.Stop()
			e.Automaton.Stop()
			return runFail[T](tr, region, ctx.Err())
		case <-timer.C:
			interrupted = true
			tr.DeadlineFired(deadline)
			// Contract: deliver *something*. If the automaton has yet to
			// publish its first version, wait for it (bounded by the
			// client's context) before interrupting.
			if _, ok := e.Out.Peek(); !ok {
				if _, err := waitFirst(ctx, e, done); err != nil {
					timer.Stop()
					e.Automaton.Stop()
					return runFail[T](tr, region, err)
				}
			}
		}
		timer.Stop()
	} else {
		select {
		case <-done:
		case <-ctx.Done():
			e.Automaton.Stop()
			return runFail[T](tr, region, ctx.Err())
		}
	}
	e.Automaton.Stop()
	if err := e.Automaton.Err(); err != nil && !errors.Is(err, core.ErrStopped) {
		return runFail[T](tr, region, err)
	}
	snap, ok := e.Out.Latest()
	if !ok {
		return runFail[T](tr, region, ErrNoOutput)
	}
	// A run that finished on its own before the deadline delivered the
	// precise output; only a fired deadline that truly cut work short is an
	// interruption.
	interrupted = interrupted && !snap.Final
	res := Result[T]{Snapshot: snap, Interrupted: interrupted, Elapsed: time.Since(start)}
	if h != nil && h.Deliver != nil {
		h.Deliver(interrupted, snap.Final, res.Elapsed)
	}
	if region != nil {
		region.End()
	}
	tr.RunFinish(runOutcome(e.Automaton.Err()), res.Elapsed)
	return res, nil
}

// runFail ends the trace region and records the failure before returning
// it.
func runFail[T any](tr *reqtrace.Trace, region *rtrace.Region, err error) (Result[T], error) {
	if region != nil {
		region.End()
	}
	tr.Error(err.Error())
	return Result[T]{}, err
}

// runOutcome folds an automaton's terminal error into the outcome
// vocabulary the telemetry layer uses.
func runOutcome(err error) string {
	switch {
	case err == nil:
		return "precise"
	case errors.Is(err, core.ErrStopped):
		return "stopped"
	default:
		return "failed"
	}
}

// RunUntil executes a checked-out entry until accept admits a published
// snapshot (or the automaton reaches its precise output, whichever comes
// first), then stops the automaton and returns that snapshot. It is the
// pool-safe acceptance knob: snapshots are observed by polling
// Buffer.WaitNewer, not by registering an OnPublish observer, because
// observers are permanent and a pooled buffer serves many requests.
//
// accept runs on the request goroutine between versions; it must not
// retain the snapshot value if the app publishes aliased ring images
// (pix.SnapshotTiles).
func RunUntil[T any](ctx context.Context, e Entry[T], accept func(core.Snapshot[T]) bool, h *Hooks) (Result[T], error) {
	if accept == nil {
		return Result[T]{}, fmt.Errorf("serve: RunUntil requires an accept predicate")
	}
	tr := reqtrace.FromContext(ctx)
	var region *rtrace.Region
	if tr != nil {
		region = rtrace.StartRegion(ctx, "anytime.run")
	}
	start := time.Now()
	if err := e.Automaton.Start(ctx); err != nil {
		if region != nil {
			region.End()
		}
		tr.Error(err.Error())
		return Result[T]{}, err
	}
	tr.RunStart(0)
	done := e.Automaton.Done()
	// waitCtx unblocks WaitNewer when the automaton finishes on its own
	// (clean precise completion or stage failure), not only on client
	// disconnect.
	waitCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		select {
		case <-done:
			cancel()
		case <-waitCtx.Done():
		}
	}()
	var last core.Version
	for {
		snap, err := e.Out.WaitNewer(waitCtx, last)
		if err != nil {
			e.Automaton.Stop()
			if ctx.Err() != nil {
				return runFail[T](tr, region, ctx.Err())
			}
			// The automaton finished while we waited: deliver its terminal
			// output, or its failure.
			if err := e.Automaton.Err(); err != nil && !errors.Is(err, core.ErrStopped) {
				return runFail[T](tr, region, err)
			}
			final, ok := e.Out.Latest()
			if !ok {
				return runFail[T](tr, region, ErrNoOutput)
			}
			return deliverTraced(h, tr, region, e.Automaton, final, false, start), nil
		}
		last = snap.Version
		if snap.Final || accept(snap) {
			e.Automaton.Stop()
			return deliverTraced(h, tr, region, e.Automaton, snap, !snap.Final, start), nil
		}
	}
}

// waitFirst blocks for the buffer's first published version, giving up if
// the client disconnects or the automaton dies without publishing.
func waitFirst[T any](ctx context.Context, e Entry[T], done <-chan struct{}) (core.Snapshot[T], error) {
	waitCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		select {
		case <-done:
			cancel()
		case <-waitCtx.Done():
		}
	}()
	snap, err := e.Out.WaitNewer(waitCtx, 0)
	if err == nil {
		return snap, nil
	}
	if ctx.Err() != nil {
		return core.Snapshot[T]{}, ctx.Err()
	}
	// Automaton finished: it either published on its way out or failed.
	if snap, ok := e.Out.Peek(); ok {
		return snap, nil
	}
	if aerr := e.Automaton.Err(); aerr != nil && !errors.Is(aerr, core.ErrStopped) {
		return core.Snapshot[T]{}, aerr
	}
	return core.Snapshot[T]{}, ErrNoOutput
}

func deliverTraced[T any](h *Hooks, tr *reqtrace.Trace, region *rtrace.Region, a *core.Automaton, snap core.Snapshot[T], interrupted bool, start time.Time) Result[T] {
	res := Result[T]{Snapshot: snap, Interrupted: interrupted, Elapsed: time.Since(start)}
	if h != nil && h.Deliver != nil {
		h.Deliver(interrupted, snap.Final, res.Elapsed)
	}
	if region != nil {
		region.End()
	}
	tr.RunFinish(runOutcome(a.Err()), res.Elapsed)
	return res
}
