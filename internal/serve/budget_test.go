package serve

import (
	"context"
	"testing"
	"time"
)

func TestParseBudget(t *testing.T) {
	for _, tc := range []struct {
		name   string
		header string
		want   time.Duration
		wantOK bool
		errs   bool
	}{
		{name: "absent", header: "", want: 0, wantOK: false},
		{name: "typical", header: "35ms", want: 35 * time.Millisecond, wantOK: true},
		{name: "zero means exhausted", header: "0s", want: 0, wantOK: true},
		{name: "negative accepted as exhausted", header: "-5ms", want: -5 * time.Millisecond, wantOK: true},
		{name: "sub-millisecond", header: "250µs", want: 250 * time.Microsecond, wantOK: true},
		{name: "garbage", header: "35 milliseconds", errs: true},
		{name: "bare number", header: "35", errs: true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, ok, err := ParseBudget(tc.header)
			if tc.errs {
				if err == nil {
					t.Fatalf("ParseBudget(%q) accepted", tc.header)
				}
				return
			}
			if err != nil || got != tc.want || ok != tc.wantOK {
				t.Fatalf("ParseBudget(%q) = (%v, %v, %v), want (%v, %v)", tc.header, got, ok, err, tc.want, tc.wantOK)
			}
		})
	}
}

func TestFormatBudgetRoundTripsAndClamps(t *testing.T) {
	for _, d := range []time.Duration{time.Nanosecond, time.Millisecond, 35 * time.Millisecond, 2 * time.Second} {
		got, ok, err := ParseBudget(FormatBudget(d))
		if err != nil || !ok || got != d {
			t.Errorf("round trip %v -> %q -> (%v, %v, %v)", d, FormatBudget(d), got, ok, err)
		}
	}
	// Negative budgets are clamped on the wire: the receiver sees "spent".
	got, ok, err := ParseBudget(FormatBudget(-time.Second))
	if err != nil || !ok || got != 0 {
		t.Errorf("negative budget formatted as %q, parsed (%v, %v, %v)", FormatBudget(-time.Second), got, ok, err)
	}
}

// TestApplyBudget is the backend half of the budget arithmetic: the budget
// caps the deadline, never raises it, and an exhausted budget degrades to
// the minimum best-effort contract instead of rejecting.
func TestApplyBudget(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	for _, tc := range []struct {
		name             string
		deadline, budget time.Duration
		ok               bool
		want             time.Duration
		wantBudgeted     bool
	}{
		{name: "budget caps", deadline: ms(100), budget: ms(40), ok: true, want: ms(40), wantBudgeted: true},
		{name: "budget above deadline ignored", deadline: ms(100), budget: ms(200), ok: true, want: ms(100)},
		{name: "budget equal to deadline ignored", deadline: ms(100), budget: ms(100), ok: true, want: ms(100)},
		{name: "no header", deadline: ms(100), ok: false, want: ms(100)},
		{name: "exhausted floors to best-effort", deadline: ms(100), budget: 0, ok: true, want: time.Nanosecond, wantBudgeted: true},
		{name: "negative floors to best-effort", deadline: ms(100), budget: -ms(5), ok: true, want: time.Nanosecond, wantBudgeted: true},
		{name: "precise never budgeted", deadline: 0, budget: ms(40), ok: true, want: 0},
		{name: "hold-style negative deadline untouched", deadline: -1, budget: ms(40), ok: true, want: -1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, budgeted := ApplyBudget(tc.deadline, tc.budget, tc.ok)
			if got != tc.want || budgeted != tc.wantBudgeted {
				t.Fatalf("ApplyBudget(%v, %v, %v) = (%v, %v), want (%v, %v)",
					tc.deadline, tc.budget, tc.ok, got, budgeted, tc.want, tc.wantBudgeted)
			}
		})
	}
}

// TestControllerKneeBoundaries pins the documented boundary semantics
// (docs/OPERATIONS.md "worked example"): depth exactly at ShedStart is
// still served at factor 1 — shedding engages strictly above the knee —
// and depth exactly at ShedFull saturates at MinFactor.
func TestControllerKneeBoundaries(t *testing.T) {
	c := Controller{ShedStart: 8, ShedFull: 32, MinFactor: 0.25}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := c.Factor(8); got != 1 {
		t.Errorf("Factor(ShedStart) = %v, want exactly 1 (knee is served unshed)", got)
	}
	if got := c.Factor(9); got >= 1 {
		t.Errorf("Factor(ShedStart+1) = %v, want < 1 (shedding engages strictly above the knee)", got)
	}
	if got := c.Factor(32); got != 0.25 {
		t.Errorf("Factor(ShedFull) = %v, want MinFactor", got)
	}
	if got := c.Factor(31); got <= 0.25 || got >= 1 {
		t.Errorf("Factor(ShedFull-1) = %v, want inside (MinFactor, 1)", got)
	}
	if got := c.Factor(1000); got != 0.25 {
		t.Errorf("Factor(beyond full) = %v, want MinFactor", got)
	}
}

// TestControllerScaleFactorOneIsInvisible: at factor exactly 1 Scale must
// return the deadline untouched AND stay silent — no Shed hook, no trace
// event. A spurious hook at the knee would inflate the shed metrics on
// every request that merely grazed the queue.
func TestControllerScaleFactorOneIsInvisible(t *testing.T) {
	fired := 0
	c := Controller{ShedStart: 8, ShedFull: 32, MinFactor: 0.25, H: &Hooks{Shed: func(float64) { fired++ }}}
	d := 100 * time.Millisecond
	if got := c.Scale(context.Background(), d, 8); got != d {
		t.Fatalf("Scale at the knee = %v, want %v unchanged", got, d)
	}
	if got := c.Scale(context.Background(), d, 0); got != d {
		t.Fatalf("Scale at empty queue = %v, want %v", got, d)
	}
	if fired != 0 {
		t.Fatalf("Shed hook fired %d times at factor 1", fired)
	}
	if got := c.Scale(context.Background(), d, 9); got >= d || fired != 1 {
		t.Fatalf("Scale above the knee = %v (hook %d), want scaled-down and one hook", got, fired)
	}
}
