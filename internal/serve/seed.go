package serve

import (
	"context"

	"anytime/internal/core"
	"anytime/internal/reqtrace"
	"anytime/internal/snapcache"
)

// Warm starts. The serving tier keeps a content-addressed cache of
// delivered snapshots (internal/snapcache); a request whose input digest
// hits the cache seeds its pooled automaton with the cached approximation
// before Start, so the deadline budget is spent purely on refinement. The
// helpers here are the pool-integrated glue: SeedFromCache between
// Pool.Get and Run, Admit after the response is delivered — both nil-safe
// so a daemon with caching disabled pays only a pointer check.

// SeedFromCache looks up key and, on a hit, seeds the entry's automaton
// with the cached value at its cached version. It returns the cache entry
// (for response headers: seed version, cached SNR) and whether the
// automaton was actually seeded. A hit that the automaton cannot apply
// (no OnSeed hook, payload mismatch) falls back to a cold start: the
// automaton is Reset to shed any partially applied seed and the request
// proceeds as a miss. A nil cache is a miss without the lookup.
func SeedFromCache[T any](ctx context.Context, e Entry[T], c *snapcache.Cache[T], key snapcache.Key) (snapcache.Entry[T], bool) {
	var zero snapcache.Entry[T]
	if c == nil {
		return zero, false
	}
	tr := reqtrace.FromContext(ctx)
	ce, ok := c.Get(key)
	if !ok {
		tr.CacheMiss(key.Digest)
		return zero, false
	}
	tr.CacheHit(key.Digest, uint64(ce.Version), false)
	if !Seed(ctx, e, ce.Value, ce.Version) {
		return zero, false
	}
	return ce, true
}

// Seed installs payload as the entry's starting published state at the
// given version, reporting success. The delta-start path calls it directly
// with a pix.SeedFrame built from a sibling cache entry; the plain warm
// start goes through SeedFromCache. On failure the automaton is Reset
// (a partially applied seed must never start) and the caller should run
// cold.
func Seed[T any](ctx context.Context, e Entry[T], payload any, version core.Version) bool {
	tr := reqtrace.FromContext(ctx)
	if err := e.Automaton.SeedFrom(payload, version); err != nil {
		tr.Error("seed: " + err.Error())
		if rerr := e.Automaton.Reset(); rerr != nil {
			tr.Error("seed reset: " + rerr.Error())
		}
		return false
	}
	tr.CacheSeed(e.Out.Name(), uint64(version))
	return true
}

// Admit offers a delivered snapshot to the cache on the way out of a
// request, reporting whether it was admitted. The cache's own admission
// rules apply (never replace a newer version, size bounds); a nil cache,
// an unpublished result, and a zero-version snapshot are all quiet no-ops.
// Callers should admit after the response is written — admission
// serializes on the cache's writer lock and has no business on the
// request's critical path.
func Admit[T any](c *snapcache.Cache[T], key snapcache.Key, res Result[T], snrDB float64) bool {
	if c == nil || res.Snapshot.Version == 0 {
		return false
	}
	return c.Put(key, snapcache.Entry[T]{
		Value:   res.Snapshot.Value,
		Version: res.Snapshot.Version,
		SNRdB:   snrDB,
	})
}
