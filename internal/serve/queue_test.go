package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestQueueValidation(t *testing.T) {
	if _, err := NewQueue(0, 1, nil); err == nil {
		t.Fatal("slots 0 accepted")
	}
	if _, err := NewQueue(1, -1, nil); err == nil {
		t.Fatal("negative waiters accepted")
	}
}

func TestQueueFastPath(t *testing.T) {
	q, err := NewQueue(2, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := q.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := q.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if q.Running() != 2 {
		t.Fatalf("running = %d, want 2", q.Running())
	}
	// waiters == 0: a third request is rejected immediately.
	if err := q.Acquire(ctx); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third acquire: %v, want ErrQueueFull", err)
	}
	q.Release()
	if err := q.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	q.Release()
	q.Release()
	if q.Running() != 0 {
		t.Fatalf("running = %d, want 0", q.Running())
	}
}

// TestQueueFIFOUnderSaturation is the regression test for the semaphore
// bug this queue replaces: with every slot busy, a burst of waiters must
// be granted slots strictly in arrival order — a bare channel semaphore
// wakes them in whatever order the scheduler picks.
func TestQueueFIFOUnderSaturation(t *testing.T) {
	const waiters = 16
	ctx := context.Background()
	// Enqueue waiters one at a time, recording arrival order. Acquire
	// inserts into the wait list before returning control via the hook, so
	// sequential Acquire calls from distinct goroutines have a defined
	// arrival order once each goroutine reports it has enqueued.
	enqueued := make(chan int)
	granted := make(chan int, waiters)
	var wg sync.WaitGroup
	hq, err := NewQueue(1, waiters, &Hooks{
		QueueEnqueue: func(int) { enqueued <- 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := hq.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := hq.Acquire(ctx); err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			granted <- i
			hq.Release()
		}(i)
		<-enqueued // waiter i is in line before waiter i+1 starts
	}
	hq.Release() // start the cascade
	wg.Wait()
	close(granted)
	want := 0
	for got := range granted {
		if got != want {
			t.Fatalf("grant order violated: got waiter %d, want %d", got, want)
		}
		want++
	}
	if want != waiters {
		t.Fatalf("granted %d waiters, want %d", want, waiters)
	}
}

func TestQueueRejectsBeyondWaitBound(t *testing.T) {
	ctx := context.Background()
	entered := make(chan struct{}, 2)
	hooked, err := NewQueue(1, 2, &Hooks{QueueEnqueue: func(int) { entered <- struct{}{} }})
	if err != nil {
		t.Fatal(err)
	}
	if err := hooked.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := hooked.Acquire(ctx); err != nil {
				t.Error(err)
				return
			}
			<-release
			hooked.Release()
		}()
		<-entered
	}
	if hooked.Depth() != 2 {
		t.Fatalf("depth = %d, want 2", hooked.Depth())
	}
	if err := hooked.Acquire(ctx); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-bound acquire: %v, want ErrQueueFull", err)
	}
	hooked.Release()
	close(release)
	wg.Wait()
}

func TestQueueCancelledWaiterLeavesLine(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	entered := make(chan struct{})
	q2, err := NewQueue(1, 4, &Hooks{QueueEnqueue: func(int) { close(entered) }})
	if err != nil {
		t.Fatal(err)
	}
	if err := q2.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	go func() { errc <- q2.Acquire(ctx) }()
	<-entered
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: %v", err)
	}
	if q2.Depth() != 0 {
		t.Fatalf("depth = %d after cancellation, want 0", q2.Depth())
	}
	// The slot is still intact: release it and the next acquire succeeds
	// without waiting.
	q2.Release()
	if err := q2.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestQueueAcquireHookReportsWait(t *testing.T) {
	var mu sync.Mutex
	var waits []time.Duration
	q, err := NewQueue(1, 1, &Hooks{QueueAcquire: func(w time.Duration) {
		mu.Lock()
		waits = append(waits, w)
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := q.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := q.Acquire(ctx); err != nil {
			t.Error(err)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	q.Release()
	<-done
	mu.Lock()
	defer mu.Unlock()
	if len(waits) != 2 {
		t.Fatalf("hook fired %d times, want 2", len(waits))
	}
	if waits[0] != 0 {
		t.Fatalf("fast-path wait = %v, want 0", waits[0])
	}
	if waits[1] <= 0 {
		t.Fatalf("contended wait = %v, want > 0", waits[1])
	}
}
