package serve

import (
	"fmt"
	"time"
)

// BudgetHeader is the header a routing tier uses to hand a backend the
// remaining deadline budget for a request: the client's original deadline
// minus the time already spent upstream (router queue wait) and the
// expected cost of reaching this backend (observed RTT). The backend
// treats the budget as a ceiling on the deadline it grants — the
// distributed analogue of the Controller's shed factor, except the
// shrinking happened before the request arrived.
//
// The value is a Go duration string ("37ms"). A zero or negative budget
// means the upstream has already spent the whole deadline: the backend
// should deliver the first snapshot it can produce, immediately — the
// anytime contract still forbids returning empty-handed.
const BudgetHeader = "X-Anytime-Budget"

// minBudget is the effective deadline granted to a request whose budget
// reached zero upstream: just enough to enter the deadline>0 path of Run,
// which fires immediately and delivers the first published snapshot. The
// request still never returns empty-handed; it just does the minimum work.
const minBudget = time.Nanosecond

// ParseBudget parses a BudgetHeader value. ok reports whether a budget was
// present at all; an unparsable value is an error (the router and backend
// disagreeing about the wire format is a config bug worth surfacing, not
// masking).
func ParseBudget(header string) (budget time.Duration, ok bool, err error) {
	if header == "" {
		return 0, false, nil
	}
	d, err := time.ParseDuration(header)
	if err != nil {
		return 0, false, fmt.Errorf("serve: bad %s %q: %v", BudgetHeader, header, err)
	}
	return d, true, nil
}

// FormatBudget renders a budget for the BudgetHeader. Budgets that went
// negative upstream are clamped to "0s" on the wire: how far past zero the
// router was is its own diagnostic, not the backend's instruction.
func FormatBudget(budget time.Duration) string {
	if budget < 0 {
		budget = 0
	}
	return budget.String()
}

// ApplyBudget folds a propagated budget into a request's deadline,
// returning the deadline the backend should actually grant (before any
// local shedding via Controller.Scale):
//
//   - deadline <= 0 (precise request): never budgeted. Precision is an
//     explicit contract; a router must bound such requests with admission
//     control, not by silently converting them to approximations.
//   - no budget present: the deadline stands.
//   - budget >= deadline: the deadline stands (the budget only shrinks).
//   - 0 < budget < deadline: the budget is the new deadline.
//   - budget <= 0: the upstream spent everything; grant the minimal
//     positive deadline so the run delivers its first snapshot and stops.
//
// budgeted reports whether the budget actually tightened the deadline —
// the signal telemetry and traces record.
func ApplyBudget(deadline, budget time.Duration, ok bool) (effective time.Duration, budgeted bool) {
	if deadline <= 0 || !ok || budget >= deadline {
		return deadline, false
	}
	if budget <= 0 {
		return minBudget, true
	}
	return budget, true
}
