package serve

import (
	"context"
	"sync"
	"testing"

	"anytime/internal/core"
)

// countingEntry builds a trivial one-stage automaton publishing 1, 2, 3
// and counts constructions, standing in for an expensive app pipeline.
func countingBuilder(builds *int) func() (Entry[int], error) {
	return func() (Entry[int], error) {
		*builds++
		out := core.NewBuffer[int]("pool-test", nil)
		a := core.New()
		err := a.AddStage("count", func(c *core.Context) error {
			for i := 1; i <= 3; i++ {
				if err := c.Checkpoint(); err != nil {
					return err
				}
				if _, err := out.Publish(i, i == 3); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return Entry[int]{}, err
		}
		a.OnReset(out.Reset)
		return Entry[int]{Automaton: a, Out: out}, nil
	}
}

func TestPoolValidation(t *testing.T) {
	build := countingBuilder(new(int))
	if _, err := NewPool("p", 0, build, nil); err == nil {
		t.Fatal("capacity 0 accepted")
	}
	if _, err := NewPool[int]("p", 1, nil, nil); err == nil {
		t.Fatal("nil build accepted")
	}
}

func TestPoolReuseAmortizesConstruction(t *testing.T) {
	builds := 0
	var events []bool
	p, err := NewPool("p", 2, countingBuilder(&builds), &Hooks{
		PoolGet: func(pool string, warm bool) { events = append(events, warm) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for cycle := 0; cycle < 5; cycle++ {
		e, err := p.Get(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(context.Background(), e, 0, nil)
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if res.Snapshot.Value != 3 || !res.Snapshot.Final || res.Interrupted {
			t.Fatalf("cycle %d: result %+v", cycle, res)
		}
		if err := p.Put(e); err != nil {
			t.Fatalf("cycle %d: put: %v", cycle, err)
		}
	}
	if builds != 1 {
		t.Fatalf("built %d automata across 5 sequential requests, want 1", builds)
	}
	if len(events) != 5 || events[0] || !events[4] {
		t.Fatalf("PoolGet warm events = %v", events)
	}
	if p.Idle() != 1 {
		t.Fatalf("idle = %d, want 1", p.Idle())
	}
}

func TestPoolWarmPrebuilds(t *testing.T) {
	builds := 0
	p, err := NewPool("p", 3, countingBuilder(&builds), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Warm(2); err != nil {
		t.Fatal(err)
	}
	if builds != 2 || p.Idle() != 2 {
		t.Fatalf("warm built %d, idle %d; want 2, 2", builds, p.Idle())
	}
	// Warm clamps at capacity.
	if err := p.Warm(10); err != nil {
		t.Fatal(err)
	}
	if builds != 3 || p.Idle() != 3 {
		t.Fatalf("warm built %d, idle %d; want 3, 3", builds, p.Idle())
	}
	e, err := p.Get(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if builds != 3 {
		t.Fatalf("warm pool built fresh on Get (builds = %d)", builds)
	}
	if err := p.Put(e); err != nil {
		t.Fatal(err)
	}
}

func TestPoolDiscardsBeyondCapacity(t *testing.T) {
	builds := 0
	var retained []bool
	p, err := NewPool("p", 1, countingBuilder(&builds), &Hooks{
		PoolPut: func(pool string, kept bool) { retained = append(retained, kept) },
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Get(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Get(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Put(a); err != nil {
		t.Fatal(err)
	}
	if err := p.Put(b); err != nil {
		t.Fatal(err)
	}
	if p.Idle() != 1 {
		t.Fatalf("idle = %d, want 1", p.Idle())
	}
	if len(retained) != 2 || !retained[0] || retained[1] {
		t.Fatalf("PoolPut retained events = %v, want [true false]", retained)
	}
}

func TestPoolPutRunningAutomatonFails(t *testing.T) {
	block := make(chan struct{})
	p, err := NewPool("p", 1, func() (Entry[int], error) {
		out := core.NewBuffer[int]("hang", nil)
		a := core.New()
		if err := a.AddStage("hang", func(c *core.Context) error {
			<-block
			return nil
		}); err != nil {
			return Entry[int]{}, err
		}
		return Entry[int]{Automaton: a, Out: out}, nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	e, err := p.Get(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Automaton.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := p.Put(e); err == nil {
		t.Fatal("Put of a running automaton succeeded")
	}
	if p.Idle() != 0 {
		t.Fatalf("running automaton retained (idle = %d)", p.Idle())
	}
	close(block)
	if err := e.Automaton.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestPoolConcurrentCheckouts: concurrent Get/Run/Put cycles must never
// hand the same entry to two requests at once. The automaton's own
// already-started error would fire if they did; the race detector covers
// the rest.
func TestPoolConcurrentCheckouts(t *testing.T) {
	builds := 0
	var mu sync.Mutex
	build := countingBuilder(&builds)
	p, err := NewPool("p", 4, func() (Entry[int], error) {
		mu.Lock()
		defer mu.Unlock()
		return build()
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				e, err := p.Get(context.Background())
				if err != nil {
					t.Error(err)
					return
				}
				res, err := Run(context.Background(), e, 0, nil)
				if err != nil || !res.Snapshot.Final {
					t.Errorf("run: %+v, %v", res, err)
					return
				}
				if err := p.Put(e); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
