package serve

import (
	"context"
	"testing"

	"anytime/internal/core"
	"anytime/internal/snapcache"
)

// seedEntry builds a one-stage entry whose automaton publishes rounds
// values and supports seeding its output buffer.
func seedEntry(t *testing.T, rounds int) Entry[int] {
	t.Helper()
	out := core.NewBuffer[int]("out", nil)
	a := core.New()
	if err := a.AddStage("count", func(c *core.Context) error {
		for i := 1; i <= rounds; i++ {
			if err := c.Checkpoint(); err != nil {
				return err
			}
			if _, err := out.Publish(i, i == rounds); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	a.OnReset(out.Reset)
	a.OnSeed(func(seed any, v core.Version) error {
		val, ok := seed.(int)
		if !ok {
			return core.ErrNoSeedSupport
		}
		return out.Seed(val, v)
	})
	return Entry[int]{Automaton: a, Out: out}
}

func intCache(t *testing.T) *snapcache.Cache[int] {
	t.Helper()
	c, err := snapcache.New(snapcache.Config[int]{SizeOf: func(int) int { return 8 }})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSeedFromCacheMissThenAdmitThenHit(t *testing.T) {
	c := intCache(t)
	key := snapcache.Key{App: "count", Digest: "d1", Epoch: 1}
	ctx := context.Background()

	// Cold request: miss, run, admit the delivered snapshot.
	e := seedEntry(t, 3)
	if _, ok := SeedFromCache(ctx, e, c, key); ok {
		t.Fatal("hit on empty cache")
	}
	res, err := Run(ctx, e, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !Admit(c, key, res, 12.5) {
		t.Fatal("delivered snapshot not admitted")
	}

	// Warm request: hit, seed, publishes continue past the seed.
	e2 := seedEntry(t, 2)
	ce, ok := SeedFromCache(ctx, e2, c, key)
	if !ok {
		t.Fatal("warm request missed")
	}
	if ce.Version != 3 || ce.SNRdB != 12.5 {
		t.Fatalf("cache entry = %+v", ce)
	}
	s, ok := e2.Out.Peek()
	if !ok || s.Version != 3 || s.Value != 3 {
		t.Fatalf("seeded buffer = %+v, %v", s, ok)
	}
	res2, err := Run(ctx, e2, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Snapshot.Version != 5 || !res2.Snapshot.Final {
		t.Fatalf("seeded run final = %+v, want version 5 (seed 3 + 2 publishes)", res2.Snapshot)
	}
}

func TestSeedFromCacheFallsBackWithoutSeedSupport(t *testing.T) {
	c := intCache(t)
	key := snapcache.Key{App: "count", Digest: "d1", Epoch: 1}
	c.Put(key, snapcache.Entry[int]{Value: 7, Version: 4})

	// An entry without an OnSeed hook must fall back to a cold start and
	// still be runnable afterwards.
	out := core.NewBuffer[int]("out", nil)
	a := core.New()
	if err := a.AddStage("one", func(cx *core.Context) error {
		_, err := out.Publish(1, true)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	a.OnReset(out.Reset)
	e := Entry[int]{Automaton: a, Out: out}
	if _, ok := SeedFromCache(context.Background(), e, c, key); ok {
		t.Fatal("seeded an automaton with no seed hook")
	}
	res, err := Run(context.Background(), e, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshot.Version != 1 {
		t.Fatalf("cold fallback delivered %+v", res.Snapshot)
	}
}

func TestSeedFromCacheNilCache(t *testing.T) {
	e := seedEntry(t, 1)
	if _, ok := SeedFromCache(context.Background(), e, nil, snapcache.Key{}); ok {
		t.Fatal("nil cache produced a hit")
	}
	if Admit[int](nil, snapcache.Key{}, Result[int]{}, 0) {
		t.Fatal("nil cache admitted")
	}
}

func TestAdmitSkipsEmptyResult(t *testing.T) {
	c := intCache(t)
	if Admit(c, snapcache.Key{App: "a"}, Result[int]{}, 0) {
		t.Fatal("empty result admitted")
	}
	if c.Len() != 0 {
		t.Fatal("cache grew")
	}
}

func TestPooledSeedAcrossCheckouts(t *testing.T) {
	// A pooled entry: cold request admits, the next checkout of the same
	// (Reset) entry seeds from the cache.
	c := intCache(t)
	key := snapcache.Key{App: "count", Digest: "d", Epoch: 1}
	entry := seedEntry(t, 2)
	pool, err := NewPool("count", 1, func() (Entry[int], error) { return entry, nil }, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	e, err := pool.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := SeedFromCache(ctx, e, c, key); ok {
		t.Fatal("first checkout hit")
	}
	res, err := Run(ctx, e, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	Admit(c, key, res, 1)
	if err := pool.Put(e); err != nil {
		t.Fatal(err)
	}

	e, err = pool.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Idle() != 0 {
		t.Fatal("pool did not hand back the idle entry")
	}
	if _, ok := SeedFromCache(ctx, e, c, key); !ok {
		t.Fatal("second checkout missed")
	}
	res, err = Run(ctx, e, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshot.Version != 4 {
		t.Fatalf("pooled warm final = %+v, want version 4", res.Snapshot)
	}
	if err := pool.Put(e); err != nil {
		t.Fatal(err)
	}
}
