package serve

import "time"

// Hooks is the package's observer interface: optional callbacks invoked at
// the serving runtime's decision points. A nil *Hooks (or any nil field)
// costs one pointer check; internal/telemetry.ServeHooks returns a Hooks
// that reports into the process metrics registry.
//
// Callbacks run synchronously on the serving goroutine that triggered them
// and must not block.
type Hooks struct {
	// PoolGet runs after a pool checkout. warm reports whether the entry
	// came from the idle set (true) or had to be built fresh (false).
	PoolGet func(pool string, warm bool)
	// PoolPut runs after a pool check-in. retained reports whether the
	// entry went back to the idle set (false means it was discarded — the
	// pool was full or the reset failed).
	PoolPut func(pool string, retained bool)
	// QueueEnqueue runs when a request starts waiting for an execution
	// slot, with the queue depth including it.
	QueueEnqueue func(depth int)
	// QueueAcquire runs when a request obtains an execution slot, with the
	// time it spent waiting (zero on the uncontended fast path).
	QueueAcquire func(wait time.Duration)
	// QueueReject runs when admission control turns a request away because
	// the wait queue is full.
	QueueReject func()
	// Shed runs when the load controller scales a request's contract, with
	// the factor applied (1 means no shedding).
	Shed func(factor float64)
	// Deliver runs when a request's snapshot is delivered. interrupted
	// reports an early stop (deadline fired or acceptance met before the
	// precise output); final reports whether the delivered snapshot is the
	// precise output.
	Deliver func(interrupted, final bool, elapsed time.Duration)
}
