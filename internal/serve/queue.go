package serve

import (
	"context"
	"errors"
	"fmt"
	rtrace "runtime/trace"
	"sync"
	"time"

	"anytime/internal/reqtrace"
)

// ErrQueueFull is returned by Queue.Acquire when the wait queue is at
// capacity: admission control has decided this request should be turned
// away now rather than queued indefinitely.
var ErrQueueFull = errors.New("serve: admission queue full")

// Queue is a FIFO-fair bounded admission queue: at most slots requests run
// concurrently, at most waiters more may wait for a slot, and slots are
// granted strictly in arrival order. It replaces the bare semaphore
// pattern (select on a channel), which under burst wakes waiters in
// arbitrary order and queues them without bound — a late-arriving request
// could starve an early one indefinitely while both held client
// connections open.
//
// A freed slot is handed directly to the oldest waiter rather than
// returned to a free count, so FIFO ordering holds even under contention.
type Queue struct {
	slots      int
	maxWaiters int
	h          *Hooks

	mu      sync.Mutex
	free    int
	running int
	waiters []chan struct{} // arrival order; closed to grant a slot
}

// NewQueue returns a queue with the given concurrency slots and wait-queue
// bound. waiters may be zero: then any request arriving while all slots
// are busy is rejected immediately.
func NewQueue(slots, waiters int, h *Hooks) (*Queue, error) {
	if slots < 1 {
		return nil, fmt.Errorf("serve: queue slots %d must be positive", slots)
	}
	if waiters < 0 {
		return nil, fmt.Errorf("serve: queue waiters %d must not be negative", waiters)
	}
	return &Queue{slots: slots, maxWaiters: waiters, h: h, free: slots}, nil
}

// Acquire obtains an execution slot, waiting in FIFO order behind earlier
// requests. It returns ErrQueueFull if the wait queue is at capacity and
// ctx.Err() if the context is cancelled while waiting (the request's place
// in line is given up).
//
// A request trace bound into ctx (reqtrace.New) records the admission
// decision — enter/grant with the wait time, or reject — and, when the Go
// execution tracer is running, the contended wait becomes an
// "anytime.queue" region of the request's task.
func (q *Queue) Acquire(ctx context.Context) error {
	tr := reqtrace.FromContext(ctx)
	q.mu.Lock()
	if q.free > 0 && len(q.waiters) == 0 {
		q.free--
		q.running++
		q.mu.Unlock()
		if q.h != nil && q.h.QueueAcquire != nil {
			q.h.QueueAcquire(0)
		}
		tr.QueueGrant(0)
		return nil
	}
	if len(q.waiters) >= q.maxWaiters {
		q.mu.Unlock()
		if q.h != nil && q.h.QueueReject != nil {
			q.h.QueueReject()
		}
		tr.QueueReject(q.maxWaiters)
		return ErrQueueFull
	}
	grant := make(chan struct{})
	q.waiters = append(q.waiters, grant)
	depth := len(q.waiters)
	q.mu.Unlock()
	if q.h != nil && q.h.QueueEnqueue != nil {
		q.h.QueueEnqueue(depth)
	}
	tr.QueueEnter(depth)
	var region *rtrace.Region
	if tr != nil {
		region = rtrace.StartRegion(ctx, "anytime.queue")
	}
	start := time.Now()
	select {
	case <-grant:
		if region != nil {
			region.End()
		}
		wait := time.Since(start)
		if q.h != nil && q.h.QueueAcquire != nil {
			q.h.QueueAcquire(wait)
		}
		tr.QueueGrant(wait)
		return nil
	case <-ctx.Done():
		if region != nil {
			region.End()
		}
		q.mu.Lock()
		for i, w := range q.waiters {
			if w == grant {
				q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
				q.mu.Unlock()
				return ctx.Err()
			}
		}
		q.mu.Unlock()
		// Release raced us: the slot was already granted (grant is closed).
		// We own it and must hand it on.
		q.Release()
		return ctx.Err()
	}
}

// Release frees the caller's slot, handing it directly to the oldest
// waiter if any.
func (q *Queue) Release() {
	q.mu.Lock()
	if len(q.waiters) > 0 {
		grant := q.waiters[0]
		q.waiters = q.waiters[1:]
		q.mu.Unlock()
		close(grant)
		return
	}
	q.running--
	q.free++
	q.mu.Unlock()
}

// Depth reports the number of requests currently waiting for a slot — the
// load signal the Controller feeds on.
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.waiters)
}

// Running reports the number of slots currently held.
func (q *Queue) Running() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.running
}

// Slots reports the queue's concurrency bound.
func (q *Queue) Slots() int { return q.slots }
