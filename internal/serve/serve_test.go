package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"anytime/internal/core"
)

// pacedEntry builds an automaton publishing versions 1..n, blocking on
// step between publishes so tests control exactly how far it gets.
func pacedEntry(n int) (Entry[int], chan struct{}) {
	step := make(chan struct{})
	out := core.NewBuffer[int]("paced", nil)
	a := core.New()
	_ = a.AddStage("paced", func(c *core.Context) error {
		for i := 1; i <= n; i++ {
			select {
			case <-step:
			case <-c.Context().Done():
				return core.ErrStopped
			}
			if err := c.Checkpoint(); err != nil {
				return err
			}
			if _, err := out.Publish(i, i == n); err != nil {
				return err
			}
		}
		return nil
	})
	a.OnReset(out.Reset)
	return Entry[int]{Automaton: a, Out: out}, step
}

func TestRunPreciseNoDeadline(t *testing.T) {
	e, step := pacedEntry(3)
	close(step) // free-running
	var delivered []bool
	h := &Hooks{Deliver: func(interrupted, final bool, _ time.Duration) {
		delivered = append(delivered, interrupted, final)
	}}
	res, err := Run(context.Background(), e, 0, h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshot.Value != 3 || !res.Snapshot.Final || res.Interrupted {
		t.Fatalf("result %+v, want final value 3", res)
	}
	if len(delivered) != 2 || delivered[0] || !delivered[1] {
		t.Fatalf("Deliver hook saw %v, want [false true]", delivered)
	}
}

func TestRunDeadlineDeliversBestApproximation(t *testing.T) {
	e, step := pacedEntry(3)
	// Allow exactly one publish, then stall: the deadline must fire and
	// deliver version 1 rather than erroring or waiting for precision.
	go func() { step <- struct{}{} }()
	res, err := Run(context.Background(), e, 30*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshot.Version != 1 || res.Snapshot.Final {
		t.Fatalf("snapshot %+v, want non-final version 1", res.Snapshot)
	}
	if !res.Interrupted {
		t.Fatal("deadline fire not reported as interruption")
	}
}

func TestRunDeadlineWaitsForFirstPublish(t *testing.T) {
	e, step := pacedEntry(2)
	// Nothing published when the deadline fires; Run must hold on for the
	// first version instead of failing.
	go func() {
		time.Sleep(40 * time.Millisecond)
		step <- struct{}{}
	}()
	res, err := Run(context.Background(), e, 5*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshot.Version != 1 || !res.Interrupted {
		t.Fatalf("result %+v, want interrupted version 1", res)
	}
}

func TestRunFinishBeforeDeadlineIsPrecise(t *testing.T) {
	e, step := pacedEntry(2)
	close(step)
	res, err := Run(context.Background(), e, time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Snapshot.Final || res.Interrupted {
		t.Fatalf("result %+v, want precise uninterrupted", res)
	}
}

func TestRunClientDisconnect(t *testing.T) {
	e, _ := pacedEntry(2) // never steps: stalls before first publish
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := Run(ctx, e, time.Hour, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("disconnected run: %v, want context.Canceled", err)
	}
	// The automaton was stopped, so the entry is poolable again.
	if err := e.Automaton.Reset(); err != nil {
		t.Fatal(err)
	}
}

func TestRunStageFailurePropagates(t *testing.T) {
	out := core.NewBuffer[int]("fail", nil)
	a := core.New()
	if err := a.AddStage("fail", func(c *core.Context) error {
		return errors.New("boom")
	}); err != nil {
		t.Fatal(err)
	}
	e := Entry[int]{Automaton: a, Out: out}
	if _, err := Run(context.Background(), e, 0, nil); err == nil || errors.Is(err, core.ErrStopped) {
		t.Fatalf("stage failure surfaced as %v", err)
	}
}

func TestRunUntilAcceptsEarlySnapshot(t *testing.T) {
	e, step := pacedEntry(5)
	close(step)
	res, err := RunUntil(context.Background(), e, func(s core.Snapshot[int]) bool {
		return s.Value >= 2
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshot.Value < 2 || !res.Interrupted && !res.Snapshot.Final {
		t.Fatalf("result %+v, want accepted snapshot ≥ 2", res)
	}
	// Reusable afterwards: no observers were registered on the pooled
	// buffer, so a second request repeats the cycle identically.
	if err := e.Automaton.Reset(); err != nil {
		t.Fatal(err)
	}
	res2, err := RunUntil(context.Background(), e, func(s core.Snapshot[int]) bool {
		return s.Value >= 2
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Snapshot.Value < 2 {
		t.Fatalf("second cycle result %+v", res2)
	}
}

func TestRunUntilNeverAcceptedRunsToPrecision(t *testing.T) {
	e, step := pacedEntry(3)
	close(step)
	res, err := RunUntil(context.Background(), e, func(core.Snapshot[int]) bool { return false }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Snapshot.Final || res.Snapshot.Value != 3 || res.Interrupted {
		t.Fatalf("result %+v, want precise value 3", res)
	}
}

func TestRunUntilNilPredicate(t *testing.T) {
	e, step := pacedEntry(1)
	close(step)
	if _, err := RunUntil(context.Background(), e, nil, nil); err == nil {
		t.Fatal("nil predicate accepted")
	}
}

func TestRunUntilClientDisconnect(t *testing.T) {
	e, _ := pacedEntry(2)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := RunUntil(ctx, e, func(core.Snapshot[int]) bool { return false }, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("disconnected RunUntil: %v", err)
	}
}

// TestServeCycleUnderConcurrency drives the full pool+queue+run composition
// the way anytimed does, with the race detector watching.
func TestServeCycleUnderConcurrency(t *testing.T) {
	builds := 0
	var mu sync.Mutex
	p, err := NewPool("cycle", 4, func() (Entry[int], error) {
		mu.Lock()
		builds++
		mu.Unlock()
		e, step := pacedEntry(3)
		close(step)
		return e, nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQueue(4, 32, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := Controller{ShedStart: 4, ShedFull: 16, MinFactor: 0.25}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			if err := q.Acquire(ctx); err != nil {
				t.Error(err)
				return
			}
			defer q.Release()
			e, err := p.Get(ctx)
			if err != nil {
				t.Error(err)
				return
			}
			deadline := ctrl.Scale(ctx, time.Duration(g%3)*50*time.Millisecond, q.Depth())
			res, err := Run(ctx, e, deadline, nil)
			if err != nil {
				t.Error(err)
				return
			}
			if res.Snapshot.Version == 0 {
				t.Errorf("empty snapshot delivered: %+v", res)
			}
			if err := p.Put(e); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if builds > 8 {
		t.Fatalf("built %d automata for 16 requests at concurrency 4", builds)
	}
}
