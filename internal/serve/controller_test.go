package serve

import (
	"context"
	"math"
	"testing"
	"time"
)

func TestControllerValidation(t *testing.T) {
	bad := []Controller{
		{ShedStart: -1, ShedFull: 4, MinFactor: 0.5},
		{ShedStart: 4, ShedFull: 4, MinFactor: 0.5},
		{ShedStart: 2, ShedFull: 8, MinFactor: 0},
		{ShedStart: 2, ShedFull: 8, MinFactor: 1.5},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("controller %+v accepted", c)
		}
	}
	ok := Controller{ShedStart: 2, ShedFull: 8, MinFactor: 0.25}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestControllerRamp(t *testing.T) {
	c := Controller{ShedStart: 2, ShedFull: 6, MinFactor: 0.2}
	cases := []struct {
		depth int
		want  float64
	}{
		{0, 1}, {1, 1}, {2, 1}, // at or below ShedStart: no shedding
		{3, 0.8}, {4, 0.6}, {5, 0.4}, // linear ramp
		{6, 0.2}, {100, 0.2}, // saturated
	}
	for _, tc := range cases {
		if got := c.Factor(tc.depth); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Factor(%d) = %v, want %v", tc.depth, got, tc.want)
		}
	}
}

func TestControllerScale(t *testing.T) {
	var shed []float64
	c := Controller{ShedStart: 0, ShedFull: 2, MinFactor: 0.5,
		H: &Hooks{Shed: func(f float64) { shed = append(shed, f) }}}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := c.Scale(context.Background(), 100*time.Millisecond, 0); got != 100*time.Millisecond {
		t.Fatalf("unloaded scale = %v", got)
	}
	if got := c.Scale(context.Background(), 100*time.Millisecond, 1); got != 75*time.Millisecond {
		t.Fatalf("half-loaded scale = %v, want 75ms", got)
	}
	if got := c.Scale(context.Background(), 100*time.Millisecond, 50); got != 50*time.Millisecond {
		t.Fatalf("saturated scale = %v, want 50ms", got)
	}
	// Precise requests (no deadline) are never shed.
	if got := c.Scale(context.Background(), 0, 50); got != 0 {
		t.Fatalf("precise request scaled to %v", got)
	}
	if len(shed) != 2 {
		t.Fatalf("Shed hook fired %d times, want 2 (not for factor 1 or deadline 0)", len(shed))
	}
}
