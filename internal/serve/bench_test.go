package serve_test

import (
	"context"
	"testing"

	"anytime/internal/apps/conv2d"
	"anytime/internal/pix"
	"anytime/internal/serve"
)

// BenchmarkPooledVsFresh measures per-request setup cost with and without
// the warm pool, over the same conv2d configuration anytimed serves.
// "setup" is everything a request pays before its stage goroutines can do
// useful work: construction (fresh) versus checkout+check-in (pooled,
// where the check-in pays the Reset rewind). The run itself is excluded —
// it is identical in both regimes. Results are recorded in
// BENCH_serve_pool.json and cited in docs/OPERATIONS.md.

func benchInput(b *testing.B) *pix.Image {
	b.Helper()
	in, err := pix.SyntheticGray(256, 256, 1)
	if err != nil {
		b.Fatal(err)
	}
	return in
}

func BenchmarkPooledVsFresh(b *testing.B) {
	in := benchInput(b)
	cfg := conv2d.Config{Workers: 2, Snapshot: pix.SnapshotTiles}
	build := func() (serve.Entry[*pix.Image], error) {
		run, err := conv2d.New(in, cfg)
		if err != nil {
			return serve.Entry[*pix.Image]{}, err
		}
		return serve.Entry[*pix.Image]{Automaton: run.Automaton, Out: run.Out}, nil
	}

	b.Run("fresh/setup", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := build(); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("pooled/setup", func(b *testing.B) {
		pool, err := serve.NewPool("bench", 1, build, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := pool.Warm(1); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e, err := pool.Get(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			if err := pool.Put(e); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Full request cycles (setup + precise run) put the setup saving in
	// context: what fraction of a request the pool actually removes.
	b.Run("fresh/request", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e, err := build()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := serve.Run(context.Background(), e, 0, nil); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("pooled/request", func(b *testing.B) {
		pool, err := serve.NewPool("bench", 1, build, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := pool.Warm(1); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e, err := pool.Get(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := serve.Run(context.Background(), e, 0, nil); err != nil {
				b.Fatal(err)
			}
			if err := pool.Put(e); err != nil {
				b.Fatal(err)
			}
		}
	})
}
