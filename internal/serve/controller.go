package serve

import (
	"context"
	"fmt"
	"time"

	"anytime/internal/reqtrace"
)

// Controller is the load-adaptive accuracy policy: it maps admission-queue
// depth to a shed factor in [MinFactor, 1] that the caller applies to each
// request's contract — typically by scaling the deadline, so under load
// every request finishes sooner at lower accuracy instead of a few
// finishing precisely while the rest starve. This is the anytime analogue
// of significance-driven runtimes: the quality knob moves, availability
// does not.
//
// The policy is a pure piecewise-linear ramp:
//
//	depth <= ShedStart             factor = 1 (no shedding)
//	ShedStart < depth < ShedFull   factor falls linearly
//	depth >= ShedFull              factor = MinFactor
//
// Shedding begins only once requests are actually waiting, and backs off
// automatically as the queue drains — no state, no oscillation damping
// needed beyond the width of the ramp.
type Controller struct {
	// ShedStart is the queue depth at which shedding begins.
	ShedStart int
	// ShedFull is the queue depth at which shedding saturates at
	// MinFactor. Must exceed ShedStart.
	ShedFull int
	// MinFactor is the smallest factor applied, in (0, 1].
	MinFactor float64
	// H receives Shed callbacks whenever Scale applies a factor below 1.
	H *Hooks
}

// Validate checks the controller's configuration.
func (c Controller) Validate() error {
	if c.ShedStart < 0 {
		return fmt.Errorf("serve: controller ShedStart %d must not be negative", c.ShedStart)
	}
	if c.ShedFull <= c.ShedStart {
		return fmt.Errorf("serve: controller ShedFull %d must exceed ShedStart %d", c.ShedFull, c.ShedStart)
	}
	if c.MinFactor <= 0 || c.MinFactor > 1 {
		return fmt.Errorf("serve: controller MinFactor %v out of range (0, 1]", c.MinFactor)
	}
	return nil
}

// Factor returns the shed factor for the given queue depth.
func (c Controller) Factor(depth int) float64 {
	if depth <= c.ShedStart {
		return 1
	}
	if depth >= c.ShedFull {
		return c.MinFactor
	}
	frac := float64(depth-c.ShedStart) / float64(c.ShedFull-c.ShedStart)
	return 1 - frac*(1-c.MinFactor)
}

// Scale applies the shed factor for the given queue depth to a deadline:
// the effective deadline a loaded server grants the request. A zero
// deadline (run to precision) is never scaled — precision was an explicit
// contract, and shedding it would break the bit-exactness promise; under
// overload such requests are bounded by admission control instead.
//
// A request trace bound into ctx records the shed decision (factor and
// effective deadline) whenever a factor below 1 is applied.
func (c Controller) Scale(ctx context.Context, deadline time.Duration, depth int) time.Duration {
	if deadline <= 0 {
		return deadline
	}
	f := c.Factor(depth)
	if f >= 1 {
		return deadline
	}
	effective := time.Duration(float64(deadline) * f)
	if c.H != nil && c.H.Shed != nil {
		c.H.Shed(f)
	}
	reqtrace.FromContext(ctx).Shed(f, effective)
	return effective
}
