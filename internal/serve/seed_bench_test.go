package serve_test

import (
	"context"
	"encoding/json"
	"os"
	"sync"
	"testing"
	"time"

	"anytime/internal/apps/conv2d"
	"anytime/internal/core"
	"anytime/internal/metrics"
	"anytime/internal/pix"
	"anytime/internal/serve"
	"anytime/internal/snapcache"
)

// Warm-start cost and win, pinned in BENCH_snapcache.json.
//
// BenchmarkWarmStartSetup measures what a cache hit adds to the pooled
// request path: checkout alone (the BENCH_serve_pool.json baseline)
// versus checkout plus SeedFromCache — the lookup, the clone into the
// working image, the seeded first snapshot, and the buffer seed. The CI
// budget gate (TestWarmStartSetupBudget) holds that full warm-start setup
// under the pooled end-to-end request cost recorded in
// BENCH_serve_pool.json: seeding must stay a setup-scale cost, never a
// request-scale one.

// seedBenchPool builds a 1-slot conv2d pool plus a cache holding a real
// mid-run approximation for its input, admitted the same way the daemon
// admits delivered snapshots.
func seedBenchPool(tb testing.TB) (*serve.Pool[*pix.Image], *snapcache.Cache[*pix.Image], snapcache.Key) {
	tb.Helper()
	in, err := pix.SyntheticGray(256, 256, 1)
	if err != nil {
		tb.Fatal(err)
	}
	cfg := conv2d.Config{Workers: 2}
	build := func() (serve.Entry[*pix.Image], error) {
		run, err := conv2d.New(in, cfg)
		if err != nil {
			return serve.Entry[*pix.Image]{}, err
		}
		return serve.Entry[*pix.Image]{Automaton: run.Automaton, Out: run.Out}, nil
	}
	pool, err := serve.NewPool("bench-seed", 1, build, nil)
	if err != nil {
		tb.Fatal(err)
	}
	if err := pool.Warm(1); err != nil {
		tb.Fatal(err)
	}
	cache, err := snapcache.New(snapcache.Config[*pix.Image]{
		SizeOf: func(im *pix.Image) int { return len(im.Pix) * 4 },
	})
	if err != nil {
		tb.Fatal(err)
	}
	key := snapcache.Key{App: "conv2d", Digest: snapcache.DigestImage(in), Epoch: 1}

	ctx := context.Background()
	e, err := pool.Get(ctx)
	if err != nil {
		tb.Fatal(err)
	}
	stopped := core.StopWhen(e.Automaton, e.Out, func(s core.Snapshot[*pix.Image]) bool {
		return s.Version >= 3
	})
	if err := e.Automaton.Start(ctx); err != nil {
		tb.Fatal(err)
	}
	s, ok := <-stopped
	if !ok {
		tb.Fatal("automaton produced no snapshot to admit")
	}
	if err := e.Automaton.Wait(); err != nil && err != core.ErrStopped {
		tb.Fatal(err)
	}
	if !cache.Put(key, snapcache.Entry[*pix.Image]{Value: s.Value, Version: s.Version, SNRdB: 20}) {
		tb.Fatal("admission refused")
	}
	if err := pool.Put(e); err != nil {
		tb.Fatal(err)
	}
	return pool, cache, key
}

func BenchmarkWarmStartSetup(b *testing.B) {
	pool, cache, key := seedBenchPool(b)
	ctx := context.Background()

	b.Run("checkout", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e, err := pool.Get(ctx)
			if err != nil {
				b.Fatal(err)
			}
			if err := pool.Put(e); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("checkout+seed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e, err := pool.Get(ctx)
			if err != nil {
				b.Fatal(err)
			}
			if _, ok := serve.SeedFromCache(ctx, e, cache, key); !ok {
				b.Fatal("expected a cache hit")
			}
			if err := pool.Put(e); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestWarmStartSetupBudget is the CI gate: the full warm-start setup
// (checkout + hit + seed) must cost less than one pooled end-to-end
// request as pinned in BENCH_serve_pool.json. When SEED_SETUP_OUT is set,
// the measurement is also written there as JSON for the workflow's jq
// assertion.
func TestWarmStartSetupBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement; skipped under -short")
	}
	budget, err := pooledRequestBudget("../../BENCH_serve_pool.json")
	if err != nil {
		t.Fatalf("reading the pooled-request budget: %v", err)
	}
	pool, cache, key := seedBenchPool(t)
	ctx := context.Background()

	const reps = 25
	best := time.Duration(1 << 62)
	for i := 0; i < reps; i++ {
		start := time.Now()
		e, err := pool.Get(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := serve.SeedFromCache(ctx, e, cache, key); !ok {
			t.Fatal("expected a cache hit")
		}
		if err := pool.Put(e); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	t.Logf("warm-start setup %v, pooled-request budget %v", best, budget)
	if best >= budget {
		t.Fatalf("warm-start setup %v is not under the pooled-request budget %v", best, budget)
	}
	if out := os.Getenv("SEED_SETUP_OUT"); out != "" {
		blob, err := json.Marshal(map[string]int64{
			"seed_setup_ns": best.Nanoseconds(),
			"budget_ns":     budget.Nanoseconds(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// pooledRequestBudget extracts pooled/request ns_per_op from the serve
// pool benchmark record.
func pooledRequestBudget(path string) (time.Duration, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var rec struct {
		Benchmarks []struct {
			Name    string `json:"name"`
			NsPerOp int64  `json:"ns_per_op"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(blob, &rec); err != nil {
		return 0, err
	}
	for _, b := range rec.Benchmarks {
		if b.Name == "BenchmarkPooledVsFresh/pooled/request" {
			return time.Duration(b.NsPerOp), nil
		}
	}
	return 0, os.ErrNotExist
}

// TestWarmStartBeatsColdAtVersionBudget pins the warm-start win
// deterministically: with one worker and publish-every-round, a run
// seeded at version K and given M more publishes must beat a cold run
// given the same M publishes — the seeded run's untouched tiles carry K
// rounds of prior refinement where the cold run still hold-fills.
//
// Publish counts are controlled exactly: an observer blocks the target
// publish on the stage goroutine while the run context is cancelled, and
// the diffusive driver's post-publish interrupt poll guarantees no
// further version lands after the release.
func TestWarmStartBeatsColdAtVersionBudget(t *testing.T) {
	const seedV, extra = 3, 2
	in, err := pix.SyntheticGray(128, 128, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := conv2d.Config{Workers: 1, Granularity: 2048, Publish: core.PublishEveryRound}
	ref, err := conv2d.Precise(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	runTo := func(run *conv2d.Run, target core.Version) core.Snapshot[*pix.Image] {
		t.Helper()
		reached := make(chan struct{})
		release := make(chan struct{})
		var once sync.Once
		run.Out.OnPublish(func(s core.Snapshot[*pix.Image]) {
			if s.Version >= target {
				once.Do(func() { close(reached) })
				<-release
			}
		})
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		if err := run.Automaton.Start(ctx); err != nil {
			t.Fatal(err)
		}
		select {
		case <-reached:
		case <-run.Automaton.Done():
			t.Fatalf("run finished before reaching version %d", target)
		}
		cancel()
		close(release)
		if err := run.Automaton.Wait(); err != nil && err != core.ErrStopped {
			t.Fatal(err)
		}
		s, ok := run.Out.Latest()
		if !ok || s.Version != target {
			t.Fatalf("stopped at version %d (ok=%v), want exactly %d", s.Version, ok, target)
		}
		return s
	}
	snr := func(s core.Snapshot[*pix.Image]) float64 {
		t.Helper()
		db, err := metrics.SNR(ref.Pix, s.Value.Pix)
		if err != nil {
			t.Fatal(err)
		}
		return db
	}

	// The "cached" approximation: a prior request that got seedV publishes.
	prior, err := conv2d.New(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cached := runTo(prior, seedV)
	if cached.Final {
		t.Fatalf("seed snapshot already final at version %d", cached.Version)
	}

	// Cold: extra publishes from scratch.
	coldRun, err := conv2d.New(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cold := runTo(coldRun, extra)

	// Warm: seeded at cached.Version, then the same extra publishes.
	warmRun, err := conv2d.New(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := warmRun.Automaton.SeedFrom(cached.Value, cached.Version); err != nil {
		t.Fatal(err)
	}
	warm := runTo(warmRun, cached.Version+extra)

	coldDB, warmDB := snr(cold), snr(warm)
	t.Logf("cold %d publishes: %.2f dB; warm seed@%d + %d publishes: %.2f dB",
		extra, coldDB, cached.Version, extra, warmDB)
	if warmDB <= coldDB {
		t.Fatalf("warm start (%.2f dB) does not beat cold (%.2f dB) at the same publish budget", warmDB, coldDB)
	}
}
