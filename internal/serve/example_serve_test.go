package serve_test

import (
	"context"
	"fmt"
	"time"

	"anytime/internal/core"
	"anytime/internal/serve"
)

// buildSquares constructs a tiny anytime pipeline: one stage publishing
// progressively better approximations of a sum of squares, the last one
// precise. Real apps (internal/apps/...) return the same Entry shape from
// their constructors.
func buildSquares() (serve.Entry[int], error) {
	out := core.NewBuffer[int]("squares", nil)
	a := core.New()
	err := a.AddStage("sum", func(c *core.Context) error {
		sum := 0
		for i := 1; i <= 4; i++ {
			if err := c.Checkpoint(); err != nil {
				return err
			}
			sum += i * i
			if _, err := out.Publish(sum, i == 4); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return serve.Entry[int]{}, err
	}
	// Registering the buffer rewind here makes the automaton poolable:
	// Reset rewinds versions to zero without rebuilding the pipeline.
	a.OnReset(out.Reset)
	return serve.Entry[int]{Automaton: a, Out: out}, nil
}

// ExamplePool shows the warm-pool cycle: construction happens once, and
// every later request pays only a Reset.
func ExamplePool() {
	pool, err := serve.NewPool("squares", 2, buildSquares, nil)
	if err != nil {
		panic(err)
	}
	if err := pool.Warm(1); err != nil {
		panic(err)
	}
	for request := 1; request <= 3; request++ {
		entry, err := pool.Get(context.Background())
		if err != nil {
			panic(err)
		}
		res, err := serve.Run(context.Background(), entry, 0, nil)
		if err != nil {
			panic(err)
		}
		fmt.Printf("request %d: value %d, version %d, final %v\n",
			request, res.Snapshot.Value, res.Snapshot.Version, res.Snapshot.Final)
		if err := pool.Put(entry); err != nil {
			panic(err)
		}
	}
	// Output:
	// request 1: value 30, version 4, final true
	// request 2: value 30, version 4, final true
	// request 3: value 30, version 4, final true
}

// ExampleRun demonstrates the two ends of the deadline contract: no
// deadline yields the precise output, and a deadline always yields the
// best published approximation available when it fires — never an error.
func ExampleRun() {
	entry, err := buildSquares()
	if err != nil {
		panic(err)
	}
	precise, err := serve.Run(context.Background(), entry, 0, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("no deadline: value %d, final %v, interrupted %v\n",
		precise.Snapshot.Value, precise.Snapshot.Final, precise.Interrupted)

	// A generous deadline the tiny pipeline beats easily: finishing before
	// the deadline delivers the same precise output.
	if err := entry.Automaton.Reset(); err != nil {
		panic(err)
	}
	early, err := serve.Run(context.Background(), entry, time.Second, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("1s deadline: value %d, final %v, interrupted %v\n",
		early.Snapshot.Value, early.Snapshot.Final, early.Interrupted)
	// Output:
	// no deadline: value 30, final true, interrupted false
	// 1s deadline: value 30, final true, interrupted false
}

// ExampleRunUntil shows the acceptance contract: the run stops at the
// first snapshot the predicate admits, not at full precision. Output
// buffers are latest-wins, so a fast pipeline may publish several versions
// between polls; this example paces the stage off the predicate (each
// rejection releases the next publish) purely to make the accepted version
// deterministic for the doc test.
func ExampleRunUntil() {
	step := make(chan struct{}, 1)
	step <- struct{}{}
	out := core.NewBuffer[int]("squares", nil)
	a := core.New()
	if err := a.AddStage("sum", func(c *core.Context) error {
		sum := 0
		for i := 1; i <= 4; i++ {
			select {
			case <-step:
			case <-c.Context().Done():
				return core.ErrStopped
			}
			sum += i * i
			if _, err := out.Publish(sum, i == 4); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		panic(err)
	}
	entry := serve.Entry[int]{Automaton: a, Out: out}
	res, err := serve.RunUntil(context.Background(), entry,
		func(s core.Snapshot[int]) bool {
			if s.Value >= 5 {
				return true
			}
			step <- struct{}{}
			return false
		}, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("accepted: value %d, version %d, interrupted %v\n",
		res.Snapshot.Value, res.Snapshot.Version, res.Interrupted)
	// Output:
	// accepted: value 5, version 2, interrupted true
}

// ExampleController shows load-adaptive shedding: as queue depth rises the
// effective deadline shrinks, and precise (no-deadline) requests are never
// shed.
func ExampleController() {
	ctrl := serve.Controller{ShedStart: 2, ShedFull: 6, MinFactor: 0.25}
	if err := ctrl.Validate(); err != nil {
		panic(err)
	}
	for _, depth := range []int{0, 4, 10} {
		fmt.Printf("depth %2d: 100ms deadline becomes %v\n",
			depth, ctrl.Scale(context.Background(), 100*time.Millisecond, depth))
	}
	fmt.Printf("precise requests stay precise: %v\n", ctrl.Scale(context.Background(), 0, 10))
	// Output:
	// depth  0: 100ms deadline becomes 100ms
	// depth  4: 100ms deadline becomes 62.5ms
	// depth 10: 100ms deadline becomes 25ms
	// precise requests stay precise: 0s
}
