// Package snapcache is a content-addressed cache of published anytime
// snapshots, the warm-start store of the serving tier (ROADMAP item 3).
//
// Production anytime traffic is highly redundant: repeated and
// near-duplicate inputs recompute identical approximation trajectories from
// version 1 on every request, even though the previous request already
// published exactly the artifact worth reusing — a snapshot at a known
// version and measured SNR. The cache keys those artifacts by
// (app, input digest, config epoch) so a later request for the same content
// can seed its pooled automaton from the cached approximation
// (core.Automaton.SeedFrom) and spend its whole deadline budget on
// refinement. The keying, eviction, and warm-start invariants are
// documented in docs/CACHING.md.
//
// Concurrency model: lookups take only a read lock plus one atomic store (a
// recency stamp), so the hot serving path never serializes on the cache.
// Admissions are serialized by a dedicated writer mutex — a single-writer
// admission path, mirroring the model's single-writer buffers — and do the
// eviction scan there, off the request's critical path (the daemon admits
// after the response is written).
package snapcache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"anytime/internal/core"
)

// Key addresses a cached snapshot by content and configuration.
type Key struct {
	// App is the application the snapshot came from ("conv2d", ...).
	App string
	// Digest is the content digest of the request input (DigestImage /
	// DigestBytes, or a caller-supplied routing key). Two requests share a
	// cache entry only if their digests match exactly.
	Digest string
	// Epoch fingerprints the app configuration the snapshot was computed
	// under (kernel size, workers, image geometry, ...). A config change
	// bumps the epoch, so stale-config entries can never seed a request —
	// they simply miss and age out.
	Epoch uint64
}

// Entry is a cached published snapshot with the metadata a warm start
// needs: the version the seeded run continues from and the SNR the cached
// approximation measured at delivery time.
type Entry[T any] struct {
	Value   T
	Version core.Version
	SNRdB   float64
}

// Hooks observes cache behavior; see telemetry.SnapcacheHooks for the
// standard metrics binding. Any field may be nil.
type Hooks struct {
	// Hit fires on a successful lookup.
	Hit func(app string)
	// Miss fires on a failed lookup, including TTL expiry at lookup time.
	Miss func(app string)
	// Evict fires when an entry is dropped: "lru" (capacity), "ttl"
	// (expired at lookup), or "replaced" (overwritten by a newer version).
	Evict func(reason string)
	// Size fires after any mutation with the cache's total payload bytes
	// and entry count.
	Size func(bytes int64, entries int)
}

// Config parameterizes New.
type Config[T any] struct {
	// MaxBytes bounds the total payload size (per SizeOf). Default 64 MiB.
	MaxBytes int64
	// TTL bounds entry age; expired entries miss (and are dropped) at
	// lookup time. Default 5 minutes.
	TTL time.Duration
	// SizeOf reports the payload size of a value in bytes. Required.
	SizeOf func(T) int
	// Clone, if non-nil, deep-copies values on the way in and out. Leave
	// nil when cached values are immutable (the serving tier caches
	// SnapshotClone images, which are).
	Clone func(T) T
	// Hooks observes hits, misses, evictions, and size changes.
	Hooks *Hooks
	// Now is the clock; nil means time.Now. A test seam for TTL behavior.
	Now func() time.Time
}

type item[T any] struct {
	e     Entry[T]
	bytes int64
	added time.Time
	used  atomic.Int64 // logical recency stamp; stored without the write lock
}

// Cache is a content-addressed snapshot cache with TTL and size-bounded
// LRU eviction. All methods are safe for concurrent use.
type Cache[T any] struct {
	cfg Config[T]

	admit sync.Mutex // serializes admissions (single-writer)

	mu      sync.RWMutex
	entries map[Key]*item[T]
	bytes   int64

	clock atomic.Int64 // logical time for LRU stamps
}

// New returns an empty cache. SizeOf is required; zero MaxBytes and TTL
// take the defaults (64 MiB, 5 minutes).
func New[T any](cfg Config[T]) (*Cache[T], error) {
	if cfg.SizeOf == nil {
		return nil, fmt.Errorf("snapcache: Config.SizeOf is required")
	}
	if cfg.MaxBytes == 0 {
		cfg.MaxBytes = 64 << 20
	}
	if cfg.MaxBytes < 0 {
		return nil, fmt.Errorf("snapcache: MaxBytes %d must be positive", cfg.MaxBytes)
	}
	if cfg.TTL == 0 {
		cfg.TTL = 5 * time.Minute
	}
	if cfg.TTL < 0 {
		return nil, fmt.Errorf("snapcache: TTL %v must be positive", cfg.TTL)
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Cache[T]{cfg: cfg, entries: make(map[Key]*item[T])}, nil
}

// Get looks up the entry for k. The hot path takes only the read lock and
// one atomic store; an entry found expired is dropped (reason "ttl") and
// reported as a miss.
func (c *Cache[T]) Get(k Key) (Entry[T], bool) {
	c.mu.RLock()
	it, ok := c.entries[k]
	var expired bool
	if ok {
		expired = c.cfg.Now().Sub(it.added) > c.cfg.TTL
		if !expired {
			it.used.Store(c.clock.Add(1))
		}
	}
	c.mu.RUnlock()

	if ok && expired {
		c.mu.Lock()
		// Recheck: a concurrent Put may have replaced the item.
		if cur, still := c.entries[k]; still && cur == it {
			c.drop(k, cur, "ttl")
			c.sizeHook()
		}
		c.mu.Unlock()
		ok = false
	}
	if !ok {
		if h := c.hooks(); h != nil && h.Miss != nil {
			h.Miss(k.App)
		}
		var zero Entry[T]
		return zero, false
	}
	if h := c.hooks(); h != nil && h.Hit != nil {
		h.Hit(k.App)
	}
	e := it.e
	if c.cfg.Clone != nil {
		e.Value = c.cfg.Clone(e.Value)
	}
	return e, true
}

// Put admits an entry under k, evicting least-recently-used entries as
// needed to respect MaxBytes. It reports whether the entry was admitted:
// an entry larger than the whole cache is refused, and an existing entry
// is only replaced by a strictly newer version (replacing a refined
// approximation with an earlier one would regress every future warm
// start). Admissions are serialized; callers on the serving path should
// admit after the response is delivered.
func (c *Cache[T]) Put(k Key, e Entry[T]) bool {
	if e.Version == 0 {
		return false
	}
	bytes := int64(c.cfg.SizeOf(e.Value))
	if bytes > c.cfg.MaxBytes {
		return false
	}
	if c.cfg.Clone != nil {
		e.Value = c.cfg.Clone(e.Value)
	}

	c.admit.Lock()
	defer c.admit.Unlock()
	now := c.cfg.Now()

	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.entries[k]; ok {
		fresh := now.Sub(old.added) <= c.cfg.TTL
		if fresh && old.e.Version >= e.Version {
			return false
		}
		c.drop(k, old, "replaced")
	}
	it := &item[T]{e: e, bytes: bytes, added: now}
	it.used.Store(c.clock.Add(1))
	c.entries[k] = it
	c.bytes += bytes
	for c.bytes > c.cfg.MaxBytes {
		vk, victim := c.lruLocked(it)
		if victim == nil {
			break
		}
		c.drop(vk, victim, "lru")
	}
	c.sizeHook()
	return true
}

// lruLocked returns the least-recently-used entry other than keep.
// Called with mu held. O(n) over entries: admissions are rare and off the
// request path, so a scan beats maintaining an ordered structure that
// every lock-cheap Get would have to update.
func (c *Cache[T]) lruLocked(keep *item[T]) (Key, *item[T]) {
	var vk Key
	var victim *item[T]
	var least int64
	for k, it := range c.entries {
		if it == keep {
			continue
		}
		if u := it.used.Load(); victim == nil || u < least {
			vk, victim, least = k, it, u
		}
	}
	return vk, victim
}

// drop removes it (known present under k) and fires the evict hook.
// Called with mu held.
func (c *Cache[T]) drop(k Key, it *item[T], reason string) {
	delete(c.entries, k)
	c.bytes -= it.bytes
	if h := c.hooks(); h != nil && h.Evict != nil {
		h.Evict(reason)
	}
}

func (c *Cache[T]) sizeHook() {
	if h := c.hooks(); h != nil && h.Size != nil {
		h.Size(c.bytes, len(c.entries))
	}
}

func (c *Cache[T]) hooks() *Hooks { return c.cfg.Hooks }

// Len reports the number of cached entries.
func (c *Cache[T]) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Bytes reports the total payload size of cached entries.
func (c *Cache[T]) Bytes() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.bytes
}
