package snapcache_test

import (
	"fmt"

	"anytime/internal/pix"
	"anytime/internal/snapcache"
)

// Example_warmStart walks the serving tier's cache protocol end to end:
// the first request for a piece of content misses and runs cold, its
// delivered snapshot is admitted on the way out, and the repeat request
// finds the approximation — version and measured SNR intact — ready to
// seed a warm start (core.Automaton.SeedFrom).
func Example_warmStart() {
	cache, err := snapcache.New(snapcache.Config[*pix.Image]{
		SizeOf: func(im *pix.Image) int { return len(im.Pix) * 4 },
	})
	if err != nil {
		panic(err)
	}

	// The key is content-addressed: the app, a digest of the input bytes,
	// and the config epoch. Same pixels + same config = same key.
	input, _ := pix.SyntheticGray(32, 32, 7)
	key := snapcache.Key{App: "conv2d", Digest: snapcache.DigestImage(input), Epoch: 0x2a}

	if _, ok := cache.Get(key); !ok {
		fmt.Println("request 1: miss, run cold from version 1")
	}

	// The cold request delivered version 6 at its deadline; admit it with
	// the SNR measured against the precise output.
	delivered := pix.MustNew(32, 32, 1)
	cache.Put(key, snapcache.Entry[*pix.Image]{Value: delivered, Version: 6, SNRdB: 23.4})

	if e, ok := cache.Get(key); ok {
		fmt.Printf("request 2: hit, seed at version %d (%.1f dB) and publish %d next\n",
			e.Version, e.SNRdB, e.Version+1)
	}

	// A config change rotates the epoch; old entries can never seed.
	if _, ok := cache.Get(snapcache.Key{App: key.App, Digest: key.Digest, Epoch: 0x2b}); !ok {
		fmt.Println("after config change: miss")
	}

	// Output:
	// request 1: miss, run cold from version 1
	// request 2: hit, seed at version 6 (23.4 dB) and publish 7 next
	// after config change: miss
}

// Example_deltaTiles shows the cross-request delta workflow for streams:
// when frame N misses but frame N-1 is cached, pix.TileDiff marks the
// tiles where the inputs differ, Dilate widens them by one ring for the
// consumers' stencil halo, and a pix.SeedFrame warm-starts the run with
// only the changed region falling back to recomputation.
func Example_deltaTiles() {
	prev, _ := pix.SyntheticGray(128, 128, 7)
	next := prev.Clone()
	// One 8x8 block changed between the frames, inside tile (1,1).
	for y := 40; y < 48; y++ {
		for x := 40; x < 48; x++ {
			next.SetGray(x, y, 255-next.Gray(x, y))
		}
	}

	stale, err := pix.TileDiff(prev, next)
	if err != nil {
		panic(err)
	}
	fmt.Printf("changed tiles: %d of 16\n", stale.Count())

	stale.Dilate() // one ring of halo for stencil consumers
	fmt.Printf("stale after dilation: %d of 16\n", stale.Count())

	// cachedPrev would be the prior frame's cached output; the seeded run
	// republishes from the cached version and recomputes only stale tiles
	// first.
	cachedPrev := pix.MustNew(128, 128, 1)
	seed := &pix.SeedFrame{Image: cachedPrev, Stale: stale}
	fmt.Printf("seed frame ready: %v\n", seed.Stale.Any())

	// Output:
	// changed tiles: 1 of 16
	// stale after dilation: 9 of 16
	// seed frame ready: true
}
