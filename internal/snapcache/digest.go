package snapcache

import (
	"fmt"

	"anytime/internal/pix"
)

// Content digests. The cache is content-addressed: the digest of the
// request input is the lookup key, shared with the cluster router's ring
// key (cluster.RingKey) so repeats of the same content hash to the shard
// holding the warm entry. The digest is 128 bits built from two
// independent 64-bit FNV-1a passes — deterministic across processes (no
// per-process hash seed), cheap (one multiply per byte per pass), and wide
// enough that accidental collisions are not a practical concern. It is NOT
// cryptographic: callers exposed to adversarial inputs must not rely on it
// for integrity (the conform decodability validator is the backstop for a
// corrupted cache entry).

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
	// Second-pass offset basis: an arbitrary odd constant so the two
	// 64-bit passes are independent.
	fnvOffsetAlt = 0x9E3779B97F4A7C15
)

// DigestBytes digests a byte stream, folding each part's length in so
// ("ab","c") and ("a","bc") differ.
func DigestBytes(parts ...[]byte) string {
	h1 := uint64(fnvOffset64)
	h2 := uint64(fnvOffsetAlt)
	mix := func(b byte) {
		h1 = (h1 ^ uint64(b)) * fnvPrime64
		h2 = (h2 ^ uint64(b)) * fnvPrime64
	}
	for _, p := range parts {
		for n := uint64(len(p)); ; n >>= 8 {
			mix(byte(n))
			if n < 256 {
				break
			}
		}
		for _, b := range p {
			mix(b)
		}
	}
	return fmt.Sprintf("%016x%016x", h1, h2)
}

// DigestImage digests an image's geometry and samples. Images differing in
// any sample, or in shape alone, digest differently.
func DigestImage(im *pix.Image) string {
	h1 := uint64(fnvOffset64)
	h2 := uint64(fnvOffsetAlt)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			b := byte(v >> (8 * i))
			h1 = (h1 ^ uint64(b)) * fnvPrime64
			h2 = (h2 ^ uint64(b)) * fnvPrime64
		}
	}
	mix(uint64(im.W))
	mix(uint64(im.H))
	mix(uint64(im.C))
	for _, v := range im.Pix {
		u := uint32(v)
		for i := 0; i < 4; i++ {
			b := byte(u >> (8 * i))
			h1 = (h1 ^ uint64(b)) * fnvPrime64
			h2 = (h2 ^ uint64(b)) * fnvPrime64
		}
	}
	return fmt.Sprintf("%016x%016x", h1, h2)
}
