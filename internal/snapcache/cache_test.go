package snapcache

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"anytime/internal/core"
	"anytime/internal/pix"
)

// testCache builds a byte-slice cache with a controllable clock.
func testCache(t *testing.T, maxBytes int64, ttl time.Duration) (*Cache[[]byte], *time.Time, *counts) {
	t.Helper()
	now := time.Unix(1000, 0)
	n := &counts{}
	c, err := New(Config[[]byte]{
		MaxBytes: maxBytes,
		TTL:      ttl,
		SizeOf:   func(b []byte) int { return len(b) },
		Hooks:    n.hooks(),
		Now:      func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, &now, n
}

type counts struct {
	mu                       sync.Mutex
	hits, misses             int
	evicts                   map[string]int
	lastBytes                int64
	lastEntries, sizeReports int
}

func (n *counts) hooks() *Hooks {
	n.evicts = map[string]int{}
	return &Hooks{
		Hit:  func(string) { n.mu.Lock(); n.hits++; n.mu.Unlock() },
		Miss: func(string) { n.mu.Lock(); n.misses++; n.mu.Unlock() },
		Evict: func(reason string) {
			n.mu.Lock()
			n.evicts[reason]++
			n.mu.Unlock()
		},
		Size: func(b int64, e int) {
			n.mu.Lock()
			n.lastBytes, n.lastEntries, n.sizeReports = b, e, n.sizeReports+1
			n.mu.Unlock()
		},
	}
}

func TestCacheHitMiss(t *testing.T) {
	c, _, n := testCache(t, 1<<20, time.Minute)
	k := Key{App: "conv2d", Digest: "abc", Epoch: 1}
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	if !c.Put(k, Entry[[]byte]{Value: []byte("snap"), Version: 3, SNRdB: 21.5}) {
		t.Fatal("Put refused")
	}
	e, ok := c.Get(k)
	if !ok || string(e.Value) != "snap" || e.Version != 3 || e.SNRdB != 21.5 {
		t.Fatalf("Get = %+v, %v", e, ok)
	}
	if n.hits != 1 || n.misses != 1 {
		t.Fatalf("hooks saw %d hits %d misses", n.hits, n.misses)
	}
	if c.Len() != 1 || c.Bytes() != 4 || n.lastBytes != 4 || n.lastEntries != 1 {
		t.Fatalf("size: Len=%d Bytes=%d hook=(%d,%d)", c.Len(), c.Bytes(), n.lastBytes, n.lastEntries)
	}
}

// Config-epoch and digest hygiene: near-identical keys must never alias.
// The epoch check is what guarantees a config change can never seed a
// request with an approximation computed under the old config.
func TestCacheKeyHygiene(t *testing.T) {
	c, _, _ := testCache(t, 1<<20, time.Minute)
	base := Key{App: "conv2d", Digest: "abc", Epoch: 1}
	c.Put(base, Entry[[]byte]{Value: []byte("base"), Version: 1})
	for _, k := range []Key{
		{App: "conv2d", Digest: "abc", Epoch: 2}, // config changed
		{App: "debayer", Digest: "abc", Epoch: 1},
		{App: "conv2d", Digest: "abd", Epoch: 1},
		{App: "conv2d", Digest: "ab", Epoch: 1},
		{App: "conv2dabc", Digest: "", Epoch: 1}, // no field concatenation
	} {
		if _, ok := c.Get(k); ok {
			t.Errorf("key %+v aliased %+v", k, base)
		}
	}
	if _, ok := c.Get(base); !ok {
		t.Fatal("exact key missed")
	}
}

func TestCacheTTLExpiryMidStream(t *testing.T) {
	c, now, n := testCache(t, 1<<20, time.Minute)
	k := Key{App: "conv2d", Digest: "abc", Epoch: 1}
	c.Put(k, Entry[[]byte]{Value: []byte("old"), Version: 9})
	*now = now.Add(30 * time.Second)
	if _, ok := c.Get(k); !ok {
		t.Fatal("entry missed before TTL")
	}
	// The entry expires between two requests of the same stream: the later
	// request must miss (never seed from an expired entry) and the entry
	// must be dropped with reason "ttl".
	*now = now.Add(31 * time.Second)
	if _, ok := c.Get(k); ok {
		t.Fatal("expired entry hit")
	}
	if n.evicts["ttl"] != 1 {
		t.Fatalf("ttl evictions = %d, want 1", n.evicts["ttl"])
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("expired entry retained: Len=%d Bytes=%d", c.Len(), c.Bytes())
	}
	// An expired (but not yet dropped) entry must not block re-admission
	// at a lower version: the fresh run's output is the only valid one.
	c.Put(k, Entry[[]byte]{Value: []byte("new"), Version: 2})
	e, ok := c.Get(k)
	if !ok || string(e.Value) != "new" {
		t.Fatalf("re-admission after expiry: %+v %v", e, ok)
	}
}

func TestCacheExpiredEntryReplaceable(t *testing.T) {
	c, now, _ := testCache(t, 1<<20, time.Minute)
	k := Key{App: "conv2d", Digest: "abc", Epoch: 1}
	c.Put(k, Entry[[]byte]{Value: []byte("old"), Version: 9})
	*now = now.Add(2 * time.Minute)
	// No Get dropped it; Put must still treat it as gone.
	if !c.Put(k, Entry[[]byte]{Value: []byte("new"), Version: 1}) {
		t.Fatal("expired entry blocked a lower-version Put")
	}
	e, _ := c.Get(k)
	if string(e.Value) != "new" {
		t.Fatalf("value = %q", e.Value)
	}
}

func TestCacheVersionMonotoneReplace(t *testing.T) {
	c, _, n := testCache(t, 1<<20, time.Minute)
	k := Key{App: "conv2d", Digest: "abc", Epoch: 1}
	c.Put(k, Entry[[]byte]{Value: []byte("v5"), Version: 5})
	// An older or equal version must not replace a refined entry.
	if c.Put(k, Entry[[]byte]{Value: []byte("v3"), Version: 3}) {
		t.Fatal("older version replaced a newer entry")
	}
	if c.Put(k, Entry[[]byte]{Value: []byte("v5b"), Version: 5}) {
		t.Fatal("equal version replaced the entry")
	}
	if !c.Put(k, Entry[[]byte]{Value: []byte("v6"), Version: 6}) {
		t.Fatal("newer version refused")
	}
	e, _ := c.Get(k)
	if string(e.Value) != "v6" {
		t.Fatalf("value = %q", e.Value)
	}
	if n.evicts["replaced"] != 1 {
		t.Fatalf("replaced evictions = %d, want 1", n.evicts["replaced"])
	}
	// Version 0 is never admissible (it promises a seed that has no
	// published state).
	if c.Put(Key{App: "x"}, Entry[[]byte]{Value: []byte("z")}) {
		t.Fatal("version 0 admitted")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c, _, n := testCache(t, 30, time.Minute)
	keys := make([]Key, 3)
	for i := range keys {
		keys[i] = Key{App: "a", Digest: fmt.Sprintf("d%d", i), Epoch: 1}
		c.Put(keys[i], Entry[[]byte]{Value: make([]byte, 10), Version: 1})
	}
	// Touch 0 and 2; admitting a fourth 10-byte entry must evict 1.
	c.Get(keys[0])
	c.Get(keys[2])
	c.Put(Key{App: "a", Digest: "d3", Epoch: 1}, Entry[[]byte]{Value: make([]byte, 10), Version: 1})
	if _, ok := c.Get(keys[1]); ok {
		t.Fatal("LRU entry survived")
	}
	for _, k := range []Key{keys[0], keys[2]} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("recently used %+v evicted", k)
		}
	}
	if n.evicts["lru"] != 1 {
		t.Fatalf("lru evictions = %d, want 1", n.evicts["lru"])
	}
	if c.Bytes() > 30 {
		t.Fatalf("cache over budget: %d", c.Bytes())
	}
	// An entry larger than the whole cache is refused outright.
	if c.Put(Key{App: "a", Digest: "huge", Epoch: 1}, Entry[[]byte]{Value: make([]byte, 31), Version: 1}) {
		t.Fatal("oversized entry admitted")
	}
}

// Eviction under concurrent admission: hammer a small cache from many
// writers and readers at once (run with -race). The invariants: never over
// budget at rest, and every hook fires without racing.
func TestCacheConcurrentAdmission(t *testing.T) {
	c, _, _ := testCache(t, 200, time.Minute)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := Key{App: "a", Digest: fmt.Sprintf("d%d", (w*7+i)%32), Epoch: 1}
				c.Put(k, Entry[[]byte]{Value: make([]byte, 20), Version: core.Version(i + 1)})
				c.Get(k)
				c.Get(Key{App: "a", Digest: "d0", Epoch: 1})
			}
		}(w)
	}
	wg.Wait()
	if c.Bytes() > 200 {
		t.Fatalf("cache over budget after concurrent admission: %d", c.Bytes())
	}
	if c.Len() > 10 {
		t.Fatalf("too many entries for budget: %d", c.Len())
	}
}

func TestCacheCloneIsolation(t *testing.T) {
	n := &counts{}
	c, err := New(Config[[]byte]{
		SizeOf: func(b []byte) int { return len(b) },
		Clone:  func(b []byte) []byte { return append([]byte(nil), b...) },
		Hooks:  n.hooks(),
	})
	if err != nil {
		t.Fatal(err)
	}
	k := Key{App: "a", Digest: "d", Epoch: 1}
	src := []byte("abc")
	c.Put(k, Entry[[]byte]{Value: src, Version: 1})
	src[0] = 'z'
	e, _ := c.Get(k)
	if string(e.Value) != "abc" {
		t.Fatalf("cache aliased the admitted value: %q", e.Value)
	}
	e.Value[0] = 'q'
	e2, _ := c.Get(k)
	if string(e2.Value) != "abc" {
		t.Fatalf("reader mutation reached the cache: %q", e2.Value)
	}
}

func TestDigestBytes(t *testing.T) {
	if DigestBytes([]byte("ab"), []byte("c")) == DigestBytes([]byte("a"), []byte("bc")) {
		t.Fatal("part boundaries not folded in")
	}
	if DigestBytes([]byte("abc")) != DigestBytes([]byte("abc")) {
		t.Fatal("digest not deterministic")
	}
	if len(DigestBytes()) != 32 {
		t.Fatalf("digest length %d, want 32 hex chars", len(DigestBytes()))
	}
}

func TestDigestImage(t *testing.T) {
	a := pix.MustNew(8, 8, 1)
	b := pix.MustNew(8, 8, 1)
	if DigestImage(a) != DigestImage(b) {
		t.Fatal("equal images digest differently")
	}
	b.SetGray(3, 3, 1)
	if DigestImage(a) == DigestImage(b) {
		t.Fatal("single-sample change not reflected")
	}
	// Same samples, different shape.
	c := pix.MustNew(4, 16, 1)
	if DigestImage(a) == DigestImage(c) {
		t.Fatal("geometry not folded in")
	}
}
